package model

import (
	"fmt"
	"math/rand"
)

// Figure1 returns the four-task example design of Figure 1 of the
// paper: t1 is a disjunction node sending to t2 and/or t3 each period;
// t2 and t3 independently send to the conjunction node t4.
func Figure1() *Model {
	m := &Model{
		Name:   "figure1",
		Period: 1000,
		Tasks: []Task{
			{Name: "t1", Kind: Disjunction, Priority: 4, BCET: 8, WCET: 12, Source: true},
			{Name: "t2", Kind: Regular, Priority: 3, BCET: 8, WCET: 12},
			{Name: "t3", Kind: Regular, Priority: 2, BCET: 8, WCET: 12},
			{Name: "t4", Kind: Conjunction, Priority: 1, BCET: 8, WCET: 12},
		},
		Edges: []Edge{
			{From: "t1", To: "t2", CANID: 10, DLC: 4},
			{From: "t1", To: "t3", CANID: 11, DLC: 4},
			{From: "t2", To: "t4", CANID: 12, DLC: 4},
			{From: "t3", To: "t4", CANID: 13, DLC: 4},
		},
	}
	mustValidate(m)
	return m
}

// GMStyle returns a synthetic 18-task distributed controller in the
// style of the paper's GM case study (Figure 5): tasks S and A..Q on
// one CAN bus, with
//
//   - S a disjunction root choosing which functional subtrees run,
//   - A and B disjunction nodes selecting operating modes,
//   - H, P and Q conjunction nodes,
//   - every mode of A leading to L (so d(A,L) = →) and every mode of
//     B leading to M (so d(B,M) = →), and
//   - O an infrastructure task (highest priority) that broadcasts a
//     sync frame each period which gates Q's release — the OSEK/CAN
//     interaction behind the implicit Q–O dependency the paper
//     discovers from the trace.
//
// The real GM controller is proprietary; this model reproduces the
// published statistics (18 tasks, ≈330 messages and ≈700 event pairs
// over 27 periods) and the published qualitative properties, which is
// what the learning algorithm is sensitive to.
func GMStyle() *Model {
	period := int64(20000) // 20 ms in microseconds
	tasks := []Task{
		// Infrastructure: highest priority, offset into the period so
		// its sync frame lands after the functional burst.
		{Name: "O", Priority: 100, BCET: 80, WCET: 120, Source: true, Offset: 9000, EmitsSync: true},
		// Root and sources.
		{Name: "S", Kind: Disjunction, Priority: 90, BCET: 150, WCET: 250, Source: true},
		// Mode selectors.
		{Name: "A", Kind: Disjunction, Priority: 80, BCET: 150, WCET: 250},
		{Name: "B", Kind: Disjunction, Priority: 79, BCET: 150, WCET: 250},
		{Name: "C", Priority: 78, BCET: 150, WCET: 250},
		// Mode implementations.
		{Name: "D", Priority: 70, BCET: 200, WCET: 300},
		{Name: "E", Priority: 69, BCET: 200, WCET: 300},
		{Name: "F", Priority: 68, BCET: 200, WCET: 300},
		{Name: "G", Priority: 67, BCET: 200, WCET: 300},
		// Mid pipeline.
		{Name: "N", Priority: 60, BCET: 180, WCET: 260},
		{Name: "I", Priority: 59, BCET: 180, WCET: 260},
		{Name: "J", Priority: 58, BCET: 180, WCET: 260},
		{Name: "L", Kind: Conjunction, Priority: 57, BCET: 180, WCET: 260},
		{Name: "M", Kind: Conjunction, Priority: 56, BCET: 180, WCET: 260},
		{Name: "K", Kind: Conjunction, Priority: 55, BCET: 180, WCET: 260},
		{Name: "H", Kind: Conjunction, Priority: 54, BCET: 180, WCET: 260},
		// Sinks.
		{Name: "P", Kind: Conjunction, Priority: 40, BCET: 220, WCET: 320},
		{Name: "Q", Kind: Conjunction, Priority: 30, BCET: 220, WCET: 320, WaitsSync: true},
	}
	edges := []Edge{
		{From: "S", To: "A", CANID: 20, DLC: 4},
		{From: "S", To: "B", CANID: 21, DLC: 4},
		{From: "S", To: "C", CANID: 22, DLC: 4},
		{From: "A", To: "D", CANID: 30, DLC: 6},
		{From: "A", To: "E", CANID: 31, DLC: 6},
		{From: "B", To: "F", CANID: 32, DLC: 6},
		{From: "B", To: "G", CANID: 33, DLC: 6},
		{From: "C", To: "N", CANID: 34, DLC: 6},
		{From: "C", To: "I", CANID: 35, DLC: 6},
		{From: "D", To: "H", CANID: 40, DLC: 8},
		{From: "D", To: "L", CANID: 41, DLC: 8},
		{From: "E", To: "J", CANID: 42, DLC: 8},
		{From: "E", To: "L", CANID: 43, DLC: 8},
		{From: "F", To: "K", CANID: 44, DLC: 8},
		{From: "F", To: "M", CANID: 45, DLC: 8},
		{From: "G", To: "K", CANID: 46, DLC: 8},
		{From: "G", To: "M", CANID: 47, DLC: 8},
		{From: "N", To: "H", CANID: 50, DLC: 4},
		{From: "J", To: "P", CANID: 51, DLC: 4},
		{From: "L", To: "P", CANID: 52, DLC: 4},
		{From: "M", To: "P", CANID: 53, DLC: 4},
		{From: "I", To: "P", CANID: 54, DLC: 4},
		{From: "H", To: "Q", CANID: 60, DLC: 2},
		{From: "K", To: "Q", CANID: 61, DLC: 2},
		{From: "P", To: "Q", CANID: 62, DLC: 2},
	}
	m := &Model{
		Name:      "gmstyle",
		Period:    period,
		Tasks:     tasks,
		Edges:     edges,
		SyncCANID: 5, // high arbitration priority for the sync frame
		SyncDLC:   1,
	}
	mustValidate(m)
	return m
}

// GMStyleDistributed returns the 18-task controller partitioned over
// four ECUs sharing the CAN bus, matching the paper's description of
// the case study as "a distributed system comprised of 18 tasks ...
// transmitted on one CAN bus": the mode selectors and their
// implementations run on two application ECUs, the fusion pipeline on
// a third, and the infrastructure plus sinks on a fourth. Tasks on
// different ECUs execute in parallel; the bus serializes all
// communication. Distributed execution dispatches receivers sooner
// after their inputs arrive, producing a more legible trace than the
// single-ECU variant.
func GMStyleDistributed() *Model {
	m := GMStyle()
	m.Name = "gmstyle-distributed"
	assign := map[string]string{
		"S": "ecu-gw", "O": "ecu-gw", "Q": "ecu-gw", "P": "ecu-gw",
		"A": "ecu-app1", "D": "ecu-app1", "E": "ecu-app1", "J": "ecu-app1", "L": "ecu-app1",
		"B": "ecu-app2", "F": "ecu-app2", "G": "ecu-app2", "K": "ecu-app2", "M": "ecu-app2",
		"C": "ecu-fus", "N": "ecu-fus", "I": "ecu-fus", "H": "ecu-fus",
	}
	for i := range m.Tasks {
		m.Tasks[i].ECU = assign[m.Tasks[i].Name]
	}
	mustValidate(m)
	return m
}

// GMStyleLite returns a seven-task subsystem of the GM-style
// controller used for experiments that need the exact (exponential)
// algorithm to terminate: the exact algorithm's cost is the product of
// the per-message sender/receiver ambiguity, which on the full
// 18-task trace exceeds any practical budget (see EXPERIMENTS.md).
// The subsystem preserves the case study's phenomena: a disjunction
// root (S) whose every mode leads to L (d(S,L) = →), a conjunction
// node (L), and an infrastructure task (O) whose sync frame gates P,
// creating the implicit P–O dependency analogous to the paper's Q–O
// discovery.
func GMStyleLite() *Model {
	m := &Model{
		Name:   "gmstyle-lite",
		Period: 20000,
		Tasks: []Task{
			{Name: "O", Priority: 100, BCET: 80, WCET: 120, Source: true, Offset: 4000, EmitsSync: true},
			{Name: "S", Kind: Disjunction, Priority: 90, BCET: 150, WCET: 250, Source: true},
			{Name: "A", Priority: 80, BCET: 200, WCET: 300},
			{Name: "B", Priority: 79, BCET: 200, WCET: 300},
			{Name: "L", Kind: Conjunction, Priority: 60, BCET: 180, WCET: 260},
			{Name: "P", Kind: Conjunction, Priority: 40, BCET: 220, WCET: 320, WaitsSync: true},
			{Name: "R", Priority: 30, BCET: 150, WCET: 250},
		},
		Edges: []Edge{
			{From: "S", To: "A", CANID: 20, DLC: 4},
			{From: "S", To: "B", CANID: 21, DLC: 4},
			{From: "A", To: "L", CANID: 30, DLC: 6},
			{From: "B", To: "L", CANID: 31, DLC: 6},
			{From: "L", To: "P", CANID: 40, DLC: 8},
			{From: "P", To: "R", CANID: 50, DLC: 2},
		},
		SyncCANID: 5,
		SyncDLC:   1,
	}
	mustValidate(m)
	return m
}

// RandomOptions parameterize RandomModel.
type RandomOptions struct {
	Layers        int     // DAG layers (>= 2)
	TasksPerLayer int     // tasks per layer (>= 1)
	EdgeProb      float64 // probability of an edge between adjacent-layer pairs
	DisjProb      float64 // probability a node with >= 2 outputs is a disjunction
	Period        int64
}

// DefaultRandomOptions returns a small but non-trivial configuration.
func DefaultRandomOptions() RandomOptions {
	return RandomOptions{Layers: 3, TasksPerLayer: 3, EdgeProb: 0.5, DisjProb: 0.5, Period: 20000}
}

// RandomModel generates a random layered design model for property
// testing: layer 0 tasks are sources; every non-source task gets at
// least one input from the previous layer.
func RandomModel(r *rand.Rand, opt RandomOptions) *Model {
	if opt.Layers < 2 {
		opt.Layers = 2
	}
	if opt.TasksPerLayer < 1 {
		opt.TasksPerLayer = 1
	}
	if opt.Period <= 0 {
		opt.Period = 20000
	}
	m := &Model{Name: "random", Period: opt.Period, SyncCANID: 1, SyncDLC: 1}
	prio := 100
	name := func(l, i int) string { return fmt.Sprintf("t%d_%d", l, i) }
	for l := 0; l < opt.Layers; l++ {
		for i := 0; i < opt.TasksPerLayer; i++ {
			m.Tasks = append(m.Tasks, Task{
				Name:     name(l, i),
				Priority: prio,
				BCET:     100,
				WCET:     200,
				Source:   l == 0,
			})
			prio--
		}
	}
	canID := 10
	for l := 0; l+1 < opt.Layers; l++ {
		for i := 0; i < opt.TasksPerLayer; i++ {
			from := name(l, i)
			connected := false
			for j := 0; j < opt.TasksPerLayer; j++ {
				if r.Float64() < opt.EdgeProb {
					m.Edges = append(m.Edges, Edge{From: from, To: name(l+1, j), CANID: canID, DLC: 4})
					canID++
					connected = true
				}
			}
			_ = connected
		}
		// Guarantee every next-layer task has at least one input.
		for j := 0; j < opt.TasksPerLayer; j++ {
			to := name(l+1, j)
			if len(m.InEdges(to)) == 0 {
				from := name(l, r.Intn(opt.TasksPerLayer))
				m.Edges = append(m.Edges, Edge{From: from, To: to, CANID: canID, DLC: 4})
				canID++
			}
		}
	}
	// Promote some branchy nodes to disjunctions.
	for i := range m.Tasks {
		if len(m.OutEdges(m.Tasks[i].Name)) >= 2 && r.Float64() < opt.DisjProb {
			m.Tasks[i].Kind = Disjunction
		}
	}
	// Mark multi-input nodes as conjunctions (declarative only).
	for i := range m.Tasks {
		if m.Tasks[i].Kind == Regular && len(m.InEdges(m.Tasks[i].Name)) >= 2 {
			m.Tasks[i].Kind = Conjunction
		}
	}
	mustValidate(m)
	return m
}

func mustValidate(m *Model) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
}
