package trace

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// feedLines pushes every line of the text form through the reader and
// flushes, returning all emitted periods.
func feedLines(t *testing.T, lr *LineReader, text string) []*Period {
	t.Helper()
	var out []*Period
	for _, line := range strings.Split(text, "\n") {
		p, err := lr.Line(line)
		if err != nil {
			t.Fatalf("Line(%q): %v", line, err)
		}
		if p != nil {
			out = append(out, p)
		}
	}
	p, err := lr.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if p != nil {
		out = append(out, p)
	}
	return out
}

func randomLineTrace(r *rand.Rand, nTasks, nPeriods, maxMsgs int) *Trace {
	tasks := make([]string, nTasks)
	for i := range tasks {
		tasks[i] = "t" + string(rune('a'+i))
	}
	b := NewBuilder(tasks)
	clock := int64(0)
	for p := 0; p < nPeriods; p++ {
		b.StartPeriod()
		t0 := clock
		for _, task := range tasks {
			if r.Intn(4) == 0 {
				continue // task skips this period
			}
			d := int64(1 + r.Intn(9))
			b.Exec(task, t0, t0+d)
			t0 += d + int64(r.Intn(3))
		}
		for m := 0; m < r.Intn(maxMsgs+1); m++ {
			rise := clock + int64(r.Intn(int(t0-clock)+5))
			fall := rise + int64(1+r.Intn(4))
			b.Msg("m"+string(rune('0'+m)), rise, fall)
			if fall > t0 {
				t0 = fall
			}
		}
		clock = t0 + 1
	}
	return b.MustBuild()
}

// TestLineReaderRoundTrip: feeding Write's output line by line through
// a LineReader reproduces the batch Read result — same periods, same
// contents, including the trailing period that no "period" directive
// closes (Flush emits it).
func TestLineReaderRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	traces := []*Trace{PaperFigure2()}
	for i := 0; i < 8; i++ {
		traces = append(traces, randomLineTrace(r, 2+r.Intn(4), 1+r.Intn(6), 3))
	}
	for ti, tr := range traces {
		text := tr.String()
		want, err := ReadString(text)
		if err != nil {
			t.Fatalf("trace %d: batch re-read: %v", ti, err)
		}
		lr, err := NewLineReader(tr.Tasks)
		if err != nil {
			t.Fatal(err)
		}
		got := feedLines(t, lr, text)
		if len(got) != len(want.Periods) {
			t.Fatalf("trace %d: incremental cut %d periods, batch %d", ti, len(got), len(want.Periods))
		}
		for i, p := range got {
			w := want.Periods[i]
			if p.Index != w.Index {
				t.Errorf("trace %d period %d: index %d, want %d", ti, i, p.Index, w.Index)
			}
			if len(p.Execs) != len(w.Execs) {
				t.Fatalf("trace %d period %d: %d execs, want %d", ti, i, len(p.Execs), len(w.Execs))
			}
			for task, iv := range w.Execs {
				if p.Execs[task] != iv {
					t.Errorf("trace %d period %d: exec %q = %+v, want %+v", ti, i, task, p.Execs[task], iv)
				}
			}
			if len(p.Msgs) != len(w.Msgs) {
				t.Fatalf("trace %d period %d: %d msgs, want %d", ti, i, len(p.Msgs), len(w.Msgs))
			}
			for j, m := range w.Msgs {
				if p.Msgs[j] != m {
					t.Errorf("trace %d period %d msg %d: %+v, want %+v", ti, i, j, p.Msgs[j], m)
				}
			}
		}
		if lr.Partial() {
			t.Errorf("trace %d: reader still partial after flush", ti)
		}
	}
}

// TestLineReaderEventForms: the raw event directives (start/end,
// rise/fall) pair up incrementally exactly like Read, and a "tasks"
// echo line matching the configured set is accepted.
func TestLineReaderEventForms(t *testing.T) {
	lr, err := NewLineReader([]string{"t1", "t2"})
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		"tasks t1 t2",
		"# comment",
		"",
		"start t1 0",
		"rise m1 3",
		"end t1 5",
		"fall m1 6",
		"start t2 7",
		"end t2 9",
	}
	for _, line := range lines {
		if p, err := lr.Line(line); err != nil || p != nil {
			t.Fatalf("Line(%q) = %v, %v; want nil, nil", line, p, err)
		}
	}
	p, err := lr.Line("period")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("period directive did not cut")
	}
	if p.Execs["t1"] != (Interval{Start: 0, End: 5}) || p.Execs["t2"] != (Interval{Start: 7, End: 9}) {
		t.Fatalf("execs = %+v", p.Execs)
	}
	if len(p.Msgs) != 1 || p.Msgs[0] != (Message{ID: "m1", Rise: 3, Fall: 6}) {
		t.Fatalf("msgs = %+v", p.Msgs)
	}
	// Nothing pending: flush is a no-op, a second period line too.
	if p, err := lr.Flush(); err != nil || p != nil {
		t.Fatalf("empty Flush = %v, %v", p, err)
	}
}

// TestLineReaderCloneIndependence: mutating the original after Clone
// (or the clone after cloning) leaves the other side untouched — the
// property serve's two-phase ingest depends on.
func TestLineReaderCloneIndependence(t *testing.T) {
	lr, err := NewLineReader([]string{"t1", "t2"})
	if err != nil {
		t.Fatal(err)
	}
	mustLine := func(r *LineReader, s string) *Period {
		t.Helper()
		p, err := r.Line(s)
		if err != nil {
			t.Fatalf("Line(%q): %v", s, err)
		}
		return p
	}
	mustLine(lr, "start t1 0")
	mustLine(lr, "rise m1 2")

	cp := lr.Clone()
	// Finish the pair on the clone only.
	mustLine(cp, "end t1 4")
	mustLine(cp, "fall m1 5")
	if p := mustLine(cp, "period"); p == nil {
		t.Fatal("clone did not cut")
	}
	if cp.Partial() {
		t.Error("clone still partial after its cut")
	}

	// The original still has both pairs open: a cut must fail with
	// ErrCrossingPeriod, proving the clone's progress did not leak back.
	if _, err := lr.Flush(); !errors.Is(err, ErrCrossingPeriod) {
		t.Fatalf("original Flush = %v, want ErrCrossingPeriod", err)
	}
	// And it can still be completed independently with different times.
	mustLine(lr, "end t1 9")
	mustLine(lr, "fall m1 10")
	p, err := lr.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if p.Execs["t1"] != (Interval{Start: 0, End: 9}) {
		t.Fatalf("original exec = %+v after clone diverged", p.Execs["t1"])
	}
}

// TestLineReaderErrors: malformed feeds fail with the same sentinel
// errors the batch reader uses.
func TestLineReaderErrors(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  error
	}{
		{"truncated exec", []string{"exec t1 0"}, ErrTruncatedEvent},
		{"bad timestamp", []string{"exec t1 zero 5"}, ErrBadTimestamp},
		{"unknown task", []string{"exec tx 0 5"}, ErrUnknownTask},
		{"duplicate exec", []string{"exec t1 0 5", "exec t1 6 9"}, ErrDuplicateExec},
		{"double start", []string{"start t1 0", "start t1 1"}, ErrUnmatchedEvent},
		{"end without start", []string{"end t1 5"}, ErrUnmatchedEvent},
		{"double rise", []string{"rise m1 0", "rise m1 1"}, ErrUnmatchedEvent},
		{"fall without rise", []string{"fall m1 5"}, ErrUnmatchedEvent},
		{"pair crosses period", []string{"start t1 0", "period"}, ErrCrossingPeriod},
		{"inverted exec", []string{"exec t1 9 5", "period"}, ErrInvertedEvent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lr, err := NewLineReader([]string{"t1", "t2"})
			if err != nil {
				t.Fatal(err)
			}
			var last error
			for _, line := range tc.lines {
				if _, last = lr.Line(line); last != nil {
					break
				}
			}
			if !errors.Is(last, tc.want) {
				t.Fatalf("feed %v: err = %v, want %v", tc.lines, last, tc.want)
			}
		})
	}

	if _, err := NewLineReader(nil); err == nil {
		t.Error("NewLineReader accepted an empty task set")
	}
	if _, err := NewLineReader([]string{"t1", "t1"}); err == nil {
		t.Error("NewLineReader accepted duplicate tasks")
	}
	lr, _ := NewLineReader([]string{"t1"})
	if _, err := lr.Line("tasks t1 t2"); err == nil {
		t.Error("mismatched tasks echo accepted")
	}
	if _, err := lr.Line("frobnicate t1 0"); err == nil {
		t.Error("unknown directive accepted")
	}
}
