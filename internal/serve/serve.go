// Package serve implements the model-generation service: a
// long-running HTTP server multiplexing many independent trace
// streams, each backed by its own online learner (see
// internal/learner). A logging device POSTs raw trace or candump
// lines as they are captured; the service cuts periods server-side,
// feeds them to the stream's learner, and serves the current
// dependency-model frontier at any time — the paper's workflow turned
// into an always-on endpoint.
//
// Design:
//
//   - Per-stream goroutine ownership. Each stream's learner is
//     touched only by its owner goroutine; the HTTP layer communicates
//     through a bounded period queue and a closure request channel.
//     There is no shared mutable learner state and nothing to lock.
//   - Explicit backpressure. The ingest queue is bounded; a batch
//     that does not fit entirely is rejected with 429 and Retry-After
//     and leaves no partial state behind (clone-and-commit parsing),
//     so the producer can simply resend it.
//   - Checkpoints. Stream state (the versioned learner snapshot plus
//     the serve envelope) is written to disk atomically every
//     CheckpointEvery periods, on graceful shutdown, and on demand; a
//     restarted server reopens every checkpointed stream with
//     bit-identical learner state.
//   - Graceful drain. Shutdown stops ingest, lets every owner finish
//     the queued periods, checkpoints, and only then returns.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Config configures a Server.
type Config struct {
	// CheckpointDir is where stream checkpoints live. Empty disables
	// checkpointing (streams are purely in-memory).
	CheckpointDir string
	// CheckpointEvery checkpoints a stream after this many learned
	// periods. Zero checkpoints only on demand and on shutdown.
	CheckpointEvery int
	// QueueDepth bounds each stream's ingest queue (default 256).
	QueueDepth int
	// MaxBody bounds an events request body in bytes (default 8 MiB).
	MaxBody int64
	// Registry, when non-nil, receives the service metrics:
	// serve_streams, and per-stream serve_queue_depth{stream=...},
	// serve_periods_total{stream=...}, serve_shed_total{stream=...}.
	// The registry's Prometheus handler is mounted at /metrics.
	Registry *obs.Registry
}

// Server multiplexes trace streams over HTTP. Create with New, mount
// Handler, and Shutdown when done.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	streams map[string]*stream
	closed  bool
	nextID  atomic.Int64

	mStreams *obs.Gauge
}

// New builds a Server. Call RestoreFromDir afterwards to reopen
// checkpointed streams.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	sv := &Server{cfg: cfg, streams: map[string]*stream{}}
	if cfg.Registry != nil {
		sv.mStreams = cfg.Registry.Gauge("serve_streams", "Number of live trace streams.")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.HandleFunc("POST /v1/streams", sv.handleCreate)
	mux.HandleFunc("GET /v1/streams", sv.handleList)
	mux.HandleFunc("POST /v1/streams/{id}/events", sv.handleEvents)
	mux.HandleFunc("GET /v1/streams/{id}/model", sv.handleModel)
	mux.HandleFunc("GET /v1/streams/{id}/stats", sv.handleStats)
	mux.HandleFunc("POST /v1/streams/{id}/checkpoint", sv.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/streams/{id}", sv.handleDelete)
	if cfg.Registry != nil {
		mux.Handle("GET /metrics", cfg.Registry.Handler())
	}
	sv.mux = mux
	return sv
}

// Handler returns the HTTP handler for the whole API surface.
func (sv *Server) Handler() http.Handler { return sv.mux }

// StreamCount returns the number of live streams.
func (sv *Server) StreamCount() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return len(sv.streams)
}

// RestoreFromDir reopens every checkpointed stream found in
// Config.CheckpointDir, returning how many were restored. Restored
// learner state is bit-identical to the checkpoint: feeding the same
// subsequent periods yields the same models the original process
// would have produced.
func (sv *Server) RestoreFromDir() (int, error) {
	if sv.cfg.CheckpointDir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(sv.cfg.CheckpointDir, "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	n := 0
	for _, path := range paths {
		if err := sv.restoreOne(path); err != nil {
			return n, fmt.Errorf("serve: restore %s: %w", path, err)
		}
		n++
	}
	return n, nil
}

func (sv *Server) restoreOne(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var cf checkpointFile
	if err := json.NewDecoder(f).Decode(&cf); err != nil {
		return err
	}
	if cf.ServeVersion != serveVersion {
		return fmt.Errorf("checkpoint envelope version %d, this binary reads %d", cf.ServeVersion, serveVersion)
	}
	if cf.Info.ID != strings.TrimSuffix(filepath.Base(path), ".json") {
		return fmt.Errorf("checkpoint names stream %q but file is %s", cf.Info.ID, filepath.Base(path))
	}
	opt := cf.Info.Options.options()
	o, err := learner.RestoreOnline(cf.Snapshot, opt)
	if err != nil {
		return err
	}
	_, err = sv.addStream(cf.Info, o, opt, cf.Snapshot.Stats.Periods)
	return err
}

// Shutdown drains every stream (remaining queued periods are learned
// and checkpointed) and refuses new work. It returns early with the
// context's error if draining outlasts the deadline.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.mu.Lock()
	sv.closed = true
	streams := make([]*stream, 0, len(sv.streams))
	for _, s := range sv.streams {
		streams = append(streams, s)
	}
	sv.mu.Unlock()

	for _, s := range streams {
		s.close()
	}
	for _, s := range streams {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// addStream wires up a stream (fresh or restored) and starts its
// owner goroutine.
func (sv *Server) addStream(info StreamInfo, o *learner.Online, opt learner.Options, learned int) (*stream, error) {
	p, err := newParser(info.Tasks, info.BitRate, info.PeriodUS)
	if err != nil {
		return nil, err
	}
	s := &stream{
		id:             info.ID,
		info:           info,
		opt:            opt,
		parser:         p,
		queue:          make(chan *trace.Period, sv.cfg.QueueDepth),
		reqs:           make(chan func(*learner.Online)),
		closing:        make(chan struct{}),
		done:           make(chan struct{}),
		o:              o,
		learned:        learned,
		checkpointDir:  sv.cfg.CheckpointDir,
		checkpointEach: sv.cfg.CheckpointEvery,
	}
	s.cut.Store(int64(learned))
	if reg := sv.cfg.Registry; reg != nil {
		s.mQueueDepth = reg.LabeledGauge("serve_queue_depth",
			"Ingest queue occupancy per stream.", "stream", s.id)
		s.mPeriods = reg.LabeledCounter("serve_periods_total",
			"Periods cut and queued per stream.", "stream", s.id)
		s.mShed = reg.LabeledCounter("serve_shed_total",
			"Ingest batches shed with 429 per stream.", "stream", s.id)
	}

	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.dropStreamMetrics(s)
		return nil, errors.New("serve: server is shutting down")
	}
	if _, dup := sv.streams[s.id]; dup {
		sv.mu.Unlock()
		sv.dropStreamMetrics(s)
		return nil, fmt.Errorf("serve: stream %q already exists", s.id)
	}
	sv.streams[s.id] = s
	if sv.mStreams != nil {
		sv.mStreams.Set(int64(len(sv.streams)))
	}
	sv.mu.Unlock()

	go s.run()
	return s, nil
}

func (sv *Server) dropStreamMetrics(s *stream) {
	reg := sv.cfg.Registry
	if reg == nil {
		return
	}
	reg.Unregister(obs.SeriesName("serve_queue_depth", "stream", s.id))
	reg.Unregister(obs.SeriesName("serve_periods_total", "stream", s.id))
	reg.Unregister(obs.SeriesName("serve_shed_total", "stream", s.id))
}

func (sv *Server) stream(id string) (*stream, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.streams[id]
	return s, ok
}

// ---- handlers ----

func (sv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateStreamRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad create body: %w", err))
		return
	}
	if req.ID == "" {
		req.ID = fmt.Sprintf("s%d", sv.nextID.Add(1))
	}
	if err := validateID(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt := req.Options.options()
	o, err := learner.NewOnline(req.Tasks, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info := StreamInfo{ID: req.ID, Tasks: append([]string(nil), req.Tasks...),
		BitRate: req.BitRate, PeriodUS: req.PeriodUS, Options: req.Options}
	s, err := sv.addStream(info, o, opt, 0)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.info)
}

func (sv *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	infos := make([]StreamInfo, 0, len(sv.streams))
	for _, s := range sv.streams {
		infos = append(infos, s.info)
	}
	sv.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (sv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sv.cfg.MaxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: events body: %w", err))
		return
	}
	lines := strings.Split(string(body), "\n")
	resp, shed, err := s.ingest(lines)
	switch {
	case shed:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrStreamClosed):
		writeError(w, http.StatusGone, err)
	case err != nil && s.deadErr() != nil:
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (sv *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	var res *learner.Result
	var resErr error
	err := s.do(func(o *learner.Online) { res, resErr = o.Result() })
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	if resErr != nil {
		writeError(w, http.StatusConflict, resErr)
		return
	}
	if r.URL.Query().Get("format") == "dot" {
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, res.LUB.DOT(s.id))
		return
	}
	m := ModelResponse{
		ID:        s.id,
		Tasks:     res.TaskSet.Names(),
		LUB:       res.LUB.Table(),
		Converged: res.Converged,
		Periods:   res.Stats.Periods,
	}
	for _, d := range res.Hypotheses {
		m.Hypotheses = append(m.Hypotheses, d.Table())
	}
	writeJSON(w, http.StatusOK, m)
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	resp := StatsResponse{ID: s.id, QueueCap: cap(s.queue)}
	err := s.do(func(o *learner.Online) {
		resp.Engine = o.Stats()
		resp.WorkingSet = o.WorkingSetSize()
		resp.PeriodsLearned = resp.Engine.Periods
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	resp.PeriodsCut = int(s.cut.Load())
	resp.QueueDepth = len(s.queue)
	resp.Shed = s.shed.Load()
	s.feedMu.Lock()
	resp.Partial = s.parser.partial()
	s.feedMu.Unlock()
	if derr := s.deadErr(); derr != nil {
		resp.Err = derr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	if sv.cfg.CheckpointDir == "" {
		writeError(w, http.StatusConflict, errors.New("serve: server has no checkpoint directory"))
		return
	}
	var path string
	var cpErr error
	var periods int
	err := s.do(func(o *learner.Online) {
		path, cpErr = s.checkpoint()
		periods = o.Stats().Periods
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	if cpErr != nil {
		writeError(w, http.StatusConflict, cpErr)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{ID: s.id, Path: path, Periods: periods})
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv.mu.Lock()
	s, ok := sv.streams[id]
	if ok {
		delete(sv.streams, id)
		if sv.mStreams != nil {
			sv.mStreams.Set(int64(len(sv.streams)))
		}
	}
	sv.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", id))
		return
	}
	s.close()
	<-s.done
	s.removeCheckpoint()
	sv.dropStreamMetrics(s)
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
