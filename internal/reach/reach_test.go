package reach

import (
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/casestudy"
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/learner"
)

func TestExploreUnconstrained(t *testing.T) {
	ts := depfunc.MustTaskSet("a", "b", "c")
	res, err := Explore(depfunc.Bottom(ts))
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 8 || res.Baseline != 8 || res.Reduction != 0 {
		t.Errorf("unconstrained: %+v", res)
	}
}

func TestExploreChain(t *testing.T) {
	// a -> b -> c: completions are totally ordered, so the downsets
	// are exactly the 4 prefixes.
	d := depfunc.MustParseTable(`
      a     b     c
a     ||    ->    ||
b     <-    ||    ->
c     ||    <-    ||
`)
	res, err := Explore(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 4 {
		t.Errorf("chain states = %d, want 4", res.States)
	}
	if res.Reduction != 0.5 {
		t.Errorf("reduction = %f, want 0.5", res.Reduction)
	}
}

func TestExploreBwdEntriesCount(t *testing.T) {
	// The same chain expressed only with <- entries.
	d := depfunc.MustParseTable(`
      a     b     c
a     ||    ||    ||
b     <-    ||    ||
c     ||    <-    ||
`)
	res, err := Explore(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 4 {
		t.Errorf("states = %d, want 4", res.States)
	}
}

func TestExploreDiamond(t *testing.T) {
	// a before b and c; b, c before d: downsets of the diamond: {},
	// {a}, {ab}, {ac}, {abc}, {abcd} = 6.
	d := depfunc.MustParseTable(`
      a     b     c     d
a     ||    ->    ->    ||
b     <-    ||    ||    ->
c     <-    ||    ||    ->
d     ||    <-    <-    ||
`)
	res, err := Explore(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 6 {
		t.Errorf("diamond states = %d, want 6", res.States)
	}
}

func TestConditionalEntriesDoNotConstrain(t *testing.T) {
	d := depfunc.MustParseTable(`
      a     b
a     ||    ->?
b     <-?   ||
`)
	res, err := Explore(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 4 {
		t.Errorf("states = %d, want 4 (conditional values impose no order)", res.States)
	}
}

func TestExploreTooManyTasks(t *testing.T) {
	ts, err := depfunc.NewTaskSet(uniqueNames(MaxTasks + 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(depfunc.Bottom(ts)); err == nil {
		t.Error("oversized task set accepted")
	}
	if _, _, err := Reachable(depfunc.Bottom(ts), func(uint32) bool { return true }); err == nil {
		t.Error("oversized task set accepted by Reachable")
	}
}

func uniqueNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "t" + string(rune('a'+i/10)) + string(rune('0'+i%10))
	}
	return out
}

func TestReachableQuery(t *testing.T) {
	// b depends on a: "b completed without a" must be unreachable.
	d := depfunc.MustParseTable(`
      a     b
a     ||    ->
b     <-    ||
`)
	q, err := CompletedWithout(d, "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := Reachable(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("b-without-a should be unreachable under a -> b")
	}
	// The reverse is reachable with witness {a}.
	q, err = CompletedWithout(d, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ok, witness, err := Reachable(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(witness) != 1 || witness[0] != "a" {
		t.Errorf("a-without-b: ok=%v witness=%v", ok, witness)
	}
}

func TestCompletedWithoutErrors(t *testing.T) {
	ts := depfunc.MustTaskSet("a")
	d := depfunc.Bottom(ts)
	if _, err := CompletedWithout(d, "zz", "a"); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := CompletedWithout(d, "a", "zz"); err == nil {
		t.Error("unknown task accepted")
	}
}

// TestExploreCountsAreDownsets cross-checks the DFS count against
// brute-force downset enumeration on random precedence orders.
func TestExploreCountsAreDownsets(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 50; iter++ {
		n := 2 + r.Intn(5)
		names := uniqueNames(n)
		ts, err := depfunc.NewTaskSet(names)
		if err != nil {
			t.Fatal(err)
		}
		d := depfunc.Bottom(ts)
		// Random DAG edges i < j only (acyclic by construction).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					d.Set(i, j, lattice.Fwd)
					d.Set(j, i, lattice.Bwd)
				}
			}
		}
		res, err := Explore(d)
		if err != nil {
			t.Fatal(err)
		}
		pred := Precedence(d)
		brute := 0
		for s := uint32(0); s < 1<<uint(n); s++ {
			ok := true
			for task := 0; task < n; task++ {
				if s&(1<<uint(task)) != 0 && s&pred[task] != pred[task] {
					ok = false
					break
				}
			}
			if ok {
				brute++
			}
		}
		if res.States != brute {
			t.Fatalf("iter %d: DFS %d vs brute %d downsets", iter, res.States, brute)
		}
	}
}

// TestCaseStudyStateSpace quantifies the paper's state-space-reduction
// claim on the real learned model: the 18-task pessimistic space has
// 2^18 = 262144 states; the learned dependencies eliminate the vast
// majority, and the implicit Q-O ordering is provable by reachability.
func TestCaseStudyStateSpace(t *testing.T) {
	tr := casestudy.MustFullTrace()
	res, err := learner.LearnBounded(tr, 32, casestudy.FullPolicy())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Explore(res.LUB)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Baseline != 1<<18 {
		t.Fatalf("baseline = %d", exp.Baseline)
	}
	if exp.Reduction < 0.9 {
		t.Errorf("state-space reduction = %.3f, want > 0.9 (%d of %d states)",
			exp.Reduction, exp.States, exp.Baseline)
	}
	// The safety proof: Q can never complete before O.
	q, err := CompletedWithout(res.LUB, "Q", "O")
	if err != nil {
		t.Fatal(err)
	}
	ok, witness, err := Reachable(res.LUB, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("Q-without-O reachable via %v despite learned d(Q,O)=<-", witness)
	}
}
