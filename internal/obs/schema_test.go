package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestEventKindStrings pins every kind string of the JSONL schema:
// these are a wire format consumed by offline tooling, so a rename is
// a breaking change and must fail a test, not slip through.
func TestEventKindStrings(t *testing.T) {
	kinds := map[Event]string{
		EngineStart{}:       "engine_start",
		PeriodStart{}:       "period_start",
		MessageProcessed{}:  "message_processed",
		HypothesisSpawned{}: "hypothesis_spawned",
		HypothesisMerged{}:  "hypothesis_merged",
		HypothesisPruned{}:  "hypothesis_pruned",
		PeriodEnd{}:         "period_end",
		RunEnd{}:            "run_end",
		Pipeline{}:          "pipeline",
		Provenance{}:        "provenance",
		SpanEnd{}:           "span",
	}
	for e, want := range kinds {
		if got := e.Kind(); got != want {
			t.Errorf("%T.Kind() = %q, want %q", e, got, want)
		}
	}
	// The catalogue above must be exhaustive: every kind ParseJSONL
	// understands round-trips through it.
	var lines bytes.Buffer
	sink := NewJSONLSink(&lines)
	for e := range kinds {
		emitEvent(sink, e)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONL(&lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(kinds) {
		t.Errorf("ParseJSONL returned %d of %d kinds", len(back), len(kinds))
	}
}

// emitEvent dispatches a typed event through the Observer interface.
func emitEvent(o Observer, e Event) {
	switch e := e.(type) {
	case EngineStart:
		o.OnEngineStart(e)
	case PeriodStart:
		o.OnPeriodStart(e)
	case MessageProcessed:
		o.OnMessageProcessed(e)
	case HypothesisSpawned:
		o.OnHypothesisSpawned(e)
	case HypothesisMerged:
		o.OnHypothesisMerged(e)
	case HypothesisPruned:
		o.OnHypothesisPruned(e)
	case PeriodEnd:
		o.OnPeriodEnd(e)
	case RunEnd:
		o.OnRunEnd(e)
	case Pipeline:
		o.OnPipeline(e)
	case Provenance:
		o.OnProvenance(e)
	case SpanEnd:
		o.OnSpan(e)
	}
}

// TestProvenanceWireFormat pins the field names of the provenance
// event and the omission of empty optional fields.
func TestProvenanceWireFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.OnProvenance(Provenance{Period: 2, Index: 4, Msg: "m5", Sender: "t1", Receiver: "t4",
		Task1: "t1", Task2: "t4", From: "||", To: "->", Action: "assume"})
	s.OnProvenance(Provenance{Period: 2, Index: -1, Task1: "t1", Task2: "t4",
		From: "->", To: "->?", Action: "relax"})
	s.OnSpan(SpanEnd{Phase: "generalize", ElapsedNS: 1234})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// encoding/json HTML-escapes < and >, so lattice arrows appear as
	// < / > on the wire; ParseJSONL restores them.
	want0 := `{"event":"provenance","period":2,"index":4,"msg":"m5","sender":"t1","receiver":"t4","task1":"t1","task2":"t4","from":"||","to":"-\u003e","action":"assume"}`
	if lines[0] != want0 {
		t.Errorf("assume line:\n got %s\nwant %s", lines[0], want0)
	}
	for _, frag := range []string{`"msg"`, `"sender"`, `"receiver"`} {
		if strings.Contains(lines[1], frag) {
			t.Errorf("relax line should omit %s: %s", frag, lines[1])
		}
	}
	want2 := `{"event":"span","phase":"generalize","elapsed_ns":1234}`
	if lines[2] != want2 {
		t.Errorf("span line:\n got %s\nwant %s", lines[2], want2)
	}
}

// TestPrometheusGolden pins the Prometheus text exposition format
// (0.0.4): HELP/TYPE preamble, counter and gauge samples, cumulative
// histogram buckets with +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("modelgen_learner_runs_total", "completed learning runs").Add(3)
	reg.Gauge("modelgen_learner_peak_hypotheses", "peak working-set size").Set(17)
	h := reg.Histogram("modelgen_phase_generalize_seconds", "wall time of the generalize phase", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP modelgen_learner_peak_hypotheses peak working-set size",
		"# TYPE modelgen_learner_peak_hypotheses gauge",
		"modelgen_learner_peak_hypotheses 17",
		"# HELP modelgen_learner_runs_total completed learning runs",
		"# TYPE modelgen_learner_runs_total counter",
		"modelgen_learner_runs_total 3",
		"# HELP modelgen_phase_generalize_seconds wall time of the generalize phase",
		"# TYPE modelgen_phase_generalize_seconds histogram",
		`modelgen_phase_generalize_seconds_bucket{le="0.001"} 1`,
		`modelgen_phase_generalize_seconds_bucket{le="0.01"} 1`,
		`modelgen_phase_generalize_seconds_bucket{le="0.1"} 2`,
		`modelgen_phase_generalize_seconds_bucket{le="+Inf"} 3`,
		"modelgen_phase_generalize_seconds_sum 2.0505",
		"modelgen_phase_generalize_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("Prometheus exposition diverges:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSpanEmission checks the Span helper end to end: phase name and
// a sane elapsed time on the observed path, full inertness on the nil
// path.
func TestSpanEmission(t *testing.T) {
	r := NewRecorder()
	sp := StartSpan(r, PhaseGeneralize)
	sp.End()
	evs := r.OfKind("span")
	if len(evs) != 1 {
		t.Fatalf("span events = %d", len(evs))
	}
	e := evs[0].(SpanEnd)
	if e.Phase != "generalize" || e.ElapsedNS < 0 {
		t.Errorf("span = %+v", e)
	}

	nilSpan := StartSpan(nil, PhaseVerify)
	nilSpan.End() // must not panic
	if !nilSpan.start.IsZero() {
		t.Error("nil-observer span read the clock")
	}
}

// TestSpanMetricsBridge: span events create and feed the per-phase
// histogram lazily.
func TestSpanMetricsBridge(t *testing.T) {
	reg := NewRegistry()
	mo := NewMetricsObserver(reg)
	mo.OnSpan(SpanEnd{Phase: "candidates", ElapsedNS: 2_000_000}) // 2ms
	mo.OnSpan(SpanEnd{Phase: "candidates", ElapsedNS: 3_000_000})
	snap := reg.Snapshot()
	m, ok := snap[PhaseMetric("candidates")]
	if !ok {
		t.Fatalf("no %s in snapshot", PhaseMetric("candidates"))
	}
	if m.Count != 2 {
		t.Errorf("count = %d, want 2", m.Count)
	}
	if m.Sum < 0.0049 || m.Sum > 0.0051 {
		t.Errorf("sum = %v, want ~0.005", m.Sum)
	}
}

// TestFileSinkRoundTrip: the shared -events helper writes a parseable
// stream, flushes on Close, and reports its destination.
func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Path() != path {
		t.Errorf("Path() = %q", sink.Path())
	}
	rec := NewRecorder()
	emitAll(NewMulti(rec, sink))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ParseJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec.Events()) {
		t.Errorf("file round trip diverges from recorder")
	}
	// Every line must be standalone JSON (buffered writes must not
	// split lines).
	data, _ := os.ReadFile(path)
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("line %d is not valid JSON: %s", i+1, line)
		}
	}
}

// TestFileSinkCreateError: an unwritable path fails at open, not at
// first event.
func TestFileSinkCreateError(t *testing.T) {
	if _, err := OpenFileSink(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")); err == nil {
		t.Error("OpenFileSink accepted an unwritable path")
	}
}
