GO ?= go

.PHONY: check vet build test race bench tidy

## check: the full gate — vet, build everything, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the learner benchmarks, including the zero-allocation
## observer guard (compare nil vs nop allocs/op).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/learner/

tidy:
	$(GO) mod tidy
