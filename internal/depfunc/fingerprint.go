package depfunc

import "github.com/blackbox-rt/modelgen/internal/lattice"

// The learner deduplicates and unifies hypotheses constantly: every
// message of every period compares freshly spawned children against
// the working set, and the end-of-period pass unifies equal dependency
// functions. The original implementation built a canonical string
// (Key) for each comparison — an O(t²) allocation per child on the
// hottest path of the O(m·b² + m·b·t²) heuristic. The engine instead
// maintains a 64-bit fingerprint incrementally: every entry mutation
// (Set, JoinAt, JoinWith, Meet, RelaxViolations) XORs out the old
// entry's hash and XORs in the new one, so reading the fingerprint is
// O(1) and allocation-free.
//
// The fingerprint is a Zobrist hash: each (entry index, lattice value)
// combination contributes a fixed pseudo-random 64-bit token, and the
// fingerprint of a matrix is the XOR of the tokens of all its entries.
// XOR makes the scheme order-independent and self-inverse, which is
// exactly what incremental maintenance needs. Tokens come from the
// SplitMix64 finalizer instead of a lookup table, so no per-task-set
// state is required.
//
// Equal fingerprints do not *prove* equal matrices (64-bit collisions
// exist in principle), so every deduplication site confirms a
// fingerprint hit with a full Equal/SameState comparison before
// unifying. Unequal fingerprints do prove unequal matrices, which is
// the common case and the one worth making O(1).

// mix64 is the SplitMix64 finalizer, a cheap bijective mixer with
// good avalanche behaviour (Steele et al., "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// entryHash is the Zobrist token of holding lattice value v at flat
// matrix index idx. The seven lattice values (shifted to 1..7) fit in
// 3 bits, so (idx, v) packs injectively into the mixer input.
func entryHash(idx int, v lattice.Value) uint64 {
	return mix64(uint64(idx)<<3 | (uint64(v) + 1))
}

// Fingerprint returns the 64-bit Zobrist fingerprint of the matrix,
// maintained incrementally by every mutation. Two functions over the
// same task set with different fingerprints are guaranteed unequal;
// equal fingerprints must be confirmed with Equal before treating the
// functions as identical.
func (d *DepFunc) Fingerprint() uint64 { return d.fp }

// freshFingerprint recomputes the fingerprint from scratch; Bottom
// uses it to establish the invariant and tests use it to check that
// incremental maintenance never drifts. The hash is defined over the
// ordinal lattice values, independent of the packed storage encoding,
// so matrices with equal entries fingerprint identically no matter
// which kernel produced them.
func freshFingerprint(v []lattice.Value) uint64 {
	var fp uint64
	for idx, val := range v {
		fp ^= entryHash(idx, val)
	}
	return fp
}

// freshFingerprint is the method form over the packed representation.
func (d *DepFunc) freshFingerprint() uint64 {
	var fp uint64
	n2 := d.ts.Len() * d.ts.Len()
	for idx := 0; idx < n2; idx++ {
		fp ^= entryHash(idx, lattice.UnpackValue(d.codeAt(idx)))
	}
	return fp
}

// Fingerprint returns the Zobrist token of the ordered pair, used by
// the hypothesis layer to fingerprint assumption sets the same way
// matrix entries are fingerprinted (XOR of per-pair tokens).
func (p Pair) Fingerprint() uint64 {
	return mix64(uint64(uint32(p.S))<<32 | uint64(uint32(p.R)))
}
