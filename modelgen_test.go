package modelgen_test

import (
	"strings"
	"testing"

	modelgen "github.com/blackbox-rt/modelgen"
)

// TestPublicAPIPaperExample drives the full public surface on the
// paper's worked example.
func TestPublicAPIPaperExample(t *testing.T) {
	tr := modelgen.PaperTrace()
	res, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypotheses) != 5 {
		t.Fatalf("hypotheses = %d, want 5", len(res.Hypotheses))
	}
	want, err := modelgen.ParseDepTable(`
      t1    t2    t3    t4
t1    ||    ->?   ->?   ->
t2    <-    ||    ||    ->
t3    <-    ||    ||    ->
t4    <-    <-?   <-?   ||
`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LUB.Equal(want) {
		t.Errorf("LUB:\n%s\nwant:\n%s", res.LUB.Table(), want.Table())
	}
	if ok, p := modelgen.MatchTrace(res.LUB, tr, modelgen.CandidatePolicy{}); !ok {
		t.Errorf("LUB fails period %d", p)
	}
	if !modelgen.Determines(res.LUB, "t1", "t4") {
		t.Error("t1 should determine t4")
	}
}

// TestPublicAPISimulateAndLearn: simulate a built-in model, learn and
// verify through the facade only.
func TestPublicAPISimulateAndLearn(t *testing.T) {
	out, err := modelgen.Simulate(modelgen.Figure1Model(), modelgen.SimOptions{Periods: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := modelgen.LearnBounded(out.Trace, 8, modelgen.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !modelgen.Determines(res.LUB, "t1", "t4") {
		t.Errorf("d(t1,t4) = %v, want ->", res.LUB.MustGet("t1", "t4"))
	}
	rep := modelgen.Analyze(res.LUB)
	if rep.Tasks != 4 {
		t.Errorf("report tasks = %d", rep.Tasks)
	}
}

func TestPublicAPITraceBuilderAndIO(t *testing.T) {
	tr, err := modelgen.NewTraceBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 5).Msg("m", 6, 7).Exec("b", 9, 12).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := modelgen.WriteTrace(&sb, tr); err != nil {
		t.Fatal(err)
	}
	back, err := modelgen.ReadTraceString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != tr.Stats() {
		t.Error("round trip changed stats")
	}
	res, err := modelgen.Learn(back, modelgen.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("trivial trace should converge")
	}
	if res.LUB.MustGet("a", "b") != modelgen.Fwd {
		t.Errorf("d(a,b) = %v", res.LUB.MustGet("a", "b"))
	}
}

func TestPublicAPILatency(t *testing.T) {
	m := modelgen.GMStyleModel()
	path := modelgen.LatencyPath{Tasks: []string{"S", "A", "D", "L", "P", "Q"}}
	cmp, err := modelgen.CompareLatency(m, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Pessimistic.Total != cmp.Informed.Total {
		t.Error("nil dependency function should change nothing")
	}
	if abs, _ := cmp.Improvement(); abs != 0 {
		t.Errorf("improvement = %d, want 0", abs)
	}
}

func TestPublicAPICaseStudyConfig(t *testing.T) {
	if modelgen.CaseStudyPeriods != 27 {
		t.Error("case study periods changed")
	}
	bounds := modelgen.CaseStudyBounds()
	if len(bounds) != 8 || bounds[0] != 1 || bounds[7] != 150 {
		t.Errorf("bounds = %v", bounds)
	}
	lite := modelgen.CaseStudyPolicy(true)
	if lite.MaxSenders == 0 {
		t.Error("lite policy should bound senders")
	}
	full := modelgen.CaseStudyPolicy(false)
	if full != (modelgen.CandidatePolicy{}) {
		t.Error("full policy should be purely causal")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	// Unexplainable message surfaces the documented error.
	tr, err := modelgen.NewTraceBuilder([]string{"a"}).
		StartPeriod().Msg("m", 0, 1).Exec("a", 2, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{}); err == nil {
		t.Fatal("expected ErrNoHypothesis")
	}
}
