// Package verify extracts and checks system properties from learned
// dependency functions, as in Section 3.4 of the paper: classifying
// tasks as disjunction or conjunction nodes, proving must-execute
// properties such as d(A,L) = →, computing reachability over the
// dependency graph, and quantifying how much the learned dependencies
// shrink the state space a model checker would have to explore
// compared with the pessimistic all-tasks-independent assumption.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// DisjunctionNodes returns the tasks that behave as disjunction nodes
// in the learned model: tasks with at least two conditional outgoing
// dependencies (d(t, x) = →?), i.e. tasks observed to choose among
// execution paths.
func DisjunctionNodes(d *depfunc.DepFunc) []string {
	ts := d.TaskSet()
	var out []string
	for i := 0; i < ts.Len(); i++ {
		n := 0
		for j := 0; j < ts.Len(); j++ {
			if i != j && d.At(i, j) == lattice.FwdMaybe {
				n++
			}
		}
		if n >= 2 {
			out = append(out, ts.Name(i))
		}
	}
	sort.Strings(out)
	return out
}

// ConjunctionNodes returns the tasks that behave as conjunction nodes:
// tasks with at least two incoming dependencies (d(t, x) ∈ {←, ←?})
// of which at least one is conditional — they passively receive from
// several possible predecessors, depending on decisions others made.
func ConjunctionNodes(d *depfunc.DepFunc) []string {
	ts := d.TaskSet()
	var out []string
	for i := 0; i < ts.Len(); i++ {
		deps, conditional := 0, 0
		for j := 0; j < ts.Len(); j++ {
			if i == j {
				continue
			}
			switch d.At(i, j) {
			case lattice.Bwd:
				deps++
			case lattice.BwdMaybe:
				deps++
				conditional++
			}
		}
		if deps >= 2 && conditional >= 1 {
			out = append(out, ts.Name(i))
		}
	}
	sort.Strings(out)
	return out
}

// MustExecute reports whether the learned model proves that whenever a
// executes, b executes too (d(a,b) ∈ {→, ←, ↔}).
func MustExecute(d *depfunc.DepFunc, a, b string) bool {
	v, err := d.Get(a, b)
	if err != nil {
		return false
	}
	return lattice.HasExecConstraint(v)
}

// Determines reports whether a always determines the execution of b
// (d(a,b) = →), the property the paper proves for (A, L) and (B, M).
func Determines(d *depfunc.DepFunc, a, b string) bool {
	v, err := d.Get(a, b)
	return err == nil && v == lattice.Fwd
}

// DependsOn reports whether a always depends on b (d(a,b) = ←) — the
// paper's implicit Q–O dependency used to refine latency analysis.
func DependsOn(d *depfunc.DepFunc, a, b string) bool {
	v, err := d.Get(a, b)
	return err == nil && v == lattice.Bwd
}

// Reachable returns the set of tasks reachable from start via forward
// dependency edges (→ or →?), including start itself. This is the
// cone of influence of a task in the learned model.
func Reachable(d *depfunc.DepFunc, start string) []string {
	ts := d.TaskSet()
	s := ts.Index(start)
	if s < 0 {
		return nil
	}
	seen := make([]bool, ts.Len())
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < ts.Len(); j++ {
			if seen[j] || i == j {
				continue
			}
			if v := d.At(i, j); v == lattice.Fwd || v == lattice.FwdMaybe {
				seen[j] = true
				stack = append(stack, j)
			}
		}
	}
	var out []string
	for j, ok := range seen {
		if ok {
			out = append(out, ts.Name(j))
		}
	}
	sort.Strings(out)
	return out
}

// MustClosure returns the transitive closure of the unconditional
// determination relation: pairs (a, b) such that a chain of → edges
// leads from a to b. The paper's "interesting result" — t1 always
// determines t4 even with no direct design message — is an element of
// this closure discovered directly by the learner.
func MustClosure(d *depfunc.DepFunc) map[[2]string]bool {
	ts := d.TaskSet()
	n := ts.Len()
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			reach[i][j] = i != j && d.At(i, j) == lattice.Fwd
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	out := map[[2]string]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if reach[i][j] {
				out[[2]string{ts.Name(i), ts.Name(j)}] = true
			}
		}
	}
	return out
}

// Report summarizes the learned dependency structure and its
// state-space impact.
type Report struct {
	Tasks        int
	TotalPairs   int // ordered off-diagonal pairs
	Independent  int // ‖ — no dependency observed
	Firm         int // →, ←, ↔ — unconditional dependencies
	Conditional  int // →?, ←? — conditional dependencies
	Unknown      int // ↔? — nothing learned beyond "related somehow"
	Disjunctions []string
	Conjunctions []string
	// OrderingKnown is the fraction of ordered pairs whose relative
	// execution is constrained (firm or conditional); the pessimistic
	// baseline of Tindell-style analysis assumes 0.
	OrderingKnown float64
	// InterleavingReduction estimates the state-space shrinkage for
	// reachability analysis: each firm dependency removes the
	// interleaving freedom of one ordered pair, halving the explored
	// orderings contributed by that pair. It is reported as the
	// fraction of pairs whose interleavings are eliminated.
	InterleavingReduction float64
}

// Analyze builds a Report from a learned dependency function.
func Analyze(d *depfunc.DepFunc) Report {
	r := Report{
		Tasks:        d.TaskSet().Len(),
		Disjunctions: DisjunctionNodes(d),
		Conjunctions: ConjunctionNodes(d),
	}
	d.Entries(func(i, j int, v lattice.Value) {
		r.TotalPairs++
		switch v {
		case lattice.Par:
			r.Independent++
		case lattice.Fwd, lattice.Bwd, lattice.Bi:
			r.Firm++
		case lattice.FwdMaybe, lattice.BwdMaybe:
			r.Conditional++
		case lattice.BiMaybe:
			r.Unknown++
		}
	})
	if r.TotalPairs > 0 {
		r.OrderingKnown = float64(r.Firm+r.Conditional) / float64(r.TotalPairs)
		r.InterleavingReduction = float64(r.Firm) / float64(r.TotalPairs)
	}
	return r
}

// String renders the report as an aligned text block.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tasks:                 %d\n", r.Tasks)
	fmt.Fprintf(&sb, "disjunction nodes:     %s\n", strings.Join(r.Disjunctions, " "))
	fmt.Fprintf(&sb, "conjunction nodes:     %s\n", strings.Join(r.Conjunctions, " "))
	fmt.Fprintf(&sb, "firm dependencies:     %d\n", r.Firm)
	fmt.Fprintf(&sb, "conditional:           %d\n", r.Conditional)
	fmt.Fprintf(&sb, "independent:           %d\n", r.Independent)
	fmt.Fprintf(&sb, "unknown:               %d\n", r.Unknown)
	fmt.Fprintf(&sb, "ordering known:        %.1f%%\n", r.OrderingKnown*100)
	fmt.Fprintf(&sb, "interleavings removed: %.1f%%\n", r.InterleavingReduction*100)
	return sb.String()
}

// DesignComparison quantifies how faithfully the learned unconditional
// determinations reflect the design's ground-truth must-execute pairs.
type DesignComparison struct {
	TruePositives  int // learned → that the design mandates
	FalsePositives int // learned → the design does not mandate
	FalseNegatives int // design must-pairs the learner missed
	Precision      float64
	Recall         float64
}

// CompareWithDesign compares the learned → relation (as an
// "a determines b" claim) against the design's must-execute pairs
// (from model.MustExecutePairs). A learned → at (a,b) corresponds to
// the ground truth "whenever a fires, b fires".
func CompareWithDesign(d *depfunc.DepFunc, must map[[2]string]bool) DesignComparison {
	ts := d.TaskSet()
	var c DesignComparison
	for i := 0; i < ts.Len(); i++ {
		for j := 0; j < ts.Len(); j++ {
			if i == j {
				continue
			}
			pair := [2]string{ts.Name(i), ts.Name(j)}
			learned := lattice.HasExecConstraint(d.At(i, j))
			if learned && must[pair] {
				c.TruePositives++
			} else if learned && !must[pair] {
				c.FalsePositives++
			} else if !learned && must[pair] {
				c.FalseNegatives++
			}
		}
	}
	if c.TruePositives+c.FalsePositives > 0 {
		c.Precision = float64(c.TruePositives) / float64(c.TruePositives+c.FalsePositives)
	}
	if c.TruePositives+c.FalseNegatives > 0 {
		c.Recall = float64(c.TruePositives) / float64(c.TruePositives+c.FalseNegatives)
	}
	return c
}
