// Command bbverify learns a dependency model from a trace and proves
// or refutes properties against it: must-execute queries, reachability
// safety queries, node classification and mode analysis — the
// verification workflow of Section 3.4.
//
// Usage:
//
//	bbverify -trace t.txt -determines A,L -depends Q,O
//	bbverify -trace t.txt -never-before Q,O        # reachability proof
//	bbverify -trace t.txt -report -modes
//
// Each query prints PROVED or REFUTED; the exit status is non-zero if
// any query is refuted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	modelgen "github.com/blackbox-rt/modelgen"
)

type pairList [][2]string

func (p *pairList) String() string { return fmt.Sprint([][2]string(*p)) }
func (p *pairList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want TASK,TASK, got %q", v)
	}
	*p = append(*p, [2]string{parts[0], parts[1]})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbverify: ")
	var (
		traceFile  = flag.String("trace", "", "trace file (default stdin)")
		bound      = flag.Int("bound", 32, "heuristic bound for learning")
		report     = flag.Bool("report", false, "print the structure report")
		modes      = flag.Bool("modes", false, "print observed operation modes")
		determines pairList
		depends    pairList
		neverb     pairList
	)
	flag.Var(&determines, "determines", "prove d(A,B) = -> (repeatable; A,B)")
	flag.Var(&depends, "depends", "prove d(A,B) = <- (repeatable; A,B)")
	flag.Var(&neverb, "never-before", "prove by reachability that A never completes before B (repeatable; A,B)")
	flag.Parse()

	in := os.Stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	tr, err := modelgen.ReadTrace(in)
	if err != nil {
		log.Fatalf("reading trace: %v", err)
	}
	res, err := modelgen.LearnBounded(tr, *bound, modelgen.CandidatePolicy{})
	if err != nil {
		log.Fatalf("learning: %v", err)
	}
	d := res.LUB

	failures := 0
	verdict := func(label string, ok bool) {
		state := "REFUTED"
		if ok {
			state = "PROVED"
		} else {
			failures++
		}
		fmt.Printf("%-8s %s\n", state, label)
	}
	for _, q := range determines {
		verdict(fmt.Sprintf("d(%s,%s) = ->", q[0], q[1]), modelgen.Determines(d, q[0], q[1]))
	}
	for _, q := range depends {
		verdict(fmt.Sprintf("d(%s,%s) = <-", q[0], q[1]), modelgen.DependsOn(d, q[0], q[1]))
	}
	for _, q := range neverb {
		proved, witness, err := modelgen.ProveNeverCompletesBefore(d, q[0], q[1])
		if err != nil {
			log.Fatalf("never-before %v: %v", q, err)
		}
		label := fmt.Sprintf("%s never completes before %s", q[0], q[1])
		if !proved && len(witness) > 0 {
			label += fmt.Sprintf("   (witness state: %v)", witness)
		}
		verdict(label, proved)
	}

	if *report {
		fmt.Println()
		fmt.Print(modelgen.Analyze(d))
		if exp, err := modelgen.ExploreStateSpace(d); err == nil {
			fmt.Printf("reachable states:      %d of %d (%.1f%% reduction)\n",
				exp.States, exp.Baseline, exp.Reduction*100)
		}
	}
	if *modes {
		fmt.Println()
		rep := modelgen.AnalyzeModes(tr, d)
		fmt.Printf("operation modes (%d observed; always on: %v):\n", len(rep.Modes), rep.AlwaysOn)
		for _, m := range rep.Modes {
			fmt.Printf("  %3dx %s\n", m.Count(), m.Key())
		}
		for _, v := range rep.Violations {
			fmt.Printf("  VIOLATION: %s\n", v)
			failures++
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
