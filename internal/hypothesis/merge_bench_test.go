package hypothesis

import (
	"fmt"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// BenchmarkMergePath times the engine's merge hot path end to end:
// assumption-intersection walk, copy-on-write matrix share, the
// word-parallel join, and release back into the header pool and word
// arena. Steady state must be alloc-free except the join's one
// copy-on-write materialization (the shared parent matrix must be
// copied before other's entries are OR-ed in).
func BenchmarkMergePath(b *testing.B) {
	for _, n := range []int{6, 12} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("t%02d", i)
			}
			ts := depfunc.MustTaskSet(names...)
			var ar Arena
			ctx := StepCtx{Arena: &ar}
			// Two hypotheses with a shared assumption prefix and one
			// private assumption each — the shape every pairwise merge
			// in the generalization step sees.
			h1 := Bottom(ts).
				Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, ctx).
				Assume(depfunc.Pair{S: 2, R: 3}, lattice.FwdMaybe, lattice.BwdMaybe, ctx)
			h2 := Bottom(ts).
				Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, ctx).
				Assume(depfunc.Pair{S: 4, R: 5}, lattice.Bwd, lattice.Fwd, ctx)
			mark := ar
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := h1.Merge(h2, ctx)
				m.Release()
				// Roll the arena back to the pre-merge mark instead of
				// Reset: h1/h2's own cells live in the same arena and
				// must survive the iteration.
				ar.bi, ar.used = mark.bi, mark.used
			}
		})
	}
}
