// Package depfunc implements dependency functions d : T×T → V
// (Definition 5 of Feng et al., DATE 2007): square matrices over the
// dependency-value lattice, the pointwise partial order ⊑D, weights,
// joins, most-specific filtering, the matching function M between a
// dependency function and a trace period, and the timing-based
// computation of feasible (sender, receiver) candidate pairs for bus
// messages.
package depfunc

import (
	"fmt"
	"sort"
)

// TaskSet is the immutable, ordered set of predefined tasks T. It maps
// task names to dense indices so dependency functions can be stored as
// flat matrices. The order of names is preserved from construction.
type TaskSet struct {
	names []string
	index map[string]int
}

// NewTaskSet builds a task set from the given names. Names must be
// non-empty and unique.
func NewTaskSet(names []string) (*TaskSet, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("depfunc: empty task set")
	}
	ts := &TaskSet{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range ts.names {
		if n == "" {
			return nil, fmt.Errorf("depfunc: empty task name at position %d", i)
		}
		if _, dup := ts.index[n]; dup {
			return nil, fmt.Errorf("depfunc: duplicate task name %q", n)
		}
		ts.index[n] = i
	}
	return ts, nil
}

// MustTaskSet is NewTaskSet for known-good literal inputs; it panics on
// error.
func MustTaskSet(names ...string) *TaskSet {
	ts, err := NewTaskSet(names)
	if err != nil {
		panic(err)
	}
	return ts
}

// Len returns the number of tasks.
func (ts *TaskSet) Len() int { return len(ts.names) }

// Names returns a copy of the task names in index order.
func (ts *TaskSet) Names() []string { return append([]string(nil), ts.names...) }

// Name returns the name of the task with the given index.
func (ts *TaskSet) Name(i int) string { return ts.names[i] }

// Index returns the dense index of the named task, or -1 if unknown.
func (ts *TaskSet) Index(name string) int {
	if i, ok := ts.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether name belongs to the task set.
func (ts *TaskSet) Has(name string) bool {
	_, ok := ts.index[name]
	return ok
}

// SortedNames returns the task names sorted lexicographically.
func (ts *TaskSet) SortedNames() []string {
	out := ts.Names()
	sort.Strings(out)
	return out
}

// Equal reports whether two task sets contain the same names in the
// same order.
func (ts *TaskSet) Equal(other *TaskSet) bool {
	if ts.Len() != other.Len() {
		return false
	}
	for i, n := range ts.names {
		if other.names[i] != n {
			return false
		}
	}
	return true
}
