package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer serves runtime profiling and metrics over HTTP:
// the standard /debug/pprof/ endpoints (CPU, heap, goroutine, block,
// mutex profiles) and, when a Registry is attached, /metrics in the
// Prometheus text format.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartDebugServer listens on addr and serves in a background
// goroutine. reg may be nil (pprof only); when non-nil, RuntimeMetrics
// is installed on it so scrapes include Go runtime health. Close the
// returned server when done.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		RuntimeMetrics(reg)
		mux.Handle("/metrics", reg.Handler())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
