package cluster

// The multi-node chaos/equivalence harness. Nodes are real
// serve.Server instances with durable stores; the gateway reaches them
// through cuttable in-process transports, so the harness can partition
// the gateway from a node (cut, node keeps running), kill a node (cut,
// drain, drop — every 202-acked batch is durable by the serve
// contract, exactly like a SIGTERM'd process), and restart it over the
// same store directory.
//
// The driver feeds each stream an ordered batch sequence through the
// gateway and tracks the ack frontier: a batch is either 202-acked
// (its periods will be learned and made durable) or failed in
// transport before reaching the node (never applied), so resending
// from the frontier after healing applies every period exactly once.
// The equivalence oracle then requires each stream's served model to
// be bit-identical — full hypothesis key set, LUB table, LUB
// fingerprint — to a single-node reference learner fed the same
// period sequence, the bbconform -serve oracle shape.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// ---- harness ----

// nodeTransport routes gateway requests to the node's current handler
// in process. cut simulates a network partition; a nil handler is a
// dead process.
type nodeTransport struct {
	mu  sync.Mutex
	h   http.Handler
	cut bool
}

func (nt *nodeTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	nt.mu.Lock()
	h, cut := nt.h, nt.cut
	nt.mu.Unlock()
	if cut || h == nil {
		return nil, fmt.Errorf("cluster test: node unreachable")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec.Result(), nil
}

func (nt *nodeTransport) setCut(cut bool) {
	nt.mu.Lock()
	nt.cut = cut
	nt.mu.Unlock()
}

func (nt *nodeTransport) setHandler(h http.Handler) {
	nt.mu.Lock()
	nt.h = h
	nt.mu.Unlock()
}

type testNode struct {
	name string
	dir  string
	reg  *obs.Registry
	sv   *serve.Server
	node *Node
	tr   *nodeTransport
}

type testCluster struct {
	t     *testing.T
	gw    *Gateway
	gwts  *httptest.Server
	nodes map[string]*testNode
	order []string
	ckpt  int
}

// newTestCluster boots the named nodes (durable stores in temp dirs)
// and a gateway over them. ckptEvery is the per-stream WAL compaction
// threshold; a tiny value keeps compactions running constantly so a
// kill lands "mid-checkpoint" with high probability.
func newTestCluster(t *testing.T, names []string, ckptEvery int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, nodes: map[string]*testNode{}, order: names, ckpt: ckptEvery}
	var backends []Backend
	for _, name := range names {
		n := &testNode{name: name, dir: t.TempDir(), tr: &nodeTransport{}}
		tc.startNode(n)
		tc.nodes[name] = n
		backends = append(backends, Backend{
			Name:   name,
			URL:    "http://" + name,
			Client: &http.Client{Transport: n.tr},
		})
	}
	gw, err := NewGateway(GatewayConfig{
		Backends:      backends,
		Ring:          RingConfig{Seed: 1},
		Registry:      obs.NewRegistry(),
		MigrationWait: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.gw = gw
	tc.gwts = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		tc.gwts.Close()
		for _, n := range tc.nodes {
			if n.alive() {
				_ = n.sv.Shutdown(context.Background())
			}
		}
	})
	return tc
}

func (n *testNode) alive() bool {
	n.tr.mu.Lock()
	defer n.tr.mu.Unlock()
	return n.tr.h != nil
}

func (tc *testCluster) startNode(n *testNode) {
	tc.t.Helper()
	n.reg = obs.NewRegistry()
	n.sv = serve.New(serve.Config{
		CheckpointDir:   n.dir,
		CheckpointEvery: tc.ckpt,
		Registry:        n.reg,
	})
	if _, err := n.sv.RestoreFromDir(); err != nil {
		tc.t.Fatal(err)
	}
	n.node = NewNode(NodeConfig{ID: n.name, Server: n.sv, Registry: n.reg})
	n.tr.setHandler(n.node.Handler())
	n.tr.setCut(false)
}

// kill takes the node down the way SIGTERM does: unreachable first (no
// new requests land), then drained — every batch it acked before the
// cut becomes durable — then gone.
func (tc *testCluster) kill(name string) {
	tc.t.Helper()
	n := tc.nodes[name]
	n.tr.setCut(true)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := n.sv.Shutdown(ctx); err != nil {
		tc.t.Fatalf("kill %s: drain: %v", name, err)
	}
	n.tr.setHandler(nil)
}

// restart brings a killed node back over its store directory.
func (tc *testCluster) restart(name string) {
	tc.t.Helper()
	tc.startNode(tc.nodes[name])
}

func (tc *testCluster) partition(name string, cut bool) {
	tc.nodes[name].tr.setCut(cut)
}

// gdo issues a request through the gateway.
func (tc *testCluster) gdo(method, path string, body []byte, hdr map[string]string) (int, []byte) {
	tc.t.Helper()
	req, err := http.NewRequest(method, tc.gwts.URL+path, bytes.NewReader(body))
	if err != nil {
		tc.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		tc.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (tc *testCluster) createStream(id string, tasks []string) {
	tc.t.Helper()
	body, _ := json.Marshal(serve.CreateStreamRequest{ID: id, Tasks: tasks})
	status, out := tc.gdo(http.MethodPost, "/v1/streams", body, nil)
	if status != http.StatusCreated {
		tc.t.Fatalf("create %s: %d %s", id, status, out)
	}
}

func (tc *testCluster) model(id string) serve.ModelResponse {
	tc.t.Helper()
	status, out := tc.gdo(http.MethodGet, "/v1/streams/"+id+"/model", nil, nil)
	if status != http.StatusOK {
		tc.t.Fatalf("model %s: %d %s", id, status, out)
	}
	var m serve.ModelResponse
	if err := json.Unmarshal(out, &m); err != nil {
		tc.t.Fatal(err)
	}
	return m
}

// ---- driven corpus ----

// periodText renders one period as an ingest batch (events followed by
// the closing "period" directive).
func periodText(p *trace.Period) string {
	var sb strings.Builder
	names := make([]string, 0, len(p.Execs))
	for t := range p.Execs {
		names = append(names, t)
	}
	sort.Strings(names)
	sort.SliceStable(names, func(i, j int) bool {
		return p.Execs[names[i]].Start < p.Execs[names[j]].Start
	})
	for _, t := range names {
		iv := p.Execs[t]
		fmt.Fprintf(&sb, "exec %s %d %d\n", t, iv.Start, iv.End)
	}
	for _, m := range p.Msgs {
		fmt.Fprintf(&sb, "msg %s %d %d\n", m.ID, m.Rise, m.Fall)
	}
	sb.WriteString("period\n")
	return sb.String()
}

// drivenStream tracks one stream's ordered batch feed: batches[:sent]
// are 202-acked (durable once the owner drains), the rest still to
// send or resend.
type drivenStream struct {
	id      string
	batches []string
	sent    int
}

// figureBatches renders the paper's Figure-2 periods repeated reps
// times: 3*reps ordered single-period batches.
func figureBatches(reps int) []string {
	tr := trace.PaperFigure2()
	var out []string
	for r := 0; r < reps; r++ {
		for _, p := range tr.Periods {
			out = append(out, periodText(p))
		}
	}
	return out
}

func newCorpus(n, reps int) []*drivenStream {
	batches := figureBatches(reps)
	out := make([]*drivenStream, n)
	for i := range out {
		out[i] = &drivenStream{id: fmt.Sprintf("s%03d", i), batches: batches}
	}
	return out
}

func (tc *testCluster) createCorpus(ds []*drivenStream) {
	tc.t.Helper()
	tasks := trace.PaperFigure2().Tasks
	for _, d := range ds {
		tc.createStream(d.id, tasks)
	}
}

// feedNext sends the stream's next un-acked batch through the gateway.
// 202 advances the frontier; 502/503 (node unreachable, migration
// wait exhausted) leaves it for a resend; anything else fails the
// test.
func (tc *testCluster) feedNext(d *drivenStream) bool {
	tc.t.Helper()
	if d.sent >= len(d.batches) {
		return true
	}
	status, out := tc.gdo(http.MethodPost, "/v1/streams/"+d.id+"/events", []byte(d.batches[d.sent]), nil)
	switch status {
	case http.StatusAccepted:
		d.sent++
		return true
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return false
	default:
		tc.t.Fatalf("feed %s batch %d: %d %s", d.id, d.sent, status, out)
		return false
	}
}

// feedAll pushes every stream to its frontier, tolerating transient
// failures (they stay unsent). Returns the number of failed sends.
func (tc *testCluster) feedAll(ds []*drivenStream) int {
	failed := 0
	for _, d := range ds {
		for d.sent < len(d.batches) {
			if !tc.feedNext(d) {
				failed++
				break
			}
		}
	}
	return failed
}

// finish retries until every stream's full batch sequence is acked.
func (tc *testCluster) finish(ds []*drivenStream) {
	tc.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if tc.feedAll(ds) == 0 {
			return
		}
		if time.Now().After(deadline) {
			tc.t.Fatal("streams did not finish feeding before the deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- equivalence oracle ----

// reference is the single-node reference derivation for a batch count.
type reference struct {
	tables []string
	lub    string
	fp     uint64
}

var refCache = struct {
	sync.Mutex
	m map[int]*reference
}{m: map[int]*reference{}}

// referenceFor learns the same period sequence on a local single-node
// learner: batch k of every driven stream is period k%3 of the
// Figure-2 trace.
func referenceFor(t *testing.T, batches int) *reference {
	t.Helper()
	refCache.Lock()
	defer refCache.Unlock()
	if r, ok := refCache.m[batches]; ok {
		return r
	}
	tr := trace.PaperFigure2()
	o, err := learner.NewOnline(tr.Tasks, learner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < batches; k++ {
		fresh := trace.PaperFigure2() // periods shared with nothing
		if err := o.AddPeriod(fresh.Periods[k%3]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	r := &reference{lub: res.LUB.Table(), fp: res.LUB.Fingerprint()}
	for _, d := range res.Hypotheses {
		r.tables = append(r.tables, d.Table())
	}
	refCache.m[batches] = r
	return r
}

// assertEquivalent is the bbconform-serve-style oracle: every driven
// stream's served model must be bit-identical to the single-node
// reference — full hypothesis key set, LUB table, LUB fingerprint.
func (tc *testCluster) assertEquivalent(ds []*drivenStream) {
	tc.t.Helper()
	for _, d := range ds {
		if d.sent != len(d.batches) {
			tc.t.Fatalf("stream %s: only %d/%d batches acked", d.id, d.sent, len(d.batches))
		}
		ref := referenceFor(tc.t, len(d.batches))
		m := tc.model(d.id)
		if len(m.Hypotheses) != len(ref.tables) {
			tc.t.Fatalf("stream %s: served %d hypotheses, reference %d", d.id, len(m.Hypotheses), len(ref.tables))
		}
		for i := range ref.tables {
			if m.Hypotheses[i] != ref.tables[i] {
				tc.t.Fatalf("stream %s: hypothesis %d differs from reference:\n%s\nvs\n%s",
					d.id, i, m.Hypotheses[i], ref.tables[i])
			}
		}
		if m.LUB != ref.lub {
			tc.t.Fatalf("stream %s: LUB differs from reference:\n%s\nvs\n%s", d.id, m.LUB, ref.lub)
		}
		served, err := depfunc.ParseTable(m.LUB)
		if err != nil {
			tc.t.Fatalf("stream %s: served LUB unparseable: %v", d.id, err)
		}
		if served.Fingerprint() != ref.fp {
			tc.t.Fatalf("stream %s: LUB fingerprint %x, reference %x", d.id, served.Fingerprint(), ref.fp)
		}
	}
}

func counterValue(reg *obs.Registry, name string) int64 {
	return reg.Snapshot()[name].Value
}

// ---- scenarios ----

// TestClusterRoutingAndEquivalence is the no-chaos baseline: streams
// spread over the ring, feed through the gateway, and every model
// matches the single-node reference. Also pins gateway placement to
// the ring and checks the aggregated metrics add up.
func TestClusterRoutingAndEquivalence(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, 0)
	ds := newCorpus(24, 1)
	tc.createCorpus(ds)

	owners := map[string]int{}
	for _, d := range ds {
		node, epoch := tc.gw.Owner(d.id)
		if want := tc.gw.Ring().Owner(d.id); node != want {
			t.Fatalf("stream %s placed on %s, ring says %s", d.id, node, want)
		}
		if epoch != 1 {
			t.Fatalf("fresh stream %s at epoch %d, want 1", d.id, epoch)
		}
		owners[node]++
		if !tc.nodes[node].sv.StreamExists(d.id) {
			t.Fatalf("stream %s not present on its owner %s", d.id, node)
		}
	}
	if len(owners) != 3 {
		t.Fatalf("24 streams landed on %d of 3 nodes: %v", len(owners), owners)
	}

	tc.finish(ds)
	tc.assertEquivalent(ds)

	// The gateway's merged list sees every stream exactly once.
	status, out := tc.gdo(http.MethodGet, "/v1/streams", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("list: %d %s", status, out)
	}
	var infos []serve.StreamInfo
	if err := json.Unmarshal(out, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(ds) {
		t.Fatalf("gateway lists %d streams, want %d", len(infos), len(ds))
	}

	// Aggregated metrics: the cluster-wide learned-period count is the
	// sum over nodes and equals the driven total.
	status, out = tc.gdo(http.MethodGet, "/cluster/metrics", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("cluster metrics: %d %s", status, out)
	}
	var mr MetricsResponse
	if err := json.Unmarshal(out, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Nodes) != 3 {
		t.Fatalf("metrics cover %d nodes, want 3", len(mr.Nodes))
	}
	want := int64(len(ds) * 3)
	if got := mr.Cluster["serve_periods_learned_total"].Value; got != want {
		t.Fatalf("aggregated serve_periods_learned_total = %d, want %d", got, want)
	}
}

// TestClusterMigrationAndFencing moves a live stream between nodes by
// checkpoint handoff and proves the fence: the deposed owner answers a
// stale-epoch write with the typed 412 rejection and counts it in
// modelgen_cluster_fenced_writes_total, while the migrated stream's
// model stays bit-identical to the reference.
func TestClusterMigrationAndFencing(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, 0)
	ds := newCorpus(6, 2)
	tc.createCorpus(ds)

	// Feed half of each stream, then migrate one stream away from its
	// owner.
	for _, d := range ds {
		for d.sent < 3 {
			if !tc.feedNext(d) {
				t.Fatalf("feed %s failed with the cluster healthy", d.id)
			}
		}
	}
	mig := ds[0]
	source, oldEpoch := tc.gw.Owner(mig.id)
	var target string
	for _, n := range tc.order {
		if n != source {
			target = n
			break
		}
	}
	if err := tc.gw.Migrate(mig.id, target); err != nil {
		t.Fatal(err)
	}
	if node, epoch := tc.gw.Owner(mig.id); node != target || epoch != oldEpoch+1 {
		t.Fatalf("after migrate: owner %s epoch %d, want %s epoch %d", node, epoch, target, oldEpoch+1)
	}
	if tc.nodes[source].sv.StreamExists(mig.id) {
		t.Fatalf("source %s still owns %s after migration", source, mig.id)
	}
	if !tc.nodes[target].sv.StreamExists(mig.id) {
		t.Fatalf("target %s does not own %s after migration", target, mig.id)
	}

	// The stale owner's late write: a request still stamped with the
	// pre-migration epoch, sent straight to the deposed node.
	src := tc.nodes[source]
	req, err := http.NewRequest(http.MethodPost, "http://"+source+"/v1/streams/"+mig.id+"/events",
		strings.NewReader(mig.batches[mig.sent]))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(EpochHeader, fmt.Sprintf("%d", oldEpoch))
	resp, err := (&http.Client{Transport: src.tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale write: %d %s, want 412", resp.StatusCode, body)
	}
	var fb fencedBody
	if err := json.Unmarshal(body, &fb); err != nil || !fb.Fenced {
		t.Fatalf("stale write rejection is not the typed fence body: %s", body)
	}
	if fb.Stream != mig.id || fb.Epoch != oldEpoch || fb.MinEpoch != oldEpoch+1 {
		t.Fatalf("fence body %+v, want stream %s epoch %d min %d", fb, mig.id, oldEpoch, oldEpoch+1)
	}
	if got := counterValue(src.reg, MetricFencedWrites); got != 1 {
		t.Fatalf("%s = %d on %s, want 1", MetricFencedWrites, got, source)
	}

	// The fenced write was rejected, not applied: finishing the feed
	// through the gateway still converges on the reference model.
	tc.finish(ds)
	tc.assertEquivalent(ds)

	if got := counterValue(tc.nodes[source].reg, MetricHandoffs); got != 1 {
		t.Fatalf("%s = %d on source, want 1", MetricHandoffs, got)
	}
	if got := counterValue(tc.nodes[target].reg, MetricImports); got != 1 {
		t.Fatalf("%s = %d on target, want 1", MetricImports, got)
	}
}

// TestClusterChaosKillNodeMidCheckpoint kills one node while constant
// WAL compaction keeps its checkpoint machinery hot, restarts it over
// the same store, resends the failed batches, and requires full
// equivalence across the surviving corpus.
func TestClusterChaosKillNodeMidCheckpoint(t *testing.T) {
	// CheckpointEvery=2: every second learned period folds the WAL
	// into a fresh base, so the kill interrupts a checkpoint cadence,
	// not an idle store.
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, 2)
	ds := newCorpus(18, 3)
	tc.createCorpus(ds)

	// Feed the first third everywhere, then kill n2 mid-run.
	for _, d := range ds {
		for d.sent < 3 {
			if !tc.feedNext(d) {
				t.Fatalf("feed %s failed with the cluster healthy", d.id)
			}
		}
	}
	tc.kill("n2")

	// Push on: streams owned by n2 stall at their frontier (502s),
	// the others finish.
	failed := tc.feedAll(ds)
	if failed == 0 {
		t.Fatal("no stream was stalled by the kill — corpus never touched n2")
	}

	tc.restart("n2")
	tc.finish(ds)
	tc.assertEquivalent(ds)
}

// TestClusterChaosKillMidMigrationBeforeFence kills the source before
// the handoff can commit: the migration aborts with placement
// unchanged, the healed source still owns the stream, and a retried
// migration completes with full equivalence.
func TestClusterChaosKillMidMigrationBeforeFence(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, 0)
	ds := newCorpus(4, 2)
	tc.createCorpus(ds)
	for _, d := range ds {
		for d.sent < 3 {
			tc.feedNext(d)
		}
	}
	mig := ds[0]
	source, epoch := tc.gw.Owner(mig.id)
	var target string
	for _, n := range tc.order {
		if n != source {
			target = n
			break
		}
	}

	// The source becomes unreachable before the handoff request lands:
	// the fence never goes up, the stream never leaves.
	tc.partition(source, true)
	if err := tc.gw.Migrate(mig.id, target); err == nil {
		t.Fatal("migration succeeded with the source partitioned")
	}
	if node, e := tc.gw.Owner(mig.id); node != source || e != epoch {
		t.Fatalf("aborted migration moved placement to %s@%d", node, e)
	}
	tc.partition(source, false)

	// No fence: the healed source keeps serving at the old epoch.
	if fe := tc.nodes[source].node.MinEpoch(mig.id); fe != 0 {
		t.Fatalf("aborted migration fenced the stream at %d", fe)
	}
	if !tc.feedNext(mig) {
		t.Fatal("feed after aborted migration failed")
	}

	// The retry completes and the corpus converges.
	if err := tc.gw.Migrate(mig.id, target); err != nil {
		t.Fatal(err)
	}
	tc.finish(ds)
	tc.assertEquivalent(ds)
}

// TestClusterChaosKillMidMigrationAfterFence kills the chosen target
// in the window after the source handed off (fence up, the envelope is
// the only copy of the stream): the gateway's import fallback lands
// the stream on a surviving node, the stale source stays fenced, and
// the corpus converges.
func TestClusterChaosKillMidMigrationAfterFence(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, 0)
	ds := newCorpus(4, 2)
	tc.createCorpus(ds)
	for _, d := range ds {
		for d.sent < 3 {
			tc.feedNext(d)
		}
	}
	mig := ds[0]
	source, oldEpoch := tc.gw.Owner(mig.id)
	var target, third string
	for _, n := range tc.order {
		if n != source && target == "" {
			target = n
		} else if n != source {
			third = n
		}
	}

	// The chaos hook fires in exactly the fatal window: after the
	// source's handoff committed, before the import attempt.
	tc.gw.hookAfterHandoff = func(id string) { tc.partition(target, true) }
	defer func() { tc.gw.hookAfterHandoff = nil }()
	if err := tc.gw.Migrate(mig.id, target); err != nil {
		t.Fatalf("migration with a dead target should fall back, got: %v", err)
	}
	node, epoch := tc.gw.Owner(mig.id)
	if node == target || node == source {
		t.Fatalf("stream landed on %s, want the fallback node %s", node, third)
	}
	if epoch != oldEpoch+1 {
		t.Fatalf("fallback import at epoch %d, want %d", epoch, oldEpoch+1)
	}
	if got := counterValue(tc.gw.cfg.Registry, MetricFallbacks); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricFallbacks, got)
	}

	// The deposed source is fenced: a stale-epoch write bounces.
	src := tc.nodes[source]
	req, err := http.NewRequest(http.MethodPost, "http://"+source+"/v1/streams/"+mig.id+"/events",
		strings.NewReader(mig.batches[mig.sent]))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(EpochHeader, fmt.Sprintf("%d", oldEpoch))
	resp, err := (&http.Client{Transport: src.tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale write after fallback: %d, want 412", resp.StatusCode)
	}
	if got := counterValue(src.reg, MetricFencedWrites); got != 1 {
		t.Fatalf("%s = %d on source, want 1", MetricFencedWrites, got)
	}

	tc.partition(target, false)
	tc.finish(ds)
	tc.assertEquivalent(ds)
}

// TestClusterPartitionGatewayFromNode partitions the gateway from one
// running node: its streams 502 at the gateway (counted per node),
// everyone else is unaffected, and after healing the resent batches
// converge — the node was alive the whole time, so nothing is lost.
func TestClusterPartitionGatewayFromNode(t *testing.T) {
	tc := newTestCluster(t, []string{"n1", "n2", "n3"}, 0)
	ds := newCorpus(18, 2)
	tc.createCorpus(ds)
	for _, d := range ds {
		for d.sent < 2 {
			tc.feedNext(d)
		}
	}

	tc.partition("n2", true)
	failed := tc.feedAll(ds)
	if failed == 0 {
		t.Fatal("partition had no effect — corpus never touched n2")
	}
	for _, d := range ds {
		node, _ := tc.gw.Owner(d.id)
		done := d.sent == len(d.batches)
		if node == "n2" && done {
			t.Fatalf("stream %s on partitioned n2 finished feeding", d.id)
		}
		if node != "n2" && !done {
			t.Fatalf("stream %s on healthy %s stalled", d.id, node)
		}
	}
	errs := tc.gw.cfg.Registry.Snapshot()[obs.SeriesName(MetricProxyErrors, "node", "n2")]
	if errs.Value == 0 {
		t.Fatalf("%s{node=n2} = 0 after partition", MetricProxyErrors)
	}

	tc.partition("n2", false)
	tc.finish(ds)
	tc.assertEquivalent(ds)
}
