// Command bbbench regenerates the runtime table of Section 3.4 — the
// heuristic learner's run time as a function of the bound, plus the
// exact algorithm on the exact-tractable configuration — and records
// it as benchmark telemetry: a versioned BENCH_<label>.json file with
// host metadata, per-bound median/p95 wall time, working-set pressure
// and allocation counts. A committed baseline can then gate
// regressions via -compare.
//
// Usage:
//
//	bbbench                                 # heuristic sweep on the full case study
//	bbbench -config lite -exact             # sweep + exact run on the lite subsystem
//	bbbench -repeat 5                       # median of five runs per bound
//	bbbench -json BENCH_local.json          # write the telemetry file
//	bbbench -compare BENCH_base.json        # exit 1 on >10% regression vs the baseline
//	bbbench -compare base.json -threshold 25%
//	bbbench -stats -pprof :6060             # metrics dump + live profiling
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbench: ")
	var (
		config  = flag.String("config", "full", "case-study configuration: full (18 tasks) or lite (7 tasks, exact-tractable)")
		boundsF = flag.String("bounds", "1,4,16,32,64,100,120,150", "comma-separated heuristic bounds (the paper's table)")
		exact   = flag.Bool("exact", false, "also run the exact algorithm (feasible only with -config lite)")
		repeat  = flag.Int("repeat", 3, "measurement repetitions per bound (median and p95 reported)")
		workers = flag.Int("workers", runtime.NumCPU(), "engine worker-pool size; values > 1 add a parallel run per bound with measured speedup vs sequential")
		periods = flag.Int("periods", modelgen.CaseStudyPeriods, "simulated periods")
		seed    = flag.Int64("seed", modelgen.CaseStudySeed, "simulation seed")

		label      = flag.String("label", "local", "telemetry label (the file is BENCH_<label>.json)")
		jsonOut    = flag.String("json", "", "write the benchmark telemetry to this file")
		compareTo  = flag.String("compare", "", "compare against this baseline BENCH_*.json and exit non-zero on regression")
		threshold  = flag.String("threshold", "10%", "regression threshold for -compare (percentage or fraction)")
		stats      = flag.Bool("stats", false, "dump the accumulated metrics (Prometheus text) after the sweep")
		eventsFile = flag.String("events", "", "write the JSONL event stream of every run to this file")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof/ and /metrics on this address during the sweep")
	)
	flag.Parse()

	var (
		observers []modelgen.Observer
		reg       *modelgen.MetricsRegistry
		sink      *modelgen.JSONLFileSink
	)
	if *stats || *pprofAddr != "" {
		reg = modelgen.NewMetricsRegistry()
		observers = append(observers, modelgen.NewMetricsObserver(reg))
	}
	if *eventsFile != "" {
		var err error
		sink, err = modelgen.OpenJSONLFile(*eventsFile)
		if err != nil {
			log.Fatal(err)
		}
		observers = append(observers, sink)
	}
	// fatalf flushes the event sink before exiting, so the stream up
	// to the failure survives for offline analysis.
	fatalf := func(format string, args ...any) {
		if sink != nil {
			_ = sink.Close()
		}
		log.Fatalf(format, args...)
	}
	obsv := modelgen.CombineObservers(observers...)
	if *pprofAddr != "" {
		srv, err := modelgen.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatalf("pprof server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bbbench: profiling on http://%s/debug/pprof/ (metrics on /metrics)\n", srv.Addr)
	}

	var m *modelgen.Model
	var pol modelgen.CandidatePolicy
	switch *config {
	case "full":
		m = modelgen.GMStyleModel()
		pol = modelgen.CaseStudyPolicy(false)
	case "lite":
		m = modelgen.GMStyleLiteModel()
		pol = modelgen.CaseStudyPolicy(true)
	default:
		fatalf("unknown config %q", *config)
	}
	bounds, err := parseBounds(*boundsF)
	if err != nil {
		fatalf("%v", err)
	}

	out, err := modelgen.Simulate(m, modelgen.SimOptions{Periods: *periods, Seed: *seed, Observer: obsv})
	if err != nil {
		fatalf("simulation: %v", err)
	}
	st := out.Trace.Stats()
	fmt.Printf("configuration %q: %d tasks, %d periods, %d messages, %d event pairs\n\n",
		*config, len(out.Trace.Tasks), st.Periods, st.Messages, st.EventPairs)

	file := modelgen.NewBenchFile(*label)
	file.Config = *config
	file.Periods = *periods
	file.Seed = *seed

	fmt.Printf("%8s %14s %14s %12s %10s %10s %8s\n",
		"Bound", "Median", "P95", "Hypotheses", "Converged", "PeakLive", "Merges")
	var exactLUB *modelgen.DepFunc
	measure := func(name string, bound, w int, opt modelgen.LearnOptions) *modelgen.LearnResult {
		opt.Workers = w
		var res *modelgen.LearnResult
		samples := modelgen.BenchMeasure(*repeat, func() {
			r, err := modelgen.Learn(out.Trace, opt)
			if err != nil {
				fatalf("%s: %v", name, err)
			}
			res = r
		})
		run := modelgen.BenchSummarize(name, bound, samples)
		run.Workers = w
		run.Hypotheses = len(res.Hypotheses)
		run.Converged = res.Converged
		run.PeakLive = res.Stats.Peak
		run.Merges = res.Stats.Merges
		file.Runs = append(file.Runs, run)
		fmt.Printf("%8s %14v %14v %12d %10v %10d %8d",
			strings.TrimPrefix(name, "bound_"),
			time.Duration(run.MedianNS).Round(time.Microsecond),
			time.Duration(run.P95NS).Round(time.Microsecond),
			run.Hypotheses, run.Converged, run.PeakLive, run.Merges)
		if exactLUB != nil {
			if res.LUB.Equal(exactLUB) {
				fmt.Print("   LUB == exact")
			} else {
				fmt.Print("   LUB != exact")
			}
		}
		fmt.Println()
		return res
	}
	if *exact {
		res := measure("exact", 0, 1, modelgen.LearnOptions{Policy: pol, MaxHypotheses: 10_000_000, Observer: obsv})
		exactLUB = res.LUB
	}
	for _, b := range bounds {
		seq := measure(fmt.Sprintf("bound_%d", b), b, 1, modelgen.LearnOptions{Bound: b, Policy: pol, Observer: obsv})
		if *workers > 1 {
			seqMedian := file.Runs[len(file.Runs)-1].MedianNS
			par := measure(fmt.Sprintf("bound_%d_w%d", b, *workers), b, *workers,
				modelgen.LearnOptions{Bound: b, Policy: pol, Observer: obsv})
			run := &file.Runs[len(file.Runs)-1]
			run.SpeedupVsSequential = float64(seqMedian) / float64(run.MedianNS)
			fmt.Printf("%8s parallel speedup at workers=%d: %.2fx\n", "", *workers, run.SpeedupVsSequential)
			if !par.LUB.Equal(seq.LUB) {
				fatalf("bound %d: parallel LUB diverges from sequential (determinism violation)", b)
			}
		}
	}
	if exactLUB != nil {
		fmt.Println("\n(the paper reports 630.997 s for exact vs 0.220–19.048 s for the")
		fmt.Println("heuristic on a Pentium M 1.7 GHz; compare shapes, not absolutes)")
	}

	if *jsonOut != "" {
		if err := file.WriteFile(*jsonOut); err != nil {
			fatalf("writing %s: %v", *jsonOut, err)
		}
		fmt.Printf("\ntelemetry written to %s (schema v%d, %s, %s)\n",
			*jsonOut, modelgen.BenchSchemaVersion, file.Host.GoVersion, file.CreatedAt)
	}
	if *stats {
		fmt.Println("\nmetrics:")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatalf("writing metrics: %v", err)
		}
	}
	regressed := false
	if *compareTo != "" {
		th, err := modelgen.ParseBenchThreshold(*threshold)
		if err != nil {
			fatalf("%v", err)
		}
		baseline, err := modelgen.ReadBenchFile(*compareTo)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		regs := modelgen.BenchCompare(baseline, file, th)
		if len(regs) == 0 {
			fmt.Printf("\nno regression vs %s (threshold %s)\n", *compareTo, *threshold)
		} else {
			regressed = true
			fmt.Printf("\nREGRESSIONS vs %s (threshold %s):\n", *compareTo, *threshold)
			for _, r := range regs {
				fmt.Printf("  %s\n", r)
			}
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			log.Fatalf("writing %s: %v", *eventsFile, err)
		}
	}
	if regressed {
		os.Exit(1)
	}
}

func parseBounds(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := strconv.Atoi(f)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("bad bound %q", f)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bounds given")
	}
	return out, nil
}
