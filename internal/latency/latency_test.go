package latency

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sim"
)

func gm() *model.Model { return model.GMStyle() }

func TestCannotPreempt(t *testing.T) {
	d := depfunc.MustParseTable(`
      a     b     c
a     ||    <-    ->?
b     ->    ||    ||
c     <-?   ||    ||
`)
	if !CannotPreempt(d, "a", "b") {
		t.Error("a<-b is a firm ordering: b cannot preempt a")
	}
	if !CannotPreempt(d, "b", "a") {
		t.Error("b->a is firm: a cannot preempt b")
	}
	if CannotPreempt(d, "a", "c") {
		t.Error("conditional ->? must not exclude preemption")
	}
	if CannotPreempt(nil, "a", "b") {
		t.Error("nil dependency function excludes nothing")
	}
	if CannotPreempt(d, "a", "zz") {
		t.Error("unknown task excludes nothing")
	}
}

func TestInterferencePessimistic(t *testing.T) {
	m := gm()
	inf, err := Interference(m, "Q", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Q has the lowest priority: all 17 other tasks interfere.
	if len(inf) != 17 {
		t.Errorf("interference on Q = %d tasks, want 17", len(inf))
	}
	infO, err := Interference(m, "O", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infO) != 0 {
		t.Errorf("interference on O = %v, want none (highest priority)", infO)
	}
	if _, err := Interference(m, "nope", nil); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestInterferenceInformedExcludesO(t *testing.T) {
	m := gm()
	ts, err := depfunc.NewTaskSet(m.TaskNames())
	if err != nil {
		t.Fatal(err)
	}
	d := depfunc.Bottom(ts)
	// The learned implicit dependency: Q depends on O.
	d.Set(ts.Index("Q"), ts.Index("O"), mustParse("<-"))
	pess, _ := Interference(m, "Q", nil)
	inf, err := Interference(m, "Q", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf) != len(pess)-1 {
		t.Fatalf("informed interference = %d, want %d", len(inf), len(pess)-1)
	}
	for _, x := range inf {
		if x == "O" {
			t.Error("O still interferes")
		}
	}
}

func TestTaskResponse(t *testing.T) {
	m := gm()
	r, err := TaskResponse(m, "O", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r != m.Task("O").WCET {
		t.Errorf("R(O) = %d, want its own WCET", r)
	}
	rq, err := TaskResponse(m, "Q", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, task := range m.Tasks {
		sum += task.WCET
	}
	if rq != sum {
		t.Errorf("R(Q) = %d, want sum of all WCETs %d", rq, sum)
	}
	if _, err := TaskResponse(m, "zz", nil); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestFrameLatency(t *testing.T) {
	m := gm()
	// The sync frame has the lowest CAN id: only blocking, no
	// interference.
	w, err := FrameLatency(m, m.SyncCANID, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	// Own duration: DLC 1 -> 65 bits -> 130us; blocking = longest
	// frame (DLC 8 -> 135 bits -> 270us); no higher-priority frames.
	if w != 130+270 {
		t.Errorf("sync frame latency = %d, want 400", w)
	}
	// An id with no frame.
	if _, err := FrameLatency(m, 9999, 500_000); err == nil {
		t.Error("unknown CAN id accepted")
	}
	if _, err := FrameLatency(m, m.SyncCANID, -1); err == nil {
		t.Error("negative bit rate accepted")
	}
}

func TestFrameLatencyMonotonicInPriority(t *testing.T) {
	m := gm()
	// Higher numeric id (lower priority) must never have smaller
	// worst-case latency than a lower id of the same length... we
	// check the weaker global property: the lowest-priority frame's
	// latency is the largest among equal-DLC frames.
	var worst int64
	for _, e := range m.Edges {
		w, err := FrameLatency(m, e.CANID, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if w > worst {
			worst = w
		}
	}
	maxID := 0
	for _, e := range m.Edges {
		if e.CANID > maxID {
			maxID = e.CANID
		}
	}
	wMax, err := FrameLatency(m, maxID, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	// The lowest-priority frame ties for the worst latency (it has no
	// blocking term but accumulates all interference).
	if wMax != worst {
		t.Errorf("lowest-priority frame latency %d, want worst %d", wMax, worst)
	}
}

func TestPathValidate(t *testing.T) {
	m := gm()
	good := Path{Tasks: []string{"S", "A", "D", "L", "P", "Q"}}
	if err := good.Validate(m); err != nil {
		t.Fatal(err)
	}
	bad := []Path{
		{},
		{Tasks: []string{"S", "Q"}},
		{Tasks: []string{"S", "zz"}},
	}
	for i, p := range bad {
		if err := p.Validate(m); err == nil {
			t.Errorf("path %d accepted", i)
		}
	}
}

func TestPathLatencyImprovement(t *testing.T) {
	m := gm()
	ts, _ := depfunc.NewTaskSet(m.TaskNames())
	d := depfunc.Bottom(ts)
	d.Set(ts.Index("Q"), ts.Index("O"), mustParse("<-"))
	path := Path{Tasks: []string{"S", "A", "D", "L", "P", "Q"}}
	cmp, err := Compare(m, path, d, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	abs, rel := cmp.Improvement()
	if abs != m.Task("O").WCET {
		t.Errorf("improvement = %d, want exactly O's WCET %d", abs, m.Task("O").WCET)
	}
	if rel <= 0 {
		t.Errorf("relative improvement = %f", rel)
	}
	// The informed breakdown must name O as excluded on the Q leg.
	foundExcluded := false
	for _, item := range cmp.Informed.Items {
		if item.Kind == "task" && item.Name == "Q" {
			for _, x := range item.Excluded {
				if x == "O" {
					foundExcluded = true
				}
			}
		}
	}
	if !foundExcluded {
		t.Error("breakdown does not record O's exclusion on Q")
	}
}

func TestPathLatencyStructure(t *testing.T) {
	m := gm()
	path := Path{Tasks: []string{"S", "C", "N", "H", "Q"}}
	bd, err := PathLatency(m, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 5 task legs + 4 message legs.
	if len(bd.Items) != 9 {
		t.Fatalf("items = %d, want 9", len(bd.Items))
	}
	var sum int64
	for _, it := range bd.Items {
		if it.Bound <= 0 {
			t.Errorf("item %s has bound %d", it.Name, it.Bound)
		}
		sum += it.Bound
	}
	if sum != bd.Total {
		t.Errorf("total %d != sum %d", bd.Total, sum)
	}
}

// TestBoundsAreSafeEmpirically: analytic response-time bounds dominate
// every observed response time in simulation.
func TestBoundsAreSafeEmpirically(t *testing.T) {
	m := gm()
	out, err := sim.Run(m, sim.Options{Periods: 27, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[string]int64{}
	for _, task := range m.Tasks {
		r, err := TaskResponse(m, task.Name, nil)
		if err != nil {
			t.Fatal(err)
		}
		bounds[task.Name] = r
	}
	for _, e := range out.Execs {
		if got := e.Response(); got > bounds[e.Task] {
			t.Errorf("task %s observed response %d exceeds bound %d", e.Task, got, bounds[e.Task])
		}
	}
}

// TestInformedBoundsAreSafeEmpirically: with the ACTUALLY learned
// dependency function, the refined bounds still dominate observation.
func TestInformedBoundsStillSafe(t *testing.T) {
	m := gm()
	out, err := sim.Run(m, sim.Options{Periods: 27, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := depfunc.NewTaskSet(m.TaskNames())
	d := depfunc.Bottom(ts)
	d.Set(ts.Index("Q"), ts.Index("O"), mustParse("<-"))
	rq, err := TaskResponse(m, "Q", d)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Execs {
		if e.Task == "Q" && e.Response() > rq {
			t.Errorf("Q observed response %d exceeds informed bound %d", e.Response(), rq)
		}
	}
}

func mustParse(s string) lattice.Value {
	v, err := lattice.ParseValue(s)
	if err != nil {
		panic(err)
	}
	return v
}
