package engine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// runEngine drives every period of the trace through a fresh engine
// and returns it.
func runEngine(t *testing.T, tr *trace.Trace, cfg Config) *Engine {
	t.Helper()
	ts, err := depfunc.NewTaskSet(tr.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ts, cfg)
	for _, p := range tr.Periods {
		if err := e.ProcessPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// workingKeys returns the canonical keys of the engine's live set, in
// order.
func workingKeys(e *Engine) []string {
	out := make([]string, 0, e.WorkingSetSize())
	for _, h := range e.Working() {
		out = append(out, h.D.Key())
	}
	return out
}

// TestStageComposition: driving the three stages by hand produces the
// same working set as ProcessPeriod — the composed method adds only
// the period envelope, no hidden computation.
func TestStageComposition(t *testing.T) {
	tr := trace.PaperFigure2()
	whole := runEngine(t, tr, Config{})

	ts, _ := depfunc.NewTaskSet(tr.Tasks)
	manual := New(ts, Config{})
	for _, p := range tr.Periods {
		executed := execVector(p, manual.ts)
		cands, live := manual.EnumerateCandidates(p)
		if err := manual.Generalize(p, cands, live); err != nil {
			t.Fatal(err)
		}
		manual.Postprocess(p, executed)
		manual.stats.Periods++
		manual.stats.PeriodLive = append(manual.stats.PeriodLive, len(manual.cur))
	}
	if !reflect.DeepEqual(workingKeys(whole), workingKeys(manual)) {
		t.Errorf("manual stage composition diverges from ProcessPeriod:\n%v\n%v",
			workingKeys(whole), workingKeys(manual))
	}
	if !reflect.DeepEqual(whole.Stats(), manual.Stats()) {
		t.Errorf("stats diverge:\n%+v\n%+v", whole.Stats(), manual.Stats())
	}
}

// TestEngineStartEvent: New announces the session with the effective
// worker count and the configured bound.
func TestEngineStartEvent(t *testing.T) {
	ts, _ := depfunc.NewTaskSet([]string{"a", "b"})
	rec := obs.NewRecorder()
	New(ts, Config{Bound: 7, Workers: 3, Observer: rec})
	evs := rec.OfKind("engine_start")
	if len(evs) != 1 {
		t.Fatalf("engine_start events = %d", len(evs))
	}
	e := evs[0].(obs.EngineStart)
	if e.Workers != 3 || e.Bound != 7 {
		t.Errorf("engine_start = %+v, want workers 3 bound 7", e)
	}
	// Workers <= 0 is normalized to the sequential pool of one.
	rec2 := obs.NewRecorder()
	New(ts, Config{Workers: -5, Observer: rec2})
	if e := rec2.OfKind("engine_start")[0].(obs.EngineStart); e.Workers != 1 {
		t.Errorf("normalized workers = %d, want 1", e.Workers)
	}
}

// normalizeEvents zeroes the fields that legitimately differ between
// two equivalent runs: span wall-clock durations and the announced
// worker count.
func normalizeEvents(events []obs.Event) []obs.Event {
	out := make([]obs.Event, len(events))
	for i, e := range events {
		switch ev := e.(type) {
		case obs.SpanEnd:
			ev.ElapsedNS = 0
			out[i] = ev
		case obs.EngineStart:
			ev.Workers = 0
			out[i] = ev
		default:
			out[i] = e
		}
	}
	return out
}

// TestWorkerDeterminism is the tentpole guarantee: for every worker
// count, exact and bounded runs over the paper trace produce
// bit-identical hypothesis sets, statistics AND event streams (the
// gather order is the sequential order, so even per-child spawn
// events and heuristic merges coincide).
func TestWorkerDeterminism(t *testing.T) {
	for _, bound := range []int{0, 2, 4, 64} {
		baseRec := obs.NewRecorder()
		base := runEngine(t, trace.PaperFigure2(), Config{Bound: bound, Observer: baseRec})
		baseKeys := workingKeys(base)
		baseStats := base.Stats()
		baseEvents := normalizeEvents(baseRec.Events())
		for _, workers := range []int{2, 4, 8} {
			rec := obs.NewRecorder()
			e := runEngine(t, trace.PaperFigure2(), Config{Bound: bound, Workers: workers, Observer: rec})
			if got := workingKeys(e); !reflect.DeepEqual(got, baseKeys) {
				t.Errorf("bound %d workers %d: hypothesis set diverges:\n got %v\nwant %v",
					bound, workers, got, baseKeys)
			}
			if got := e.Stats(); !reflect.DeepEqual(got, baseStats) {
				t.Errorf("bound %d workers %d: stats diverge:\n got %+v\nwant %+v",
					bound, workers, got, baseStats)
			}
			if got := normalizeEvents(rec.Events()); !reflect.DeepEqual(got, baseEvents) {
				t.Errorf("bound %d workers %d: event streams diverge (%d vs %d events)",
					bound, workers, len(got), len(baseEvents))
			}
		}
	}
}

// TestWorkerDeterminismEagerPrune covers the EagerPrune child filter
// on the parallel path (minimalChildren runs inside the workers).
func TestWorkerDeterminismEagerPrune(t *testing.T) {
	base := runEngine(t, trace.PaperFigure2(), Config{EagerPrune: true})
	par := runEngine(t, trace.PaperFigure2(), Config{EagerPrune: true, Workers: 4})
	if !reflect.DeepEqual(workingKeys(base), workingKeys(par)) {
		t.Error("EagerPrune: parallel diverges from sequential")
	}
}

// TestEngineErrors: an inexplicable message empties the set with
// ErrNoHypothesis wrapped in period/message context, and the exact
// algorithm respects MaxHypotheses.
func TestEngineErrors(t *testing.T) {
	tr := trace.PaperFigure2()
	ts, _ := depfunc.NewTaskSet(tr.Tasks)

	// A message with no feasible pair: empty period span, one message
	// with no surrounding executions.
	e := New(ts, Config{})
	bad := &trace.Period{Index: 9, Execs: map[string]trace.Interval{},
		Msgs: []trace.Message{{ID: "mX", Rise: 10, Fall: 20}}}
	err := e.ProcessPeriod(bad)
	if err == nil {
		t.Fatal("no error for an inexplicable message")
	}
	if !errors.Is(err, ErrNoHypothesis) {
		t.Errorf("error is not ErrNoHypothesis: %v", err)
	}
	if got := err.Error(); !strings.Contains(got, "period 9") || !strings.Contains(got, `"mX"`) {
		t.Errorf("error lacks period/message context: %v", got)
	}

	e2 := New(ts, Config{MaxHypotheses: 1})
	var failed error
	for _, p := range tr.Periods {
		if failed = e2.ProcessPeriod(p); failed != nil {
			break
		}
	}
	if failed == nil {
		t.Fatal("MaxHypotheses 1 did not trip on the paper trace")
	}
	if !errors.Is(failed, ErrTooManyHypotheses) {
		t.Errorf("error is not ErrTooManyHypotheses: %v", failed)
	}
}
