package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
)

// EpochHeader carries the gateway's placement epoch on every proxied
// stream request. A node rejects requests whose epoch is below the
// stream's fence — the typed rejection a deposed owner's late writes
// get instead of silently forking state.
const EpochHeader = "X-Cluster-Epoch"

// Metric names of the per-node cluster series.
const (
	MetricFencedWrites = "modelgen_cluster_fenced_writes_total"
	MetricHandoffs     = "modelgen_cluster_handoffs_total"
	MetricImports      = "modelgen_cluster_imports_total"
)

// FencedError reports a request carrying a placement epoch older than
// the stream's fence on this node: the sender's view of ownership is
// stale and its write must not be applied.
type FencedError struct {
	Stream   string
	Epoch    uint64 // the request's epoch
	MinEpoch uint64 // the fence: lowest epoch this node still accepts
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("cluster: stream %s fenced: request epoch %d below fence %d",
		e.Stream, e.Epoch, e.MinEpoch)
}

// fencedBody is the JSON body of a 412 fence rejection.
type fencedBody struct {
	Error    string `json:"error"`
	Fenced   bool   `json:"fenced"`
	Stream   string `json:"stream"`
	Epoch    uint64 `json:"epoch"`
	MinEpoch uint64 `json:"min_epoch"`
}

// HandoffResponse is the body of POST /cluster/handoff/{id}: the
// checkpoint envelope of the drained, removed stream.
type HandoffResponse struct {
	ID      string `json:"id"`
	Learned int    `json:"learned"`
	Epoch   uint64 `json:"epoch"`
	// Envelope is the serve checkpoint envelope, opaque to the
	// cluster layer.
	Envelope json.RawMessage `json:"envelope"`
}

// ImportRequest is the body of POST /cluster/import.
type ImportRequest struct {
	Learned  int             `json:"learned"`
	Epoch    uint64          `json:"epoch"`
	Envelope json.RawMessage `json:"envelope"`
}

// NodeConfig configures one cluster member.
type NodeConfig struct {
	// ID is the node's name on the ring.
	ID string
	// Server is the wrapped single-node serve instance.
	Server *serve.Server
	// Registry receives the node's modelgen_cluster_* series;
	// normally the same registry the serve.Server reports to, so
	// /cluster/metrics exposes both in one snapshot. Nil disables.
	Registry *obs.Registry
	// Logf receives diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// Node wraps a serve.Server with the cluster-side endpoints: checkpoint
// handoff (export), import, epoch fencing on proxied stream requests,
// and the node's metrics snapshot for gateway aggregation.
//
//	POST /cluster/handoff/{id}   drain + export the stream, fence it at the header epoch
//	POST /cluster/import         rebuild a stream from a handoff envelope
//	GET  /cluster/info           node identity
//	GET  /cluster/metrics        full registry snapshot (JSON)
//	(anything else)              fence check, then the serve API
type Node struct {
	cfg   NodeConfig
	inner http.Handler
	mux   *http.ServeMux

	mu       sync.Mutex
	minEpoch map[string]uint64 // stream → lowest acceptable epoch

	mFenced   *obs.Counter
	mHandoffs *obs.Counter
	mImports  *obs.Counter
}

// NewNode wraps the serve.Server in cluster endpoints.
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		cfg:      cfg,
		inner:    cfg.Server.Handler(),
		minEpoch: map[string]uint64{},
	}
	if reg := cfg.Registry; reg != nil {
		n.mFenced = reg.Counter(MetricFencedWrites,
			"Stream requests rejected because their placement epoch was below the stream's fence.")
		n.mHandoffs = reg.Counter(MetricHandoffs,
			"Streams exported to another node by checkpoint handoff.")
		n.mImports = reg.Counter(MetricImports,
			"Streams imported from another node's checkpoint handoff.")
		reg.LabeledGauge("modelgen_cluster_node", "Constant 1, labeled with the node's ring name.",
			"node", cfg.ID).Set(1)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/handoff/{id}", n.handleHandoff)
	mux.HandleFunc("POST /cluster/import", n.handleImport)
	mux.HandleFunc("GET /cluster/info", n.handleInfo)
	mux.HandleFunc("GET /cluster/metrics", n.handleMetrics)
	mux.HandleFunc("/", n.handleProxied)
	n.mux = mux
	return n
}

// ID returns the node's ring name.
func (n *Node) ID() string { return n.cfg.ID }

// Handler returns the node's HTTP surface: cluster endpoints layered
// over the wrapped serve API.
func (n *Node) Handler() http.Handler { return n.mux }

// MinEpoch returns the stream's fence on this node (0 = unfenced).
func (n *Node) MinEpoch(id string) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.minEpoch[id]
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// checkFence validates a request epoch against the stream's fence.
func (n *Node) checkFence(id string, epoch uint64) *FencedError {
	n.mu.Lock()
	min := n.minEpoch[id]
	n.mu.Unlock()
	if epoch < min {
		return &FencedError{Stream: id, Epoch: epoch, MinEpoch: min}
	}
	return nil
}

// raiseFence lifts the stream's fence to epoch (never lowers it).
func (n *Node) raiseFence(id string, epoch uint64) {
	n.mu.Lock()
	if epoch > n.minEpoch[id] {
		n.minEpoch[id] = epoch
	}
	n.mu.Unlock()
}

func (n *Node) rejectFenced(w http.ResponseWriter, fe *FencedError) {
	if n.mFenced != nil {
		n.mFenced.Inc()
	}
	n.logf("cluster: node %s: %v", n.cfg.ID, fe)
	writeJSON(w, http.StatusPreconditionFailed, fencedBody{
		Error:    fe.Error(),
		Fenced:   true,
		Stream:   fe.Stream,
		Epoch:    fe.Epoch,
		MinEpoch: fe.MinEpoch,
	})
}

// handleProxied fences stream-scoped requests, then delegates to the
// serve API. Requests without an epoch header (direct, non-gateway
// access) are passed through unfenced.
func (n *Node) handleProxied(w http.ResponseWriter, r *http.Request) {
	if eh := r.Header.Get(EpochHeader); eh != "" {
		if id := streamIDFromPath(r.URL.Path); id != "" {
			epoch, err := strconv.ParseUint(eh, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest,
					map[string]string{"error": fmt.Sprintf("cluster: bad %s header: %v", EpochHeader, err)})
				return
			}
			if fe := n.checkFence(id, epoch); fe != nil {
				n.rejectFenced(w, fe)
				return
			}
		}
	}
	n.inner.ServeHTTP(w, r)
}

// streamIDFromPath extracts {id} from /v1/streams/{id}[/...], or "".
func streamIDFromPath(path string) string {
	const prefix = "/v1/streams/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	id := path[len(prefix):]
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	return id
}

// handleHandoff drains and exports the stream, fencing it at the
// request epoch so this node — the deposed owner — rejects any write
// still carrying a pre-handoff epoch.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	epoch, err := strconv.ParseUint(r.Header.Get(EpochHeader), 10, 64)
	if err != nil || epoch == 0 {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("cluster: handoff needs a positive %s header", EpochHeader)})
		return
	}
	envelope, learned, err := n.cfg.Server.ExportStream(id)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, serve.ErrNoStream) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	n.raiseFence(id, epoch)
	if n.mHandoffs != nil {
		n.mHandoffs.Inc()
	}
	n.logf("cluster: node %s: handed off stream %s at epoch %d (%d periods)", n.cfg.ID, id, epoch, learned)
	writeJSON(w, http.StatusOK, HandoffResponse{ID: id, Learned: learned, Epoch: epoch, Envelope: envelope})
}

// handleImport rebuilds a stream from a handoff envelope. The import
// epoch must clear this node's own fence for the stream: a node that
// handed the stream off at epoch e accepts it back only at ≥ e (the
// fallback path re-importing to the source is exactly the = case).
func (n *Node) handleImport(w http.ResponseWriter, r *http.Request) {
	var req ImportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "cluster: undecodable import request"})
		return
	}
	// Peek the stream ID out of the envelope to fence-check before the
	// import becomes observable.
	var peek struct {
		Info struct {
			ID string `json:"id"`
		} `json:"info"`
	}
	if err := json.Unmarshal(req.Envelope, &peek); err != nil || peek.Info.ID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "cluster: import envelope names no stream"})
		return
	}
	if fe := n.checkFence(peek.Info.ID, req.Epoch); fe != nil {
		n.rejectFenced(w, fe)
		return
	}
	info, err := n.cfg.Server.ImportStream(req.Envelope, req.Learned)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, serve.ErrStreamExists) {
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	n.raiseFence(info.ID, req.Epoch)
	if n.mImports != nil {
		n.mImports.Inc()
	}
	n.logf("cluster: node %s: imported stream %s at epoch %d (%d periods)", n.cfg.ID, info.ID, req.Epoch, req.Learned)
	writeJSON(w, http.StatusCreated, info)
}

func (n *Node) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"id": n.cfg.ID})
}

// handleMetrics serves the node's full registry snapshot as JSON —
// the feed the gateway's /cluster/metrics aggregation consumes.
func (n *Node) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if n.cfg.Registry == nil {
		fmt.Fprint(w, "{}")
		return
	}
	_ = n.cfg.Registry.WriteJSON(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
