package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// driftFeed renders n stationary text periods (t1 sends m1 to t2)
// starting at period index `from` so successive batches keep the
// clock monotonic.
func driftFeed(from, n int) string {
	var sb strings.Builder
	for k := 0; k < n; k++ {
		base := int64(from+k) * 1000
		fmt.Fprintf(&sb, "exec t1 %d %d\n", base, base+100)
		fmt.Fprintf(&sb, "msg m1 %d %d\n", base+150, base+200)
		fmt.Fprintf(&sb, "exec t2 %d %d\n", base+400, base+500)
		sb.WriteString("period\n")
	}
	return sb.String()
}

// flipFeed renders n post-change periods: t1 runs alone, the message
// and t2 are gone.
func flipFeed(from, n int) string {
	var sb strings.Builder
	for k := 0; k < n; k++ {
		base := int64(from+k) * 1000
		fmt.Fprintf(&sb, "exec t1 %d %d\nperiod\n", base, base+100)
	}
	return sb.String()
}

func (c *client) drift(id string) (DriftResponse, []byte) {
	c.t.Helper()
	resp, body := c.do("GET", "/v1/streams/"+id+"/drift", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("drift %s: %d %s", id, resp.StatusCode, body)
	}
	var dr DriftResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		c.t.Fatalf("drift %s: %v", id, err)
	}
	return dr, body
}

func driftEnabled() *DriftOptions { return &DriftOptions{Enabled: true} }

// TestDriftDetectionEndToEnd drives a drift-enabled stream through a
// regime change over HTTP and checks the full observability surface:
// the /drift endpoint, /debug/streams, and the modelgen_drift_* and
// serve_* series.
func TestDriftDetectionEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	sv := New(Config{Registry: reg})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "d1", Tasks: []string{"t1", "t2"}, Drift: driftEnabled()})

	const flipAt = 20
	c.feed("d1", driftFeed(0, flipAt))
	waitLearned(t, c, "d1", flipAt)

	dr, _ := c.drift("d1")
	if !dr.Enabled || dr.State == nil {
		t.Fatalf("drift response = %+v", dr)
	}
	if dr.State.Generation != 1 || !dr.State.Converged || dr.State.Alarms != 0 {
		t.Fatalf("stationary state = %+v", dr.State)
	}

	// Enough post-flip periods for the alarm (~4 failures) plus the
	// generation-2 re-convergence streak.
	c.feed("d1", flipFeed(flipAt, 15))
	waitLearned(t, c, "d1", flipAt+15)

	dr, _ = c.drift("d1")
	st := dr.State
	if st.Alarms != 1 || st.Generation != 2 {
		t.Fatalf("post-flip state = %+v", st)
	}
	if st.LastChangePoint != flipAt+1 {
		t.Errorf("change point %d, want %d", st.LastChangePoint, flipAt+1)
	}
	if lag := st.LastAlarmPeriod - st.LastChangePoint; lag < 0 || lag > 20 {
		t.Errorf("detection lag %d periods, want within 20", lag)
	}
	if len(st.Archived) != 1 || st.Archived[0].Generation != 1 {
		t.Errorf("archived = %+v", st.Archived)
	}
	// Generation 2 re-converges on the new regime.
	if !st.Converged {
		t.Error("generation 2 never re-converged")
	}

	// /debug/streams mirrors the monitor's headline numbers.
	_, body := c.do("GET", "/debug/streams", nil)
	var dbg DebugStreamsResponse
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Streams) != 1 {
		t.Fatalf("streams = %+v", dbg.Streams)
	}
	d := dbg.Streams[0]
	if d.Generation != 2 || d.LastChangePoint != int64(flipAt+1) {
		t.Errorf("debug entry = %+v", d)
	}
	if d.Streak == 0 {
		t.Error("debug streak = 0 after re-convergence")
	}

	// Metrics: per-stream drift series plus the service-wide counters
	// and the detection-lag histogram.
	snap := reg.Snapshot()
	if m := snap[obs.SeriesName(obs.MetricDriftGeneration, "stream", "d1")]; m.Value != 2 {
		t.Errorf("generation gauge = %+v", m)
	}
	if m := snap[obs.SeriesName(obs.MetricDriftAlarms, "stream", "d1")]; m.Value != 1 {
		t.Errorf("alarms counter = %+v", m)
	}
	if m := snap["serve_periods_learned_total"]; m.Value != int64(flipAt+15) {
		t.Errorf("periods learned = %+v", m)
	}
	if m := snap["serve_drift_alarm_periods_total"]; m.Value != 1 {
		t.Errorf("alarm periods = %+v", m)
	}
	if m := snap[obs.MetricDriftLag]; m.Count != 1 {
		t.Errorf("lag histogram = %+v", m)
	}
	// Satellite: the runtime gauges ride along on every serve registry.
	if m := snap["go_goroutines"]; m.Value < 1 {
		t.Errorf("go_goroutines = %+v", m)
	}
}

// TestDriftForcedAlarmOnLearnerDeath: a period no hypothesis can
// explain raises a forced change point and a fresh generation gets to
// replay it; when the period is inherently infeasible (a message with
// no possible sender) the replay fails too and the stream dies — but
// the alarm and the archived generation-1 model survive for diagnosis.
func TestDriftForcedAlarmOnLearnerDeath(t *testing.T) {
	sv := New(Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "kill", Tasks: []string{"t1", "t2"}, Drift: driftEnabled()})

	c.feed("kill", driftFeed(0, 15))
	waitLearned(t, c, "kill", 15)

	base := int64(15) * 1000
	bad := fmt.Sprintf("msg m1 %d %d\nexec t1 %d %d\nexec t2 %d %d\nperiod\n",
		base, base+1, base+100, base+200, base+300, base+400)
	resp, _ := c.do("POST", "/v1/streams/kill/events", []byte(bad))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bad period ingest: %d", resp.StatusCode)
	}

	deadline := 200
	var st StatsResponse
	for ; deadline > 0; deadline-- {
		if st = c.stats("kill"); st.Err != "" {
			break
		}
	}
	if !strings.Contains(st.Err, "hypothesis") {
		t.Fatalf("stream err = %q, want the sticky no-hypothesis error", st.Err)
	}
	dr, _ := c.drift("kill")
	if dr.State.Alarms != 1 || dr.State.Generation != 2 {
		t.Fatalf("state after forced alarm = %+v", dr.State)
	}
	if len(dr.State.Archived) != 1 {
		t.Fatalf("archived = %+v", dr.State.Archived)
	}
}

// TestDriftDisabledStream: streams without the option answer
// {"enabled": false} and expose no drift series.
func TestDriftDisabledStream(t *testing.T) {
	reg := obs.NewRegistry()
	sv := New(Config{Registry: reg})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "plain", Tasks: []string{"t1", "t2"}})
	c.feed("plain", driftFeed(0, 3))
	waitLearned(t, c, "plain", 3)

	dr, _ := c.drift("plain")
	if dr.Enabled || dr.State != nil {
		t.Fatalf("drift response = %+v", dr)
	}
	if _, ok := reg.Snapshot()[obs.SeriesName(obs.MetricDriftGeneration, "stream", "plain")]; ok {
		t.Error("drift series registered on a drift-less stream")
	}
}

// TestDriftCheckpointRestart is the satellite round-trip guarantee:
// drift-monitor state survives checkpoint/restart bit-identically, and
// a server restarted mid-detection finishes the detection exactly like
// one that never restarted.
func TestDriftCheckpointRestart(t *testing.T) {
	// The uninterrupted twin.
	sv1 := New(Config{CheckpointDir: t.TempDir()})
	ts1 := httptest.NewServer(sv1.Handler())
	defer ts1.Close()
	c1 := newClient(t, ts1)

	dir := t.TempDir()
	sv2 := New(Config{CheckpointDir: dir})
	ts2 := httptest.NewServer(sv2.Handler())
	c2 := newClient(t, ts2)

	req := CreateStreamRequest{ID: "rt", Tasks: []string{"t1", "t2"}, Drift: driftEnabled()}
	c1.createStream(req)
	c2.createStream(req)

	const flipAt = 20
	feedBoth := func(lines string, learned int) {
		c1.feed("rt", lines)
		c2.feed("rt", lines)
		waitLearned(t, c1, "rt", learned)
		waitLearned(t, c2, "rt", learned)
	}
	feedBoth(driftFeed(0, flipAt), flipAt)
	// Two flipped periods: the detector accumulator is mid-charge, the
	// hardest state to round-trip.
	feedBoth(flipFeed(flipAt, 2), flipAt+2)

	resp, _ := c2.do("POST", "/v1/streams/rt/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
	_, before := c2.drift("rt")

	if err := sv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2.Close()

	sv2 = New(Config{CheckpointDir: dir})
	if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	ts2 = httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 = newClient(t, ts2)

	_, after := c2.drift("rt")
	if !bytes.Equal(before, after) {
		t.Fatalf("drift state changed across restart:\n%s\n%s", before, after)
	}

	// Finish the detection on both servers: the restarted monitor must
	// alarm at the same period with the same change point.
	feedBoth(flipFeed(flipAt+2, 8), flipAt+10)
	dr1, raw1 := c1.drift("rt")
	_, raw2 := c2.drift("rt")
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("restarted server diverged:\n%s\n%s", raw1, raw2)
	}
	if dr1.State.Alarms != 1 || dr1.State.Generation != 2 || dr1.State.LastChangePoint != flipAt+1 {
		t.Fatalf("final state = %+v", dr1.State)
	}
}
