package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

// This file checks a *served* model pipeline: each corpus entry is
// fed, line by line, through the HTTP API of a running
// model-generation service (internal/serve / cmd/bbserved), and the
// models the service returns are held to the same oracles as local
// runs. The checks speak plain HTTP+JSON so they can point at any
// deployment, not just an in-process server — which is also why this
// file deliberately does not import internal/serve.
//
// Served oracles per entry:
//
//   - serve-equivalence: the served bounded frontier is bit-identical
//     (table for table) to the local batch learner under the same
//     options, and the stream consumed exactly the entry's periods.
//   - serve-thm2 (entries with ground truth): an exact-mode stream's
//     served frontier contains a hypothesis generalized by the true
//     dependency function — Theorem 2 across the wire.
//   - serve-verify: the served LUB round-trips through the
//     verification pipeline (VerifierConsistency) like any locally
//     learned model.

// servedClient is the minimal HTTP client for the service API.
type servedClient struct {
	base string
	hc   *http.Client
}

func (c *servedClient) req(method, path string, body []byte) (int, []byte, error) {
	r, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(r)
	if err != nil {
		return 0, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// createStream builds a stream over the wire. options mirrors
// serve.LearnOptions field for field; an anonymous struct keeps the
// package decoupled from internal/serve.
func (c *servedClient) createStream(id string, tasks []string, bound, maxHyp int, pol depfunc.CandidatePolicy) error {
	payload := map[string]interface{}{
		"id":    id,
		"tasks": tasks,
		"options": map[string]interface{}{
			"bound":           bound,
			"max_hypotheses":  maxHyp,
			"sender_window":   pol.SenderWindow,
			"receiver_window": pol.ReceiverWindow,
			"max_senders":     pol.MaxSenders,
			"max_receivers":   pol.MaxReceivers,
		},
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	status, out, err := c.req("POST", "/v1/streams", body)
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		return fmt.Errorf("create stream %s: HTTP %d: %s", id, status, out)
	}
	return nil
}

// feedLines pushes the trace text through the events endpoint in
// chunks, retrying shed batches, and returns the first non-retryable
// HTTP failure.
func (c *servedClient) feedLines(id string, lines []string, chunk int) error {
	for at := 0; at < len(lines); at += chunk {
		end := at + chunk
		if end > len(lines) {
			end = len(lines)
		}
		body := []byte(strings.Join(lines[at:end], "\n"))
		for {
			status, out, err := c.req("POST", "/v1/streams/"+id+"/events", body)
			if err != nil {
				return err
			}
			if status == http.StatusAccepted {
				break
			}
			if status == http.StatusTooManyRequests {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return fmt.Errorf("feed %s: HTTP %d: %s", id, status, out)
		}
	}
	return nil
}

// servedModel reads the stream's current model as dependency
// functions.
func (c *servedClient) servedModel(id string) (hyps []*depfunc.DepFunc, lub *depfunc.DepFunc, periods int, err error) {
	status, out, err := c.req("GET", "/v1/streams/"+id+"/model", nil)
	if err != nil {
		return nil, nil, 0, err
	}
	if status != http.StatusOK {
		return nil, nil, 0, fmt.Errorf("model %s: HTTP %d: %s", id, status, out)
	}
	var m struct {
		Hypotheses []string `json:"hypotheses"`
		LUB        string   `json:"lub"`
		Periods    int      `json:"periods"`
	}
	if err := json.Unmarshal(out, &m); err != nil {
		return nil, nil, 0, err
	}
	for i, tbl := range m.Hypotheses {
		d, err := depfunc.ParseTable(tbl)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("served hypothesis %d: %w", i, err)
		}
		hyps = append(hyps, d)
	}
	if lub, err = depfunc.ParseTable(m.LUB); err != nil {
		return nil, nil, 0, fmt.Errorf("served LUB: %w", err)
	}
	return hyps, lub, m.Periods, nil
}

func (c *servedClient) deleteStream(id string) {
	_, _, _ = c.req("DELETE", "/v1/streams/"+id, nil)
}

// feedText converts a trace to its API feed form: the text format
// line by line plus a trailing "period" directive closing the last
// period.
func feedText(e *Entry) []string {
	lines := strings.Split(strings.TrimRight(e.Trace.String(), "\n"), "\n")
	return append(lines, "period")
}

// CheckServed runs the served-model oracles for every corpus entry
// against the service at baseURL (no trailing slash), reporting like
// Run. hc may be nil for http.DefaultClient. Streams are namespaced
// "conform-<entry>" and deleted afterwards, so a long-running
// deployment is left as found.
func CheckServed(c *Corpus, baseURL string, hc *http.Client, o obs.Observer) *Report {
	if hc == nil {
		hc = http.DefaultClient
	}
	cl := &servedClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
	r := &Report{SchemaVersion: ReportSchemaVersion, CorpusVersion: c.Version}
	for _, e := range c.Entries {
		er := EntryReport{Name: e.Name}
		pol := e.Policy()
		id := "conform-" + e.Name
		bound := maxBound(e.Bounds)

		er.Results = append(er.Results, record(r, o, e.Name, "serve-equivalence", func() ([]Violation, error) {
			local, err := learner.Learn(e.Trace, learner.Options{Bound: bound, Policy: pol})
			if err != nil {
				return nil, err
			}
			if err := cl.createStream(id, e.Trace.Tasks, bound, 0, pol); err != nil {
				return nil, err
			}
			defer cl.deleteStream(id)
			if err := cl.feedLines(id, feedText(e), 32); err != nil {
				return nil, err
			}
			served, servedLUB, periods, err := cl.servedModel(id)
			if err != nil {
				return nil, err
			}
			var out []Violation
			if periods != len(e.Trace.Periods) {
				out = append(out, violationf("serve/periods",
					"service learned %d periods, trace has %d", periods, len(e.Trace.Periods)))
			}
			if len(served) != len(local.Hypotheses) {
				out = append(out, violationf("serve/frontier-size",
					"service returned %d hypotheses, local batch %d", len(served), len(local.Hypotheses)))
				return out, nil
			}
			for i := range served {
				if !served[i].Equal(local.Hypotheses[i]) {
					out = append(out, violationf("serve/frontier-entry",
						"served hypothesis %d differs from the local batch run", i))
				}
			}
			if !servedLUB.Equal(local.LUB) {
				out = append(out, violationf("serve/lub", "served LUB differs from the local batch run"))
			}
			return out, nil
		}))

		if e.Exact && e.Thm2 && e.Truth != nil {
			er.Results = append(er.Results, record(r, o, e.Name, "serve-thm2", func() ([]Violation, error) {
				exactID := id + "-exact"
				if err := cl.createStream(exactID, e.Trace.Tasks, 0, MaxExactHypotheses, pol); err != nil {
					return nil, err
				}
				defer cl.deleteStream(exactID)
				if err := cl.feedLines(exactID, feedText(e), 32); err != nil {
					return nil, err
				}
				served, _, _, err := cl.servedModel(exactID)
				if err != nil {
					return nil, err
				}
				if !someGeneralizedBy(served, e.Truth) {
					return []Violation{violationf("serve/thm2",
						"no served exact hypothesis is generalized by the true dependency function (%d served)",
						len(served))}, nil
				}
				return nil, nil
			}))
		}

		er.Results = append(er.Results, record(r, o, e.Name, "serve-verify", func() ([]Violation, error) {
			verifyID := id + "-verify"
			if err := cl.createStream(verifyID, e.Trace.Tasks, bound, 0, pol); err != nil {
				return nil, err
			}
			defer cl.deleteStream(verifyID)
			if err := cl.feedLines(verifyID, feedText(e), 32); err != nil {
				return nil, err
			}
			_, servedLUB, _, err := cl.servedModel(verifyID)
			if err != nil {
				return nil, err
			}
			return VerifierConsistency(servedLUB), nil
		}))
		r.Entries = append(r.Entries, er)
	}
	return r
}
