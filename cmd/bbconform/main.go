// Command bbconform runs the conformance harness: every theorem
// oracle of internal/conformance over the golden trace corpus, plus
// the corpus-independent lattice and fingerprint laws. It prints a
// human summary, optionally writes the full JSON report, and exits
// non-zero when any oracle fails — the CI gate behind `make conform`.
//
// Usage:
//
//	bbconform                               # run the committed corpus
//	bbconform -corpus path/to/corpus        # run another corpus
//	bbconform -json conform.json            # also write the JSON report
//	bbconform -events events.jsonl          # stream obs events as JSONL
//	bbconform -smoke                        # harness self-test (mutation detection)
//	bbconform -drift                        # drift oracles only: change-point detection + false-alarm gate
//	bbconform -gen                          # (re)generate the golden corpus in place
//	bbconform -serve                        # feed the corpus through an in-process bbserved API
//	bbconform -serve -serve-addr URL        # ... or through an already-running deployment
//	bbconform -v                            # per-oracle progress lines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"github.com/blackbox-rt/modelgen/internal/conformance"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbconform: ")
	var (
		corpusDir = flag.String("corpus", "testdata/corpus", "corpus directory to run the oracles over")
		jsonOut   = flag.String("json", "", "write the full JSON conformance report to this file")
		events    = flag.String("events", "", "stream observability events as JSONL to this file")
		smoke     = flag.Bool("smoke", false, "run the harness self-test: inject faults the oracles must catch")
		driftOnly = flag.Bool("drift", false, "run only the drift oracles: change-point detection on drift entries, zero false alarms on stationary ones")
		gen       = flag.Bool("gen", false, "(re)generate the golden corpus under -corpus and exit")
		srv       = flag.Bool("serve", false, "run the served-model oracles: feed each entry through the bbserved HTTP API")
		srvAddr   = flag.String("serve-addr", "", "with -serve, base URL of a running service (empty = start one in process)")
		verbose   = flag.Bool("v", false, "print one line per oracle as it completes")
	)
	flag.Parse()

	if *smoke {
		if err := conformance.Smoke(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("smoke: injected faults were caught; the oracles are live")
		if !*gen && flag.NFlag() == 1 {
			return
		}
	}
	if *gen {
		c, err := conformance.GenerateCorpus()
		if err != nil {
			log.Fatal(err)
		}
		if err := conformance.WriteCorpus(*corpusDir, c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d corpus entries under %s\n", len(c.Entries), *corpusDir)
		return
	}

	c, err := conformance.LoadCorpus(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}

	var observers []obs.Observer
	if *verbose {
		observers = append(observers, progressObserver{})
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sink := obs.NewJSONLSink(f)
		observers = append(observers, sink)
		defer func() {
			if err := sink.Err(); err != nil {
				log.Printf("event stream: %v", err)
			}
		}()
	}

	var rep *conformance.Report
	switch {
	case *driftOnly:
		rep = conformance.RunDrift(c, obs.NewMulti(observers...))
	case *srv:
		base := *srvAddr
		if base == "" {
			stop, addr, err := startLocalService()
			if err != nil {
				log.Fatal(err)
			}
			defer stop()
			base = addr
		}
		rep = conformance.CheckServed(c, base, nil, obs.NewMulti(observers...))
	default:
		rep = conformance.Run(c, obs.NewMulti(observers...))
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("corpus %s (version %s): %d entries, %d oracles — %d passed, %d skipped, %d failed\n",
		*corpusDir, rep.CorpusVersion, len(rep.Entries), rep.Oracles, rep.Passed, rep.Skipped, rep.Failed)
	if !rep.Ok() {
		for _, er := range rep.Entries {
			printFailures(er.Name, er.Results)
		}
		printFailures("corpus", rep.Global)
		os.Exit(1)
	}
}

// startLocalService brings up an in-process model-generation service
// on a loopback port for -serve runs without -serve-addr, so the
// served-model oracles exercise the full HTTP stack (routing, body
// limits, backpressure) with no external deployment.
func startLocalService() (stop func(), baseURL string, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	sv := serve.New(serve.Config{})
	httpSrv := &http.Server{Handler: sv.Handler()}
	go func() {
		if serr := httpSrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			log.Printf("serve: %v", serr)
		}
	}()
	stop = func() {
		httpSrv.Close()
		ln.Close()
	}
	return stop, "http://" + ln.Addr().String(), nil
}

func printFailures(name string, results []conformance.OracleResult) {
	for _, res := range results {
		if res.Status != conformance.StatusFail {
			continue
		}
		fmt.Printf("FAIL %s/%s", name, res.Oracle)
		if res.Detail != "" {
			fmt.Printf(": %s", res.Detail)
		}
		fmt.Println()
		for _, v := range res.Violations {
			fmt.Printf("  %s: %s\n", v.Property, v.Detail)
		}
	}
}

// progressObserver prints one line per conformance pipeline event.
type progressObserver struct{ obs.NopObserver }

func (progressObserver) OnPipeline(e obs.Pipeline) {
	if e.Stage != "conformance" {
		return
	}
	fmt.Printf("%-40s %s\n", e.Label, e.Name)
}
