package learner_test

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/conformance"
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// This file is the differential oracle tier for the packed
// word-parallel lattice kernel: every learning result is re-derived
// scalar-side through depfunc.Reference (the retained table-driven
// kernel) and the packed and scalar sides must agree on every matrix
// entry, fingerprint, weight and canonical key — over the full golden
// conformance corpus and a few hundred randomized simulated traces,
// for worker counts 1, 4 and 8. It lives in the external test package
// because the golden corpus generator imports the learner.

// packedReplaySeed replays one randomized case in isolation (the
// packed-tier analogue of -modelgen.seed, which the in-package
// differential suite already claims).
var packedReplaySeed = flag.Int64("modelgen.packedseed", -1, "replay the packed-oracle case with this seed only")

// packedSig collapses a result into a comparable signature, keyed on
// canonical keys and fingerprints of every hypothesis and the LUB.
func packedSig(r *learner.Result) []string {
	sig := make([]string, 0, len(r.Hypotheses)+2)
	for _, d := range r.Hypotheses {
		sig = append(sig, fmt.Sprintf("%s#%016x", d.Key(), d.Fingerprint()))
	}
	sig = append(sig, fmt.Sprintf("LUB:%s#%016x", r.LUB.Key(), r.LUB.Fingerprint()),
		fmt.Sprintf("converged:%v", r.Converged))
	return sig
}

// refVerify replays every returned matrix through the scalar reference
// kernel: each hypothesis must match its scalar reconstruction cell by
// cell, fingerprint, weight and key, and the packed LUB must equal the
// scalar fold of the hypotheses under the table-driven join.
func refVerify(r *learner.Result) error {
	var lub *depfunc.Reference
	for i, d := range r.Hypotheses {
		ref := depfunc.RefOf(d)
		if err := ref.Matches(d); err != nil {
			return fmt.Errorf("hypothesis %d: %w", i, err)
		}
		if lub == nil {
			lub = ref
		} else {
			lub.JoinWith(ref)
		}
	}
	if lub != nil {
		if err := lub.Matches(r.LUB); err != nil {
			return fmt.Errorf("LUB vs scalar join fold: %w", err)
		}
	}
	return nil
}

// comparableEvents filters a recorded stream down to the kinds that
// are defined to be worker-count-invariant (engine_start carries the
// worker count, run_end and span carry wall-clock durations).
func comparableEvents(events []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(events))
	for _, e := range events {
		switch e.Kind() {
		case "period_start", "message_processed", "hypothesis_spawned",
			"hypothesis_merged", "hypothesis_pruned", "period_end":
			out = append(out, e)
		}
	}
	return out
}

// checkWorkers runs Learn over tr at the given options for workers 1,
// 4 and 8 and fails unless all three produce identical signatures,
// statistics and event streams and all three results verify against
// the scalar reference kernel. It returns the workers=1 result.
func checkWorkers(tr *trace.Trace, opt learner.Options) (*learner.Result, error) {
	type run struct {
		res    *learner.Result
		events []obs.Event
	}
	runs := make([]run, 0, 3)
	for _, workers := range []int{1, 4, 8} {
		o := opt
		o.Workers = workers
		rec := obs.NewRecorder()
		o.Observer = rec
		res, err := learner.Learn(tr, o)
		if err != nil {
			return nil, fmt.Errorf("workers %d: %w", workers, err)
		}
		if err := refVerify(res); err != nil {
			return nil, fmt.Errorf("workers %d: scalar reference disagrees: %w", workers, err)
		}
		runs = append(runs, run{res, comparableEvents(rec.Events())})
	}
	base := runs[0]
	want := packedSig(base.res)
	for i, workers := range []int{4, 8} {
		r := runs[i+1]
		if got := packedSig(r.res); !reflect.DeepEqual(got, want) {
			return nil, fmt.Errorf("workers %d: result diverges from sequential:\n got %v\nwant %v", workers, got, want)
		}
		if !reflect.DeepEqual(r.res.Stats.PeriodLive, base.res.Stats.PeriodLive) ||
			r.res.Stats.Children != base.res.Stats.Children ||
			r.res.Stats.Merges != base.res.Stats.Merges ||
			r.res.Stats.Relaxations != base.res.Stats.Relaxations {
			return nil, fmt.Errorf("workers %d: stats diverge: %+v vs %+v", workers, r.res.Stats, base.res.Stats)
		}
		if !reflect.DeepEqual(r.events, base.events) {
			return nil, fmt.Errorf("workers %d: event stream diverges (%d vs %d comparable events)",
				workers, len(r.events), len(base.events))
		}
	}
	return base.res, nil
}

// TestPackedOracleConformanceCorpus runs the packed-vs-scalar oracle
// over every entry of the golden conformance corpus, at every bound
// the entry's manifest declares (plus the exact mode where tractable),
// for workers 1, 4 and 8.
func TestPackedOracleConformanceCorpus(t *testing.T) {
	c, err := conformance.GenerateCorpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Entries {
		bounds := append([]int(nil), e.Bounds...)
		if e.Exact {
			bounds = append(bounds, 0)
		}
		for _, bound := range bounds {
			opt := learner.Options{
				Bound:         bound,
				Policy:        e.Policy(),
				MaxHypotheses: conformance.MaxExactHypotheses,
			}
			if _, err := checkWorkers(e.Trace, opt); err != nil {
				t.Errorf("entry %s bound %d: %v", e.Name, bound, err)
			}
		}
	}
}

// TestPackedOracleRandomTraces sweeps the oracle over ~500 randomized
// simulated traces: random layered designs and the pinned catalog
// models under randomized schedules, in the bounded mode and — where
// tractable — the exact mode.
func TestPackedOracleRandomTraces(t *testing.T) {
	if *packedReplaySeed >= 0 {
		runPackedOracleCase(t, *packedReplaySeed)
		return
	}
	if testing.Short() {
		t.Skip("packed differential sweep is slow")
	}
	cases := 0
	for iter := int64(0); cases < 500; iter++ {
		cases += runPackedOracleCase(t, packedOracleBaseSeed+iter)
	}
}

// packedOracleBaseSeed offsets case seeds so a replayed seed is
// self-identifying.
const packedOracleBaseSeed = 2203_000_000

func runPackedOracleCase(t *testing.T, seed int64) (cases int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s\nreplay: go test -run TestPackedOracleRandomTraces -modelgen.packedseed=%d",
			seed, fmt.Sprintf(format, args...), seed)
	}
	rng := rand.New(rand.NewSource(seed))
	var m *model.Model
	switch seed % 8 {
	case 0:
		m = model.Figure1()
	case 1:
		m = model.GMStyleLite()
	default:
		opt := model.DefaultRandomOptions()
		opt.Layers = 2 + rng.Intn(2)
		opt.TasksPerLayer = 1 + rng.Intn(2)
		opt.EdgeProb = 0.3 + rng.Float64()*0.6
		m = model.RandomModel(rng, opt)
	}
	out, err := sim.Run(m, sim.Options{Periods: 3 + rng.Intn(4), Seed: seed})
	if err != nil {
		fail("sim: %v", err)
	}
	for _, bound := range []int{0, 4 + int(seed%5)} {
		opt := learner.Options{Bound: bound, MaxHypotheses: 2000}
		if _, err := checkWorkers(out.Trace, opt); err != nil {
			if bound == 0 && errors.Is(err, learner.ErrTooManyHypotheses) {
				continue // intractable exact case; doesn't count
			}
			fail("bound %d: %v", bound, err)
		}
		cases++
	}
	return cases
}
