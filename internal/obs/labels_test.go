package obs

import (
	"strings"
	"testing"
)

// TestLabeledSeries: labeled instruments of one family share one
// HELP/TYPE header, render canonical sorted labels, and stay
// independent series.
func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.LabeledCounter("srv_shed_total", "shed periods", "stream", "a")
	b := r.LabeledCounter("srv_shed_total", "shed periods", "stream", "b")
	a.Add(2)
	b.Inc()
	// Same series regardless of label order.
	same := r.LabeledGauge("srv_depth", "queue depth", "stream", "a", "zone", "x")
	same.Set(7)
	if got := r.LabeledGauge("srv_depth", "queue depth", "zone", "x", "stream", "a"); got != same {
		t.Fatal("label order changed series identity")
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE srv_shed_total counter\n",
		`srv_shed_total{stream="a"} 2` + "\n",
		`srv_shed_total{stream="b"} 1` + "\n",
		`srv_depth{stream="a",zone="x"} 7` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE srv_shed_total") != 1 {
		t.Errorf("family header repeated:\n%s", text)
	}
}

// TestLabeledHistogramExposition: the le label joins the series
// labels and the _sum/_count suffixes attach to the family name.
func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.LabeledHistogram("srv_lat", "latency", []float64{1, 2}, "stream", "s1")
	h.Observe(0.5)
	h.Observe(1.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`srv_lat_bucket{stream="s1",le="1"} 1`,
		`srv_lat_bucket{stream="s1",le="2"} 2`,
		`srv_lat_bucket{stream="s1",le="+Inf"} 2`,
		`srv_lat_sum{stream="s1"} 2`,
		`srv_lat_count{stream="s1"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestUnregister removes exactly the named series.
func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("c_total", "", "stream", "a").Inc()
	r.LabeledCounter("c_total", "", "stream", "b").Inc()
	name := SeriesName("c_total", "stream", "a")
	if !r.Unregister(name) {
		t.Fatalf("Unregister(%q) reported absent", name)
	}
	if r.Unregister(name) {
		t.Fatal("double Unregister reported present")
	}
	snap := r.Snapshot()
	if _, ok := snap[name]; ok {
		t.Fatal("unregistered series still in snapshot")
	}
	if snap.Value(SeriesName("c_total", "stream", "b")) != 1 {
		t.Fatal("sibling series lost")
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// are escaped per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("e_total", "", "path", `a"b\c`+"\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `e_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, sb.String())
	}
}

// TestFamilyTypeConflict: registering a second instrument type under
// one family name panics even when the label sets differ.
func TestFamilyTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("mix_total", "", "stream", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on family type conflict")
		}
	}()
	r.LabeledGauge("mix_total", "", "stream", "b")
}
