package obs

import "time"

// Span times one pipeline phase. Obtain one from StartSpan, do the
// phase's work, then call End: the observer receives a SpanEnd event
// with the wall time, and the metrics bridge feeds it into the
// per-phase modelgen_phase_<phase>_seconds histogram.
//
// Span is a small value type: with a nil observer StartSpan returns
// the zero Span, never reads the clock, and End is a no-op, so
// instrumented code keeps the allocation-free nil-observer fast path.
type Span struct {
	o     Observer
	phase string
	start time.Time
}

// The canonical phase names of the pipeline, in execution order.
// StartSpan accepts any string, but sticking to these keeps the
// modelgen_phase_*_seconds catalogue stable across tools.
const (
	PhaseSimulate    = "simulate"     // design-model simulation (internal/sim)
	PhaseTraceParse  = "trace_parse"  // trace parsing / event segmentation
	PhaseCandidates  = "candidates"   // per-period candidate-pair enumeration
	PhaseGeneralize  = "generalize"   // per-message generalization sweep
	PhasePostprocess = "postprocess"  // end-of-period relax/unify/prune
	PhaseVerify      = "verify"       // result re-verification against the trace
	PhaseDriftVerify = "drift_verify" // per-period verify-outcome hook (drift detection)
)

// StartSpan begins timing the named phase against o. A nil observer
// yields an inert Span.
func StartSpan(o Observer, phase string) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o, phase: phase, start: time.Now()}
}

// End closes the span, emitting a SpanEnd event with the elapsed wall
// time. End on the zero Span does nothing.
func (s Span) End() {
	if s.o == nil {
		return
	}
	s.o.OnSpan(SpanEnd{Phase: s.phase, ElapsedNS: time.Since(s.start).Nanoseconds()})
}
