package engine

import (
	"sync"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
)

// minParallelParents is the working-set size below which the fan-out
// stays sequential even with Workers > 1: dispatching to the pool
// costs more than assuming a handful of pairs.
const minParallelParents = 2

// fanPool is the per-Generalize worker pool behind the parallel
// fan-out. It is spawned once per generalize stage (not per message)
// and re-sharded per message by partitioning the live hypothesis set
// into Workers contiguous chunks: chunk c covers parents
// [c·P/W, (c+1)·P/W), each chunk appends its children to its own
// reusable flat buffer, and because chunks tile the parent list in
// order, reading the chunk buffers in chunk order replays the exact
// (parent, candidate-pair) sequence of the sequential loop — which is
// what keeps the gather bit-identical for any worker count.
//
// Workers touch only immutable shared state (the frozen history, the
// candidate pairs, the parents of their own chunk); statistics, dedup,
// events and bounded merging all stay in the caller's sequential
// gather. The chunk buffers grow to the high-water child count of the
// period and are then reused message after message, so a steady-state
// fan-out allocates nothing but the children themselves.
type fanPool struct {
	e    *Engine
	n    int // chunk count == worker count
	jobs chan fanJob
	wg   sync.WaitGroup
	kids [][]*hypothesis.Hypothesis
}

// fanJob asks whichever worker receives it to fill chunk c for the
// current message.
type fanJob struct {
	chunk int
	cur   []*hypothesis.Hypothesis
	pairs []depfunc.Pair
	ctx   hypothesis.StepCtx
	done  *sync.WaitGroup
}

// newFanPool spawns the stage's workers.
func (e *Engine) newFanPool() *fanPool {
	p := &fanPool{
		e:    e,
		n:    e.cfg.Workers,
		jobs: make(chan fanJob, e.cfg.Workers),
		kids: make([][]*hypothesis.Hypothesis, e.cfg.Workers),
	}
	p.wg.Add(p.n)
	for w := 0; w < p.n; w++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				lo := job.chunk * len(job.cur) / p.n
				hi := (job.chunk + 1) * len(job.cur) / p.n
				// Each chunk allocates assumption cells from its own
				// arena so workers never contend (or race) on one.
				ctx := job.ctx
				ctx.Arena = p.e.arenas[job.chunk]
				buf := p.kids[job.chunk][:0]
				for _, h := range job.cur[lo:hi] {
					buf = p.e.childrenOf(h, job.pairs, ctx, buf)
				}
				p.kids[job.chunk] = buf
				job.done.Done()
			}
		}()
	}
	return p
}

// run shards one message's fan-out across the pool and waits for the
// barrier. The returned buffers hold, in chunk order, the children of
// every parent in (parent, pair) generation order; they are only valid
// until the next run call.
func (p *fanPool) run(cur []*hypothesis.Hypothesis, pairs []depfunc.Pair,
	ctx hypothesis.StepCtx) [][]*hypothesis.Hypothesis {

	var done sync.WaitGroup
	done.Add(p.n)
	for c := 0; c < p.n; c++ {
		p.jobs <- fanJob{chunk: c, cur: cur, pairs: pairs, ctx: ctx, done: &done}
	}
	done.Wait()
	return p.kids
}

// close drains the pool; the generalize stage defers it.
func (p *fanPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
