package obs

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Metric-name constants of the learner bridge (see the package
// comment for the full catalogue).
const (
	MetricPeriods       = "modelgen_learner_periods_total"
	MetricMessages      = "modelgen_learner_messages_total"
	MetricSpawned       = "modelgen_learner_hypotheses_spawned_total"
	MetricPruned        = "modelgen_learner_hypotheses_pruned_total"
	MetricMerges        = "modelgen_learner_merges_total"
	MetricRelaxations   = "modelgen_learner_relaxations_total"
	MetricLive          = "modelgen_learner_live_hypotheses"
	MetricPeak          = "modelgen_learner_peak_hypotheses"
	MetricCandidates    = "modelgen_learner_candidates_per_message"
	MetricLivePerPeriod = "modelgen_learner_live_per_period"
	MetricRuns          = "modelgen_learner_runs_total"
	MetricRunSeconds    = "modelgen_learner_run_seconds"
	MetricProvSteps     = "modelgen_learner_provenance_steps_total"
	MetricWorkers       = "modelgen_engine_workers"
)

// Metric-name constants of the drift/convergence family, maintained
// per stream by internal/serve from the internal/drift monitor.
const (
	// MetricDriftGeneration is the stream's current model generation
	// (gauge, 1-based; bumped on every change-point alarm).
	MetricDriftGeneration = "modelgen_drift_generation"
	// MetricDriftStreak is the stability streak: periods since the
	// model fingerprint last changed (gauge).
	MetricDriftStreak = "modelgen_drift_streak_periods"
	// MetricDriftAmbiguity is the fraction of ordered task pairs with
	// a conditional (→?, ←?, ↔?) entry in the live model (float
	// gauge in [0,1]).
	MetricDriftAmbiguity = "modelgen_drift_ambiguity_ratio"
	// MetricDriftAlarms counts change-point alarms (counter).
	MetricDriftAlarms = "modelgen_drift_alarms_total"
	// MetricDriftLag is the service-wide detection-lag histogram:
	// periods between the estimated change point and the alarm, with
	// the triggering request's trace ID as exemplar.
	MetricDriftLag = "modelgen_drift_detection_lag_periods"
)

// DriftLagBuckets are the detection-lag histogram bounds, in periods.
var DriftLagBuckets = []float64{1, 2, 3, 5, 8, 13, 20, 40, 80}

// Metric-name constants of the stream state store (internal/store):
// the per-stream period WAL and its compactor.
const (
	// MetricStoreWALRecords counts period records appended across all
	// streams (counter).
	MetricStoreWALRecords = "modelgen_store_wal_records_total"
	// MetricStoreWALBytes counts WAL bytes written, frames included
	// (counter).
	MetricStoreWALBytes = "modelgen_store_wal_bytes_total"
	// MetricStoreCompactions counts WAL-into-base compactions
	// (counter).
	MetricStoreCompactions = "modelgen_store_compactions_total"
	// MetricStoreHydrations counts lazy stream hydrations: cold state
	// paged in as base + WAL replay (counter).
	MetricStoreHydrations = "modelgen_store_hydrations_total"
	// MetricStoreHydrationSeconds is the hydration-latency histogram.
	MetricStoreHydrationSeconds = "modelgen_store_hydration_seconds"
	// MetricStoreDirtyStreams is the number of open streams with WAL
	// records not yet folded into their base snapshot (gauge).
	MetricStoreDirtyStreams = "modelgen_store_dirty_streams"
)

// HydrationSecondsBuckets are the hydration-latency histogram bounds.
var HydrationSecondsBuckets = []float64{0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1}

// PhaseMetric returns the histogram name of a pipeline phase span
// (e.g. PhaseMetric("generalize") = "modelgen_phase_generalize_seconds").
func PhaseMetric(phase string) string { return "modelgen_phase_" + phase + "_seconds" }

// CandidateBuckets are the fan-out histogram bounds: candidate sets
// are small (|A_m| <= t² for t tasks) and the low end is where the
// learner's branching factor lives.
var CandidateBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// LiveBuckets are the working-set-size histogram bounds.
var LiveBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// RunSecondsBuckets are the run-duration histogram bounds (doubling
// from 5 ms to ~10 s, the paper's reported range).
var RunSecondsBuckets = []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28, 2.56, 5.12, 10.24}

// PhaseSecondsBuckets are the default phase-span histogram bounds:
// the shared µs-to-seconds latency layout. A candidates pass over one
// period can be single-digit microseconds while a backlogged online
// session can spend seconds in one phase, so the full latency range
// applies (the old fixed 100µs floor saturated at both ends).
var PhaseSecondsBuckets = DefLatencyBuckets

// MetricsObserverOptions configures the histogram bucket layouts of
// the metrics bridge. Zero values select the package defaults.
type MetricsObserverOptions struct {
	// PhaseBuckets are the bounds of the modelgen_phase_*_seconds
	// histograms (default PhaseSecondsBuckets).
	PhaseBuckets []float64
	// RunBuckets are the bounds of modelgen_learner_run_seconds
	// (default RunSecondsBuckets).
	RunBuckets []float64
}

// metricsObserver bridges events into a Registry.
type metricsObserver struct {
	reg *Registry

	periods, messages, spawned, pruned, merges, relaxations, runs *Counter
	provSteps                                                     *Counter
	live, peak, workers                                           *Gauge
	candidates, livePerPeriod, runSeconds                         *Histogram

	phaseBuckets []float64

	mu       sync.Mutex
	pipeline map[string]*Counter   // stage/name -> counter, created on demand
	phases   map[string]*Histogram // phase -> seconds histogram, created on demand
}

// NewMetricsObserver returns an Observer that maintains the
// modelgen_* metrics in reg with the default bucket layouts.
func NewMetricsObserver(reg *Registry) Observer {
	return NewMetricsObserverWith(reg, MetricsObserverOptions{})
}

// NewMetricsObserverWith is NewMetricsObserver with configurable
// histogram buckets. Instruments are created eagerly so a scrape
// before the first event already shows the full catalogue.
func NewMetricsObserverWith(reg *Registry, opts MetricsObserverOptions) Observer {
	if opts.PhaseBuckets == nil {
		opts.PhaseBuckets = PhaseSecondsBuckets
	}
	if opts.RunBuckets == nil {
		opts.RunBuckets = RunSecondsBuckets
	}
	return &metricsObserver{
		reg:           reg,
		phaseBuckets:  opts.PhaseBuckets,
		periods:       reg.Counter(MetricPeriods, "periods processed by the learner"),
		messages:      reg.Counter(MetricMessages, "message occurrences processed"),
		spawned:       reg.Counter(MetricSpawned, "hypotheses created by generalization"),
		pruned:        reg.Counter(MetricPruned, "hypotheses removed by end-of-period pruning"),
		merges:        reg.Counter(MetricMerges, "heuristic least-upper-bound merges"),
		relaxations:   reg.Counter(MetricRelaxations, "entries relaxed by end-of-period tests"),
		runs:          reg.Counter(MetricRuns, "completed learning runs"),
		provSteps:     reg.Counter(MetricProvSteps, "provenance steps emitted for winning hypotheses"),
		live:          reg.Gauge(MetricLive, "live hypotheses after the last period"),
		peak:          reg.Gauge(MetricPeak, "peak working-set size"),
		workers:       reg.Gauge(MetricWorkers, "engine worker-pool size of the current session (1 = sequential)"),
		candidates:    reg.Histogram(MetricCandidates, "timing-feasible candidate pairs per message", CandidateBuckets),
		livePerPeriod: reg.Histogram(MetricLivePerPeriod, "live hypotheses at each period end", LiveBuckets),
		runSeconds:    reg.Histogram(MetricRunSeconds, "learning-run wall time in seconds", opts.RunBuckets),
		pipeline:      map[string]*Counter{},
		phases:        map[string]*Histogram{},
	}
}

func (m *metricsObserver) OnEngineStart(e EngineStart) { m.workers.Set(int64(e.Workers)) }

func (m *metricsObserver) OnPeriodStart(PeriodStart) {}

func (m *metricsObserver) OnMessageProcessed(e MessageProcessed) {
	m.messages.Inc()
	m.candidates.Observe(float64(e.Candidates))
	m.live.Set(int64(e.Live))
	m.peak.SetMax(int64(e.Live))
}

func (m *metricsObserver) OnHypothesisSpawned(HypothesisSpawned) { m.spawned.Inc() }
func (m *metricsObserver) OnHypothesisMerged(HypothesisMerged)   { m.merges.Inc() }
func (m *metricsObserver) OnHypothesisPruned(HypothesisPruned)   { m.pruned.Inc() }

func (m *metricsObserver) OnPeriodEnd(e PeriodEnd) {
	m.periods.Inc()
	m.relaxations.Add(int64(e.Relaxations))
	m.live.Set(int64(e.Live))
	m.peak.SetMax(int64(e.Live))
	m.livePerPeriod.Observe(float64(e.Live))
}

func (m *metricsObserver) OnRunEnd(e RunEnd) {
	m.runs.Inc()
	m.runSeconds.Observe(time.Duration(e.ElapsedNS).Seconds())
}

func (m *metricsObserver) OnPipeline(e Pipeline) {
	key := e.Stage + "/" + e.Name
	m.mu.Lock()
	c, ok := m.pipeline[key]
	if !ok {
		c = m.reg.Counter(fmt.Sprintf("modelgen_%s_%s_total", e.Stage, e.Name),
			fmt.Sprintf("pipeline stage %q quantity %q", e.Stage, e.Name))
		m.pipeline[key] = c
	}
	m.mu.Unlock()
	c.Add(e.Value)
}

func (m *metricsObserver) OnProvenance(Provenance) { m.provSteps.Inc() }

func (m *metricsObserver) OnSpan(e SpanEnd) {
	m.mu.Lock()
	h, ok := m.phases[e.Phase]
	if !ok {
		h = m.reg.HistogramWith(HistogramOpts{
			Name:    PhaseMetric(e.Phase),
			Help:    fmt.Sprintf("wall time of the %q pipeline phase in seconds", e.Phase),
			Buckets: m.phaseBuckets,
		})
		m.phases[e.Phase] = h
	}
	m.mu.Unlock()
	h.Observe(time.Duration(e.ElapsedNS).Seconds())
}

// RuntimeMetrics registers a scrape hook publishing Go runtime health
// into reg — the "is the process healthy" series a /metrics scrape
// answers without reaching for pprof: go_goroutines,
// go_heap_alloc_bytes, go_gc_runs_total and
// go_gc_pause_seconds_total. Values refresh on every scrape/snapshot.
// Calling it again on the same registry is a no-op, so every layer
// that wants the series present (serve.New, a main, the pprof
// server) may call it defensively without stacking duplicate
// ReadMemStats hooks.
func RuntimeMetrics(reg *Registry) {
	if reg.runtimeHooked.Swap(true) {
		return
	}
	goroutines := reg.Gauge("go_goroutines", "current goroutine count")
	heap := reg.Gauge("go_heap_alloc_bytes", "bytes of allocated heap objects")
	gcRuns := reg.Gauge("go_gc_runs_total", "completed GC cycles")
	gcPause := reg.FloatGauge("go_gc_pause_seconds_total", "cumulative GC stop-the-world pause time in seconds")
	reg.AddScrapeHook(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heap.Set(int64(ms.HeapAlloc))
		gcRuns.Set(int64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	})
}
