package serve

import (
	"fmt"
	"regexp"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/drift"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/learner"
)

// Wire types of the HTTP API. Everything is plain JSON over the
// standard library; the service adds no dependencies.

// LearnOptions is the client-settable subset of learner.Options.
// Algorithmic fields become part of the stream's checkpoints;
// Workers, VerifyResults and Provenance are runtime knobs and may
// differ across restarts of the same stream.
type LearnOptions struct {
	Bound          int   `json:"bound,omitempty"`
	EagerPrune     bool  `json:"eager_prune,omitempty"`
	MaxHypotheses  int   `json:"max_hypotheses,omitempty"`
	Workers        int   `json:"workers,omitempty"`
	VerifyResults  bool  `json:"verify_results,omitempty"`
	RetainPeriods  int   `json:"retain_periods,omitempty"`
	PeriodLiveCap  int   `json:"period_live_cap,omitempty"`
	Provenance     bool  `json:"provenance,omitempty"`
	SenderWindow   int64 `json:"sender_window,omitempty"`
	ReceiverWindow int64 `json:"receiver_window,omitempty"`
	MaxSenders     int   `json:"max_senders,omitempty"`
	MaxReceivers   int   `json:"max_receivers,omitempty"`
}

func (lo LearnOptions) options() learner.Options {
	return learner.Options{
		Bound:         lo.Bound,
		EagerPrune:    lo.EagerPrune,
		MaxHypotheses: lo.MaxHypotheses,
		Workers:       lo.Workers,
		VerifyResults: lo.VerifyResults,
		RetainPeriods: lo.RetainPeriods,
		PeriodLiveCap: lo.PeriodLiveCap,
		Provenance:    lo.Provenance,
		Policy: depfunc.CandidatePolicy{
			SenderWindow:   lo.SenderWindow,
			ReceiverWindow: lo.ReceiverWindow,
			MaxSenders:     lo.MaxSenders,
			MaxReceivers:   lo.MaxReceivers,
		},
	}
}

// CreateStreamRequest is the body of POST /v1/streams.
type CreateStreamRequest struct {
	// ID names the stream; the server generates "s1", "s2", ... when
	// empty. IDs are [A-Za-z0-9._-], at most 64 characters.
	ID string `json:"id,omitempty"`
	// Tasks is the predefined task set of the stream's trace.
	Tasks []string `json:"tasks"`
	// BitRate enables candump-format lines on this stream's feed: a
	// line starting with '(' is parsed as a CAN frame on a bus at
	// this bit rate and becomes a message rise/fall pair. Zero
	// rejects candump lines.
	BitRate int64 `json:"bit_rate,omitempty"`
	// PeriodUS, when positive, cuts periods on a fixed wall-clock
	// grid: whenever an event reaches the next multiple of PeriodUS
	// after the stream's first event, the open period is closed.
	// Explicit "period" directives still work and reset nothing.
	PeriodUS int64 `json:"period_us,omitempty"`
	// Options configures the stream's learner.
	Options LearnOptions `json:"options"`
	// Drift, when present and enabled, attaches a model-drift monitor
	// to the stream (see internal/drift).
	Drift *DriftOptions `json:"drift,omitempty"`
}

// DriftOptions is the client-settable drift-monitor configuration.
// Like the algorithmic learner options it becomes part of the
// stream's identity and is persisted in checkpoints.
type DriftOptions struct {
	// Enabled turns the monitor on; when false the remaining fields
	// are ignored and /drift answers {"enabled": false}.
	Enabled bool `json:"enabled"`
	// ConvergeAfter, Delta, Lambda and MaxArchived override the
	// drift.Config tunables; zero values select the drift defaults.
	ConvergeAfter int     `json:"converge_after,omitempty"`
	Delta         float64 `json:"delta,omitempty"`
	Lambda        float64 `json:"lambda,omitempty"`
	MaxArchived   int     `json:"max_archived,omitempty"`
}

// config maps the wire options onto a drift.Config. The candidate
// policy comes from the stream's learner options so reference
// verification measures drift, not policy skew.
func (do *DriftOptions) config(policy depfunc.CandidatePolicy) drift.Config {
	return drift.Config{
		ConvergeAfter: do.ConvergeAfter,
		Delta:         do.Delta,
		Lambda:        do.Lambda,
		MaxArchived:   do.MaxArchived,
		Policy:        policy,
	}
}

// StreamInfo is returned by create and list calls.
type StreamInfo struct {
	ID       string        `json:"id"`
	Tasks    []string      `json:"tasks"`
	BitRate  int64         `json:"bit_rate,omitempty"`
	PeriodUS int64         `json:"period_us,omitempty"`
	Options  LearnOptions  `json:"options"`
	Drift    *DriftOptions `json:"drift,omitempty"`
}

// IngestResponse is the body of a successful events POST.
type IngestResponse struct {
	// Lines is the number of feed lines consumed by this request.
	Lines int `json:"lines"`
	// Periods is the number of complete periods the request cut and
	// queued for learning.
	Periods int `json:"periods"`
	// QueueDepth is the ingest queue occupancy after the request.
	QueueDepth int `json:"queue_depth"`
}

// StatsResponse is the body of GET /v1/streams/{id}/stats.
type StatsResponse struct {
	ID string `json:"id"`
	// PeriodsLearned counts periods the learner has consumed;
	// PeriodsCut counts periods ingest has queued. The difference is
	// in flight.
	PeriodsLearned int `json:"periods_learned"`
	PeriodsCut     int `json:"periods_cut"`
	QueueDepth     int `json:"queue_depth"`
	QueueCap       int `json:"queue_cap"`
	// Shed counts events requests rejected with 429.
	Shed int64 `json:"shed"`
	// Partial reports whether the ingest parser holds an open period.
	Partial bool `json:"partial"`
	// WorkingSet is the learner's live hypothesis count.
	WorkingSet int `json:"working_set"`
	// Err is the sticky learner error of a dead stream, empty while
	// healthy.
	Err string `json:"err,omitempty"`
	// Engine is the learner's instrumentation snapshot.
	Engine engine.Stats `json:"engine"`
}

// ModelResponse is the body of GET /v1/streams/{id}/model.
type ModelResponse struct {
	ID    string   `json:"id"`
	Tasks []string `json:"tasks"`
	// Hypotheses holds the frontier D* as dependency tables, sorted
	// by ascending weight (depfunc.Table / ParseTable round trip).
	Hypotheses []string `json:"hypotheses"`
	// LUB is the pointwise least upper bound of the frontier, the
	// paper's recommended single answer.
	LUB       string `json:"lub"`
	Converged bool   `json:"converged"`
	Periods   int    `json:"periods"`
}

// DebugStreamsResponse is the body of GET /debug/streams: one JSON
// document with the operational state of every stream.
type DebugStreamsResponse struct {
	Streams []StreamDebug `json:"streams"`
}

// StreamDebug is one stream's entry in /debug/streams.
type StreamDebug struct {
	ID         string `json:"id"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	PeriodsCut int64  `json:"periods_cut"`
	// LastPeriod is the index of the last period the learner consumed.
	LastPeriod int64 `json:"last_period"`
	// LiveHyps is the learner's live hypothesis count after the last
	// period.
	LiveHyps int64 `json:"live_hypotheses"`
	Shed     int64 `json:"shed"`
	// CheckpointAgeSeconds is the age of the last successful
	// compaction; zero when the stream's WAL has never been folded
	// into a base snapshot.
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds,omitempty"`
	Err                  string  `json:"err,omitempty"`
	// Store persistence view. Hydrated reports whether the stream's
	// learner state is paged in (false = registered cold from a
	// restore scan); WALRecords/WALBytes count period records not yet
	// folded into the base; LastCompaction is the RFC 3339 time of the
	// current base snapshot; PersistErr is the last persistence
	// failure, empty while durable state is in sync.
	Hydrated       bool   `json:"hydrated"`
	WALRecords     int    `json:"wal_records,omitempty"`
	WALBytes       int64  `json:"wal_bytes,omitempty"`
	LastCompaction string `json:"last_compaction,omitempty"`
	PersistErr     string `json:"persist_err,omitempty"`
	// Drift-monitor view (only on streams with drift enabled):
	// generation, stability streak, ambiguity ratio of the live model,
	// and the last detected change point (0 = none yet).
	Generation      int64   `json:"generation,omitempty"`
	Streak          int64   `json:"streak,omitempty"`
	AmbiguityRatio  float64 `json:"ambiguity_ratio,omitempty"`
	LastChangePoint int64   `json:"last_change_point,omitempty"`
}

// DriftResponse is the body of GET /v1/streams/{id}/drift.
type DriftResponse struct {
	ID string `json:"id"`
	// Enabled reports whether the stream carries a drift monitor.
	Enabled bool `json:"enabled"`
	// State is the full monitor snapshot, nil when Enabled is false.
	State *drift.State `json:"state,omitempty"`
}

// CheckpointResponse is the body of POST /v1/streams/{id}/checkpoint.
type CheckpointResponse struct {
	ID   string `json:"id"`
	Path string `json:"path"`
	// Periods is the number of learned periods the checkpoint covers.
	Periods int `json:"periods"`
}

// CompactResponse is the body of POST /v1/streams/{id}/compact: the
// stream's durable state after folding its WAL into a fresh base
// snapshot.
type CompactResponse struct {
	ID string `json:"id"`
	// Path is the new base snapshot file.
	Path string `json:"path"`
	// Periods is the number of learned periods the base covers.
	Periods int `json:"periods"`
	// WALRecords is the WAL record count after the compaction (0: the
	// log was fully folded).
	WALRecords int `json:"wal_records"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func validateID(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("serve: stream id %q must match %s", id, idPattern)
	}
	return nil
}
