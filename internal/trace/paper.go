package trace

// PaperFigure2 returns the worked-example trace of Figure 2 of the
// paper: three periods of the four-task system of Figure 1 (t1 sends
// to t2 and/or t3 in each period; t2 and t3 independently send to t4).
//
//	period 1: t1 t2 t4        messages m1 m2
//	period 2: t1 t3 t4        messages m3 m4
//	period 3: t1 t3 t2 t4     messages m5 m6 m7 m8
//
// Timestamps are chosen so that the timing-feasible sender/receiver
// candidate sets reproduce exactly the assumption sets discussed in
// Section 3.3: for m1 the candidates are (t1,t2) and (t1,t4); for m2
// they are (t1,t4) and (t2,t4); and so on. In period 3 the underlying
// design fired both branches: t1 sent m5 and m6 (to t3 and t2), t3
// sent m7 and t2 sent m8, both to t4.
func PaperFigure2() *Trace {
	b := NewBuilder([]string{"t1", "t2", "t3", "t4"})
	// Period 1: t1 -> m1 -> t2 -> m2 -> t4.
	b.StartPeriod().
		Exec("t1", 0, 10).
		Msg("m1", 12, 14).
		Exec("t2", 16, 26).
		Msg("m2", 28, 30).
		Exec("t4", 32, 42)
	// Period 2: t1 -> m3 -> t3 -> m4 -> t4.
	b.StartPeriod().
		Exec("t1", 100, 110).
		Msg("m3", 112, 114).
		Exec("t3", 116, 126).
		Msg("m4", 128, 130).
		Exec("t4", 132, 142)
	// Period 3: t1 fired both branches (m5 to t3 and m6 to t2); t3 ran
	// first and sent m7 to t4; t2, released while t3 was still
	// running, started preemptively at 228 and sent m8 to t4 when it
	// finished. t2's overlap with t3 matters: it makes t4 the only
	// feasible receiver of m7, which is what confines the candidate
	// sets to the assumptions enumerated in Section 3.3.
	b.StartPeriod().
		Exec("t1", 200, 210).
		Msg("m5", 212, 214).
		Msg("m6", 216, 218).
		Exec("t3", 220, 230).
		Exec("t2", 228, 246).
		Msg("m7", 232, 234).
		Msg("m8", 248, 250).
		Exec("t4", 252, 262)
	return b.MustBuild()
}
