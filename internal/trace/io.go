package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// The text trace format is line oriented:
//
//	# comment
//	tasks t1 t2 t3 t4
//	period
//	exec t1 0 10
//	msg m1 12 15
//	period
//	...
//
// "tasks" declares the predefined task set and must appear before the
// first period. "period" opens a new period. "exec NAME START END"
// records a task execution, "msg ID RISE FALL" a message occurrence.
// For raw logs the event-level forms "start NAME T", "end NAME T",
// "rise ID T" and "fall ID T" are also accepted and matched up exactly
// like FromEvents. Blank lines and '#' comments are ignored.

// Write serializes the trace in the compact text format.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "tasks %s\n", strings.Join(tr.Tasks, " "))
	for _, p := range tr.Periods {
		fmt.Fprintln(bw, "period")
		// Emit executions in start order for readability.
		for _, t := range p.execsByStart() {
			iv := p.Execs[t]
			fmt.Fprintf(bw, "exec %s %d %d\n", t, iv.Start, iv.End)
		}
		for _, m := range p.Msgs {
			fmt.Fprintf(bw, "msg %s %d %d\n", m.ID, m.Rise, m.Fall)
		}
	}
	return bw.Flush()
}

func (p *Period) execsByStart() []string {
	names := p.ExecutedTasks()
	// Stable sort by start time; ExecutedTasks already sorted by name.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && p.Execs[names[j]].Start < p.Execs[names[j-1]].Start; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// String renders the trace in the text format.
func (tr *Trace) String() string {
	var sb strings.Builder
	if err := Write(&sb, tr); err != nil {
		return fmt.Sprintf("trace: %v", err)
	}
	return sb.String()
}

// Read parses a trace in the text format.
func Read(r io.Reader) (*Trace, error) { return ReadObserved(r, nil) }

// ReadObserved parses like Read and reports parsing observability to
// o (stage "trace"): events_read and periods_segmented on success,
// malformed_lines (with the error as label) on a parse failure. A nil
// observer makes it identical to Read.
func ReadObserved(r io.Reader, o obs.Observer) (tr *Trace, err error) {
	sp := obs.StartSpan(o, obs.PhaseTraceParse)
	defer sp.End()
	if o != nil {
		defer func() {
			if err != nil {
				o.OnPipeline(obs.Pipeline{Stage: "trace", Name: "malformed_lines", Value: 1, Label: err.Error()})
				return
			}
			o.OnPipeline(obs.Pipeline{Stage: "trace", Name: "periods_segmented", Value: int64(len(tr.Periods))})
		}()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var tasks []string
	var events []Event
	sawTasks := false
	lineNo := 0

	parseInt := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrBadTimestamp, s)
		}
		return v, nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "tasks":
			if sawTasks {
				return nil, fmt.Errorf("trace: line %d: duplicate tasks declaration", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace: line %d: empty task set", lineNo)
			}
			tasks = fields[1:]
			sawTasks = true
		case "period":
			if !sawTasks {
				return nil, fmt.Errorf("trace: line %d: period before tasks declaration", lineNo)
			}
			t := int64(0)
			if len(events) > 0 {
				t = events[len(events)-1].Time
			}
			events = append(events, Event{Time: t, Kind: PeriodMark})
		case "exec":
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: %w: exec wants NAME START END", lineNo, ErrTruncatedEvent)
			}
			start, err := parseInt(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			end, err := parseInt(fields[3])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			events = append(events,
				Event{Time: start, Kind: TaskStart, Name: fields[1]},
				Event{Time: end, Kind: TaskEnd, Name: fields[1]})
		case "msg":
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: %w: msg wants ID RISE FALL", lineNo, ErrTruncatedEvent)
			}
			rise, err := parseInt(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			fall, err := parseInt(fields[3])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			events = append(events,
				Event{Time: rise, Kind: MsgRise, Name: fields[1]},
				Event{Time: fall, Kind: MsgFall, Name: fields[1]})
		case "start", "end", "rise", "fall":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: %w: %s wants NAME TIME", lineNo, ErrTruncatedEvent, fields[0])
			}
			t, err := parseInt(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			var k Kind
			switch fields[0] {
			case "start":
				k = TaskStart
			case "end":
				k = TaskEnd
			case "rise":
				k = MsgRise
			case "fall":
				k = MsgFall
			}
			events = append(events, Event{Time: t, Kind: k, Name: fields[1]})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if !sawTasks {
		return nil, fmt.Errorf("trace: missing tasks declaration")
	}
	if o != nil {
		o.OnPipeline(obs.Pipeline{Stage: "trace", Name: "events_read", Value: int64(len(events))})
	}
	return fromOrderedEvents(tasks, events)
}

// fromOrderedEvents is FromEvents without the time sort: the text
// format's line order is authoritative, so that periods whose
// timestamps restart (e.g. per-period clocks) still parse.
func fromOrderedEvents(tasks []string, events []Event) (*Trace, error) {
	tr := New(tasks)
	cur := &Period{Index: 0, Execs: map[string]Interval{}}
	started := false
	openStart := map[string]int64{}
	openRise := map[string]int64{}

	flush := func() error {
		if len(openStart) > 0 || len(openRise) > 0 {
			return fmt.Errorf("%w: period %d has %d open task(s) and %d open message(s)",
				ErrCrossingPeriod, cur.Index, len(openStart), len(openRise))
		}
		if started {
			tr.Periods = append(tr.Periods, cur)
		}
		cur = &Period{Index: cur.Index + 1, Execs: map[string]Interval{}}
		started = false
		return nil
	}
	for _, ev := range events {
		switch ev.Kind {
		case PeriodMark:
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		case TaskStart:
			if !tr.HasTask(ev.Name) {
				return nil, fmt.Errorf("%w: %q", ErrUnknownTask, ev.Name)
			}
			if _, dup := cur.Execs[ev.Name]; dup {
				return nil, fmt.Errorf("%w: %q in period %d", ErrDuplicateExec, ev.Name, cur.Index)
			}
			if _, open := openStart[ev.Name]; open {
				return nil, fmt.Errorf("%w: double start of %q", ErrUnmatchedEvent, ev.Name)
			}
			openStart[ev.Name] = ev.Time
		case TaskEnd:
			st, ok := openStart[ev.Name]
			if !ok {
				return nil, fmt.Errorf("%w: end of %q without start", ErrUnmatchedEvent, ev.Name)
			}
			delete(openStart, ev.Name)
			cur.Execs[ev.Name] = Interval{Start: st, End: ev.Time}
		case MsgRise:
			if _, open := openRise[ev.Name]; open {
				return nil, fmt.Errorf("%w: double rise of %q", ErrUnmatchedEvent, ev.Name)
			}
			openRise[ev.Name] = ev.Time
		case MsgFall:
			rise, ok := openRise[ev.Name]
			if !ok {
				return nil, fmt.Errorf("%w: fall of %q without rise", ErrUnmatchedEvent, ev.Name)
			}
			delete(openRise, ev.Name)
			cur.Msgs = append(cur.Msgs, Message{ID: ev.Name, Rise: rise, Fall: ev.Time})
		}
		started = true
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for i, p := range tr.Periods {
		p.Index = i
	}
	sortMessages(tr)
	// Per-period clock restarts are allowed in the text format, so
	// validate everything except global period ordering.
	if err := tr.validatePeriods(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadString parses a trace from a string in the text format.
func ReadString(s string) (*Trace, error) {
	return Read(strings.NewReader(s))
}

// FromEventsObserved assembles a trace like FromEvents and reports
// stage-"trace" observability to o: events_read and
// periods_segmented on success, malformed_lines (with the error as
// label) on failure. A nil observer makes it identical to FromEvents.
func FromEventsObserved(tasks []string, events []Event, o obs.Observer) (*Trace, error) {
	sp := obs.StartSpan(o, obs.PhaseTraceParse)
	tr, err := FromEvents(tasks, events)
	sp.End()
	if o != nil {
		if err != nil {
			o.OnPipeline(obs.Pipeline{Stage: "trace", Name: "malformed_lines", Value: 1, Label: err.Error()})
		} else {
			o.OnPipeline(obs.Pipeline{Stage: "trace", Name: "events_read", Value: int64(len(events))})
			o.OnPipeline(obs.Pipeline{Stage: "trace", Name: "periods_segmented", Value: int64(len(tr.Periods))})
		}
	}
	return tr, err
}
