package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/blackbox-rt/modelgen/internal/drift"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/store"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// queuedPeriod is one unit of ingest→owner handoff: the cut period
// plus the telemetry needed to measure and trace its trip through the
// queue. The SpanContext is a value; with tracing disabled it is zero
// and the handoff stays allocation-free.
type queuedPeriod struct {
	p   *trace.Period
	enq time.Time
	ctx obs.SpanContext // the ingest span, parent of learn_period
}

// phaseBridge converts the engine's SpanEnd phase events
// (candidates/generalize/postprocess) into trace spans parented under
// the current learn_period span. The owner goroutine stores the
// parent before AddPeriod; engine workers may emit OnSpan
// concurrently, hence the atomic.
type phaseBridge struct {
	obs.NopObserver
	tracer *obs.Tracer
	parent atomic.Value // obs.SpanContext
}

func (b *phaseBridge) setParent(sc obs.SpanContext) { b.parent.Store(sc) }

func (b *phaseBridge) OnSpan(e obs.SpanEnd) {
	sc, _ := b.parent.Load().(obs.SpanContext)
	if !sc.Sampled {
		return
	}
	d := time.Duration(e.ElapsedNS)
	b.tracer.RecordSpan(sc, e.Phase, time.Now().Add(-d), d)
}

// ErrStreamClosed is returned by queries against a stream whose owner
// goroutine has exited (deleted or server shut down).
var ErrStreamClosed = errors.New("serve: stream closed")

// stream is one multiplexed learning session. Concurrency contract:
//
//   - The learner is touched ONLY by the owner goroutine (run); the
//     HTTP layer talks to it through the bounded period queue and the
//     closure request channel. No lock ever guards learner state.
//   - The ingest parser is guarded by feedMu and advanced
//     clone-and-commit, so a shed or failed batch leaves no trace.
//   - dead / periodsCut / shed are atomics readable from any handler.
//   - A restored stream starts cold: no learner, no open store
//     handle. The owner hydrates (base snapshot + WAL replay) before
//     the first consume or query; until then the stream costs only
//     its registration.
type stream struct {
	id   string
	info StreamInfo
	opt  learner.Options

	feedMu sync.Mutex
	parser *parser

	queue   chan queuedPeriod
	reqs    chan func(*learner.Online)
	closing chan struct{} // closed once by close() -> owner drains and exits
	done    chan struct{} // closed by the owner on exit

	closeOnce sync.Once
	dead      atomic.Pointer[error] // sticky learner error
	shed      atomic.Int64
	cut       atomic.Int64 // periods queued by ingest

	// Introspection atomics for /debug/streams, written by the owner.
	liveWS     atomic.Int64 // working-set size after the last period
	lastPeriod atomic.Int64 // periods learned
	ckptUnixNS atomic.Int64 // wall time of the last successful compaction

	// Drift-monitor introspection atomics (valid only when
	// driftEnabled).
	genA      atomic.Int64  // model generation
	streakA   atomic.Int64  // stability streak
	lastCPA   atomic.Int64  // last detected change point
	ambigBits atomic.Uint64 // ambiguity ratio as math.Float64bits

	// Tracing (nil tracer disables; the hot path then allocates
	// nothing extra).
	tracer *obs.Tracer
	bridge *phaseBridge

	// Persistence. store is the shared state store (nil = in-memory
	// only); st is the owner's per-stream handle, nil until hydration
	// opens it. stA mirrors st for lock-free debug reads; cold holds
	// the scan-time view a restored stream shows before hydration.
	// persistErrA is the last persistence failure (retried via forced
	// compaction each period, never fatal to learning).
	store       *store.Store
	st          *store.Stream
	stA         atomic.Pointer[store.Stream]
	cold        *store.StreamMeta
	hydrated    bool // owner-only
	hydratedA   atomic.Bool
	needCompact bool // owner-only: a failed append awaits resync
	persistErrA atomic.Pointer[error]

	// Owner-goroutine state (no synchronization needed).
	o       *learner.Online
	learned int // periods consumed, across restarts and generations

	// Drift monitoring. driftEnabled is immutable after construction;
	// mon is owner-only (built at hydration) and pendingDrift carries
	// the alarm raised by the verify hook during AddPeriod back to
	// consume, which forks the next model generation.
	driftEnabled bool
	mon          *drift.Monitor
	pendingDrift *drift.Event

	// Per-stream metric series, unregistered when the stream is
	// deleted.
	mQueueDepth  *obs.Gauge
	mPeriods     *obs.Counter
	mShed        *obs.Counter
	mDriftGen    *obs.Gauge      // modelgen_drift_generation{stream}
	mDriftStreak *obs.Gauge      // modelgen_drift_streak_periods{stream}
	mDriftAmbig  *obs.FloatGauge // modelgen_drift_ambiguity_ratio{stream}
	mDriftAlarms *obs.Counter    // modelgen_drift_alarms_total{stream}

	// Service-wide instruments shared by every stream (owned by the
	// Server; nil without a registry).
	mLatency        *obs.Histogram // serve_ingest_latency_seconds
	mOfferedLines   *obs.Counter   // serve_ingest_offered_lines_total
	mShedLines      *obs.Counter   // serve_ingest_shed_lines_total
	mPeriodsLearned *obs.Counter   // serve_periods_learned_total
	mAlarmPeriods   *obs.Counter   // serve_drift_alarm_periods_total
	mDriftLag       *obs.Histogram // modelgen_drift_detection_lag_periods
}

func (s *stream) deadErr() error {
	if p := s.dead.Load(); p != nil {
		return *p
	}
	return nil
}

// ingest parses the batch on a clone of the parser, then atomically
// either queues every cut period and commits the clone, or rejects
// the whole batch (shed=true on queue pressure) and commits nothing.
// parent is the request's ingest span context (zero when tracing is
// off); cut periods carry it into the owner's learn_period span.
func (s *stream) ingest(lines []string, parent obs.SpanContext) (resp IngestResponse, shed bool, err error) {
	if s.mOfferedLines != nil {
		s.mOfferedLines.Add(int64(len(lines)))
	}
	if err := s.deadErr(); err != nil {
		return resp, false, fmt.Errorf("serve: stream %s is dead: %w", s.id, err)
	}
	s.feedMu.Lock()
	defer s.feedMu.Unlock()

	cutSpan := s.tracer.StartSpan("period_cut", parent)
	cp := s.parser.clone()
	var periods []*trace.Period
	for _, line := range lines {
		ps, err := cp.feed(line)
		if err != nil {
			cutSpan.SetAttr("error", err.Error())
			cutSpan.End()
			return resp, false, err
		}
		periods = append(periods, ps...)
	}
	cutSpan.SetAttr("periods", strconv.Itoa(len(periods)))
	cutSpan.End()
	// Owner only drains the queue, so under feedMu the free-slot count
	// can only grow between this check and the sends below: the batch
	// either fits entirely or is shed entirely.
	if cap(s.queue)-len(s.queue) < len(periods) {
		s.shed.Add(1)
		if s.mShed != nil {
			s.mShed.Inc()
		}
		if s.mShedLines != nil {
			s.mShedLines.Add(int64(len(lines)))
		}
		return resp, true, fmt.Errorf("serve: stream %s ingest queue full (%d periods over %d free slots)",
			s.id, len(periods), cap(s.queue)-len(s.queue))
	}
	enq := time.Now()
	for _, p := range periods {
		select {
		case s.queue <- queuedPeriod{p: p, enq: enq, ctx: parent}:
		case <-s.done:
			return resp, false, ErrStreamClosed
		}
	}
	s.parser = cp
	s.cut.Add(int64(len(periods)))
	if s.mPeriods != nil {
		s.mPeriods.Add(int64(len(periods)))
	}
	if s.mQueueDepth != nil {
		s.mQueueDepth.Set(int64(len(s.queue)))
	}
	return IngestResponse{Lines: len(lines), Periods: len(periods), QueueDepth: len(s.queue)}, false, nil
}

// do runs fn on the owner goroutine and waits for it. The owner
// drains all already-queued periods first, so a query observes every
// period whose ingest request completed before the query began
// (read-your-writes for any single client).
func (s *stream) do(fn func(o *learner.Online)) error {
	ran := make(chan struct{})
	select {
	case s.reqs <- func(o *learner.Online) { fn(o); close(ran) }:
		<-ran
		return nil
	case <-s.done:
		return ErrStreamClosed
	}
}

// close asks the owner to drain and exit; safe to call repeatedly.
func (s *stream) close() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// run is the owner goroutine: the only code that touches s.o.
func (s *stream) run() {
	defer close(s.done)
	defer func() {
		// Every learned period is already durable (WAL append + fsync
		// in consume), so exit needs no final checkpoint — just the
		// handle release.
		if s.st != nil {
			s.st.Close()
		}
	}()
	for {
		// Queue first: requests and shutdown never jump learning work
		// that is already buffered.
		select {
		case p := <-s.queue:
			s.consume(p)
			continue
		default:
		}
		select {
		case p := <-s.queue:
			s.consume(p)
		case req := <-s.reqs:
			s.ensureHydrated()
			s.drain()
			req(s.o)
		case <-s.closing:
			s.drain()
			return
		}
	}
}

func (s *stream) drain() {
	for {
		select {
		case p := <-s.queue:
			s.consume(p)
		default:
			if s.mQueueDepth != nil {
				s.mQueueDepth.Set(0)
			}
			return
		}
	}
}

func (s *stream) consume(qp queuedPeriod) {
	if s.deadErr() != nil {
		return // learner is sticky-dead; drop the backlog
	}
	s.ensureHydrated()
	if s.deadErr() != nil {
		return // hydration failed; same sticky-dead contract
	}
	sp := s.tracer.StartSpan("learn_period", qp.ctx)
	if s.bridge != nil {
		if sp != nil {
			s.bridge.setParent(sp.Context())
		} else {
			s.bridge.setParent(obs.SpanContext{})
		}
	}
	s.pendingDrift = nil
	// forked/replayed steer persistence: a forked period appends a
	// Fork WAL record; only a replayed fork has learner state (a
	// delta) to carry.
	var forked, replayed bool
	err := s.o.AddPeriod(qp.p)
	if err != nil && s.mon != nil && errors.Is(err, learner.ErrNoHypothesis) {
		// A period no hypothesis can explain is the strongest drift
		// signal there is: with a monitor attached, treat it as a
		// forced change point and replay the period on the fresh
		// generation instead of killing the stream.
		if ferr := s.forkGeneration(s.mon.ForceAlarm(), sp); ferr != nil {
			err = ferr
		} else {
			s.pendingDrift = nil
			forked, replayed = true, true
			err = s.o.AddPeriod(qp.p)
		}
	}
	if err == nil && s.pendingDrift != nil {
		// The verify hook raised a detector alarm during AddPeriod.
		ev := s.pendingDrift
		s.pendingDrift = nil
		forked, replayed = true, false
		err = s.forkGeneration(ev, sp)
	}
	if sp != nil {
		sp.SetAttr("stream", s.id)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if err != nil {
		e := err
		s.dead.Store(&e)
		return
	}
	s.learned++
	if s.mPeriodsLearned != nil {
		s.mPeriodsLearned.Inc()
	}
	s.publishDriftView()
	s.lastPeriod.Store(int64(s.learned))
	s.liveWS.Store(int64(s.o.WorkingSetSize()))
	if s.mLatency != nil {
		// Ingest→model-update latency: enqueue to committed learn.
		d := time.Since(qp.enq).Seconds()
		if sp != nil {
			s.mLatency.ObserveExemplar(d, sp.Context().TraceID.String(), time.Now())
		} else {
			s.mLatency.Observe(d)
		}
	}
	if s.mQueueDepth != nil {
		s.mQueueDepth.Set(int64(len(s.queue)))
	}
	s.persistPeriod(forked, replayed)
}

// forkGeneration retires the current learner after a change-point
// alarm and starts a fresh one for the monitor's new model
// generation, keeping the stream alive across regime changes. Owner
// goroutine only.
func (s *stream) forkGeneration(ev *drift.Event, sp *obs.TraceSpan) error {
	o, err := learner.NewOnline(s.info.Tasks, s.opt)
	if err != nil {
		return err
	}
	s.o = o
	if s.mDriftAlarms != nil {
		s.mDriftAlarms.Inc()
	}
	if s.mAlarmPeriods != nil {
		s.mAlarmPeriods.Inc()
	}
	if s.mDriftLag != nil {
		lag := float64(ev.Period - ev.ChangePoint)
		if ev.Forced {
			lag = 0 // the offending period itself raised the alarm
		}
		// The alarm path gets an exemplar: the trace of the request
		// whose period tripped the detector.
		if sp != nil {
			s.mDriftLag.ObserveExemplar(lag, sp.Context().TraceID.String(), time.Now())
		} else {
			s.mDriftLag.Observe(lag)
		}
	}
	if sp != nil {
		sp.SetAttr("drift_generation", strconv.Itoa(ev.Generation))
		sp.SetAttr("drift_change_point", strconv.Itoa(ev.ChangePoint))
	}
	return nil
}

// publishDriftView copies the monitor's headline numbers into the
// stream's atomics and gauges so /debug/streams and /metrics read
// them without disturbing the owner. Owner goroutine only.
func (s *stream) publishDriftView() {
	if s.mon == nil {
		return
	}
	gen, streak := int64(s.mon.Generation()), int64(s.mon.Streak())
	ambig := s.mon.AmbiguityRatio()
	s.genA.Store(gen)
	s.streakA.Store(streak)
	s.lastCPA.Store(int64(s.mon.LastChangePoint()))
	s.ambigBits.Store(math.Float64bits(ambig))
	if s.mDriftGen != nil {
		s.mDriftGen.Set(gen)
		s.mDriftStreak.Set(streak)
		s.mDriftAmbig.Set(ambig)
	}
}

// checkpointFile is the base-snapshot envelope around a learner
// snapshot: the serve-level identity and runtime knobs needed to
// reopen the stream. It is also the schema of the pre-store
// one-file-per-stream checkpoints, which migrate into the store
// verbatim. Ingest parser residue (an open period, candump sequence
// numbers) is deliberately not persisted — bases and WAL records are
// cut at period boundaries, and a client that was mid-period replays
// that period after a restart.
type checkpointFile struct {
	ServeVersion int               `json:"serve_version"`
	Info         StreamInfo        `json:"info"`
	Snapshot     *learner.Snapshot `json:"snapshot"`
	// Drift is the drift-monitor state of a drift-enabled stream.
	// Optional, so version-1 checkpoints from before drift monitoring
	// still restore.
	Drift *drift.State `json:"drift,omitempty"`
}

// serveVersion is the checkpoint envelope schema version.
const serveVersion = 1

// walEntry is the JSON payload of one serve-layer WAL record: the
// period's learner delta, absent exactly when the period forked a
// model generation without replaying on it (the new learner starts
// empty), plus the post-period drift-monitor state so a detection in
// flight survives a crash.
type walEntry struct {
	Delta *learner.Delta `json:"delta,omitempty"`
	Drift *drift.State   `json:"drift,omitempty"`
}

// persistErr returns the stream's last persistence failure, nil while
// durable state is in sync with the learner.
func (s *stream) persistErr() error {
	if p := s.persistErrA.Load(); p != nil {
		return *p
	}
	return nil
}

// ensureHydrated pages a cold stream's state in before first use:
// base snapshot, WAL replay, drift-monitor restore. It runs on the
// owner goroutine only and at most once; a failure marks the stream
// sticky-dead exactly like a learner error, so corrupt state surfaces
// on the API instead of crashing the process.
func (s *stream) ensureHydrated() {
	if s.hydrated {
		return
	}
	s.hydrated = true
	start := time.Now()
	if err := s.hydrate(); err != nil {
		e := fmt.Errorf("serve: stream %s: hydrate: %w", s.id, err)
		s.dead.Store(&e)
		return
	}
	s.hydratedA.Store(true)
	if s.store != nil {
		s.store.ObserveHydration(time.Since(start))
	}
	s.publishDriftView()
	s.liveWS.Store(int64(s.o.WorkingSetSize()))
}

// hydrate rebuilds the owner's in-memory state from the store: decode
// the base snapshot, replay the WAL records beyond it (a Fork record
// swaps in a fresh learner for the new generation), and restore the
// drift monitor from the newest state on disk. The result is
// bit-identical to the learner the previous process had made durable.
func (s *stream) hydrate() error {
	if s.store == nil {
		// In-memory stream: nothing on disk, just build the learner.
		return s.buildLearner(nil)
	}
	st, err := s.store.OpenStream(s.id)
	if err != nil {
		return err
	}
	base, recs, err := st.Load()
	if err != nil {
		st.Close()
		return err
	}
	var snap *learner.Snapshot
	var dst *drift.State
	if base != nil {
		var cf checkpointFile
		if err := json.Unmarshal(base, &cf); err != nil {
			st.Close()
			return fmt.Errorf("base snapshot: %w", err)
		}
		if cf.ServeVersion != serveVersion {
			st.Close()
			return fmt.Errorf("base envelope version %d, this binary reads %d", cf.ServeVersion, serveVersion)
		}
		snap = cf.Snapshot
		dst = cf.Drift
	}
	if err := s.buildLearner(snap); err != nil {
		st.Close()
		return err
	}
	for _, r := range recs {
		var e walEntry
		if err := json.Unmarshal(r.Payload, &e); err != nil {
			st.Close()
			return fmt.Errorf("wal record seq %d: %w", r.Seq, err)
		}
		if r.Fork {
			if err := s.buildLearner(nil); err != nil {
				st.Close()
				return err
			}
		}
		if e.Delta != nil {
			if err := s.o.ApplyDelta(e.Delta); err != nil {
				st.Close()
				return fmt.Errorf("wal record seq %d: %w", r.Seq, err)
			}
		}
		if e.Drift != nil {
			dst = e.Drift
		}
	}
	if err := s.buildMonitor(dst); err != nil {
		st.Close()
		return err
	}
	s.learned = int(st.LastSeq())
	if ns := st.Stats().CompactedAtUnixNS; ns > 0 {
		s.ckptUnixNS.Store(ns)
	}
	s.st = st
	s.stA.Store(st)
	return nil
}

// buildLearner (re)creates the stream's learner: fresh for a nil
// snapshot, restored otherwise. Owner goroutine (or pre-run setup).
func (s *stream) buildLearner(snap *learner.Snapshot) error {
	var err error
	if snap == nil {
		s.o, err = learner.NewOnline(s.info.Tasks, s.opt)
	} else {
		s.o, err = learner.RestoreOnline(snap, s.opt)
	}
	return err
}

// buildMonitor creates the drift monitor of a drift-enabled stream,
// restored from dst when non-nil. The OnPeriodVerify hook installed
// at construction reads s.mon dynamically, so it starts observing as
// soon as this sets it.
func (s *stream) buildMonitor(dst *drift.State) error {
	if !s.driftEnabled {
		return nil
	}
	cfg := s.info.Drift.config(s.opt.Policy)
	if dst == nil {
		s.mon = drift.New(cfg)
		return nil
	}
	mon, err := drift.Restore(*dst, cfg)
	if err != nil {
		return fmt.Errorf("drift state: %w", err)
	}
	s.mon = mon
	return nil
}

// persistPeriod makes the period just consumed durable: one O(delta)
// WAL record in the common case, a full compaction when the WAL
// crossed its thresholds or a previous persistence step failed (the
// fresh base is cut from the live learner, so a lost record never
// leaves a gap). Persistence failures are surfaced via persistErrA
// and retried next period; they never kill learning. Owner goroutine
// only.
func (s *stream) persistPeriod(forked, replayed bool) {
	if s.st == nil {
		return
	}
	if s.needCompact {
		s.compactPersist()
		return
	}
	var e walEntry
	if !forked || replayed {
		d, err := s.o.PeriodDelta()
		if err != nil {
			s.persistFallback(err)
			return
		}
		e.Delta = d
	}
	gen := uint32(1)
	if s.mon != nil {
		dst := s.mon.State()
		e.Drift = &dst
		gen = uint32(dst.Generation)
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		s.persistFallback(err)
		return
	}
	rec := store.Record{Seq: uint64(s.learned), Generation: gen, Fork: forked, Payload: payload}
	if err := s.st.Append(rec); err != nil {
		s.persistFallback(err)
		return
	}
	s.persistErrA.Store(nil)
	if s.st.ShouldCompact() {
		s.compactPersist()
	}
}

// persistFallback records a failed per-period append and falls back
// to a full compaction; Snapshot() inside compact also re-anchors the
// delta baseline, so the next period's delta capture lines up again.
func (s *stream) persistFallback(err error) {
	s.persistErrA.Store(&err)
	s.needCompact = true
	s.compactPersist()
}

// compactPersist runs a compaction and tracks its outcome in the
// retry flag and persistErrA. Owner goroutine only.
func (s *stream) compactPersist() {
	if err := s.compact(); err != nil {
		e := err
		s.persistErrA.Store(&e)
		s.needCompact = true
		return
	}
	s.needCompact = false
	s.persistErrA.Store(nil)
}

// compact folds the stream's WAL into a fresh base snapshot under the
// next epoch (see store.Stream.Compact). Owner goroutine only.
func (s *stream) compact() error {
	snap, err := s.o.Snapshot()
	if err != nil {
		return err
	}
	cf := &checkpointFile{ServeVersion: serveVersion, Info: s.info, Snapshot: snap}
	if s.mon != nil {
		dst := s.mon.State()
		cf.Drift = &dst
	}
	base, err := json.Marshal(cf)
	if err != nil {
		return err
	}
	meta, err := json.Marshal(s.info)
	if err != nil {
		return err
	}
	now := time.Now()
	if err := s.st.Compact(base, uint64(s.learned), meta, now); err != nil {
		return err
	}
	s.ckptUnixNS.Store(now.UnixNano())
	return nil
}
