package lattice

import (
	"math/rand"
	"testing"
)

// packSlice packs a value slice into words, lane i of word i/PackedLanes
// holding vs[i]; tail lanes stay zero (the Par encoding), matching the
// invariant depfunc maintains for its matrices.
func packSlice(vs []Value) []uint64 {
	w := make([]uint64, PackedWords(len(vs)))
	for i, v := range vs {
		w[i/PackedLanes] |= PackValue(v) << (uint(i%PackedLanes) * PackedBits)
	}
	return w
}

func laneOf(w []uint64, i int) Value {
	return UnpackValue((w[i/PackedLanes] >> (uint(i%PackedLanes) * PackedBits)) & laneMask)
}

// randomWord returns a word whose first used lanes hold independent
// random lattice values and whose remaining lanes are zero.
func randomWord(rng *rand.Rand, used int) uint64 {
	var w uint64
	for i := 0; i < used; i++ {
		w |= PackValue(Value(rng.Intn(int(numValues)))) << (uint(i) * PackedBits)
	}
	return w
}

// TestPackedAllPairsEveryLane exercises every (a, b) of the 7×7 value
// pairs in every one of the 21 lane positions, with the surrounding
// lanes holding a deterministic non-uniform background, and checks
// join, meet and order against the table-driven scalar operations —
// both in the lane under test and in every background lane (a kernel
// that leaks carries between lanes would corrupt a neighbour).
func TestPackedAllPairsEveryLane(t *testing.T) {
	for lane := 0; lane < PackedLanes; lane++ {
		for a := Value(0); a < numValues; a++ {
			for b := Value(0); b < numValues; b++ {
				va := make([]Value, PackedLanes)
				vb := make([]Value, PackedLanes)
				for i := range va {
					va[i] = Value((i + int(a)) % int(numValues))
					vb[i] = Value((i*3 + int(b)) % int(numValues))
				}
				va[lane], vb[lane] = a, b
				wa, wb := packSlice(va)[0], packSlice(vb)[0]

				join := JoinWords(wa, wb)
				meet := MeetWords(wa, wb)
				wantLeq := true
				for i := 0; i < PackedLanes; i++ {
					if got, want := laneOf([]uint64{join}, i), Join(va[i], vb[i]); got != want {
						t.Fatalf("lane %d (test lane %d, a=%s b=%s): join = %s, want %s",
							i, lane, a, b, got, want)
					}
					if got, want := laneOf([]uint64{meet}, i), Meet(va[i], vb[i]); got != want {
						t.Fatalf("lane %d (test lane %d, a=%s b=%s): meet = %s, want %s",
							i, lane, a, b, got, want)
					}
					wantLeq = wantLeq && Leq(va[i], vb[i])
				}
				if got := LeqWords(wa, wb); got != wantLeq {
					t.Fatalf("test lane %d, a=%s b=%s: LeqWords = %v, want %v", lane, a, b, got, wantLeq)
				}
			}
		}
	}
}

// TestPackedLatticeLaws checks the word-level kernels satisfy the
// lattice laws on randomized full words: commutativity, associativity,
// idempotence, absorption, and monotonicity of join with respect to
// the packed order.
func TestPackedLatticeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		a := randomWord(rng, PackedLanes)
		b := randomWord(rng, PackedLanes)
		c := randomWord(rng, PackedLanes)
		if JoinWords(a, b) != JoinWords(b, a) {
			t.Fatalf("join not commutative: %x %x", a, b)
		}
		if MeetWords(a, b) != MeetWords(b, a) {
			t.Fatalf("meet not commutative: %x %x", a, b)
		}
		if JoinWords(JoinWords(a, b), c) != JoinWords(a, JoinWords(b, c)) {
			t.Fatalf("join not associative: %x %x %x", a, b, c)
		}
		if MeetWords(MeetWords(a, b), c) != MeetWords(a, MeetWords(b, c)) {
			t.Fatalf("meet not associative: %x %x %x", a, b, c)
		}
		if JoinWords(a, a) != a || MeetWords(a, a) != a {
			t.Fatalf("not idempotent: %x", a)
		}
		if JoinWords(a, MeetWords(a, b)) != a {
			t.Fatalf("absorption a∨(a∧b) failed: %x %x", a, b)
		}
		if MeetWords(a, JoinWords(a, b)) != a {
			t.Fatalf("absorption a∧(a∨b) failed: %x %x", a, b)
		}
		// a ⊑ a∨b, a∧b ⊑ a, and join monotonicity: a ⊑ b ⇒ a∨c ⊑ b∨c.
		if !LeqWords(a, JoinWords(a, b)) || !LeqWords(MeetWords(a, b), a) {
			t.Fatalf("order inconsistent with join/meet: %x %x", a, b)
		}
		ab := JoinWords(a, b) // a ⊑ ab by construction
		if !LeqWords(JoinWords(a, c), JoinWords(ab, c)) {
			t.Fatalf("join not monotone: %x %x %x", a, b, c)
		}
	}
}

// TestWeightWordMatchesDistanceSum pins WeightWord to the scalar
// Definition-7 distances on random words, including partially used
// ones.
func TestWeightWordMatchesDistanceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		used := 1 + rng.Intn(PackedLanes)
		w := randomWord(rng, used)
		want := 0
		for i := 0; i < used; i++ {
			want += Distance(laneOf([]uint64{w}, i))
		}
		if got := WeightWord(w); got != want {
			t.Fatalf("WeightWord(%x) = %d, want %d (used %d)", w, got, want, used)
		}
	}
}

// TestPackedCrossWordBoundaries packs value slices whose lengths
// straddle word boundaries (including lengths that are not a multiple
// of the word capacity) and checks multi-word join/meet/order against
// the scalar operations entry by entry.
func TestPackedCrossWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 20, 21, 22, 41, 42, 43, 63, 64, 100, 441} {
		va := make([]Value, n)
		vb := make([]Value, n)
		for i := range va {
			va[i] = Value(rng.Intn(int(numValues)))
			vb[i] = Value(rng.Intn(int(numValues)))
		}
		wa, wb := packSlice(va), packSlice(vb)
		wantLeq := true
		for i := 0; i < len(wa); i++ {
			used := n - i*PackedLanes
			if used > PackedLanes {
				used = PackedLanes
			}
			if !ValidPackedWord(wa[i], used) || !ValidPackedWord(wb[i], used) {
				t.Fatalf("n=%d word %d: packSlice produced an invalid word", n, i)
			}
			join := JoinWords(wa[i], wb[i])
			meet := MeetWords(wa[i], wb[i])
			if !ValidPackedWord(join, used) || !ValidPackedWord(meet, used) {
				t.Fatalf("n=%d word %d: kernel produced an invalid word", n, i)
			}
			for l := 0; l < used; l++ {
				idx := i*PackedLanes + l
				if got, want := laneOf([]uint64{join}, l), Join(va[idx], vb[idx]); got != want {
					t.Fatalf("n=%d entry %d: join = %s, want %s", n, idx, got, want)
				}
				if got, want := laneOf([]uint64{meet}, l), Meet(va[idx], vb[idx]); got != want {
					t.Fatalf("n=%d entry %d: meet = %s, want %s", n, idx, got, want)
				}
			}
			// Tail lanes are zero in both operands, so whole-word
			// LeqWords is exact even on the last, partial word.
			wantLeq = wantLeq && LeqWords(wa[i], wb[i])
		}
		scalarLeq := true
		for i := range va {
			scalarLeq = scalarLeq && Leq(va[i], vb[i])
		}
		if wantLeq != scalarLeq {
			t.Fatalf("n=%d: word-wise Leq %v, scalar %v", n, wantLeq, scalarLeq)
		}
	}
}

// TestValidPackedWord pins the decoder-side validation: the unused
// code 100, stray bits past the used lanes, and the spare top bit are
// all rejected; every real value in every lane is accepted.
func TestValidPackedWord(t *testing.T) {
	for lane := 0; lane < PackedLanes; lane++ {
		for v := Value(0); v < numValues; v++ {
			w := PackValue(v) << (uint(lane) * PackedBits)
			if !ValidPackedWord(w, PackedLanes) {
				t.Fatalf("valid word rejected: value %s in lane %d", v, lane)
			}
			if lane < PackedLanes-1 && v != Par && ValidPackedWord(w, lane) {
				t.Fatalf("word with occupied lane %d accepted with used=%d", lane, lane)
			}
		}
		// Code 100: Q set, F and B clear — not a value.
		bad := uint64(4) << (uint(lane) * PackedBits)
		if ValidPackedWord(bad, PackedLanes) {
			t.Fatalf("non-value code 100 accepted in lane %d", lane)
		}
	}
	if ValidPackedWord(1<<63, PackedLanes) {
		t.Fatal("spare top bit accepted")
	}
}
