package obs

import (
	"bytes"
	"testing"
)

// TestPrometheusGoldenEscaping pins the exact exposition bytes for a
// registry whose label values and HELP text need escaping — the
// text-format spec requires backslash, double-quote and newline in
// label values, and backslash and newline in HELP, to be escaped. A
// stream ID is client-chosen, so `can"bus` must round-trip through a
// scrape without corrupting the document.
func TestPrometheusGoldenEscaping(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("serve_stream_periods_total", "periods per stream",
		"stream", `can"bus`).Add(2)
	r.LabeledCounter("serve_stream_periods_total", "periods per stream",
		"stream", "a\\b\nc").Inc()
	r.Counter("serve_notes_total", "first line\nsecond \\ line").Inc()
	r.LabeledHistogram("serve_lat_seconds", "latency", []float64{0.5},
		"stream", `can"bus`).Observe(0.25)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP serve_lat_seconds latency
# TYPE serve_lat_seconds histogram
serve_lat_seconds_bucket{stream="can\"bus",le="0.5"} 1
serve_lat_seconds_bucket{stream="can\"bus",le="+Inf"} 1
serve_lat_seconds_sum{stream="can\"bus"} 0.25
serve_lat_seconds_count{stream="can\"bus"} 1
# HELP serve_notes_total first line\nsecond \\ line
# TYPE serve_notes_total counter
serve_notes_total 1
# HELP serve_stream_periods_total periods per stream
# TYPE serve_stream_periods_total counter
serve_stream_periods_total{stream="a\\b\nc"} 1
serve_stream_periods_total{stream="can\"bus"} 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
