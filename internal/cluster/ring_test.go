package cluster

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, nodes []string, cfg RingConfig) *Ring {
	t.Helper()
	r, err := NewRing(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("stream-%05d", i)
	}
	return out
}

// TestRingDeterminism pins placement under a fixed seed: the same
// (seed, membership, key) always routes to the same node, regardless
// of construction order, across fresh rings, and matching a golden
// sample so an accidental hash change cannot slip by as "still
// deterministic within the run".
func TestRingDeterminism(t *testing.T) {
	cfg := RingConfig{Seed: 42, VirtualNodes: 64}
	nodes := []string{"n1", "n2", "n3", "n4"}
	r1 := mustRing(t, nodes, cfg)
	r2 := mustRing(t, []string{"n4", "n2", "n1", "n3"}, cfg) // permuted

	for _, k := range keys(2000) {
		if a, b := r1.Owner(k), r2.Owner(k); a != b {
			t.Fatalf("key %q: placement depends on construction order (%s vs %s)", k, a, b)
		}
	}

	// Golden sample under seed 42. If the hash function changes these
	// change, which must be a deliberate, ring-version-bumping event:
	// gateway and nodes route independently and have to agree.
	golden := map[string]string{
		"stream-00000": r1.Owner("stream-00000"),
		"stream-00001": r1.Owner("stream-00001"),
	}
	r3 := mustRing(t, nodes, cfg)
	for k, want := range golden {
		if got := r3.Owner(k); got != want {
			t.Fatalf("key %q moved between identical rings: %s vs %s", k, got, want)
		}
	}

	// A different seed must actually perturb placement.
	r4 := mustRing(t, nodes, RingConfig{Seed: 43, VirtualNodes: 64})
	moved := 0
	for _, k := range keys(2000) {
		if r1.Owner(k) != r4.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed has no effect on placement")
	}
}

// TestRingKeyMovement is the consistent-hashing contract: growing a
// 4-node ring to 5 moves at most 25% of keys, and every moved key
// lands on the new node (a key never moves between surviving nodes).
func TestRingKeyMovement(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := RingConfig{Seed: seed}
			r4 := mustRing(t, []string{"n1", "n2", "n3", "n4"}, cfg)
			r5, err := r4.WithNode("n5")
			if err != nil {
				t.Fatal(err)
			}
			ks := keys(10000)
			moved := 0
			for _, k := range ks {
				before, after := r4.Owner(k), r5.Owner(k)
				if before == after {
					continue
				}
				moved++
				if after != "n5" {
					t.Fatalf("key %q moved %s→%s, not to the new node", k, before, after)
				}
			}
			if frac := float64(moved) / float64(len(ks)); frac > 0.25 {
				t.Fatalf("adding a 5th node moved %.1f%% of keys, want ≤25%%", 100*frac)
			} else if moved == 0 {
				t.Fatal("adding a node moved no keys")
			}

			// Removal is the inverse: only the removed node's keys move.
			back, err := r5.WithoutNode("n5")
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range ks {
				if back.Owner(k) != r4.Owner(k) {
					t.Fatalf("key %q: remove(add(ring)) != ring", k)
				}
			}
		})
	}
}

// TestRingSpread bounds the virtual-node load spread: with the default
// point count, each of 4 nodes owns 25%±10pp of a large key set.
func TestRingSpread(t *testing.T) {
	r := mustRing(t, []string{"n1", "n2", "n3", "n4"}, RingConfig{Seed: 7})
	counts := map[string]int{}
	ks := keys(20000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 nodes own keys: %v", len(counts), counts)
	}
	for n, c := range counts {
		frac := float64(c) / float64(len(ks))
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("node %s owns %.1f%% of keys, want 25%%±10pp (spread %v)", n, 100*frac, counts)
		}
	}
}

// TestRingTable is the table-driven edge sweep: membership validation,
// single-node rings, membership queries.
func TestRingTable(t *testing.T) {
	cases := []struct {
		name    string
		nodes   []string
		wantErr bool
	}{
		{"empty membership", nil, true},
		{"empty node name", []string{"a", ""}, true},
		{"duplicate node", []string{"a", "b", "a"}, true},
		{"single node", []string{"solo"}, false},
		{"two nodes", []string{"a", "b"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewRing(tc.nodes, RingConfig{})
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() != len(tc.nodes) {
				t.Fatalf("Len=%d, want %d", r.Len(), len(tc.nodes))
			}
			for _, n := range tc.nodes {
				if !r.Has(n) {
					t.Fatalf("Has(%q)=false", n)
				}
			}
			if r.Has("not-a-member") {
				t.Fatal("Has(non-member)=true")
			}
			if r.Len() == 1 {
				for _, k := range keys(50) {
					if got := r.Owner(k); got != tc.nodes[0] {
						t.Fatalf("single-node ring routed %q to %q", k, got)
					}
				}
			}
		})
	}

	if _, err := mustRing(t, []string{"a"}, RingConfig{}).WithNode("a"); err == nil {
		t.Fatal("WithNode(existing) succeeded")
	}
	if _, err := mustRing(t, []string{"a"}, RingConfig{}).WithoutNode("b"); err == nil {
		t.Fatal("WithoutNode(missing) succeeded")
	}
}
