// Command latency reproduces the end-to-end latency discussion of
// Section 3.4: the pessimistic holistic analysis of the critical path
// including task Q assumes every higher-priority task — including the
// infrastructure task O — may preempt Q; the dependency model learned
// from the trace proves Q always executes after O, so O's preemption
// is excluded and the path bound tightens.
package main

import (
	"fmt"
	"log"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	m := modelgen.GMStyleModel()
	out, err := modelgen.Simulate(m, modelgen.SimOptions{
		Periods: modelgen.CaseStudyPeriods,
		Seed:    modelgen.CaseStudySeed,
	})
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	res, err := modelgen.LearnBounded(out.Trace, 32, modelgen.CaseStudyPolicy(false))
	if err != nil {
		log.Fatalf("learning failed: %v", err)
	}
	d := res.LUB

	path := modelgen.LatencyPath{Tasks: []string{"S", "A", "D", "L", "P", "Q"}}
	cmp, err := modelgen.CompareLatency(m, path, d, 0)
	if err != nil {
		log.Fatalf("latency analysis failed: %v", err)
	}

	fmt.Println("Critical path including task Q:", path.Tasks)
	fmt.Println()
	fmt.Println("Pessimistic bound (all tasks potentially independent):")
	printBreakdown(cmp.Pessimistic)
	fmt.Println()
	fmt.Println("Dependency-informed bound (learned model):")
	printBreakdown(cmp.Informed)
	fmt.Println()

	abs, rel := cmp.Improvement()
	fmt.Printf("Improvement: %d us (%.1f%%) — the learned dependencies exclude\n", abs, rel*100)
	fmt.Println("preemptions that cannot happen, most notably O's preemption of Q")
	fmt.Printf("(d(Q,O) = %s proves O always completes before Q starts).\n", d.MustGet("Q", "O"))

	// Cross-check against observation: the informed bound still
	// dominates every simulated response time on the path.
	worst := map[string]int64{}
	for _, e := range out.Execs {
		if r := e.Response(); r > worst[e.Task] {
			worst[e.Task] = r
		}
	}
	fmt.Println()
	fmt.Println("Observed worst-case response times (27 simulated periods):")
	for _, item := range cmp.Informed.Items {
		if item.Kind != "task" {
			continue
		}
		fmt.Printf("  %-2s observed %5d us   informed bound %5d us\n",
			item.Name, worst[item.Name], item.Bound)
		if worst[item.Name] > item.Bound {
			log.Fatalf("UNSAFE: %s observed above bound", item.Name)
		}
	}
	fmt.Println()
	fmt.Println("All observations fall under the refined bounds. Done.")
}

func printBreakdown(bd *modelgen.LatencyBreakdown) {
	for _, item := range bd.Items {
		suffix := ""
		if len(item.Excluded) > 0 {
			suffix = fmt.Sprintf("   (excluded preemptors: %v)", item.Excluded)
		}
		fmt.Printf("  %-8s %-6s %6d us%s\n", item.Kind, item.Name, item.Bound, suffix)
	}
	fmt.Printf("  %-8s %-6s %6d us\n", "TOTAL", "", bd.Total)
}
