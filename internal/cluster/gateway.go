package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
)

// Gateway metric names.
const (
	MetricProxyRequests = "modelgen_cluster_proxy_requests_total"
	MetricProxyErrors   = "modelgen_cluster_proxy_errors_total"
	MetricMigrations    = "modelgen_cluster_migrations_total"
	MetricFallbacks     = "modelgen_cluster_migration_fallbacks_total"
)

// Backend is one node the gateway routes to.
type Backend struct {
	// Name is the node's ring name; it must match the node's
	// NodeConfig.ID or fences and placement drift apart.
	Name string
	// URL is the node's base URL (no trailing slash).
	URL string
	// Client issues the proxied requests; nil uses
	// http.DefaultClient. Tests inject clients whose transports they
	// can cut to simulate partitions.
	Client *http.Client
}

// GatewayConfig configures the router.
type GatewayConfig struct {
	Backends []Backend
	// Ring parameterizes stream placement. Placement is a pure
	// function of (Ring.Seed, backend names, stream ID).
	Ring RingConfig
	// Registry receives the gateway's own modelgen_cluster_* series.
	Registry *obs.Registry
	// MigrationWait bounds how long a proxied request waits for an
	// in-flight migration of its stream before answering 503; zero
	// selects 5s.
	MigrationWait time.Duration
	// MaxBody bounds a create request's body; zero selects 1 MiB.
	MaxBody int64
	// Logf receives diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// placement is the gateway's authoritative view of one stream: the
// owning node and the placement epoch every proxied request is stamped
// with. migrating is non-nil while a handoff is in flight; requests
// for the stream wait on it so clients see a paused stream, not a
// refused one.
type placement struct {
	node      string
	epoch     uint64
	migrating chan struct{}
}

// Gateway proxies the /v1/streams API to the owning node of each
// stream and runs migrations. All proxied requests forward the
// client's headers — traceparent included, so traces span nodes — and
// carry the placement epoch in EpochHeader.
type Gateway struct {
	cfg      GatewayConfig
	ring     *Ring
	backends map[string]Backend
	mux      *http.ServeMux

	mu      sync.Mutex
	streams map[string]*placement
	nextID  uint64 // generated stream IDs for bodyless creates

	// Chaos hooks, called (when non-nil) at the two fatal instants of
	// a migration: after the source handoff committed (the fence is
	// up, the stream exists only as the envelope in our hands) and
	// before each import attempt. Tests cut transports inside them.
	hookAfterHandoff func(id string)
	hookBeforeImport func(id, target string)

	mMigrations *obs.Counter
	mFallbacks  *obs.Counter
}

// NewGateway builds the router. The ring is constructed over the
// backend names; construction fails on duplicate or empty names.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	names := make([]string, 0, len(cfg.Backends))
	backends := make(map[string]Backend, len(cfg.Backends))
	for _, b := range cfg.Backends {
		names = append(names, b.Name)
		backends[b.Name] = b
	}
	ring, err := NewRing(names, cfg.Ring)
	if err != nil {
		return nil, err
	}
	if cfg.MigrationWait <= 0 {
		cfg.MigrationWait = 5 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	g := &Gateway{
		cfg:      cfg,
		ring:     ring,
		backends: backends,
		streams:  map[string]*placement{},
	}
	if reg := cfg.Registry; reg != nil {
		g.mMigrations = reg.Counter(MetricMigrations, "Completed stream migrations.")
		g.mFallbacks = reg.Counter(MetricFallbacks,
			"Migrations that landed on a fallback node because the chosen target failed to import.")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/streams", g.handleCreate)
	mux.HandleFunc("GET /v1/streams", g.handleList)
	mux.HandleFunc("/v1/streams/{id}", g.handleStream)
	mux.HandleFunc("/v1/streams/{id}/{rest...}", g.handleStream)
	mux.HandleFunc("GET /cluster/ring", g.handleRing)
	mux.HandleFunc("GET /cluster/metrics", g.handleMetrics)
	mux.HandleFunc("POST /cluster/migrate/{id}", g.handleMigrate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if cfg.Registry != nil {
		mux.Handle("GET /metrics", cfg.Registry.Handler())
	}
	g.mux = mux
	return g, nil
}

// Handler returns the gateway's HTTP surface.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Ring returns the placement ring.
func (g *Gateway) Ring() *Ring { return g.ring }

// Owner returns the node currently serving the stream and its
// placement epoch (ring placement at epoch 1 if the gateway has not
// seen the stream yet).
func (g *Gateway) Owner(id string) (string, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.placementLocked(id)
	return p.node, p.epoch
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

func (g *Gateway) placementLocked(id string) *placement {
	p, ok := g.streams[id]
	if !ok {
		p = &placement{node: g.ring.Owner(id), epoch: 1}
		g.streams[id] = p
	}
	return p
}

// await returns the stream's placement once no migration is in
// flight, or nil after MigrationWait.
func (g *Gateway) await(id string) *placement {
	deadline := time.Now().Add(g.cfg.MigrationWait)
	for {
		g.mu.Lock()
		p := g.placementLocked(id)
		ch := p.migrating
		g.mu.Unlock()
		if ch == nil {
			return p
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return nil
		}
	}
}

func (g *Gateway) client(node string) *http.Client {
	if c := g.backends[node].Client; c != nil {
		return c
	}
	return http.DefaultClient
}

func (g *Gateway) counter(name, help, node string) *obs.Counter {
	if g.cfg.Registry == nil {
		return nil
	}
	return g.cfg.Registry.LabeledCounter(name, help, "node", node)
}

// forward proxies the request to the node, stamping the placement
// epoch. The client's headers are copied wholesale, so traceparent
// propagates into the node's span tree.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, node string, epoch uint64, body []byte) {
	if c := g.counter(MetricProxyRequests, "Requests proxied to each node.", node); c != nil {
		c.Inc()
	}
	b := g.backends[node]
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	resp, err := g.client(node).Do(req)
	if err != nil {
		if c := g.counter(MetricProxyErrors, "Proxied requests that failed in transport.", node); c != nil {
			c.Inc()
		}
		g.logf("cluster: gateway: %s %s → %s: %v", r.Method, r.URL.Path, node, err)
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": fmt.Sprintf("cluster: node %s unreachable: %v", node, err)})
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var req serve.CreateStreamRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "serve: undecodable create request"})
			return
		}
	}
	if req.ID == "" {
		// The gateway must know the ID to place the stream, so it —
		// not the owning node — generates names for bodyless creates.
		g.mu.Lock()
		g.nextID++
		req.ID = "g" + strconv.FormatUint(g.nextID, 10)
		g.mu.Unlock()
		if body, err = json.Marshal(&req); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	p := g.await(req.ID)
	if p == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": fmt.Sprintf("cluster: stream %s is migrating", req.ID)})
		return
	}
	g.forward(w, r, p.node, p.epoch, body)
}

func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStreamBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	p := g.await(id)
	if p == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": fmt.Sprintf("cluster: stream %s is migrating", id)})
		return
	}
	g.forward(w, r, p.node, p.epoch, body)
}

// maxStreamBody bounds proxied per-stream request bodies (events
// batches); it mirrors the serve default.
const maxStreamBody = 8 << 20

// handleList fans GET /v1/streams out to every node and merges the
// sorted results.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	var all []serve.StreamInfo
	var errs []string
	for _, node := range g.ring.Nodes() {
		infos, err := g.listNode(r, node)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", node, err))
			continue
		}
		all = append(all, infos...)
	}
	if len(errs) > 0 && all == nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": errs})
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, all)
}

func (g *Gateway) listNode(r *http.Request, node string) ([]serve.StreamInfo, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, g.backends[node].URL+"/v1/streams", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client(node).Do(req)
	if err != nil {
		if c := g.counter(MetricProxyErrors, "Proxied requests that failed in transport.", node); c != nil {
			c.Inc()
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var infos []serve.StreamInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// RingResponse is the body of GET /cluster/ring.
type RingResponse struct {
	Nodes        []string `json:"nodes"`
	VirtualNodes int      `json:"virtual_nodes"`
	Seed         uint64   `json:"seed"`
	// Streams maps every stream the gateway has placed to its owner.
	Streams map[string]StreamPlacement `json:"streams"`
}

// StreamPlacement is one stream's entry in RingResponse.
type StreamPlacement struct {
	Node      string `json:"node"`
	Epoch     uint64 `json:"epoch"`
	Migrating bool   `json:"migrating,omitempty"`
}

func (g *Gateway) handleRing(w http.ResponseWriter, _ *http.Request) {
	resp := RingResponse{
		Nodes:        g.ring.Nodes(),
		VirtualNodes: g.ring.cfg.VirtualNodes,
		Seed:         g.ring.cfg.Seed,
		Streams:      map[string]StreamPlacement{},
	}
	g.mu.Lock()
	for id, p := range g.streams {
		resp.Streams[id] = StreamPlacement{Node: p.node, Epoch: p.epoch, Migrating: p.migrating != nil}
	}
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleMigrate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	target := r.URL.Query().Get("target")
	if target == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "cluster: migrate needs ?target=<node>"})
		return
	}
	if err := g.Migrate(id, target); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	node, epoch := g.Owner(id)
	writeJSON(w, http.StatusOK, StreamPlacement{Node: node, Epoch: epoch})
}

// Migrate moves the stream to the target node by checkpoint handoff:
//
//  1. Mark the stream migrating; proxied requests for it now wait.
//  2. POST /cluster/handoff/{id} on the owner at epoch e+1. The owner
//     drains the stream's queue, snapshots, removes it, and fences
//     itself at e+1 — from here no epoch-e write can land anywhere.
//  3. POST /cluster/import on the target. If the target fails, try
//     the remaining nodes (the deposed owner last — its fence admits
//     epoch e+1 back); the first import wins ownership.
//  4. Commit the new placement {winner, e+1} and release waiters.
//
// A handoff failure aborts with placement unchanged: the stream never
// left the owner. After a successful handoff the envelope is the only
// copy of the stream until an import lands, which is why step 3 falls
// back across every live node rather than failing fast.
func (g *Gateway) Migrate(id, target string) error {
	if _, ok := g.backends[target]; !ok {
		return fmt.Errorf("cluster: unknown target node %q", target)
	}
	g.mu.Lock()
	p := g.placementLocked(id)
	if p.migrating != nil {
		g.mu.Unlock()
		return fmt.Errorf("cluster: stream %s already migrating", id)
	}
	if p.node == target {
		g.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	p.migrating = ch
	source, newEpoch := p.node, p.epoch+1
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		p.migrating = nil
		g.mu.Unlock()
		close(ch)
	}()

	hr, err := g.handoff(source, id, newEpoch)
	if err != nil {
		return fmt.Errorf("cluster: migrate %s: handoff from %s: %w (placement unchanged)", id, source, err)
	}
	if g.hookAfterHandoff != nil {
		g.hookAfterHandoff(id)
	}

	// Candidate order: the requested target, then the other nodes in
	// ring order, the deposed source last.
	candidates := []string{target}
	for _, n := range g.ring.Nodes() {
		if n != target && n != source {
			candidates = append(candidates, n)
		}
	}
	if source != target {
		candidates = append(candidates, source)
	}
	var winner string
	var lastErr error
	for _, cand := range candidates {
		if g.hookBeforeImport != nil {
			g.hookBeforeImport(id, cand)
		}
		if err := g.importTo(cand, hr, newEpoch); err != nil {
			lastErr = err
			g.logf("cluster: migrate %s: import on %s failed: %v", id, cand, err)
			continue
		}
		winner = cand
		break
	}
	if winner == "" {
		return fmt.Errorf("cluster: migrate %s: no node could import the stream: %w", id, lastErr)
	}
	g.mu.Lock()
	p.node = winner
	p.epoch = newEpoch
	g.mu.Unlock()
	if g.mMigrations != nil {
		g.mMigrations.Inc()
	}
	if winner != target && g.mFallbacks != nil {
		g.mFallbacks.Inc()
	}
	g.logf("cluster: migrated stream %s %s→%s at epoch %d", id, source, winner, newEpoch)
	return nil
}

func (g *Gateway) handoff(node, id string, epoch uint64) (*HandoffResponse, error) {
	req, err := http.NewRequest(http.MethodPost, g.backends[node].URL+"/cluster/handoff/"+id, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	resp, err := g.client(node).Do(req)
	if err != nil {
		if c := g.counter(MetricProxyErrors, "Proxied requests that failed in transport.", node); c != nil {
			c.Inc()
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, err
	}
	return &hr, nil
}

func (g *Gateway) importTo(node string, hr *HandoffResponse, epoch uint64) error {
	body, err := json.Marshal(ImportRequest{Learned: hr.Learned, Epoch: epoch, Envelope: hr.Envelope})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, g.backends[node].URL+"/cluster/import", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client(node).Do(req)
	if err != nil {
		if c := g.counter(MetricProxyErrors, "Proxied requests that failed in transport.", node); c != nil {
			c.Inc()
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// MetricsResponse is the body of the gateway's GET /cluster/metrics:
// every node's snapshot plus the cluster-wide aggregation.
type MetricsResponse struct {
	// Cluster sums every node's series: counters and gauges add,
	// histograms merge bucket-wise.
	Cluster obs.Snapshot `json:"cluster"`
	// Nodes holds each node's own snapshot ("" error = reachable).
	Nodes map[string]NodeMetrics `json:"nodes"`
}

// NodeMetrics is one node's entry in MetricsResponse.
type NodeMetrics struct {
	Error   string       `json:"error,omitempty"`
	Metrics obs.Snapshot `json:"metrics,omitempty"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{Cluster: obs.Snapshot{}, Nodes: map[string]NodeMetrics{}}
	for _, node := range g.ring.Nodes() {
		snap, err := g.fetchMetrics(r, node)
		if err != nil {
			resp.Nodes[node] = NodeMetrics{Error: err.Error()}
			continue
		}
		resp.Nodes[node] = NodeMetrics{Metrics: snap}
		mergeSnapshot(resp.Cluster, snap)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) fetchMetrics(r *http.Request, node string) (obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, g.backends[node].URL+"/cluster/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client(node).Do(req)
	if err != nil {
		if c := g.counter(MetricProxyErrors, "Proxied requests that failed in transport.", node); c != nil {
			c.Inc()
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// mergeSnapshot folds src into dst: counters and gauges sum,
// histograms merge count/sum and bucket-wise (by upper bound). Series
// that change type between nodes keep the first-seen value.
func mergeSnapshot(dst, src obs.Snapshot) {
	for name, m := range src {
		cur, ok := dst[name]
		if !ok {
			dst[name] = copyMetric(m)
			continue
		}
		if cur.Type != m.Type {
			continue
		}
		cur.Value += m.Value
		cur.Float += m.Float
		cur.Count += m.Count
		cur.Sum += m.Sum
		cur.Buckets = mergeBuckets(cur.Buckets, m.Buckets)
		dst[name] = cur
	}
}

func copyMetric(m obs.Metric) obs.Metric {
	c := m
	c.Buckets = append([]obs.Bucket(nil), m.Buckets...)
	for i := range c.Buckets {
		c.Buckets[i].Exemplar = nil // exemplars are per-node, not additive
	}
	return c
}

func mergeBuckets(a, b []obs.Bucket) []obs.Bucket {
	byLE := map[float64]int64{}
	for _, bk := range a {
		byLE[bk.LE] += bk.Count
	}
	for _, bk := range b {
		byLE[bk.LE] += bk.Count
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	out := make([]obs.Bucket, 0, len(les))
	for _, le := range les {
		out = append(out, obs.Bucket{LE: le, Count: byLE[le]})
	}
	return out
}
