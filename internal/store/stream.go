package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Stream is the append handle of one stream's WAL+base pair. The
// stream's owner goroutine calls Append/Compact/Load/Close; Stats is
// safe to read from any goroutine (the debug endpoint does).
type Stream struct {
	st    *Store
	id    string
	dir   string
	epoch uint64
	meta  []byte

	basePeriods uint64
	compactedAt int64
	f           *os.File
	buf         []byte // reusable frame-encode buffer

	walRecords int
	walBytes   int64
	lastSeq    uint64
	lastGen    uint32
	dirty      bool

	// statsA mirrors the mutable counters for lock-free Stats reads.
	statsA struct {
		walRecords  atomic.Int64
		walBytes    atomic.Int64
		lastSeq     atomic.Uint64
		compactedAt atomic.Int64
	}
	statsInit atomic.Bool
}

// ID returns the stream identifier.
func (s *Stream) ID() string { return s.id }

// LastSeq returns the sequence number of the newest durable record
// (or the base's period count when the WAL is empty).
func (s *Stream) LastSeq() uint64 { return s.lastSeq }

// BasePeriods returns the learned-period count folded into the base.
func (s *Stream) BasePeriods() uint64 { return s.basePeriods }

// BasePath returns the path of the current epoch's base snapshot.
// Owner goroutine only (Compact moves it).
func (s *Stream) BasePath() string { return filepath.Join(s.dir, baseName(s.epoch)) }

func (s *Stream) publishStats() {
	s.statsA.walRecords.Store(int64(s.walRecords))
	s.statsA.walBytes.Store(s.walBytes)
	s.statsA.lastSeq.Store(s.lastSeq)
	s.statsA.compactedAt.Store(s.compactedAt)
	s.statsInit.Store(true)
}

// Stats returns a point-in-time view of the stream's durable state;
// safe from any goroutine.
func (s *Stream) Stats() StreamMeta {
	if !s.statsInit.Load() {
		s.publishStats()
	}
	return StreamMeta{
		ID:                s.id,
		Meta:              s.meta,
		BasePeriods:       s.basePeriods,
		WALRecords:        int(s.statsA.walRecords.Load()),
		WALBytes:          s.statsA.walBytes.Load(),
		LastSeq:           s.statsA.lastSeq.Load(),
		LastGeneration:    s.lastGen,
		CompactedAtUnixNS: s.statsA.compactedAt.Load(),
	}
}

// Append frames rec, appends it to the WAL and fsyncs: when Append
// returns nil the record is durable. Sequence numbers must be
// strictly increasing.
func (s *Stream) Append(rec Record) error {
	if rec.Seq <= s.lastSeq {
		return fmt.Errorf("store: stream %s: append seq %d not after %d", s.id, rec.Seq, s.lastSeq)
	}
	buf, err := appendFrame(s.buf[:0], rec)
	if err != nil {
		return err
	}
	s.buf = buf[:0]
	if s.st.crash != nil {
		if err := s.st.crash("append"); err != nil {
			// Simulated torn write: half the frame reaches the disk.
			s.f.Write(buf[:len(buf)/2])
			s.f.Sync()
			return err
		}
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: stream %s: %w", s.id, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: stream %s: %w", s.id, err)
	}
	s.walRecords++
	s.walBytes += int64(len(buf))
	s.lastSeq = rec.Seq
	s.lastGen = rec.Generation
	if !s.dirty {
		s.dirty = true
		if s.st.gDirty != nil {
			s.st.gDirty.Add(1)
		}
	}
	if s.st.mRecords != nil {
		s.st.mRecords.Inc()
		s.st.mBytes.Add(int64(len(buf)))
	}
	s.publishStats()
	return nil
}

// ShouldCompact reports whether the WAL has crossed the store's
// compaction thresholds, jittered per stream (see JitteredThreshold).
func (s *Stream) ShouldCompact() bool {
	if s.walRecords == 0 {
		return false
	}
	opt := &s.st.opt
	if opt.CompactRecords > 0 && s.walRecords >= JitteredThreshold(s.id, opt.CompactRecords, opt.JitterFrac) {
		return true
	}
	if opt.CompactBytes > 0 {
		jb := int64(JitteredThreshold(s.id, int(opt.CompactBytes), opt.JitterFrac))
		if s.walBytes >= jb {
			return true
		}
	}
	return false
}

// Load reads the stream's durable state for hydration: the base
// snapshot (nil for an empty base) and the intact WAL records with
// Seq beyond the base. It does not move the append position.
func (s *Stream) Load() (base []byte, recs []Record, err error) {
	base, err = os.ReadFile(filepath.Join(s.dir, baseName(s.epoch)))
	if err != nil {
		return nil, nil, &CorruptError{Stream: s.id, Path: filepath.Join(s.dir, baseName(s.epoch)), Reason: "unreadable base snapshot", Err: err}
	}
	if len(base) == 0 {
		base = nil
	}
	b, err := os.ReadFile(filepath.Join(s.dir, walName(s.epoch)))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: stream %s: %w", s.id, err)
	}
	all, _ := decodeFrames(b)
	// Records at or below the base's period count are stale debris
	// (possible only after operator surgery — compaction opens a fresh
	// WAL — but cheap to filter and fatal to replay twice).
	keep := all[:0]
	for _, r := range all {
		if r.Seq > s.basePeriods {
			keep = append(keep, r)
		}
	}
	return base, copyRecords(keep), nil
}

// Compact folds the WAL into a new base snapshot under the next
// epoch: write base-<E+1>, commit by renaming the new manifest, open
// a fresh empty WAL, then sweep the old pair. A crash anywhere leaves
// the manifest pointing at a consistent pair. basePeriods is the
// learned-period count the snapshot covers — normally LastSeq at the
// moment the caller serialized its in-memory state.
func (s *Stream) Compact(base []byte, basePeriods uint64, meta []byte, now time.Time) error {
	next := s.epoch + 1
	dir := s.dir
	if s.st.crash != nil {
		if err := s.st.crash("compact.start"); err != nil {
			return err
		}
	}
	// The base is written under its final (epoch-unique) name before
	// the manifest commit; no temp file needed, a crash leaves an
	// unreferenced file the next open sweeps.
	if err := writeFileSync(filepath.Join(dir, baseName(next)), base); err != nil {
		return err
	}
	if s.st.crash != nil {
		if err := s.st.crash("compact.base-written"); err != nil {
			return err
		}
	}
	m := manifest{
		Version:           manifestVersion,
		Epoch:             next,
		BasePeriods:       basePeriods,
		Meta:              meta,
		CompactedAtUnixNS: now.UnixNano(),
	}
	if err := s.st.commitManifest(dir, m); err != nil {
		return err
	}
	// Committed: everything below is cleanup on the new epoch.
	f, err := os.OpenFile(filepath.Join(dir, walName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: stream %s: %w", s.id, err)
	}
	old := s.f
	s.f = f
	old.Close()
	os.Remove(filepath.Join(dir, baseName(s.epoch)))
	os.Remove(filepath.Join(dir, walName(s.epoch)))
	s.epoch = next
	s.meta = meta
	s.basePeriods = basePeriods
	s.compactedAt = m.CompactedAtUnixNS
	s.walRecords = 0
	s.walBytes = 0
	s.lastSeq = basePeriods
	if s.dirty {
		s.dirty = false
		if s.st.gDirty != nil {
			s.st.gDirty.Add(-1)
		}
	}
	if s.st.mCompactions != nil {
		s.st.mCompactions.Inc()
	}
	s.publishStats()
	return nil
}

// SetMeta rewrites the manifest with new serving-layer metadata,
// keeping the current epoch and base.
func (s *Stream) SetMeta(meta []byte) error {
	m := manifest{
		Version:           manifestVersion,
		Epoch:             s.epoch,
		BasePeriods:       s.basePeriods,
		Meta:              meta,
		CompactedAtUnixNS: s.compactedAt,
	}
	if err := s.st.commitManifest(s.dir, m); err != nil {
		return err
	}
	s.meta = meta
	return nil
}

// Close releases the WAL handle. Appended records are already
// durable; Close is not a flush point.
func (s *Stream) Close() error {
	if s.dirty {
		s.dirty = false
		if s.st.gDirty != nil {
			s.st.gDirty.Add(-1)
		}
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
