package hypothesis

import (
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

func ts3() *depfunc.TaskSet { return depfunc.MustTaskSet("a", "b", "c") }

func TestBottom(t *testing.T) {
	h := Bottom(ts3())
	if h.Weight() != 0 {
		t.Errorf("Weight = %d, want 0", h.Weight())
	}
	if h.AssumptionCount() != 0 {
		t.Errorf("assumptions = %d", h.AssumptionCount())
	}
	if !h.D.Equal(depfunc.Bottom(ts3())) {
		t.Error("D is not bottom")
	}
}

func TestAssumeStampsBothSides(t *testing.T) {
	h := Bottom(ts3())
	c := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	if c == nil {
		t.Fatal("Assume returned nil")
	}
	if c.D.At(0, 1) != lattice.Fwd || c.D.At(1, 0) != lattice.Bwd {
		t.Errorf("entries = %v, %v", c.D.At(0, 1), c.D.At(1, 0))
	}
	// Parent unchanged.
	if h.D.At(0, 1) != lattice.Par {
		t.Error("Assume mutated parent")
	}
	if !c.Assumed(depfunc.Pair{S: 0, R: 1}) {
		t.Error("assumption not recorded")
	}
	if c.Weight() != 2 {
		t.Errorf("Weight = %d, want 2", c.Weight())
	}
}

func TestAssumeConditionalStamps(t *testing.T) {
	h := Bottom(ts3())
	c := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.FwdMaybe, lattice.Bwd, StepCtx{})
	if c.D.At(0, 1) != lattice.FwdMaybe || c.D.At(1, 0) != lattice.Bwd {
		t.Errorf("entries = %v, %v", c.D.At(0, 1), c.D.At(1, 0))
	}
	if c.Weight() != 5 {
		t.Errorf("Weight = %d, want 5", c.Weight())
	}
}

func TestAssumeDuplicatePairRejected(t *testing.T) {
	h := Bottom(ts3())
	c := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	if c.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{}) != nil {
		t.Error("duplicate pair accepted")
	}
	// The reverse pair is a different ordered pair and is allowed.
	if c.Assume(depfunc.Pair{S: 1, R: 0}, lattice.Fwd, lattice.Bwd, StepCtx{}) == nil {
		t.Error("reverse pair rejected")
	}
}

func TestAssumeJoinSemantics(t *testing.T) {
	h := Bottom(ts3())
	c1 := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	c1.ClearAssumptions()
	// Re-assuming in a "new period" with the reverse direction joins
	// to <-> on both sides.
	c2 := c1.Assume(depfunc.Pair{S: 1, R: 0}, lattice.Fwd, lattice.Bwd, StepCtx{})
	if c2.D.At(1, 0) != lattice.Bi || c2.D.At(0, 1) != lattice.Bi {
		t.Errorf("entries = %v, %v, want <-> both", c2.D.At(1, 0), c2.D.At(0, 1))
	}
	if c2.Weight() != c2.D.Weight() {
		t.Errorf("cached weight %d != recomputed %d", c2.Weight(), c2.D.Weight())
	}
}

func TestClearAssumptions(t *testing.T) {
	h := Bottom(ts3()).Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	h.ClearAssumptions()
	if h.AssumptionCount() != 0 {
		t.Error("assumptions survived ClearAssumptions")
	}
	if h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{}) == nil {
		t.Error("pair still blocked after ClearAssumptions")
	}
}

func TestRelaxUpdatesWeight(t *testing.T) {
	h := Bottom(ts3()).Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	// A period where a executed but b did not.
	n := h.Relax(func(i int) bool { return i == 0 || i == 2 }, StepCtx{})
	if n != 1 {
		t.Fatalf("relaxed %d, want 1", n)
	}
	if h.D.At(0, 1) != lattice.FwdMaybe {
		t.Errorf("entry = %v, want ->?", h.D.At(0, 1))
	}
	if h.Weight() != h.D.Weight() {
		t.Errorf("cached weight %d != recomputed %d", h.Weight(), h.D.Weight())
	}
}

func TestMergeJoinsAndIntersects(t *testing.T) {
	base := Bottom(ts3())
	h1 := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	shared := depfunc.Pair{S: 0, R: 2}
	h1 = h1.Assume(shared, lattice.Fwd, lattice.Bwd, StepCtx{})
	h2 := base.Assume(depfunc.Pair{S: 1, R: 2}, lattice.Fwd, lattice.Bwd, StepCtx{})
	h2 = h2.Assume(shared, lattice.Fwd, lattice.Bwd, StepCtx{})

	m := h1.Merge(h2, StepCtx{})
	if m.D.At(0, 1) != lattice.Fwd || m.D.At(1, 2) != lattice.Fwd || m.D.At(0, 2) != lattice.Fwd {
		t.Errorf("merged D wrong:\n%s", m.D.Table())
	}
	if !m.Assumed(shared) {
		t.Error("shared assumption lost in merge")
	}
	if m.Assumed(depfunc.Pair{S: 0, R: 1}) || m.Assumed(depfunc.Pair{S: 1, R: 2}) {
		t.Error("non-shared assumption survived intersection")
	}
	if m.Weight() != m.D.Weight() {
		t.Error("merged weight not recomputed")
	}
	// Operands unchanged.
	if h1.D.At(1, 2) != lattice.Par {
		t.Error("Merge mutated operand")
	}
}

func TestKeyIncludesAssumptions(t *testing.T) {
	base := Bottom(ts3())
	// Same D, different assumptions: (a,b) assumed with no-op stamp.
	h := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	h.ClearAssumptions()
	c1 := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	c2 := h.Clone()
	if c1.Key() == c2.Key() {
		t.Error("keys equal despite different assumptions")
	}
	if h.Key() != c2.Key() {
		t.Error("clone key differs")
	}
}

func TestKeyCanonicalOrder(t *testing.T) {
	base := Bottom(ts3())
	p1, p2 := depfunc.Pair{S: 0, R: 1}, depfunc.Pair{S: 1, R: 2}
	a := base.Assume(p1, lattice.Fwd, lattice.Bwd, StepCtx{}).Assume(p2, lattice.Fwd, lattice.Bwd, StepCtx{})
	b := base.Assume(p2, lattice.Fwd, lattice.Bwd, StepCtx{}).Assume(p1, lattice.Fwd, lattice.Bwd, StepCtx{})
	if a.Key() != b.Key() {
		t.Error("assumption order leaked into key")
	}
}

func TestCloneIndependence(t *testing.T) {
	h := Bottom(ts3()).Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{})
	cp := h.Clone()
	cp.ClearAssumptions()
	if h.AssumptionCount() != 1 {
		t.Error("Clone shares assumption set")
	}
	cp2 := h.Clone()
	cp2.D.Set(1, 2, lattice.BiMaybe)
	if h.D.At(1, 2) != lattice.Par {
		t.Error("Clone shares matrix")
	}
}

func TestFromDepFunc(t *testing.T) {
	d := depfunc.Bottom(ts3())
	d.Set(0, 1, lattice.FwdMaybe)
	h := FromDepFunc(d)
	if h.Weight() != d.Weight() {
		t.Errorf("weight = %d, want %d", h.Weight(), d.Weight())
	}
	d.Set(0, 2, lattice.BiMaybe)
	if h.D.At(0, 2) != lattice.Par {
		t.Error("FromDepFunc did not clone")
	}
}

func TestProvenanceRecording(t *testing.T) {
	base := Bottom(ts3())
	if base.ProvenanceEnabled() || base.Provenance() != nil {
		t.Fatal("recording on by default")
	}
	base.EnableProvenance()
	ctx := StepCtx{Period: 1, Msg: 0, MsgID: "m1"}
	c := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, ctx)
	steps := c.Provenance()
	if len(steps) != 2 {
		t.Fatalf("steps = %+v, want forward+backward", steps)
	}
	want := Step{Period: 1, Msg: 0, MsgID: "m1", S: 0, R: 1, I: 0, J: 1,
		Old: lattice.Par, New: lattice.Fwd, Action: "assume"}
	if steps[0] != want {
		t.Errorf("first step = %+v, want %+v", steps[0], want)
	}
	if steps[1].I != 1 || steps[1].J != 0 || steps[1].New != lattice.Bwd {
		t.Errorf("second step = %+v", steps[1])
	}
	// The parent's chain is untouched (persistent sharing).
	if base.Provenance() != nil {
		t.Error("child recording mutated the parent chain")
	}
	// A no-op join (same assumption again via another path) records
	// nothing new.
	c2 := c.Assume(depfunc.Pair{S: 1, R: 0}, lattice.Bwd, lattice.Fwd, StepCtx{Period: 1, Msg: 1, MsgID: "m2"})
	if got := len(c2.Provenance()); got != 2 {
		t.Errorf("no-op join appended steps: chain length %d, want 2", got)
	}
	// Clone shares the chain.
	if got := c.Clone().Provenance(); !reflect.DeepEqual(got, steps) {
		t.Errorf("clone chain = %+v", got)
	}
}

func TestMergeProvenance(t *testing.T) {
	base := Bottom(ts3())
	base.EnableProvenance()
	ctx := StepCtx{Period: 0, Msg: 0, MsgID: "m1"}
	a := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, ctx)
	b := base.Assume(depfunc.Pair{S: 1, R: 2}, lattice.Fwd, lattice.Bwd, ctx)
	m := a.Merge(b, StepCtx{Period: 0, Msg: 1})
	steps := m.Provenance()
	// a's two assume steps survive; the join raised (1,2) and (2,1)
	// from b, recorded as merge steps.
	if len(steps) != 4 {
		t.Fatalf("merged chain = %+v, want 4 steps", steps)
	}
	var merges int
	for _, s := range steps {
		if s.Action == "merge" {
			merges++
			if s.Period != 0 || s.Msg != 1 || s.S != -1 || s.R != -1 {
				t.Errorf("merge step context = %+v", s)
			}
			if !(s.I == 1 && s.J == 2 && s.New == lattice.Fwd) &&
				!(s.I == 2 && s.J == 1 && s.New == lattice.Bwd) {
				t.Errorf("merge step entry = %+v", s)
			}
		}
	}
	if merges != 2 {
		t.Errorf("merge steps = %d, want 2", merges)
	}
}

func TestRelaxProvenance(t *testing.T) {
	base := Bottom(ts3())
	base.EnableProvenance()
	h := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd, StepCtx{Period: 0, Msg: 0, MsgID: "m1"})
	// Period executes t1 (index 0) and t3 (index 2) but not t2: the
	// unconditional -> from t1 to t2 is violated and must relax.
	n := h.Relax(func(i int) bool { return i == 0 || i == 2 }, StepCtx{Period: 0})
	if n == 0 {
		t.Fatal("nothing relaxed; test premise broken")
	}
	steps := h.Provenance()
	var relaxes int
	for _, s := range steps {
		if s.Action == "relax" {
			relaxes++
			if s.Msg != -1 || s.S != -1 || s.MsgID != "" {
				t.Errorf("relax step context = %+v", s)
			}
			if s.I == 0 && s.J == 1 && (s.Old != lattice.Fwd || s.New != lattice.FwdMaybe) {
				t.Errorf("relax transition = %+v", s)
			}
		}
	}
	if relaxes != n {
		t.Errorf("recorded %d relax steps, Relax reported %d", relaxes, n)
	}
}
