package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// CorpusVersion is the corpus layout version this package reads and
// writes. Bump it (and document the migration in TESTING.md) whenever
// the entry format or the meaning of an existing field changes;
// adding optional manifest fields is backward compatible and does not
// bump the version.
const CorpusVersion = "1"

// Manifest is the JSON descriptor of one corpus entry
// (<entry>/entry.json).
type Manifest struct {
	// Name is the entry's directory name.
	Name string `json:"name"`
	// Description says what the entry exercises.
	Description string `json:"description"`
	// Source records provenance: a pinned constructor
	// ("trace.PaperFigure2") or a deterministic generator spec
	// ("sim:figure1 seed=3 periods=6"), so `bbconform -gen` can
	// rewrite the corpus bit-identically.
	Source string `json:"source"`
	// Bounds lists the heuristic bounds the bound-monotonicity oracle
	// runs (0 entries are ignored; the exact run is implied).
	Bounds []int `json:"bounds"`
	// Exact enables the oracles that need the exact algorithm (thm2,
	// bound monotonicity, period permutation). Entries whose exact run
	// is intractable set it false.
	Exact bool `json:"exact"`
	// Thm2 enables the Theorem-2 soundness oracle; requires Exact and
	// a truth.txt ground-truth table.
	Thm2 bool `json:"thm2"`
	// SenderWindow/ReceiverWindow/MaxSenders/MaxReceivers configure
	// the candidate policy for this entry (all zero = the paper's
	// purely causal rule).
	SenderWindow   int64 `json:"sender_window,omitempty"`
	ReceiverWindow int64 `json:"receiver_window,omitempty"`
	MaxSenders     int   `json:"max_senders,omitempty"`
	MaxReceivers   int   `json:"max_receivers,omitempty"`
	// DriftFlipPeriod marks an entry whose dependency structure changes
	// mid-trace: periods 1..DriftFlipPeriod (1-based) are the
	// stationary regime and the change takes effect at period
	// DriftFlipPeriod+1. Zero means the trace is stationary, and the
	// drift oracle then asserts zero alarms instead.
	DriftFlipPeriod int `json:"drift_flip_period,omitempty"`
	// DriftWindow bounds the drift oracle's detection lag in periods
	// (0 selects DefaultDriftWindow). Only meaningful with a nonzero
	// DriftFlipPeriod.
	DriftWindow int `json:"drift_window,omitempty"`
}

// Policy returns the entry's candidate policy.
func (m *Manifest) Policy() depfunc.CandidatePolicy {
	return depfunc.CandidatePolicy{
		SenderWindow:   m.SenderWindow,
		ReceiverWindow: m.ReceiverWindow,
		MaxSenders:     m.MaxSenders,
		MaxReceivers:   m.MaxReceivers,
	}
}

// Entry is one loaded corpus entry: its manifest, trace and optional
// ground truth.
type Entry struct {
	Manifest
	// Trace is the entry's execution trace (trace.txt).
	Trace *trace.Trace
	// Truth is the true dependency function (truth.txt), nil when the
	// entry carries none.
	Truth *depfunc.DepFunc
}

// Corpus is a loaded golden corpus.
type Corpus struct {
	Version string
	Entries []*Entry
}

// LoadCorpus reads a corpus directory: a VERSION file plus one
// subdirectory per entry containing entry.json, trace.txt and
// optionally truth.txt. Entries load in lexical name order for
// deterministic reports.
func LoadCorpus(dir string) (*Corpus, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "VERSION"))
	if err != nil {
		return nil, fmt.Errorf("conformance: corpus %s: %w", dir, err)
	}
	version := strings.TrimSpace(string(raw))
	if version != CorpusVersion {
		return nil, fmt.Errorf("conformance: corpus %s has version %q, this binary reads %q (see TESTING.md for migration)",
			dir, version, CorpusVersion)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("conformance: corpus %s: %w", dir, err)
	}
	c := &Corpus{Version: version}
	var names []string
	for _, de := range des {
		if de.IsDir() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		e, err := loadEntry(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c.Entries = append(c.Entries, e)
	}
	if len(c.Entries) == 0 {
		return nil, fmt.Errorf("conformance: corpus %s holds no entries", dir)
	}
	return c, nil
}

func loadEntry(dir string) (*Entry, error) {
	e := &Entry{}
	raw, err := os.ReadFile(filepath.Join(dir, "entry.json"))
	if err != nil {
		return nil, fmt.Errorf("conformance: entry %s: %w", dir, err)
	}
	if err := json.Unmarshal(raw, &e.Manifest); err != nil {
		return nil, fmt.Errorf("conformance: entry %s: manifest: %w", dir, err)
	}
	if e.Name != filepath.Base(dir) {
		return nil, fmt.Errorf("conformance: entry %s: manifest name %q does not match directory", dir, e.Name)
	}
	f, err := os.Open(filepath.Join(dir, "trace.txt"))
	if err != nil {
		return nil, fmt.Errorf("conformance: entry %s: %w", dir, err)
	}
	e.Trace, err = trace.Read(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("conformance: entry %s: trace: %w", dir, err)
	}
	if truthRaw, err := os.ReadFile(filepath.Join(dir, "truth.txt")); err == nil {
		e.Truth, err = depfunc.ParseTable(string(truthRaw))
		if err != nil {
			return nil, fmt.Errorf("conformance: entry %s: truth: %w", dir, err)
		}
		if !e.Truth.TaskSet().Equal(mustTaskSet(e.Trace.Tasks)) {
			return nil, fmt.Errorf("conformance: entry %s: truth task set %v does not match trace task set %v",
				dir, e.Truth.TaskSet().Names(), e.Trace.Tasks)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("conformance: entry %s: %w", dir, err)
	}
	if e.Thm2 && (e.Truth == nil || !e.Exact) {
		return nil, fmt.Errorf("conformance: entry %s: thm2 requires exact mode and a truth.txt", dir)
	}
	if e.DriftFlipPeriod < 0 || e.DriftFlipPeriod >= len(e.Trace.Periods) {
		return nil, fmt.Errorf("conformance: entry %s: drift_flip_period %d outside the trace's %d periods",
			dir, e.DriftFlipPeriod, len(e.Trace.Periods))
	}
	if e.DriftWindow != 0 && e.DriftFlipPeriod == 0 {
		return nil, fmt.Errorf("conformance: entry %s: drift_window without a drift_flip_period", dir)
	}
	return e, nil
}

func mustTaskSet(names []string) *depfunc.TaskSet {
	ts, err := depfunc.NewTaskSet(names)
	if err != nil {
		panic(err)
	}
	return ts
}

// WriteEntry persists one entry under dir/<name>/ in the on-disk
// layout LoadCorpus reads.
func WriteEntry(dir string, e *Entry) error {
	edir := filepath.Join(dir, e.Name)
	if err := os.MkdirAll(edir, 0o755); err != nil {
		return err
	}
	manifest, err := json.MarshalIndent(&e.Manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(edir, "entry.json"), append(manifest, '\n'), 0o644); err != nil {
		return err
	}
	var sb strings.Builder
	if err := trace.Write(&sb, e.Trace); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(edir, "trace.txt"), []byte(sb.String()), 0o644); err != nil {
		return err
	}
	if e.Truth != nil {
		if err := os.WriteFile(filepath.Join(edir, "truth.txt"), []byte(e.Truth.Table()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// WriteCorpus persists a whole corpus, VERSION file included, wiping
// nothing: existing entry directories not in c are left alone so
// hand-curated entries survive regeneration.
func WriteCorpus(dir string, c *Corpus) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte(c.Version+"\n"), 0o644); err != nil {
		return err
	}
	for _, e := range c.Entries {
		if err := WriteEntry(dir, e); err != nil {
			return err
		}
	}
	return nil
}
