package verify

import (
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
)

// learnedExample is a small learned-style dependency function:
// a is a disjunction over b and c; d is a conjunction fed by b or c;
// a always determines d.
var learnedExample = depfunc.MustParseTable(`
      a     b     c     d
a     ||    ->?   ->?   ->
b     <-    ||    ||    ->
c     <-    ||    ||    ->
d     <-    <-?   <-?   ||
`)

func TestDisjunctionNodes(t *testing.T) {
	got := DisjunctionNodes(learnedExample)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("DisjunctionNodes = %v, want [a]", got)
	}
}

func TestConjunctionNodes(t *testing.T) {
	got := ConjunctionNodes(learnedExample)
	if len(got) != 1 || got[0] != "d" {
		t.Errorf("ConjunctionNodes = %v, want [d]", got)
	}
}

func TestConjunctionRequiresConditional(t *testing.T) {
	// Two firm <- dependencies without any <-? is a chain join, not a
	// conjunction choice.
	d := depfunc.MustParseTable(`
      a     b     c
a     ||    ||    ->
b     ||    ||    ->
c     <-    <-    ||
`)
	if got := ConjunctionNodes(d); len(got) != 0 {
		t.Errorf("ConjunctionNodes = %v, want none", got)
	}
}

func TestMustExecuteAndDetermines(t *testing.T) {
	if !MustExecute(learnedExample, "a", "d") {
		t.Error("a must lead to d")
	}
	if !Determines(learnedExample, "a", "d") {
		t.Error("a determines d")
	}
	if Determines(learnedExample, "a", "b") {
		t.Error("a only conditionally determines b")
	}
	if !DependsOn(learnedExample, "d", "a") {
		t.Error("d depends on a")
	}
	if MustExecute(learnedExample, "zz", "a") || Determines(learnedExample, "a", "zz") ||
		DependsOn(learnedExample, "zz", "zz") {
		t.Error("unknown tasks should be false")
	}
}

func TestReachable(t *testing.T) {
	got := Reachable(learnedExample, "a")
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Reachable(a) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reachable(a) = %v, want %v", got, want)
		}
	}
	if got := Reachable(learnedExample, "d"); len(got) != 1 || got[0] != "d" {
		t.Errorf("Reachable(d) = %v, want [d]", got)
	}
	if Reachable(learnedExample, "zz") != nil {
		t.Error("unknown start should return nil")
	}
}

func TestMustClosure(t *testing.T) {
	// a -> d directly; also test chaining: x -> y -> z.
	d := depfunc.MustParseTable(`
      x     y     z
x     ||    ->    ||
y     <-    ||    ->
z     ||    <-    ||
`)
	cl := MustClosure(d)
	if !cl[[2]string{"x", "y"}] || !cl[[2]string{"y", "z"}] {
		t.Error("direct edges missing from closure")
	}
	if !cl[[2]string{"x", "z"}] {
		t.Error("transitive x -> z missing")
	}
	if cl[[2]string{"z", "x"}] {
		t.Error("spurious backward pair")
	}
}

func TestAnalyzeCounts(t *testing.T) {
	r := Analyze(learnedExample)
	if r.Tasks != 4 || r.TotalPairs != 12 {
		t.Fatalf("Tasks=%d TotalPairs=%d", r.Tasks, r.TotalPairs)
	}
	// Entries: ->? x2, -> x1 ... row a: ->? ->? ->; row b: <- || ->;
	// row c: <- || ->; row d: <- <-? <-?.
	if r.Firm != 6 {
		t.Errorf("Firm = %d, want 6", r.Firm)
	}
	if r.Conditional != 4 {
		t.Errorf("Conditional = %d, want 4", r.Conditional)
	}
	if r.Independent != 2 {
		t.Errorf("Independent = %d, want 2", r.Independent)
	}
	if r.Unknown != 0 {
		t.Errorf("Unknown = %d, want 0", r.Unknown)
	}
	if r.OrderingKnown <= 0.8 || r.OrderingKnown > 0.84 {
		t.Errorf("OrderingKnown = %f", r.OrderingKnown)
	}
	if r.InterleavingReduction != 0.5 {
		t.Errorf("InterleavingReduction = %f", r.InterleavingReduction)
	}
	if len(r.Disjunctions) != 1 || len(r.Conjunctions) != 1 {
		t.Errorf("classification: %v %v", r.Disjunctions, r.Conjunctions)
	}
}

func TestAnalyzeEmptyish(t *testing.T) {
	ts := depfunc.MustTaskSet("a")
	r := Analyze(depfunc.Bottom(ts))
	if r.TotalPairs != 0 || r.OrderingKnown != 0 {
		t.Errorf("single-task report: %+v", r)
	}
}

func TestCompareWithDesign(t *testing.T) {
	must := map[[2]string]bool{
		{"a", "d"}: true, // learned (TP)
		{"d", "a"}: true, // learned as <- (TP)
		{"b", "d"}: true, // learned (TP)
		{"a", "x"}: true, // not in task set; ignored by iteration
		{"b", "a"}: true, // learned <- at (b,a) (TP)
		{"c", "a"}: true, // TP
		{"c", "d"}: true, // TP
		{"d", "b"}: true, // NOT learned firmly (<-?): FN
	}
	c := CompareWithDesign(learnedExample, must)
	if c.TruePositives != 6 {
		t.Errorf("TP = %d, want 6", c.TruePositives)
	}
	if c.FalseNegatives != 1 {
		t.Errorf("FN = %d, want 1", c.FalseNegatives)
	}
	if c.FalsePositives != 0 {
		t.Errorf("FP = %d, want 0", c.FalsePositives)
	}
	if c.Precision != 1.0 {
		t.Errorf("Precision = %f", c.Precision)
	}
	if c.Recall <= 0.85 || c.Recall >= 0.86 {
		t.Errorf("Recall = %f", c.Recall)
	}
}

func TestCompareWithDesignEmpty(t *testing.T) {
	ts := depfunc.MustTaskSet("a", "b")
	c := CompareWithDesign(depfunc.Bottom(ts), nil)
	if c.Precision != 0 || c.Recall != 0 || c.TruePositives != 0 {
		t.Errorf("empty comparison: %+v", c)
	}
}

func TestReportString(t *testing.T) {
	out := Analyze(learnedExample).String()
	for _, want := range []string{
		"tasks:                 4",
		"disjunction nodes:     a",
		"conjunction nodes:     d",
		"firm dependencies:     6",
		"ordering known:        83.3%",
		"interleavings removed: 50.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
