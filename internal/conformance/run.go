package conformance

import (
	"errors"
	"fmt"
	"time"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// ReportSchemaVersion versions the JSON conformance report emitted by
// cmd/bbconform.
const ReportSchemaVersion = 1

// Oracle statuses.
const (
	StatusPass = "pass"
	StatusFail = "fail"
	StatusSkip = "skip"
)

// OracleResult is the outcome of one oracle on one input.
type OracleResult struct {
	Oracle     string      `json:"oracle"`
	Status     string      `json:"status"`
	Detail     string      `json:"detail,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
	ElapsedMS  int64       `json:"elapsed_ms"`
}

// EntryReport groups the oracle results of one corpus entry.
type EntryReport struct {
	Name    string         `json:"name"`
	Results []OracleResult `json:"results"`
}

// Report is the full conformance report.
type Report struct {
	SchemaVersion int            `json:"schema_version"`
	CorpusVersion string         `json:"corpus_version"`
	Global        []OracleResult `json:"global"`
	Entries       []EntryReport  `json:"entries"`
	Oracles       int            `json:"oracles"`
	Passed        int            `json:"passed"`
	Skipped       int            `json:"skipped"`
	Failed        int            `json:"failed"`
	Violations    int            `json:"violations"`
}

// Ok reports whether every oracle passed or was skipped.
func (r *Report) Ok() bool { return r.Failed == 0 }

// Run executes the corpus-independent oracles once and every
// applicable per-entry oracle over the corpus, reporting progress as
// stage-"conformance" pipeline events on o (nil disables emission).
func Run(c *Corpus, o obs.Observer) *Report {
	r := &Report{SchemaVersion: ReportSchemaVersion, CorpusVersion: c.Version}
	r.Global = append(r.Global,
		record(r, o, "corpus", "lattice", func() ([]Violation, error) { return LatticeLaws(), nil }),
		record(r, o, "corpus", "fingerprint", func() ([]Violation, error) { return FingerprintKeyAgreement(), nil }),
	)
	for _, e := range c.Entries {
		er := EntryReport{Name: e.Name}
		pol := e.Policy()
		if e.Thm2 {
			er.Results = append(er.Results, record(r, o, e.Name, "thm2", func() ([]Violation, error) {
				return Thm2Soundness(e.Trace, e.Truth, pol, MaxExactHypotheses)
			}))
		}
		if e.Exact {
			er.Results = append(er.Results, record(r, o, e.Name, "bound", func() ([]Violation, error) {
				return BoundMonotonicity(e.Trace, e.Bounds, pol, MaxExactHypotheses)
			}))
		}
		er.Results = append(er.Results, record(r, o, e.Name, "metamorphic", func() ([]Violation, error) {
			opt := learner.Options{Policy: pol}
			if e.Exact {
				opt.MaxHypotheses = MaxExactHypotheses
			} else {
				opt.Bound = maxBound(e.Bounds)
			}
			return Metamorphic(e.Trace, opt)
		}))
		er.Results = append(er.Results, record(r, o, e.Name, "verify", func() ([]Violation, error) {
			res, err := learner.Learn(e.Trace, learner.Options{Bound: maxBound(e.Bounds), Policy: pol})
			if err != nil {
				return nil, err
			}
			return VerifierConsistency(res.LUB), nil
		}))
		er.Results = append(er.Results, record(r, o, e.Name, "drift", driftOracle(e)))
		r.Entries = append(r.Entries, er)
	}
	return r
}

// driftOracle builds the drift-detection closure for one entry: the
// bounded learner mirrors what the serving layer runs in production,
// so the oracle measures the deployed signal path, not a lab variant.
func driftOracle(e *Entry) func() ([]Violation, error) {
	return func() ([]Violation, error) {
		return DriftDetection(e, learner.Options{Bound: maxBound(e.Bounds), Policy: e.Policy()})
	}
}

// RunDrift executes only the drift oracle over the corpus — the quick
// drift-focused gate behind `make drift` and `bbconform -drift`:
// change-point detection on drift-marked entries, zero false alarms on
// the stationary rest.
func RunDrift(c *Corpus, o obs.Observer) *Report {
	r := &Report{SchemaVersion: ReportSchemaVersion, CorpusVersion: c.Version}
	for _, e := range c.Entries {
		er := EntryReport{Name: e.Name}
		er.Results = append(er.Results, record(r, o, e.Name, "drift", driftOracle(e)))
		r.Entries = append(r.Entries, er)
	}
	return r
}

func maxBound(bounds []int) int {
	max := 8
	for _, b := range bounds {
		if b > max {
			max = b
		}
	}
	return max
}

// record runs one oracle, classifies its outcome and updates the
// report tallies plus the observer stream.
func record(r *Report, o obs.Observer, entry, oracle string, fn func() ([]Violation, error)) OracleResult {
	t0 := time.Now()
	vs, err := fn()
	res := OracleResult{Oracle: oracle, ElapsedMS: time.Since(t0).Milliseconds(), Violations: vs}
	switch {
	case errors.Is(err, ErrOracleSkipped):
		res.Status = StatusSkip
		res.Detail = err.Error()
	case err != nil:
		res.Status = StatusFail
		res.Detail = err.Error()
	case len(vs) > 0:
		res.Status = StatusFail
	default:
		res.Status = StatusPass
	}
	r.Oracles++
	switch res.Status {
	case StatusPass:
		r.Passed++
	case StatusSkip:
		r.Skipped++
	default:
		r.Failed++
		r.Violations += len(vs)
	}
	if o != nil {
		o.OnPipeline(obs.Pipeline{
			Stage: "conformance",
			Name:  "oracle_" + res.Status,
			Value: int64(len(vs)),
			Label: entry + "/" + oracle,
		})
	}
	return res
}

// Smoke is the harness's self-test: it injects deliberate faults and
// fails unless the oracles catch them. Two faults are injected — a
// lattice join returning a non-least upper bound for (→, ←), and a
// ground-truth table with one entry demoted below what the trace
// supports — covering the LUB oracle and the Theorem-2 oracle
// respectively. It also asserts the unbroken counterparts pass, so a
// vacuously-failing oracle cannot hide.
func Smoke() error {
	// Fault 1: Join(→, ←) = ↔? — an upper bound, but not the least
	// one (the correct answer is ↔). The lattice oracle must notice.
	brokenJoin := func(a, b lattice.Value) lattice.Value {
		if (a == lattice.Fwd && b == lattice.Bwd) || (a == lattice.Bwd && b == lattice.Fwd) {
			return lattice.BiMaybe
		}
		return lattice.Join(a, b)
	}
	if len(LatticeLawsWith(brokenJoin, lattice.Meet)) == 0 {
		return fmt.Errorf("conformance: smoke: lattice oracle missed a non-least upper bound at (→, ←)")
	}
	if vs := LatticeLaws(); len(vs) > 0 {
		return fmt.Errorf("conformance: smoke: genuine lattice tables fail their own oracle: %v", vs[0])
	}

	// Fault 2: demote the true d(t1,t2) of the Figure-1 design from →?
	// to ‖. Every exact hypothesis explains Figure 2's first message
	// via (t1,t2) or (t1,t4), and the demoted truth holds ‖ at both,
	// so Theorem 2 must report a violation at period 0.
	truth, ok := TruthFromModel(model.Figure1(), maxTruthChoiceBits)
	if !ok {
		return fmt.Errorf("conformance: smoke: Figure-1 truth enumeration failed")
	}
	tr := trace.PaperFigure2()
	if vs, err := Thm2Soundness(tr, truth, depfunc.CandidatePolicy{}, MaxExactHypotheses); err != nil || len(vs) > 0 {
		return fmt.Errorf("conformance: smoke: genuine Figure-1 truth fails Theorem 2 (err=%v, violations=%d)", err, len(vs))
	}
	demoted := truth.Clone()
	ts := demoted.TaskSet()
	demoted.Set(ts.Index("t1"), ts.Index("t2"), lattice.Par)
	vs, err := Thm2Soundness(tr, demoted, depfunc.CandidatePolicy{}, MaxExactHypotheses)
	if err != nil {
		return fmt.Errorf("conformance: smoke: thm2 oracle errored on the demoted truth: %v", err)
	}
	if len(vs) == 0 {
		return fmt.Errorf("conformance: smoke: thm2 oracle missed a demoted ground-truth entry")
	}
	return nil
}
