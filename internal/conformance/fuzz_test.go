package conformance

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Size caps keep individual fuzz executions fast; inputs beyond them
// are valid but uninteresting (the corpus covers big traces).
const (
	fuzzMaxTasks   = 8
	fuzzMaxPeriods = 12
	fuzzMaxMsgs    = 40
	fuzzMaxHyp     = 500
)

// FuzzLearn is the end-to-end target: arbitrary text goes through the
// trace parser, the bounded and (when tractable) exact learners, and
// the verification layer. Nothing may panic, and every result must
// satisfy the universal conformance properties — VerifyResults lets
// only matching hypotheses through, exact-mode hypotheses match their
// own trace, the learned set is invariant under worker count, and the
// verifier's report stays internally consistent.
func FuzzLearn(f *testing.F) {
	f.Add(trace.PaperFigure2().String())
	if tr, err := simTrace(model.Figure1(), 4, 3); err == nil {
		f.Add(tr.String())
	}
	f.Add("tasks a b c\nperiod\nexec a 0 5\nmsg m1 6 7\nexec b 9 12\nperiod\nexec a 100 105\nmsg m2 106 107\nexec c 110 115\n")
	f.Add("tasks a b\nperiod\nexec a 0 5\nexec b 2 8\nmsg m1 3 4\n")
	f.Add("tasks t1\nperiod\nstart t1 0\nend t1 4\n")
	f.Add("tasks a b\nperiod\nmsg m1 5 1\n") // inverted edge
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := trace.ReadString(input)
		if err != nil {
			return
		}
		if len(tr.Tasks) > fuzzMaxTasks || len(tr.Periods) > fuzzMaxPeriods {
			return
		}
		msgs := 0
		for _, p := range tr.Periods {
			msgs += len(p.Msgs)
		}
		if msgs > fuzzMaxMsgs {
			return
		}

		bounded, err := learner.Learn(tr, learner.Options{Bound: 4})
		if err != nil {
			// Degenerate parses (no explainable messages, hypothesis
			// blow-ups) are legitimate rejections, not crashes.
			return
		}
		// Merged hypotheses need not individually match the trace (a
		// mid-period merge splices two explanation lineages, and the
		// joined function may admit no single distinct-pair assignment
		// — fuzzing found such traces, which is what Options.
		// VerifyResults exists for). The universal contract is that the
		// VerifyResults filter leaves only matching hypotheses.
		verified, err := learner.Learn(tr, learner.Options{Bound: 4, VerifyResults: true})
		if err == nil {
			for i, d := range verified.Hypotheses {
				if ok, p := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
					t.Fatalf("VerifyResults let hypothesis %d through but it fails at period %d\ninput:\n%s", i, p, input)
				}
			}
		}
		if vs := VerifierConsistency(bounded.LUB); len(vs) > 0 {
			t.Fatalf("verifier inconsistency: %v\ninput:\n%s", vs[0], input)
		}

		workers, err := learner.Learn(tr, learner.Options{Bound: 4, Workers: 4})
		if err != nil {
			t.Fatalf("worker fan-out failed where serial learn succeeded: %v\ninput:\n%s", err, input)
		}
		if got, want := resultSig(workers), resultSig(bounded); !equalSig(got, want) {
			t.Fatalf("result depends on worker count:\n got %v\nwant %v\ninput:\n%s", got, want, input)
		}

		// The bounded-vs-exact envelope containment is deliberately NOT
		// asserted here: it is an empirical regression pin on the curated
		// corpus (see BoundMonotonicity), not a universal theorem —
		// fuzzing found degenerate traces (zero-length executions,
		// duplicate labels) where the exact most-specific frontier's LUB
		// is smaller than a merged bounded hypothesis. Exact-mode
		// consistency, however, is universal: every surviving hypothesis
		// must match the trace it was learned from.
		exact, err := learner.Learn(tr, learner.Options{MaxHypotheses: fuzzMaxHyp})
		if err != nil {
			return // intractable or degenerate in exact mode: fine
		}
		for i, d := range exact.Hypotheses {
			if ok, p := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
				t.Fatalf("exact hypothesis %d fails to match its own trace at period %d\ninput:\n%s", i, p, input)
			}
		}
	})
}

func equalSig(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
