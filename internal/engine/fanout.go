package engine

import (
	"sync"
	"sync/atomic"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
)

// minParallelParents is the working-set size below which the fan-out
// stays sequential even with Workers > 1: goroutine startup costs
// more than assuming a handful of pairs.
const minParallelParents = 2

// fanOut computes the children of every parent in cur concurrently
// and returns them indexed by parent, preserving the (parent, pair)
// generation order within each slot. Workers claim parents from a
// shared atomic cursor, so the pool is work-stealing without a
// channel. The workers touch only immutable shared state (pairs, the
// frozen history, parent hypotheses they own for the iteration);
// statistics, events and merging are left to the caller's sequential
// gather, which is what makes the parallel path bit-identical to the
// sequential one.
func (e *Engine) fanOut(cur []*hypothesis.Hypothesis, pairs []depfunc.Pair,
	ctx hypothesis.StepCtx) [][]*hypothesis.Hypothesis {

	results := make([][]*hypothesis.Hypothesis, len(cur))
	workers := e.cfg.Workers
	if workers > len(cur) {
		workers = len(cur)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cur) {
					return
				}
				results[i] = e.childrenOf(cur[i], pairs, ctx,
					make([]*hypothesis.Hypothesis, 0, len(pairs)))
			}
		}()
	}
	wg.Wait()
	return results
}
