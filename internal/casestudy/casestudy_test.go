package casestudy

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/verify"
)

// TestFullTraceMatchesPaperStatistics pins the published shape of the
// case study: 18 tasks and 330 messages on one CAN bus, 27 periods and
// 700 event-pair executions.
func TestFullTraceMatchesPaperStatistics(t *testing.T) {
	tr := MustFullTrace()
	s := tr.Stats()
	if s.Periods != 27 {
		t.Errorf("periods = %d", s.Periods)
	}
	if len(tr.Tasks) != 18 {
		t.Errorf("tasks = %d", len(tr.Tasks))
	}
	if s.Messages < 280 || s.Messages > 420 {
		t.Errorf("messages = %d, want ≈330", s.Messages)
	}
	if s.EventPairs < 600 || s.EventPairs > 800 {
		t.Errorf("event pairs = %d, want ≈700", s.EventPairs)
	}
}

// TestE2QualitativeProperties reproduces every qualitative finding the
// paper reports for the GM controller, from the heuristic learner's
// least upper bound at bound 32:
//
//   - tasks A and B are disjunction nodes (known in advance);
//   - tasks H, P and Q are conjunction nodes (learned);
//   - no matter which mode A chooses, L must execute (d(A,L) = →);
//   - no matter which mode B chooses, M must execute (d(B,M) = →);
//   - an implicit data dependency between Q and O, coming from the
//     interaction between functional tasks and the infrastructure
//     (CAN/OSEK) tasks, is discovered from the trace.
func TestE2QualitativeProperties(t *testing.T) {
	tr := MustFullTrace()
	res, err := learner.LearnBounded(tr, 32, FullPolicy())
	if err != nil {
		t.Fatal(err)
	}
	d := res.LUB

	disj := verify.DisjunctionNodes(d)
	for _, want := range []string{"A", "B"} {
		if !contains(disj, want) {
			t.Errorf("%s not classified as disjunction; got %v", want, disj)
		}
	}
	conj := verify.ConjunctionNodes(d)
	for _, want := range []string{"H", "P", "Q"} {
		if !contains(conj, want) {
			t.Errorf("%s not classified as conjunction; got %v", want, conj)
		}
	}
	if !verify.Determines(d, "A", "L") {
		t.Errorf("d(A,L) = %v, want ->", d.MustGet("A", "L"))
	}
	if !verify.Determines(d, "B", "M") {
		t.Errorf("d(B,M) = %v, want ->", d.MustGet("B", "M"))
	}
	// The implicit Q–O dependency: Q depends on O.
	if got := d.MustGet("Q", "O"); got != lattice.Bwd && got != lattice.BwdMaybe {
		t.Errorf("d(Q,O) = %v, want <- or <-?", got)
	}
	if got := d.MustGet("O", "Q"); got != lattice.Fwd && got != lattice.FwdMaybe {
		t.Errorf("d(O,Q) = %v, want -> or ->?", got)
	}
	// There is no O->Q design edge: the dependency is discovered from
	// the execution environment, exactly the paper's point.
	for _, e := range FullModel().Edges {
		if e.From == "O" {
			t.Errorf("test premise violated: design edge from O exists")
		}
	}
}

// TestE2LearnedModelSound: Theorem 2 on the case study — the heuristic
// result matches every period of the trace.
func TestE2LearnedModelSound(t *testing.T) {
	tr := MustFullTrace()
	for _, bound := range []int{1, 32} {
		res, err := learner.LearnBounded(tr, bound, FullPolicy())
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range res.Hypotheses {
			if ok, p := depfunc.MatchTrace(d, tr, FullPolicy()); !ok {
				t.Errorf("bound %d: hypothesis %d fails period %d", bound, i, p)
			}
		}
	}
}

// TestE2DesignFidelity: the learned unconditional dependencies agree
// with the design's ground-truth must-execute pairs — high recall, and
// every false positive is explained by the execution environment
// (scheduler-induced orderings), which the paper frames as a feature,
// not a bug.
func TestE2DesignFidelity(t *testing.T) {
	tr := MustFullTrace()
	res, err := learner.LearnBounded(tr, 32, FullPolicy())
	if err != nil {
		t.Fatal(err)
	}
	must, ok := FullModel().MustExecutePairs(16)
	if !ok {
		t.Fatal("ground-truth enumeration abandoned")
	}
	c := verify.CompareWithDesign(res.LUB, must)
	if c.Recall < 0.9 {
		t.Errorf("recall = %.2f (%d TP, %d FN), want >= 0.9", c.Recall, c.TruePositives, c.FalseNegatives)
	}
}

// TestLitePolicyCoversGroundTruth: the lite configuration's logging
// policy never excludes the true sender/receiver pair of any design
// message — the precondition for exact learning to converge on truth.
func TestLitePolicyCoversGroundTruth(t *testing.T) {
	out, err := LiteTrace()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := depfunc.NewTaskSet(out.Trace.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	pol := LitePolicy()
	for _, p := range out.Trace.Periods {
		cands := depfunc.Candidates(p, ts, pol)
		for mi, msg := range p.Msgs {
			if len(cands[mi]) == 0 {
				t.Fatalf("period %d message %q has no candidates", p.Index, msg.ID)
			}
			truth := out.Sent[msg.ID]
			if truth.To == "" {
				continue
			}
			want := depfunc.Pair{S: ts.Index(truth.From), R: ts.Index(truth.To)}
			found := false
			for _, pr := range cands[mi] {
				if pr == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("period %d message %q: true pair %s->%s excluded by the lite policy",
					p.Index, msg.ID, truth.From, truth.To)
			}
		}
	}
}

// TestE3ExactOnLite reproduces the paper's exact-algorithm datum on
// the tractable configuration: the exact algorithm terminates and
// discovers the same qualitative structure (d(S,L) = → and the
// implicit P–O dependency).
func TestE3ExactOnLite(t *testing.T) {
	if testing.Short() {
		t.Skip("exact run takes ≈2 s")
	}
	tr := MustLiteTrace()
	res, err := learner.Learn(tr, learner.Options{Policy: LitePolicy(), MaxHypotheses: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LUB.MustGet("S", "L"); got != lattice.Fwd {
		t.Errorf("d(S,L) = %v, want ->", got)
	}
	if got := res.LUB.MustGet("P", "O"); got != lattice.Bwd && got != lattice.BwdMaybe {
		t.Errorf("d(P,O) = %v, want <- or <-?", got)
	}
	for i, d := range res.Hypotheses {
		if ok, p := depfunc.MatchTrace(d, tr, LitePolicy()); !ok {
			t.Errorf("exact hypothesis %d fails period %d", i, p)
		}
	}
}

// TestE3ConvergenceLemmaOnLite: the paper's Lemma on the lite
// configuration — the single hypothesis returned at bound 1 equals the
// least upper bound of the exact result set.
func TestE3ConvergenceLemmaOnLite(t *testing.T) {
	if testing.Short() {
		t.Skip("exact run takes ≈2 s")
	}
	tr := MustLiteTrace()
	exact, err := learner.Learn(tr, learner.Options{Policy: LitePolicy(), MaxHypotheses: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	one, err := learner.Learn(tr, learner.Options{Bound: 1, Policy: LitePolicy()})
	if err != nil {
		t.Fatal(err)
	}
	if !one.Converged {
		t.Fatal("bound 1 did not converge")
	}
	if !one.Hypotheses[0].Equal(exact.LUB) {
		t.Errorf("bound-1 result != LUB(exact):\n%s\nvs\n%s",
			one.Hypotheses[0].Table(), exact.LUB.Table())
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
