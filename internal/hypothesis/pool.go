package hypothesis

import (
	"sync"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
)

// hypPool recycles Hypothesis headers. The generalization fan-out
// creates and retires hypotheses at a rate of parents × candidate
// pairs per message; with the dependency-function header embedded in
// the struct, recycling the header removes the last per-child heap
// allocation on the no-change copy-on-write path. Assume and Merge
// draw from the pool; Release feeds it, guarded against double puts by
// the embedded matrix's own released state. Pointers (not values) go
// through the pool, so Put does not box.
var hypPool = sync.Pool{New: func() any { return new(Hypothesis) }}

// Arena bump-allocates assumption cons cells in blocks. Assumption
// lists never outlive the period that created them (ClearAssumptions
// runs on every survivor at period end), so the engine resets its
// arenas at the period boundary and the cells are reused wholesale —
// no per-cell allocation, no per-cell GC tracking.
//
// An Arena is single-goroutine; the engine owns one per fan-out worker
// plus one for the sequential gather path. The nil Arena is valid and
// falls back to plain heap allocation.
type Arena struct {
	blocks   [][]assumeNode
	bi, used int
}

// arenaBlock is the cells-per-block granularity; blocks are retained
// across Reset, so steady state allocates nothing.
const arenaBlock = 1024

// node returns a cell initialized to {p, prev}.
func (a *Arena) node(p depfunc.Pair, prev *assumeNode) *assumeNode {
	if a == nil {
		return &assumeNode{p: p, prev: prev}
	}
	if a.bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]assumeNode, arenaBlock))
	}
	n := &a.blocks[a.bi][a.used]
	n.p, n.prev = p, prev
	a.used++
	if a.used == arenaBlock {
		a.bi++
		a.used = 0
	}
	return n
}

// Reset recycles every cell. Only call it when no live hypothesis can
// still reference a cell from this arena — in the engine, immediately
// after the period-end ClearAssumptions sweep.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.bi, a.used = 0, 0
}

// Dedup is a fingerprint-keyed hypothesis set with full-equality
// confirmation on a fingerprint hit. Collision chains thread through
// the hypotheses' own dnext field instead of per-bucket slices, and
// Reset clears the map in place, so a Dedup reused across messages
// reaches zero steady-state allocations. Only one live Dedup may
// traverse a hypothesis's chain link at a time; Insert always rewrites
// the link, so reusing one Dedup serially (Reset between uses) is
// safe even though released and recycled headers leave stale links
// behind.
type Dedup struct {
	m map[uint64]*Hypothesis
}

// NewDedup returns an empty set.
func NewDedup() *Dedup { return &Dedup{m: make(map[uint64]*Hypothesis)} }

// Reset empties the set, retaining the map's storage.
func (d *Dedup) Reset() { clear(d.m) }

// Insert reports whether a hypothesis with the same state (dependency
// function plus assumption set) was already present, inserting h
// otherwise.
func (d *Dedup) Insert(h *Hypothesis) bool {
	fp := h.Fingerprint()
	for c := d.m[fp]; c != nil; c = c.dnext {
		if c.SameState(h) {
			return true
		}
	}
	h.dnext = d.m[fp]
	d.m[fp] = h
	return false
}
