package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// target abstracts "where requests go": a live base URL or an
// in-process handler invoked without a socket.
type target struct {
	base string
	c    *http.Client
}

func newTarget(cfg Config) (*target, error) {
	switch {
	case cfg.BaseURL != "":
		return &target{base: strings.TrimRight(cfg.BaseURL, "/"),
			c: &http.Client{Timeout: 30 * time.Second}}, nil
	case cfg.Handler != nil:
		return &target{base: "http://bbserved.inproc",
			c: &http.Client{Transport: inprocTransport{h: cfg.Handler}}}, nil
	default:
		return nil, fmt.Errorf("load: neither BaseURL nor Handler configured")
	}
}

// inprocTransport serves requests by calling the handler directly —
// the in-process mode that lets bbload push thousands of streams
// without sockets or ports.
type inprocTransport struct{ h http.Handler }

func (t inprocTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, r)
	return rec.Result(), nil
}

func (t *target) do(ctx context.Context, method, path string, body []byte, hdr map[string]string) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := t.c.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

// worker drives one synthetic stream.
type worker struct {
	id     string
	class  Class
	cfg    *Config
	client *target
	stats  *classStats
	rng    *rand.Rand

	clockUS int64 // synthetic trace clock, µs

	// Drift-injection bookkeeping (drift mode sends synchronously, so
	// these need no locking).
	periodsGen         int // periods rendered so far
	acceptedStationary int // pre-flip periods the server accepted
}

const (
	workerPeriodUS = 1000
	workerBitRate  = 500_000
)

func (w *worker) createStream(ctx context.Context) error {
	body := fmt.Sprintf(`{"id":%q,"tasks":["t1","t2"]`, w.id)
	if w.class == ClassCandump {
		body += fmt.Sprintf(`,"bit_rate":%d,"period_us":%d`, workerBitRate, workerPeriodUS)
	}
	if w.cfg.DriftFlipAfter > 0 {
		body += `,"drift":{"enabled":true}`
	}
	body += "}"
	code, _, out, err := w.client.do(ctx, "POST", "/v1/streams", []byte(body), nil)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("status %d: %s", code, out)
	}
	return nil
}

func (w *worker) deleteStream(ctx context.Context) {
	_, _, _, _ = w.client.do(ctx, "DELETE", "/v1/streams/"+w.id, nil, nil)
}

// run fires batches on the open-loop schedule: batch n is due at
// start + n/rate, independent of how earlier batches fared. Responses
// are awaited on their own goroutines, bounded by the shared
// semaphore and tracked by inflight so Run can wait them out before
// reading the stats.
func (w *worker) run(ctx context.Context, start time.Time, rate float64, sem chan struct{}, inflight *sync.WaitGroup) {
	interval := time.Duration(float64(time.Second) / rate)
	// Desynchronize the fleet: stream n starts at a random phase of
	// its interval instead of all firing on the same tick.
	phase := time.Duration(w.rng.Int63n(int64(interval) + 1))
	for n := int64(0); ; n++ {
		due := start.Add(phase + time.Duration(n)*interval)
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Until(due)):
		}
		batch, pre := w.nextBatch()
		if w.cfg.DriftFlipAfter > 0 {
			// Drift mode: the Page–Hinkley failure signal is
			// sequential, so batches must arrive in generation order —
			// send on the schedule goroutine itself.
			w.send(ctx, batch, pre)
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return
		}
		inflight.Add(1)
		go func(batch string) {
			defer inflight.Done()
			defer func() { <-sem }()
			w.send(ctx, batch, pre)
		}(batch)
	}
}

// flipPoint is the true change point on the server: the period after
// the last accepted stationary one.
func (w *worker) flipPoint() int { return w.acceptedStationary + 1 }

// driftWire is the subset of the server's drift state the report
// scores against.
type driftWire struct {
	Generation      int `json:"generation"`
	Alarms          int `json:"alarms"`
	LastChangePoint int `json:"last_change_point"`
	LastAlarmPeriod int `json:"last_alarm_period"`
}

// driftState fetches the stream's monitor state after a run.
func (w *worker) driftState(ctx context.Context) (*driftWire, error) {
	code, _, out, err := w.client.do(ctx, "GET", "/v1/streams/"+w.id+"/drift", nil, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("drift status %d: %s", code, out)
	}
	var resp struct {
		Enabled bool       `json:"enabled"`
		State   *driftWire `json:"state"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	if !resp.Enabled || resp.State == nil {
		return nil, fmt.Errorf("stream %s has no drift state", w.id)
	}
	return resp.State, nil
}

// nextBatch renders PeriodsPerBatch learnable periods and advances
// the stream clock, returning the batch and how many of its periods
// are pre-flip (stationary). Text streams cut periods explicitly;
// candump streams interleave task exec lines with CAN frames and rely
// on the server's period grid plus one explicit flush. In a
// drift-injection run, periods past DriftFlipAfter flip to the
// changed regime: t1 keeps running, the message and t2 disappear.
func (w *worker) nextBatch() (string, int) {
	var sb strings.Builder
	pre := 0
	for k := 0; k < w.cfg.PeriodsPerBatch; k++ {
		base := w.clockUS
		w.clockUS += workerPeriodUS
		w.periodsGen++
		flipped := w.cfg.DriftFlipAfter > 0 && w.periodsGen > w.cfg.DriftFlipAfter
		fmt.Fprintf(&sb, "exec t1 %d %d\n", base, base+100)
		if !flipped {
			pre++
			if w.class == ClassCandump {
				t := base + 150
				fmt.Fprintf(&sb, "(%d.%06d) can0 123#AA\n", t/1_000_000, t%1_000_000)
			} else {
				fmt.Fprintf(&sb, "msg m1 %d %d\n", base+150, base+200)
			}
			fmt.Fprintf(&sb, "exec t2 %d %d\n", base+400, base+500)
		}
		if w.class == ClassText {
			sb.WriteString("period\n")
		}
	}
	if w.class == ClassCandump {
		sb.WriteString("period\n")
	}
	return sb.String(), pre
}

func (w *worker) send(ctx context.Context, batch string, pre int) {
	var hdr map[string]string
	if p := w.cfg.TraceSample; p > 0 {
		w.stats.mu.Lock()
		roll := w.rng.Float64()
		w.stats.mu.Unlock()
		if roll < p {
			hdr = map[string]string{"traceparent": randomTraceparent(roll)}
		}
	}
	lines := int64(strings.Count(batch, "\n"))
	t0 := time.Now()
	code, _, out, err := w.client.do(ctx, "POST", "/v1/streams/"+w.id+"/events", []byte(batch), hdr)
	lat := time.Since(t0).Seconds()

	w.stats.mu.Lock()
	defer w.stats.mu.Unlock()
	w.stats.requests++
	w.stats.lines += lines
	switch {
	case err != nil:
		if ctx.Err() != nil {
			// The run ended mid-request; not a server failure.
			w.stats.requests--
			w.stats.lines -= lines
			return
		}
		w.stats.errors++
	case code == http.StatusTooManyRequests:
		w.stats.shed++
	case code == http.StatusAccepted:
		w.stats.samples = append(w.stats.samples, lat)
		var ir struct {
			Periods int64 `json:"periods"`
		}
		_ = json.Unmarshal(out, &ir)
		w.stats.periods += ir.Periods
		if w.cfg.DriftFlipAfter > 0 {
			// The candump grid may hold one period back, so count the
			// server's number, capped at the batch's stationary share.
			acc := int(ir.Periods)
			if acc > pre {
				acc = pre
			}
			w.acceptedStationary += acc
		}
	default:
		w.stats.errors++
	}
}

// randomTraceparent builds a sampled traceparent from the given
// entropy source value (stretched over the ID bytes via obs's parser
// requirements: nonzero trace and span IDs).
func randomTraceparent(seed float64) string {
	r := rand.New(rand.NewSource(int64(seed*float64(1<<62)) | 1))
	var tid obs.TraceID
	var sid obs.SpanID
	for i := range tid {
		tid[i] = byte(r.Intn(255) + 1)
	}
	for i := range sid {
		sid[i] = byte(r.Intn(255) + 1)
	}
	return obs.SpanContext{TraceID: tid, SpanID: sid, Sampled: true}.Traceparent()
}
