package obs

import "sync"

// Recorder captures every event in order, for test assertions and
// offline inspection. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *Recorder) OnEngineStart(e EngineStart)             { r.record(e) }
func (r *Recorder) OnPeriodStart(e PeriodStart)             { r.record(e) }
func (r *Recorder) OnMessageProcessed(e MessageProcessed)   { r.record(e) }
func (r *Recorder) OnHypothesisSpawned(e HypothesisSpawned) { r.record(e) }
func (r *Recorder) OnHypothesisMerged(e HypothesisMerged)   { r.record(e) }
func (r *Recorder) OnHypothesisPruned(e HypothesisPruned)   { r.record(e) }
func (r *Recorder) OnPeriodEnd(e PeriodEnd)                 { r.record(e) }
func (r *Recorder) OnRunEnd(e RunEnd)                       { r.record(e) }
func (r *Recorder) OnPipeline(e Pipeline)                   { r.record(e) }
func (r *Recorder) OnProvenance(e Provenance)               { r.record(e) }
func (r *Recorder) OnSpan(e SpanEnd)                        { r.record(e) }

// Events returns a copy of the captured events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Kinds returns the kind strings of the captured events in order.
func (r *Recorder) Kinds() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.events))
	for i, e := range r.events {
		out[i] = e.Kind()
	}
	return out
}

// OfKind returns the captured events of the given kind, in order.
func (r *Recorder) OfKind(kind string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of captured events of the given kind.
func (r *Recorder) Count(kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind() == kind {
			n++
		}
	}
	return n
}

// Len returns the total number of captured events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards the captured events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}
