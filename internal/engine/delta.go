package engine

import (
	"errors"
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
)

// This file is the engine half of the incremental-checkpoint path: a
// PeriodDelta captures what one ProcessPeriod call changed, priced in
// the size of the *change*, not the size of the model. The learner
// wraps it (learner.Delta) and the store appends it to a per-stream
// WAL; replaying the deltas onto a restored session reproduces the
// original state bit-identically (pinned by tests).
//
// Delta capture works against a baseline — a cheap record of the
// engine state at the previous capture point: the history vector and
// the working set's dependency-function Zobrist fingerprints (values,
// not pointers — generalization rebuilds the hypothesis objects every
// message, and relaxation mutates surviving objects in place, so
// object identity says nothing; the copied fingerprint pins the
// content as of the capture point either way). New, Restore, State
// and every successful PeriodDelta/ApplyPeriodDelta refresh the
// baseline, so the contract is simply "capture after every period".
//
// Working-set encoding. An entry of the new working set is either a
// reference to a baseline position (its fingerprint matches an unused
// baseline fingerprint — the entry survived the period with identical
// content, at most re-ordered) or a literal dependency table for
// new/changed entries. The common converged case — the working set
// survives the period completely unchanged, in order — collapses to
// Same=true: O(1) bytes however large the model is. Matching trusts
// the 64-bit Zobrist fingerprint the same way the engine's own
// dedup/relaxation machinery does (depfunc maintains the invariant
// fp == freshFingerprint(v)); the restore-equivalence tests pin the
// end-to-end behaviour.

// PeriodDelta is the engine-level change record of exactly one
// processed period.
type PeriodDelta struct {
	// Periods is Stats.Periods after the period was processed; apply
	// validates it continues the target session's sequence.
	Periods int `json:"period"`
	// HistSet lists the execution-violation history indices this
	// period flipped to true (the history is monotone).
	HistSet []int `json:"hist_set,omitempty"`
	// Same marks a period that left the working set untouched — same
	// hypotheses, same order. Keep and Tables are empty.
	Same bool `json:"same,omitempty"`
	// Keep is the new working set as baseline references: Keep[i] is
	// the baseline position of entry i, or -1 when the entry is the
	// next literal from Packed (or, in legacy records, Tables).
	Keep []int `json:"keep,omitempty"`
	// Packed holds the new/changed entries as base64 packed-word
	// encodings (depfunc.EncodePacked), in the order their -1 slots
	// appear in Keep. This is what capture writes: it restores the
	// packed matrix bit-identically and is a fraction of a rendered
	// table's size.
	Packed []string `json:"packed,omitempty"`
	// Tables holds the same literals as dependency tables in records
	// written before the packed encoding existed. Apply accepts either
	// encoding (Packed wins when both are present); capture no longer
	// writes this field.
	Tables []string `json:"tables,omitempty"`
	// Stats is the full post-period counter snapshot (fixed size) with
	// PeriodLive elided; Live is this period's PeriodLive entry.
	Stats Stats `json:"stats"`
	Live  int   `json:"live"`
}

// ErrDeltaSpan is returned by PeriodDelta when the engine processed
// zero or more than one period since the baseline was last refreshed;
// callers that fell behind must checkpoint with State instead.
var ErrDeltaSpan = errors.New("engine: delta must be captured after every period")

// deltaBase is the capture baseline; see the file comment.
type deltaBase struct {
	periods int
	hist    []bool
	fps     []uint64
}

// resetDeltaBase re-anchors the baseline at the current state. The
// slices are reused across periods, so a steady-state capture
// allocates nothing here.
func (e *Engine) resetDeltaBase() {
	e.base.periods = e.stats.Periods
	e.base.hist = append(e.base.hist[:0], e.hist...)
	e.base.fps = e.base.fps[:0]
	for _, h := range e.cur {
		e.base.fps = append(e.base.fps, h.D.Fingerprint())
	}
}

// PeriodDelta captures the change record of the single period
// processed since the last baseline refresh and re-anchors the
// baseline. It fails with ErrDeltaSpan when zero or multiple periods
// elapsed.
func (e *Engine) PeriodDelta() (*PeriodDelta, error) {
	if e.stats.Periods != e.base.periods+1 {
		return nil, fmt.Errorf("%w (baseline at %d periods, engine at %d)",
			ErrDeltaSpan, e.base.periods, e.stats.Periods)
	}
	d := &PeriodDelta{Periods: e.stats.Periods}
	for i, b := range e.hist {
		if b && !e.base.hist[i] {
			d.HistSet = append(d.HistSet, i)
		}
	}
	same := len(e.cur) == len(e.base.fps)
	if same {
		for i, h := range e.cur {
			if e.base.fps[i] != h.D.Fingerprint() {
				same = false
				break
			}
		}
	}
	if same {
		d.Same = true
	} else {
		// Unused baseline positions by fingerprint, FIFO per print so
		// duplicates pair up deterministically and each position is
		// referenced at most once (mirrors apply's used[] check).
		at := make(map[uint64][]int, len(e.base.fps))
		for j, fp := range e.base.fps {
			at[fp] = append(at[fp], j)
		}
		d.Keep = make([]int, len(e.cur))
		for i, h := range e.cur {
			if q := at[h.D.Fingerprint()]; len(q) > 0 {
				d.Keep[i] = q[0]
				at[h.D.Fingerprint()] = q[1:]
			} else {
				d.Keep[i] = -1
				d.Packed = append(d.Packed, h.D.EncodePacked())
			}
		}
	}
	d.Stats = e.stats
	d.Stats.PeriodLive = nil
	d.Live = e.stats.PeriodLive[len(e.stats.PeriodLive)-1]
	e.resetDeltaBase()
	return d, nil
}

// ApplyPeriodDelta advances a restored session by one captured period
// without reprocessing it. The resulting state is bit-identical to
// the session the delta was captured from (same working set, history,
// stats and baseline), so capture can resume seamlessly.
func (e *Engine) ApplyPeriodDelta(d *PeriodDelta) error {
	if d.Periods != e.stats.Periods+1 {
		return fmt.Errorf("engine: delta is for period %d, session is at %d", d.Periods, e.stats.Periods)
	}
	for _, i := range d.HistSet {
		if i < 0 || i >= len(e.hist) {
			return fmt.Errorf("engine: delta history index %d outside [0,%d)", i, len(e.hist))
		}
	}
	if !d.Same {
		// Literals arrive packed (current records) or as rendered
		// tables (legacy records); packed wins when both are present.
		nlit := len(d.Packed)
		literal := func(lit int) (*depfunc.DepFunc, error) {
			return depfunc.DecodePacked(e.ts, d.Packed[lit])
		}
		if nlit == 0 && len(d.Tables) > 0 {
			nlit = len(d.Tables)
			literal = func(lit int) (*depfunc.DepFunc, error) {
				df, err := depfunc.ParseTable(d.Tables[lit])
				if err != nil {
					return nil, err
				}
				if !df.TaskSet().Equal(e.ts) {
					return nil, fmt.Errorf("table is over task set %v, want %v",
						df.TaskSet().Names(), e.ts.Names())
				}
				return df, nil
			}
		}
		cur := make([]*hypothesis.Hypothesis, 0, len(d.Keep))
		used := make([]bool, len(e.cur))
		lit := 0
		for i, ref := range d.Keep {
			switch {
			case ref >= 0 && ref < len(e.cur):
				if used[ref] {
					return fmt.Errorf("engine: delta entry %d re-keeps hypothesis %d", i, ref)
				}
				used[ref] = true
				cur = append(cur, e.cur[ref])
			case ref == -1:
				if lit >= nlit {
					return fmt.Errorf("engine: delta entry %d wants literal %d, only %d literals", i, lit, nlit)
				}
				df, err := literal(lit)
				if err != nil {
					return fmt.Errorf("engine: delta literal %d: %w", lit, err)
				}
				h := hypothesis.FromDepFunc(df)
				if e.cfg.Provenance {
					h.EnableProvenance()
				}
				cur = append(cur, h)
				lit++
			default:
				return fmt.Errorf("engine: delta entry %d references baseline position %d of %d", i, ref, len(e.cur))
			}
		}
		if lit != nlit {
			return fmt.Errorf("engine: delta carries %d literals, working set uses %d", nlit, lit)
		}
		if len(cur) == 0 {
			return fmt.Errorf("engine: delta empties the working set")
		}
		e.cur = cur
	}
	for _, i := range d.HistSet {
		e.hist[i] = true
	}
	pl := e.stats.PeriodLive
	e.stats = d.Stats
	if cap := e.cfg.PeriodLiveCap; cap > 0 && len(pl) >= cap {
		copy(pl, pl[len(pl)-cap+1:])
		e.stats.PeriodLive = append(pl[:cap-1], d.Live)
	} else {
		e.stats.PeriodLive = append(pl, d.Live)
	}
	e.resetDeltaBase()
	return nil
}
