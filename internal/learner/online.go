package learner

import (
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Online is the incremental form of the learner: the paper's algorithm
// processes one period at a time and never revisits earlier instances,
// so a logging device can feed periods as they are captured and read
// out the current hypothesis set at any time.
//
//	o, _ := learner.NewOnline(tasks, learner.Options{Bound: 32})
//	for p := range periods {
//	    if err := o.AddPeriod(p); err != nil { ... }
//	}
//	res, _ := o.Result()
//
// Online and the batch Learn function produce identical results for
// the same sequence of periods (guaranteed by tests): both are thin
// front-ends over the same internal/engine session.
//
// Options.VerifyResults in an online session re-checks the snapshot
// against the retained-period window, which exists only when
// Options.RetainPeriods > 0; without retained periods Result fails
// with ErrVerifyUnavailable rather than silently skipping the check.
//
// With Options.Observer set, NewOnline announces the session
// (EngineStart) and AddPeriod emits the structured run-trace
// (PeriodStart, MessageProcessed, hypothesis events, PeriodEnd); the
// RunEnd event is only emitted by the batch Learn, since an
// incremental session has no defined end.
type Online struct {
	eng *engine.Engine
	opt Options
	err error

	// retained is the ring buffer of the last Options.RetainPeriods
	// consumed periods (deep copies, oldest first after reordering by
	// retainedTrace). next is the ring write cursor.
	retained []*trace.Period
	next     int
}

// NewOnline starts an incremental learning session over the predefined
// task set.
func NewOnline(tasks []string, opt Options) (*Online, error) {
	ts, err := depfunc.NewTaskSet(tasks)
	if err != nil {
		return nil, err
	}
	o := &Online{eng: engine.New(ts, opt.engineConfig()), opt: opt}
	if opt.RetainPeriods > 0 {
		o.retained = make([]*trace.Period, 0, opt.RetainPeriods)
	}
	return o, nil
}

// TaskSet returns the session's task set.
func (o *Online) TaskSet() *depfunc.TaskSet { return o.eng.TaskSet() }

// Err returns the sticky error of the session, if any. Once a period
// fails, the session is dead: the hypothesis set no longer reflects a
// consistent prefix of the instance stream.
func (o *Online) Err() error { return o.err }

// Stats returns a snapshot of the instrumentation counters.
func (o *Online) Stats() Stats { return o.eng.Stats() }

// WorkingSetSize returns the current number of live hypotheses.
func (o *Online) WorkingSetSize() int { return o.eng.WorkingSetSize() }

// RetainedPeriods returns the number of periods currently held in the
// verification ring buffer (at most Options.RetainPeriods).
func (o *Online) RetainedPeriods() int { return len(o.retained) }

// AddPeriod consumes one instance: message-guided generalization over
// the period's messages followed by the end-of-period post-processing
// (both delegated to the engine), then retention bookkeeping.
func (o *Online) AddPeriod(p *trace.Period) error {
	if o.err != nil {
		return o.err
	}
	if err := o.eng.ProcessPeriod(p); err != nil {
		o.err = err
		return o.err
	}
	if o.opt.RetainPeriods > 0 {
		cp := p.Clone()
		if len(o.retained) < o.opt.RetainPeriods {
			o.retained = append(o.retained, cp)
		} else {
			o.retained[o.next] = cp
			o.next = (o.next + 1) % o.opt.RetainPeriods
		}
	}
	return nil
}

// retainedTrace assembles the retained window into a trace, oldest
// period first, or nil when nothing is retained.
func (o *Online) retainedTrace() *trace.Trace {
	if len(o.retained) == 0 {
		return nil
	}
	tr := trace.New(o.eng.TaskSet().Names())
	// The ring wraps at next: [next..len) are the oldest entries.
	tr.Periods = append(tr.Periods, o.retained[o.next:]...)
	tr.Periods = append(tr.Periods, o.retained[:o.next]...)
	return tr
}

// Result snapshots the current hypothesis set. The session remains
// usable: further periods may be added and Result called again. The
// returned dependency functions are deep copies and never mutated by
// subsequent AddPeriod calls.
//
// With Options.VerifyResults set, the snapshot is re-checked against
// the retained-period window (Options.RetainPeriods); hypotheses
// failing the re-check are dropped and counted in
// Stats.DroppedUnsound. When verification is requested but no periods
// are retained, Result fails with ErrVerifyUnavailable — it never
// silently skips a requested check.
func (o *Online) Result() (*Result, error) {
	if o.err != nil {
		return nil, o.err
	}
	var verifyTr *trace.Trace
	if o.opt.VerifyResults {
		verifyTr = o.retainedTrace()
		if verifyTr == nil {
			return nil, ErrVerifyUnavailable
		}
	}
	working := o.eng.Working()
	ds := make([]*depfunc.DepFunc, 0, len(working))
	var prov map[*depfunc.DepFunc][]ProvStep
	if o.opt.Provenance {
		prov = make(map[*depfunc.DepFunc][]ProvStep, len(working))
	}
	for _, h := range working {
		d := h.D.Clone()
		ds = append(ds, d)
		if prov != nil {
			prov[d] = h.Provenance()
		}
	}
	res, err := finish(o.eng.TaskSet(), verifyTr, ds, o.opt, o.eng.Stats())
	if err != nil {
		return nil, err
	}
	res.prov = prov
	return res, nil
}
