package learner

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// feedPeriods returns the Figure-2 periods repeated n times — enough
// periods for the session to converge and keep going.
func feedPeriods(n int) (tasks []string, periods []*trace.Period) {
	tr := trace.PaperFigure2()
	for i := 0; i < n; i++ {
		periods = append(periods, tr.Periods...)
	}
	return tr.Tasks, periods
}

// roundTrip pushes a delta through its JSON wire form, as the store
// WAL does.
func roundTrip(t *testing.T, d *Delta) *Delta {
	t.Helper()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var out Delta
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestDeltaReplayEquivalence: capturing a delta after every period
// and applying the JSON round-tripped deltas to a twin session keeps
// the twin bit-identical to the original at every step, across option
// shapes (exact, bounded, retained-ring, capped PeriodLive).
func TestDeltaReplayEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"exact", Options{}},
		{"bounded", Options{Bound: 8}},
		{"retained", Options{Bound: 8, RetainPeriods: 3}},
		{"livecap", Options{Bound: 8, PeriodLiveCap: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tasks, periods := feedPeriods(4)
			a, err := NewOnline(tasks, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewOnline(tasks, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range periods {
				if err := a.AddPeriod(p); err != nil {
					t.Fatal(err)
				}
				d, err := a.PeriodDelta()
				if err != nil {
					t.Fatalf("period %d: %v", i, err)
				}
				if err := b.ApplyDelta(roundTrip(t, d)); err != nil {
					t.Fatalf("period %d: %v", i, err)
				}
				sa, err := a.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				sb, err := b.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sa, sb) {
					t.Fatalf("period %d: replayed snapshot diverges\noriginal: %+v\nreplayed: %+v", i, sa, sb)
				}
			}
			ra, err := a.Result()
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Result()
			if err != nil {
				t.Fatal(err)
			}
			if ra.LUB.Table() != rb.LUB.Table() {
				t.Fatalf("LUB diverges:\n%s\nvs\n%s", ra.LUB.Table(), rb.LUB.Table())
			}
		})
	}
}

// TestDeltaAcrossRestore: a session restored from a mid-stream
// snapshot catches up via deltas and can itself keep producing deltas
// a further twin applies — the full base+WAL hydration shape.
func TestDeltaAcrossRestore(t *testing.T) {
	opt := Options{Bound: 8, RetainPeriods: 2}
	tasks, periods := feedPeriods(3)
	half := len(periods) / 2

	a, err := NewOnline(tasks, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range periods[:half] {
		if err := a.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c, err := RestoreOnline(snap, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range periods[half:] {
		if err := a.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		d, err := a.PeriodDelta()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyDelta(roundTrip(t, d)); err != nil {
			t.Fatal(err)
		}
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa, sc) {
		t.Fatalf("restored+delta snapshot diverges\noriginal: %+v\nreplayed: %+v", sa, sc)
	}
}

// TestDeltaSpanError: a capture that missed a period must refuse
// rather than silently emit a multi-period diff.
func TestDeltaSpanError(t *testing.T) {
	tasks, periods := feedPeriods(1)
	o, err := NewOnline(tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.PeriodDelta(); !errors.Is(err, engine.ErrDeltaSpan) {
		t.Fatalf("delta before any period: %v, want ErrDeltaSpan", err)
	}
	if err := o.AddPeriod(periods[0]); err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(periods[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.PeriodDelta(); !errors.Is(err, engine.ErrDeltaSpan) {
		t.Fatalf("delta spanning two periods: %v, want ErrDeltaSpan", err)
	}
}

// TestDeltaRetainedMismatch: deltas encode the retained-ring append,
// so applying across mismatched RetainPeriods configurations is a
// typed error, not silent divergence.
func TestDeltaRetainedMismatch(t *testing.T) {
	tasks, periods := feedPeriods(1)
	a, _ := NewOnline(tasks, Options{RetainPeriods: 2})
	b, _ := NewOnline(tasks, Options{})
	if err := a.AddPeriod(periods[0]); err != nil {
		t.Fatal(err)
	}
	d, err := a.PeriodDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d.Retained == nil {
		t.Fatal("retaining session emitted a delta without the retained period")
	}
	if err := b.ApplyDelta(d); err == nil {
		t.Fatal("applying a retaining delta to a non-retaining session succeeded")
	}
}

// steadyDelta converges a session on the repeated Figure-2 trace and
// returns the wire size of one more steady-state period delta, plus
// the size of a full snapshot and the live hypothesis count.
func steadyDelta(t *testing.T, opt Options) (deltaBytes, snapBytes, live int, same bool) {
	t.Helper()
	tasks, periods := feedPeriods(6)
	o, err := NewOnline(tasks, opt)
	if err != nil {
		t.Fatal(err)
	}
	var d *Delta
	for _, p := range periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		if d, err = o.PeriodDelta(); err != nil {
			t.Fatal(err)
		}
	}
	db, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return len(db), len(sb), o.WorkingSetSize(), d.Same
}

// TestDeltaSteadyStateCostIndependentOfModelSize is the acceptance
// criterion pinned: once the model is stable, the per-period
// persistence record costs O(1) bytes — it does not grow with the
// size of the hypothesis frontier, while a full snapshot does.
func TestDeltaSteadyStateCostIndependentOfModelSize(t *testing.T) {
	dSmall, sSmall, liveSmall, sameSmall := steadyDelta(t, Options{Bound: 2})
	dBig, sBig, liveBig, sameBig := steadyDelta(t, Options{Bound: 64})
	t.Logf("bound 2: live=%d delta=%dB snapshot=%dB; bound 64: live=%d delta=%dB snapshot=%dB",
		liveSmall, dSmall, sSmall, liveBig, dBig, sBig)
	if !sameSmall || !sameBig {
		t.Fatalf("steady-state deltas not marked Same (small=%v big=%v)", sameSmall, sameBig)
	}
	if liveBig <= liveSmall {
		t.Skipf("bound 64 frontier (%d) not larger than bound 2 (%d); model-size axis unavailable", liveBig, liveSmall)
	}
	if sBig <= sSmall {
		t.Errorf("snapshot did not grow with the model: %dB (big) <= %dB (small)", sBig, sSmall)
	}
	// The steady-state delta differs only in counter digits.
	if diff := dBig - dSmall; diff > 64 || diff < -64 {
		t.Errorf("steady-state delta grew with model size: %dB (big) vs %dB (small)", dBig, dSmall)
	}
}

// BenchmarkPeriodPersistence compares the per-period cost of the two
// checkpoint shapes on a converged session: full Snapshot (the old
// path — O(model)) vs PeriodDelta (the WAL path — O(change)).
func BenchmarkPeriodPersistence(b *testing.B) {
	tasks, periods := feedPeriods(6)
	mk := func(b *testing.B) *Online {
		o, err := NewOnline(tasks, Options{Bound: 32})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range periods {
			if err := o.AddPeriod(p); err != nil {
				b.Fatal(err)
			}
		}
		// Re-anchor the delta baseline after the warm-up feed.
		if _, err := o.Snapshot(); err != nil {
			b.Fatal(err)
		}
		return o
	}
	p := periods[len(periods)-1]
	b.Run("snapshot", func(b *testing.B) {
		o := mk(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := o.AddPeriod(p); err != nil {
				b.Fatal(err)
			}
			snap, err := o.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := json.Marshal(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		o := mk(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := o.AddPeriod(p); err != nil {
				b.Fatal(err)
			}
			d, err := o.PeriodDelta()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := json.Marshal(d); err != nil {
				b.Fatal(err)
			}
		}
	})
}
