// Package modelgen automatically generates formal dependency models of
// black-box periodic real-time systems from bus execution traces.
//
// It is a from-scratch reproduction of Feng, Wang, Zheng, Kanajan and
// Seshia, "Automatic Model Generation for Black Box Real-Time Systems"
// (DATE 2007): a version-space generalization algorithm that learns,
// from timestamped task and message events, a dependency function
// d : T×T → V over the seven-value lattice
//
//	‖   →   ←   ↔   →?   ←?   ↔?
//
// describing which tasks determine or depend on which others within a
// period. Both the exact (exponential) algorithm and the bounded
// heuristic with least-upper-bound merging are provided, together with
// the substrates the paper's evaluation needs: a control-flow design
// model, an OSEK-style fixed-priority scheduler, a CAN bus model, a
// discrete-event trace simulator, property verification on learned
// models, and pessimistic vs dependency-informed end-to-end latency
// analysis.
//
// # Quick start
//
//	tr := modelgen.PaperTrace()                   // Figure 2 of the paper
//	res, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{})
//	if err != nil { ... }
//	fmt.Println(res.LUB.Table())                  // the paper's dLUB
//
// To learn from your own logs, build a Trace with NewTraceBuilder (or
// parse the text format with ReadTrace) and call Learn with a bound
// suited to your trace size. See the examples directory for complete
// programs and EXPERIMENTS.md for the reproduction of every table and
// figure in the paper.
package modelgen
