package learner

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// replaySeed replays one differential case in isolation: every case
// logs its seed on failure, and
//
//	go test -run TestDifferentialBatchOnlineParallel -modelgen.seed=<seed>
//
// re-runs exactly that model, trace and mode sweep.
var replaySeed = flag.Int64("modelgen.seed", -1, "replay the differential case with this seed only")

// resultSig collapses a learning result into a comparable signature:
// every hypothesis key in order, the LUB, and the convergence flag.
func resultSig(r *Result) []string {
	sig := make([]string, 0, len(r.Hypotheses)+2)
	for _, d := range r.Hypotheses {
		sig = append(sig, d.Key())
	}
	sig = append(sig, "LUB:"+r.LUB.Key(), fmt.Sprintf("converged:%v", r.Converged))
	return sig
}

// replayOnline feeds the trace period by period through an Online
// session and returns its result.
func replayOnline(t *testing.T, tr *trace.Trace, opt Options) *Result {
	t.Helper()
	o, err := NewOnline(tr.Tasks, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDifferentialBatchOnlineParallel is the cross-front-end property
// test: over ~200 randomized simulated traces, batch Learn, the
// incremental Online session and the parallel engine (Workers 4 and
// 8) must produce identical hypothesis sets, in both the bounded and
// — where tractable — the exact mode. This is the end-to-end check
// that the engine extraction changed structure, not behaviour.
func TestDifferentialBatchOnlineParallel(t *testing.T) {
	if *replaySeed >= 0 {
		runDifferentialCase(t, *replaySeed)
		return
	}
	if testing.Short() {
		t.Skip("differential property test is slow")
	}
	cases := 0
	exactCases := 0
	for iter := int64(0); cases < 200; iter++ {
		c, e := runDifferentialCase(t, differentialBaseSeed+iter)
		cases += c
		exactCases += e
	}
	if exactCases < 50 {
		t.Errorf("only %d exact-mode cases ran; the differential suite should cover both modes", exactCases)
	}
}

// differentialBaseSeed offsets case seeds so a replayed seed is
// self-identifying (no collision with other suites' small seeds).
const differentialBaseSeed = 1701_000_000

// runDifferentialCase runs one differential case. All randomness —
// model shape and simulator schedule — derives from the single seed,
// so a failure is replayable in isolation via -modelgen.seed. Returns
// how many (case, exact-mode case) quota units the seed contributed.
func runDifferentialCase(t *testing.T, seed int64) (cases, exactCases int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s\nreplay: go test -run TestDifferentialBatchOnlineParallel -modelgen.seed=%d",
			seed, fmt.Sprintf(format, args...), seed)
	}
	rng := rand.New(rand.NewSource(seed))
	var m *model.Model
	switch seed % 8 {
	case 0:
		m = model.Figure1()
	case 1:
		m = model.GMStyleLite()
	default:
		opt := model.DefaultRandomOptions()
		opt.Layers = 2 + rng.Intn(2)
		opt.TasksPerLayer = 1 + rng.Intn(2)
		opt.EdgeProb = 0.3 + rng.Float64()*0.6
		m = model.RandomModel(rng, opt)
	}
	out, err := sim.Run(m, sim.Options{Periods: 3 + rng.Intn(4), Seed: seed})
	if err != nil {
		fail("sim: %v", err)
	}
	tr := out.Trace

	// Exact and bounded; the exact mode is capped so an adversarial
	// random trace cannot blow up the suite, and a capped-out case
	// simply doesn't count towards the quota.
	for _, bound := range []int{0, 6} {
		opt := Options{Bound: bound, MaxHypotheses: 2000}
		base, err := Learn(tr, opt)
		if errors.Is(err, ErrTooManyHypotheses) {
			continue
		}
		if err != nil {
			fail("bound %d: %v", bound, err)
		}
		want := resultSig(base)

		if got := resultSig(replayOnline(t, tr, opt)); !reflect.DeepEqual(got, want) {
			fail("bound %d: online diverges from batch:\n got %v\nwant %v", bound, got, want)
		}
		for _, workers := range []int{4, 8} {
			popt := opt
			popt.Workers = workers
			par, err := Learn(tr, popt)
			if err != nil {
				fail("bound %d workers %d: %v", bound, workers, err)
			}
			if got := resultSig(par); !reflect.DeepEqual(got, want) {
				fail("bound %d workers %d: parallel diverges:\n got %v\nwant %v", bound, workers, got, want)
			}
			if !reflect.DeepEqual(par.Stats.PeriodLive, base.Stats.PeriodLive) ||
				par.Stats.Children != base.Stats.Children ||
				par.Stats.Merges != base.Stats.Merges {
				fail("bound %d workers %d: stats diverge: %+v vs %+v", bound, workers, par.Stats, base.Stats)
			}
		}
		cases++
		if bound == 0 {
			exactCases++
		}
	}
	return cases, exactCases
}

// TestDifferentialPinnedFigure2 pins the paper's worked example: for
// each mode (exact, and two heuristic bounds) the Figure 2 trace must
// produce one fixed derivation through every front end and worker
// count, and every mode must agree on the recommended answer, the
// least upper bound of Table 1.
func TestDifferentialPinnedFigure2(t *testing.T) {
	tr := trace.PaperFigure2()
	const wantLUB = "LUB:0441200120012550"
	for _, bound := range []int{0, 2, 8} {
		base, err := Learn(tr, Options{Bound: bound})
		if err != nil {
			t.Fatal(err)
		}
		want := resultSig(base)
		if got := want[len(want)-2]; got != wantLUB {
			t.Errorf("bound %d: LUB = %s, want the pinned %s", bound, got, wantLUB)
		}
		for _, workers := range []int{1, 4, 8} {
			opt := Options{Bound: bound, Workers: workers}
			r, err := Learn(tr, opt)
			if err != nil {
				t.Fatalf("bound %d workers %d: %v", bound, workers, err)
			}
			if got := resultSig(r); !reflect.DeepEqual(got, want) {
				t.Errorf("bound %d workers %d: diverges from the pinned derivation:\n got %v\nwant %v",
					bound, workers, got, want)
			}
			if got := resultSig(replayOnline(t, tr, opt)); !reflect.DeepEqual(got, want) {
				t.Errorf("bound %d workers %d: online diverges from the pinned derivation", bound, workers)
			}
		}
	}
}

// TestOnlineVerifyRequiresRetention: an online session asked to
// verify its results without a retained window must say so instead of
// silently skipping verification (the pre-engine behaviour).
func TestOnlineVerifyRequiresRetention(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{VerifyResults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Result(); !errors.Is(err, ErrVerifyUnavailable) {
		t.Fatalf("Result error = %v, want ErrVerifyUnavailable", err)
	}
}

// TestOnlineVerifyAgainstRetainedWindow: with a window covering the
// whole trace, online verification matches batch verification; the
// ring buffer reports its fill level and wraps without corrupting the
// reassembled trace.
func TestOnlineVerifyAgainstRetainedWindow(t *testing.T) {
	tr := trace.PaperFigure2()
	batch, err := Learn(tr, Options{VerifyResults: true})
	if err != nil {
		t.Fatal(err)
	}

	opt := Options{VerifyResults: true, RetainPeriods: len(tr.Periods)}
	o, err := NewOnline(tr.Tasks, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		if want := min(i+1, opt.RetainPeriods); o.RetainedPeriods() != want {
			t.Fatalf("after period %d: RetainedPeriods = %d, want %d", i, o.RetainedPeriods(), want)
		}
	}
	r, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultSig(r), resultSig(batch); !reflect.DeepEqual(got, want) {
		t.Errorf("verified online result diverges from batch:\n got %v\nwant %v", got, want)
	}

	// A wrapping window: the buffer holds only the most recent two
	// periods, verification runs against that suffix. The exact
	// algorithm's hypotheses match every period, so nothing drops and
	// the hypothesis set is unchanged.
	small, err := NewOnline(tr.Tasks, Options{VerifyResults: true, RetainPeriods: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := small.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	if small.RetainedPeriods() != 2 {
		t.Fatalf("RetainedPeriods = %d, want 2 after wrap", small.RetainedPeriods())
	}
	rs, err := small.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultSig(rs), resultSig(batch); !reflect.DeepEqual(got, want) {
		t.Errorf("wrapped-window result diverges:\n got %v\nwant %v", got, want)
	}
	if rs.Stats.DroppedUnsound != 0 {
		t.Errorf("DroppedUnsound = %d, want 0 on the exact algorithm", rs.Stats.DroppedUnsound)
	}
}

// TestOnlineRetentionIsDeepCopy: mutating a period after feeding it
// to the session must not corrupt the retained window.
func TestOnlineRetentionIsDeepCopy(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{VerifyResults: true, RetainPeriods: len(tr.Periods)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		cp := p.Clone()
		if err := o.AddPeriod(cp); err != nil {
			t.Fatal(err)
		}
		// Vandalize the caller's copy after the fact.
		for i := range cp.Msgs {
			cp.Msgs[i].ID = "corrupted"
		}
	}
	r, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := Learn(tr, Options{VerifyResults: true})
	if got, want := resultSig(r), resultSig(batch); !reflect.DeepEqual(got, want) {
		t.Errorf("retained window shares memory with caller periods:\n got %v\nwant %v", got, want)
	}
}
