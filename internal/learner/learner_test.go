package learner

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// randomTrace builds a structurally valid random trace: each period
// executes a random non-empty subset of tasks sequentially, and random
// messages are inserted in the gaps between a sender that already
// finished and a receiver that starts later. Such traces always have a
// consistent ground-truth assignment, so learning must succeed.
func randomTrace(r *rand.Rand, nTasks, nPeriods, maxMsgs int) *trace.Trace {
	names := make([]string, nTasks)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i+1)
	}
	b := trace.NewBuilder(names)
	clock := int64(0)
	for p := 0; p < nPeriods; p++ {
		b.StartPeriod()
		// Random execution order over a random subset.
		perm := r.Perm(nTasks)
		count := 1 + r.Intn(nTasks)
		var ends []struct {
			idx int
			end int64
		}
		starts := make(map[int]int64)
		for k := 0; k < count; k++ {
			i := perm[k]
			start := clock
			end := start + 10
			b.Exec(names[i], start, end)
			starts[i] = start
			ends = append(ends, struct {
				idx int
				end int64
			}{i, end})
			clock = end + 20 // gap for messages
		}
		// Messages: pick sender among finished tasks, receiver among
		// later-starting ones; at most one message per ordered pair.
		used := map[[2]int]bool{}
		nm := r.Intn(maxMsgs + 1)
		for m := 0; m < nm; m++ {
			si := r.Intn(len(ends))
			s := ends[si]
			var rcv []int
			for idx, st := range starts {
				if st > s.end && idx != s.idx && !used[[2]int{s.idx, idx}] {
					rcv = append(rcv, idx)
				}
			}
			if len(rcv) == 0 {
				continue
			}
			rc := rcv[r.Intn(len(rcv))]
			used[[2]int{s.idx, rc}] = true
			// Transmission inside the gap right after the sender ends.
			rise := s.end + 1 + int64(r.Intn(3))
			fall := rise + 2
			if fall >= starts[rc] {
				continue
			}
			b.Msg(fmt.Sprintf("p%dm%d", p, m), rise, fall)
		}
		clock += 100
	}
	return b.MustBuild()
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New([]string{"a", "b"})
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Hypotheses) != 1 {
		t.Fatalf("result = %d hypotheses", len(res.Hypotheses))
	}
	if !res.Hypotheses[0].Equal(depfunc.Bottom(res.TaskSet)) {
		t.Error("empty trace should yield d-bottom")
	}
}

func TestMessageWithoutSender(t *testing.T) {
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Msg("m", 0, 1).Exec("a", 2, 3).Exec("b", 4, 5).
		MustBuild()
	_, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("err = %v, want ErrNoHypothesis", err)
	}
}

func TestMessageWithoutReceiver(t *testing.T) {
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 1).Exec("b", 2, 3).Msg("m", 10, 11).
		MustBuild()
	_, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("err = %v, want ErrNoHypothesis", err)
	}
}

func TestTwoMessagesOnePairDies(t *testing.T) {
	// Two messages whose only candidate is the same ordered pair:
	// violates at-most-one-message-per-pair, so the set empties.
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 1).Msg("m1", 2, 3).Msg("m2", 4, 5).Exec("b", 6, 7).
		MustBuild()
	_, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("err = %v, want ErrNoHypothesis", err)
	}
}

func TestMaxHypothesesAbort(t *testing.T) {
	tr := trace.PaperFigure2()
	_, err := Learn(tr, Options{MaxHypotheses: 1})
	if !errors.Is(err, ErrTooManyHypotheses) {
		t.Fatalf("err = %v, want ErrTooManyHypotheses", err)
	}
}

func TestBadTaskSet(t *testing.T) {
	tr := trace.New([]string{"a", "a"})
	if _, err := LearnExact(tr, depfunc.CandidatePolicy{}); err == nil {
		t.Fatal("duplicate task names accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	tr := trace.PaperFigure2()
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Periods != 3 || s.Messages != 8 {
		t.Errorf("Periods=%d Messages=%d", s.Periods, s.Messages)
	}
	if s.Peak < len(res.Hypotheses) {
		t.Errorf("Peak=%d < final %d", s.Peak, len(res.Hypotheses))
	}
	if s.Children == 0 {
		t.Error("no children counted")
	}
	if s.Merges != 0 {
		t.Errorf("exact run recorded %d merges", s.Merges)
	}
	if s.Relaxations == 0 {
		t.Error("the paper example requires relaxations (e.g. d(t1,t2) -> ->?)")
	}
}

func TestHeuristicRespectsBound(t *testing.T) {
	tr := trace.PaperFigure2()
	for _, b := range []int{1, 2, 3, 5, 8} {
		res, err := LearnBounded(tr, b, depfunc.CandidatePolicy{})
		if err != nil {
			t.Fatalf("bound %d: %v", b, err)
		}
		if res.Stats.Peak > b {
			t.Errorf("bound %d: peak working set %d exceeds bound", b, res.Stats.Peak)
		}
		if len(res.Hypotheses) > b {
			t.Errorf("bound %d: %d final hypotheses", b, len(res.Hypotheses))
		}
	}
}

// TestHeuristicSoundOnPaperExample: Theorem 2 for the heuristic — all
// returned hypotheses match the full trace, for every bound.
func TestHeuristicSoundOnPaperExample(t *testing.T) {
	tr := trace.PaperFigure2()
	for b := 1; b <= 10; b++ {
		res, err := LearnBounded(tr, b, depfunc.CandidatePolicy{})
		if err != nil {
			t.Fatalf("bound %d: %v", b, err)
		}
		for i, d := range res.Hypotheses {
			if ok, p := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
				t.Errorf("bound %d: hypothesis %d fails period %d:\n%s", b, i, p, d.Table())
			}
		}
	}
}

// TestConvergenceLemmaPaperExample: the paper's Lemma — the bound-1
// result equals the least upper bound of the exact result set — holds
// on the worked example; and the bound-b LUBs agree with it for every
// bound (Theorem 4's underlying invariant on this trace).
func TestConvergenceLemmaPaperExample(t *testing.T) {
	tr := trace.PaperFigure2()
	exact, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := LearnBounded(tr, 1, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !one.Converged {
		t.Fatal("bound 1 should converge to a single hypothesis")
	}
	if !one.Hypotheses[0].Equal(exact.LUB) {
		t.Errorf("bound-1 result != exact LUB:\ngot:\n%s\nwant:\n%s",
			one.Hypotheses[0].Table(), exact.LUB.Table())
	}
	for b := 2; b <= 12; b++ {
		res, err := LearnBounded(tr, b, depfunc.CandidatePolicy{})
		if err != nil {
			t.Fatalf("bound %d: %v", b, err)
		}
		if !res.LUB.Equal(exact.LUB) {
			t.Errorf("bound %d: LUB differs from exact LUB:\ngot:\n%s\nwant:\n%s",
				b, res.LUB.Table(), exact.LUB.Table())
		}
	}
}

// TestLargeBoundEqualsExact: when the bound exceeds the exact
// algorithm's peak working-set size, no merge ever fires and the
// heuristic returns exactly the exact result.
func TestLargeBoundEqualsExact(t *testing.T) {
	tr := trace.PaperFigure2()
	exact, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LearnBounded(tr, exact.Stats.Peak+1, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merges != 0 {
		t.Errorf("merges = %d, want 0", res.Stats.Merges)
	}
	if len(res.Hypotheses) != len(exact.Hypotheses) {
		t.Fatalf("got %d hypotheses, want %d", len(res.Hypotheses), len(exact.Hypotheses))
	}
	for i := range res.Hypotheses {
		if !res.Hypotheses[i].Equal(exact.Hypotheses[i]) {
			t.Errorf("hypothesis %d differs", i)
		}
	}
}

// TestCorrectnessTheoremRandom: Theorem 2 on random traces, exact and
// bounded variants.
func TestCorrectnessTheoremRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 30; iter++ {
		tr := randomTrace(r, 3+r.Intn(3), 2+r.Intn(4), 3)
		for _, bound := range []int{0, 1, 4} {
			res, err := Learn(tr, Options{Bound: bound})
			if err != nil {
				t.Fatalf("iter %d bound %d: %v\ntrace:\n%s", iter, bound, err, tr)
			}
			for i, d := range res.Hypotheses {
				if ok, p := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
					t.Errorf("iter %d bound %d: hypothesis %d fails period %d\n%s\ntrace:\n%s",
						iter, bound, i, p, d.Table(), tr)
				}
			}
		}
	}
}

// TestHeuristicDominatesExactRandom: the heuristic is conservative in
// the precise sense that every returned hypothesis is an upper bound
// of (at least) one exact most-specific hypothesis. (The stronger
// claim that the heuristic LUB bounds the exact LUB does not hold in
// general: end-of-period redundancy pruning can discard a merged
// hypothesis in favour of a more specific unmerged one, losing entries
// the exact LUB retains. See EXPERIMENTS.md.)
func TestHeuristicDominatesExactRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		tr := randomTrace(r, 3+r.Intn(2), 2+r.Intn(3), 2)
		exact, err := LearnExact(tr, depfunc.CandidatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		for _, bound := range []int{1, 2, 4} {
			res, err := LearnBounded(tr, bound, depfunc.CandidatePolicy{})
			if err != nil {
				t.Fatalf("iter %d bound %d: %v", iter, bound, err)
			}
			for i, h := range res.Hypotheses {
				dominates := false
				for _, e := range exact.Hypotheses {
					if e.Leq(h) {
						dominates = true
						break
					}
				}
				if !dominates {
					t.Errorf("iter %d bound %d: heuristic hypothesis %d dominates no exact hypothesis\n%s\ntrace:\n%s",
						iter, bound, i, h.Table(), tr)
				}
			}
		}
	}
}

// TestCompletenessTwoTasks: Theorem 3 checked exhaustively for a
// two-task system — every dependency function that matches the trace
// is more general than (or equal to) some returned hypothesis.
func TestCompletenessTwoTasks(t *testing.T) {
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 10).Msg("m1", 11, 12).Exec("b", 14, 20).
		StartPeriod().Exec("a", 100, 110).
		MustBuild()
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.TaskSet
	for _, vab := range lattice.Values() {
		for _, vba := range lattice.Values() {
			d := depfunc.Bottom(ts)
			d.Set(0, 1, vab)
			d.Set(1, 0, vba)
			ok, _ := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{})
			if !ok {
				continue
			}
			covered := false
			for _, h := range res.Hypotheses {
				if h.Leq(d) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("matching d(a,b)=%v d(b,a)=%v not covered by any returned hypothesis", vab, vba)
			}
		}
	}
}

// TestCompletenessTwoTasksMutual: same exhaustive check on a trace
// with messages in both directions across periods.
func TestCompletenessTwoTasksMutual(t *testing.T) {
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 10).Msg("m1", 11, 12).Exec("b", 14, 20).
		StartPeriod().Exec("b", 100, 110).Msg("m2", 111, 112).Exec("a", 114, 120).
		MustBuild()
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.TaskSet
	for _, vab := range lattice.Values() {
		for _, vba := range lattice.Values() {
			d := depfunc.Bottom(ts)
			d.Set(0, 1, vab)
			d.Set(1, 0, vba)
			if ok, _ := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
				continue
			}
			covered := false
			for _, h := range res.Hypotheses {
				if h.Leq(d) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("matching d(a,b)=%v d(b,a)=%v not covered", vab, vba)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	tr := trace.PaperFigure2()
	run := func(bound int) string {
		res, err := Learn(tr, Options{Bound: bound})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, d := range res.Hypotheses {
			out += d.Key() + "\n"
		}
		return out
	}
	for _, b := range []int{0, 1, 3} {
		if run(b) != run(b) {
			t.Errorf("bound %d: nondeterministic results", b)
		}
	}
}

func TestVerifyResultsKeepsExact(t *testing.T) {
	tr := trace.PaperFigure2()
	res, err := Learn(tr, Options{VerifyResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DroppedUnsound != 0 {
		t.Errorf("exact run dropped %d hypotheses", res.Stats.DroppedUnsound)
	}
	if len(res.Hypotheses) != 5 {
		t.Errorf("got %d hypotheses, want 5", len(res.Hypotheses))
	}
}

func TestResultsSortedByWeight(t *testing.T) {
	res, err := LearnExact(trace.PaperFigure2(), depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Hypotheses); i++ {
		if res.Hypotheses[i-1].Weight() > res.Hypotheses[i].Weight() {
			t.Fatal("hypotheses not sorted by weight")
		}
	}
}

// TestEagerPruneAblation: the strict reading of condition 4 (eager
// per-parent minimality) trades completeness for speed: it returns
// fewer hypotheses and never more work than the default.
func TestEagerPruneAblation(t *testing.T) {
	tr := trace.PaperFigure2()
	def, err := Learn(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Learn(tr, Options{EagerPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Stats.Children > def.Stats.Children {
		t.Errorf("eager created more children (%d) than default (%d)",
			eager.Stats.Children, def.Stats.Children)
	}
	// Eager results are still sound.
	for i, d := range eager.Hypotheses {
		if ok, p := depfunc.MatchTrace(d, tr, depfunc.CandidatePolicy{}); !ok {
			t.Errorf("eager hypothesis %d fails period %d", i, p)
		}
	}
}

// TestHistoryAwareStamps pins the subtlety that makes d81 come out
// right: a dependency first observed in period 2 between tasks whose
// co-execution was already refuted by period 1 must be stamped
// conditionally.
func TestHistoryAwareStamps(t *testing.T) {
	// Period 1: only a runs. Period 2: a sends to b.
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Exec("a", 0, 10).
		StartPeriod().Exec("a", 100, 110).Msg("m", 111, 112).Exec("b", 114, 120).
		MustBuild()
	res, err := LearnExact(tr, depfunc.CandidatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("expected convergence, got %d hypotheses", len(res.Hypotheses))
	}
	d := res.Hypotheses[0]
	if got := d.MustGet("a", "b"); got != lattice.FwdMaybe {
		t.Errorf("d(a,b) = %v, want ->? (period 1 refuted ->)", got)
	}
	// b never ran without a, so the backward entry stays firm.
	if got := d.MustGet("b", "a"); got != lattice.Bwd {
		t.Errorf("d(b,a) = %v, want <-", got)
	}
}
