package lattice

import "math/bits"

// Packed representation of the seven-value lattice: 3 bits per entry,
// PackedLanes entries per uint64 word, chosen so that the lattice
// operations on a whole word of entries are a handful of bitwise
// instructions instead of PackedLanes table lookups (SWAR —
// SIMD-within-a-register).
//
// Each value is encoded as a 3-bit characteristic code over the
// "dependency components" of the value:
//
//	bit 0 (F)  the value admits a forward dependency  (→ component)
//	bit 1 (B)  the value admits a backward dependency (← component)
//	bit 2 (Q)  the dependency is conditional          (? component)
//
//	‖    000    →    001    ←    010    ↔    011
//	→?   101    ←?   110    ↔?   111
//
// Code 100 (conditional with neither component) encodes no lattice
// value and never arises from the kernels below. The encoding is
// chosen so that
//
//   - Join is bitwise OR: v1 ⊔ v2 admits a component iff either
//     operand does, and is conditional iff either operand is. That
//     this matches the Hasse diagram exhaustively is pinned by the
//     packed property tests and re-derived from the covering relation
//     at init time below.
//   - Meet is bitwise AND followed by one correction: the Q bit is
//     cleared in lanes where no component survived (→? ⊓ ←? is ‖,
//     not the unused 100).
//   - The partial order is the subset order on codes: a ⊑ b iff
//     a|b == b, lane-wise.
//   - Level is the population count of the code, and the Definition-7
//     distance is Level², which makes the Definition-8 weight of a
//     whole word computable from three popcounts.
//
// The ordinal Value constants (Par..BiMaybe) remain the public
// representation; PackValue/UnpackValue convert at the boundary. The
// two happen to agree for 0..3, and codes 5..7 are the ordinal plus
// one, so both directions are a shift and an add — no table.
const (
	// PackedBits is the width of one packed lane.
	PackedBits = 3
	// PackedLanes is the number of lattice values per uint64 word.
	PackedLanes = 64 / PackedBits // 21 (the top bit of each word is unused)
	// laneMask selects one lane.
	laneMask = (1 << PackedBits) - 1
)

// packedM0 has bit 0 of every lane set (the F plane); shifting it left
// by one or two selects the B or Q plane.
const packedM0 uint64 = 0x1249249249249249 // bits 0,3,6,...,60

// usedLaneBits masks the bits of a word that belong to some lane
// (everything except the unused top bit).
const usedLaneBits uint64 = packedM0 | packedM0<<1 | packedM0<<2

// PackValue returns the 3-bit packed code of v. It does not validate;
// callers pass lattice values.
func PackValue(v Value) uint64 {
	return uint64(v) + uint64(v)>>2
}

// UnpackValue returns the lattice value of a packed code. The unused
// code 100 must not be passed (ValidPackedWord rejects it at decode
// boundaries).
func UnpackValue(code uint64) Value {
	return Value(code - code>>2)
}

// PackedWords returns the number of uint64 words needed for n packed
// entries.
func PackedWords(n int) int { return (n + PackedLanes - 1) / PackedLanes }

// JoinWords returns the lane-wise least upper bound of two packed
// words: in this encoding the lattice join is exactly bitwise OR.
func JoinWords(a, b uint64) uint64 { return a | b }

// MeetWords returns the lane-wise greatest lower bound of two packed
// words: bitwise AND, then the Q bit is cleared in every lane whose F
// and B components both vanished (the →? ⊓ ←? = ‖ correction — the
// lattice is not distributive, so pure AND is off by exactly this
// case).
func MeetWords(a, b uint64) uint64 {
	r := a & b
	fb := (r | r>>1) & packedM0         // lane bit 0 set iff F or B survived
	return r &^ ((packedM0 &^ fb) << 2) // clear Q where neither did
}

// LeqWords reports whether every lane of a is ⊑ the corresponding
// lane of b: the packed order is the subset order on codes.
func LeqWords(a, b uint64) bool { return a|b == b }

// WeightWord returns the summed Definition-7 distance of every lane of
// w: Σ Level(lane)² where Level is the lane popcount. Using
// Level² = Level + 2·(pairs of set bits), the whole word reduces to
// four popcounts.
func WeightWord(w uint64) int {
	f := w & packedM0
	b := (w >> 1) & packedM0
	q := (w >> 2) & packedM0
	pairs := bits.OnesCount64(f&b) + bits.OnesCount64(f&q) + bits.OnesCount64(b&q)
	return bits.OnesCount64(w) + 2*pairs
}

// ValidPackedWord reports whether w is a well-formed packed word with
// the given number of occupied lanes: the unused top bit and all lanes
// past used are zero, and no occupied lane holds the non-value code
// 100. Decoders call it before trusting foreign bytes.
func ValidPackedWord(w uint64, used int) bool {
	if used < PackedLanes {
		if w>>(used*PackedBits) != 0 {
			return false
		}
	} else if w&^usedLaneBits != 0 {
		return false
	}
	// A lane is invalid iff its code is exactly 100: Q set, F and B
	// clear.
	q := (w >> 2) & packedM0
	fb := (w | w>>1) & packedM0
	return q&^fb == 0
}

func init() {
	// The SWAR kernels above hard-code the characteristic encoding;
	// re-derive their agreement with the table-driven operations (which
	// come from the covering relation) so a mistake in either cannot
	// survive package initialization.
	for a := Value(0); a < numValues; a++ {
		if UnpackValue(PackValue(a)) != a {
			panic("lattice: packed encoding is not injective")
		}
		for b := Value(0); b < numValues; b++ {
			pa, pb := PackValue(a), PackValue(b)
			if UnpackValue(JoinWords(pa, pb)&laneMask) != joinTable[a][b] {
				panic("lattice: packed join disagrees with the lattice join")
			}
			if UnpackValue(MeetWords(pa, pb)&laneMask) != meetTable[a][b] {
				panic("lattice: packed meet disagrees with the lattice meet")
			}
			if LeqWords(pa, pb) != leqTable[a][b] {
				panic("lattice: packed order disagrees with the lattice order")
			}
		}
		if WeightWord(PackValue(a)) != Distance(a) {
			panic("lattice: packed weight disagrees with Distance")
		}
	}
}
