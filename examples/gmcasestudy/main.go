// Command gmcasestudy reproduces the industrial case study of Section
// 3.4 on the synthetic 18-task GM-style controller: it simulates 27
// periods on the OSEK/CAN substrates, learns a dependency model from
// the bus trace with the bounded heuristic, renders the Figure-5 style
// dependency graph, and checks every qualitative property the paper
// reports — including the implicit Q–O dependency introduced by the
// infrastructure tasks rather than the design.
package main

import (
	"fmt"
	"log"
	"os"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	m := modelgen.GMStyleModel()
	out, err := modelgen.Simulate(m, modelgen.SimOptions{
		Periods: modelgen.CaseStudyPeriods,
		Seed:    modelgen.CaseStudySeed,
	})
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	st := out.Trace.Stats()
	fmt.Printf("Case-study trace: %d tasks, %d periods, %d messages, %d event pairs\n",
		len(out.Trace.Tasks), st.Periods, st.Messages, st.EventPairs)
	fmt.Println("(the paper reports 18 tasks, 27 periods, 330 messages, 700 event pairs)")
	fmt.Println()

	res, err := modelgen.LearnBounded(out.Trace, 32, modelgen.CaseStudyPolicy(false))
	if err != nil {
		log.Fatalf("learning failed: %v", err)
	}
	d := res.LUB
	fmt.Printf("Heuristic learner (bound 32): %d hypotheses, peak working set %d, %d merges\n\n",
		len(res.Hypotheses), res.Stats.Peak, res.Stats.Merges)

	fmt.Println("Properties the paper confirms or discovers:")
	check := func(label string, ok bool) {
		mark := "FAIL"
		if ok {
			mark = "ok"
		}
		fmt.Printf("  [%-4s] %s\n", mark, label)
	}
	disj := modelgen.DisjunctionNodes(d)
	conj := modelgen.ConjunctionNodes(d)
	check("tasks A and B are disjunction nodes (known in advance)",
		contains(disj, "A") && contains(disj, "B"))
	check("tasks H, P and Q are conjunction nodes (learned)",
		contains(conj, "H") && contains(conj, "P") && contains(conj, "Q"))
	check("no matter which mode A chooses, L must execute: d(A,L) = ->",
		modelgen.Determines(d, "A", "L"))
	check("no matter which mode B chooses, M must execute: d(B,M) = ->",
		modelgen.Determines(d, "B", "M"))
	qo := d.MustGet("Q", "O")
	check(fmt.Sprintf("implicit data dependency between Q and O: d(Q,O) = %s", qo),
		qo == modelgen.Bwd || qo == modelgen.BwdMaybe)
	fmt.Println()
	fmt.Println("The Q-O dependency is NOT a design edge: it comes from the")
	fmt.Println("interaction between the functional tasks and the infrastructure")
	fmt.Println("tasks (the CAN bus scheduler and the OSEK scheduler).")
	fmt.Println()

	rep := modelgen.Analyze(d)
	fmt.Printf("State-space impact: %.0f%% of ordered task pairs have a known\n", rep.OrderingKnown*100)
	fmt.Printf("ordering relation (%d firm, %d conditional of %d pairs); the\n",
		rep.Firm, rep.Conditional, rep.TotalPairs)
	fmt.Println("pessimistic baseline assumes all pairs are independent.")
	fmt.Println()

	// Make the model-checking claim concrete: count the reachable
	// completion states a reachability analysis would explore.
	exp, err := modelgen.ExploreStateSpace(d)
	if err != nil {
		log.Fatalf("reachability: %v", err)
	}
	fmt.Printf("Reachability state space: %d states instead of the pessimistic\n", exp.States)
	fmt.Printf("2^%d = %d — a %.1f%% reduction for model checking.\n",
		exp.Tasks, exp.Baseline, exp.Reduction*100)
	proved, witness, err := modelgen.ProveNeverCompletesBefore(d, "Q", "O")
	if err != nil {
		log.Fatalf("reachability query: %v", err)
	}
	if proved {
		fmt.Println("Proved by reachability: Q can never complete before O.")
	} else {
		fmt.Printf("Q-before-O reachable via %v\n", witness)
	}
	fmt.Println()

	dotFile := "figure5.dot"
	if err := os.WriteFile(dotFile, []byte(d.DOT("figure5")), 0o644); err != nil {
		log.Fatalf("writing %s: %v", dotFile, err)
	}
	fmt.Printf("Dependency graph (Figure 5 style) written to %s\n", dotFile)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
