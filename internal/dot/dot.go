// Package dot is a minimal emitter for the Graphviz DOT language, used
// to render design models and learned dependency graphs (the paper's
// Figures 1, 4 and 5).
package dot

import (
	"fmt"
	"sort"
	"strings"
)

// Graph accumulates nodes and edges of a directed graph.
type Graph struct {
	name  string
	attrs []string
	nodes map[string][]string // node -> attribute list
	order []string            // node insertion order
	edges []edge
}

type edge struct {
	from, to string
	attrs    []string
}

// NewGraph returns an empty digraph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{name: name, nodes: map[string][]string{}}
}

// Attr adds a graph-level attribute.
func (g *Graph) Attr(key, value string) *Graph {
	g.attrs = append(g.attrs, fmt.Sprintf("%s=%s", key, quote(value)))
	return g
}

// Node declares a node with optional key=value attribute pairs given
// as alternating strings. Re-declaring a node replaces its attributes.
func (g *Graph) Node(name string, kv ...string) *Graph {
	if _, ok := g.nodes[name]; !ok {
		g.order = append(g.order, name)
	}
	g.nodes[name] = pairs(kv)
	return g
}

// Edge adds a directed edge with optional attribute pairs.
func (g *Graph) Edge(from, to string, kv ...string) *Graph {
	for _, n := range []string{from, to} {
		if _, ok := g.nodes[n]; !ok {
			g.order = append(g.order, n)
			g.nodes[n] = nil
		}
	}
	g.edges = append(g.edges, edge{from: from, to: to, attrs: pairs(kv)})
	return g
}

func pairs(kv []string) []string {
	var out []string
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, fmt.Sprintf("%s=%s", kv[i], quote(kv[i+1])))
	}
	return out
}

func quote(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(s) + `"`
}

// String renders the graph in DOT syntax. Node and edge order is
// deterministic: nodes in insertion order, edges in insertion order.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", quote(g.name))
	attrs := append([]string(nil), g.attrs...)
	sort.Strings(attrs)
	for _, a := range attrs {
		fmt.Fprintf(&sb, "  %s;\n", a)
	}
	for _, n := range g.order {
		if as := g.nodes[n]; len(as) > 0 {
			fmt.Fprintf(&sb, "  %s [%s];\n", quote(n), strings.Join(as, ", "))
		} else {
			fmt.Fprintf(&sb, "  %s;\n", quote(n))
		}
	}
	for _, e := range g.edges {
		if len(e.attrs) > 0 {
			fmt.Fprintf(&sb, "  %s -> %s [%s];\n", quote(e.from), quote(e.to), strings.Join(e.attrs, ", "))
		} else {
			fmt.Fprintf(&sb, "  %s -> %s;\n", quote(e.from), quote(e.to))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
