package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/blackbox-rt/modelgen/internal/drift"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// queuedPeriod is one unit of ingest→owner handoff: the cut period
// plus the telemetry needed to measure and trace its trip through the
// queue. The SpanContext is a value; with tracing disabled it is zero
// and the handoff stays allocation-free.
type queuedPeriod struct {
	p   *trace.Period
	enq time.Time
	ctx obs.SpanContext // the ingest span, parent of learn_period
}

// phaseBridge converts the engine's SpanEnd phase events
// (candidates/generalize/postprocess) into trace spans parented under
// the current learn_period span. The owner goroutine stores the
// parent before AddPeriod; engine workers may emit OnSpan
// concurrently, hence the atomic.
type phaseBridge struct {
	obs.NopObserver
	tracer *obs.Tracer
	parent atomic.Value // obs.SpanContext
}

func (b *phaseBridge) setParent(sc obs.SpanContext) { b.parent.Store(sc) }

func (b *phaseBridge) OnSpan(e obs.SpanEnd) {
	sc, _ := b.parent.Load().(obs.SpanContext)
	if !sc.Sampled {
		return
	}
	d := time.Duration(e.ElapsedNS)
	b.tracer.RecordSpan(sc, e.Phase, time.Now().Add(-d), d)
}

// ErrStreamClosed is returned by queries against a stream whose owner
// goroutine has exited (deleted or server shut down).
var ErrStreamClosed = errors.New("serve: stream closed")

// stream is one multiplexed learning session. Concurrency contract:
//
//   - The learner is touched ONLY by the owner goroutine (run); the
//     HTTP layer talks to it through the bounded period queue and the
//     closure request channel. No lock ever guards learner state.
//   - The ingest parser is guarded by feedMu and advanced
//     clone-and-commit, so a shed or failed batch leaves no trace.
//   - dead / periodsCut / shed are atomics readable from any handler.
type stream struct {
	id   string
	info StreamInfo
	opt  learner.Options

	feedMu sync.Mutex
	parser *parser

	queue   chan queuedPeriod
	reqs    chan func(*learner.Online)
	closing chan struct{} // closed once by close() -> owner drains and exits
	done    chan struct{} // closed by the owner on exit

	closeOnce sync.Once
	dead      atomic.Pointer[error] // sticky learner error
	shed      atomic.Int64
	cut       atomic.Int64 // periods queued by ingest

	// Introspection atomics for /debug/streams, written by the owner.
	liveWS     atomic.Int64 // working-set size after the last period
	lastPeriod atomic.Int64 // periods learned
	ckptUnixNS atomic.Int64 // wall time of the last successful checkpoint

	// Drift-monitor introspection atomics (valid only when mon != nil).
	genA      atomic.Int64  // model generation
	streakA   atomic.Int64  // stability streak
	lastCPA   atomic.Int64  // last detected change point
	ambigBits atomic.Uint64 // ambiguity ratio as math.Float64bits

	// Tracing (nil tracer disables; the hot path then allocates
	// nothing extra).
	tracer *obs.Tracer
	bridge *phaseBridge

	// Owner-goroutine state (no synchronization needed).
	o              *learner.Online
	learned        int // periods consumed since process start
	sinceCheckp    int
	checkpointDir  string
	checkpointEach int

	// Drift monitoring (nil when the stream was created without it).
	// mon is owner-only; pendingDrift carries the alarm raised by the
	// verify hook during AddPeriod back to consume, which forks the
	// next model generation.
	mon          *drift.Monitor
	pendingDrift *drift.Event

	// Per-stream metric series, unregistered when the stream is
	// deleted.
	mQueueDepth  *obs.Gauge
	mPeriods     *obs.Counter
	mShed        *obs.Counter
	mDriftGen    *obs.Gauge      // modelgen_drift_generation{stream}
	mDriftStreak *obs.Gauge      // modelgen_drift_streak_periods{stream}
	mDriftAmbig  *obs.FloatGauge // modelgen_drift_ambiguity_ratio{stream}
	mDriftAlarms *obs.Counter    // modelgen_drift_alarms_total{stream}

	// Service-wide instruments shared by every stream (owned by the
	// Server; nil without a registry).
	mLatency        *obs.Histogram // serve_ingest_latency_seconds
	mOfferedLines   *obs.Counter   // serve_ingest_offered_lines_total
	mShedLines      *obs.Counter   // serve_ingest_shed_lines_total
	mPeriodsLearned *obs.Counter   // serve_periods_learned_total
	mAlarmPeriods   *obs.Counter   // serve_drift_alarm_periods_total
	mDriftLag       *obs.Histogram // modelgen_drift_detection_lag_periods
}

func (s *stream) deadErr() error {
	if p := s.dead.Load(); p != nil {
		return *p
	}
	return nil
}

// ingest parses the batch on a clone of the parser, then atomically
// either queues every cut period and commits the clone, or rejects
// the whole batch (shed=true on queue pressure) and commits nothing.
// parent is the request's ingest span context (zero when tracing is
// off); cut periods carry it into the owner's learn_period span.
func (s *stream) ingest(lines []string, parent obs.SpanContext) (resp IngestResponse, shed bool, err error) {
	if s.mOfferedLines != nil {
		s.mOfferedLines.Add(int64(len(lines)))
	}
	if err := s.deadErr(); err != nil {
		return resp, false, fmt.Errorf("serve: stream %s is dead: %w", s.id, err)
	}
	s.feedMu.Lock()
	defer s.feedMu.Unlock()

	cutSpan := s.tracer.StartSpan("period_cut", parent)
	cp := s.parser.clone()
	var periods []*trace.Period
	for _, line := range lines {
		ps, err := cp.feed(line)
		if err != nil {
			cutSpan.SetAttr("error", err.Error())
			cutSpan.End()
			return resp, false, err
		}
		periods = append(periods, ps...)
	}
	cutSpan.SetAttr("periods", strconv.Itoa(len(periods)))
	cutSpan.End()
	// Owner only drains the queue, so under feedMu the free-slot count
	// can only grow between this check and the sends below: the batch
	// either fits entirely or is shed entirely.
	if cap(s.queue)-len(s.queue) < len(periods) {
		s.shed.Add(1)
		if s.mShed != nil {
			s.mShed.Inc()
		}
		if s.mShedLines != nil {
			s.mShedLines.Add(int64(len(lines)))
		}
		return resp, true, fmt.Errorf("serve: stream %s ingest queue full (%d periods over %d free slots)",
			s.id, len(periods), cap(s.queue)-len(s.queue))
	}
	enq := time.Now()
	for _, p := range periods {
		select {
		case s.queue <- queuedPeriod{p: p, enq: enq, ctx: parent}:
		case <-s.done:
			return resp, false, ErrStreamClosed
		}
	}
	s.parser = cp
	s.cut.Add(int64(len(periods)))
	if s.mPeriods != nil {
		s.mPeriods.Add(int64(len(periods)))
	}
	if s.mQueueDepth != nil {
		s.mQueueDepth.Set(int64(len(s.queue)))
	}
	return IngestResponse{Lines: len(lines), Periods: len(periods), QueueDepth: len(s.queue)}, false, nil
}

// do runs fn on the owner goroutine and waits for it. The owner
// drains all already-queued periods first, so a query observes every
// period whose ingest request completed before the query began
// (read-your-writes for any single client).
func (s *stream) do(fn func(o *learner.Online)) error {
	ran := make(chan struct{})
	select {
	case s.reqs <- func(o *learner.Online) { fn(o); close(ran) }:
		<-ran
		return nil
	case <-s.done:
		return ErrStreamClosed
	}
}

// close asks the owner to drain and exit; safe to call repeatedly.
func (s *stream) close() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// run is the owner goroutine: the only code that touches s.o.
func (s *stream) run() {
	defer close(s.done)
	for {
		// Queue first: requests and shutdown never jump learning work
		// that is already buffered.
		select {
		case p := <-s.queue:
			s.consume(p)
			continue
		default:
		}
		select {
		case p := <-s.queue:
			s.consume(p)
		case req := <-s.reqs:
			s.drain()
			req(s.o)
		case <-s.closing:
			s.drain()
			if s.checkpointDir != "" && s.learned > 0 {
				_, _ = s.checkpoint() // best effort on the way out
			}
			return
		}
	}
}

func (s *stream) drain() {
	for {
		select {
		case p := <-s.queue:
			s.consume(p)
		default:
			if s.mQueueDepth != nil {
				s.mQueueDepth.Set(0)
			}
			return
		}
	}
}

func (s *stream) consume(qp queuedPeriod) {
	if s.deadErr() != nil {
		return // learner is sticky-dead; drop the backlog
	}
	sp := s.tracer.StartSpan("learn_period", qp.ctx)
	if s.bridge != nil {
		if sp != nil {
			s.bridge.setParent(sp.Context())
		} else {
			s.bridge.setParent(obs.SpanContext{})
		}
	}
	s.pendingDrift = nil
	err := s.o.AddPeriod(qp.p)
	if err != nil && s.mon != nil && errors.Is(err, learner.ErrNoHypothesis) {
		// A period no hypothesis can explain is the strongest drift
		// signal there is: with a monitor attached, treat it as a
		// forced change point and replay the period on the fresh
		// generation instead of killing the stream.
		if ferr := s.forkGeneration(s.mon.ForceAlarm(), sp); ferr != nil {
			err = ferr
		} else {
			s.pendingDrift = nil
			err = s.o.AddPeriod(qp.p)
		}
	}
	if err == nil && s.pendingDrift != nil {
		// The verify hook raised a detector alarm during AddPeriod.
		ev := s.pendingDrift
		s.pendingDrift = nil
		err = s.forkGeneration(ev, sp)
	}
	if sp != nil {
		sp.SetAttr("stream", s.id)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	if err != nil {
		e := err
		s.dead.Store(&e)
		return
	}
	s.learned++
	if s.mPeriodsLearned != nil {
		s.mPeriodsLearned.Inc()
	}
	s.publishDriftView()
	s.sinceCheckp++
	s.lastPeriod.Store(int64(s.learned))
	s.liveWS.Store(int64(s.o.WorkingSetSize()))
	if s.mLatency != nil {
		// Ingest→model-update latency: enqueue to committed learn.
		d := time.Since(qp.enq).Seconds()
		if sp != nil {
			s.mLatency.ObserveExemplar(d, sp.Context().TraceID.String(), time.Now())
		} else {
			s.mLatency.Observe(d)
		}
	}
	if s.mQueueDepth != nil {
		s.mQueueDepth.Set(int64(len(s.queue)))
	}
	if s.checkpointDir != "" && s.checkpointEach > 0 && s.sinceCheckp >= s.checkpointEach {
		_, _ = s.checkpoint() // periodic; failures retried next interval
	}
}

// forkGeneration retires the current learner after a change-point
// alarm and starts a fresh one for the monitor's new model
// generation, keeping the stream alive across regime changes. Owner
// goroutine only.
func (s *stream) forkGeneration(ev *drift.Event, sp *obs.TraceSpan) error {
	o, err := learner.NewOnline(s.info.Tasks, s.opt)
	if err != nil {
		return err
	}
	s.o = o
	if s.mDriftAlarms != nil {
		s.mDriftAlarms.Inc()
	}
	if s.mAlarmPeriods != nil {
		s.mAlarmPeriods.Inc()
	}
	if s.mDriftLag != nil {
		lag := float64(ev.Period - ev.ChangePoint)
		if ev.Forced {
			lag = 0 // the offending period itself raised the alarm
		}
		// The alarm path gets an exemplar: the trace of the request
		// whose period tripped the detector.
		if sp != nil {
			s.mDriftLag.ObserveExemplar(lag, sp.Context().TraceID.String(), time.Now())
		} else {
			s.mDriftLag.Observe(lag)
		}
	}
	if sp != nil {
		sp.SetAttr("drift_generation", strconv.Itoa(ev.Generation))
		sp.SetAttr("drift_change_point", strconv.Itoa(ev.ChangePoint))
	}
	return nil
}

// publishDriftView copies the monitor's headline numbers into the
// stream's atomics and gauges so /debug/streams and /metrics read
// them without disturbing the owner. Owner goroutine only.
func (s *stream) publishDriftView() {
	if s.mon == nil {
		return
	}
	gen, streak := int64(s.mon.Generation()), int64(s.mon.Streak())
	ambig := s.mon.AmbiguityRatio()
	s.genA.Store(gen)
	s.streakA.Store(streak)
	s.lastCPA.Store(int64(s.mon.LastChangePoint()))
	s.ambigBits.Store(math.Float64bits(ambig))
	if s.mDriftGen != nil {
		s.mDriftGen.Set(gen)
		s.mDriftStreak.Set(streak)
		s.mDriftAmbig.Set(ambig)
	}
}

// checkpointFile is the on-disk envelope around a learner snapshot:
// the serve-level identity and runtime knobs needed to reopen the
// stream. Ingest parser residue (an open period, candump sequence
// numbers) is deliberately not persisted — checkpoints are taken at
// period boundaries, and a client that was mid-period replays that
// period after a restart.
type checkpointFile struct {
	ServeVersion int               `json:"serve_version"`
	Info         StreamInfo        `json:"info"`
	Snapshot     *learner.Snapshot `json:"snapshot"`
	// Drift is the drift-monitor state of a drift-enabled stream.
	// Optional, so version-1 checkpoints from before drift monitoring
	// still restore.
	Drift *drift.State `json:"drift,omitempty"`
}

// serveVersion is the checkpoint envelope schema version.
const serveVersion = 1

// checkpoint writes the stream's current learner state to
// <dir>/<id>.json atomically (tmp + rename). Owner goroutine only.
func (s *stream) checkpoint() (string, error) {
	s.sinceCheckp = 0
	snap, err := s.o.Snapshot()
	if err != nil {
		return "", err
	}
	cf := &checkpointFile{ServeVersion: serveVersion, Info: s.info, Snapshot: snap}
	if s.mon != nil {
		st := s.mon.State()
		cf.Drift = &st
	}
	path := filepath.Join(s.checkpointDir, s.id+".json")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	s.ckptUnixNS.Store(time.Now().UnixNano())
	return path, nil
}

// removeCheckpoint deletes the stream's checkpoint file, if any.
func (s *stream) removeCheckpoint() {
	if s.checkpointDir != "" {
		_ = os.Remove(filepath.Join(s.checkpointDir, s.id+".json"))
	}
}
