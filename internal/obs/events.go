package obs

// Event is the union of the typed events an Observer receives. Every
// event type is a small value struct; events are passed by value so
// that observer calls never force heap allocation on the emitting
// path.
type Event interface {
	// Kind returns the stable schema name of the event ("period_start",
	// "hypothesis_merged", ...), used by the JSONL sink and the
	// Recorder's filtering helpers.
	Kind() string
}

// EngineStart opens a learning session: the period-engine
// configuration behind the run. Workers is the size of the bounded
// worker pool sharding the per-message hypothesis fan-out (1 =
// sequential), Bound the heuristic working-set bound (0 = exact).
// Emitted once per engine before its first period, by both the batch
// and the incremental front-ends.
type EngineStart struct {
	Workers int `json:"workers"`
	Bound   int `json:"bound"`
}

// PeriodStart opens one period of a learning run.
type PeriodStart struct {
	Period   int `json:"period"`
	Messages int `json:"messages"`
}

// MessageProcessed closes the generalization step for one message
// occurrence: Candidates is the size of the timing-feasible
// sender/receiver candidate set A_m, Live the working-set size after
// the step.
type MessageProcessed struct {
	Period     int    `json:"period"`
	Index      int    `json:"index"`
	ID         string `json:"id"`
	Candidates int    `json:"candidates"`
	Live       int    `json:"live"`
}

// HypothesisSpawned records one child hypothesis created by
// generalization (duplicate children are not reported, matching
// Stats.Children).
type HypothesisSpawned struct {
	Period int `json:"period"`
	Index  int `json:"index"`
	Weight int `json:"weight"`
}

// HypothesisMerged records one least-upper-bound merge of the two
// lightest working hypotheses under the heuristic bound.
type HypothesisMerged struct {
	Period       int `json:"period"`
	Index        int `json:"index"`
	WeightA      int `json:"weight_a"`
	WeightB      int `json:"weight_b"`
	WeightMerged int `json:"weight_merged"`
}

// HypothesisPruned records one hypothesis removed by the
// end-of-period post-processing: reason "duplicate" (equal dependency
// function) or "redundant" (a strictly more specific hypothesis
// survives).
type HypothesisPruned struct {
	Period int    `json:"period"`
	Reason string `json:"reason"`
	Weight int    `json:"weight"`
}

// PeriodEnd closes one period: Live surviving hypotheses, Dropped
// removed by the end-of-period prune, and the weight range of the
// survivors.
type PeriodEnd struct {
	Period      int `json:"period"`
	Live        int `json:"live"`
	Dropped     int `json:"dropped"`
	WeightMin   int `json:"weight_min"`
	WeightMax   int `json:"weight_max"`
	Relaxations int `json:"relaxations"`
}

// RunEnd closes a batch learning run with its headline statistics.
type RunEnd struct {
	Periods   int   `json:"periods"`
	Messages  int   `json:"messages"`
	Final     int   `json:"final"`
	Peak      int   `json:"peak"`
	Merges    int   `json:"merges"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Pipeline is the generic event of the non-learner stages: trace
// parsing, simulation, reachability, mode analysis. Stage names the
// emitting subsystem, Name the quantity, Value its magnitude; Label
// carries free-form context (e.g. a parse-error message).
type Pipeline struct {
	Stage string `json:"stage"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Label string `json:"label,omitempty"`
}

// Provenance records one generalization step of the derivation chain
// of a learned dependency entry d(Task1,Task2): the lattice
// transition From→To, the action that caused it ("assume" for a
// message generalization, "relax" for an end-of-period conditional
// test, "merge" for a bounded least-upper-bound merge), and — for
// assume steps — the message occurrence and the candidate
// (sender, receiver) pair. Index is the message index within the
// period, or -1 for end-of-period steps. Emitted only when
// provenance recording is enabled on the learner.
type Provenance struct {
	Period   int    `json:"period"`
	Index    int    `json:"index"`
	Msg      string `json:"msg,omitempty"`
	Sender   string `json:"sender,omitempty"`
	Receiver string `json:"receiver,omitempty"`
	Task1    string `json:"task1"`
	Task2    string `json:"task2"`
	From     string `json:"from"`
	To       string `json:"to"`
	Action   string `json:"action"`
}

// SpanEnd closes one timed pipeline phase (see StartSpan): simulate,
// trace_parse, candidates, generalize, postprocess, verify. Spans let
// pprof flame graphs be cross-referenced with the logical phases of a
// run.
type SpanEnd struct {
	Phase     string `json:"phase"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

func (EngineStart) Kind() string       { return "engine_start" }
func (PeriodStart) Kind() string       { return "period_start" }
func (MessageProcessed) Kind() string  { return "message_processed" }
func (HypothesisSpawned) Kind() string { return "hypothesis_spawned" }
func (HypothesisMerged) Kind() string  { return "hypothesis_merged" }
func (HypothesisPruned) Kind() string  { return "hypothesis_pruned" }
func (PeriodEnd) Kind() string         { return "period_end" }
func (RunEnd) Kind() string            { return "run_end" }
func (Pipeline) Kind() string          { return "pipeline" }
func (Provenance) Kind() string        { return "provenance" }
func (SpanEnd) Kind() string           { return "span" }

// Observer receives the typed events of a run. One method per event
// type keeps the emitting path free of interface boxing: passing a
// value struct to an interface method does not allocate, so a no-op
// implementation costs only the dynamic call.
//
// Implementations embed NopObserver to pick up no-op defaults for the
// events they do not care about.
type Observer interface {
	OnEngineStart(EngineStart)
	OnPeriodStart(PeriodStart)
	OnMessageProcessed(MessageProcessed)
	OnHypothesisSpawned(HypothesisSpawned)
	OnHypothesisMerged(HypothesisMerged)
	OnHypothesisPruned(HypothesisPruned)
	OnPeriodEnd(PeriodEnd)
	OnRunEnd(RunEnd)
	OnPipeline(Pipeline)
	OnProvenance(Provenance)
	OnSpan(SpanEnd)
}

// NopObserver ignores every event. Embed it to implement Observer
// partially.
type NopObserver struct{}

func (NopObserver) OnEngineStart(EngineStart)             {}
func (NopObserver) OnPeriodStart(PeriodStart)             {}
func (NopObserver) OnMessageProcessed(MessageProcessed)   {}
func (NopObserver) OnHypothesisSpawned(HypothesisSpawned) {}
func (NopObserver) OnHypothesisMerged(HypothesisMerged)   {}
func (NopObserver) OnHypothesisPruned(HypothesisPruned)   {}
func (NopObserver) OnPeriodEnd(PeriodEnd)                 {}
func (NopObserver) OnRunEnd(RunEnd)                       {}
func (NopObserver) OnPipeline(Pipeline)                   {}
func (NopObserver) OnProvenance(Provenance)               {}
func (NopObserver) OnSpan(SpanEnd)                        {}

// Nop is the shared no-op observer.
var Nop Observer = NopObserver{}

// multi fans every event out to a fixed list of observers.
type multi []Observer

// NewMulti combines observers into one, dropping nils. It returns nil
// when nothing remains (so callers can keep the allocation-free
// nil-observer fast path) and the observer itself when only one
// remains.
func NewMulti(os ...Observer) Observer {
	kept := make(multi, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

func (m multi) OnEngineStart(e EngineStart) {
	for _, o := range m {
		o.OnEngineStart(e)
	}
}
func (m multi) OnPeriodStart(e PeriodStart) {
	for _, o := range m {
		o.OnPeriodStart(e)
	}
}
func (m multi) OnMessageProcessed(e MessageProcessed) {
	for _, o := range m {
		o.OnMessageProcessed(e)
	}
}
func (m multi) OnHypothesisSpawned(e HypothesisSpawned) {
	for _, o := range m {
		o.OnHypothesisSpawned(e)
	}
}
func (m multi) OnHypothesisMerged(e HypothesisMerged) {
	for _, o := range m {
		o.OnHypothesisMerged(e)
	}
}
func (m multi) OnHypothesisPruned(e HypothesisPruned) {
	for _, o := range m {
		o.OnHypothesisPruned(e)
	}
}
func (m multi) OnPeriodEnd(e PeriodEnd) {
	for _, o := range m {
		o.OnPeriodEnd(e)
	}
}
func (m multi) OnRunEnd(e RunEnd) {
	for _, o := range m {
		o.OnRunEnd(e)
	}
}
func (m multi) OnPipeline(e Pipeline) {
	for _, o := range m {
		o.OnPipeline(e)
	}
}
func (m multi) OnProvenance(e Provenance) {
	for _, o := range m {
		o.OnProvenance(e)
	}
}
func (m multi) OnSpan(e SpanEnd) {
	for _, o := range m {
		o.OnSpan(e)
	}
}
