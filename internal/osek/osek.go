// Package osek implements a fixed-priority fully-preemptive
// single-processor scheduler in the style of the OSEK OS standard
// cited by the paper. It is the execution substrate of the trace
// simulator: jobs are released (by the period timer or by message
// arrival), the highest-priority ready job runs, and higher-priority
// releases preempt the running job.
//
// The scheduler is driven as a discrete-event component: the owner
// advances virtual time, injects releases, and asks for the next
// internally scheduled event (the completion of the running job).
// Task start events are reported at the job's first dispatch and end
// events at completion, matching the paper's trace model in which a
// preempted task's interval simply contains its preemptors'.
package osek

import (
	"container/heap"
	"fmt"
)

// Job is one task activation within a period.
type Job struct {
	Task     string
	Priority int // larger preempts smaller; unique per task
	// Remaining execution demand.
	remaining int64
	// started records the first dispatch time, -1 before dispatch.
	started int64
	release int64
}

// Release time of the job.
func (j *Job) Release() int64 { return j.release }

// Started returns the first dispatch time and whether the job has been
// dispatched.
func (j *Job) Started() (int64, bool) { return j.started, j.started >= 0 }

// Exec records one completed job: the task, its first dispatch and
// completion times, and its release time (for response-time checks).
type Exec struct {
	Task       string
	Start, End int64
	Release    int64
}

// Response returns the job's response time End - Release.
func (e Exec) Response() int64 { return e.End - e.Release }

// CPU is the scheduler state.
type CPU struct {
	now     int64
	running *Job
	ready   jobHeap
	done    []Exec
}

// New returns an idle CPU at time 0.
func New() *CPU { return &CPU{} }

// Now returns the CPU's current virtual time.
func (c *CPU) Now() int64 { return c.now }

// Idle reports whether no job is running or ready.
func (c *CPU) Idle() bool { return c.running == nil && c.ready.Len() == 0 }

// Release injects a job at the given time (must be >= Now). The CPU
// first advances to the release time; if the new job has higher
// priority than the running one, the running job is preempted and
// returned to the ready queue.
func (c *CPU) Release(task string, priority int, demand, at int64) error {
	if at < c.now {
		return fmt.Errorf("osek: release of %q at %d before current time %d", task, at, c.now)
	}
	if demand <= 0 {
		return fmt.Errorf("osek: job %q has non-positive demand %d", task, demand)
	}
	c.AdvanceTo(at)
	j := &Job{Task: task, Priority: priority, remaining: demand, started: -1, release: at}
	if c.running == nil {
		c.dispatch(j)
		return nil
	}
	if priority > c.running.Priority {
		heap.Push(&c.ready, c.running)
		c.dispatch(j)
		return nil
	}
	heap.Push(&c.ready, j)
	return nil
}

func (c *CPU) dispatch(j *Job) {
	if j.started < 0 {
		j.started = c.now
	}
	c.running = j
}

// NextCompletion returns the absolute time at which the running job
// completes if nothing else is released, and false when the CPU is
// idle.
func (c *CPU) NextCompletion() (int64, bool) {
	if c.running == nil {
		return 0, false
	}
	return c.now + c.running.remaining, true
}

// AdvanceTo moves virtual time forward to t, completing jobs along the
// way. Completed executions are collected and can be drained with
// TakeCompleted.
func (c *CPU) AdvanceTo(t int64) {
	for c.now < t {
		if c.running == nil {
			c.now = t
			return
		}
		finish := c.now + c.running.remaining
		if finish > t {
			c.running.remaining = finish - t
			c.now = t
			return
		}
		c.now = finish
		c.done = append(c.done, Exec{
			Task:    c.running.Task,
			Start:   c.running.started,
			End:     c.now,
			Release: c.running.release,
		})
		c.running = nil
		if c.ready.Len() > 0 {
			c.dispatch(heap.Pop(&c.ready).(*Job))
		}
	}
}

// TakeCompleted drains and returns the executions completed since the
// last call, in completion order.
func (c *CPU) TakeCompleted() []Exec {
	out := c.done
	c.done = nil
	return out
}

// Running returns the currently running task name, or "".
func (c *CPU) Running() string {
	if c.running == nil {
		return ""
	}
	return c.running.Task
}

// QueueLen returns the number of ready (not running) jobs.
func (c *CPU) QueueLen() int { return c.ready.Len() }

// jobHeap is a max-heap on priority with FIFO tie-breaking by release
// time (OSEK activates equal-priority tasks in activation order;
// priorities are unique in our models, so the tie-break is for
// robustness only).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].release < h[j].release
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
