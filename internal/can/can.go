// Package can models a Controller Area Network bus (Bosch CAN 2.0, as
// cited by the paper): frames are queued by sender nodes, arbitration
// at each idle point grants the bus to the pending frame with the
// lowest identifier, and transmission is non-preemptive. Frame
// durations are derived from the payload length, the bit rate and a
// worst-case bit-stuffing estimate.
//
// Like the osek package, the bus is a discrete-event component: the
// owner enqueues frames, advances virtual time and collects completed
// transmissions (each yielding the rising and falling edge the
// logging device would record).
package can

import (
	"container/heap"
	"fmt"
)

// Frame is one queued CAN frame.
type Frame struct {
	// ID is the 11-bit arbitration identifier; lower wins.
	ID int
	// DLC is the payload length in bytes (0..8).
	DLC int
	// Label names the frame occurrence in the trace.
	Label string
	// Receiver is the destination task ("" for broadcast frames such
	// as infrastructure syncs).
	Receiver string

	queued int64
	seq    int
}

// Transmission is one completed frame transfer: the bus was occupied
// during [Rise, Fall].
type Transmission struct {
	Frame      Frame
	Rise, Fall int64
}

// FrameBits returns the worst-case length in bits of a standard-format
// data frame with the given payload length, including the interframe
// space and the classical worst-case stuff-bit estimate
// ⌊(34 + 8·DLC − 1)/4⌋ used in CAN response-time analysis.
func FrameBits(dlc int) int64 {
	if dlc < 0 {
		dlc = 0
	}
	if dlc > 8 {
		dlc = 8
	}
	data := 8 * int64(dlc)
	// 47 = SOF + ID + RTR + control + CRC + ACK + EOF + IFS for the
	// standard frame format.
	return 47 + data + (34+data-1)/4
}

// Bus is the bus state.
type Bus struct {
	bitTime int64 // microseconds (or ticks) per bit, scaled by 1e?; see New
	now     int64
	current *Frame
	curRise int64
	queue   frameHeap
	done    []Transmission
	seq     int
}

// New returns an idle bus. bitRate is in bits per second; time is
// measured in microseconds. bitRate must divide 1e6 reasonably: the
// per-bit time is rounded to the nearest microsecond and must be at
// least 1.
func New(bitRate int64) (*Bus, error) {
	if bitRate <= 0 {
		return nil, fmt.Errorf("can: bit rate must be positive")
	}
	bt := (1_000_000 + bitRate/2) / bitRate
	if bt < 1 {
		bt = 1
	}
	return &Bus{bitTime: bt}, nil
}

// FrameDuration returns the transmission time of a frame with the
// given DLC at this bus's bit rate.
func (b *Bus) FrameDuration(dlc int) int64 { return FrameBits(dlc) * b.bitTime }

// Now returns the bus's current virtual time.
func (b *Bus) Now() int64 { return b.now }

// Idle reports whether nothing is transmitting or queued.
func (b *Bus) Idle() bool { return b.current == nil && b.queue.Len() == 0 }

// Enqueue queues a frame for transmission at the given time. If the
// bus is idle it starts transmitting immediately (rising edge at
// the enqueue time).
func (b *Bus) Enqueue(f Frame, at int64) error {
	if at < b.now {
		return fmt.Errorf("can: enqueue of %q at %d before current time %d", f.Label, at, b.now)
	}
	if f.DLC < 0 || f.DLC > 8 {
		return fmt.Errorf("can: frame %q has DLC %d", f.Label, f.DLC)
	}
	b.AdvanceTo(at)
	f.queued = at
	f.seq = b.seq
	b.seq++
	if b.current == nil {
		b.begin(&f)
		return nil
	}
	heap.Push(&b.queue, &f)
	return nil
}

func (b *Bus) begin(f *Frame) {
	b.current = f
	b.curRise = b.now
}

// NextCompletion returns the falling-edge time of the frame on the
// wire, and false if the bus is idle.
func (b *Bus) NextCompletion() (int64, bool) {
	if b.current == nil {
		return 0, false
	}
	return b.curRise + b.FrameDuration(b.current.DLC), true
}

// AdvanceTo moves virtual time forward to t, completing transmissions
// and starting queued frames (arbitration: lowest ID first) along the
// way.
func (b *Bus) AdvanceTo(t int64) {
	for b.now < t {
		if b.current == nil {
			b.now = t
			return
		}
		fall := b.curRise + b.FrameDuration(b.current.DLC)
		if fall > t {
			b.now = t
			return
		}
		b.now = fall
		b.done = append(b.done, Transmission{Frame: *b.current, Rise: b.curRise, Fall: fall})
		b.current = nil
		if b.queue.Len() > 0 {
			b.begin(heap.Pop(&b.queue).(*Frame))
		}
	}
}

// TakeCompleted drains and returns the transmissions completed since
// the last call, in completion order.
func (b *Bus) TakeCompleted() []Transmission {
	out := b.done
	b.done = nil
	return out
}

// QueueLen returns the number of frames awaiting arbitration.
func (b *Bus) QueueLen() int { return b.queue.Len() }

// frameHeap is a min-heap on arbitration ID; ties (which cannot occur
// between distinct senders on a real bus) break by enqueue order for
// determinism.
type frameHeap []*Frame

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if h[i].ID != h[j].ID {
		return h[i].ID < h[j].ID
	}
	if h[i].queued != h[j].queued {
		return h[i].queued < h[j].queued
	}
	return h[i].seq < h[j].seq
}
func (h frameHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x interface{}) { *h = append(*h, x.(*Frame)) }
func (h *frameHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
