// Package reach implements explicit-state reachability analysis over
// the per-period task-interleaving state space, quantifying the
// paper's claim that the learned dependencies "reduce the state space
// that needs to be analyzed with other methods … such as model
// checking by means of reachability analysis".
//
// The abstraction: within one period every task completes at most
// once, so a state is the set of tasks that have completed. With no
// dependency knowledge (the pessimistic baseline) any task may
// complete at any time and all 2^n subsets are reachable. A learned
// dependency function orders completions: d(a,b) = → or ← means a and
// b always co-execute with a fixed completion order, so any state
// containing the downstream task without the upstream one is
// unreachable. The reachable states are exactly the downsets of the
// precedence relation, and their count is the size of the state space
// a model checker must explore.
//
// Besides counting, the package answers reachability queries ("is
// there a reachable state where Q has completed but O has not?") —
// the concrete form of the safety proofs Section 3.4 sketches.
package reach

import (
	"fmt"
	"math/bits"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

// MaxTasks bounds the explicit-state exploration (states are uint32
// bitmasks; 2^24 states ≈ 16M already stretches memory).
const MaxTasks = 24

// Precedence extracts the completion-order constraints of a learned
// dependency function: pred[b] is the bitmask of tasks that must
// complete before task b may complete. d(a,b) = → contributes a ≺ b
// (a determines b: b's activation, and hence completion, follows a's
// completion); d(a,b) = ← contributes b ≺ a.
func Precedence(d *depfunc.DepFunc) []uint32 {
	n := d.TaskSet().Len()
	pred := make([]uint32, n)
	d.Entries(func(i, j int, v lattice.Value) {
		switch v {
		case lattice.Fwd:
			pred[j] |= 1 << uint(i) // i before j
		case lattice.Bwd:
			pred[i] |= 1 << uint(j) // j before i
		}
	})
	return pred
}

// Result summarizes an exploration.
type Result struct {
	Tasks int
	// States is the number of reachable completion states (including
	// the empty and full states).
	States int
	// Baseline is 2^Tasks, the pessimistic all-independent count.
	Baseline int
	// Reduction is 1 - States/Baseline.
	Reduction float64
}

// Explore counts the reachable completion states under the precedence
// constraints extracted from d. It returns an error for task sets
// larger than MaxTasks.
func Explore(d *depfunc.DepFunc) (Result, error) { return ExploreObserved(d, nil) }

// ExploreObserved is Explore with stage-"reach" observability: a
// states_explored pipeline event carrying the number of reachable
// states visited.
func ExploreObserved(d *depfunc.DepFunc, o obs.Observer) (Result, error) {
	n := d.TaskSet().Len()
	if n > MaxTasks {
		return Result{}, fmt.Errorf("reach: %d tasks exceed the explicit-state limit of %d", n, MaxTasks)
	}
	pred := Precedence(d)
	seen := make(map[uint32]bool, 1<<uint(min(n, 20)))
	stack := []uint32{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for t := 0; t < n; t++ {
			bit := uint32(1) << uint(t)
			if s&bit != 0 {
				continue
			}
			if s&pred[t] != pred[t] {
				continue // a predecessor has not completed
			}
			ns := s | bit
			if !seen[ns] {
				seen[ns] = true
				stack = append(stack, ns)
			}
		}
	}
	baseline := 1 << uint(n)
	if o != nil {
		o.OnPipeline(obs.Pipeline{Stage: "reach", Name: "states_explored", Value: int64(len(seen))})
	}
	return Result{
		Tasks:     n,
		States:    len(seen),
		Baseline:  baseline,
		Reduction: 1 - float64(len(seen))/float64(baseline),
	}, nil
}

// Reachable reports whether a completion state satisfying the
// predicate is reachable, and returns a witness state (as a set of
// completed task names) if so. The predicate receives the bitmask of
// completed tasks; use the task set's Index to build queries.
func Reachable(d *depfunc.DepFunc, pred func(state uint32) bool) (bool, []string, error) {
	return ReachableObserved(d, pred, nil)
}

// ReachableObserved is Reachable with stage-"reach" observability: a
// states_explored pipeline event carrying the number of states
// visited before the search concluded.
func ReachableObserved(d *depfunc.DepFunc, pred func(state uint32) bool, o obs.Observer) (bool, []string, error) {
	n := d.TaskSet().Len()
	if n > MaxTasks {
		return false, nil, fmt.Errorf("reach: %d tasks exceed the explicit-state limit of %d", n, MaxTasks)
	}
	prec := Precedence(d)
	seen := make(map[uint32]bool)
	emit := func() {
		if o != nil {
			o.OnPipeline(obs.Pipeline{Stage: "reach", Name: "states_explored", Value: int64(len(seen))})
		}
	}
	stack := []uint32{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pred(s) {
			emit()
			return true, maskToNames(d.TaskSet(), s), nil
		}
		for t := 0; t < n; t++ {
			bit := uint32(1) << uint(t)
			if s&bit != 0 || s&prec[t] != prec[t] {
				continue
			}
			ns := s | bit
			if !seen[ns] {
				seen[ns] = true
				stack = append(stack, ns)
			}
		}
	}
	emit()
	return false, nil, nil
}

// CompletedWithout builds a query predicate: a state where `done` has
// completed but `notDone` has not. Combined with Reachable this
// answers the paper-style question "can Q ever complete before O?".
func CompletedWithout(d *depfunc.DepFunc, done, notDone string) (func(uint32) bool, error) {
	ts := d.TaskSet()
	i, j := ts.Index(done), ts.Index(notDone)
	if i < 0 {
		return nil, fmt.Errorf("reach: unknown task %q", done)
	}
	if j < 0 {
		return nil, fmt.Errorf("reach: unknown task %q", notDone)
	}
	bi, bj := uint32(1)<<uint(i), uint32(1)<<uint(j)
	return func(s uint32) bool { return s&bi != 0 && s&bj == 0 }, nil
}

func maskToNames(ts *depfunc.TaskSet, s uint32) []string {
	out := make([]string, 0, bits.OnesCount32(s))
	for i := 0; i < ts.Len(); i++ {
		if s&(1<<uint(i)) != 0 {
			out = append(out, ts.Name(i))
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
