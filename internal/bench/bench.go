// Package bench defines the repo's benchmark-telemetry schema: the
// versioned BENCH_<label>.json files that record the Section 3.4
// heuristic sweep (per-bound wall time, working-set pressure and
// allocation counts) together with enough host metadata to interpret
// them later. cmd/bbbench writes these files and compares them, so
// every performance-relevant PR leaves a measured trail and can be
// gated against a committed baseline.
//
// The schema is deliberately flat and dependency-free: a File is one
// JSON object with a schema_version discriminator, host/go-version/
// commit metadata, the sweep configuration, and one Run entry per
// measured bound. Timing is summarized as median and p95 over the
// repetitions (medians absorb scheduler noise; the p95 catches
// bimodal regressions a median hides). Allocation telemetry comes
// from runtime.ReadMemStats deltas around each repetition.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SchemaVersion is the current BENCH file schema. Readers reject
// files with a different version rather than guessing.
//
// Version history:
//
//	1 — initial schema (per-bound wall time, working-set pressure,
//	    allocation deltas).
//	2 — adds per-run Workers (engine worker-pool size) and
//	    SpeedupVsSequential (sequential median / parallel median for
//	    the same sweep point).
const SchemaVersion = 2

// Host records where a benchmark ran.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	// Commit is the VCS revision baked into the binary by the Go
	// toolchain (empty when built outside a repository or with a
	// toolchain that does not stamp it).
	Commit string `json:"commit,omitempty"`
}

// NewHost captures the current host, including the vcs.revision build
// setting when present.
func NewHost() Host {
	h := Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				h.Commit = s.Value
			}
		}
	}
	return h
}

// Run is the measurement of one sweep point (one bound, or the exact
// algorithm with Bound 0).
type Run struct {
	// Name identifies the sweep point, e.g. "bound_16" or "exact".
	Name string `json:"name"`
	// Bound is the heuristic bound b; 0 means the exact algorithm.
	Bound int `json:"bound"`
	// Workers is the engine worker-pool size the run used (1 =
	// sequential; the learner's default).
	Workers int `json:"workers"`
	// SpeedupVsSequential is sequential-median / this-run-median for
	// sweep points measured both ways; 0 when not measured. Values
	// near 1.0 on a single-CPU host are expected and honest.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	// Repetitions is the number of measured repetitions behind the
	// summary statistics.
	Repetitions int `json:"repetitions"`
	// MedianNS and P95NS summarize per-repetition wall time.
	MedianNS int64 `json:"median_ns"`
	P95NS    int64 `json:"p95_ns"`
	// Hypotheses and Converged describe the learning outcome.
	Hypotheses int  `json:"hypotheses"`
	Converged  bool `json:"converged"`
	// PeakLive is the peak working-set size, Merges the heuristic
	// merge count (both from learner stats, identical across reps).
	PeakLive int `json:"peak_live"`
	Merges   int `json:"merges"`
	// AllocBytes and Allocs are per-repetition medians of the
	// runtime.ReadMemStats TotalAlloc / Mallocs deltas.
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
}

// File is one BENCH_<label>.json document.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label"`
	CreatedAt     string `json:"created_at"` // RFC 3339
	Host          Host   `json:"host"`
	// Config, Periods and Seed pin the workload (the case-study
	// configuration and simulation parameters of the sweep).
	Config  string `json:"config"`
	Periods int    `json:"periods"`
	Seed    int64  `json:"seed"`
	Runs    []Run  `json:"runs"`
}

// New returns an empty File stamped with the current schema version,
// host and time.
func New(label string) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Label:         label,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		Host:          NewHost(),
	}
}

// Validate checks the structural invariants a well-formed BENCH file
// must satisfy; readers and writers both enforce it so a malformed
// file is caught at whichever end produced it.
func (f *File) Validate() error {
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema_version %d, this tool speaks %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Label == "" {
		return fmt.Errorf("bench: empty label")
	}
	if _, err := time.Parse(time.RFC3339, f.CreatedAt); err != nil {
		return fmt.Errorf("bench: bad created_at %q: %v", f.CreatedAt, err)
	}
	if f.Host.OS == "" || f.Host.Arch == "" || f.Host.GoVersion == "" {
		return fmt.Errorf("bench: incomplete host metadata %+v", f.Host)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("bench: no runs")
	}
	seen := map[string]bool{}
	for i, r := range f.Runs {
		if r.Name == "" {
			return fmt.Errorf("bench: run %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("bench: duplicate run name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Repetitions <= 0 {
			return fmt.Errorf("bench: run %q: repetitions %d", r.Name, r.Repetitions)
		}
		if r.Workers < 1 {
			return fmt.Errorf("bench: run %q: workers %d (must be >= 1)", r.Name, r.Workers)
		}
		if r.SpeedupVsSequential < 0 {
			return fmt.Errorf("bench: run %q: negative speedup %v", r.Name, r.SpeedupVsSequential)
		}
		if r.MedianNS <= 0 || r.P95NS < r.MedianNS {
			return fmt.Errorf("bench: run %q: median %d ns, p95 %d ns", r.Name, r.MedianNS, r.P95NS)
		}
	}
	return nil
}

// WriteFile validates f and writes it as indented JSON.
func (f *File) WriteFile(path string) error {
	if err := f.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses and validates a BENCH file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %v", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}

// Sample is one measured repetition: wall time plus the allocation
// deltas observed by runtime.ReadMemStats around the call.
type Sample struct {
	Elapsed    time.Duration
	AllocBytes uint64
	Allocs     uint64
}

// Measure runs fn reps times and returns one Sample per repetition.
// Allocation deltas are TotalAlloc/Mallocs differences, which count
// everything allocated during the call (monotone counters, so
// concurrent GC does not perturb them the way HeapAlloc would).
func Measure(reps int, fn func()) []Sample {
	samples := make([]Sample, 0, reps)
	var before, after runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		fn()
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		samples = append(samples, Sample{
			Elapsed:    elapsed,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Allocs:     after.Mallocs - before.Mallocs,
		})
	}
	return samples
}

// Summarize folds samples into a Run (median and p95 wall time,
// median allocation counts). The caller fills the learning-outcome
// fields (Hypotheses, Converged, PeakLive, Merges).
func Summarize(name string, bound int, samples []Sample) Run {
	ns := make([]int64, len(samples))
	bytes := make([]uint64, len(samples))
	allocs := make([]uint64, len(samples))
	for i, s := range samples {
		ns[i] = s.Elapsed.Nanoseconds()
		bytes[i] = s.AllocBytes
		allocs[i] = s.Allocs
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	sort.Slice(bytes, func(i, j int) bool { return bytes[i] < bytes[j] })
	sort.Slice(allocs, func(i, j int) bool { return allocs[i] < allocs[j] })
	return Run{
		Name:        name,
		Bound:       bound,
		Workers:     1, // sequential unless the caller overrides
		Repetitions: len(samples),
		MedianNS:    ns[len(ns)/2],
		P95NS:       ns[p95Index(len(ns))],
		AllocBytes:  bytes[len(bytes)/2],
		Allocs:      allocs[len(allocs)/2],
	}
}

// p95Index returns the index of the 95th-percentile element of a
// sorted slice of length n (nearest-rank method).
func p95Index(n int) int {
	i := (n*95 + 99) / 100 // ceil(0.95 n)
	if i < 1 {
		i = 1
	}
	return i - 1
}

// Regression is one metric of one run that slowed down beyond the
// threshold relative to the baseline.
type Regression struct {
	Run      string  // run name
	Metric   string  // "median_ns", "p95_ns" or "alloc_bytes"
	Baseline int64   // baseline value
	Current  int64   // current value
	Ratio    float64 // current / baseline
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %d -> %d (%.2fx)", r.Run, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// Compare reports every run metric that regressed by more than
// threshold (0.10 = 10% slower than baseline). Runs present in only
// one file are ignored: the sweep configuration may legitimately
// change between baselines. Improvements are never reported.
func Compare(baseline, current *File, threshold float64) []Regression {
	base := make(map[string]Run, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[r.Name] = r
	}
	var out []Regression
	for _, cur := range current.Runs {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name     string
			old, new int64
		}{
			{"median_ns", b.MedianNS, cur.MedianNS},
			{"p95_ns", b.P95NS, cur.P95NS},
			{"alloc_bytes", int64(b.AllocBytes), int64(cur.AllocBytes)},
		} {
			if m.old <= 0 {
				continue
			}
			ratio := float64(m.new) / float64(m.old)
			if ratio > 1+threshold {
				out = append(out, Regression{
					Run: cur.Name, Metric: m.name,
					Baseline: m.old, Current: m.new, Ratio: ratio,
				})
			}
		}
	}
	return out
}

// ParseThreshold parses a regression threshold given either as a
// percentage ("10%") or a fraction ("0.1").
func ParseThreshold(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bench: bad threshold %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("bench: negative threshold %q", s)
	}
	return v, nil
}
