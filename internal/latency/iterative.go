package latency

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/model"
)

// ResponseTimeIterative computes the classic fixed-point worst-case
// response time of a task under periodic re-activation of its
// interferers (all tasks share the model's period, the paper's model
// of computation):
//
//	R⁽ᵏ⁺¹⁾ = C_i + Σ_{j ∈ interference(i)} ⌈R⁽ᵏ⁾ / T⌉ · C_j
//
// For response times within one period this coincides with
// TaskResponse (every interferer runs once); beyond one period the
// iteration charges re-activations, which matters when analysing
// chains that span period boundaries. The dependency function d
// excludes interferers exactly as in TaskResponse.
//
// The iteration aborts with an error when the response time exceeds
// maxPeriods periods without reaching a fixed point — the CPU is
// overloaded and the task has no bounded response time.
func ResponseTimeIterative(m *model.Model, task string, d *depfunc.DepFunc, maxPeriods int) (int64, error) {
	t := m.Task(task)
	if t == nil {
		return 0, fmt.Errorf("latency: unknown task %q", task)
	}
	if maxPeriods <= 0 {
		maxPeriods = 16
	}
	interferers, err := Interference(m, task, d)
	if err != nil {
		return 0, err
	}
	period := m.Period
	r := t.WCET
	for iter := 0; iter < 1000; iter++ {
		var next int64 = t.WCET
		for _, name := range interferers {
			activations := (r + period - 1) / period // ceil(r / T)
			next += activations * m.Task(name).WCET
		}
		if next == r {
			return r, nil
		}
		if next > int64(maxPeriods)*period {
			return 0, fmt.Errorf("latency: response time of %q exceeds %d periods: CPU overloaded",
				task, maxPeriods)
		}
		r = next
	}
	return 0, fmt.Errorf("latency: response-time iteration for %q did not converge", task)
}

// Utilization returns the per-ECU processor utilization of the model:
// the sum of WCETs of the tasks on each ECU divided by the period.
// Utilization above 1.0 means the pessimistic analysis cannot bound
// response times (every task fires each period in the worst case).
func Utilization(m *model.Model) map[string]float64 {
	sums := map[string]int64{}
	for _, t := range m.Tasks {
		sums[t.ECU] += t.WCET
	}
	out := make(map[string]float64, len(sums))
	for ecu, c := range sums {
		out[ecu] = float64(c) / float64(m.Period)
	}
	return out
}

// BusUtilization returns the worst-case CAN bus utilization: the sum
// of all frame durations (every design edge plus the sync frame, each
// at most once per period) divided by the period.
func BusUtilization(m *model.Model, bitRate int64) (float64, error) {
	bd, err := busDurations(m, bitRate)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, dur := range bd {
		sum += dur
	}
	return float64(sum) / float64(m.Period), nil
}

func busDurations(m *model.Model, bitRate int64) (map[int]int64, error) {
	bus, err := newBus(bitRate)
	if err != nil {
		return nil, err
	}
	out := map[int]int64{}
	for _, e := range m.Edges {
		out[e.CANID] = bus.FrameDuration(e.DLC)
	}
	for _, t := range m.Tasks {
		if t.EmitsSync {
			out[m.SyncCANID] = bus.FrameDuration(m.SyncDLC)
		}
	}
	return out, nil
}
