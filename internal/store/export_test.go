package store

// SetCrashHook installs a test-only hook consulted at named points of
// the append/compaction sequence; returning a non-nil error aborts
// the operation there, simulating a crash.
func SetCrashHook(st *Store, fn func(point string) error) { st.crash = fn }
