// Command bblatency compares the pessimistic holistic end-to-end
// latency bound of a path against the bound refined by a dependency
// model learned from the trace (Section 3.4's critical-path
// discussion).
//
// Usage:
//
//	bblatency                          # the paper's path through Q
//	bblatency -path S,C,N,H,Q -bound 16
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bblatency: ")
	var (
		pathF   = flag.String("path", "S,A,D,L,P,Q", "comma-separated task path (consecutive tasks must share a design edge)")
		bound   = flag.Int("bound", 32, "heuristic bound for learning")
		periods = flag.Int("periods", modelgen.CaseStudyPeriods, "simulated periods")
		seed    = flag.Int64("seed", modelgen.CaseStudySeed, "simulation seed")
		bitRate = flag.Int64("bitrate", 500_000, "CAN bit rate")
	)
	flag.Parse()

	m := modelgen.GMStyleModel()
	out, err := modelgen.Simulate(m, modelgen.SimOptions{Periods: *periods, Seed: *seed, BitRate: *bitRate})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	res, err := modelgen.LearnBounded(out.Trace, *bound, modelgen.CaseStudyPolicy(false))
	if err != nil {
		log.Fatalf("learning: %v", err)
	}

	path := modelgen.LatencyPath{Tasks: strings.Split(*pathF, ",")}
	cmp, err := modelgen.CompareLatency(m, path, res.LUB, *bitRate)
	if err != nil {
		log.Fatalf("latency: %v", err)
	}

	fmt.Printf("path: %v\n\n", path.Tasks)
	fmt.Printf("%-9s %-8s %14s %14s   %s\n", "kind", "element", "pessimistic", "informed", "excluded preemptors")
	for i := range cmp.Pessimistic.Items {
		p := cmp.Pessimistic.Items[i]
		inf := cmp.Informed.Items[i]
		excl := ""
		if len(inf.Excluded) > 0 {
			excl = fmt.Sprint(inf.Excluded)
		}
		fmt.Printf("%-9s %-8s %11d us %11d us   %s\n", p.Kind, p.Name, p.Bound, inf.Bound, excl)
	}
	fmt.Printf("%-9s %-8s %11d us %11d us\n", "TOTAL", "", cmp.Pessimistic.Total, cmp.Informed.Total)
	abs, rel := cmp.Improvement()
	fmt.Printf("\nimprovement: %d us (%.1f%%)\n", abs, rel*100)
}
