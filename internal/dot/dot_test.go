package dot

import (
	"strings"
	"testing"
)

func TestGraphBasic(t *testing.T) {
	g := NewGraph("g").
		Attr("rankdir", "LR").
		Node("a", "shape", "circle").
		Node("b").
		Edge("a", "b", "label", "x")
	out := g.String()
	for _, want := range []string{
		`digraph "g" {`,
		`rankdir="LR";`,
		`"a" [shape="circle"];`,
		`"b";`,
		`"a" -> "b" [label="x"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEdgeDeclaresNodes(t *testing.T) {
	out := NewGraph("g").Edge("x", "y").String()
	if !strings.Contains(out, `"x";`) || !strings.Contains(out, `"y";`) {
		t.Errorf("edge endpoints not declared:\n%s", out)
	}
}

func TestQuoting(t *testing.T) {
	out := NewGraph(`a"b`).Node(`n\1`).String()
	if !strings.Contains(out, `digraph "a\"b"`) {
		t.Errorf("name not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"n\\1";`) {
		t.Errorf("backslash not escaped:\n%s", out)
	}
}

func TestDeterministicOrder(t *testing.T) {
	build := func() string {
		return NewGraph("g").Node("b").Node("a").Edge("b", "a").Edge("a", "b").String()
	}
	if build() != build() {
		t.Error("output not deterministic")
	}
	out := build()
	if strings.Index(out, `"b"`) > strings.Index(out, `"a"`) {
		t.Errorf("insertion order not preserved:\n%s", out)
	}
}

func TestNodeRedeclarationReplacesAttrs(t *testing.T) {
	out := NewGraph("g").Node("a", "shape", "box").Node("a", "shape", "circle").String()
	if strings.Contains(out, "box") {
		t.Errorf("old attrs survived:\n%s", out)
	}
	if strings.Count(out, `"a"`) != 1 {
		t.Errorf("node duplicated:\n%s", out)
	}
}

func TestOddAttrPairsIgnored(t *testing.T) {
	out := NewGraph("g").Node("a", "dangling").String()
	if strings.Contains(out, "dangling") {
		t.Errorf("odd attribute emitted:\n%s", out)
	}
}
