// Command bbserved runs the model-generation service: a long-running
// HTTP server that multiplexes many independent trace streams, each
// backed by its own online learner (internal/serve).
//
// Usage:
//
//	bbserved -addr :8080 -checkpoint-dir /var/lib/bbserved
//	bbserved -addr :8080 -queue 128 -checkpoint-every 32 -compact-bytes 1048576
//	bbserved -addr :8081 -cluster -node-id node-0 -checkpoint-dir /var/lib/bbserved-0
//
// API (JSON unless noted):
//
//	POST   /v1/streams                   create a stream (tasks, learner options)
//	GET    /v1/streams                   list streams
//	POST   /v1/streams/{id}/events      append raw trace or candump lines (text body)
//	GET    /v1/streams/{id}/model       current dependency model (?format=dot for DOT)
//	GET    /v1/streams/{id}/stats       ingest and learner statistics
//	POST   /v1/streams/{id}/checkpoint  compact the stream's WAL into a base snapshot now
//	POST   /v1/streams/{id}/compact     same, with the store view in the response
//	DELETE /v1/streams/{id}             drain and delete a stream
//	GET    /healthz                      liveness
//	GET    /metrics                      Prometheus exposition
//	GET    /slo                          SLO burn-rate status (JSON)
//	GET    /debug/streams                per-stream operational state (JSON)
//	GET    /debug/traces                 recent request traces (?trace=<id>, ?format=jsonl)
//
// A full ingest queue answers 429 with Retry-After; resend the batch
// unchanged (rejection is atomic). With -checkpoint-dir every learned
// period is appended to a per-stream write-ahead log before the next
// one starts, so any restart — drained or not — reopens every stream
// with identical learner state. Restore is an index scan: stream
// state pages in lazily on first touch, so restart cost tracks the
// active set, not the corpus. On SIGINT/SIGTERM the server stops
// accepting requests, drains every stream, and exits.
//
// With -cluster the server joins a bbgate-fronted cluster as the named
// node: the serve API is wrapped in epoch fencing, and /cluster/*
// endpoints expose checkpoint handoff, import, and the node's metrics
// snapshot for gateway aggregation (internal/cluster).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/blackbox-rt/modelgen/internal/cluster"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
	"github.com/blackbox-rt/modelgen/internal/slo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbserved: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		ckptDir  = flag.String("checkpoint-dir", "", "root of the stream state store (empty = in-memory only)")
		ckptEach = flag.Int("checkpoint-every", 0, "compact a stream's WAL into a base snapshot after this many records (0 = store default)")
		cmpBytes = flag.Int64("compact-bytes", 0, "also compact when a stream's WAL exceeds this many bytes (0 = store default)")
		cmpJit   = flag.Float64("compact-jitter", 0, "per-stream jitter fraction on the compaction thresholds (0 = store default)")
		queue    = flag.Int("queue", 256, "per-stream ingest queue depth")
		maxBody  = flag.Int64("max-body", 8<<20, "maximum events request body in bytes")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "maximum time to drain streams on shutdown")
		pprof    = flag.String("pprof", "", "also serve /debug/pprof/ and /metrics on this address")

		traceSample = flag.Float64("trace-sample", 0.01, "head-sampling probability for traces the client did not already sample (an upstream-sampled traceparent is always recorded); 0 disables tracing")
		traceRing   = flag.Int("trace-ring", 4096, "spans held in the in-memory ring behind /debug/traces")
		traceOut    = flag.String("trace-out", "", "also append every recorded span as JSONL to this file")
		sloP99      = flag.Duration("slo-p99", 500*time.Millisecond, "ingest-latency SLO threshold (p99)")
		sloEvery    = flag.Duration("slo-every", 10*time.Second, "SLO burn-rate sampling interval")

		clusterMode = flag.Bool("cluster", false, "run as a cluster member: expose /cluster/* handoff, import, fencing and metrics endpoints (front with bbgate)")
		nodeID      = flag.String("node-id", "", "this node's name on the placement ring (required with -cluster)")
	)
	flag.Parse()
	if *clusterMode && *nodeID == "" {
		log.Fatal("-cluster requires -node-id")
	}

	reg := obs.NewRegistry()
	obs.RuntimeMetrics(reg)
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{Capacity: *traceRing, Sample: *traceSample})
		if *traceOut != "" {
			fs, err := obs.OpenFileSink(*traceOut)
			if err != nil {
				log.Fatalf("trace-out: %v", err)
			}
			defer fs.Close()
			tracer.SetSink(fs.JSONLSink)
			log.Printf("streaming spans to %s", fs.Path())
		}
	}
	mon := slo.NewMonitor(slo.Config{
		Registry:   reg,
		Objectives: slo.DefaultServeObjectives(sloP99.Seconds()),
	})
	stopMon := mon.Start(*sloEvery)
	defer stopMon()
	sv := serve.New(serve.Config{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEach,
		CompactBytes:    *cmpBytes,
		CompactJitter:   *cmpJit,
		QueueDepth:      *queue,
		MaxBody:         *maxBody,
		Registry:        reg,
		Tracer:          tracer,
		SLO:             mon.Handler(),
		Logf:            log.Printf,
	})
	if n, err := sv.RestoreFromDir(); err != nil {
		log.Fatalf("restore: %v", err)
	} else if n > 0 {
		log.Printf("restored %d stream(s) from %s", n, *ckptDir)
	}

	if *pprof != "" {
		dbg, err := obs.StartDebugServer(*pprof, reg)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug server on %s", dbg.Addr)
	}

	handler := sv.Handler()
	if *clusterMode {
		node := cluster.NewNode(cluster.NodeConfig{
			ID:       *nodeID,
			Server:   sv,
			Registry: reg,
			Logf:     log.Printf,
		})
		handler = node.Handler()
		log.Printf("cluster mode: node %s", *nodeID)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("serving on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("draining (up to %s)...", *drainFor)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sv.Shutdown(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	log.Print("done")
}
