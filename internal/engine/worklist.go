package engine

import (
	"sort"

	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

// workList is the engine's working collection of hypotheses. With a
// positive bound it is kept sorted by ascending weight and every
// addition that overflows the bound merges the two lightest elements
// into their least upper bound (Section 3.2).
type workList struct {
	bound int
	items []*hypothesis.Hypothesis
	stats *Stats
	obsv  obs.Observer
	ctx   hypothesis.StepCtx
	// retired collects the operands folded away by merges. They stay
	// alive until the message's dedup map makes its last equality
	// check (the map may reference them), then releaseRetired recycles
	// their matrices.
	retired []*hypothesis.Hypothesis
}

func newWorkList(bound int, stats *Stats) *workList {
	return &workList{bound: bound, stats: stats}
}

func (wl *workList) add(h *hypothesis.Hypothesis) {
	if wl.bound <= 0 {
		wl.items = append(wl.items, h)
		return
	}
	wl.insert(h)
	for len(wl.items) > wl.bound {
		a, b := wl.items[0], wl.items[1]
		merged := a.Merge(b, wl.ctx)
		wl.items = wl.items[2:]
		wl.retired = append(wl.retired, a, b)
		wl.stats.Merges++
		if wl.obsv != nil {
			wl.obsv.OnHypothesisMerged(obs.HypothesisMerged{
				Period: wl.ctx.Period, Index: wl.ctx.Msg,
				WeightA: a.Weight(), WeightB: b.Weight(), WeightMerged: merged.Weight(),
			})
		}
		wl.insert(merged)
	}
}

// releaseRetired recycles the matrices of every merged-away operand.
// Only call it once no dedup map that might reference them can make
// another equality check.
func (wl *workList) releaseRetired() {
	for _, h := range wl.retired {
		h.Release()
	}
	wl.retired = nil
}

func (wl *workList) insert(h *hypothesis.Hypothesis) {
	w := h.Weight()
	i := sort.Search(len(wl.items), func(k int) bool { return wl.items[k].Weight() > w })
	wl.items = append(wl.items, nil)
	copy(wl.items[i+1:], wl.items[i:])
	wl.items[i] = h
}

// sortByWeight stably sorts hypotheses by ascending weight.
func sortByWeight(hs []*hypothesis.Hypothesis) {
	sort.SliceStable(hs, func(a, b int) bool { return hs[a].Weight() < hs[b].Weight() })
}
