// Command bblearn runs the generalization algorithm of Feng et al.
// (DATE 2007) over a trace file and prints the learned dependency
// model.
//
// Usage:
//
//	bblearn -trace trace.txt -bound 32
//	bblearn -trace trace.txt -exact -max 1000000
//	bblearn -trace trace.txt -bound 16 -report -dot deps.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bblearn: ")
	var (
		traceFile    = flag.String("trace", "", "trace file in the text format (default stdin)")
		bound        = flag.Int("bound", 32, "heuristic bound b (ignored with -exact)")
		exact        = flag.Bool("exact", false, "run the exact (exponential) algorithm")
		maxHyp       = flag.Int("max", 5_000_000, "abort the exact algorithm beyond this working-set size (0 = unlimited)")
		senderWin    = flag.Int64("sender-window", 0, "candidate policy: sender must end within this window before the rise (0 = unlimited)")
		receiverWin  = flag.Int64("receiver-window", 0, "candidate policy: receiver must start within this window after the fall (0 = unlimited)")
		maxSenders   = flag.Int("max-senders", 0, "candidate policy: keep only the K most recent enders as senders (0 = all)")
		maxReceivers = flag.Int("max-receivers", 0, "candidate policy: keep only the K soonest starters as receivers (0 = all)")
		all          = flag.Bool("all", false, "print every returned hypothesis, not only the least upper bound")
		dotFile      = flag.String("dot", "", "write the learned dependency graph as DOT to this file")
		report       = flag.Bool("report", false, "print the verification report (node classes, state-space impact)")
		progress     = flag.Bool("progress", false, "report per-period progress on stderr")
	)
	flag.Parse()

	in := os.Stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	tr, err := modelgen.ReadTrace(in)
	if err != nil {
		log.Fatalf("reading trace: %v", err)
	}

	opt := modelgen.LearnOptions{
		Policy: modelgen.CandidatePolicy{
			SenderWindow:   *senderWin,
			ReceiverWindow: *receiverWin,
			MaxSenders:     *maxSenders,
			MaxReceivers:   *maxReceivers,
		},
	}
	if *exact {
		opt.MaxHypotheses = *maxHyp
	} else {
		opt.Bound = *bound
	}
	if *progress {
		opt.Progress = func(phase string, period, _, size int) {
			if phase == "period" {
				fmt.Fprintf(os.Stderr, "period %d: %d hypotheses\n", period, size)
			}
		}
	}

	t0 := time.Now()
	res, err := modelgen.Learn(tr, opt)
	if err != nil {
		log.Fatalf("learning: %v", err)
	}
	elapsed := time.Since(t0)

	mode := fmt.Sprintf("heuristic (bound %d)", *bound)
	if *exact {
		mode = "exact"
	}
	fmt.Printf("algorithm:  %s\n", mode)
	fmt.Printf("run time:   %v\n", elapsed.Round(time.Microsecond))
	fmt.Printf("hypotheses: %d (peak %d, %d generalizations, %d merges, %d relaxations)\n",
		len(res.Hypotheses), res.Stats.Peak, res.Stats.Children, res.Stats.Merges, res.Stats.Relaxations)
	fmt.Printf("converged:  %v\n\n", res.Converged)

	if *all {
		for i, d := range res.Hypotheses {
			fmt.Printf("hypothesis %d (weight %d):\n%s\n", i+1, d.Weight(), d.Table())
		}
	}
	fmt.Println("least upper bound:")
	fmt.Println(res.LUB.Table())

	if *report {
		rep := modelgen.Analyze(res.LUB)
		fmt.Printf("disjunction nodes:   %v\n", rep.Disjunctions)
		fmt.Printf("conjunction nodes:   %v\n", rep.Conjunctions)
		fmt.Printf("dependency entries:  %d firm, %d conditional, %d unknown, %d independent (of %d)\n",
			rep.Firm, rep.Conditional, rep.Unknown, rep.Independent, rep.TotalPairs)
		fmt.Printf("ordering known:      %.1f%%\n", rep.OrderingKnown*100)
		fmt.Printf("interleavings cut:   %.1f%%\n", rep.InterleavingReduction*100)
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(res.LUB.DOT("learned")), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *dotFile, err)
		}
	}
}
