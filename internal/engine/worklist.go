package engine

import (
	"sort"

	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

// workList is the engine's working collection of hypotheses. With a
// positive bound it is kept sorted by ascending weight and every
// addition that overflows the bound merges the two lightest elements
// into their least upper bound (Section 3.2).
type workList struct {
	bound int
	items []*hypothesis.Hypothesis
	stats *Stats
	obsv  obs.Observer
	ctx   hypothesis.StepCtx
}

func newWorkList(bound int, stats *Stats) *workList {
	return &workList{bound: bound, stats: stats}
}

func (wl *workList) add(h *hypothesis.Hypothesis) {
	if wl.bound <= 0 {
		wl.items = append(wl.items, h)
		return
	}
	wl.insert(h)
	for len(wl.items) > wl.bound {
		a, b := wl.items[0], wl.items[1]
		merged := a.Merge(b, wl.ctx)
		wl.items = wl.items[2:]
		wl.stats.Merges++
		if wl.obsv != nil {
			wl.obsv.OnHypothesisMerged(obs.HypothesisMerged{
				Period: wl.ctx.Period, Index: wl.ctx.Msg,
				WeightA: a.Weight(), WeightB: b.Weight(), WeightMerged: merged.Weight(),
			})
		}
		wl.insert(merged)
	}
}

func (wl *workList) insert(h *hypothesis.Hypothesis) {
	w := h.Weight()
	i := sort.Search(len(wl.items), func(k int) bool { return wl.items[k].Weight() > w })
	wl.items = append(wl.items, nil)
	copy(wl.items[i+1:], wl.items[i:])
	wl.items[i] = h
}

// sortByWeight stably sorts hypotheses by ascending weight.
func sortByWeight(hs []*hypothesis.Hypothesis) {
	sort.SliceStable(hs, func(a, b int) bool { return hs[a].Weight() < hs[b].Weight() })
}
