// Package model describes ground-truth system design models in the
// control-flow model of computation of Section 2.1 of Feng et al.
// (DATE 2007): a set of predefined tasks executed repeatedly in
// periods, where a task fires when all its required inputs arrive,
// sends messages to other tasks when it completes, and no message
// crosses a period boundary.
//
// Nodes are classified as in the paper: a disjunction node
// conditionally sends messages to a chosen subset of its successors
// (selecting execution paths); a conjunction node passively receives
// messages from several possible predecessors. Regular nodes send on
// all outgoing edges.
//
// These models are what the learner is trying to reconstruct — the
// repository uses them as the hidden "black box" inside the simulator
// and to evaluate how faithfully learned dependency graphs reflect the
// original design.
package model

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/blackbox-rt/modelgen/internal/dot"
)

// Kind classifies a task node (Section 2.1).
type Kind int

const (
	// Regular tasks send on every outgoing edge when they execute.
	Regular Kind = iota
	// Disjunction tasks choose a non-empty subset of their outgoing
	// edges each period.
	Disjunction
	// Conjunction tasks fire on the arrival of whichever inputs were
	// actually sent this period; the kind is declarative (used for
	// evaluation), execution semantics are identical to Regular on
	// the output side.
	Conjunction
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Regular:
		return "regular"
	case Disjunction:
		return "disjunction"
	case Conjunction:
		return "conjunction"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Task is one node of the design model.
type Task struct {
	Name string
	Kind Kind
	// Priority is the fixed OSEK scheduling priority; larger numbers
	// preempt smaller ones. Priorities must be unique within a model.
	Priority int
	// BCET and WCET bound the execution time; the simulator draws
	// per-job execution times from [BCET, WCET].
	BCET, WCET int64
	// Source marks tasks released by the period timer rather than by
	// message arrival. Offset delays the release past the period
	// boundary.
	Source bool
	Offset int64
	// ECU names the electronic control unit the task runs on. Tasks
	// on different ECUs execute in parallel; tasks sharing an ECU are
	// scheduled by that ECU's fixed-priority preemptive kernel. The
	// empty string means the model's default (single) ECU.
	ECU string
	// EmitsSync marks an infrastructure task that broadcasts a sync
	// frame on the bus when it completes, with no design receiver —
	// the mechanism behind the paper's "implicit dependency between
	// task Q and O" discovered from the trace.
	EmitsSync bool
	// WaitsSync gates the task's release on the arrival of the sync
	// frame in addition to its design inputs. This is infrastructure
	// behaviour invisible in the component's specification.
	WaitsSync bool
}

// Edge is a directed design message: when From completes (and, for
// disjunction nodes, chooses this edge), one message is sent to To.
type Edge struct {
	From, To string
	// CANID is the bus arbitration identifier; lower wins. Unique per
	// edge.
	CANID int
	// DLC is the CAN payload length in bytes (0..8).
	DLC int
}

// Model is a complete design: the predefined task set, the message
// edges and the period.
type Model struct {
	Name   string
	Period int64
	Tasks  []Task
	Edges  []Edge
	// SyncCANID/SyncDLC configure the infrastructure sync frame
	// emitted by EmitsSync tasks.
	SyncCANID int
	SyncDLC   int

	index map[string]int
}

// TaskNames returns the task names in declaration order.
func (m *Model) TaskNames() []string {
	out := make([]string, len(m.Tasks))
	for i, t := range m.Tasks {
		out[i] = t.Name
	}
	return out
}

// Task returns the named task, or nil.
func (m *Model) Task(name string) *Task {
	m.ensureIndex()
	if i, ok := m.index[name]; ok {
		return &m.Tasks[i]
	}
	return nil
}

func (m *Model) ensureIndex() {
	if m.index == nil {
		m.index = make(map[string]int, len(m.Tasks))
		for i, t := range m.Tasks {
			m.index[t.Name] = i
		}
	}
}

// OutEdges returns the edges leaving the named task, in declaration
// order.
func (m *Model) OutEdges(name string) []Edge {
	var out []Edge
	for _, e := range m.Edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// InEdges returns the edges entering the named task.
func (m *Model) InEdges(name string) []Edge {
	var out []Edge
	for _, e := range m.Edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks the structural invariants of the model.
func (m *Model) Validate() error {
	if len(m.Tasks) == 0 {
		return fmt.Errorf("model %s: no tasks", m.Name)
	}
	if m.Period <= 0 {
		return fmt.Errorf("model %s: period must be positive", m.Name)
	}
	names := map[string]bool{}
	type ecuPrio struct {
		ecu  string
		prio int
	}
	prios := map[ecuPrio]string{}
	hasSync := false
	for _, t := range m.Tasks {
		if t.Name == "" {
			return fmt.Errorf("model %s: empty task name", m.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("model %s: duplicate task %q", m.Name, t.Name)
		}
		names[t.Name] = true
		key := ecuPrio{t.ECU, t.Priority}
		if prev, dup := prios[key]; dup {
			return fmt.Errorf("model %s: tasks %q and %q share priority %d on ECU %q",
				m.Name, prev, t.Name, t.Priority, t.ECU)
		}
		prios[key] = t.Name
		if t.BCET <= 0 || t.WCET < t.BCET {
			return fmt.Errorf("model %s: task %q has invalid execution times [%d, %d]", m.Name, t.Name, t.BCET, t.WCET)
		}
		if t.Offset < 0 || t.Offset >= m.Period {
			return fmt.Errorf("model %s: task %q offset %d outside period", m.Name, t.Name, t.Offset)
		}
		if t.EmitsSync {
			hasSync = true
		}
	}
	canIDs := map[int]bool{}
	for _, e := range m.Edges {
		if !names[e.From] || !names[e.To] {
			return fmt.Errorf("model %s: edge %s->%s references unknown task", m.Name, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("model %s: self edge on %q", m.Name, e.From)
		}
		if e.DLC < 0 || e.DLC > 8 {
			return fmt.Errorf("model %s: edge %s->%s has DLC %d", m.Name, e.From, e.To, e.DLC)
		}
		if canIDs[e.CANID] {
			return fmt.Errorf("model %s: duplicate CAN id %d", m.Name, e.CANID)
		}
		canIDs[e.CANID] = true
	}
	if hasSync && canIDs[m.SyncCANID] {
		return fmt.Errorf("model %s: sync CAN id %d collides with an edge", m.Name, m.SyncCANID)
	}
	for _, t := range m.Tasks {
		ins := m.InEdges(t.Name)
		outs := m.OutEdges(t.Name)
		if t.Source && len(ins) > 0 {
			return fmt.Errorf("model %s: source task %q has inputs", m.Name, t.Name)
		}
		if !t.Source && len(ins) == 0 {
			return fmt.Errorf("model %s: task %q has no inputs and is not a source", m.Name, t.Name)
		}
		if t.Kind == Disjunction && len(outs) < 2 {
			return fmt.Errorf("model %s: disjunction task %q has %d outgoing edges", m.Name, t.Name, len(outs))
		}
		if t.WaitsSync && !hasSync {
			return fmt.Errorf("model %s: task %q waits for a sync no task emits", m.Name, t.Name)
		}
	}
	if _, err := m.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns the task names in a topological order of the edge
// relation, or an error if the design graph is cyclic.
func (m *Model) topoOrder() ([]string, error) {
	indeg := map[string]int{}
	for _, t := range m.Tasks {
		indeg[t.Name] = 0
	}
	for _, e := range m.Edges {
		indeg[e.To]++
	}
	var queue []string
	for _, t := range m.Tasks {
		if indeg[t.Name] == 0 {
			queue = append(queue, t.Name)
		}
	}
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range m.OutEdges(n) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(m.Tasks) {
		return nil, fmt.Errorf("model %s: design graph is cyclic", m.Name)
	}
	return order, nil
}

// FiringPlan is the resolved nondeterminism of one period: which tasks
// fire and which design edges carry a message.
type FiringPlan struct {
	Fired map[string]bool
	// ChosenEdges lists the edges carrying a message this period, in
	// model declaration order.
	ChosenEdges []Edge
}

// Fire resolves one period's logical decisions: source tasks always
// fire; a disjunction node picks a uniformly random non-empty subset
// of its outgoing edges; other nodes send on all outgoing edges; a
// non-source task fires iff at least one chosen edge reaches it from a
// fired task.
func (m *Model) Fire(r *rand.Rand) *FiringPlan {
	order, err := m.topoOrder()
	if err != nil {
		panic(err) // Validate rejects cyclic models
	}
	plan := &FiringPlan{Fired: map[string]bool{}}
	chosen := map[int]bool{} // by CANID
	incoming := map[string]bool{}
	for _, name := range order {
		t := m.Task(name)
		fires := t.Source || incoming[name]
		if !fires {
			continue
		}
		plan.Fired[name] = true
		outs := m.OutEdges(name)
		if len(outs) == 0 {
			continue
		}
		var selected []Edge
		if t.Kind == Disjunction {
			for {
				selected = selected[:0]
				for _, e := range outs {
					if r.Intn(2) == 1 {
						selected = append(selected, e)
					}
				}
				if len(selected) > 0 {
					break
				}
			}
		} else {
			selected = outs
		}
		for _, e := range selected {
			chosen[e.CANID] = true
			incoming[e.To] = true
		}
	}
	for _, e := range m.Edges {
		if chosen[e.CANID] {
			plan.ChosenEdges = append(plan.ChosenEdges, e)
		}
	}
	return plan
}

// DOT renders the design model (the paper's Figure 1 style):
// disjunction nodes as diamonds, conjunction nodes as double circles.
func (m *Model) DOT() string {
	g := dot.NewGraph(m.Name)
	g.Attr("rankdir", "TB")
	for _, t := range m.Tasks {
		switch t.Kind {
		case Disjunction:
			g.Node(t.Name, "shape", "diamond")
		case Conjunction:
			g.Node(t.Name, "shape", "doublecircle")
		default:
			g.Node(t.Name, "shape", "circle")
		}
	}
	for _, e := range m.Edges {
		g.Edge(e.From, e.To)
	}
	return g.String()
}

// MustExecutePairs computes the ground-truth unconditional
// dependencies of the design by exhaustively enumerating disjunction
// choices (suitable for small models): the returned set contains
// (a, b) iff in every resolvable period where a fires, b fires too.
// The bool result is false if enumeration was abandoned because the
// model has more than maxChoiceBits bits of nondeterminism.
func (m *Model) MustExecutePairs(maxChoiceBits int) (map[[2]string]bool, bool) {
	var disj []Task
	bits := 0
	for _, t := range m.Tasks {
		if t.Kind == Disjunction {
			disj = append(disj, t)
			bits += len(m.OutEdges(t.Name))
		}
	}
	if bits > maxChoiceBits {
		return nil, false
	}
	order, err := m.topoOrder()
	if err != nil {
		return nil, false
	}
	// coFire[a][b] = a fired without b in some resolution.
	names := m.TaskNames()
	violated := map[[2]string]bool{}
	var enumerate func(i int, choice map[int]bool)
	evaluate := func(choice map[int]bool) {
		fired := map[string]bool{}
		incoming := map[string]bool{}
		for _, name := range order {
			t := m.Task(name)
			if !t.Source && !incoming[name] {
				continue
			}
			fired[name] = true
			for _, e := range m.OutEdges(name) {
				if t.Kind != Disjunction || choice[e.CANID] {
					incoming[e.To] = true
				}
			}
		}
		for _, a := range names {
			if !fired[a] {
				continue
			}
			for _, b := range names {
				if a != b && !fired[b] {
					violated[[2]string{a, b}] = true
				}
			}
		}
	}
	enumerate = func(i int, choice map[int]bool) {
		if i == len(disj) {
			evaluate(choice)
			return
		}
		outs := m.OutEdges(disj[i].Name)
		for mask := 1; mask < 1<<len(outs); mask++ {
			for k, e := range outs {
				choice[e.CANID] = mask&(1<<k) != 0
			}
			enumerate(i+1, choice)
		}
		for _, e := range outs {
			delete(choice, e.CANID)
		}
	}
	enumerate(0, map[int]bool{})
	must := map[[2]string]bool{}
	for _, a := range names {
		for _, b := range names {
			if a != b && !violated[[2]string{a, b}] {
				must[[2]string{a, b}] = true
			}
		}
	}
	return must, true
}

// SortedMustExecute renders MustExecutePairs deterministically for
// reports.
func SortedMustExecute(must map[[2]string]bool) [][2]string {
	out := make([][2]string, 0, len(must))
	for p := range must {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
