// Package casestudy freezes the experimental configurations used to
// reproduce the paper's evaluation (Section 3.4). All parameters are
// deterministic so every command, example, benchmark and test in this
// repository regenerates the same numbers.
//
// Two configurations exist:
//
//   - Full: the 18-task GM-style controller simulated for 27 periods,
//     matching the published trace statistics (≈330 messages, ≈700
//     event pairs). Used for the qualitative property experiment (E2),
//     the heuristic runtime table (E3) and the latency experiment
//     (E4). The exact algorithm is infeasible on this trace: with the
//     paper's purely causal candidate rule the mean sender/receiver
//     ambiguity is ≈25 pairs per message and the exact hypothesis set
//     grows beyond memory within one period.
//
//   - Lite: a seven-task subsystem with a high-fidelity logging
//     policy (timing windows plus nearest-K filtering, 100% ground
//     truth coverage) on which the exact algorithm terminates. Used to
//     reproduce the paper's exact-vs-heuristic comparison and the
//     convergence theorem checks.
package casestudy

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// The published case-study shape: 27 periods; the paper's runtime
// table sweeps these heuristic bounds.
const (
	Periods = 27
	Seed    = 7
)

// Bounds is the bound column of the paper's runtime table.
var Bounds = []int{1, 4, 16, 32, 64, 100, 120, 150}

// FullModel returns the 18-task GM-style controller.
func FullModel() *model.Model { return model.GMStyle() }

// LiteModel returns the 7-task subsystem used for exact runs.
func LiteModel() *model.Model { return model.GMStyleLite() }

// FullPolicy is the paper's purely causal candidate rule: any task
// that finished before a message's rising edge may be its sender, any
// task that started after its falling edge may be its receiver.
func FullPolicy() depfunc.CandidatePolicy { return depfunc.CandidatePolicy{} }

// LitePolicy is the high-fidelity logging rule used for exact runs on
// the lite configuration. The windows are calibrated against the
// simulator's ground truth (max true sender lag 190 µs, max true
// receiver lead 2941 µs at the frozen seed) with generous margins;
// tests verify 100% ground-truth coverage.
func LitePolicy() depfunc.CandidatePolicy {
	return depfunc.CandidatePolicy{
		SenderWindow:   800,
		ReceiverWindow: 3500,
		MaxSenders:     2,
		MaxReceivers:   2,
	}
}

// FullTrace simulates the full configuration.
func FullTrace() (*sim.Output, error) {
	return sim.Run(FullModel(), sim.Options{Periods: Periods, Seed: Seed})
}

// LiteTrace simulates the lite configuration.
func LiteTrace() (*sim.Output, error) {
	return sim.Run(LiteModel(), sim.Options{Periods: Periods, Seed: Seed})
}

// MustFullTrace and MustLiteTrace panic on error; the configurations
// are frozen and simulate deterministically, so failure means the
// repository itself is broken.
func MustFullTrace() *trace.Trace {
	out, err := FullTrace()
	if err != nil {
		panic(fmt.Sprintf("casestudy: full trace: %v", err))
	}
	return out.Trace
}

// MustLiteTrace returns the lite configuration's trace.
func MustLiteTrace() *trace.Trace {
	out, err := LiteTrace()
	if err != nil {
		panic(fmt.Sprintf("casestudy: lite trace: %v", err))
	}
	return out.Trace
}

// CriticalPath is the end-to-end path including task Q examined by the
// paper's latency discussion.
func CriticalPath() []string { return []string{"S", "A", "D", "L", "P", "Q"} }
