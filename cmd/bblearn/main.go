// Command bblearn runs the generalization algorithm of Feng et al.
// (DATE 2007) over a trace file and prints the learned dependency
// model.
//
// Usage:
//
//	bblearn -trace trace.txt -bound 32
//	bblearn -trace trace.txt -exact -max 1000000
//	bblearn -trace trace.txt -bound 16 -report -dot deps.dot
//	bblearn -trace trace.txt -v -stats -events run.jsonl -pprof :6060
//	bblearn -trace trace.txt -exact -explain t1,t4
//
// Observability: -v prints a per-period progress line, -stats a
// run-statistics table (periods, peak/final hypotheses, merges,
// candidate fan-out, elapsed), -events writes the structured JSONL
// event stream for offline analysis, -explain records provenance and
// prints the derivation chain of one dependency entry, and -pprof
// serves /debug/pprof/ plus /metrics during the run for profiling
// long exact learns.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	modelgen "github.com/blackbox-rt/modelgen"
)

// progressObserver is the -v reporter: one line per period on stderr,
// driven by the structured run-trace instead of ad-hoc prints.
type progressObserver struct{ modelgen.NopObserver }

func (progressObserver) OnPeriodEnd(e modelgen.PeriodEndEvent) {
	fmt.Fprintf(os.Stderr, "period %4d: %d hypotheses (dropped %d, weight %d..%d)\n",
		e.Period, e.Live, e.Dropped, e.WeightMin, e.WeightMax)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bblearn: ")
	var (
		traceFile    = flag.String("trace", "", "trace file in the text format (default stdin)")
		bound        = flag.Int("bound", 32, "heuristic bound b (ignored with -exact)")
		workers      = flag.Int("workers", 1, "engine worker-pool size for the per-message fan-out (1 = sequential; results are identical for any value)")
		exact        = flag.Bool("exact", false, "run the exact (exponential) algorithm")
		maxHyp       = flag.Int("max", 5_000_000, "abort the exact algorithm beyond this working-set size (0 = unlimited)")
		senderWin    = flag.Int64("sender-window", 0, "candidate policy: sender must end within this window before the rise (0 = unlimited)")
		receiverWin  = flag.Int64("receiver-window", 0, "candidate policy: receiver must start within this window after the fall (0 = unlimited)")
		maxSenders   = flag.Int("max-senders", 0, "candidate policy: keep only the K most recent enders as senders (0 = all)")
		maxReceivers = flag.Int("max-receivers", 0, "candidate policy: keep only the K soonest starters as receivers (0 = all)")
		all          = flag.Bool("all", false, "print every returned hypothesis, not only the least upper bound")
		dotFile      = flag.String("dot", "", "write the learned dependency graph as DOT to this file")
		report       = flag.Bool("report", false, "print the verification report (node classes, state-space impact)")
		verbose      = flag.Bool("v", false, "per-period progress on stderr")
		stats        = flag.Bool("stats", false, "print the run-statistics table")
		eventsFile   = flag.String("events", "", "write the JSONL event stream to this file")
		explain      = flag.String("explain", "", "record provenance and print the derivation chain of entry d(T1,T2) (format: T1,T2)")
		pprofAddr    = flag.String("pprof", "", "serve /debug/pprof/ and /metrics on this address during the run (e.g. :6060)")
	)
	flag.Parse()

	var (
		observers []modelgen.Observer
		reg       *modelgen.MetricsRegistry
		sink      *modelgen.JSONLFileSink
	)
	if *stats || *pprofAddr != "" {
		reg = modelgen.NewMetricsRegistry()
		observers = append(observers, modelgen.NewMetricsObserver(reg))
	}
	if *eventsFile != "" {
		var err error
		sink, err = modelgen.OpenJSONLFile(*eventsFile)
		if err != nil {
			log.Fatal(err)
		}
		observers = append(observers, sink)
	}
	// fatalf flushes the event sink before exiting: on a failure the
	// events leading up to it are the diagnostic.
	fatalf := func(format string, args ...any) {
		if sink != nil {
			_ = sink.Close()
		}
		log.Fatalf(format, args...)
	}
	if *verbose {
		observers = append(observers, progressObserver{})
	}
	obsv := modelgen.CombineObservers(observers...)
	if *pprofAddr != "" {
		srv, err := modelgen.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatalf("pprof server: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bblearn: profiling on http://%s/debug/pprof/ (metrics on /metrics)\n", srv.Addr)
	}

	in := os.Stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	tr, err := modelgen.ReadTraceObserved(in, obsv)
	if err != nil {
		fatalf("reading trace: %v", err)
	}

	opt := modelgen.LearnOptions{
		Policy: modelgen.CandidatePolicy{
			SenderWindow:   *senderWin,
			ReceiverWindow: *receiverWin,
			MaxSenders:     *maxSenders,
			MaxReceivers:   *maxReceivers,
		},
		Workers:    *workers,
		Observer:   obsv,
		Provenance: *explain != "",
	}
	if *exact {
		opt.MaxHypotheses = *maxHyp
	} else {
		opt.Bound = *bound
	}

	res, err := modelgen.Learn(tr, opt)
	if err != nil {
		fatalf("learning: %v", err)
	}

	mode := fmt.Sprintf("heuristic (bound %d)", *bound)
	if *exact {
		mode = "exact"
	}
	fmt.Printf("algorithm:  %s\n", mode)
	fmt.Printf("run time:   %v\n", res.Stats.Elapsed.Round(time.Microsecond))
	fmt.Printf("hypotheses: %d (peak %d, %d generalizations, %d merges, %d relaxations)\n",
		len(res.Hypotheses), res.Stats.Peak, res.Stats.Children, res.Stats.Merges, res.Stats.Relaxations)
	fmt.Printf("converged:  %v\n\n", res.Converged)

	if *stats {
		printStats(res, reg)
	}
	if *explain != "" {
		t1, t2, ok := strings.Cut(*explain, ",")
		if !ok {
			fatalf("-explain wants T1,T2 (e.g. -explain t1,t4)")
		}
		t1, t2 = strings.TrimSpace(t1), strings.TrimSpace(t2)
		steps, err := res.Explain(t1, t2)
		if err != nil {
			fatalf("explain: %v", err)
		}
		fmt.Printf("derivation of d(%s,%s) = %s (most specific hypothesis):\n",
			t1, t2, res.Hypotheses[0].At(res.TaskSet.Index(t1), res.TaskSet.Index(t2)))
		if len(steps) == 0 {
			fmt.Println("  (no steps: the entry never left ||)")
		}
		for _, s := range steps {
			fmt.Printf("  %s\n", s.Format(res.TaskSet))
		}
		fmt.Println()
	}
	if *all {
		for i, d := range res.Hypotheses {
			fmt.Printf("hypothesis %d (weight %d):\n%s\n", i+1, d.Weight(), d.Table())
		}
	}
	fmt.Println("least upper bound:")
	fmt.Println(res.LUB.Table())

	if *report {
		rep := modelgen.Analyze(res.LUB)
		fmt.Printf("disjunction nodes:   %v\n", rep.Disjunctions)
		fmt.Printf("conjunction nodes:   %v\n", rep.Conjunctions)
		fmt.Printf("dependency entries:  %d firm, %d conditional, %d unknown, %d independent (of %d)\n",
			rep.Firm, rep.Conditional, rep.Unknown, rep.Independent, rep.TotalPairs)
		fmt.Printf("ordering known:      %.1f%%\n", rep.OrderingKnown*100)
		fmt.Printf("interleavings cut:   %.1f%%\n", rep.InterleavingReduction*100)
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(res.LUB.DOT("learned")), 0o644); err != nil {
			fatalf("writing %s: %v", *dotFile, err)
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			log.Fatalf("writing %s: %v", *eventsFile, err)
		}
	}
}

// printStats renders the run-statistics table: headline numbers from
// LearnResult.Stats plus the candidate fan-out distribution from the
// metrics registry.
func printStats(res *modelgen.LearnResult, reg *modelgen.MetricsRegistry) {
	s := res.Stats
	fmt.Println("stats:")
	fmt.Printf("  periods:           %d\n", s.Periods)
	fmt.Printf("  messages:          %d\n", s.Messages)
	fmt.Printf("  candidate pairs:   %d", s.Candidates)
	if s.Messages > 0 {
		fmt.Printf(" (%.1f per message)", float64(s.Candidates)/float64(s.Messages))
	}
	fmt.Println()
	fmt.Printf("  hypotheses peak:   %d\n", s.Peak)
	fmt.Printf("  hypotheses final:  %d\n", s.Final)
	fmt.Printf("  generalizations:   %d\n", s.Children)
	fmt.Printf("  merges:            %d\n", s.Merges)
	fmt.Printf("  relaxations:       %d\n", s.Relaxations)
	fmt.Printf("  elapsed:           %v\n", s.Elapsed.Round(time.Microsecond))
	if len(s.PeriodLive) > 0 {
		fmt.Printf("  live per period:   %v\n", s.PeriodLive)
	}
	if reg != nil {
		snap := reg.Snapshot()
		if m, ok := snap["modelgen_learner_candidates_per_message"]; ok && m.Count > 0 {
			fmt.Printf("  candidate fan-out: ")
			prev := int64(0)
			for _, b := range m.Buckets {
				if b.Count > prev {
					fmt.Printf("<=%g:%d ", b.LE, b.Count-prev)
				}
				prev = b.Count
			}
			if rest := m.Count - prev; rest > 0 {
				fmt.Printf(">%g:%d", m.Buckets[len(m.Buckets)-1].LE, rest)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}
