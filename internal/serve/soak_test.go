//go:build soak

package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// TestSoak drives the service the way a deployment would: many
// streams, each fed hundreds of simulated periods through the HTTP
// API with periodic checkpointing enabled, all concurrently. It then
// checks the three long-run health properties the short integration
// tests cannot: every stream still converges to the batch-learner
// model, no goroutine outlives its stream, and heap usage returns to
// (near) baseline once the streams are gone — i.e. per-stream state
// really is bounded (PeriodLiveCap, the retention ring, the ingest
// queue) and really is released.
//
// Run it with the soak build tag, e.g. `make soak`.
func TestSoak(t *testing.T) {
	const (
		nStreams = 16
		nPeriods = 600
		chunk    = 40 // feed lines per request
	)

	// Pre-generate the traces and batch answers before measuring the
	// baseline, so trace memory is not attributed to the server.
	traces := make([]*trace.Trace, nStreams)
	wantLUB := make([]string, nStreams)
	opt := LearnOptions{Bound: 8, RetainPeriods: 4, PeriodLiveCap: 64}
	for i := range traces {
		out, err := sim.Run(model.Figure1(), sim.Options{Periods: nPeriods, Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = out.Trace
		res, err := learner.Learn(out.Trace, opt.options())
		if err != nil {
			t.Fatal(err)
		}
		wantLUB[i] = res.LUB.Table()
	}

	goroutinesBefore := runtime.NumGoroutine()
	heapBefore := heapInUse()

	sv := New(Config{
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 50,
		QueueDepth:      32,
	})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)

	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("soak%02d", i)
		c.createStream(CreateStreamRequest{ID: id, Tasks: traces[i].Tasks, Options: opt})
		go func(i int, id string) {
			lines := strings.Split(strings.TrimRight(traces[i].String(), "\n"), "\n")
			lines = append(lines, "period")
			for at := 0; at < len(lines); at += chunk {
				end := at + chunk
				if end > len(lines) {
					end = len(lines)
				}
				body := strings.Join(lines[at:end], "\n")
				for {
					resp, out := c.do("POST", "/v1/streams/"+id+"/events", []byte(body))
					if resp.StatusCode == http.StatusAccepted {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("stream %s: %d %s", id, resp.StatusCode, out)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			errs <- nil
		}(i, id)
	}
	for i := 0; i < nStreams; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("soak%02d", i)
		m := c.model(id)
		if m.LUB != wantLUB[i] {
			t.Errorf("stream %s LUB diverged from batch:\n%s\nvs\n%s", id, m.LUB, wantLUB[i])
		}
		st := c.stats(id)
		if st.PeriodsLearned != len(traces[i].Periods) {
			t.Errorf("stream %s learned %d periods, fed %d", id, st.PeriodsLearned, len(traces[i].Periods))
		}
		// PeriodLiveCap bounds the live-count series however long the
		// stream runs.
		if got := len(st.Engine.PeriodLive); got > opt.PeriodLiveCap {
			t.Errorf("stream %s PeriodLive holds %d samples, cap is %d", id, got, opt.PeriodLiveCap)
		}
	}

	// Tear everything down and verify nothing is left behind.
	for i := 0; i < nStreams; i++ {
		resp, _ := c.do("DELETE", fmt.Sprintf("/v1/streams/soak%02d", i), nil)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete soak%02d: %d", i, resp.StatusCode)
		}
	}
	ts.Close()
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > goroutinesBefore {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			goroutinesBefore, now, buf[:runtime.Stack(buf, true)])
	}

	heapAfter := heapInUse()
	const budget = 32 << 20
	if heapAfter > heapBefore+budget {
		t.Fatalf("heap grew %d -> %d bytes (budget %d): per-stream state not released",
			heapBefore, heapAfter, budget)
	}
}

func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}
