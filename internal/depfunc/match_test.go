package depfunc

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

func figure2() *trace.Trace { return trace.PaperFigure2() }

func TestCandidatesFigure2Period1(t *testing.T) {
	tr := figure2()
	ts := MustTaskSet(tr.Tasks...)
	cands := Candidates(tr.Periods[0], ts, CandidatePolicy{})
	if len(cands) != 2 {
		t.Fatalf("candidate sets = %d, want 2", len(cands))
	}
	// m1: sender t1; receivers t2, t4.
	want1 := map[Pair]bool{{0, 1}: true, {0, 3}: true}
	if !samePairs(cands[0], want1) {
		t.Errorf("m1 candidates = %v, want (t1,t2),(t1,t4)", cands[0])
	}
	// m2: senders t1, t2; receiver t4.
	want2 := map[Pair]bool{{0, 3}: true, {1, 3}: true}
	if !samePairs(cands[1], want2) {
		t.Errorf("m2 candidates = %v, want (t1,t4),(t2,t4)", cands[1])
	}
}

func TestCandidatesFigure2Period3(t *testing.T) {
	tr := figure2()
	ts := MustTaskSet(tr.Tasks...)
	cands := Candidates(tr.Periods[2], ts, CandidatePolicy{})
	if len(cands) != 4 {
		t.Fatalf("candidate sets = %d, want 4", len(cands))
	}
	// m5, m6: sender t1; receivers t3, t2, t4.
	wantEarly := map[Pair]bool{{0, 2}: true, {0, 1}: true, {0, 3}: true}
	for mi := 0; mi < 2; mi++ {
		if !samePairs(cands[mi], wantEarly) {
			t.Errorf("m%d candidates = %v", 5+mi, cands[mi])
		}
	}
	// m7: senders t1, t3; t4 is the only receiver (t2 started before
	// m7 fell, overlapping t3's execution).
	want7 := map[Pair]bool{{0, 3}: true, {2, 3}: true}
	if !samePairs(cands[2], want7) {
		t.Errorf("m7 candidates = %v", cands[2])
	}
	// m8: senders t1, t3, t2; receiver t4.
	want8 := map[Pair]bool{{0, 3}: true, {2, 3}: true, {1, 3}: true}
	if !samePairs(cands[3], want8) {
		t.Errorf("m8 candidates = %v", cands[3])
	}
}

func samePairs(got []Pair, want map[Pair]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, p := range got {
		if !want[p] {
			return false
		}
	}
	return true
}

func TestCandidatesWindows(t *testing.T) {
	tr := trace.NewBuilder([]string{"a", "b", "c"}).
		StartPeriod().
		Exec("a", 0, 10).
		Exec("b", 0, 48). // ends long before the rise
		Msg("m", 50, 52).
		Exec("c", 60, 70).
		MustBuild()
	ts := MustTaskSet("a", "b", "c")
	all := Candidates(tr.Periods[0], ts, CandidatePolicy{})
	if len(all[0]) != 2 { // (a,c) and (b,c)
		t.Fatalf("unwindowed candidates = %v", all[0])
	}
	tight := Candidates(tr.Periods[0], ts, CandidatePolicy{SenderWindow: 5})
	if len(tight[0]) != 1 || tight[0][0] != (Pair{1, 2}) {
		t.Fatalf("sender-windowed candidates = %v, want [(b,c)]", tight[0])
	}
	recv := Candidates(tr.Periods[0], ts, CandidatePolicy{ReceiverWindow: 5})
	if len(recv[0]) != 0 {
		t.Fatalf("receiver-windowed candidates = %v, want none (c starts 8 after fall)", recv[0])
	}
}

func TestCandidatesSenderReceiverDistinct(t *testing.T) {
	// A task that both ends before the rise and starts after the fall
	// is impossible, but a self-pair can only arise from a bug; check
	// none are produced even with a zero-length execution.
	tr := trace.NewBuilder([]string{"a"}).
		StartPeriod().Exec("a", 0, 1).Msg("m", 2, 3).
		MustBuild()
	ts := MustTaskSet("a")
	cands := Candidates(tr.Periods[0], ts, CandidatePolicy{})
	if len(cands[0]) != 0 {
		t.Fatalf("candidates = %v, want none", cands[0])
	}
}

func TestMatchImplicationViolation(t *testing.T) {
	tr := figure2()
	d := Bottom(MustTaskSet(tr.Tasks...))
	// d(t1,t2) = -> is violated by period 2 (t1 runs, t2 does not)...
	d.Set(0, 1, lattice.Fwd)
	d.Set(1, 0, lattice.Bwd)
	if Match(d, tr.Periods[1], CandidatePolicy{}) {
		t.Error("period 2 should violate d(t1,t2)=->")
	}
	// ...but the messages of period 2 cannot be explained by this d
	// either, so period 1 also fails (no admissible pairs for m2).
	if err := MatchExplain(d, tr.Periods[1], CandidatePolicy{}); err == nil {
		t.Error("MatchExplain should return an error")
	}
}

func TestMatchAssignment(t *testing.T) {
	tr := figure2()
	// The paper's d21: m1 from t1 to t2, m2 from t1 to t4.
	d21 := MustParseTable(`
      t1   t2   t3   t4
t1    ||   ->   ||   ->
t2    <-   ||   ||   ||
t3    ||   ||   ||   ||
t4    <-   ||   ||   ||
`)
	if !Match(d21, tr.Periods[0], CandidatePolicy{}) {
		t.Error("d21 should match period 1")
	}
	// d21 does not match period 2: m3/m4 need t3 pairs.
	if Match(d21, tr.Periods[1], CandidatePolicy{}) {
		t.Error("d21 should not match period 2")
	}
}

func TestMatchDistinctPairsConstraint(t *testing.T) {
	// Two messages whose only candidate pair is the same ordered pair
	// cannot both be explained.
	tr := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().
		Exec("a", 0, 10).
		Msg("m1", 11, 12).
		Msg("m2", 13, 14).
		Exec("b", 20, 30).
		MustBuild()
	ts := MustTaskSet("a", "b")
	d := Bottom(ts)
	d.Set(0, 1, lattice.Fwd)
	d.Set(1, 0, lattice.Bwd)
	if Match(d, tr.Periods[0], CandidatePolicy{}) {
		t.Error("two messages on one pair should not match")
	}
	// With <->? everywhere both directions... still only pair (a,b)
	// and (b,a); (b,a) is not timing-feasible, so Top fails too.
	if Match(Top(ts), tr.Periods[0], CandidatePolicy{}) {
		t.Error("Top should not match: only one feasible pair for two messages")
	}
}

func TestMatchBacktracking(t *testing.T) {
	// m1 can be (a,c) or (b,c); m2 only (a,c). A greedy assignment of
	// m1 to (a,c) must backtrack.
	tr := trace.NewBuilder([]string{"a", "b", "c"}).
		StartPeriod().
		Exec("a", 0, 10).
		Exec("b", 0, 12).
		Msg("m1", 13, 14). // senders a,b
		Msg("m2", 15, 16). // senders a,b
		Exec("c", 20, 30).
		MustBuild()
	ts := MustTaskSet("a", "b", "c")
	d := Bottom(ts)
	// allow only (a,c) and (b,c)
	d.Set(0, 2, lattice.FwdMaybe)
	d.Set(2, 0, lattice.BwdMaybe)
	d.Set(1, 2, lattice.FwdMaybe)
	d.Set(2, 1, lattice.BwdMaybe)
	if !Match(d, tr.Periods[0], CandidatePolicy{}) {
		t.Error("assignment {m1:(a,c), m2:(b,c)} (or swap) exists; Match failed")
	}
}

func TestMatchTopOnFigure2(t *testing.T) {
	tr := figure2()
	ts := MustTaskSet(tr.Tasks...)
	ok, fail := MatchTrace(Top(ts), tr, CandidatePolicy{})
	if !ok {
		t.Errorf("Top should match the whole paper trace, failed at period %d", fail)
	}
}

func TestMatchBottomFailsWithMessages(t *testing.T) {
	tr := figure2()
	ts := MustTaskSet(tr.Tasks...)
	ok, fail := MatchTrace(Bottom(ts), tr, CandidatePolicy{})
	if ok {
		t.Error("Bottom cannot explain any message")
	}
	if fail != 0 {
		t.Errorf("first failure at period %d, want 0", fail)
	}
}

func TestMatchEmptyPeriod(t *testing.T) {
	ts := MustTaskSet("a", "b")
	p := &trace.Period{Execs: map[string]trace.Interval{}}
	if !Match(Bottom(ts), p, CandidatePolicy{}) {
		t.Error("empty period should match Bottom")
	}
}

func TestMatchTraceAllMatchIndex(t *testing.T) {
	tr := figure2()
	ts := MustTaskSet(tr.Tasks...)
	if _, idx := MatchTrace(Top(ts), tr, CandidatePolicy{}); idx != -1 {
		t.Errorf("index = %d, want -1", idx)
	}
}
