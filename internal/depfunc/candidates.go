package depfunc

import (
	"sort"

	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Pair is an ordered (sender, receiver) task-index pair.
type Pair struct {
	S, R int
}

// CandidatePolicy controls how timing-feasible (sender, receiver)
// candidate pairs are computed for a message occurrence. The paper's
// baseline rule is purely causal: any task that finished before the
// message's rising edge can be its sender, and any task that started
// after its falling edge can be its receiver. Optional windows tighten
// the rule when the logging clock resolution permits, shrinking the
// hypothesis space.
type CandidatePolicy struct {
	// SenderWindow, when positive, requires the sender to have ended
	// within [rise-SenderWindow, rise].
	SenderWindow int64
	// ReceiverWindow, when positive, requires the receiver to have
	// started within [fall, fall+ReceiverWindow].
	ReceiverWindow int64
	// MaxSenders, when positive, keeps only the MaxSenders candidate
	// senders whose executions ended most recently before the rising
	// edge. This encodes the analyst's assumption that a frame is
	// queued shortly after its sender completes (bounded bus
	// backlog).
	MaxSenders int
	// MaxReceivers, when positive, keeps only the MaxReceivers
	// candidate receivers that start soonest after the falling edge.
	// This encodes the assumption that a message's receiver is
	// dispatched within a bounded number of task activations of its
	// arrival.
	MaxReceivers int
}

// Candidates computes, for each message of the period in rising-edge
// order, the set of timing-feasible (sender, receiver) pairs:
//
//	A_m = {(s, r) | s can be m's sender ∧ r can be m's receiver}
//
// A task s can be m's sender iff s executed in the period and ended at
// or before m's rising edge (messages are sent when the sender task
// finishes). A task r can be m's receiver iff r executed and started
// at or after m's falling edge (the firing rule is the arrival of all
// required inputs). Sender and receiver must differ.
func Candidates(p *trace.Period, ts *TaskSet, pol CandidatePolicy) [][]Pair {
	type exec struct {
		idx        int
		start, end int64
	}
	execs := make([]exec, 0, len(p.Execs))
	for name, iv := range p.Execs {
		if i := ts.Index(name); i >= 0 {
			execs = append(execs, exec{idx: i, start: iv.Start, end: iv.End})
		}
	}
	// Deterministic base order (p.Execs is a map).
	sort.Slice(execs, func(a, b int) bool { return execs[a].idx < execs[b].idx })
	out := make([][]Pair, len(p.Msgs))
	for mi, m := range p.Msgs {
		var senders, receivers []exec
		for _, e := range execs {
			if e.end <= m.Rise && (pol.SenderWindow <= 0 || e.end >= m.Rise-pol.SenderWindow) {
				senders = append(senders, e)
			}
			if e.start >= m.Fall && (pol.ReceiverWindow <= 0 || e.start <= m.Fall+pol.ReceiverWindow) {
				receivers = append(receivers, e)
			}
		}
		if pol.MaxSenders > 0 && len(senders) > pol.MaxSenders {
			sort.SliceStable(senders, func(a, b int) bool { return senders[a].end > senders[b].end })
			senders = senders[:pol.MaxSenders]
		}
		if pol.MaxReceivers > 0 && len(receivers) > pol.MaxReceivers {
			sort.SliceStable(receivers, func(a, b int) bool { return receivers[a].start < receivers[b].start })
			receivers = receivers[:pol.MaxReceivers]
		}
		pairs := make([]Pair, 0, len(senders)*len(receivers))
		for _, s := range senders {
			for _, r := range receivers {
				if s.idx != r.idx {
					pairs = append(pairs, Pair{S: s.idx, R: r.idx})
				}
			}
		}
		out[mi] = pairs
	}
	return out
}
