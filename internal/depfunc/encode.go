package depfunc

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// Wire encoding of a packed matrix for snapshots and WAL deltas: the
// lane words, little-endian, base64 (std, unpadded would save 2 bytes
// at the cost of a special case — keep std). The task set travels
// separately in the enclosing snapshot/delta record, so the encoding
// is only the n²-entry payload: 3 bits per entry, ~16× smaller than
// the human-readable Table form the v1 schema stored, and decoding is
// a copy plus validation instead of a parse.
//
// Decode never trusts the bytes: word count must match the task set,
// every lane must hold a real lattice code (the unused code 100 and
// any non-zero bits past the last entry are rejected), the diagonal
// must be ‖, and the fingerprint is recomputed from scratch rather
// than carried in the payload.

// EncodePacked returns the wire form of the matrix.
func (d *DepFunc) EncodePacked() string {
	lanes := d.w[1:]
	buf := make([]byte, 8*len(lanes))
	for i, w := range lanes {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodePacked reconstructs a matrix over ts from EncodePacked output.
func DecodePacked(ts *TaskSet, s string) (*DepFunc, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("depfunc: packed payload: %w", err)
	}
	n := ts.Len()
	nw := words(n)
	if len(raw) != 8*nw {
		return nil, fmt.Errorf("depfunc: packed payload is %d bytes, want %d for %d tasks", len(raw), 8*nw, n)
	}
	d := &DepFunc{ts: ts, w: acquire(1+nw, false)}
	lanes := d.w[1:]
	n2 := n * n
	for i := range lanes {
		w := binary.LittleEndian.Uint64(raw[8*i:])
		used := n2 - i*lattice.PackedLanes
		if used > lattice.PackedLanes {
			used = lattice.PackedLanes
		}
		if !lattice.ValidPackedWord(w, used) {
			return nil, fmt.Errorf("depfunc: packed word %d holds invalid lanes", i)
		}
		lanes[i] = w
	}
	for i := 0; i < n; i++ {
		if d.codeAt(i*n+i) != 0 {
			return nil, fmt.Errorf("depfunc: packed diagonal entry (%d,%d) is not ||", i, i)
		}
	}
	d.fp = d.freshFingerprint()
	return d, nil
}
