// Package serve implements the model-generation service: a
// long-running HTTP server multiplexing many independent trace
// streams, each backed by its own online learner (see
// internal/learner). A logging device POSTs raw trace or candump
// lines as they are captured; the service cuts periods server-side,
// feeds them to the stream's learner, and serves the current
// dependency-model frontier at any time — the paper's workflow turned
// into an always-on endpoint.
//
// Design:
//
//   - Per-stream goroutine ownership. Each stream's learner is
//     touched only by its owner goroutine; the HTTP layer communicates
//     through a bounded period queue and a closure request channel.
//     There is no shared mutable learner state and nothing to lock.
//   - Explicit backpressure. The ingest queue is bounded; a batch
//     that does not fit entirely is rejected with 429 and Retry-After
//     and leaves no partial state behind (clone-and-commit parsing),
//     so the producer can simply resend it.
//   - Checkpoints. Stream state (the versioned learner snapshot plus
//     the serve envelope) is written to disk atomically every
//     CheckpointEvery periods, on graceful shutdown, and on demand; a
//     restarted server reopens every checkpointed stream with
//     bit-identical learner state.
//   - Graceful drain. Shutdown stops ingest, lets every owner finish
//     the queued periods, checkpoints, and only then returns.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/blackbox-rt/modelgen/internal/drift"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

// Config configures a Server.
type Config struct {
	// CheckpointDir is where stream checkpoints live. Empty disables
	// checkpointing (streams are purely in-memory).
	CheckpointDir string
	// CheckpointEvery checkpoints a stream after this many learned
	// periods. Zero checkpoints only on demand and on shutdown.
	CheckpointEvery int
	// QueueDepth bounds each stream's ingest queue (default 256).
	QueueDepth int
	// MaxBody bounds an events request body in bytes (default 8 MiB).
	MaxBody int64
	// Registry, when non-nil, receives the service metrics:
	// serve_streams, serve_http_requests_total, serve_http_errors_total,
	// serve_ingest_offered_lines_total, serve_ingest_shed_lines_total,
	// the serve_ingest_latency_seconds histogram (enqueue → committed
	// model update, with trace exemplars when tracing is on), and
	// per-stream serve_queue_depth{stream=...},
	// serve_periods_total{stream=...}, serve_shed_total{stream=...}.
	// The registry's Prometheus handler is mounted at /metrics.
	Registry *obs.Registry
	// Tracer, when non-nil, records request traces: /events extracts
	// W3C traceparent headers, spans cover ingest → period_cut →
	// learn_period → engine phases, and /debug/traces serves the span
	// ring. Nil disables tracing with zero ingest-path overhead.
	Tracer *obs.Tracer
	// SLO, when non-nil, is mounted at /slo. The caller owns sampling
	// (slo.Monitor.Start) so tests can drive a synthetic clock.
	SLO http.Handler
}

// Server multiplexes trace streams over HTTP. Create with New, mount
// Handler, and Shutdown when done.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	streams map[string]*stream
	closed  bool
	nextID  atomic.Int64

	mStreams        *obs.Gauge
	mReqs, mErrs    *obs.Counter
	mOfferedLines   *obs.Counter
	mShedLines      *obs.Counter
	mLatency        *obs.Histogram
	mPeriodsLearned *obs.Counter
	mAlarmPeriods   *obs.Counter
	mDriftLag       *obs.Histogram
}

// errStreamExists marks create collisions so the handler can map them
// to 409 while other addStream failures stay 400.
var errStreamExists = errors.New("stream already exists")

// errServerClosed rejects work arriving after Shutdown began.
var errServerClosed = errors.New("serve: server is shutting down")

// New builds a Server. Call RestoreFromDir afterwards to reopen
// checkpointed streams.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	sv := &Server{cfg: cfg, streams: map[string]*stream{}}
	if reg := cfg.Registry; reg != nil {
		sv.mStreams = reg.Gauge("serve_streams", "Number of live trace streams.")
		sv.mReqs = reg.Counter("serve_http_requests_total", "API requests served.")
		sv.mErrs = reg.Counter("serve_http_errors_total", "API requests answered with a 5xx status.")
		sv.mOfferedLines = reg.Counter("serve_ingest_offered_lines_total", "Feed lines offered to ingest, shed or not.")
		sv.mShedLines = reg.Counter("serve_ingest_shed_lines_total", "Feed lines rejected with 429 under backpressure.")
		sv.mLatency = reg.HistogramWith(obs.HistogramOpts{
			Name: "serve_ingest_latency_seconds",
			Help: "Seconds from period enqueue to committed model update.",
		})
		sv.mPeriodsLearned = reg.Counter("serve_periods_learned_total",
			"Periods committed to a model update, across all streams.")
		sv.mAlarmPeriods = reg.Counter("serve_drift_alarm_periods_total",
			"Periods that raised a model change-point alarm, across all streams.")
		sv.mDriftLag = reg.HistogramWith(obs.HistogramOpts{
			Name:    obs.MetricDriftLag,
			Help:    "Periods between an estimated change point and its alarm.",
			Buckets: obs.DriftLagBuckets,
		})
		obs.RuntimeMetrics(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.HandleFunc("POST /v1/streams", sv.handleCreate)
	mux.HandleFunc("GET /v1/streams", sv.handleList)
	mux.HandleFunc("POST /v1/streams/{id}/events", sv.handleEvents)
	mux.HandleFunc("GET /v1/streams/{id}/model", sv.handleModel)
	mux.HandleFunc("GET /v1/streams/{id}/stats", sv.handleStats)
	mux.HandleFunc("GET /v1/streams/{id}/drift", sv.handleDrift)
	mux.HandleFunc("POST /v1/streams/{id}/checkpoint", sv.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/streams/{id}", sv.handleDelete)
	mux.HandleFunc("GET /debug/streams", sv.handleDebugStreams)
	if cfg.Registry != nil {
		mux.Handle("GET /metrics", cfg.Registry.Handler())
	}
	if cfg.Tracer != nil {
		mux.Handle("GET /debug/traces", cfg.Tracer.Handler())
	}
	if cfg.SLO != nil {
		mux.Handle("GET /slo", cfg.SLO)
	}
	sv.mux = mux
	return sv
}

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the HTTP handler for the whole API surface. With a
// registry it is wrapped in request/error accounting (5xx only:
// backpressure 429s are deliberate and tracked by the shed SLO, not
// availability).
func (sv *Server) Handler() http.Handler {
	if sv.mReqs == nil {
		return sv.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sv.mReqs.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		sv.mux.ServeHTTP(sw, r)
		if sw.code >= 500 {
			sv.mErrs.Inc()
		}
	})
}

// StreamCount returns the number of live streams.
func (sv *Server) StreamCount() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return len(sv.streams)
}

// RestoreFromDir reopens every checkpointed stream found in
// Config.CheckpointDir, returning how many were restored. Restored
// learner state is bit-identical to the checkpoint: feeding the same
// subsequent periods yields the same models the original process
// would have produced.
func (sv *Server) RestoreFromDir() (int, error) {
	if sv.cfg.CheckpointDir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(sv.cfg.CheckpointDir, "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	n := 0
	for _, path := range paths {
		if err := sv.restoreOne(path); err != nil {
			return n, fmt.Errorf("serve: restore %s: %w", path, err)
		}
		n++
	}
	return n, nil
}

func (sv *Server) restoreOne(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var cf checkpointFile
	if err := json.NewDecoder(f).Decode(&cf); err != nil {
		return err
	}
	if cf.ServeVersion != serveVersion {
		return fmt.Errorf("checkpoint envelope version %d, this binary reads %d", cf.ServeVersion, serveVersion)
	}
	if cf.Info.ID != strings.TrimSuffix(filepath.Base(path), ".json") {
		return fmt.Errorf("checkpoint names stream %q but file is %s", cf.Info.ID, filepath.Base(path))
	}
	learned := cf.Snapshot.Stats.Periods
	if cf.Drift != nil && cf.Drift.Periods > learned {
		// The snapshot covers only the current model generation; the
		// monitor counts periods across generations.
		learned = cf.Drift.Periods
	}
	_, err = sv.addStream(cf.Info, cf.Snapshot, learned, cf.Drift)
	return err
}

// Shutdown drains every stream (remaining queued periods are learned
// and checkpointed) and refuses new work. It returns early with the
// context's error if draining outlasts the deadline.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.mu.Lock()
	sv.closed = true
	streams := make([]*stream, 0, len(sv.streams))
	for _, s := range sv.streams {
		streams = append(streams, s)
	}
	sv.mu.Unlock()

	for _, s := range streams {
		s.close()
	}
	for _, s := range streams {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// addStream wires up a stream (fresh when snap is nil, else restored
// from the snapshot, with dst the checkpointed drift-monitor state)
// and starts its owner goroutine. The learner is created here so the
// stream's trace bridge and drift hook can be installed as its engine
// observers before the first period.
func (sv *Server) addStream(info StreamInfo, snap *learner.Snapshot, learned int, dst *drift.State) (*stream, error) {
	p, err := newParser(info.Tasks, info.BitRate, info.PeriodUS)
	if err != nil {
		return nil, err
	}
	opt := info.Options.options()
	s := &stream{
		id:              info.ID,
		info:            info,
		parser:          p,
		queue:           make(chan queuedPeriod, sv.cfg.QueueDepth),
		reqs:            make(chan func(*learner.Online)),
		closing:         make(chan struct{}),
		done:            make(chan struct{}),
		learned:         learned,
		checkpointDir:   sv.cfg.CheckpointDir,
		checkpointEach:  sv.cfg.CheckpointEvery,
		tracer:          sv.cfg.Tracer,
		mLatency:        sv.mLatency,
		mOfferedLines:   sv.mOfferedLines,
		mShedLines:      sv.mShedLines,
		mPeriodsLearned: sv.mPeriodsLearned,
		mAlarmPeriods:   sv.mAlarmPeriods,
		mDriftLag:       sv.mDriftLag,
	}
	if sv.cfg.Tracer != nil {
		s.bridge = &phaseBridge{tracer: sv.cfg.Tracer}
		opt.Observer = s.bridge
	}
	if do := info.Drift; do != nil && do.Enabled {
		cfg := do.config(opt.Policy)
		if dst != nil {
			s.mon, err = drift.Restore(*dst, cfg)
			if err != nil {
				return nil, fmt.Errorf("serve: stream %s drift state: %w", info.ID, err)
			}
		} else {
			s.mon = drift.New(cfg)
		}
		// The hook runs synchronously inside AddPeriod on the owner
		// goroutine; consume picks up pendingDrift right after.
		mon := s.mon
		opt.OnPeriodVerify = func(out engine.VerifyOutcome) {
			if ev := mon.Observe(out.Period, out.LUB, out.Live); ev != nil {
				s.pendingDrift = ev
			}
		}
	}
	if snap == nil {
		s.o, err = learner.NewOnline(info.Tasks, opt)
	} else {
		s.o, err = learner.RestoreOnline(snap, opt)
	}
	if err != nil {
		return nil, err
	}
	s.opt = opt
	s.cut.Store(int64(learned))
	s.lastPeriod.Store(int64(learned))
	if reg := sv.cfg.Registry; reg != nil {
		s.mQueueDepth = reg.LabeledGauge("serve_queue_depth",
			"Ingest queue occupancy per stream.", "stream", s.id)
		s.mPeriods = reg.LabeledCounter("serve_periods_total",
			"Periods cut and queued per stream.", "stream", s.id)
		s.mShed = reg.LabeledCounter("serve_shed_total",
			"Ingest batches shed with 429 per stream.", "stream", s.id)
		if s.mon != nil {
			s.mDriftGen = reg.LabeledGauge(obs.MetricDriftGeneration,
				"Current model generation per stream.", "stream", s.id)
			s.mDriftStreak = reg.LabeledGauge(obs.MetricDriftStreak,
				"Stability streak (periods with an unchanged model) per stream.", "stream", s.id)
			s.mDriftAmbig = reg.LabeledFloatGauge(obs.MetricDriftAmbiguity,
				"Fraction of task pairs with a conditional dependency per stream.", "stream", s.id)
			s.mDriftAlarms = reg.LabeledCounter(obs.MetricDriftAlarms,
				"Model change-point alarms per stream.", "stream", s.id)
		}
	}
	s.publishDriftView()

	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.dropStreamMetrics(s)
		return nil, errServerClosed
	}
	if _, dup := sv.streams[s.id]; dup {
		sv.mu.Unlock()
		sv.dropStreamMetrics(s)
		return nil, fmt.Errorf("serve: stream %q: %w", s.id, errStreamExists)
	}
	sv.streams[s.id] = s
	if sv.mStreams != nil {
		sv.mStreams.Set(int64(len(sv.streams)))
	}
	sv.mu.Unlock()

	go s.run()
	return s, nil
}

func (sv *Server) dropStreamMetrics(s *stream) {
	reg := sv.cfg.Registry
	if reg == nil {
		return
	}
	reg.Unregister(obs.SeriesName("serve_queue_depth", "stream", s.id))
	reg.Unregister(obs.SeriesName("serve_periods_total", "stream", s.id))
	reg.Unregister(obs.SeriesName("serve_shed_total", "stream", s.id))
	if s.mon != nil {
		reg.Unregister(obs.SeriesName(obs.MetricDriftGeneration, "stream", s.id))
		reg.Unregister(obs.SeriesName(obs.MetricDriftStreak, "stream", s.id))
		reg.Unregister(obs.SeriesName(obs.MetricDriftAmbiguity, "stream", s.id))
		reg.Unregister(obs.SeriesName(obs.MetricDriftAlarms, "stream", s.id))
	}
}

func (sv *Server) stream(id string) (*stream, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.streams[id]
	return s, ok
}

// ---- handlers ----

func (sv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateStreamRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad create body: %w", err))
		return
	}
	if req.ID == "" {
		req.ID = fmt.Sprintf("s%d", sv.nextID.Add(1))
	}
	if err := validateID(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info := StreamInfo{ID: req.ID, Tasks: append([]string(nil), req.Tasks...),
		BitRate: req.BitRate, PeriodUS: req.PeriodUS, Options: req.Options, Drift: req.Drift}
	s, err := sv.addStream(info, nil, 0, nil)
	switch {
	case errors.Is(err, errStreamExists) || errors.Is(err, errServerClosed):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.info)
}

func (sv *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	infos := make([]StreamInfo, 0, len(sv.streams))
	for _, s := range sv.streams {
		infos = append(infos, s.info)
	}
	sv.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (sv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sv.cfg.MaxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: events body: %w", err))
		return
	}
	lines := strings.Split(string(body), "\n")
	parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	sp := sv.cfg.Tracer.StartSpan("ingest", parent)
	sp.SetAttr("stream", s.id)
	if sp != nil {
		// Inject the (possibly server-started) trace back to the client
		// so it can find the span tree at /debug/traces.
		w.Header().Set("traceparent", sp.Context().Traceparent())
	}
	resp, shed, err := s.ingest(lines, sp.Context())
	sp.End()
	switch {
	case shed:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrStreamClosed):
		writeError(w, http.StatusGone, err)
	case err != nil && s.deadErr() != nil:
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (sv *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	var res *learner.Result
	var resErr error
	err := s.do(func(o *learner.Online) { res, resErr = o.Result() })
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	if resErr != nil {
		writeError(w, http.StatusConflict, resErr)
		return
	}
	if r.URL.Query().Get("format") == "dot" {
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, res.LUB.DOT(s.id))
		return
	}
	m := ModelResponse{
		ID:        s.id,
		Tasks:     res.TaskSet.Names(),
		LUB:       res.LUB.Table(),
		Converged: res.Converged,
		Periods:   res.Stats.Periods,
	}
	for _, d := range res.Hypotheses {
		m.Hypotheses = append(m.Hypotheses, d.Table())
	}
	writeJSON(w, http.StatusOK, m)
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	resp := StatsResponse{ID: s.id, QueueCap: cap(s.queue)}
	err := s.do(func(o *learner.Online) {
		resp.Engine = o.Stats()
		resp.WorkingSet = o.WorkingSetSize()
		// s.learned, not engine periods: a drift fork starts a fresh
		// learner whose own period count resets with the generation.
		resp.PeriodsLearned = s.learned
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	resp.PeriodsCut = int(s.cut.Load())
	resp.QueueDepth = len(s.queue)
	resp.Shed = s.shed.Load()
	s.feedMu.Lock()
	resp.Partial = s.parser.partial()
	s.feedMu.Unlock()
	if derr := s.deadErr(); derr != nil {
		resp.Err = derr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDrift serves the stream's drift-monitor state. The query runs
// on the owner goroutine, so like /model it observes every period
// whose ingest completed before the request.
func (sv *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	resp := DriftResponse{ID: s.id}
	err := s.do(func(*learner.Online) {
		if s.mon != nil {
			resp.Enabled = true
			st := s.mon.State()
			resp.State = &st
		}
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	if sv.cfg.CheckpointDir == "" {
		writeError(w, http.StatusConflict, errors.New("serve: server has no checkpoint directory"))
		return
	}
	var path string
	var cpErr error
	var periods int
	err := s.do(func(o *learner.Online) {
		path, cpErr = s.checkpoint()
		periods = o.Stats().Periods
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	if cpErr != nil {
		writeError(w, http.StatusConflict, cpErr)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{ID: s.id, Path: path, Periods: periods})
}

// handleDebugStreams serves the one-page operational view: every
// stream's queue depth, live hypothesis count, last period index and
// checkpoint age, read from atomics without disturbing the owners.
func (sv *Server) handleDebugStreams(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	streams := make([]*stream, 0, len(sv.streams))
	for _, s := range sv.streams {
		streams = append(streams, s)
	}
	sv.mu.Unlock()
	sort.Slice(streams, func(i, j int) bool { return streams[i].id < streams[j].id })

	now := time.Now()
	out := DebugStreamsResponse{Streams: make([]StreamDebug, 0, len(streams))}
	for _, s := range streams {
		d := StreamDebug{
			ID:         s.id,
			QueueDepth: len(s.queue),
			QueueCap:   cap(s.queue),
			PeriodsCut: s.cut.Load(),
			LastPeriod: s.lastPeriod.Load(),
			LiveHyps:   s.liveWS.Load(),
			Shed:       s.shed.Load(),
		}
		if ns := s.ckptUnixNS.Load(); ns > 0 {
			d.CheckpointAgeSeconds = now.Sub(time.Unix(0, ns)).Seconds()
		}
		if s.mon != nil { // set once before run() starts, safe to read
			d.Generation = s.genA.Load()
			d.Streak = s.streakA.Load()
			d.AmbiguityRatio = math.Float64frombits(s.ambigBits.Load())
			d.LastChangePoint = s.lastCPA.Load()
		}
		if err := s.deadErr(); err != nil {
			d.Err = err.Error()
		}
		out.Streams = append(out.Streams, d)
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv.mu.Lock()
	s, ok := sv.streams[id]
	if ok {
		delete(sv.streams, id)
		if sv.mStreams != nil {
			sv.mStreams.Set(int64(len(sv.streams)))
		}
	}
	sv.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", id))
		return
	}
	s.close()
	<-s.done
	s.removeCheckpoint()
	sv.dropStreamMetrics(s)
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
