package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LineReader is the incremental form of Read: it consumes the text
// trace format one line at a time and emits each period as soon as
// the line that closes it arrives, so a long-running service can cut
// periods out of a live feed without buffering the whole stream
// (internal/serve is the primary consumer).
//
// The predefined task set is fixed at construction instead of being
// read from the stream; a "tasks" line in the feed is accepted only
// when it matches exactly, so recorded trace files replay verbatim.
// Line order is authoritative (per-period clock restarts are legal),
// matching Read. Every emitted period has passed the same per-period
// validation Read applies.
//
// LineReader is not safe for concurrent use. Clone supports two-phase
// ingest: parse a batch on a clone, and only commit the clone as the
// new state once the batch is accepted (see internal/serve's
// backpressure path).
type LineReader struct {
	tasks     []string
	known     map[string]bool
	cur       *Period
	started   bool
	openStart map[string]int64
	openRise  map[string]int64
	line      int // lines consumed, for error positions
}

// NewLineReader returns a LineReader over the given predefined task
// set.
func NewLineReader(tasks []string) (*LineReader, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("trace: empty task set")
	}
	known := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t == "" {
			return nil, fmt.Errorf("trace: empty task name")
		}
		if known[t] {
			return nil, fmt.Errorf("trace: duplicate task %q", t)
		}
		known[t] = true
	}
	return &LineReader{
		tasks:     append([]string(nil), tasks...),
		known:     known,
		cur:       &Period{Index: 0, Execs: map[string]Interval{}},
		openStart: map[string]int64{},
		openRise:  map[string]int64{},
	}, nil
}

// Tasks returns the reader's predefined task set.
func (lr *LineReader) Tasks() []string { return append([]string(nil), lr.tasks...) }

// Partial reports whether the open period has accumulated any events —
// state that a Flush (or the closing "period" line) has not yet
// emitted.
func (lr *LineReader) Partial() bool {
	return lr.started || len(lr.openStart) > 0 || len(lr.openRise) > 0
}

// Clone returns an independent deep copy of the reader state.
func (lr *LineReader) Clone() *LineReader {
	cp := &LineReader{
		tasks:     lr.tasks, // immutable after construction
		known:     lr.known, // immutable after construction
		cur:       lr.cur.Clone(),
		started:   lr.started,
		openStart: make(map[string]int64, len(lr.openStart)),
		openRise:  make(map[string]int64, len(lr.openRise)),
		line:      lr.line,
	}
	for k, v := range lr.openStart {
		cp.openStart[k] = v
	}
	for k, v := range lr.openRise {
		cp.openRise[k] = v
	}
	return cp
}

// Line consumes one line of the text format. It returns the completed
// period when the line closed one (a "period" directive after at
// least one event), and nil otherwise. Blank lines and '#' comments
// are ignored. Errors leave the reader in an undefined state; the
// caller owns discarding it (or the clone it parsed into).
func (lr *LineReader) Line(s string) (*Period, error) {
	lr.line++
	line := strings.TrimSpace(s)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil
	}
	p, err := lr.consume(strings.Fields(line))
	if err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lr.line, err)
	}
	return p, nil
}

func (lr *LineReader) consume(fields []string) (*Period, error) {
	switch fields[0] {
	case "tasks":
		if len(fields)-1 != len(lr.tasks) {
			return nil, fmt.Errorf("stream declares %d tasks, reader is configured for %d", len(fields)-1, len(lr.tasks))
		}
		for i, t := range fields[1:] {
			if t != lr.tasks[i] {
				return nil, fmt.Errorf("stream task %d is %q, reader is configured for %q", i, t, lr.tasks[i])
			}
		}
		return nil, nil
	case "period":
		return lr.cut()
	case "exec":
		if len(fields) != 4 {
			return nil, fmt.Errorf("%w: exec wants NAME START END", ErrTruncatedEvent)
		}
		start, err := parseTime(fields[2])
		if err != nil {
			return nil, err
		}
		end, err := parseTime(fields[3])
		if err != nil {
			return nil, err
		}
		if err := lr.taskStart(fields[1], start); err != nil {
			return nil, err
		}
		return nil, lr.taskEnd(fields[1], end)
	case "msg":
		if len(fields) != 4 {
			return nil, fmt.Errorf("%w: msg wants ID RISE FALL", ErrTruncatedEvent)
		}
		rise, err := parseTime(fields[2])
		if err != nil {
			return nil, err
		}
		fall, err := parseTime(fields[3])
		if err != nil {
			return nil, err
		}
		lr.cur.Msgs = append(lr.cur.Msgs, Message{ID: fields[1], Rise: rise, Fall: fall})
		lr.started = true
		return nil, nil
	case "start", "end", "rise", "fall":
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: %s wants NAME TIME", ErrTruncatedEvent, fields[0])
		}
		t, err := parseTime(fields[2])
		if err != nil {
			return nil, err
		}
		switch fields[0] {
		case "start":
			if err := lr.taskStart(fields[1], t); err != nil {
				return nil, err
			}
		case "end":
			if err := lr.taskEnd(fields[1], t); err != nil {
				return nil, err
			}
		case "rise":
			if _, open := lr.openRise[fields[1]]; open {
				return nil, fmt.Errorf("%w: double rise of %q", ErrUnmatchedEvent, fields[1])
			}
			lr.openRise[fields[1]] = t
			lr.started = true
		case "fall":
			rise, ok := lr.openRise[fields[1]]
			if !ok {
				return nil, fmt.Errorf("%w: fall of %q without rise", ErrUnmatchedEvent, fields[1])
			}
			delete(lr.openRise, fields[1])
			lr.cur.Msgs = append(lr.cur.Msgs, Message{ID: fields[1], Rise: rise, Fall: t})
			lr.started = true
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown directive %q", fields[0])
	}
}

// Flush closes the open period and returns it, or nil when no events
// are pending. It fails when a task or message is still open — the
// feed ended mid-event-pair — leaving the reader unchanged so the
// caller can report and decide.
func (lr *LineReader) Flush() (*Period, error) { return lr.cut() }

func (lr *LineReader) cut() (*Period, error) {
	if len(lr.openStart) > 0 || len(lr.openRise) > 0 {
		return nil, fmt.Errorf("%w: period %d has %d open task(s) and %d open message(s)",
			ErrCrossingPeriod, lr.cur.Index, len(lr.openStart), len(lr.openRise))
	}
	if !lr.started {
		return nil, nil
	}
	p := lr.cur
	sortPeriodMessages(p)
	if err := validateOnePeriod(p, lr.known); err != nil {
		return nil, err
	}
	lr.cur = &Period{Index: p.Index + 1, Execs: map[string]Interval{}}
	lr.started = false
	return p, nil
}

func (lr *LineReader) taskStart(name string, t int64) error {
	if !lr.known[name] {
		return fmt.Errorf("%w: %q", ErrUnknownTask, name)
	}
	if _, dup := lr.cur.Execs[name]; dup {
		return fmt.Errorf("%w: %q in period %d", ErrDuplicateExec, name, lr.cur.Index)
	}
	if _, open := lr.openStart[name]; open {
		return fmt.Errorf("%w: double start of %q", ErrUnmatchedEvent, name)
	}
	lr.openStart[name] = t
	lr.started = true
	return nil
}

func (lr *LineReader) taskEnd(name string, t int64) error {
	st, ok := lr.openStart[name]
	if !ok {
		return fmt.Errorf("%w: end of %q without start", ErrUnmatchedEvent, name)
	}
	delete(lr.openStart, name)
	lr.cur.Execs[name] = Interval{Start: st, End: t}
	lr.started = true
	return nil
}

func parseTime(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrBadTimestamp, s)
	}
	return v, nil
}

func sortPeriodMessages(p *Period) {
	sort.SliceStable(p.Msgs, func(i, j int) bool { return p.Msgs[i].Rise < p.Msgs[j].Rise })
}
