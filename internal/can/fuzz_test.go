package can

import (
	"strings"
	"testing"
)

// FuzzParseLog throws arbitrary bytes at the candump-log parser:
// truncated frames, garbage timestamps, out-of-range identifiers.
// Whatever comes back must either be a typed error or a record stream
// satisfying the parser's contract — non-decreasing timestamps,
// 11-bit identifiers, payloads within the CAN maximum — and the
// resulting edge events must be well-formed rise/fall pairs.
func FuzzParseLog(f *testing.F) {
	f.Add("(1690000000.000100) can0 123#DEADBEEF\n(1690000000.000350) can0 1A0#\n")
	f.Add("(0.0) can0 000#\n")
	f.Add("(1.0) can0 7FF#0102030405060708\n")
	f.Add("# comment\n\n(2.5) vcan0 0A0#FF\n")
	f.Add("(1.0) can0 123#0\n")           // odd digit count
	f.Add("(1.0) can0 800#00\n")          // ID out of range
	f.Add("(2.0) c 1#00\n(1.0) c 2#00\n") // clock runs backward
	f.Add("(1.0) can0 123DEAD\n")         // no separator
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ParseLog(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, rec := range recs {
			if rec.ID < 0 || rec.ID > 0x7FF {
				t.Fatalf("record %d: identifier %#x out of 11-bit range", i, rec.ID)
			}
			if rec.DLC < 0 || rec.DLC > 8 {
				t.Fatalf("record %d: DLC %d out of range", i, rec.DLC)
			}
			if i > 0 && rec.Time < recs[i-1].Time {
				t.Fatalf("record %d: time %d precedes record %d's %d", i, rec.Time, i-1, recs[i-1].Time)
			}
		}
		events, err := LogEvents(recs, 500_000)
		if err != nil {
			t.Fatalf("LogEvents rejected parsed records: %v", err)
		}
		if len(events) != 2*len(recs) {
			t.Fatalf("%d records became %d events, want %d", len(recs), len(events), 2*len(recs))
		}
		seen := map[string]bool{}
		for i := 0; i < len(events); i += 2 {
			rise, fall := events[i], events[i+1]
			if rise.Name != fall.Name {
				t.Fatalf("edge pair %d has mismatched labels %q, %q", i/2, rise.Name, fall.Name)
			}
			if fall.Time <= rise.Time {
				t.Fatalf("edge pair %d: fall %d not after rise %d", i/2, fall.Time, rise.Time)
			}
			if seen[rise.Name] {
				t.Fatalf("occurrence label %q not unique", rise.Name)
			}
			seen[rise.Name] = true
		}
	})
}
