package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// learnableFeed builds n text-format periods for tasks t1/t2 with one
// message between them, starting at the given base time.
func learnableFeed(base int64, n int) string {
	var sb strings.Builder
	for k := int64(0); k < int64(n); k++ {
		at := base + k*1000
		fmt.Fprintf(&sb, "exec t1 %d %d\n", at, at+100)
		fmt.Fprintf(&sb, "msg m1 %d %d\n", at+100, at+150)
		fmt.Fprintf(&sb, "exec t2 %d %d\n", at+200, at+300)
		sb.WriteString("period\n")
	}
	return sb.String()
}

// waitLearned polls stats until the stream has learned n periods.
func waitLearned(t *testing.T, c *client, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.stats(id).PeriodsLearned >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stream %s did not learn %d periods in time", id, n)
}

// TestTraceSpanTreeEndToEnd pins the tentpole acceptance path: a
// traceparent-carrying /events request yields a span tree at
// /debug/traces covering ingest → period_cut → learn_period → engine
// phases, and the ingest-latency histogram carries an exemplar that
// resolves to the same trace.
func TestTraceSpanTreeEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerConfig{})
	sv := New(Config{Registry: reg, Tracer: tr})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	c.createStream(CreateStreamRequest{ID: "traced", Tasks: []string{"t1", "t2"}})

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	req, err := http.NewRequest("POST", ts.URL+"/v1/streams/traced/events",
		strings.NewReader(learnableFeed(0, 3)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+traceID+"-b7ad6b7169203331-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, traceID) {
		t.Fatalf("response traceparent %q does not continue trace %s", tp, traceID)
	}
	waitLearned(t, c, "traced", 3)

	rsp, body := c.do("GET", "/debug/traces?trace="+traceID, nil)
	if rsp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d %s", rsp.StatusCode, body)
	}
	tree := string(body)
	for _, span := range []string{"ingest", "period_cut", "learn_period", "candidates", "generalize", "postprocess"} {
		if !strings.Contains(tree, `"`+span+`"`) {
			t.Errorf("span tree missing %q:\n%s", span, tree)
		}
	}

	// The latency histogram must carry an exemplar resolving to the
	// same trace.
	m := reg.Snapshot()["serve_ingest_latency_seconds"]
	if m.Count < 3 {
		t.Fatalf("latency histogram count = %d, want >= 3", m.Count)
	}
	found := false
	for _, b := range m.Buckets {
		if b.Exemplar != nil && b.Exemplar.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("no latency bucket exemplar resolves to trace %s", traceID)
	}
}

// TestIngestWithoutTraceHeaderStillTraces: with a tracer configured
// at full sampling, a plain request gets a server-started trace and
// the response announces it.
func TestIngestWithoutTraceHeaderStillTraces(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{})
	sv := New(Config{Tracer: tr})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "s", Tasks: []string{"t1", "t2"}})

	resp, _ := c.do("POST", "/v1/streams/s/events", []byte(learnableFeed(0, 1)))
	tp := resp.Header.Get("traceparent")
	sc, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if got := tr.Spans(sc.TraceID); len(got) == 0 {
		t.Fatalf("announced trace %s has no spans", sc.TraceID)
	}
}

func TestDebugStreamsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	sv := New(Config{Registry: reg, CheckpointDir: t.TempDir(), CheckpointEvery: 1})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	c.createStream(CreateStreamRequest{ID: "b", Tasks: []string{"t1", "t2"}})
	c.createStream(CreateStreamRequest{ID: "a", Tasks: []string{"t1", "t2"}})
	c.feed("a", learnableFeed(0, 2))
	waitLearned(t, c, "a", 2)

	resp, body := c.do("GET", "/debug/streams", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/streams: %d %s", resp.StatusCode, body)
	}
	var dbg DebugStreamsResponse
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Streams) != 2 || dbg.Streams[0].ID != "a" || dbg.Streams[1].ID != "b" {
		t.Fatalf("streams = %+v", dbg.Streams)
	}
	a := dbg.Streams[0]
	if a.LastPeriod != 2 || a.PeriodsCut != 2 {
		t.Errorf("a = %+v, want last_period=2 periods_cut=2", a)
	}
	if a.LiveHyps < 1 {
		t.Errorf("a.live_hypotheses = %d, want >= 1", a.LiveHyps)
	}
	if a.QueueCap == 0 {
		t.Errorf("a.queue_cap = 0")
	}
	// CheckpointEvery=1 means stream a has checkpointed by now.
	if a.CheckpointAgeSeconds <= 0 {
		t.Errorf("a.checkpoint_age_seconds = %g, want > 0", a.CheckpointAgeSeconds)
	}
	if b := dbg.Streams[1]; b.LastPeriod != 0 || b.CheckpointAgeSeconds != 0 {
		t.Errorf("idle b = %+v", b)
	}
}

// TestTruncatedCandumpLineSurfacesTypedError: satellite coverage for
// the parser error path — a truncated candump line must produce a 400
// carrying the typed can error, commit nothing, and leave the stream
// usable.
func TestTruncatedCandumpLineSurfacesTypedError(t *testing.T) {
	sv := New(Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "cd", Tasks: []string{"t1", "t2"}, BitRate: 500_000, PeriodUS: 1000})

	resp, body := c.do("POST", "/v1/streams/cd/events", []byte("(0.000150) can0\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated candump line: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "can: truncated log line") {
		t.Fatalf("error body %q does not carry the typed can error", body)
	}
	// Clone-and-commit: the failed batch left no state; a valid mixed
	// batch still parses from scratch.
	st := c.stats("cd")
	if st.PeriodsCut != 0 || st.Partial {
		t.Fatalf("failed batch leaked state: %+v", st)
	}
	var feed strings.Builder
	for k := int64(0); k < 3; k++ {
		base := k * 1000
		fmt.Fprintf(&feed, "exec t1 %d %d\n", base, base+100)
		fmt.Fprintf(&feed, "(0.%06d) can0 123#AA\n", base+150)
		fmt.Fprintf(&feed, "exec t2 %d %d\n", base+400, base+500)
	}
	feed.WriteString("period\n")
	if ir := c.feed("cd", feed.String()); ir.Periods != 3 {
		t.Fatalf("post-error feed cut %d periods, want 3", ir.Periods)
	}
}

// TestPartialTextLineSurfacesTypedError: a text directive missing
// fields (e.g. a line split across a client's buffer boundary) is a
// 400 with the typed trace error, not a silent drop.
func TestPartialTextLineSurfacesTypedError(t *testing.T) {
	sv := New(Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "tx", Tasks: []string{"t1", "t2"}})

	// A good line followed by a partial one: the whole batch must be
	// rejected atomically.
	resp, body := c.do("POST", "/v1/streams/tx/events", []byte("exec t1 0 100\nexec t2 200\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial text line: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "truncated event line") {
		t.Fatalf("error body %q does not carry the typed trace error", body)
	}
	st := c.stats("tx")
	if st.PeriodsCut != 0 || st.Partial {
		t.Fatalf("rejected batch leaked state: %+v", st)
	}
	// The same events, completed, are accepted afresh.
	if ir := c.feed("tx", "exec t1 0 100\nexec t2 200 300\nmsg m1 100 150\nperiod\n"); ir.Periods != 1 {
		t.Fatalf("post-error feed cut %d periods, want 1", ir.Periods)
	}
}

// BenchmarkServeIngest compares the ingest hot path with tracing
// disabled (nil tracer: every span call is a nil-safe no-op, zero
// added allocations — see obs.TestNilTracerZeroAlloc for the pinned
// guarantee) against full-sampling tracing.
func BenchmarkServeIngest(b *testing.B) {
	run := func(b *testing.B, tracer *obs.Tracer) {
		sv := New(Config{Tracer: tracer})
		s, err := sv.addStream(StreamInfo{ID: "bench", Tasks: []string{"t1", "t2"}}, nil, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { s.close(); <-s.done }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Monotone message occurrences into one open period: parse
			// work without queue or learner noise (tasks may run only
			// once per period, messages repeat freely).
			at := int64(i) * 1000
			lines := []string{fmt.Sprintf("msg m1 %d %d", at, at+50)}
			if _, _, err := s.ingest(lines, obs.SpanContext{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil-tracer", func(b *testing.B) { run(b, nil) })
	b.Run("traced", func(b *testing.B) { run(b, obs.NewTracer(obs.TracerConfig{Capacity: 1024})) })
}
