package sat

import (
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// EncodeAssignment builds the CNF for the within-period message
// assignment problem: variable x_{m,k} means "message m is explained
// by its k-th allowed (sender, receiver) pair". The clauses assert
// that every message picks at least one pair, at most one pair, and
// that no ordered pair explains two messages (at most one message per
// pair per period).
func EncodeAssignment(allowed [][]depfunc.Pair) *CNF {
	nVars := 0
	varOf := make([][]Literal, len(allowed))
	for mi, pairs := range allowed {
		varOf[mi] = make([]Literal, len(pairs))
		for k := range pairs {
			nVars++
			varOf[mi][k] = Literal(nVars)
		}
	}
	cnf := NewCNF(nVars)
	// At least / at most one pair per message.
	for mi, pairs := range allowed {
		clause := make(Clause, len(pairs))
		for k := range pairs {
			clause[k] = varOf[mi][k]
		}
		cnf.MustAddClause(clause...)
		for a := 0; a < len(pairs); a++ {
			for b := a + 1; b < len(pairs); b++ {
				cnf.MustAddClause(-varOf[mi][a], -varOf[mi][b])
			}
		}
	}
	// At most one message per ordered pair.
	byPair := map[depfunc.Pair][]Literal{}
	for mi, pairs := range allowed {
		for k, pr := range pairs {
			byPair[pr] = append(byPair[pr], varOf[mi][k])
		}
	}
	for _, lits := range byPair {
		for a := 0; a < len(lits); a++ {
			for b := a + 1; b < len(lits); b++ {
				cnf.MustAddClause(-lits[a], -lits[b])
			}
		}
	}
	return cnf
}

// MatchPeriod reimplements the matching function M of depfunc.Match
// with the assignment search delegated to the DPLL solver. It exists
// to cross-validate the backtracking matcher: the two must agree on
// every input.
func MatchPeriod(d *depfunc.DepFunc, p *trace.Period, pol depfunc.CandidatePolicy) bool {
	ts := d.TaskSet()
	executed := make([]bool, ts.Len())
	for name := range p.Execs {
		if i := ts.Index(name); i >= 0 {
			executed[i] = true
		}
	}
	violated := false
	d.Entries(func(i, j int, v lattice.Value) {
		if lattice.HasExecConstraint(v) && executed[i] && !executed[j] {
			violated = true
		}
	})
	if violated {
		return false
	}
	cands := depfunc.Candidates(p, ts, pol)
	allowed := make([][]depfunc.Pair, len(cands))
	for mi, pairs := range cands {
		for _, pr := range pairs {
			if lattice.AllowsOutgoingMessage(d.At(pr.S, pr.R)) &&
				lattice.AllowsIncomingMessage(d.At(pr.R, pr.S)) {
				allowed[mi] = append(allowed[mi], pr)
			}
		}
		if len(allowed[mi]) == 0 {
			return false
		}
	}
	_, ok, _ := Solve(EncodeAssignment(allowed))
	return ok
}
