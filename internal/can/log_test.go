package can

import (
	"errors"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/trace"
)

func TestParseLog(t *testing.T) {
	in := `# a comment
(1690000000.000100) can0 123#DEADBEEF

(1690000000.000350) can0 1A0#
(1690000000.000350) can0 7FF#0102030405060708
`
	recs, err := ParseLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []LogRecord{
		{Time: 1690000000000100, Interface: "can0", ID: 0x123, DLC: 4},
		{Time: 1690000000000350, Interface: "can0", ID: 0x1A0, DLC: 0},
		{Time: 1690000000000350, Interface: "can0", ID: 0x7FF, DLC: 8},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i] != w {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], w)
		}
	}
}

func TestParseLogTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"missing fields", "(1.0) can0", ErrTruncatedFrame},
		{"no separator", "(1.0) can0 123DEAD", ErrTruncatedFrame},
		{"unparenthesised time", "1.0 can0 123#00", ErrBadTimestamp},
		{"non-numeric time", "(abc) can0 123#00", ErrBadTimestamp},
		{"negative time", "(-1.0) can0 123#00", ErrBadTimestamp},
		{"non-hex id", "(1.0) can0 XYZ#00", ErrBadIdentifier},
		{"id above 11 bits", "(1.0) can0 800#00", ErrBadIdentifier},
		{"odd hex digits", "(1.0) can0 123#0", ErrBadPayload},
		{"bad hex digit", "(1.0) can0 123#0G", ErrBadPayload},
		{"payload over 8 bytes", "(1.0) can0 123#010203040506070809", ErrBadPayload},
		{"clock runs backward", "(2.0) can0 123#00\n(1.0) can0 124#00", ErrNonMonotoneTimestamp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLog(strings.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Fatalf("ParseLog(%q) = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

func TestParseSecondsExact(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1", 1_000_000},
		{"1.5", 1_500_000},
		{"1690000000.123456", 1_690_000_000_123_456},
		{"0.000001", 1},
		{"3.1234567", 3_123_456}, // sub-microsecond digits truncate
	}
	for _, tc := range cases {
		got, err := parseSeconds(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseSeconds(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

func TestLogEvents(t *testing.T) {
	recs := []LogRecord{
		{Time: 100, ID: 0x123, DLC: 4},
		{Time: 900, ID: 0x123, DLC: 4},
		{Time: 1700, ID: 0x1A0, DLC: 0},
	}
	events, err := LogEvents(recs, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	// Same-ID occurrences must get distinct labels; the fall must land
	// one frame duration after the rise.
	if events[0].Name == events[2].Name {
		t.Errorf("same-ID frames share label %q", events[0].Name)
	}
	bus, err := New(500_000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := events[1].Time-events[0].Time, bus.FrameDuration(4); got != want {
		t.Errorf("frame occupies %dµs, want %dµs", got, want)
	}
	if events[0].Kind != trace.MsgRise || events[1].Kind != trace.MsgFall {
		t.Errorf("event kinds = %v, %v; want rise, fall", events[0].Kind, events[1].Kind)
	}
	if _, err := LogEvents(recs, 0); err == nil {
		t.Error("LogEvents accepted a zero bit rate")
	}
}
