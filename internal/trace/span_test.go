package trace

import (
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// The observed parsing entry points time themselves with a
// trace_parse span, so phase histograms cover the whole offline
// pipeline, not just the learner.
func TestReadObservedEmitsSpan(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, PaperFigure2()); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	if _, err := ReadObserved(strings.NewReader(sb.String()), rec); err != nil {
		t.Fatal(err)
	}
	assertOneParseSpan(t, rec)

	// The span is emitted on the error path too: a partial parse is
	// still a timed phase.
	rec = obs.NewRecorder()
	if _, err := ReadObserved(strings.NewReader("tasks t1\nbogus line here\n"), rec); err == nil {
		t.Fatal("malformed trace accepted")
	}
	assertOneParseSpan(t, rec)
}

func TestFromEventsObservedEmitsSpan(t *testing.T) {
	tr := PaperFigure2()
	rec := obs.NewRecorder()
	if _, err := FromEventsObserved(tr.Tasks, tr.Events(), rec); err != nil {
		t.Fatal(err)
	}
	assertOneParseSpan(t, rec)
}

func assertOneParseSpan(t *testing.T, rec *obs.Recorder) {
	t.Helper()
	spans := rec.OfKind("span")
	if len(spans) != 1 {
		t.Fatalf("span events = %d, want 1", len(spans))
	}
	if e := spans[0].(obs.SpanEnd); e.Phase != obs.PhaseTraceParse || e.ElapsedNS < 0 {
		t.Errorf("span = %+v", e)
	}
}
