package load

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunClusterSmoke drives a scaled-down cluster scenario: a 3-node
// in-process cluster, a stream fleet spread by the ring, and forced
// migrations fired while the feeds are still in flight. The SLO gate
// must hold — the gateway pauses a migrating stream's writes instead
// of failing them — and every stream's final model must match the
// single-node reference.
func TestRunClusterSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := ClusterConfig{
		Dir:        t.TempDir(),
		Nodes:      3,
		Streams:    48,
		Periods:    6,
		Migrations: 6,
		Workers:    12,
		Seed:       7,
		SLO:        DefaultThresholds(),
	}
	rep, err := RunCluster(ctx, cfg)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	t.Logf("\n%s", rep.Format())
	if rep.Violated() {
		t.Fatalf("cluster SLO gate failed:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Equivalence != cfg.Streams {
		t.Fatalf("verified %d of %d models", rep.Equivalence, cfg.Streams)
	}
	if rep.MigrationFailures != 0 {
		t.Fatalf("%d migrations failed", rep.MigrationFailures)
	}
	if len(rep.Spread) != cfg.Nodes {
		t.Fatalf("streams landed on %d of %d nodes: %v", len(rep.Spread), cfg.Nodes, rep.Spread)
	}
	if rep.Requests < int64(cfg.Streams*cfg.Periods) {
		t.Fatalf("requests %d below fleet total %d", rep.Requests, cfg.Streams*cfg.Periods)
	}
}
