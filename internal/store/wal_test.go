package store

import (
	"bytes"
	"testing"
)

func mustFrames(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, r := range recs {
		if buf, err = appendFrame(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Generation: 1, Payload: []byte(`{"period":1}`)},
		{Seq: 2, Generation: 1, Payload: nil},
		{Seq: 3, Generation: 2, Fork: true, Payload: []byte(`{"fork":true}`)},
		{Seq: 4, Generation: 2, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := sampleRecords()
	buf := mustFrames(t, want...)
	got, good := decodeFrames(buf)
	if good != len(buf) {
		t.Fatalf("clean prefix %d of %d bytes", good, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Generation != want[i].Generation || got[i].Fork != want[i].Fork ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestTornTail pins the recovery contract: decoding stops at the
// first byte range that is not an intact frame, keeping exactly the
// clean prefix — whatever the damage looks like.
func TestTornTail(t *testing.T) {
	intact := sampleRecords()
	clean := mustFrames(t, intact...)
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
		// keep is the number of records expected to survive.
		keep int
	}{
		{"clean", func(b []byte) []byte { return b }, 4},
		{"empty", func(b []byte) []byte { return nil }, 0},
		{"partial header", func(b []byte) []byte { return append(b, 0x01, 0x02, 0x03) }, 4},
		{"partial payload", func(b []byte) []byte {
			extra := mustFrames(t, Record{Seq: 9, Generation: 2, Payload: bytes.Repeat([]byte{7}, 100)})
			return append(b, extra[:len(extra)-10]...)
		}, 4},
		{"bit flip in last payload", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0x40
			return out
		}, 3},
		{"bit flip in last seq", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1000-frameHeaderSize+8] ^= 0x01
			return out
		}, 3},
		{"length field points past end", func(b []byte) []byte {
			extra := mustFrames(t, Record{Seq: 9, Generation: 2, Payload: []byte("x")})
			extra[0] = 0xFF // claim a 255-byte payload that isn't there
			return append(b, extra...)
		}, 4},
		{"oversized length field", func(b []byte) []byte {
			out := append(b, make([]byte, frameHeaderSize)...)
			out[len(out)-frameHeaderSize+3] = 0xFF // > maxFramePayload
			return out
		}, 4},
		{"zero garbage", func(b []byte) []byte { return append(b, make([]byte, 64)...) }, 4},
		{"flip in first frame drops everything after", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[frameHeaderSize-1] ^= 0x01 // flags byte of record 0
			return out
		}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), clean...))
			recs, good := decodeFrames(b)
			if len(recs) != tc.keep {
				t.Fatalf("kept %d records, want %d", len(recs), tc.keep)
			}
			// The clean prefix must re-decode to the same records.
			again, g2 := decodeFrames(b[:good])
			if g2 != good || len(again) != len(recs) {
				t.Fatalf("prefix not self-consistent: %d/%d bytes, %d/%d records", g2, good, len(again), len(recs))
			}
			for i := range recs {
				if recs[i].Seq != intact[i].Seq {
					t.Fatalf("record %d: seq %d, want %d", i, recs[i].Seq, intact[i].Seq)
				}
			}
		})
	}
}

func TestFrameCapRejected(t *testing.T) {
	if _, err := appendFrame(nil, Record{Seq: 1, Payload: make([]byte, maxFramePayload+1)}); err == nil {
		t.Fatal("oversized payload framed without error")
	}
}
