package sim

import (
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

func TestRunFigure1(t *testing.T) {
	out, err := Run(model.Figure1(), Options{Periods: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.Trace.Periods) != 10 {
		t.Fatalf("periods = %d", len(out.Trace.Periods))
	}
	for _, p := range out.Trace.Periods {
		if !p.Executed("t1") || !p.Executed("t4") {
			t.Errorf("period %d: t1/t4 missing", p.Index)
		}
	}
}

func TestRunOptionsErrors(t *testing.T) {
	if _, err := Run(model.Figure1(), Options{Periods: 0}); err == nil {
		t.Error("zero periods accepted")
	}
	if _, err := Run(model.Figure1(), Options{Periods: 1, BitRate: -5}); err == nil {
		t.Error("negative bit rate accepted")
	}
	bad := model.Figure1()
	bad.Period = 0
	if _, err := Run(bad, Options{Periods: 1}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(model.GMStyle(), Options{Periods: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(model.GMStyle(), Options{Periods: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.String() != b.Trace.String() {
		t.Error("same seed produced different traces")
	}
	c, err := Run(model.GMStyle(), Options{Periods: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.String() == c.Trace.String() {
		t.Error("different seeds produced identical traces")
	}
}

func TestRunGMStyleMatchesPaperStatistics(t *testing.T) {
	// The paper's case study: 18 tasks, 330 messages, 27 periods, 700
	// event-pair executions. Our synthetic controller must land close.
	out, err := Run(model.GMStyle(), Options{Periods: 27, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Trace.Stats()
	if s.Periods != 27 {
		t.Errorf("periods = %d", s.Periods)
	}
	if s.Messages < 280 || s.Messages > 420 {
		t.Errorf("messages = %d, want ≈330", s.Messages)
	}
	if s.EventPairs < 600 || s.EventPairs > 800 {
		t.Errorf("event pairs = %d, want ≈700", s.EventPairs)
	}
	if len(out.Trace.Tasks) != 18 {
		t.Errorf("tasks = %d, want 18", len(out.Trace.Tasks))
	}
}

func TestGroundTruthPairsAreTimingFeasible(t *testing.T) {
	// Every ground-truth (sender, receiver) pair must be in the
	// unwindowed candidate set of its message: the sender ends before
	// the rise, the receiver starts after the fall.
	out, err := Run(model.GMStyle(), Options{Periods: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := depfunc.NewTaskSet(out.Trace.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Trace.Periods {
		cands := depfunc.Candidates(p, ts, depfunc.CandidatePolicy{})
		for mi, msg := range p.Msgs {
			truth, ok := out.Sent[msg.ID]
			if !ok {
				t.Fatalf("message %q has no ground truth", msg.ID)
			}
			if truth.To == "" {
				continue // broadcast sync
			}
			want := depfunc.Pair{S: ts.Index(truth.From), R: ts.Index(truth.To)}
			found := false
			for _, pr := range cands[mi] {
				if pr == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("period %d message %q: true pair %s->%s not timing-feasible",
					p.Index, msg.ID, truth.From, truth.To)
			}
		}
	}
}

func TestSyncFrameGatesQ(t *testing.T) {
	// Q must always start after the sync frame falls — that is the
	// infrastructure interaction behind the implicit Q–O dependency.
	out, err := Run(model.GMStyle(), Options{Periods: 27, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Trace.Periods {
		if !p.Executed("Q") || !p.Executed("O") {
			t.Fatalf("period %d: Q or O missing", p.Index)
		}
		var syncFall int64 = -1
		for _, msg := range p.Msgs {
			truth := out.Sent[msg.ID]
			if truth.From == "O" && truth.To == "" {
				syncFall = msg.Fall
			}
		}
		if syncFall < 0 {
			t.Fatalf("period %d: no sync frame", p.Index)
		}
		if q := p.Execs["Q"]; q.Start < syncFall {
			t.Errorf("period %d: Q starts at %d before sync falls at %d", p.Index, q.Start, syncFall)
		}
	}
}

func TestExecsMatchTraceIntervals(t *testing.T) {
	out, err := Run(model.Figure1(), Options{Periods: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Each Exec appears as the corresponding trace interval.
	perPeriod := map[int]map[string][2]int64{}
	for _, e := range out.Execs {
		p := int(e.Start / model.Figure1().Period)
		if perPeriod[p] == nil {
			perPeriod[p] = map[string][2]int64{}
		}
		perPeriod[p][e.Task] = [2]int64{e.Start, e.End}
	}
	for _, p := range out.Trace.Periods {
		for name, iv := range p.Execs {
			want, ok := perPeriod[p.Index][name]
			if !ok {
				t.Fatalf("period %d: no Exec for %s", p.Index, name)
			}
			if iv.Start != want[0] || iv.End != want[1] {
				t.Errorf("period %d %s: trace [%d,%d] vs exec %v", p.Index, name, iv.Start, iv.End, want)
			}
		}
	}
}

func TestReleaseNeverBeforeInputs(t *testing.T) {
	out, err := Run(model.GMStyleLite(), Options{Periods: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Execs {
		if e.Start < e.Release {
			t.Errorf("task %s starts at %d before release %d", e.Task, e.Start, e.Release)
		}
	}
}

func TestRandomModelsSimulate(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 10; i++ {
		opt := model.DefaultRandomOptions()
		opt.Layers = 2 + r.Intn(2)
		opt.TasksPerLayer = 1 + r.Intn(3)
		m := model.RandomModel(r, opt)
		out, err := Run(m, Options{Periods: 5, Seed: int64(i)})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if err := out.Trace.Validate(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

func TestMessagesSentAccounting(t *testing.T) {
	out, err := Run(model.GMStyleLite(), Options{Periods: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.MessagesSent != out.Trace.Stats().Messages {
		t.Errorf("MessagesSent = %d, trace says %d", out.MessagesSent, out.Trace.Stats().Messages)
	}
	if len(out.Sent) != out.MessagesSent {
		t.Errorf("Sent has %d entries, want %d", len(out.Sent), out.MessagesSent)
	}
}

// TestRunEmitsSimulateSpan: the simulator times itself with a
// "simulate" span so phase histograms cover trace generation too.
func TestRunEmitsSimulateSpan(t *testing.T) {
	rec := obs.NewRecorder()
	if _, err := Run(model.Figure1(), Options{Periods: 5, Seed: 1, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	spans := rec.OfKind("span")
	if len(spans) != 1 {
		t.Fatalf("span events = %d, want 1", len(spans))
	}
	if e := spans[0].(obs.SpanEnd); e.Phase != obs.PhaseSimulate || e.ElapsedNS < 0 {
		t.Errorf("span = %+v", e)
	}
}
