package learner

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/trace"
)

// TestSnapshotRestoreEqualsContinuous: splitting an online session at
// any period boundary via Snapshot/RestoreOnline and feeding the rest
// into the restored session produces the same result as the unbroken
// batch run — for exact and bounded variants, through a full JSON
// round trip.
func TestSnapshotRestoreEqualsContinuous(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	traces := []*trace.Trace{trace.PaperFigure2()}
	for i := 0; i < 6; i++ {
		traces = append(traces, randomTrace(r, 3+r.Intn(3), 3+r.Intn(3), 3))
	}
	for ti, tr := range traces {
		for _, bound := range []int{0, 1, 4} {
			batch, err := Learn(tr, Options{Bound: bound})
			if err != nil {
				t.Fatalf("trace %d bound %d: batch: %v", ti, bound, err)
			}
			for split := 1; split < len(tr.Periods); split++ {
				o, err := NewOnline(tr.Tasks, Options{Bound: bound})
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range tr.Periods[:split] {
					if err := o.AddPeriod(p); err != nil {
						t.Fatal(err)
					}
				}
				snap, err := o.Snapshot()
				if err != nil {
					t.Fatalf("trace %d bound %d split %d: snapshot: %v", ti, bound, split, err)
				}
				var buf bytes.Buffer
				if err := WriteSnapshot(&buf, snap); err != nil {
					t.Fatal(err)
				}
				decoded, err := ReadSnapshot(&buf)
				if err != nil {
					t.Fatal(err)
				}
				restored, err := RestoreOnline(decoded, Options{})
				if err != nil {
					t.Fatalf("trace %d bound %d split %d: restore: %v", ti, bound, split, err)
				}
				for _, p := range tr.Periods[split:] {
					if err := restored.AddPeriod(p); err != nil {
						t.Fatalf("trace %d bound %d split %d: resumed AddPeriod: %v", ti, bound, split, err)
					}
				}
				res, err := restored.Result()
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Hypotheses) != len(batch.Hypotheses) {
					t.Fatalf("trace %d bound %d split %d: restored %d vs batch %d hypotheses",
						ti, bound, split, len(res.Hypotheses), len(batch.Hypotheses))
				}
				for i := range res.Hypotheses {
					if !res.Hypotheses[i].Equal(batch.Hypotheses[i]) {
						t.Errorf("trace %d bound %d split %d: hypothesis %d differs", ti, bound, split, i)
					}
				}
				if res.Stats.Periods != batch.Stats.Periods {
					t.Errorf("trace %d bound %d split %d: restored Stats.Periods %d, want %d",
						ti, bound, split, res.Stats.Periods, batch.Stats.Periods)
				}
			}
		}
	}
}

// TestSnapshotMidWrapDeepCopy mirrors TestOnlineRingWraparound across
// a checkpoint: snapshotting mid-wrap must deep-copy the retained
// ring, so the original session's continued feeding (which overwrites
// ring slots) cannot corrupt the checkpoint, and the restored
// session's verification window is exactly the window at snapshot
// time.
func TestSnapshotMidWrapDeepCopy(t *testing.T) {
	tr := simFigure1Trace(t, 8, 5)
	const k = 3
	const split = 5 // > k, so the ring has wrapped at snapshot time
	o, err := NewOnline(tr.Tasks, Options{Bound: 4, VerifyResults: true, RetainPeriods: k})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods[:split] {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Retained) != k {
		t.Fatalf("snapshot retains %d periods, want %d", len(snap.Retained), k)
	}
	// Keep the original session running: every remaining AddPeriod
	// overwrites a ring slot the snapshot must no longer reference.
	for _, p := range tr.Periods[split:] {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot window is still periods split-k .. split-1, oldest
	// first, element by element.
	want := tr.Periods[split-k : split]
	for i, sp := range snap.Retained {
		w := want[i]
		if len(sp.Msgs) != len(w.Msgs) || len(sp.Execs) != len(w.Execs) {
			t.Fatalf("snapshot period %d shape differs after continued feeding", i)
		}
		for j, m := range sp.Msgs {
			if m != w.Msgs[j] {
				t.Fatalf("snapshot period %d message %d = %+v, want %+v", i, j, m, w.Msgs[j])
			}
		}
		for _, e := range sp.Execs {
			if w.Execs[e.Task] != (trace.Interval{Start: e.Start, End: e.End}) {
				t.Fatalf("snapshot period %d exec %q corrupted", i, e.Task)
			}
		}
	}

	// The restored session verifies against that window and then keeps
	// wrapping correctly: feeding the rest matches the original
	// session's final verified result.
	restored, err := RestoreOnline(snap, Options{VerifyResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if restored.RetainedPeriods() != k {
		t.Fatalf("restored ring holds %d periods, want %d", restored.RetainedPeriods(), k)
	}
	for _, p := range tr.Periods[split:] {
		if err := restored.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	origRes, origErr := o.Result()
	restRes, restErr := restored.Result()
	if (origErr == nil) != (restErr == nil) {
		t.Fatalf("Result errors diverge: original %v, restored %v", origErr, restErr)
	}
	if origErr == nil {
		if len(origRes.Hypotheses) != len(restRes.Hypotheses) {
			t.Fatalf("original %d vs restored %d hypotheses", len(origRes.Hypotheses), len(restRes.Hypotheses))
		}
		for i := range origRes.Hypotheses {
			if !origRes.Hypotheses[i].Equal(restRes.Hypotheses[i]) {
				t.Errorf("hypothesis %d differs after restore", i)
			}
		}
	}
}

// TestSnapshotVerifyUnavailableSurvivesRestore: a session without
// retention checkpoints and restores into a session that still
// returns ErrVerifyUnavailable when verification is requested — the
// sentinel semantics are part of the snapshot (RetainPeriods), not an
// accident of process lifetime.
func TestSnapshotVerifyUnavailableSurvivesRestore(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods[:2] {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(snap, Options{VerifyResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Result(); !errors.Is(err, ErrVerifyUnavailable) {
		t.Fatalf("restored Result = %v, want ErrVerifyUnavailable", err)
	}
	// Still alive, exactly like a native session.
	if err := restored.AddPeriod(tr.Periods[2]); err != nil {
		t.Fatalf("AddPeriod after the sentinel: %v", err)
	}
	if _, err := restored.Result(); !errors.Is(err, ErrVerifyUnavailable) {
		t.Fatalf("second restored Result = %v, want ErrVerifyUnavailable again", err)
	}
}

// TestSnapshotRejections: version and shape mismatches fail loudly.
func TestSnapshotRejections(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := *snap
	bad.Version = SnapshotVersion + 1
	if _, err := RestoreOnline(&bad, Options{}); err == nil {
		t.Fatal("restore accepted an unknown snapshot version")
	}
	bad = *snap
	bad.History = bad.History[:len(bad.History)-1]
	if _, err := RestoreOnline(&bad, Options{}); err == nil {
		t.Fatal("restore accepted a truncated history")
	}
	bad = *snap
	bad.Working = nil
	bad.WorkingPacked = nil
	if _, err := RestoreOnline(&bad, Options{}); err == nil {
		t.Fatal("restore accepted an empty working set")
	}
	bad = *snap
	bad.WorkingPacked = bad.WorkingPacked[:len(bad.WorkingPacked)-1]
	if _, err := RestoreOnline(&bad, Options{}); err == nil {
		t.Fatal("restore accepted mismatched table/packed counts")
	}

	// A dead session refuses to checkpoint.
	dead, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noPair := &trace.Period{Index: 0, Execs: map[string]trace.Interval{}, Msgs: []trace.Message{{ID: "m", Rise: 0, Fall: 1}}}
	if err := dead.AddPeriod(noPair); err == nil {
		t.Fatal("expected AddPeriod to fail on an unexplainable message")
	}
	if _, err := dead.Snapshot(); err == nil {
		t.Fatal("snapshot of a dead session succeeded")
	}
}
