package learner

import (
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// collapse reduces an event stream to its kind sequence with runs of
// equal kinds collapsed to one entry — the stable "shape" of a run
// that does not depend on per-message fan-out counts.
func collapse(kinds []string) []string {
	var out []string
	for _, k := range kinds {
		if len(out) == 0 || out[len(out)-1] != k {
			out = append(out, k)
		}
	}
	return out
}

// TestObserverEventSequenceExact pins the structured run-trace of the
// exact algorithm on the paper's Figure 2 trace: the per-period
// envelope, the per-event payloads, and their agreement with
// Result.Stats.
func TestObserverEventSequenceExact(t *testing.T) {
	tr := trace.PaperFigure2()
	rec := obs.NewRecorder()
	res, err := Learn(tr, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}

	// The collapsed shape of the run: each period opens with
	// period_start and the candidates span, alternates spawn-bursts
	// with message_processed (one burst per message: the exact
	// algorithm never merges), closes the generalize span, may prune
	// at the period end, closes the postprocess span and then the
	// period with period_end; the run closes with run_end. In periods
	// without pruning the generalize and postprocess spans are
	// adjacent and collapse into one "span" entry. Period 1 of the
	// paper trace prunes nothing (no duplicate or redundant
	// hypotheses), periods 2 and 3 do.
	want := []string{
		// The session opens with the engine announcement.
		"engine_start",
		// period 0: 2 messages.
		"period_start", "span",
		"hypothesis_spawned", "message_processed",
		"hypothesis_spawned", "message_processed",
		"span", "period_end",
		// period 1: 2 messages, end-of-period pruning kicks in.
		"period_start", "span",
		"hypothesis_spawned", "message_processed",
		"hypothesis_spawned", "message_processed",
		"span", "hypothesis_pruned", "span", "period_end",
		// period 2: 4 messages.
		"period_start", "span",
		"hypothesis_spawned", "message_processed",
		"hypothesis_spawned", "message_processed",
		"hypothesis_spawned", "message_processed",
		"hypothesis_spawned", "message_processed",
		"span", "hypothesis_pruned", "span", "period_end",
		"run_end",
	}
	if got := collapse(rec.Kinds()); !reflect.DeepEqual(got, want) {
		t.Errorf("collapsed event sequence:\n got %v\nwant %v", got, want)
	}

	// Event counts must agree with Stats.
	if n := rec.Count("hypothesis_spawned"); n != res.Stats.Children {
		t.Errorf("spawned events = %d, Stats.Children = %d", n, res.Stats.Children)
	}
	if n := rec.Count("message_processed"); n != res.Stats.Messages {
		t.Errorf("message events = %d, Stats.Messages = %d", n, res.Stats.Messages)
	}
	if n := rec.Count("period_start"); n != res.Stats.Periods {
		t.Errorf("period_start events = %d, Stats.Periods = %d", n, res.Stats.Periods)
	}
	if n := rec.Count("hypothesis_merged"); n != 0 {
		t.Errorf("exact run emitted %d merge events", n)
	}

	// Per-message payloads: candidate fan-out sums to Stats.Candidates
	// and IDs follow the trace.
	var candSum, idx int
	for _, e := range rec.OfKind("message_processed") {
		m := e.(obs.MessageProcessed)
		candSum += m.Candidates
		wantID := []string{"m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8"}[idx]
		if m.ID != wantID {
			t.Errorf("message %d: ID = %q, want %q", idx, m.ID, wantID)
		}
		idx++
	}
	if candSum != res.Stats.Candidates {
		t.Errorf("candidate sum over events = %d, Stats.Candidates = %d", candSum, res.Stats.Candidates)
	}

	// Per-period live counts: period_end events, Stats.PeriodLive and
	// the final result must line up. The exact algorithm on Figure 2
	// returns the paper's 5 most specific hypotheses.
	ends := rec.OfKind("period_end")
	if len(ends) != len(res.Stats.PeriodLive) {
		t.Fatalf("period_end events = %d, PeriodLive = %v", len(ends), res.Stats.PeriodLive)
	}
	for i, e := range ends {
		pe := e.(obs.PeriodEnd)
		if pe.Live != res.Stats.PeriodLive[i] {
			t.Errorf("period %d: event live = %d, Stats.PeriodLive = %d", i, pe.Live, res.Stats.PeriodLive[i])
		}
		if pe.WeightMin > pe.WeightMax {
			t.Errorf("period %d: weight range %d..%d inverted", i, pe.WeightMin, pe.WeightMax)
		}
	}
	final := ends[len(ends)-1].(obs.PeriodEnd)
	if final.Live != 5 || res.Stats.Final != 5 || len(res.Hypotheses) != 5 {
		t.Errorf("final live/Stats.Final/result = %d/%d/%d, want 5 (paper)",
			final.Live, res.Stats.Final, len(res.Hypotheses))
	}

	// run_end mirrors the headline stats.
	re := rec.OfKind("run_end")[0].(obs.RunEnd)
	if re.Periods != 3 || re.Messages != 8 || re.Final != 5 || re.Peak != res.Stats.Peak {
		t.Errorf("run_end = %+v, stats = %+v", re, res.Stats)
	}
	if re.ElapsedNS <= 0 || res.Stats.Elapsed <= 0 {
		t.Errorf("elapsed not populated: event %d ns, stats %v", re.ElapsedNS, res.Stats.Elapsed)
	}
}

// TestObserverEventsBounded checks the heuristic at b=2 on the paper
// trace: bounded merging must happen and must be reported as
// hypothesis_merged events that agree with Stats.Merges, and the
// per-period live counts must respect the bound.
func TestObserverEventsBounded(t *testing.T) {
	tr := trace.PaperFigure2()
	rec := obs.NewRecorder()
	res, err := Learn(tr, Options{Bound: 2, Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merges == 0 {
		t.Fatal("bound 2 on the paper trace did not merge; the test premise is broken")
	}
	if n := rec.Count("hypothesis_merged"); n != res.Stats.Merges {
		t.Errorf("merge events = %d, Stats.Merges = %d", n, res.Stats.Merges)
	}
	for _, e := range rec.OfKind("hypothesis_merged") {
		m := e.(obs.HypothesisMerged)
		if m.WeightMerged < m.WeightA || m.WeightMerged < m.WeightB {
			t.Errorf("merge %+v: LUB weight below an operand", m)
		}
	}
	for _, e := range rec.OfKind("period_end") {
		pe := e.(obs.PeriodEnd)
		if pe.Live > 2 {
			t.Errorf("period %d: live = %d exceeds bound 2", pe.Period, pe.Live)
		}
	}
	// The observer must not change results: same run without one.
	plain, err := Learn(trace.PaperFigure2(), Options{Bound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LUB.Equal(plain.LUB) {
		t.Error("observed and unobserved runs disagree on the LUB")
	}
}

// TestOnlineObserverPerPeriod checks that the incremental learner
// emits period events as periods arrive (not only at the end).
func TestOnlineObserverPerPeriod(t *testing.T) {
	tr := trace.PaperFigure2()
	rec := obs.NewRecorder()
	o, err := NewOnline(tr.Tasks, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	if rec.Count("period_end") != 1 {
		t.Errorf("after one period: %d period_end events", rec.Count("period_end"))
	}
	if rec.Count("run_end") != 0 {
		t.Error("online session emitted run_end")
	}
	if got := o.Stats().PeriodLive; len(got) != 1 {
		t.Errorf("PeriodLive = %v, want one entry", got)
	}
}

// TestNopObserverZeroAlloc proves the instrumentation adds zero
// allocations when disabled: a run with a nil Observer allocates
// exactly as much as one with the Nop observer attached, and the
// per-period marginal cost of the nil path is unchanged by the
// instrumentation (guarded via testing.AllocsPerRun over the online
// learner's hot path).
func TestNopObserverZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is nondeterministic under the race detector (sync.Pool drops puts at random)")
	}
	tr := trace.PaperFigure2()
	run := func(o obs.Observer) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := Learn(tr, Options{Bound: 8, Observer: o}); err != nil {
				t.Fatal(err)
			}
		})
	}
	nilAllocs := run(nil)
	nopAllocs := run(obs.Nop)
	if nilAllocs != nopAllocs {
		t.Errorf("allocations differ: nil observer %.0f, Nop observer %.0f", nilAllocs, nopAllocs)
	}
}

func BenchmarkLearnNopObserver(b *testing.B) {
	tr := trace.PaperFigure2()
	for _, bench := range []struct {
		name string
		obsv obs.Observer
	}{
		{"nil", nil},
		{"nop", obs.Nop},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Learn(tr, Options{Bound: 8, Observer: bench.obsv}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLearnRecorder quantifies the cost of full event capture,
// for the record (not asserted: capture is allowed to allocate).
func BenchmarkLearnRecorder(b *testing.B) {
	tr := trace.PaperFigure2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := obs.NewRecorder()
		if _, err := Learn(tr, Options{Bound: 8, Observer: rec}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObserverBatchOnlineEquivalent: the observer sees the same
// period/message event stream whether periods are fed in batch or
// incrementally.
func TestObserverBatchOnlineEquivalent(t *testing.T) {
	tr := trace.PaperFigure2()
	recBatch := obs.NewRecorder()
	if _, err := Learn(tr, Options{Bound: 4, Observer: recBatch}); err != nil {
		t.Fatal(err)
	}
	recOnline := obs.NewRecorder()
	o, err := NewOnline(tr.Tasks, Options{Bound: 4, Observer: recOnline})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	// Identical except the batch run's trailing run_end. Span
	// durations are wall-clock and differ between the two runs, so
	// they are zeroed before comparing.
	gotB := stripSpanTimes(recBatch.Events())
	gotO := stripSpanTimes(recOnline.Events())
	if len(gotB) != len(gotO)+1 || gotB[len(gotB)-1].Kind() != "run_end" {
		t.Fatalf("batch %d events, online %d; batch must only add run_end", len(gotB), len(gotO))
	}
	if !reflect.DeepEqual(gotB[:len(gotB)-1], gotO) {
		t.Error("batch and online event streams diverge")
	}
}

// stripSpanTimes zeroes the wall-clock duration of span events so two
// equivalent runs compare equal.
func stripSpanTimes(events []obs.Event) []obs.Event {
	out := make([]obs.Event, len(events))
	for i, e := range events {
		if sp, ok := e.(obs.SpanEnd); ok {
			sp.ElapsedNS = 0
			out[i] = sp
			continue
		}
		out[i] = e
	}
	return out
}

// TestObserverMatchesJSONLRoundTrip drives the full offline loop the
// CLI uses: learner -> JSONL -> ParseJSONL -> same events.
func TestObserverMatchesJSONLRoundTrip(t *testing.T) {
	tr := trace.PaperFigure2()
	rec := obs.NewRecorder()
	var buf sliceWriter
	sink := obs.NewJSONLSink(&buf)
	if _, err := Learn(tr, Options{Bound: 2, Observer: obs.NewMulti(rec, sink)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec.Events()) {
		t.Error("JSONL round trip diverges from the recorder")
	}
}

// sliceWriter is a minimal in-memory io.ReadWriter for the round-trip
// test, avoiding a bytes import dance.
type sliceWriter struct {
	b []byte
	r int
}

func (w *sliceWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *sliceWriter) Read(p []byte) (int, error) {
	if w.r >= len(w.b) {
		return 0, errEOF
	}
	n := copy(p, w.b[w.r:])
	w.r += n
	return n, nil
}

var errEOF = errorString("EOF")

type errorString string

func (e errorString) Error() string { return string(e) }

// Guard against accidental dependence on depfunc internals in the
// events: weights reported by spawn events are real Definition-8
// weights (non-negative, bounded by the all-BiMaybe table).
func TestSpawnWeightsSane(t *testing.T) {
	tr := trace.PaperFigure2()
	rec := obs.NewRecorder()
	if _, err := Learn(tr, Options{Observer: rec}); err != nil {
		t.Fatal(err)
	}
	ts, _ := depfunc.NewTaskSet(tr.Tasks)
	maxW := 6 * ts.Len() * (ts.Len() - 1) / 2 // BiMaybe everywhere
	for _, e := range rec.OfKind("hypothesis_spawned") {
		w := e.(obs.HypothesisSpawned).Weight
		if w < 0 || w > maxW {
			t.Errorf("spawn weight %d outside [0,%d]", w, maxW)
		}
	}
}
