package conformance

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/blackbox-rt/modelgen/internal/casestudy"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// MaxExactHypotheses is the working-set budget the corpus oracles
// grant the exact algorithm. Generation marks entries whose exact run
// exceeds it as Exact: false, so runs never surprise-explode.
const MaxExactHypotheses = 4000

// GenerateCorpus builds the golden corpus deterministically: the
// paper's Figure-2 worked example, simulated Figure-1 families, the
// OSEK/CAN case-study subsystem, and random layered designs with
// known ground-truth dependency functions. Every generator input is a
// pinned constant, so two invocations produce byte-identical corpora.
func GenerateCorpus() (*Corpus, error) {
	c := &Corpus{Version: CorpusVersion}

	// The paper's worked example, with ground truth from the Figure-1
	// design it was traced from.
	fig1Truth, ok := TruthFromModel(model.Figure1(), maxTruthChoiceBits)
	if !ok {
		return nil, fmt.Errorf("conformance: Figure-1 truth enumeration failed")
	}
	fig2 := &Entry{
		Manifest: Manifest{
			Name:        "figure2",
			Description: "the paper's Figure-2 worked example (3 periods, 4 tasks)",
			Source:      "trace.PaperFigure2",
			Bounds:      []int{2, 4, 8},
			Exact:       true,
			Thm2:        true,
		},
		Trace: trace.PaperFigure2(),
		Truth: fig1Truth,
	}
	c.Entries = append(c.Entries, fig2)

	// Simulated Figure-1 families: longer instance streams over the
	// same design, at pinned seeds.
	for _, seed := range []int64{3, 11} {
		tr, err := simTrace(model.Figure1(), 8, seed)
		if err != nil {
			return nil, err
		}
		c.Entries = append(c.Entries, &Entry{
			Manifest: Manifest{
				Name:        fmt.Sprintf("figure1-sim-s%d", seed),
				Description: "simulated Figure-1 design on the OSEK/CAN substrate",
				Source:      fmt.Sprintf("sim:figure1 seed=%d periods=8", seed),
				Bounds:      []int{2, 6},
				Exact:       true,
				Thm2:        true,
			},
			Trace: tr,
			Truth: fig1Truth,
		})
	}

	// Random layered designs with enumerable ground truth.
	for _, spec := range []struct {
		seed    int64
		layers  int
		perL    int
		edgeP   float64
		periods int
	}{
		{seed: 7, layers: 3, perL: 2, edgeP: 0.6, periods: 6},
		{seed: 19, layers: 2, perL: 3, edgeP: 0.5, periods: 7},
	} {
		rng := rand.New(rand.NewSource(spec.seed))
		opt := model.DefaultRandomOptions()
		opt.Layers = spec.layers
		opt.TasksPerLayer = spec.perL
		opt.EdgeProb = spec.edgeP
		m := model.RandomModel(rng, opt)
		truth, ok := TruthFromModel(m, maxTruthChoiceBits)
		if !ok {
			return nil, fmt.Errorf("conformance: random model seed %d: truth enumeration failed", spec.seed)
		}
		tr, err := simTrace(m, spec.periods, spec.seed)
		if err != nil {
			return nil, err
		}
		e := &Entry{
			Manifest: Manifest{
				Name: fmt.Sprintf("random-s%d", spec.seed),
				Description: fmt.Sprintf("random %d×%d layered design with enumerated ground truth",
					spec.layers, spec.perL),
				Source: fmt.Sprintf("sim:random seed=%d layers=%d perlayer=%d edgep=%.2f periods=%d",
					spec.seed, spec.layers, spec.perL, spec.edgeP, spec.periods),
				Bounds: []int{2, 6},
				Exact:  true,
				Thm2:   true,
			},
			Trace: tr,
			Truth: truth,
		}
		c.Entries = append(c.Entries, e)
	}

	// The OSEK/CAN case-study subsystem: sync broadcast frames mean no
	// point-to-point ground truth exists, so it runs the bound and
	// metamorphic oracles only, under the case study's calibrated
	// candidate policy.
	lite, err := casestudy.LiteTrace()
	if err != nil {
		return nil, err
	}
	pol := casestudy.LitePolicy()
	c.Entries = append(c.Entries, &Entry{
		Manifest: Manifest{
			Name:           "gm-lite",
			Description:    "7-task GM-style subsystem with OSEK sync gating (no point-to-point ground truth)",
			Source:         "casestudy.LiteTrace",
			Bounds:         []int{4, 16, 32},
			Exact:          true,
			Thm2:           false,
			SenderWindow:   pol.SenderWindow,
			ReceiverWindow: pol.ReceiverWindow,
			MaxSenders:     pol.MaxSenders,
			MaxReceivers:   pol.MaxReceivers,
		},
		Trace: lite.Trace,
	})

	// A mid-trace dependency change for the drift oracle: the t1→t2
	// messaging of the stationary regime disappears after period 30,
	// and the monitor must pin the change point there. There is no
	// single ground truth over a drifted trace, so the entry runs the
	// bounded oracles only.
	c.Entries = append(c.Entries, &Entry{
		Manifest: Manifest{
			Name:            "drift-flip",
			Description:     "mid-trace dependency change: the t1→t2 message disappears after period 30",
			Source:          "gen:drift-flip stationary=30 flipped=20",
			Bounds:          []int{4},
			Exact:           false,
			DriftFlipPeriod: 30,
			DriftWindow:     DefaultDriftWindow,
		},
		Trace: driftFlipTrace(30, 20),
	})

	// Downgrade any entry whose exact run blows the hypothesis budget;
	// generation must never bake an intractable oracle into CI.
	for _, e := range c.Entries {
		if !e.Exact {
			continue
		}
		_, err := learner.Learn(e.Trace, learner.Options{Policy: e.Policy(), MaxHypotheses: MaxExactHypotheses})
		if errors.Is(err, learner.ErrTooManyHypotheses) {
			e.Exact, e.Thm2 = false, false
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("conformance: entry %s: exact probe: %w", e.Name, err)
		}
	}
	return c, nil
}

// driftFlipTrace renders a two-regime trace: `stationary` periods in
// which t1 sends m1 to t2, then `flipped` periods in which t1 runs
// alone. Fully pinned, so regeneration is byte-identical.
func driftFlipTrace(stationary, flipped int) *trace.Trace {
	tr := trace.New([]string{"t1", "t2"})
	for k := 0; k < stationary+flipped; k++ {
		base := int64(k) * 1000
		p := &trace.Period{Index: k, Execs: map[string]trace.Interval{
			"t1": {Start: base, End: base + 100},
		}}
		if k < stationary {
			p.Msgs = []trace.Message{{ID: "m1", Rise: base + 150, Fall: base + 200}}
			p.Execs["t2"] = trace.Interval{Start: base + 400, End: base + 500}
		}
		tr.Periods = append(tr.Periods, p)
	}
	return tr
}

func simTrace(m *model.Model, periods int, seed int64) (*trace.Trace, error) {
	out, err := sim.Run(m, sim.Options{Periods: periods, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("conformance: simulating %s (seed %d): %w", m.Name, seed, err)
	}
	return out.Trace, nil
}
