package trace

import (
	"errors"
	"testing"
)

// Every malformed input maps to a typed sentinel so callers (and the
// fuzz targets) can assert on the failure class, not the message.
func TestReadTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{
			"truncated exec",
			"tasks t1 t2\nperiod\nexec t1 0\n",
			ErrTruncatedEvent,
		},
		{
			"truncated msg",
			"tasks t1 t2\nperiod\nmsg m1 12\n",
			ErrTruncatedEvent,
		},
		{
			"truncated raw event",
			"tasks t1 t2\nperiod\nstart t1\n",
			ErrTruncatedEvent,
		},
		{
			"bad exec timestamp",
			"tasks t1 t2\nperiod\nexec t1 zero 10\n",
			ErrBadTimestamp,
		},
		{
			"bad msg timestamp",
			"tasks t1 t2\nperiod\nmsg m1 12 1x5\n",
			ErrBadTimestamp,
		},
		{
			"bad raw timestamp",
			"tasks t1 t2\nperiod\nrise m1 later\n",
			ErrBadTimestamp,
		},
		{
			"fall without matching rise",
			"tasks t1 t2\nperiod\nexec t1 0 10\nfall m1 15\n",
			ErrUnmatchedEvent,
		},
		{
			"end without matching start",
			"tasks t1 t2\nperiod\nend t1 10\n",
			ErrUnmatchedEvent,
		},
		{
			"inverted exec interval",
			"tasks t1 t2\nperiod\nexec t1 10 0\n",
			ErrInvertedEvent,
		},
		{
			"task outside task set",
			"tasks t1 t2\nperiod\nexec t9 0 10\n",
			ErrUnknownTask,
		},
		{
			"rise left open at period end",
			"tasks t1 t2\nperiod\nexec t1 0 10\nrise m1 12\nperiod\nexec t1 0 10\n",
			ErrCrossingPeriod,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadString(tc.in)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadString(%q) = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}
