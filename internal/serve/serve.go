// Package serve implements the model-generation service: a
// long-running HTTP server multiplexing many independent trace
// streams, each backed by its own online learner (see
// internal/learner). A logging device POSTs raw trace or candump
// lines as they are captured; the service cuts periods server-side,
// feeds them to the stream's learner, and serves the current
// dependency-model frontier at any time — the paper's workflow turned
// into an always-on endpoint.
//
// Design:
//
//   - Per-stream goroutine ownership. Each stream's learner is
//     touched only by its owner goroutine; the HTTP layer communicates
//     through a bounded period queue and a closure request channel.
//     There is no shared mutable learner state and nothing to lock.
//   - Explicit backpressure. The ingest queue is bounded; a batch
//     that does not fit entirely is rejected with 429 and Retry-After
//     and leaves no partial state behind (clone-and-commit parsing),
//     so the producer can simply resend it.
//   - Per-period durability. With a state store configured
//     (CheckpointDir), every learned period appends one O(delta) record
//     to the stream's write-ahead log (internal/store); the log is
//     periodically folded into a base snapshot. A crash at any point
//     loses at most the period being written.
//   - Lazy hydration. RestoreFromDir is an index scan: it registers
//     every stored stream without decoding a single model, and a
//     stream's learner state pages in (base + WAL replay) on its first
//     ingest or query — restart cost is O(active streams), not
//     O(stored streams). Restored state is bit-identical to what the
//     previous process had made durable. Corrupt state is quarantined,
//     never silently dropped.
//   - Graceful drain. Shutdown stops ingest, lets every owner finish
//     the queued periods (each made durable as it lands), and only
//     then returns.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/blackbox-rt/modelgen/internal/drift"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/store"
)

// Config configures a Server.
type Config struct {
	// CheckpointDir is the root of the stream state store. Empty
	// disables persistence entirely (streams are purely in-memory).
	CheckpointDir string
	// CheckpointEvery is the WAL-compaction record threshold: a
	// stream's log is folded into a fresh base snapshot once it holds
	// this many period records. Zero selects the store default (256).
	// Durability does not depend on it — every period is WAL-durable
	// regardless — it only bounds replay work at hydration.
	CheckpointEvery int
	// CompactBytes additionally triggers a stream compaction once its
	// WAL reaches this size. Zero selects the store default (4 MiB).
	CompactBytes int64
	// CompactJitter spreads each stream's compaction thresholds by a
	// deterministic per-stream factor in [1-f, 1+f], so a fleet of
	// streams fed in lockstep doesn't compact in lockstep. Zero
	// selects the store default (0.2); negative disables.
	CompactJitter float64
	// Logf, when non-nil, receives store recovery and restore logs
	// (torn WAL tails, quarantined state, legacy migrations).
	Logf func(format string, args ...any)
	// QueueDepth bounds each stream's ingest queue (default 256).
	QueueDepth int
	// MaxBody bounds an events request body in bytes (default 8 MiB).
	MaxBody int64
	// Registry, when non-nil, receives the service metrics:
	// serve_streams, serve_http_requests_total, serve_http_errors_total,
	// serve_ingest_offered_lines_total, serve_ingest_shed_lines_total,
	// the serve_ingest_latency_seconds histogram (enqueue → committed
	// model update, with trace exemplars when tracing is on), and
	// per-stream serve_queue_depth{stream=...},
	// serve_periods_total{stream=...}, serve_shed_total{stream=...}.
	// The registry's Prometheus handler is mounted at /metrics.
	Registry *obs.Registry
	// Tracer, when non-nil, records request traces: /events extracts
	// W3C traceparent headers, spans cover ingest → period_cut →
	// learn_period → engine phases, and /debug/traces serves the span
	// ring. Nil disables tracing with zero ingest-path overhead.
	Tracer *obs.Tracer
	// SLO, when non-nil, is mounted at /slo. The caller owns sampling
	// (slo.Monitor.Start) so tests can drive a synthetic clock.
	SLO http.Handler
}

// Server multiplexes trace streams over HTTP. Create with New, mount
// Handler, and Shutdown when done.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// store is the stream state store, nil when CheckpointDir is
	// empty; storeErr holds the open failure (surfaced by
	// RestoreFromDir and create) so New can keep its signature.
	store    *store.Store
	storeErr error

	mu      sync.Mutex
	streams map[string]*stream
	closed  bool
	nextID  atomic.Int64

	mStreams        *obs.Gauge
	mReqs, mErrs    *obs.Counter
	mOfferedLines   *obs.Counter
	mShedLines      *obs.Counter
	mLatency        *obs.Histogram
	mPeriodsLearned *obs.Counter
	mAlarmPeriods   *obs.Counter
	mDriftLag       *obs.Histogram
	mQuarantined    *obs.Counter
}

func (sv *Server) logf(format string, args ...any) {
	if sv.cfg.Logf != nil {
		sv.cfg.Logf(format, args...)
	}
}

// errStreamExists marks create collisions so the handler can map them
// to 409 while other addStream failures stay 400.
var errStreamExists = errors.New("stream already exists")

// errServerClosed rejects work arriving after Shutdown began.
var errServerClosed = errors.New("serve: server is shutting down")

// New builds a Server. Call RestoreFromDir afterwards to reopen
// checkpointed streams.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	sv := &Server{cfg: cfg, streams: map[string]*stream{}}
	if cfg.CheckpointDir != "" {
		sv.store, sv.storeErr = store.Open(store.Options{
			Dir:            cfg.CheckpointDir,
			CompactRecords: cfg.CheckpointEvery,
			CompactBytes:   cfg.CompactBytes,
			JitterFrac:     cfg.CompactJitter,
			Registry:       cfg.Registry,
			Logf:           cfg.Logf,
		})
	}
	if reg := cfg.Registry; reg != nil {
		sv.mStreams = reg.Gauge("serve_streams", "Number of live trace streams.")
		sv.mReqs = reg.Counter("serve_http_requests_total", "API requests served.")
		sv.mErrs = reg.Counter("serve_http_errors_total", "API requests answered with a 5xx status.")
		sv.mOfferedLines = reg.Counter("serve_ingest_offered_lines_total", "Feed lines offered to ingest, shed or not.")
		sv.mShedLines = reg.Counter("serve_ingest_shed_lines_total", "Feed lines rejected with 429 under backpressure.")
		sv.mLatency = reg.HistogramWith(obs.HistogramOpts{
			Name: "serve_ingest_latency_seconds",
			Help: "Seconds from period enqueue to committed model update.",
		})
		sv.mPeriodsLearned = reg.Counter("serve_periods_learned_total",
			"Periods committed to a model update, across all streams.")
		sv.mAlarmPeriods = reg.Counter("serve_drift_alarm_periods_total",
			"Periods that raised a model change-point alarm, across all streams.")
		sv.mDriftLag = reg.HistogramWith(obs.HistogramOpts{
			Name:    obs.MetricDriftLag,
			Help:    "Periods between an estimated change point and its alarm.",
			Buckets: obs.DriftLagBuckets,
		})
		sv.mQuarantined = reg.Counter("serve_restore_quarantined_total",
			"Corrupt stream state moved to quarantine during restore.")
		obs.RuntimeMetrics(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.HandleFunc("POST /v1/streams", sv.handleCreate)
	mux.HandleFunc("GET /v1/streams", sv.handleList)
	mux.HandleFunc("POST /v1/streams/{id}/events", sv.handleEvents)
	mux.HandleFunc("GET /v1/streams/{id}/model", sv.handleModel)
	mux.HandleFunc("GET /v1/streams/{id}/stats", sv.handleStats)
	mux.HandleFunc("GET /v1/streams/{id}/drift", sv.handleDrift)
	mux.HandleFunc("POST /v1/streams/{id}/checkpoint", sv.handleCheckpoint)
	mux.HandleFunc("POST /v1/streams/{id}/compact", sv.handleCompact)
	mux.HandleFunc("DELETE /v1/streams/{id}", sv.handleDelete)
	mux.HandleFunc("GET /debug/streams", sv.handleDebugStreams)
	if cfg.Registry != nil {
		mux.Handle("GET /metrics", cfg.Registry.Handler())
	}
	if cfg.Tracer != nil {
		mux.Handle("GET /debug/traces", cfg.Tracer.Handler())
	}
	if cfg.SLO != nil {
		mux.Handle("GET /slo", cfg.SLO)
	}
	sv.mux = mux
	return sv
}

// statusWriter captures the response status for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the HTTP handler for the whole API surface. With a
// registry it is wrapped in request/error accounting (5xx only:
// backpressure 429s are deliberate and tracked by the shed SLO, not
// availability).
func (sv *Server) Handler() http.Handler {
	if sv.mReqs == nil {
		return sv.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sv.mReqs.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		sv.mux.ServeHTTP(sw, r)
		if sw.code >= 500 {
			sv.mErrs.Inc()
		}
	})
}

// StreamCount returns the number of live streams.
func (sv *Server) StreamCount() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return len(sv.streams)
}

// RestoreFromDir registers every stream found in the state store
// without hydrating any of them, returning how many were registered.
// The scan reads per-stream manifests and WAL frame headers only, so
// restart cost is proportional to the number of streams and their WAL
// sizes, never their model sizes; each stream's learner state pages
// in lazily on its first ingest or query, bit-identical to what the
// previous process had made durable.
//
// Pre-store one-file-per-stream checkpoints (<dir>/<id>.json) are
// migrated into the store first: the file bytes become the stream's
// base snapshot verbatim. Corrupt state — store streams failing
// validation, or legacy files that cannot be decoded — is moved to
// <dir>/quarantine/ and counted in serve_restore_quarantined_total
// (typed as store.CorruptError in the logs), never silently dropped
// and never fatal to the remaining streams.
func (sv *Server) RestoreFromDir() (int, error) {
	if sv.cfg.CheckpointDir == "" {
		return 0, nil
	}
	if sv.storeErr != nil {
		return 0, sv.storeErr
	}
	nq, err := sv.migrateLegacy()
	if err != nil {
		return 0, err
	}
	res, err := sv.store.Scan()
	if err != nil {
		return 0, err
	}
	nq += len(res.Quarantined)
	n := 0
	for _, sm := range res.Streams {
		if err := sv.registerCold(sm); err != nil {
			var ce *store.CorruptError
			if !errors.As(err, &ce) {
				return n, fmt.Errorf("serve: restore %s: %w", sm.ID, err)
			}
			sv.logf("serve: restore %s: %v; quarantining", sm.ID, err)
			if qerr := sv.store.Quarantine(filepath.Join(sv.store.Dir(), sm.ID)); qerr != nil {
				return n, qerr
			}
			nq++
			continue
		}
		n++
	}
	if nq > 0 && sv.mQuarantined != nil {
		sv.mQuarantined.Add(int64(nq))
	}
	return n, nil
}

// migrateLegacy moves pre-store checkpoint files into the store, one
// stream each: the file bytes are the base snapshot of a new epoch-1
// stream, so a migrated stream restores bit-identically through the
// same hydration path as native store state. Undecodable or
// mismatched files are quarantined and counted, not fatal.
func (sv *Server) migrateLegacy() (quarantined int, err error) {
	paths, err := filepath.Glob(filepath.Join(sv.cfg.CheckpointDir, "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		if fi, err := os.Stat(path); err != nil || fi.IsDir() {
			continue // a stream directory whose ID ends in .json
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return quarantined, err
		}
		var cf checkpointFile
		reason := ""
		switch {
		case json.Unmarshal(b, &cf) != nil:
			reason = "undecodable checkpoint"
		case cf.ServeVersion != serveVersion:
			reason = fmt.Sprintf("checkpoint envelope version %d, this binary reads %d", cf.ServeVersion, serveVersion)
		case cf.Snapshot == nil:
			reason = "checkpoint carries no learner snapshot"
		case cf.Info.ID != strings.TrimSuffix(filepath.Base(path), ".json"):
			reason = fmt.Sprintf("checkpoint names stream %q but file is %s", cf.Info.ID, filepath.Base(path))
		}
		if reason == "" {
			learned := cf.Snapshot.Stats.Periods
			if cf.Drift != nil && cf.Drift.Periods > learned {
				// The snapshot covers only the current model generation;
				// the monitor counts periods across generations.
				learned = cf.Drift.Periods
			}
			meta, merr := json.Marshal(cf.Info)
			if merr != nil {
				return quarantined, merr
			}
			h, cerr := sv.store.Create(cf.Info.ID, meta, b, uint64(learned))
			if cerr == nil {
				h.Close()
				if rerr := os.Remove(path); rerr != nil {
					return quarantined, rerr
				}
				continue
			}
			if !errors.Is(cerr, store.ErrExists) {
				return quarantined, cerr
			}
			// The store already holds newer state for this stream; the
			// stale legacy file is preserved aside, not merged.
			reason = "stream already has store state"
		}
		sv.logf("serve: restore %s: %s; quarantining", path, reason)
		if qerr := sv.store.Quarantine(path); qerr != nil {
			return quarantined, qerr
		}
		quarantined++
	}
	return quarantined, nil
}

// registerCold registers a scanned stream without hydrating it: no
// learner, no drift monitor, no open WAL handle — just the
// registration, the parser, and the scan-time stats for /debug. The
// owner goroutine pages real state in on first use.
func (sv *Server) registerCold(sm store.StreamMeta) error {
	manifestPath := filepath.Join(sv.store.Dir(), sm.ID, "manifest.json")
	if len(sm.Meta) == 0 {
		return &store.CorruptError{Stream: sm.ID, Path: manifestPath, Reason: "manifest carries no stream info"}
	}
	var info StreamInfo
	if err := json.Unmarshal(sm.Meta, &info); err != nil {
		return &store.CorruptError{Stream: sm.ID, Path: manifestPath, Reason: "undecodable stream info", Err: err}
	}
	if info.ID != sm.ID {
		return &store.CorruptError{Stream: sm.ID, Path: manifestPath,
			Reason: fmt.Sprintf("manifest names stream %q", info.ID)}
	}
	s, err := sv.newStreamShell(info)
	if err != nil {
		return &store.CorruptError{Stream: sm.ID, Path: manifestPath, Reason: "stream info rejected", Err: err}
	}
	s.cold = &sm
	s.learned = int(sm.LastSeq)
	s.cut.Store(int64(sm.LastSeq))
	s.lastPeriod.Store(int64(sm.LastSeq))
	if sm.CompactedAtUnixNS > 0 {
		s.ckptUnixNS.Store(sm.CompactedAtUnixNS)
	}
	if s.driftEnabled && sm.LastGeneration > 0 {
		s.genA.Store(int64(sm.LastGeneration))
	}
	if err := sv.register(s); err != nil {
		return err
	}
	return nil
}

// Shutdown drains every stream (remaining queued periods are learned,
// each made durable as it lands, and the store handles released) and
// refuses new work. It returns early with the context's error if
// draining outlasts the deadline.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.mu.Lock()
	sv.closed = true
	streams := make([]*stream, 0, len(sv.streams))
	for _, s := range sv.streams {
		streams = append(streams, s)
	}
	sv.mu.Unlock()

	for _, s := range streams {
		s.close()
	}
	for _, s := range streams {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// newStreamShell builds a stream minus its learner and drift monitor:
// parser, channels, metrics, the trace bridge and the drift verify
// hook (which reads s.mon dynamically, so it works whether the
// monitor is built now, at hydration, or at a generation fork). The
// caller either hydrates the shell eagerly (addStream) or registers
// it cold (registerCold).
func (sv *Server) newStreamShell(info StreamInfo) (*stream, error) {
	p, err := newParser(info.Tasks, info.BitRate, info.PeriodUS)
	if err != nil {
		return nil, err
	}
	opt := info.Options.options()
	s := &stream{
		id:              info.ID,
		info:            info,
		parser:          p,
		queue:           make(chan queuedPeriod, sv.cfg.QueueDepth),
		reqs:            make(chan func(*learner.Online)),
		closing:         make(chan struct{}),
		done:            make(chan struct{}),
		store:           sv.store,
		tracer:          sv.cfg.Tracer,
		mLatency:        sv.mLatency,
		mOfferedLines:   sv.mOfferedLines,
		mShedLines:      sv.mShedLines,
		mPeriodsLearned: sv.mPeriodsLearned,
		mAlarmPeriods:   sv.mAlarmPeriods,
		mDriftLag:       sv.mDriftLag,
	}
	if sv.cfg.Tracer != nil {
		s.bridge = &phaseBridge{tracer: sv.cfg.Tracer}
		opt.Observer = s.bridge
	}
	if do := info.Drift; do != nil && do.Enabled {
		s.driftEnabled = true
		// The hook runs synchronously inside AddPeriod on the owner
		// goroutine; consume picks up pendingDrift right after. s.mon
		// is owner-written, so the dynamic read is race-free.
		opt.OnPeriodVerify = func(out engine.VerifyOutcome) {
			if s.mon == nil {
				return
			}
			if ev := s.mon.Observe(out.Period, out.LUB, out.Live); ev != nil {
				s.pendingDrift = ev
			}
		}
	}
	s.opt = opt
	if reg := sv.cfg.Registry; reg != nil {
		s.mQueueDepth = reg.LabeledGauge("serve_queue_depth",
			"Ingest queue occupancy per stream.", "stream", s.id)
		s.mPeriods = reg.LabeledCounter("serve_periods_total",
			"Periods cut and queued per stream.", "stream", s.id)
		s.mShed = reg.LabeledCounter("serve_shed_total",
			"Ingest batches shed with 429 per stream.", "stream", s.id)
		if s.driftEnabled {
			s.mDriftGen = reg.LabeledGauge(obs.MetricDriftGeneration,
				"Current model generation per stream.", "stream", s.id)
			s.mDriftStreak = reg.LabeledGauge(obs.MetricDriftStreak,
				"Stability streak (periods with an unchanged model) per stream.", "stream", s.id)
			s.mDriftAmbig = reg.LabeledFloatGauge(obs.MetricDriftAmbiguity,
				"Fraction of task pairs with a conditional dependency per stream.", "stream", s.id)
			s.mDriftAlarms = reg.LabeledCounter(obs.MetricDriftAlarms,
				"Model change-point alarms per stream.", "stream", s.id)
		}
	}
	return s, nil
}

// register publishes a fully built stream and starts its owner
// goroutine.
func (sv *Server) register(s *stream) error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.dropStreamMetrics(s)
		return errServerClosed
	}
	if _, dup := sv.streams[s.id]; dup {
		sv.mu.Unlock()
		sv.dropStreamMetrics(s)
		return fmt.Errorf("serve: stream %q: %w", s.id, errStreamExists)
	}
	sv.streams[s.id] = s
	if sv.mStreams != nil {
		sv.mStreams.Set(int64(len(sv.streams)))
	}
	sv.mu.Unlock()

	go s.run()
	return nil
}

// addStream wires up a hot stream (fresh when snap is nil, else
// restored from the snapshot, with dst the drift-monitor state),
// creates its store entry and starts its owner goroutine.
func (sv *Server) addStream(info StreamInfo, snap *learner.Snapshot, learned int, dst *drift.State) (*stream, error) {
	if sv.cfg.CheckpointDir != "" && sv.storeErr != nil {
		return nil, sv.storeErr
	}
	s, err := sv.newStreamShell(info)
	if err != nil {
		return nil, err
	}
	if err := s.buildLearner(snap); err != nil {
		sv.dropStreamMetrics(s)
		return nil, err
	}
	if err := s.buildMonitor(dst); err != nil {
		sv.dropStreamMetrics(s)
		return nil, fmt.Errorf("serve: stream %s %w", info.ID, err)
	}
	s.learned = learned
	s.hydrated = true
	s.hydratedA.Store(true)
	s.cut.Store(int64(learned))
	s.lastPeriod.Store(int64(learned))
	s.publishDriftView()
	if sv.store != nil {
		meta, err := json.Marshal(info)
		if err != nil {
			sv.dropStreamMetrics(s)
			return nil, err
		}
		// A stream born with learned state (checkpoint import) seeds its
		// store entry with that state as the base snapshot, or a restart
		// before its first local compaction would hydrate a fresh
		// learner and replay WAL deltas against the wrong baseline.
		var base []byte
		if snap != nil {
			cf := checkpointFile{ServeVersion: serveVersion, Info: info, Snapshot: snap, Drift: dst}
			if base, err = json.Marshal(&cf); err != nil {
				sv.dropStreamMetrics(s)
				return nil, err
			}
		}
		st, err := sv.store.Create(info.ID, meta, base, uint64(learned))
		if err != nil {
			sv.dropStreamMetrics(s)
			if errors.Is(err, store.ErrExists) {
				return nil, fmt.Errorf("serve: stream %q: %w", info.ID, errStreamExists)
			}
			return nil, err
		}
		s.st = st
		s.stA.Store(st)
	}
	if err := sv.register(s); err != nil {
		if s.st != nil {
			// We created the entry above, so nothing else references it.
			s.st.Close()
			_ = sv.store.Remove(info.ID)
		}
		return nil, err
	}
	return s, nil
}

func (sv *Server) dropStreamMetrics(s *stream) {
	reg := sv.cfg.Registry
	if reg == nil {
		return
	}
	reg.Unregister(obs.SeriesName("serve_queue_depth", "stream", s.id))
	reg.Unregister(obs.SeriesName("serve_periods_total", "stream", s.id))
	reg.Unregister(obs.SeriesName("serve_shed_total", "stream", s.id))
	if s.driftEnabled {
		reg.Unregister(obs.SeriesName(obs.MetricDriftGeneration, "stream", s.id))
		reg.Unregister(obs.SeriesName(obs.MetricDriftStreak, "stream", s.id))
		reg.Unregister(obs.SeriesName(obs.MetricDriftAmbiguity, "stream", s.id))
		reg.Unregister(obs.SeriesName(obs.MetricDriftAlarms, "stream", s.id))
	}
}

func (sv *Server) stream(id string) (*stream, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.streams[id]
	return s, ok
}

// ---- handlers ----

func (sv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateStreamRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad create body: %w", err))
		return
	}
	if req.ID == "" {
		req.ID = fmt.Sprintf("s%d", sv.nextID.Add(1))
	}
	if err := validateID(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info := StreamInfo{ID: req.ID, Tasks: append([]string(nil), req.Tasks...),
		BitRate: req.BitRate, PeriodUS: req.PeriodUS, Options: req.Options, Drift: req.Drift}
	s, err := sv.addStream(info, nil, 0, nil)
	switch {
	case errors.Is(err, errStreamExists) || errors.Is(err, errServerClosed):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.info)
}

func (sv *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	infos := make([]StreamInfo, 0, len(sv.streams))
	for _, s := range sv.streams {
		infos = append(infos, s.info)
	}
	sv.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (sv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sv.cfg.MaxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: events body: %w", err))
		return
	}
	lines := strings.Split(string(body), "\n")
	parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	sp := sv.cfg.Tracer.StartSpan("ingest", parent)
	sp.SetAttr("stream", s.id)
	if sp != nil {
		// Inject the (possibly server-started) trace back to the client
		// so it can find the span tree at /debug/traces.
		w.Header().Set("traceparent", sp.Context().Traceparent())
	}
	resp, shed, err := s.ingest(lines, sp.Context())
	sp.End()
	switch {
	case shed:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrStreamClosed):
		writeError(w, http.StatusGone, err)
	case err != nil && s.deadErr() != nil:
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (sv *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	var res *learner.Result
	var resErr error
	err := s.do(func(o *learner.Online) {
		if o == nil { // hydration failed; surface the sticky error
			resErr = s.deadErr()
			return
		}
		res, resErr = o.Result()
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	if resErr != nil {
		writeError(w, http.StatusConflict, resErr)
		return
	}
	if r.URL.Query().Get("format") == "dot" {
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, res.LUB.DOT(s.id))
		return
	}
	m := ModelResponse{
		ID:        s.id,
		Tasks:     res.TaskSet.Names(),
		LUB:       res.LUB.Table(),
		Converged: res.Converged,
		Periods:   res.Stats.Periods,
	}
	for _, d := range res.Hypotheses {
		m.Hypotheses = append(m.Hypotheses, d.Table())
	}
	writeJSON(w, http.StatusOK, m)
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	resp := StatsResponse{ID: s.id, QueueCap: cap(s.queue)}
	err := s.do(func(o *learner.Online) {
		// s.learned, not engine periods: a drift fork starts a fresh
		// learner whose own period count resets with the generation.
		resp.PeriodsLearned = s.learned
		if o == nil { // hydration failed; Err carries the sticky error
			return
		}
		resp.Engine = o.Stats()
		resp.WorkingSet = o.WorkingSetSize()
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	resp.PeriodsCut = int(s.cut.Load())
	resp.QueueDepth = len(s.queue)
	resp.Shed = s.shed.Load()
	s.feedMu.Lock()
	resp.Partial = s.parser.partial()
	s.feedMu.Unlock()
	if derr := s.deadErr(); derr != nil {
		resp.Err = derr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDrift serves the stream's drift-monitor state. The query runs
// on the owner goroutine, so like /model it observes every period
// whose ingest completed before the request.
func (sv *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return
	}
	resp := DriftResponse{ID: s.id}
	err := s.do(func(*learner.Online) {
		if s.mon != nil {
			resp.Enabled = true
			st := s.mon.State()
			resp.State = &st
		}
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// compactNow runs an on-demand compaction on the stream's owner
// goroutine (hydrating a cold stream first) and returns the new
// base's path, the periods it covers, and the post-compaction WAL
// record count.
func (sv *Server) compactNow(w http.ResponseWriter, r *http.Request) (CompactResponse, bool) {
	var out CompactResponse
	s, ok := sv.stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", r.PathValue("id")))
		return out, false
	}
	if sv.store == nil {
		writeError(w, http.StatusConflict, errors.New("serve: server has no checkpoint directory"))
		return out, false
	}
	var cpErr error
	err := s.do(func(o *learner.Online) {
		if o == nil || s.st == nil {
			if cpErr = s.deadErr(); cpErr == nil {
				cpErr = errors.New("serve: stream has no durable state handle")
			}
			return
		}
		s.compactPersist()
		if cpErr = s.persistErr(); cpErr != nil {
			return
		}
		out = CompactResponse{
			ID:         s.id,
			Path:       s.st.BasePath(),
			Periods:    s.learned,
			WALRecords: s.st.Stats().WALRecords,
		}
	})
	if errors.Is(err, ErrStreamClosed) {
		writeError(w, http.StatusGone, err)
		return out, false
	}
	if cpErr != nil {
		writeError(w, http.StatusConflict, cpErr)
		return out, false
	}
	return out, true
}

func (sv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	out, ok := sv.compactNow(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{ID: out.ID, Path: out.Path, Periods: out.Periods})
}

// handleCompact is POST /v1/streams/{id}/compact: fold the stream's
// WAL into a fresh base right now, regardless of thresholds.
func (sv *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	out, ok := sv.compactNow(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugStreams serves the one-page operational view: every
// stream's queue depth, live hypothesis count, last period index and
// checkpoint age, read from atomics without disturbing the owners.
func (sv *Server) handleDebugStreams(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	streams := make([]*stream, 0, len(sv.streams))
	for _, s := range sv.streams {
		streams = append(streams, s)
	}
	sv.mu.Unlock()
	sort.Slice(streams, func(i, j int) bool { return streams[i].id < streams[j].id })

	now := time.Now()
	out := DebugStreamsResponse{Streams: make([]StreamDebug, 0, len(streams))}
	for _, s := range streams {
		d := StreamDebug{
			ID:         s.id,
			QueueDepth: len(s.queue),
			QueueCap:   cap(s.queue),
			PeriodsCut: s.cut.Load(),
			LastPeriod: s.lastPeriod.Load(),
			LiveHyps:   s.liveWS.Load(),
			Shed:       s.shed.Load(),
		}
		if ns := s.ckptUnixNS.Load(); ns > 0 {
			d.CheckpointAgeSeconds = now.Sub(time.Unix(0, ns)).Seconds()
		}
		if s.driftEnabled { // immutable after construction, safe to read
			d.Generation = s.genA.Load()
			d.Streak = s.streakA.Load()
			d.AmbiguityRatio = math.Float64frombits(s.ambigBits.Load())
			d.LastChangePoint = s.lastCPA.Load()
		}
		// Store view: live handle stats once hydrated, the scan-time
		// snapshot while cold (exact — a cold stream appends nothing).
		d.Hydrated = s.hydratedA.Load()
		var sm *store.StreamMeta
		if h := s.stA.Load(); h != nil {
			v := h.Stats()
			sm = &v
		} else if s.cold != nil {
			sm = s.cold
		}
		if sm != nil {
			d.WALRecords = sm.WALRecords
			d.WALBytes = sm.WALBytes
			if sm.CompactedAtUnixNS > 0 {
				d.LastCompaction = time.Unix(0, sm.CompactedAtUnixNS).UTC().Format(time.RFC3339Nano)
			}
		}
		if err := s.persistErr(); err != nil {
			d.PersistErr = err.Error()
		}
		if err := s.deadErr(); err != nil {
			d.Err = err.Error()
		}
		out.Streams = append(out.Streams, d)
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv.mu.Lock()
	s, ok := sv.streams[id]
	if ok {
		delete(sv.streams, id)
		if sv.mStreams != nil {
			sv.mStreams.Set(int64(len(sv.streams)))
		}
	}
	sv.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no stream %q", id))
		return
	}
	s.close()
	<-s.done
	if sv.store != nil { // the owner has exited and closed its handle
		if err := sv.store.Remove(id); err != nil {
			sv.logf("serve: delete %s: %v", id, err)
		}
	}
	sv.dropStreamMetrics(s)
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
