package depfunc

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// FuzzPackedDepFunc drives a packed matrix and its scalar Reference
// shadow through the same random operation sequence — Set, JoinAt,
// join-merge, meet, copy-on-write cloning — and demands bit-identical
// entries, fingerprints, weights and keys after every step. It is the
// fuzz arm of the packed-kernel differential tier: the property tests
// pin the word kernels, this target hunts for divergence in the
// incremental bookkeeping (fingerprint deltas, copy-on-write
// ownership, tail-lane invariants) under adversarial op interleavings.
func FuzzPackedDepFunc(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 4, 1, 2, 0, 3})
	f.Add([]byte{9, 1, 0, 1, 6, 2, 0, 0, 0, 3, 4, 5, 4, 0, 0, 5, 1, 1})
	f.Add([]byte{11, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		// Task-set sizes 2..12 cover matrices from a fraction of one
		// word (4 lanes) to several words (144 lanes), so every op can
		// land mid-word, at a word boundary or in the partial tail.
		n := 2 + int(ops[0])%11
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		ts, err := NewTaskSet(names)
		if err != nil {
			t.Fatal(err)
		}
		d, r := Bottom(ts), NewReference(ts)
		d2, r2 := Top(ts), refTop(ts)

		check := func(step int, op string) {
			t.Helper()
			if err := r.Matches(d); err != nil {
				t.Fatalf("step %d (%s): primary diverged: %v", step, op, err)
			}
			if err := r2.Matches(d2); err != nil {
				t.Fatalf("step %d (%s): secondary diverged: %v", step, op, err)
			}
		}

		ops = ops[1:]
		for step := 0; len(ops) >= 3; step++ {
			op, a, b := ops[0], ops[1], ops[2]
			ops = ops[3:]
			i, j := int(a)%n, int(b)%n
			v := lattice.Value(int(op/6) % 7)
			switch op % 6 {
			case 0:
				if i == j {
					continue
				}
				d.Set(i, j, v)
				r.Set(i, j, v)
				check(step, "set")
			case 1:
				if i == j {
					continue
				}
				d.JoinAt(i, j, v)
				r.JoinAt(i, j, v)
				check(step, "joinat")
			case 2:
				d.JoinWith(d2)
				r.JoinWith(r2)
				check(step, "joinwith")
			case 3:
				m := d.Meet(d2)
				d.Release()
				d = m
				r.MeetWith(r2)
				check(step, "meet")
			case 4:
				// Copy-on-write alias: later mutations of either side
				// must materialize a private copy without corrupting
				// the other.
				d2.Release()
				d2 = d.CloneShared()
				r2 = r.Clone()
				check(step, "cloneshared")
			case 5:
				d2.Release()
				r2 = NewReference(ts)
				if (a+b)%2 == 0 {
					d2 = Top(ts)
					r2 = refTop(ts)
				} else {
					d2 = Bottom(ts)
				}
				check(step, "reset")
			}
		}
		if err := r.Matches(d); err != nil {
			t.Fatalf("final: %v", err)
		}
	})
}

// refTop builds the scalar shadow of Top.
func refTop(ts *TaskSet) *Reference {
	r := NewReference(ts)
	n := ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				r.Set(i, j, lattice.Top)
			}
		}
	}
	return r
}
