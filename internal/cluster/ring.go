// Package cluster shards bbserved streams across a static set of
// nodes: a consistent-hash ring decides stream placement, a gateway
// (Gateway) proxies the /v1/streams API to the owning node, and
// migration moves a stream between nodes by checkpoint handoff
// (serve.ExportStream / serve.ImportStream) under a fenced epoch so a
// deposed owner's late writes are rejected instead of forking state.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-node virtual point count when
// RingConfig leaves it zero. 128 points per node keeps the ownership
// spread of a small ring within a few percent of uniform.
const DefaultVirtualNodes = 128

// RingConfig parameterizes a ring. The zero value is usable.
type RingConfig struct {
	// VirtualNodes is the number of ring points each node projects;
	// zero selects DefaultVirtualNodes.
	VirtualNodes int
	// Seed perturbs every hash on the ring. Placement is a pure
	// function of (seed, membership, key), so tests pin a seed to pin
	// placement.
	Seed uint64
}

// Ring is an immutable consistent-hash ring over named nodes. Mutating
// membership returns a new ring (WithNode / WithoutNode), which is
// what makes the ≤1/(n+1) expected key-movement property easy to test
// and the gateway's swap of a placement table race-free.
type Ring struct {
	cfg    RingConfig
	nodes  []string // sorted, unique
	points []point  // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node names. Names must be
// non-empty and unique; order does not matter (the ring sorts them, so
// two rings built from permutations of the same membership are
// identical).
func NewRing(nodes []string, cfg RingConfig) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
	}
	r := &Ring{cfg: cfg, nodes: sorted}
	r.points = make([]point, 0, len(sorted)*cfg.VirtualNodes)
	for _, n := range sorted {
		h := rightHash(cfg.Seed, n)
		for v := 0; v < cfg.VirtualNodes; v++ {
			// Derive each virtual point from the node's own hash chain
			// rather than re-hashing "<node>#<v>" strings: no quoting
			// ambiguity between node names and suffixes, and point
			// generation is O(1) per point.
			h = mix64(h + goldenGamma)
			r.points = append(r.points, point{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare, but the fuzzer gets to pick node
		// names) break deterministically by name so permuted
		// constructions still agree.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node owning the key: the first ring point at or
// after the key's hash, wrapping at the top. Total for every string,
// including hostile ones — routing never errors, it just places.
func (r *Ring) Owner(key string) string {
	h := rightHash(r.cfg.Seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the membership, sorted. The slice is a copy.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Has reports whether the node is a member.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// WithNode returns a new ring with the node added.
func (r *Ring) WithNode(node string) (*Ring, error) {
	if r.Has(node) {
		return nil, fmt.Errorf("cluster: node %q already in ring", node)
	}
	return NewRing(append(r.Nodes(), node), r.cfg)
}

// WithoutNode returns a new ring with the node removed.
func (r *Ring) WithoutNode(node string) (*Ring, error) {
	if !r.Has(node) {
		return nil, fmt.Errorf("cluster: node %q not in ring", node)
	}
	keep := make([]string, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if n != node {
			keep = append(keep, n)
		}
	}
	return NewRing(keep, r.cfg)
}

// goldenGamma is the splitmix64 increment (2^64/φ, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// rightHash hashes a string under a seed: FNV-1a accumulation over the
// bytes with the seed folded into the offset basis, finished through
// the splitmix64 finalizer for avalanche. Deterministic across
// platforms and Go releases (unlike hash/maphash), which the pinned
// placement tests and the cross-process gateway/node agreement both
// require.
func rightHash(seed uint64, s string) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := fnvOffset ^ mix64(seed+goldenGamma)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
