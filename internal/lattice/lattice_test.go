package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func quickValue(r *rand.Rand) Value { return Value(r.Intn(int(numValues))) }

var quickCfg = &quick.Config{
	MaxCount: 2000,
	Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(quickValue(r))
		}
	},
}

func TestOrderReflexive(t *testing.T) {
	for _, v := range Values() {
		if !Leq(v, v) {
			t.Errorf("Leq(%v, %v) = false, want true", v, v)
		}
	}
}

func TestOrderAntisymmetric(t *testing.T) {
	for _, a := range Values() {
		for _, b := range Values() {
			if Leq(a, b) && Leq(b, a) && a != b {
				t.Errorf("order not antisymmetric at %v, %v", a, b)
			}
		}
	}
}

func TestOrderTransitive(t *testing.T) {
	for _, a := range Values() {
		for _, b := range Values() {
			for _, c := range Values() {
				if Leq(a, b) && Leq(b, c) && !Leq(a, c) {
					t.Errorf("order not transitive: %v <= %v <= %v but not %v <= %v", a, b, c, a, c)
				}
			}
		}
	}
}

func TestBottomAndTop(t *testing.T) {
	for _, v := range Values() {
		if !Leq(Bottom, v) {
			t.Errorf("Bottom not below %v", v)
		}
		if !Leq(v, Top) {
			t.Errorf("%v not below Top", v)
		}
	}
}

// TestHasseDiagram pins the exact order relation from Figure 3 of the
// paper: the listed pairs (and only those, plus reflexivity and
// transitive consequences) are ordered.
func TestHasseDiagram(t *testing.T) {
	wantLeq := map[[2]Value]bool{}
	for _, v := range Values() {
		wantLeq[[2]Value{v, v}] = true
		wantLeq[[2]Value{Par, v}] = true
		wantLeq[[2]Value{v, BiMaybe}] = true
	}
	wantLeq[[2]Value{Fwd, FwdMaybe}] = true
	wantLeq[[2]Value{Fwd, Bi}] = true
	wantLeq[[2]Value{Bwd, BwdMaybe}] = true
	wantLeq[[2]Value{Bwd, Bi}] = true
	for _, a := range Values() {
		for _, b := range Values() {
			if got, want := Leq(a, b), wantLeq[[2]Value{a, b}]; got != want {
				t.Errorf("Leq(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	for _, a := range Values() {
		for _, b := range Values() {
			j := Join(a, b)
			if !Leq(a, j) || !Leq(b, j) {
				t.Fatalf("Join(%v, %v) = %v is not an upper bound", a, b, j)
			}
			for _, c := range Values() {
				if Leq(a, c) && Leq(b, c) && !Leq(j, c) {
					t.Errorf("Join(%v, %v) = %v not least: %v is a smaller upper bound", a, b, j, c)
				}
			}
		}
	}
}

func TestMeetIsGreatestLowerBound(t *testing.T) {
	for _, a := range Values() {
		for _, b := range Values() {
			m := Meet(a, b)
			if !Leq(m, a) || !Leq(m, b) {
				t.Fatalf("Meet(%v, %v) = %v is not a lower bound", a, b, m)
			}
			for _, c := range Values() {
				if Leq(c, a) && Leq(c, b) && !Leq(c, m) {
					t.Errorf("Meet(%v, %v) = %v not greatest: %v is a larger lower bound", a, b, m, c)
				}
			}
		}
	}
}

func TestJoinCommutative(t *testing.T) {
	f := func(a, b Value) bool { return Join(a, b) == Join(b, a) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestJoinAssociative(t *testing.T) {
	f := func(a, b, c Value) bool { return Join(Join(a, b), c) == Join(a, Join(b, c)) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestJoinIdempotent(t *testing.T) {
	for _, v := range Values() {
		if Join(v, v) != v {
			t.Errorf("Join(%v, %v) = %v", v, v, Join(v, v))
		}
	}
}

func TestMeetCommutativeAssociative(t *testing.T) {
	f := func(a, b, c Value) bool {
		return Meet(a, b) == Meet(b, a) && Meet(Meet(a, b), c) == Meet(a, Meet(b, c))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestAbsorptionLaws(t *testing.T) {
	f := func(a, b Value) bool {
		return Join(a, Meet(a, b)) == a && Meet(a, Join(a, b)) == a
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestOrderJoinConsistency(t *testing.T) {
	// a <= b  <=>  Join(a,b) == b  <=>  Meet(a,b) == a.
	for _, a := range Values() {
		for _, b := range Values() {
			if Leq(a, b) != (Join(a, b) == b) {
				t.Errorf("Leq/Join inconsistent at %v, %v", a, b)
			}
			if Leq(a, b) != (Meet(a, b) == a) {
				t.Errorf("Leq/Meet inconsistent at %v, %v", a, b)
			}
		}
	}
}

func TestSpecificJoins(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{Par, Fwd, Fwd},
		{Par, BiMaybe, BiMaybe},
		{Fwd, Bwd, Bi},
		{Fwd, FwdMaybe, FwdMaybe},
		{Fwd, BwdMaybe, BiMaybe},
		{Bwd, FwdMaybe, BiMaybe},
		{FwdMaybe, BwdMaybe, BiMaybe},
		{FwdMaybe, Bi, BiMaybe},
		{Bi, BwdMaybe, BiMaybe},
		{Bi, BiMaybe, BiMaybe},
		{Fwd, Bi, Bi},
		{Bwd, Bi, Bi},
	}
	for _, c := range cases {
		if got := Join(c.a, c.b); got != c.want {
			t.Errorf("Join(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSpecificMeets(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{Fwd, Bwd, Par},
		{FwdMaybe, BwdMaybe, Par},
		{FwdMaybe, Bi, Fwd},
		{BwdMaybe, Bi, Bwd},
		{BiMaybe, Bi, Bi},
		{FwdMaybe, BiMaybe, FwdMaybe},
	}
	for _, c := range cases {
		if got := Meet(c.a, c.b); got != c.want {
			t.Errorf("Meet(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceTable(t *testing.T) {
	// Definition 7 of the paper.
	want := map[Value]int{
		Par: 0, Fwd: 1, Bwd: 1,
		FwdMaybe: 4, Bi: 4, BwdMaybe: 4,
		BiMaybe: 9,
	}
	for v, d := range want {
		if got := Distance(v); got != d {
			t.Errorf("Distance(%v) = %d, want %d", v, got, d)
		}
	}
}

func TestDistanceMonotonic(t *testing.T) {
	for _, a := range Values() {
		for _, b := range Values() {
			if Lt(a, b) && Distance(a) >= Distance(b) {
				t.Errorf("Distance not strictly monotonic: %v < %v but %d >= %d",
					a, b, Distance(a), Distance(b))
			}
		}
	}
}

func TestLevelMatchesDistance(t *testing.T) {
	// Distance is the square of the lattice level.
	for _, v := range Values() {
		if l := Level(v); l*l != Distance(v) {
			t.Errorf("Level(%v)^2 = %d, Distance = %d", v, l*l, Distance(v))
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	for _, v := range Values() {
		if Reverse(Reverse(v)) != v {
			t.Errorf("Reverse not an involution at %v", v)
		}
	}
}

func TestReverseIsOrderAutomorphism(t *testing.T) {
	for _, a := range Values() {
		for _, b := range Values() {
			if Leq(a, b) != Leq(Reverse(a), Reverse(b)) {
				t.Errorf("Reverse does not preserve order at %v, %v", a, b)
			}
			if Reverse(Join(a, b)) != Join(Reverse(a), Reverse(b)) {
				t.Errorf("Reverse does not commute with Join at %v, %v", a, b)
			}
		}
	}
}

func TestReversePairs(t *testing.T) {
	cases := map[Value]Value{
		Par: Par, Fwd: Bwd, Bwd: Fwd, Bi: Bi,
		FwdMaybe: BwdMaybe, BwdMaybe: FwdMaybe, BiMaybe: BiMaybe,
	}
	for v, want := range cases {
		if got := Reverse(v); got != want {
			t.Errorf("Reverse(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestRelax(t *testing.T) {
	cases := map[Value]Value{
		Par: Par, Fwd: FwdMaybe, Bwd: BwdMaybe, Bi: BiMaybe,
		FwdMaybe: FwdMaybe, BwdMaybe: BwdMaybe, BiMaybe: BiMaybe,
	}
	for v, want := range cases {
		if got := Relax(v); got != want {
			t.Errorf("Relax(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestRelaxIsMinimalConstraintRemoval(t *testing.T) {
	// Relax(v) is the least value above v without an execution
	// constraint.
	for _, v := range Values() {
		r := Relax(v)
		if HasExecConstraint(r) {
			t.Errorf("Relax(%v) = %v still has an execution constraint", v, r)
		}
		if !Leq(v, r) {
			t.Errorf("Relax(%v) = %v is not above v", v, r)
		}
		for _, c := range Values() {
			if Leq(v, c) && !HasExecConstraint(c) && !Leq(r, c) {
				t.Errorf("Relax(%v) = %v is not minimal; %v is smaller", v, r, c)
			}
		}
	}
}

func TestHasExecConstraint(t *testing.T) {
	want := map[Value]bool{
		Par: false, Fwd: true, Bwd: true, Bi: true,
		FwdMaybe: false, BwdMaybe: false, BiMaybe: false,
	}
	for v, w := range want {
		if got := HasExecConstraint(v); got != w {
			t.Errorf("HasExecConstraint(%v) = %v, want %v", v, got, w)
		}
	}
}

func TestAllowsMessage(t *testing.T) {
	wantOut := map[Value]bool{
		Par: false, Fwd: true, Bwd: false, Bi: true,
		FwdMaybe: true, BwdMaybe: false, BiMaybe: true,
	}
	for v, w := range wantOut {
		if got := AllowsOutgoingMessage(v); got != w {
			t.Errorf("AllowsOutgoingMessage(%v) = %v, want %v", v, got, w)
		}
		if got := AllowsIncomingMessage(Reverse(v)); got != w {
			t.Errorf("AllowsIncomingMessage(Reverse(%v)) = %v, want %v", v, got, w)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, v := range Values() {
		got, err := ParseValue(v.String())
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
		got, err = ParseValue(v.Pretty())
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", v.Pretty(), err)
		}
		if got != v {
			t.Errorf("pretty round trip %v -> %q -> %v", v, v.Pretty(), got)
		}
	}
}

func TestParseValueError(t *testing.T) {
	for _, bad := range []string{"", "-->", "=>", "? ", "par?"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) succeeded, want error", bad)
		}
	}
}

func TestInvalidValueString(t *testing.T) {
	v := Value(42)
	if Valid(v) {
		t.Fatal("Value(42) reported valid")
	}
	if got := v.String(); got != "Value(42)" {
		t.Errorf("String() = %q", got)
	}
	if got := v.Pretty(); got != "Value(42)" {
		t.Errorf("Pretty() = %q", got)
	}
}

func TestJoinAllMeetAll(t *testing.T) {
	if got := JoinAll(); got != Bottom {
		t.Errorf("JoinAll() = %v, want Bottom", got)
	}
	if got := MeetAll(); got != Top {
		t.Errorf("MeetAll() = %v, want Top", got)
	}
	if got := JoinAll(Fwd, Bwd, Par); got != Bi {
		t.Errorf("JoinAll(Fwd, Bwd, Par) = %v, want Bi", got)
	}
	if got := MeetAll(FwdMaybe, Bi); got != Fwd {
		t.Errorf("MeetAll(FwdMaybe, Bi) = %v, want Fwd", got)
	}
}

func TestValuesComplete(t *testing.T) {
	vs := Values()
	if len(vs) != int(numValues) {
		t.Fatalf("Values() returned %d values, want %d", len(vs), numValues)
	}
	seen := map[Value]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Errorf("duplicate value %v", v)
		}
		seen[v] = true
	}
}

func TestDistancePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Distance(invalid) did not panic")
		}
	}()
	Distance(Value(99))
}
