package model

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFigure1Valid(t *testing.T) {
	m := Figure1()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Task("t1").Kind != Disjunction {
		t.Error("t1 should be a disjunction")
	}
	if m.Task("t4").Kind != Conjunction {
		t.Error("t4 should be a conjunction")
	}
	if len(m.OutEdges("t1")) != 2 || len(m.InEdges("t4")) != 2 {
		t.Error("edge structure wrong")
	}
	if m.Task("zz") != nil {
		t.Error("unknown task lookup should be nil")
	}
}

func TestGMStyleValid(t *testing.T) {
	m := GMStyle()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks) != 18 {
		t.Errorf("tasks = %d, want 18 (the paper's case study size)", len(m.Tasks))
	}
	for _, name := range []string{"A", "B", "S"} {
		if m.Task(name).Kind != Disjunction {
			t.Errorf("%s should be a disjunction", name)
		}
	}
	for _, name := range []string{"H", "P", "Q"} {
		if m.Task(name).Kind != Conjunction {
			t.Errorf("%s should be a conjunction", name)
		}
	}
	if !m.Task("O").EmitsSync || !m.Task("Q").WaitsSync {
		t.Error("O/Q infrastructure flags wrong")
	}
}

func TestGMStyleLiteValid(t *testing.T) {
	m := GMStyleLite()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks) != 7 {
		t.Errorf("tasks = %d, want 7", len(m.Tasks))
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := func() *Model {
		return &Model{
			Name:   "m",
			Period: 100,
			Tasks: []Task{
				{Name: "a", Priority: 2, BCET: 1, WCET: 2, Source: true},
				{Name: "b", Priority: 1, BCET: 1, WCET: 2},
			},
			Edges: []Edge{{From: "a", To: "b", CANID: 1, DLC: 4}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Model)
		want   string
	}{
		{"no tasks", func(m *Model) { m.Tasks = nil }, "no tasks"},
		{"bad period", func(m *Model) { m.Period = 0 }, "period"},
		{"dup name", func(m *Model) { m.Tasks[1].Name = "a" }, "duplicate task"},
		{"empty name", func(m *Model) { m.Tasks[0].Name = "" }, "empty task name"},
		{"dup priority", func(m *Model) { m.Tasks[1].Priority = 2 }, "share priority"},
		{"bad exec time", func(m *Model) { m.Tasks[0].WCET = 0 }, "invalid execution times"},
		{"bad offset", func(m *Model) { m.Tasks[0].Offset = 1000 }, "offset"},
		{"edge unknown task", func(m *Model) { m.Edges[0].To = "zz" }, "unknown task"},
		{"self edge", func(m *Model) { m.Edges[0].To = "a" }, "self edge"},
		{"bad dlc", func(m *Model) { m.Edges[0].DLC = 12 }, "DLC"},
		{"source with input", func(m *Model) {
			m.Tasks[1].Source = true
		}, "source task"},
		{"orphan task", func(m *Model) {
			m.Edges = nil
		}, "no inputs"},
		{"disjunction out-degree", func(m *Model) {
			m.Tasks[0].Kind = Disjunction
		}, "disjunction task"},
		{"waits sync without emitter", func(m *Model) {
			m.Tasks[1].WaitsSync = true
		}, "sync"},
	}
	for _, c := range cases {
		m := base()
		c.mutate(m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidateDuplicateCANID(t *testing.T) {
	m := &Model{
		Name:   "m",
		Period: 100,
		Tasks: []Task{
			{Name: "a", Priority: 3, BCET: 1, WCET: 1, Source: true},
			{Name: "b", Priority: 2, BCET: 1, WCET: 1},
			{Name: "c", Priority: 1, BCET: 1, WCET: 1},
		},
		Edges: []Edge{
			{From: "a", To: "b", CANID: 1, DLC: 1},
			{From: "a", To: "c", CANID: 1, DLC: 1},
		},
	}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "CAN id") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateCyclic(t *testing.T) {
	m := &Model{
		Name:   "m",
		Period: 100,
		Tasks: []Task{
			{Name: "a", Priority: 2, BCET: 1, WCET: 1},
			{Name: "b", Priority: 1, BCET: 1, WCET: 1},
		},
		Edges: []Edge{
			{From: "a", To: "b", CANID: 1, DLC: 1},
			{From: "b", To: "a", CANID: 2, DLC: 1},
		},
	}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("err = %v", err)
	}
}

func TestFireSourcesAlwaysFire(t *testing.T) {
	m := Figure1()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		plan := m.Fire(r)
		if !plan.Fired["t1"] {
			t.Fatal("source t1 did not fire")
		}
		// t4 fires iff t2 or t3 fired; t1 always chooses >= 1 branch.
		if !plan.Fired["t2"] && !plan.Fired["t3"] {
			t.Fatal("disjunction chose an empty subset")
		}
		if !plan.Fired["t4"] {
			t.Fatal("t4 should fire whenever t2 or t3 fires")
		}
	}
}

func TestFireChosenEdgesConsistent(t *testing.T) {
	m := GMStyle()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		plan := m.Fire(r)
		for _, e := range plan.ChosenEdges {
			if !plan.Fired[e.From] {
				t.Fatalf("edge %s->%s chosen but %s did not fire", e.From, e.To, e.From)
			}
			if !plan.Fired[e.To] {
				t.Fatalf("edge %s->%s chosen but %s did not fire", e.From, e.To, e.To)
			}
		}
		// Every fired non-source has an incoming chosen edge.
		for name := range plan.Fired {
			if m.Task(name).Source {
				continue
			}
			found := false
			for _, e := range plan.ChosenEdges {
				if e.To == name {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("task %s fired without input", name)
			}
		}
	}
}

func TestFireExploresDisjunctionChoices(t *testing.T) {
	m := Figure1()
	r := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		plan := m.Fire(r)
		key := ""
		if plan.Fired["t2"] {
			key += "2"
		}
		if plan.Fired["t3"] {
			key += "3"
		}
		seen[key] = true
	}
	for _, want := range []string{"2", "3", "23"} {
		if !seen[want] {
			t.Errorf("choice %q never explored", want)
		}
	}
}

func TestMustExecutePairsFigure1(t *testing.T) {
	must, ok := Figure1().MustExecutePairs(16)
	if !ok {
		t.Fatal("enumeration abandoned")
	}
	// t1 always leads to t4, in every resolution.
	if !must[[2]string{"t1", "t4"}] {
		t.Error("missing t1 -> t4")
	}
	if !must[[2]string{"t4", "t1"}] {
		t.Error("missing t4 -> t1 (co-execution)")
	}
	// t1 does not always lead to t2.
	if must[[2]string{"t1", "t2"}] {
		t.Error("t1 -> t2 should not be unconditional")
	}
}

func TestMustExecutePairsGMStyle(t *testing.T) {
	must, ok := GMStyle().MustExecutePairs(16)
	if !ok {
		t.Fatal("enumeration abandoned")
	}
	// The paper's published properties: whatever mode A chooses, L
	// executes; whatever mode B chooses, M executes.
	if !must[[2]string{"A", "L"}] {
		t.Error("missing A -> L")
	}
	if !must[[2]string{"B", "M"}] {
		t.Error("missing B -> M")
	}
	// A's individual modes are not unconditional.
	if must[[2]string{"A", "D"}] || must[[2]string{"A", "E"}] {
		t.Error("A's modes should be conditional")
	}
}

func TestMustExecutePairsBudget(t *testing.T) {
	if _, ok := GMStyle().MustExecutePairs(2); ok {
		t.Error("enumeration should be abandoned under a tiny budget")
	}
}

func TestSortedMustExecute(t *testing.T) {
	must := map[[2]string]bool{{"b", "a"}: true, {"a", "b"}: true, {"a", "a"}: true}
	got := SortedMustExecute(must)
	if len(got) != 3 || got[0] != [2]string{"a", "a"} || got[2] != [2]string{"b", "a"} {
		t.Errorf("got %v", got)
	}
}

func TestRandomModelValid(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		opt := DefaultRandomOptions()
		opt.Layers = 2 + r.Intn(3)
		opt.TasksPerLayer = 1 + r.Intn(4)
		m := RandomModel(r, opt)
		if err := m.Validate(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

func TestRandomModelDegenerateOptions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := RandomModel(r, RandomOptions{})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	out := Figure1().DOT()
	for _, want := range []string{"digraph", "diamond", "doublecircle", `"t1" -> "t2"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Regular.String() != "regular" || Disjunction.String() != "disjunction" ||
		Conjunction.String() != "conjunction" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("invalid kind string")
	}
}
