package can

import (
	"fmt"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/trace"
)

// StreamConverter is the incremental form of ParseLog + LogEvents: it
// converts candump-style log lines one at a time into the trace
// layer's message edge events, so a long-running service can accept a
// live CAN feed (internal/serve multiplexes one converter per
// stream). Per-ID sequence numbering, the "0xID@seq" labeling
// convention and the non-decreasing-timestamp check all match the
// batch path exactly: feeding a whole log line by line yields the
// same events LogEvents produces.
//
// StreamConverter is not safe for concurrent use. Clone supports
// two-phase ingest: parse a batch on a clone and commit the clone
// only once the batch is accepted.
type StreamConverter struct {
	bus  *Bus
	seq  map[int]int
	last int64 // rise time of the previous frame
	has  bool  // whether any frame has been seen
	line int   // lines consumed, for error positions
}

// NewStreamConverter returns a converter for a bus at the given bit
// rate (fall edges are placed one worst-case frame duration after the
// rise, like LogEvents).
func NewStreamConverter(bitRate int64) (*StreamConverter, error) {
	bus, err := New(bitRate)
	if err != nil {
		return nil, err
	}
	return &StreamConverter{bus: bus, seq: map[int]int{}}, nil
}

// Clone returns an independent deep copy of the converter state.
func (sc *StreamConverter) Clone() *StreamConverter {
	cp := &StreamConverter{
		bus:  sc.bus, // immutable after construction
		seq:  make(map[int]int, len(sc.seq)),
		last: sc.last,
		has:  sc.has,
		line: sc.line,
	}
	for id, n := range sc.seq {
		cp.seq[id] = n
	}
	return cp
}

// Line consumes one log line and returns the frame's rise and fall
// events, or nil for blank and comment lines. Errors wrap the same
// sentinels as ParseLog and leave the converter unchanged.
func (sc *StreamConverter) Line(s string) ([]trace.Event, error) {
	sc.line++
	line := strings.TrimSpace(s)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil
	}
	rec, err := parseLogLine(line)
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", sc.line, err)
	}
	if sc.has && rec.Time < sc.last {
		return nil, fmt.Errorf("line %d: %w: %dµs after %dµs",
			sc.line, ErrNonMonotoneTimestamp, rec.Time, sc.last)
	}
	sc.last = rec.Time
	sc.has = true
	label := fmt.Sprintf("0x%03X@%d", rec.ID, sc.seq[rec.ID])
	sc.seq[rec.ID]++
	return []trace.Event{
		{Time: rec.Time, Kind: trace.MsgRise, Name: label},
		{Time: rec.Time + sc.bus.FrameDuration(rec.DLC), Kind: trace.MsgFall, Name: label},
	}, nil
}
