package latency

import (
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/model"
)

func TestIterativeMatchesClosedFormWithinPeriod(t *testing.T) {
	m := gm()
	for _, task := range m.TaskNames() {
		closed, err := TaskResponse(m, task, nil)
		if err != nil {
			t.Fatal(err)
		}
		if closed > m.Period {
			continue // only the within-period regime must coincide
		}
		iter, err := ResponseTimeIterative(m, task, nil, 4)
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if iter != closed {
			t.Errorf("%s: iterative %d != closed form %d", task, iter, closed)
		}
	}
}

func TestIterativeRespectsDependencies(t *testing.T) {
	m := gm()
	ts, _ := depfunc.NewTaskSet(m.TaskNames())
	d := depfunc.Bottom(ts)
	d.Set(ts.Index("Q"), ts.Index("O"), mustParse("<-"))
	pess, err := ResponseTimeIterative(m, "Q", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	informed, err := ResponseTimeIterative(m, "Q", d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if informed != pess-m.Task("O").WCET {
		t.Errorf("informed %d, want %d (O excluded)", informed, pess-m.Task("O").WCET)
	}
}

func TestIterativeMultiPeriodReactivation(t *testing.T) {
	// A low-priority task whose interference exceeds one period: the
	// interferers re-activate and the response time grows beyond the
	// single-activation sum.
	m := &model.Model{
		Name:   "tight",
		Period: 100,
		Tasks: []model.Task{
			{Name: "hi", Priority: 2, BCET: 60, WCET: 60, Source: true},
			{Name: "lo", Priority: 1, BCET: 50, WCET: 50, Source: true},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Closed form (single activation): 50 + 60 = 110 > period, so the
	// second activation of hi interferes too: R = 50 + 2*60 = 170.
	r, err := ResponseTimeIterative(m, "lo", nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r != 170 {
		t.Errorf("R(lo) = %d, want 170", r)
	}
}

func TestIterativeOverloadDetected(t *testing.T) {
	// hi consumes the whole period: lo's busy period never ends and
	// the iteration must diverge. (A utilization merely above 1.0 is
	// not enough: the FIRST activation can still have a finite fixed
	// point, e.g. hi=80/lo=50 converges at R=290.)
	m := &model.Model{
		Name:   "overload",
		Period: 100,
		Tasks: []model.Task{
			{Name: "hi", Priority: 2, BCET: 100, WCET: 100, Source: true},
			{Name: "lo", Priority: 1, BCET: 50, WCET: 50, Source: true},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ResponseTimeIterative(m, "lo", nil, 8); err == nil {
		t.Fatal("overloaded CPU not detected")
	} else if !strings.Contains(err.Error(), "overloaded") {
		t.Errorf("err = %v", err)
	}
}

func TestIterativeUnknownTask(t *testing.T) {
	if _, err := ResponseTimeIterative(gm(), "zz", nil, 4); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestUtilization(t *testing.T) {
	m := gm()
	u := Utilization(m)
	if len(u) != 1 {
		t.Fatalf("ECUs = %d, want 1", len(u))
	}
	var sum int64
	for _, task := range m.Tasks {
		sum += task.WCET
	}
	want := float64(sum) / float64(m.Period)
	if got := u[""]; got != want {
		t.Errorf("utilization = %f, want %f", got, want)
	}
	if want >= 1 {
		t.Fatalf("case-study model overloaded: %f", want)
	}
	// Distributed: four ECUs, each under the single-ECU figure.
	du := Utilization(model.GMStyleDistributed())
	if len(du) != 4 {
		t.Fatalf("distributed ECUs = %d", len(du))
	}
	for ecu, x := range du {
		if x >= want {
			t.Errorf("ECU %s utilization %f not below single-ECU %f", ecu, x, want)
		}
	}
}

func TestBusUtilization(t *testing.T) {
	u, err := BusUtilization(gm(), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 || u >= 1 {
		t.Errorf("bus utilization = %f, want in (0, 1)", u)
	}
	if _, err := BusUtilization(gm(), -1); err == nil {
		t.Error("negative bit rate accepted")
	}
}
