// Package sim executes a design model on the osek scheduler and can
// bus substrates, producing the timestamped bus trace a logging device
// would record (Section 2.1 of the paper): task start/end events and
// message rising/falling edges, grouped into periods.
//
// Each period the model's nondeterminism is resolved (disjunction
// nodes choose execution paths), source tasks are released by the
// period timer, every other fired task is released when all the
// messages actually sent to it this period have arrived, and tasks
// send their messages on the bus when they complete. The simulation is
// a discrete-event loop driven by the next CPU completion, bus falling
// edge, or timer release.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/blackbox-rt/modelgen/internal/can"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/osek"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Periods is the number of periods to simulate.
	Periods int
	// Seed feeds the deterministic random source used for disjunction
	// choices and execution-time jitter.
	Seed int64
	// BitRate is the CAN bus speed in bits per second (default
	// 500 kbit/s).
	BitRate int64
	// Observer, when non-nil, receives stage-"sim" pipeline events:
	// periods_simulated, messages_emitted, execs_recorded.
	Observer obs.Observer
}

// Output is the result of a simulation.
type Output struct {
	// Trace is the observable bus log, ready for the learner.
	Trace *trace.Trace
	// Execs lists every completed job with release, start and end
	// times — ground-truth scheduling data used by the latency
	// analysis experiments (not visible to the learner).
	Execs []osek.Exec
	// MessagesSent counts design messages plus infrastructure sync
	// frames.
	MessagesSent int
	// Sent records the ground-truth sender and receiver of every
	// message label (receiver "" for broadcast sync frames). This is
	// oracle data for evaluating learned models; the learner never
	// sees it.
	Sent map[string]SentMessage
}

// SentMessage is the ground truth for one message occurrence.
type SentMessage struct {
	From, To string
}

// Run simulates the model and returns the trace.
func Run(m *model.Model, opt Options) (*Output, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan(opt.Observer, obs.PhaseSimulate)
	defer sp.End()
	if opt.Periods <= 0 {
		return nil, fmt.Errorf("sim: Periods must be positive")
	}
	bitRate := opt.BitRate
	if bitRate == 0 {
		bitRate = 500_000
	}
	bus, err := can.New(bitRate)
	if err != nil {
		return nil, err
	}
	// One fixed-priority preemptive kernel per ECU.
	cpus := map[string]*osek.CPU{}
	var ecuOrder []string
	for _, t := range m.Tasks {
		if _, ok := cpus[t.ECU]; !ok {
			cpus[t.ECU] = osek.New()
			ecuOrder = append(ecuOrder, t.ECU)
		}
	}
	cpuOf := func(task string) *osek.CPU { return cpus[m.Task(task).ECU] }
	rng := rand.New(rand.NewSource(opt.Seed))

	var events []trace.Event
	out := &Output{Sent: map[string]SentMessage{}}
	msgSeq := 0

	syncEmitters := map[string]bool{}
	for _, t := range m.Tasks {
		if t.EmitsSync {
			syncEmitters[t.Name] = true
		}
	}

	for p := 0; p < opt.Periods; p++ {
		base := int64(p) * m.Period
		for _, ecu := range ecuOrder {
			if cpus[ecu].Now() > base {
				return nil, fmt.Errorf("sim: period %d overruns into period %d (ECU %q at %d, boundary %d); reduce load or enlarge the period",
					p-1, p, ecu, cpus[ecu].Now(), base)
			}
		}
		if bus.Now() > base {
			return nil, fmt.Errorf("sim: period %d overruns into period %d (bus at %d, boundary %d); reduce load or enlarge the period",
				p-1, p, bus.Now(), base)
		}
		events = append(events, trace.Event{Time: base, Kind: trace.PeriodMark})

		plan := m.Fire(rng)
		// Per-receiver expected design inputs this period.
		expect := map[string]int{}
		for _, e := range plan.ChosenEdges {
			expect[e.To]++
		}
		syncFires := false
		for name := range syncEmitters {
			if plan.Fired[name] {
				syncFires = true
			}
		}
		// Release bookkeeping.
		type state struct {
			needInputs int
			needSync   bool
			released   bool
			demand     int64
		}
		st := map[string]*state{}
		var sources []struct {
			name string
			at   int64
		}
		remaining := 0
		// Iterate in declaration order: drawing execution times from
		// the shared random source must be deterministic.
		for i := range m.Tasks {
			name := m.Tasks[i].Name
			if !plan.Fired[name] {
				continue
			}
			t := m.Task(name)
			s := &state{needInputs: expect[name], demand: execTime(rng, t)}
			if t.WaitsSync && syncFires && !t.EmitsSync {
				s.needSync = true
			}
			st[name] = s
			remaining++
			if t.Source {
				sources = append(sources, struct {
					name string
					at   int64
				}{name, base + t.Offset})
			}
		}
		// Deterministic source order: by release time, then priority.
		sortSources(sources, m)

		release := func(name string, at int64) error {
			s := st[name]
			if s.released {
				return fmt.Errorf("sim: task %q released twice in period %d", name, p)
			}
			s.released = true
			return cpuOf(name).Release(name, m.Task(name).Priority, s.demand, at)
		}

		pendingSrc := 0
		busPending := 0 // frames enqueued but not delivered

		// Event loop for this period.
		for {
			// Candidate next events.
			var next int64
			have := false
			consider := func(t int64, ok bool) {
				if ok && (!have || t < next) {
					next, have = t, true
				}
			}
			if pendingSrc < len(sources) {
				consider(sources[pendingSrc].at, true)
			}
			for _, ecu := range ecuOrder {
				consider(cpus[ecu].NextCompletion())
			}
			consider(bus.NextCompletion())
			if !have {
				break
			}
			// Fire timer releases first at this instant.
			for pendingSrc < len(sources) && sources[pendingSrc].at == next {
				src := sources[pendingSrc]
				pendingSrc++
				if err := release(src.name, src.at); err != nil {
					return nil, err
				}
			}
			var completed []osek.Exec
			for _, ecu := range ecuOrder {
				cpus[ecu].AdvanceTo(next)
				completed = append(completed, cpus[ecu].TakeCompleted()...)
			}
			bus.AdvanceTo(next)
			// Completed jobs send their messages.
			for _, ex := range completed {
				out.Execs = append(out.Execs, ex)
				events = append(events,
					trace.Event{Time: ex.Start, Kind: trace.TaskStart, Name: ex.Task},
					trace.Event{Time: ex.End, Kind: trace.TaskEnd, Name: ex.Task})
				remaining--
				for _, e := range plan.ChosenEdges {
					if e.From != ex.Task {
						continue
					}
					msgSeq++
					label := fmt.Sprintf("m%d", msgSeq)
					out.Sent[label] = SentMessage{From: e.From, To: e.To}
					if err := bus.Enqueue(can.Frame{ID: e.CANID, DLC: e.DLC, Label: label, Receiver: e.To}, ex.End); err != nil {
						return nil, err
					}
					busPending++
					out.MessagesSent++
				}
				if syncEmitters[ex.Task] {
					msgSeq++
					label := fmt.Sprintf("m%d", msgSeq)
					out.Sent[label] = SentMessage{From: ex.Task}
					if err := bus.Enqueue(can.Frame{ID: m.SyncCANID, DLC: m.SyncDLC, Label: label}, ex.End); err != nil {
						return nil, err
					}
					busPending++
					out.MessagesSent++
				}
			}
			// Delivered frames release receivers.
			for _, tx := range bus.TakeCompleted() {
				events = append(events,
					trace.Event{Time: tx.Rise, Kind: trace.MsgRise, Name: tx.Frame.Label},
					trace.Event{Time: tx.Fall, Kind: trace.MsgFall, Name: tx.Frame.Label})
				busPending--
				if tx.Frame.Receiver == "" {
					// Infrastructure sync: satisfies every waiting
					// task. Release in priority order (deterministic,
					// and what an OSEK kernel tick would do).
					for i := range m.Tasks {
						name := m.Tasks[i].Name
						s, fired := st[name]
						if !fired || !s.needSync {
							continue
						}
						s.needSync = false
						if s.needInputs == 0 && !s.released {
							if err := release(name, tx.Fall); err != nil {
								return nil, err
							}
						}
					}
					continue
				}
				s := st[tx.Frame.Receiver]
				s.needInputs--
				if s.needInputs == 0 && !s.needSync && !s.released {
					if err := release(tx.Frame.Receiver, tx.Fall); err != nil {
						return nil, err
					}
				}
			}
			if remaining == 0 && busPending == 0 && pendingSrc == len(sources) {
				break
			}
		}
		if remaining != 0 || busPending != 0 {
			return nil, fmt.Errorf("sim: period %d deadlocked with %d unfinished tasks and %d undelivered frames",
				p, remaining, busPending)
		}
	}

	tr, err := trace.FromEvents(m.TaskNames(), events)
	if err != nil {
		return nil, fmt.Errorf("sim: assembling trace: %w", err)
	}
	out.Trace = tr
	if opt.Observer != nil {
		opt.Observer.OnPipeline(obs.Pipeline{Stage: "sim", Name: "periods_simulated", Value: int64(opt.Periods)})
		opt.Observer.OnPipeline(obs.Pipeline{Stage: "sim", Name: "messages_emitted", Value: int64(out.MessagesSent)})
		opt.Observer.OnPipeline(obs.Pipeline{Stage: "sim", Name: "execs_recorded", Value: int64(len(out.Execs))})
	}
	return out, nil
}

func execTime(rng *rand.Rand, t *model.Task) int64 {
	if t.WCET == t.BCET {
		return t.BCET
	}
	return t.BCET + rng.Int63n(t.WCET-t.BCET+1)
}

func sortSources(srcs []struct {
	name string
	at   int64
}, m *model.Model) {
	for i := 1; i < len(srcs); i++ {
		for j := i; j > 0; j-- {
			a, b := srcs[j-1], srcs[j]
			swap := false
			if b.at < a.at {
				swap = true
			} else if b.at == a.at && m.Task(b.name).Priority > m.Task(a.name).Priority {
				swap = true
			}
			if !swap {
				break
			}
			srcs[j-1], srcs[j] = srcs[j], srcs[j-1]
		}
	}
}
