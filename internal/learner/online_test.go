package learner

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// TestOnlineEqualsBatch: feeding periods incrementally produces the
// same hypothesis set as the batch Learn, for exact and bounded
// variants, on the paper example and random traces.
func TestOnlineEqualsBatch(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	traces := []*trace.Trace{trace.PaperFigure2()}
	for i := 0; i < 10; i++ {
		traces = append(traces, randomTrace(r, 3+r.Intn(3), 2+r.Intn(4), 3))
	}
	for ti, tr := range traces {
		for _, bound := range []int{0, 1, 4} {
			opt := Options{Bound: bound}
			batch, err := Learn(tr, opt)
			if err != nil {
				t.Fatalf("trace %d bound %d: batch: %v", ti, bound, err)
			}
			o, err := NewOnline(tr.Tasks, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range tr.Periods {
				if err := o.AddPeriod(p); err != nil {
					t.Fatalf("trace %d bound %d: online: %v", ti, bound, err)
				}
			}
			res, err := o.Result()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Hypotheses) != len(batch.Hypotheses) {
				t.Fatalf("trace %d bound %d: online %d vs batch %d hypotheses",
					ti, bound, len(res.Hypotheses), len(batch.Hypotheses))
			}
			for i := range res.Hypotheses {
				if !res.Hypotheses[i].Equal(batch.Hypotheses[i]) {
					t.Errorf("trace %d bound %d: hypothesis %d differs", ti, bound, i)
				}
			}
		}
	}
}

// TestOnlineIntermediateResults: results can be read out after every
// period; the set after the first period of the paper example is the
// paper's {d21, d22, d23}.
func TestOnlineIntermediateResults(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	mid, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Hypotheses) != 3 {
		t.Fatalf("after period 1: %d hypotheses, want 3", len(mid.Hypotheses))
	}
	if !containsDep(mid.Hypotheses, paperD21) || !containsDep(mid.Hypotheses, paperD22) ||
		!containsDep(mid.Hypotheses, paperD23) {
		t.Error("intermediate set is not {d21, d22, d23}")
	}
	// Continue the session; the final result matches the paper.
	if err := o.AddPeriod(tr.Periods[1]); err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[2]); err != nil {
		t.Fatal(err)
	}
	final, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Hypotheses) != 5 {
		t.Fatalf("final: %d hypotheses, want 5", len(final.Hypotheses))
	}
	if !final.LUB.Equal(paperDLUB) {
		t.Errorf("final LUB:\n%s", final.LUB.Table())
	}
}

// TestOnlineSnapshotIsolation: a snapshot taken mid-stream is not
// mutated by later periods.
func TestOnlineSnapshotIsolation(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	mid, _ := o.Result()
	before := make([]string, len(mid.Hypotheses))
	for i, d := range mid.Hypotheses {
		before[i] = d.Key()
	}
	if err := o.AddPeriod(tr.Periods[1]); err != nil {
		t.Fatal(err)
	}
	for i, d := range mid.Hypotheses {
		if d.Key() != before[i] {
			t.Fatal("snapshot mutated by later AddPeriod")
		}
	}
}

// TestOnlineStickyError: once a period cannot be explained the session
// is dead and stays dead.
func TestOnlineStickyError(t *testing.T) {
	bad := trace.NewBuilder([]string{"a", "b"}).
		StartPeriod().Msg("m", 0, 1).Exec("a", 2, 3).Exec("b", 4, 5).
		MustBuild()
	good := trace.PaperFigure2()

	o, err := NewOnline([]string{"a", "b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddPeriod(bad.Periods[0]); !errors.Is(err, ErrNoHypothesis) {
		t.Fatalf("err = %v, want ErrNoHypothesis", err)
	}
	if o.Err() == nil {
		t.Fatal("Err() not sticky")
	}
	if err := o.AddPeriod(good.Periods[0]); err == nil {
		t.Fatal("dead session accepted a period")
	}
	if _, err := o.Result(); err == nil {
		t.Fatal("dead session returned a result")
	}
}

func TestOnlineBadTaskSet(t *testing.T) {
	if _, err := NewOnline([]string{"a", "a"}, Options{}); err == nil {
		t.Fatal("duplicate task names accepted")
	}
}

func TestOnlineAccessors(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := NewOnline(tr.Tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.TaskSet().Len() != 4 {
		t.Error("TaskSet wrong")
	}
	if o.WorkingSetSize() != 1 {
		t.Errorf("initial working set = %d, want 1 (d-bottom)", o.WorkingSetSize())
	}
	if err := o.AddPeriod(tr.Periods[0]); err != nil {
		t.Fatal(err)
	}
	if o.Stats().Periods != 1 || o.Stats().Messages != 2 {
		t.Errorf("stats = %+v", o.Stats())
	}
	if o.WorkingSetSize() != 3 {
		t.Errorf("working set = %d, want 3", o.WorkingSetSize())
	}
}

// TestOnlineEmptySession: a session with no periods returns d-bottom.
func TestOnlineEmptySession(t *testing.T) {
	o, err := NewOnline([]string{"x", "y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Hypotheses[0].Equal(depfunc.Bottom(res.TaskSet)) {
		t.Error("empty session should yield d-bottom")
	}
}
