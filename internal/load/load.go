// Package load is the SLO-tracked load generator behind cmd/bbload:
// it drives N synthetic streams of text and candump traffic against a
// bbserved instance — live over HTTP or in-process through its
// handler — on an open-loop schedule, measures client-observed ingest
// latency, throughput, shed rate and availability per stream class,
// and evaluates the result against declarative thresholds so CI can
// gate on "the service still meets its SLOs under this load".
//
// Open loop means each stream fires batches on a fixed schedule
// derived from the target aggregate rate, regardless of how fast the
// server answers; responses are awaited on their own goroutines
// (bounded by a concurrency cap), so a slowing server faces mounting
// concurrent work rather than a politely backing-off client. That is
// the load shape the paper's setting implies: a CAN bus does not slow
// down because the logger is busy.
package load

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Class names a synthetic traffic shape.
type Class string

const (
	// ClassText streams text-format task/message directives with
	// explicit period cuts.
	ClassText Class = "text"
	// ClassCandump streams raw candump frames interleaved with text
	// task events on a period grid — the mixed-format ingest path.
	ClassCandump Class = "candump"
)

// Thresholds are the pass/fail criteria of a run. Zero values disable
// the corresponding check.
type Thresholds struct {
	// P99LatencySeconds bounds the client-observed p99 ingest request
	// latency, per class and overall.
	P99LatencySeconds float64
	// MaxShedRate bounds shed requests / total requests.
	MaxShedRate float64
	// MinAvailability bounds successful (non-5xx, non-transport-error)
	// requests / total requests from below.
	MinAvailability float64
}

// DefaultThresholds are the bbserved serving objectives seen from the
// client: p99 under 500 ms, at most 1% shed, 99.9% availability.
func DefaultThresholds() Thresholds {
	return Thresholds{P99LatencySeconds: 0.5, MaxShedRate: 0.01, MinAvailability: 0.999}
}

// Config configures a run.
type Config struct {
	// BaseURL targets a live server ("http://host:port"). Leave empty
	// and set Handler to drive an in-process server.
	BaseURL string
	// Handler is the in-process target when BaseURL is empty.
	Handler http.Handler
	// Streams is the number of concurrent synthetic streams.
	Streams int
	// CandumpFraction is the fraction of streams in ClassCandump
	// (default 0.5).
	CandumpFraction float64
	// Duration is how long to generate load.
	Duration time.Duration
	// Rate is the target aggregate batch rate per second across all
	// streams (default 2 per stream).
	Rate float64
	// PeriodsPerBatch is the learnable periods each batch carries
	// (default 3).
	PeriodsPerBatch int
	// TraceSample sends a W3C traceparent header on this fraction of
	// batches, forcing server-side trace recording for them.
	TraceSample float64
	// SLO holds the thresholds evaluated into Report.Violations.
	SLO Thresholds
	// Cleanup deletes the synthetic streams after the run (default
	// keeps them; bbload's in-process mode shuts the server down
	// instead).
	Cleanup bool
	// MaxInFlight caps concurrent outstanding requests (default
	// 4×Streams, at least 64). When the cap is hit the open-loop
	// schedule stalls, which shows up as latency, not as lost sends.
	MaxInFlight int
	// DriftFlipAfter, when positive, turns the run into a
	// drift-injection scenario: every stream is created with the drift
	// monitor enabled, batches are sent synchronously (the detector's
	// failure signal is sequential, so sends must not reorder), and
	// once a stream has generated this many periods its traffic shape
	// flips — the message and the receiving task disappear. After the
	// run each stream's /drift state is collected into Report.Drift
	// and evaluated: the flip must be detected within DriftWindow
	// periods of the true change point, with no false alarms.
	DriftFlipAfter int
	// DriftWindow bounds the detection lag in periods (default 20).
	DriftWindow int
}

// ClassReport aggregates one stream class (or the total).
type ClassReport struct {
	Class    string  `json:"class"`
	Streams  int     `json:"streams"`
	Requests int64   `json:"requests"`
	Shed     int64   `json:"shed"`
	Errors   int64   `json:"errors"`
	Lines    int64   `json:"lines"`
	Periods  int64   `json:"periods"`
	P50      float64 `json:"p50_seconds"`
	P95      float64 `json:"p95_seconds"`
	P99      float64 `json:"p99_seconds"`
	// Throughput is accepted requests per second.
	Throughput float64 `json:"throughput_rps"`
	// ShedRate is shed/requests; Availability is 1 − errors/requests.
	ShedRate     float64 `json:"shed_rate"`
	Availability float64 `json:"availability"`
}

// DriftStream is one stream's detection outcome in a drift-injection
// run.
type DriftStream struct {
	ID string `json:"id"`
	// Expected is the true change point: the first flipped period the
	// server accepted.
	Expected int `json:"expected_change_point"`
	// ChangePoint/AlarmPeriod/Alarms/Generation mirror the stream's
	// /drift state after the run.
	ChangePoint int `json:"change_point"`
	AlarmPeriod int `json:"alarm_period"`
	Alarms      int `json:"alarms"`
	Generation  int `json:"generation"`
	// Detected: exactly one alarm, pointing at the true change point
	// (within a small slack), within the window. FalseAlarm: extra
	// alarms or an alarm at the wrong place.
	Detected   bool `json:"detected"`
	FalseAlarm bool `json:"false_alarm"`
}

// DriftReport aggregates the drift-injection outcome.
type DriftReport struct {
	FlipAfter   int           `json:"flip_after"`
	Window      int           `json:"window"`
	Streams     int           `json:"streams"`
	Detected    int           `json:"detected"`
	Undetected  int           `json:"undetected"`
	FalseAlarms int           `json:"false_alarms"`
	MaxLag      int           `json:"max_lag_periods"`
	Entries     []DriftStream `json:"entries"`
}

// Report is the outcome of a run.
type Report struct {
	Duration   time.Duration `json:"duration_ns"`
	Classes    []ClassReport `json:"classes"`
	Total      ClassReport   `json:"total"`
	Drift      *DriftReport  `json:"drift,omitempty"`
	Violations []string      `json:"violations,omitempty"`
}

// Violated reports whether any SLO threshold was breached.
func (r Report) Violated() bool { return len(r.Violations) > 0 }

// Format renders the human-readable report bbload prints.
func (r Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bbload report (%s)\n", r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-8s %8s %9s %6s %6s %9s %9s %9s %10s %7s\n",
		"class", "streams", "requests", "shed", "errors", "p50", "p95", "p99", "rps", "avail")
	row := func(c ClassReport) {
		fmt.Fprintf(&sb, "%-8s %8d %9d %6d %6d %9s %9s %9s %10.1f %6.2f%%\n",
			c.Class, c.Streams, c.Requests, c.Shed, c.Errors,
			fmtSec(c.P50), fmtSec(c.P95), fmtSec(c.P99), c.Throughput, c.Availability*100)
	}
	for _, c := range r.Classes {
		row(c)
	}
	row(r.Total)
	if d := r.Drift; d != nil {
		fmt.Fprintf(&sb, "drift: flip@%d window=%d streams=%d detected=%d undetected=%d false=%d max_lag=%d\n",
			d.FlipAfter, d.Window, d.Streams, d.Detected, d.Undetected, d.FalseAlarms, d.MaxLag)
	}
	if len(r.Violations) == 0 {
		sb.WriteString("SLO: ok\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "SLO VIOLATION: %s\n", v)
		}
	}
	return sb.String()
}

func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// classStats is the shared accumulator of one class.
type classStats struct {
	mu       sync.Mutex
	streams  int
	requests int64
	shed     int64
	errors   int64
	lines    int64
	periods  int64
	samples  []float64 // seconds, accepted requests only
}

// Run executes the load profile and returns the report. The context
// cancels the run early (the partial report is still returned).
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.PeriodsPerBatch <= 0 {
		cfg.PeriodsPerBatch = 3
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 2 * float64(cfg.Streams)
	}
	if cfg.CandumpFraction < 0 || cfg.CandumpFraction > 1 {
		return Report{}, fmt.Errorf("load: candump fraction %g out of [0,1]", cfg.CandumpFraction)
	}
	if cfg.CandumpFraction == 0 {
		cfg.CandumpFraction = 0.5
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * cfg.Streams
		if cfg.MaxInFlight < 64 {
			cfg.MaxInFlight = 64
		}
	}
	if cfg.DriftWindow <= 0 {
		cfg.DriftWindow = 20
	}
	client, err := newTarget(cfg)
	if err != nil {
		return Report{}, err
	}

	nCan := int(float64(cfg.Streams) * cfg.CandumpFraction)
	stats := map[Class]*classStats{
		ClassText:    {streams: cfg.Streams - nCan},
		ClassCandump: {streams: nCan},
	}
	workers := make([]*worker, 0, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		class := ClassText
		if i < nCan {
			class = ClassCandump
		}
		w := &worker{
			id:     fmt.Sprintf("load-%s-%d", class, i),
			class:  class,
			cfg:    &cfg,
			client: client,
			stats:  stats[class],
			rng:    rand.New(rand.NewSource(int64(i) + 1)),
		}
		if err := w.createStream(ctx); err != nil {
			return Report{}, fmt.Errorf("load: create stream %s: %w", w.id, err)
		}
		workers = append(workers, w)
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg, inflight sync.WaitGroup
	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(runCtx, start, cfg.Rate/float64(cfg.Streams), sem, &inflight)
		}(w)
	}
	wg.Wait()
	// The schedules have stopped, but sends spawned near the deadline
	// may still be in flight (runCtx cancellation aborts them quickly);
	// the stats are read-safe only once they are done.
	inflight.Wait()
	elapsed := time.Since(start)

	rep := buildReport(cfg, elapsed, stats)
	if cfg.DriftFlipAfter > 0 {
		// Collected under the caller's context: runCtx has expired.
		rep.Drift = collectDrift(ctx, cfg, workers)
		rep.Violations = append(rep.Violations, evaluateDrift(rep.Drift)...)
	}
	if cfg.Cleanup {
		for _, w := range workers {
			w.deleteStream(ctx)
		}
	}
	return rep, nil
}

// collectDrift queries every stream's /drift state and scores the
// detection against the worker's recorded flip point.
func collectDrift(ctx context.Context, cfg Config, workers []*worker) *DriftReport {
	dr := &DriftReport{FlipAfter: cfg.DriftFlipAfter, Window: cfg.DriftWindow, Streams: len(workers)}
	// The change-point estimate sits on a period boundary the server
	// and client may count one apart (candump grid flushes); allow a
	// small slack before calling an alarm misplaced.
	const slack = 2
	for _, w := range workers {
		st, err := w.driftState(ctx)
		if err != nil {
			dr.Undetected++
			dr.Entries = append(dr.Entries, DriftStream{ID: w.id, Expected: w.flipPoint()})
			continue
		}
		e := DriftStream{
			ID:          w.id,
			Expected:    w.flipPoint(),
			ChangePoint: st.LastChangePoint,
			AlarmPeriod: st.LastAlarmPeriod,
			Alarms:      st.Alarms,
			Generation:  st.Generation,
		}
		lag := e.AlarmPeriod - e.ChangePoint
		onPoint := e.ChangePoint >= e.Expected-slack && e.ChangePoint <= e.Expected+slack
		switch {
		case e.Alarms == 0:
			dr.Undetected++
		case e.Alarms == 1 && onPoint:
			// A slow detection is still a detection; the MaxLag check
			// reports it separately.
			e.Detected = true
			dr.Detected++
			if lag > dr.MaxLag {
				dr.MaxLag = lag
			}
		default:
			e.FalseAlarm = true
			dr.FalseAlarms++
		}
		dr.Entries = append(dr.Entries, e)
	}
	return dr
}

// evaluateDrift turns a drift report into SLO-style violations: every
// injected flip must be caught, in the window, with no false alarms.
func evaluateDrift(dr *DriftReport) []string {
	var out []string
	if dr.Undetected > 0 {
		out = append(out, fmt.Sprintf("drift: %d of %d injected flips undetected", dr.Undetected, dr.Streams))
	}
	if dr.FalseAlarms > 0 {
		out = append(out, fmt.Sprintf("drift: %d streams with false or misplaced alarms", dr.FalseAlarms))
	}
	if dr.MaxLag > dr.Window {
		out = append(out, fmt.Sprintf("drift: max detection lag %d periods over window %d", dr.MaxLag, dr.Window))
	}
	return out
}

func buildReport(cfg Config, elapsed time.Duration, stats map[Class]*classStats) Report {
	rep := Report{Duration: elapsed}
	total := ClassReport{Class: "total", Streams: cfg.Streams}
	var allSamples []float64
	for _, class := range []Class{ClassText, ClassCandump} {
		st := stats[class]
		if st.streams == 0 {
			continue
		}
		c := summarize(string(class), st, elapsed)
		allSamples = append(allSamples, st.samples...)
		total.Requests += c.Requests
		total.Shed += c.Shed
		total.Errors += c.Errors
		total.Lines += c.Lines
		total.Periods += c.Periods
		rep.Classes = append(rep.Classes, c)
	}
	sort.Float64s(allSamples)
	total.P50, total.P95, total.P99 = quantiles(allSamples)
	if sec := elapsed.Seconds(); sec > 0 {
		total.Throughput = float64(total.Requests-total.Shed-total.Errors) / sec
	}
	if total.Requests > 0 {
		total.ShedRate = float64(total.Shed) / float64(total.Requests)
		total.Availability = 1 - float64(total.Errors)/float64(total.Requests)
	} else {
		total.Availability = 1
	}
	rep.Total = total
	rep.Violations = evaluate(cfg.SLO, rep)
	return rep
}

func summarize(name string, st *classStats, elapsed time.Duration) ClassReport {
	c := ClassReport{
		Class: name, Streams: st.streams,
		Requests: st.requests, Shed: st.shed, Errors: st.errors,
		Lines: st.lines, Periods: st.periods,
	}
	sort.Float64s(st.samples)
	c.P50, c.P95, c.P99 = quantiles(st.samples)
	if sec := elapsed.Seconds(); sec > 0 {
		c.Throughput = float64(c.Requests-c.Shed-c.Errors) / sec
	}
	if c.Requests > 0 {
		c.ShedRate = float64(c.Shed) / float64(c.Requests)
		c.Availability = 1 - float64(c.Errors)/float64(c.Requests)
	} else {
		c.Availability = 1
	}
	return c
}

func quantiles(sorted []float64) (p50, p95, p99 float64) {
	q := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return q(0.50), q(0.95), q(0.99)
}

// evaluate turns threshold breaches into violation strings. Per-class
// p99 is checked alongside the total so a bad class cannot hide
// inside a healthy aggregate.
func evaluate(slo Thresholds, rep Report) []string {
	var out []string
	check := func(c ClassReport) {
		if slo.P99LatencySeconds > 0 && c.P99 > slo.P99LatencySeconds {
			out = append(out, fmt.Sprintf("%s: p99 %s over threshold %s",
				c.Class, fmtSec(c.P99), fmtSec(slo.P99LatencySeconds)))
		}
		if slo.MaxShedRate > 0 && c.Requests > 0 && c.ShedRate > slo.MaxShedRate {
			out = append(out, fmt.Sprintf("%s: shed rate %.3f over threshold %.3f",
				c.Class, c.ShedRate, slo.MaxShedRate))
		}
		if slo.MinAvailability > 0 && c.Requests > 0 && c.Availability < slo.MinAvailability {
			out = append(out, fmt.Sprintf("%s: availability %.4f under threshold %.4f",
				c.Class, c.Availability, slo.MinAvailability))
		}
	}
	for _, c := range rep.Classes {
		check(c)
	}
	check(rep.Total)
	return out
}
