// Package hypothesis implements the learner's working hypotheses: a
// dependency function together with the sender/receiver assumptions
// made for the messages of the period currently being analyzed
// (Section 3.1 of Feng et al., DATE 2007).
package hypothesis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// Hypothesis is one element of the learner's current set D_cur: a
// dependency function plus the (sender, receiver) pairs assumed for
// the messages analyzed so far in the current period. The model of
// computation allows at most one message per ordered pair per period,
// so an assumed pair must not be assumed again until the period ends.
type Hypothesis struct {
	// D is embedded by value: a hypothesis and its dependency-function
	// header are one object, so the fan-out's per-child cost is a
	// single (pooled) header instead of two heap allocations. Callers
	// that need a *depfunc.DepFunc take &h.D; the copy-on-write buffer
	// rules are unchanged.
	D depfunc.DepFunc

	// asm is the assumption set as a persistent cons list, newest pair
	// first, duplicate-free (Assume refuses an already-assumed pair).
	// Children extend their parent's list by one shared cell instead
	// of copying a map — the list is immutable, so sharing is safe and
	// fan-out costs O(1) per child. The set stays small (assumptions
	// about dead pairs are forgotten every message), so the linear
	// membership scan beats a map's per-child copy by a wide margin.
	asm    *assumeNode
	acount int
	weight int

	// afp is the Zobrist fingerprint of the assumption set: the XOR
	// of Pair.Fingerprint over the assumed pairs, maintained
	// incrementally (XOR is self-inverse, so adding and removing a
	// pair are the same operation). Combined with the dependency
	// function's own fingerprint it gives the engine an O(1),
	// allocation-free dedup key where Key() built an O(t²) string.
	afp uint64

	// Provenance chain (see EnableProvenance): a persistent singly
	// linked list of the generalization steps that produced D, newest
	// first. Children share their parent's suffix, so recording is
	// O(changed entries) per step and O(1) extra work when cloning.
	prov   *provNode
	provOn bool

	// dnext chains hypotheses with colliding fingerprints inside a
	// Dedup set. Only the Dedup that most recently inserted h ever
	// traverses it (Insert always rewrites the link), so the field can
	// ride along in the header instead of forcing the dedup map to
	// allocate per-bucket slices.
	dnext *Hypothesis
}

// assumeNode is one cell of the persistent assumption list.
type assumeNode struct {
	p    depfunc.Pair
	prev *assumeNode
}

// Step is one recorded generalization step of a hypothesis: the
// entry (I,J) that changed, its lattice transition Old→New, and the
// cause. Action is "assume" (message generalization; S,R is the
// candidate pair and Msg/MsgID locate the message), "relax"
// (end-of-period conditional test; Msg is -1) or "merge" (bounded
// least-upper-bound merge raised the entry by joining in the lighter
// operand that was folded away).
type Step struct {
	Period int
	Msg    int // message index within the period; -1 for end-of-period steps
	MsgID  string
	S, R   int // assumed (sender, receiver) pair; -1 when not applicable
	I, J   int // the dependency entry that changed
	Old    lattice.Value
	New    lattice.Value
	Action string
}

// StepCtx locates a generalization step in the run: the period, the
// message index within it (-1 at period end) and the message ID. It
// is threaded through Assume/Relax/Merge so recorded steps can name
// their cause; with provenance disabled it is ignored.
type StepCtx struct {
	Period int
	Msg    int
	MsgID  string

	// Arena, when non-nil, supplies the assumption cons cells that
	// Assume and Merge would otherwise heap-allocate. The engine hands
	// each fan-out worker its own arena and resets them at the period
	// boundary (when every assumption list is cleared anyway); the nil
	// zero value falls back to plain allocation, so casual callers and
	// tests need not care.
	Arena *Arena
}

// provNode is one cons cell of the persistent provenance chain.
type provNode struct {
	step Step
	prev *provNode
}

// Format renders the step for humans, resolving task indices against
// ts:
//
//	period 2 msg 4 (m5): assume t1->t4: d(t1,t4): || => ->
//	period 2 end: relax: d(t1,t4): -> => ->?
func (s Step) Format(ts *depfunc.TaskSet) string {
	entry := fmt.Sprintf("d(%s,%s): %s => %s", ts.Name(s.I), ts.Name(s.J), s.Old, s.New)
	switch s.Action {
	case "assume":
		return fmt.Sprintf("period %d msg %d (%s): assume %s->%s: %s",
			s.Period, s.Msg, s.MsgID, ts.Name(s.S), ts.Name(s.R), entry)
	case "relax":
		return fmt.Sprintf("period %d end: relax: %s", s.Period, entry)
	case "merge":
		return fmt.Sprintf("period %d msg %d: merge: %s", s.Period, s.Msg, entry)
	default:
		return fmt.Sprintf("period %d: %s: %s", s.Period, s.Action, entry)
	}
}

// Bottom returns the globally most specific hypothesis d⊥ with no
// assumptions.
func Bottom(ts *depfunc.TaskSet) *Hypothesis {
	return &Hypothesis{D: *depfunc.Bottom(ts)}
}

// FromDepFunc wraps an existing dependency function (cloned) in a
// hypothesis with no assumptions.
func FromDepFunc(d *depfunc.DepFunc) *Hypothesis {
	h := &Hypothesis{weight: d.Weight()}
	d.CloneInto(&h.D)
	return h
}

// Weight returns the cached Definition-8 weight of the hypothesis.
func (h *Hypothesis) Weight() int { return h.weight }

// Fingerprint returns the 64-bit fingerprint of the hypothesis state
// (dependency function plus assumption set), the O(1) counterpart of
// Key. Unequal fingerprints prove unequal states; equal fingerprints
// must be confirmed with SameState before unifying (64-bit collisions
// exist in principle).
func (h *Hypothesis) Fingerprint() uint64 { return h.D.Fingerprint() ^ h.afp }

// SameState reports whether two hypotheses have identical dependency
// functions and identical assumption sets — the equality that
// Fingerprint approximates and the engine's dedup sites confirm on a
// fingerprint hit.
func (h *Hypothesis) SameState(other *Hypothesis) bool {
	if h.acount != other.acount || !h.D.Equal(&other.D) {
		return false
	}
	// Equal sizes and no duplicates: h ⊆ other suffices.
	for n := h.asm; n != nil; n = n.prev {
		if !other.Assumed(n.p) {
			return false
		}
	}
	return true
}

// EnableProvenance switches on step recording for h and every
// hypothesis derived from it. Recording costs one small allocation
// per changed entry; the default-off path allocates nothing.
func (h *Hypothesis) EnableProvenance() { h.provOn = true }

// ProvenanceEnabled reports whether the hypothesis records steps.
func (h *Hypothesis) ProvenanceEnabled() bool { return h.provOn }

// Provenance materializes the recorded derivation chain, oldest step
// first. It is nil when recording is disabled or nothing changed.
func (h *Hypothesis) Provenance() []Step {
	n := 0
	for p := h.prov; p != nil; p = p.prev {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]Step, n)
	for p := h.prov; p != nil; p = p.prev {
		n--
		out[n] = p.step
	}
	return out
}

// Assumed reports whether the ordered pair has already been assumed
// for a message in the current period.
func (h *Hypothesis) Assumed(p depfunc.Pair) bool {
	for n := h.asm; n != nil; n = n.prev {
		if n.p == p {
			return true
		}
	}
	return false
}

// AssumptionCount returns the number of pairs assumed this period.
func (h *Hypothesis) AssumptionCount() int { return h.acount }

// Release returns the hypothesis's matrix buffer to the arena and the
// header itself to the package pool. The depfunc.Release aliasing
// rules apply: only release hypotheses with no live alias (in
// particular none held by a dedup map, a worklist or an escaped
// result). A second Release on the same header is a no-op: the
// embedded matrix reports whether it actually held a buffer, which
// guards the pool against double puts.
func (h *Hypothesis) Release() {
	if !h.D.Release() {
		return
	}
	*h = Hypothesis{}
	hypPool.Put(h)
}

// Assume returns a new hypothesis extending h with the assumption that
// the current message was sent on pair p, generalizing the dependency
// function minimally: the forward entry (s,r) is joined with fwd and
// the backward entry (r,s) with bwd. The stamp values are chosen by
// the caller (→/→? and ←/←? depending on execution history). It
// returns nil if p was already assumed this period (condition 3 of the
// generalization step). h is unchanged. ctx locates the message for
// provenance recording and is ignored when recording is off.
//
// The child shares h's matrix copy-on-write and extends the
// assumption list by one cell, so a child whose joins change nothing
// costs two small allocations and no matrix copy.
func (h *Hypothesis) Assume(p depfunc.Pair, fwd, bwd lattice.Value, ctx StepCtx) *Hypothesis {
	if h.Assumed(p) {
		return nil
	}
	child := hypPool.Get().(*Hypothesis)
	*child = Hypothesis{
		asm:    ctx.Arena.node(p, h.asm),
		acount: h.acount + 1,
		weight: h.weight,
		afp:    h.afp ^ p.Fingerprint(),
		prov:   h.prov,
		provOn: h.provOn,
	}
	h.D.ShareInto(&child.D)
	child.joinEntry(p, p.S, p.R, fwd, ctx)
	child.joinEntry(p, p.R, p.S, bwd, ctx)
	return child
}

func (h *Hypothesis) joinEntry(p depfunc.Pair, i, j int, v lattice.Value, ctx StepCtx) {
	old := h.D.At(i, j)
	if h.D.JoinAt(i, j, v) {
		nw := h.D.At(i, j)
		h.weight += lattice.Distance(nw) - lattice.Distance(old)
		if h.provOn {
			h.prov = &provNode{step: Step{
				Period: ctx.Period, Msg: ctx.Msg, MsgID: ctx.MsgID,
				S: p.S, R: p.R, I: i, J: j, Old: old, New: nw, Action: "assume",
			}, prev: h.prov}
		}
	}
}

// ClearAssumptions drops the per-period assumption set (the first step
// of the paper's end-of-period post-processing).
func (h *Hypothesis) ClearAssumptions() {
	h.asm = nil
	h.acount = 0
	h.afp = 0
}

// RetainAssumptions drops every assumed pair for which keep returns
// false. The learner uses this to forget assumptions about pairs that
// cannot occur in any remaining message's candidate set this period:
// the at-most-one-message-per-pair rule can never consult them again,
// so forgetting them preserves exactness while letting hypotheses that
// differ only in dead assumptions deduplicate.
func (h *Hypothesis) RetainAssumptions(keep func(depfunc.Pair) bool, ar *Arena) {
	// The common case keeps everything; detect it before rebuilding
	// (the list may be shared with relatives, so dropping a pair
	// rebuilds the kept cells rather than splicing in place).
	drop := false
	for n := h.asm; n != nil; n = n.prev {
		if !keep(n.p) {
			drop = true
			break
		}
	}
	if !drop {
		return
	}
	var kept *assumeNode
	count := 0
	for n := h.asm; n != nil; n = n.prev {
		if keep(n.p) {
			kept = ar.node(n.p, kept)
			count++
		} else {
			h.afp ^= n.p.Fingerprint()
		}
	}
	h.asm = kept
	h.acount = count
}

// Relax applies the end-of-period conditional-dependency test: every
// unconditional entry (→, ←, ↔) whose implication is violated by the
// period's executed-task set is generalized minimally to its
// conditional counterpart. It returns the number of relaxed entries.
// ctx supplies the period for provenance recording (Msg is forced to
// -1: relaxation is an end-of-period step).
func (h *Hypothesis) Relax(executed func(task int) bool, ctx StepCtx) int {
	var n int
	if h.provOn {
		n = h.D.RelaxViolationsFunc(executed, func(i, j int, old, new lattice.Value) {
			h.prov = &provNode{step: Step{
				Period: ctx.Period, Msg: -1, S: -1, R: -1,
				I: i, J: j, Old: old, New: new, Action: "relax",
			}, prev: h.prov}
		})
	} else {
		n = h.D.RelaxViolations(executed)
	}
	if n > 0 {
		h.weight = h.D.Weight()
	}
	return n
}

// Merge returns the least-upper-bound merge of h and other used by the
// bounded heuristic: the dependency functions are joined pointwise and
// the assumption sets intersected. Intersection (rather than union)
// keeps the merge sound: a pair assumed by only one lineage must stay
// assumable, since the other lineage's branches may still need it for
// a later message; re-assuming a pair can only repeat a join, never
// under-generalize. Both operands are unchanged.
//
// Provenance: the merged hypothesis continues the receiver's chain
// (the heuristic merges the two lightest hypotheses as a.Merge(b), so
// the base lineage is the lighter operand) and records one "merge"
// step per entry the join raised above the receiver's value. The
// folded-away operand's own history is not retained — the chain
// explains the surviving table, not every dead branch.
func (h *Hypothesis) Merge(other *Hypothesis, ctx StepCtx) *Hypothesis {
	// Share h's matrix copy-on-write; the join only materializes a
	// copy if other actually raises an entry.
	var asm *assumeNode
	var afp uint64
	count := 0
	for n := h.asm; n != nil; n = n.prev {
		if other.Assumed(n.p) {
			asm = ctx.Arena.node(n.p, asm)
			count++
			afp ^= n.p.Fingerprint()
		}
	}
	m := hypPool.Get().(*Hypothesis)
	*m = Hypothesis{asm: asm, acount: count, afp: afp, prov: h.prov, provOn: h.provOn || other.provOn}
	h.D.ShareInto(&m.D)
	m.D.JoinWith(&other.D)
	m.weight = m.D.Weight()
	if m.provOn {
		n := m.D.N()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				old, nw := h.D.At(i, j), m.D.At(i, j)
				if old != nw {
					m.prov = &provNode{step: Step{
						Period: ctx.Period, Msg: ctx.Msg, MsgID: ctx.MsgID,
						S: -1, R: -1, I: i, J: j, Old: old, New: nw, Action: "merge",
					}, prev: m.prov}
				}
			}
		}
	}
	return m
}

// Clone returns a deep copy of the dependency function (the immutable
// assumption list and provenance chain are shared).
func (h *Hypothesis) Clone() *Hypothesis {
	nh := &Hypothesis{asm: h.asm, acount: h.acount, weight: h.weight, afp: h.afp, prov: h.prov, provOn: h.provOn}
	h.D.CloneInto(&nh.D)
	return nh
}

// Key returns a canonical encoding of the dependency function together
// with the assumption set, used to deduplicate hypotheses that would
// behave identically for the remainder of the period.
func (h *Hypothesis) Key() string {
	if h.acount == 0 {
		return h.D.Key()
	}
	pairs := make([]depfunc.Pair, 0, h.acount)
	for n := h.asm; n != nil; n = n.prev {
		pairs = append(pairs, n.p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].S != pairs[b].S {
			return pairs[a].S < pairs[b].S
		}
		return pairs[a].R < pairs[b].R
	})
	var sb strings.Builder
	sb.WriteString(h.D.Key())
	for _, p := range pairs {
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(p.S))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(p.R))
	}
	return sb.String()
}
