package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/conformance"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// shutdownServer drains a server and fails the test on error.
func shutdownServer(t *testing.T, sv *Server) {
	t.Helper()
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// debugStreams fetches and decodes /debug/streams.
func debugStreams(t *testing.T, c *client) []StreamDebug {
	t.Helper()
	resp, body := c.do("GET", "/debug/streams", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/streams: %d %s", resp.StatusCode, body)
	}
	var dbg DebugStreamsResponse
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	return dbg.Streams
}

// TestRestartWithoutCheckpointIsLossless is the tentpole durability
// guarantee: every learned period is WAL-durable the moment ingest is
// acknowledged as consumed, so a server that shuts down WITHOUT any
// checkpoint request restores the identical model purely from the
// write-ahead log.
func TestRestartWithoutCheckpointIsLossless(t *testing.T) {
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)

	tr := trace.PaperFigure2()
	tables, lub := batchTables(t, tr, learner.Options{})
	c.createStream(CreateStreamRequest{ID: "walonly", Tasks: tr.Tasks})
	c.feed("walonly", tr.String()+"period\n")
	waitLearned(t, c, "walonly", len(tr.Periods))

	// No checkpoint POST anywhere; drain and restart.
	shutdownServer(t, sv)
	ts.Close()

	sv2 := New(Config{CheckpointDir: dir})
	if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)
	assertModelEquals(t, c2.model("walonly"), tables, lub)
	if st := c2.stats("walonly"); st.PeriodsLearned != len(tr.Periods) {
		t.Fatalf("restored periods = %d, want %d", st.PeriodsLearned, len(tr.Periods))
	}
}

// TestLazyHydrationOnlyTouchedStreams pins the restart-cost contract:
// RestoreFromDir registers every stored stream cold, and only the
// streams actually ingested or queried afterwards hydrate.
func TestLazyHydrationOnlyTouchedStreams(t *testing.T) {
	const nStreams, nActive = 12, 3
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s%03d", i)
		c.createStream(CreateStreamRequest{ID: id, Tasks: []string{"t1", "t2"}})
		c.feed(id, learnableFeed(0, 2))
		waitLearned(t, c, id, 2)
	}
	shutdownServer(t, sv)
	ts.Close()

	reg := obs.NewRegistry()
	sv2 := New(Config{CheckpointDir: dir, Registry: reg})
	if n, err := sv2.RestoreFromDir(); err != nil || n != nStreams {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)

	for _, d := range debugStreams(t, c2) {
		if d.Hydrated {
			t.Fatalf("stream %s hydrated right after restore", d.ID)
		}
		if d.LastPeriod != 2 || d.WALRecords == 0 {
			t.Fatalf("cold debug view = %+v", d)
		}
	}

	// Touch a subset: one by ingest, the rest by queries.
	c2.feed("s000", learnableFeed(2000, 1))
	waitLearned(t, c2, "s000", 3)
	c2.model("s001")
	c2.stats("s002") // stats query hydrates too (read-your-writes path)

	hydrated := map[string]bool{}
	for _, d := range debugStreams(t, c2) {
		if d.Hydrated {
			hydrated[d.ID] = true
		}
	}
	for _, id := range []string{"s000", "s001", "s002"} {
		if !hydrated[id] {
			t.Errorf("touched stream %s not hydrated", id)
		}
	}
	if len(hydrated) != nActive {
		t.Errorf("%d streams hydrated, want %d: %v", len(hydrated), nActive, hydrated)
	}
	if m := reg.Snapshot()[obs.MetricStoreHydrations]; m.Value != nActive {
		t.Errorf("%s = %d, want %d", obs.MetricStoreHydrations, m.Value, nActive)
	}
	// The ingested stream continued from its durable state.
	if st := c2.stats("s000"); st.PeriodsLearned != 3 {
		t.Errorf("s000 periods = %d, want 3", st.PeriodsLearned)
	}
}

// TestRestoreQuarantinesCorruptState: a corrupt store stream and an
// undecodable legacy checkpoint file are moved to <dir>/quarantine/
// and counted, while every healthy stream restores and serves.
func TestRestoreQuarantinesCorruptState(t *testing.T) {
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)
	tr := trace.PaperFigure2()
	tables, lub := batchTables(t, tr, learner.Options{})
	for _, id := range []string{"good", "bad"} {
		c.createStream(CreateStreamRequest{ID: id, Tasks: tr.Tasks})
		c.feed(id, tr.String()+"period\n")
		waitLearned(t, c, id, len(tr.Periods))
	}
	shutdownServer(t, sv)
	ts.Close()

	// Corrupt one stream's manifest and drop an undecodable legacy
	// checkpoint next to the store directories.
	if err := os.WriteFile(filepath.Join(dir, "bad", "manifest.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sv2 := New(Config{CheckpointDir: dir, Registry: reg})
	n, err := sv2.RestoreFromDir()
	if err != nil {
		t.Fatalf("restore must not hard-fail on corrupt state: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d streams, want 1", n)
	}
	if m := reg.Snapshot()["serve_restore_quarantined_total"]; m.Value != 2 {
		t.Errorf("serve_restore_quarantined_total = %d, want 2", m.Value)
	}
	for _, name := range []string{"bad", "junk.json"} {
		if _, err := os.Stat(filepath.Join(dir, "quarantine", name)); err != nil {
			t.Errorf("quarantined %s missing: %v", name, err)
		}
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)
	assertModelEquals(t, c2.model("good"), tables, lub)
	if resp, _ := c2.do("GET", "/v1/streams/bad/model", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("quarantined stream answers %d, want 404", resp.StatusCode)
	}
}

// TestLegacyCheckpointMigration: a pre-store one-file-per-stream
// checkpoint is folded into the store on restore and hydrates
// bit-identically through the WAL path.
func TestLegacyCheckpointMigration(t *testing.T) {
	tr := trace.PaperFigure2()
	o, err := learner.NewOnline(tr.Tasks, learner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tables, lub := batchTables(t, tr, learner.Options{})

	dir := t.TempDir()
	cf := checkpointFile{ServeVersion: serveVersion,
		Info: StreamInfo{ID: "legacy", Tasks: tr.Tasks}, Snapshot: snap}
	b, err := json.Marshal(&cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "legacy.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	sv := New(Config{CheckpointDir: dir})
	if n, err := sv.RestoreFromDir(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "legacy.json")); !os.IsNotExist(err) {
		t.Errorf("legacy file still at the root after migration (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "legacy", "manifest.json")); err != nil {
		t.Errorf("migrated stream has no manifest: %v", err)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	assertModelEquals(t, c.model("legacy"), tables, lub)

	// The migrated stream keeps learning and persisting via the WAL:
	// a second restart without checkpoints still restores everything.
	c.feed("legacy", "exec t1 100000 100100\nmsg m1 100150 100200\nexec t2 100400 100500\nperiod\n")
	waitLearned(t, c, "legacy", len(tr.Periods)+1)
	shutdownServer(t, sv)
	ts.Close()

	sv2 := New(Config{CheckpointDir: dir})
	if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
		t.Fatalf("second restore: n=%d err=%v", n, err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	if st := newClient(t, ts2).stats("legacy"); st.PeriodsLearned != len(tr.Periods)+1 {
		t.Fatalf("periods after migration+wal restart = %d, want %d", st.PeriodsLearned, len(tr.Periods)+1)
	}
}

// TestDriftForkSurvivesRestartWithoutCheckpoint: a generation fork is
// itself a WAL record, so a crash-style restart right after a change
// point restores the forked learner and the monitor mid-flight —
// bit-identical drift state, no checkpoint anywhere.
func TestDriftForkSurvivesRestartWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "fork", Tasks: []string{"t1", "t2"}, Drift: driftEnabled()})

	const flipAt = 20
	c.feed("fork", driftFeed(0, flipAt))
	waitLearned(t, c, "fork", flipAt)
	c.feed("fork", flipFeed(flipAt, 8)) // enough to alarm and fork
	waitLearned(t, c, "fork", flipAt+8)

	dr, before := c.drift("fork")
	if dr.State.Alarms != 1 || dr.State.Generation != 2 {
		t.Fatalf("pre-restart state = %+v", dr.State)
	}
	shutdownServer(t, sv)
	ts.Close()

	sv2 := New(Config{CheckpointDir: dir})
	if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)
	if _, after := c2.drift("fork"); string(after) != string(before) {
		t.Fatalf("drift state changed across WAL-only restart:\n%s\nvs\n%s", before, after)
	}
	// The restored generation-2 learner keeps converging on the new
	// regime exactly as the original would.
	c2.feed("fork", flipFeed(flipAt+8, 10))
	waitLearned(t, c2, "fork", flipAt+18)
	if dr, _ := c2.drift("fork"); dr.State.Generation != 2 || dr.State.Alarms != 1 {
		t.Fatalf("post-restart continuation = %+v", dr.State)
	}
}

// TestCompactEndpoint: POST /v1/streams/{id}/compact folds the WAL
// into a fresh base on demand and the debug surface tracks it.
func TestCompactEndpoint(t *testing.T) {
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "cmp", Tasks: []string{"t1", "t2"}})
	c.feed("cmp", learnableFeed(0, 5))
	waitLearned(t, c, "cmp", 5)

	if d := debugStreams(t, c)[0]; d.WALRecords != 5 || d.LastCompaction != "" {
		t.Fatalf("pre-compact debug = %+v", d)
	}
	resp, body := c.do("POST", "/v1/streams/cmp/compact", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d %s", resp.StatusCode, body)
	}
	var cr CompactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Periods != 5 || cr.WALRecords != 0 {
		t.Fatalf("compact response = %+v", cr)
	}
	if _, err := os.Stat(cr.Path); err != nil {
		t.Fatalf("compacted base %s: %v", cr.Path, err)
	}
	if d := debugStreams(t, c)[0]; d.WALRecords != 0 || d.LastCompaction == "" || d.CheckpointAgeSeconds <= 0 {
		t.Fatalf("post-compact debug = %+v", d)
	}
	// On a store-less server the endpoint is a 409, like checkpoint.
	svNone := New(Config{})
	tsNone := httptest.NewServer(svNone.Handler())
	defer tsNone.Close()
	cNone := newClient(t, tsNone)
	cNone.createStream(CreateStreamRequest{ID: "cmp", Tasks: []string{"t1", "t2"}})
	if resp, _ := cNone.do("POST", "/v1/streams/cmp/compact", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("compact without store: %d, want 409", resp.StatusCode)
	}
}

// TestServeTornWALTailRecovers: serve-level crash recovery. Bytes
// flipped in the WAL's final frame lose exactly that period — the
// intact prefix hydrates and the stream keeps learning from there.
func TestServeTornWALTailRecovers(t *testing.T) {
	const n = 6
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)
	c.createStream(CreateStreamRequest{ID: "torn", Tasks: []string{"t1", "t2"}})
	c.feed("torn", learnableFeed(0, n))
	waitLearned(t, c, "torn", n)
	shutdownServer(t, sv)
	ts.Close()

	walPath := filepath.Join(dir, "torn", "wal-1.log")
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF // corrupt the last frame's tail
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	sv2 := New(Config{CheckpointDir: dir})
	if nr, err := sv2.RestoreFromDir(); err != nil || nr != 1 {
		t.Fatalf("restore: n=%d err=%v", nr, err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)
	if st := c2.stats("torn"); st.PeriodsLearned != n-1 {
		t.Fatalf("periods after torn tail = %d, want %d", st.PeriodsLearned, n-1)
	}
	// Re-feeding the lost period (the documented client contract)
	// lands the stream exactly where it was.
	c2.feed("torn", learnableFeed(int64(n-1)*1000, 1))
	waitLearned(t, c2, "torn", n)
	if d := debugStreams(t, c2)[0]; d.WALRecords != n {
		t.Fatalf("wal records after refeed = %d, want %d", d.WALRecords, n)
	}
}

// TestCorpusWALRestartEquivalence is the acceptance criterion for the
// WAL path: for every golden-corpus entry, feeding half the trace,
// restarting with NO checkpoint, and feeding the rest yields exactly
// the model of an uninterrupted batch run — the strict variant of
// TestCorpusCheckpointRestart where durability comes from the period
// log alone.
func TestCorpusWALRestartEquivalence(t *testing.T) {
	corpus, err := conformance.LoadCorpus("../../testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corpus.Entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			opt := LearnOptions{
				Bound:          8,
				SenderWindow:   e.SenderWindow,
				ReceiverWindow: e.ReceiverWindow,
				MaxSenders:     e.MaxSenders,
				MaxReceivers:   e.MaxReceivers,
			}
			tables, lub := batchTables(t, e.Trace, opt.options())

			dir := t.TempDir()
			sv := New(Config{CheckpointDir: dir})
			ts := httptest.NewServer(sv.Handler())
			c := newClient(t, ts)
			c.createStream(CreateStreamRequest{ID: e.Name, Tasks: e.Trace.Tasks, Options: opt})

			lines := strings.Split(strings.TrimRight(e.Trace.String(), "\n"), "\n")
			lines = append(lines, "period")
			half := len(lines) / 2
			c.feed(e.Name, strings.Join(lines[:half], "\n"))
			var replayFrom int
			if st := c.stats(e.Name); st.Partial {
				replayFrom = lastPeriodStart(lines[:half])
			} else {
				replayFrom = half
			}
			// No checkpoint POST: drain so queued periods hit the WAL,
			// then drop the process state.
			shutdownServer(t, sv)
			ts.Close()

			sv2 := New(Config{CheckpointDir: dir})
			if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
				t.Fatalf("restore: n=%d err=%v", n, err)
			}
			ts2 := httptest.NewServer(sv2.Handler())
			defer ts2.Close()
			c2 := newClient(t, ts2)
			c2.feed(e.Name, strings.Join(lines[replayFrom:], "\n"))
			assertModelEquals(t, c2.model(e.Name), tables, lub)
		})
	}
}
