package conformance

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Violation is one observed breach of a checked property. A nil or
// empty slice from an oracle means the property held on its inputs.
type Violation struct {
	// Property names the specific law or invariant that broke, e.g.
	// "thm2/live-hypothesis" or "lattice/join-commutative".
	Property string `json:"property"`
	// Detail is a human-readable account of the breach, with enough
	// context (period, values, keys) to reproduce it.
	Detail string `json:"detail"`
}

func violationf(property, format string, args ...interface{}) Violation {
	return Violation{Property: property, Detail: fmt.Sprintf(format, args...)}
}

// ErrOracleSkipped is wrapped by oracles that cannot run on the given
// input (e.g. the exact algorithm exceeds its hypothesis budget); the
// runner reports such entries as skipped rather than failed.
var ErrOracleSkipped = errors.New("conformance: oracle not applicable to this input")

// maxTruthChoiceBits bounds the disjunction enumeration of
// TruthFromModel for corpus generation; 18 bits ≈ 256k resolutions.
const maxTruthChoiceBits = 18

// Thm2Soundness checks Theorem 2 on a trace with known ground truth:
// running the exact algorithm period by period, after every processed
// period at least one live hypothesis h must satisfy h ⊑ d_true — the
// true dependency function always generalizes part of the version
// space, so the learner can never have generalized past the truth.
//
// maxHyp caps the exact working set; exceeding it returns a wrapped
// ErrOracleSkipped (the trace is too ambiguous for the exact mode, not
// wrong). Any other learner failure on a ground-truth trace is itself
// a violation: the corpus respects the model of computation.
func Thm2Soundness(tr *trace.Trace, truth *depfunc.DepFunc, pol depfunc.CandidatePolicy, maxHyp int) ([]Violation, error) {
	o, err := learner.NewOnline(tr.Tasks, learner.Options{Policy: pol, MaxHypotheses: maxHyp})
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			if errors.Is(err, learner.ErrTooManyHypotheses) {
				return nil, fmt.Errorf("%w: %v", ErrOracleSkipped, err)
			}
			out = append(out, violationf("thm2/learner-failure",
				"exact learner failed on a ground-truth trace at period %d: %v", p.Index, err))
			return out, nil
		}
		r, err := o.Result()
		if err != nil {
			out = append(out, violationf("thm2/learner-failure",
				"snapshot after period %d failed: %v", p.Index, err))
			return out, nil
		}
		if !someGeneralizedBy(r.Hypotheses, truth) {
			out = append(out, violationf("thm2/live-hypothesis",
				"after period %d none of the %d live hypotheses is generalized by the true dependency function (lightest live: w=%d, truth: w=%d)",
				p.Index, len(r.Hypotheses), r.Hypotheses[0].Weight(), truth.Weight()))
		}
	}
	return out, nil
}

func someGeneralizedBy(hs []*depfunc.DepFunc, truth *depfunc.DepFunc) bool {
	for _, h := range hs {
		if h.Leq(truth) {
			return true
		}
	}
	return false
}

// BoundMonotonicity checks the bounded-heuristic structure against
// the exact run. For every configured bound b:
//
//   - envelope soundness: the heuristic's recommended answer (the LUB
//     of its final set) must stay ⊑ the exact LUB — merging commits
//     to joins of specific explanation branches, so the bounded
//     result can under-claim relative to the full version space but
//     must never invent knowledge outside its envelope. This is an
//     empirical regression pin on the curated corpus, not a universal
//     theorem: the exact result is pruned to its most-specific
//     frontier, and fuzzing found degenerate traces where that
//     frontier's LUB is smaller than a merged bounded hypothesis.
//     (The reverse containment does not hold at intermediate bounds
//     either: a converged merged line can settle on a different
//     explanation than the exact frontier, see examples/convergence.)
//   - the hypothesis cap is enforced (≤ b final hypotheses);
//   - every bounded hypothesis still matches the full trace. Like the
//     envelope, this is a corpus pin rather than a universal law: a
//     mid-period merge splices two explanation lineages, and on
//     degenerate traces the joined function can admit no distinct-pair
//     assignment (the case Options.VerifyResults filters).
//
// At bound 1 it additionally checks the paper's Lemma (DESIGN.md E3):
// a converged bound-1 run returns exactly LUB(exact). It also
// spot-checks the merge weight law w(a ⊔ b) ≥ max(w(a), w(b)) over
// deterministic random matrix pairs, since a merge that loses weight
// would break the worklist's weight-ordered invariant.
func BoundMonotonicity(tr *trace.Trace, bounds []int, pol depfunc.CandidatePolicy, maxHyp int) ([]Violation, error) {
	exact, err := learner.Learn(tr, learner.Options{Policy: pol, MaxHypotheses: maxHyp})
	if errors.Is(err, learner.ErrTooManyHypotheses) {
		return nil, fmt.Errorf("%w: %v", ErrOracleSkipped, err)
	}
	if err != nil {
		return nil, err
	}
	var out []Violation
	if one, err := learner.Learn(tr, learner.Options{Bound: 1, Policy: pol}); err == nil &&
		one.Converged && len(one.Hypotheses) == 1 && !one.Hypotheses[0].Equal(exact.LUB) {
		out = append(out, violationf("bound/lemma-bound1",
			"converged bound-1 result %q differs from exact LUB %q", one.Hypotheses[0].Key(), exact.LUB.Key()))
	}
	for _, b := range bounds {
		if b <= 0 {
			continue
		}
		br, err := learner.Learn(tr, learner.Options{Bound: b, Policy: pol})
		if err != nil {
			out = append(out, violationf("bound/learner-failure",
				"bounded run b=%d failed where the exact run succeeded: %v", b, err))
			continue
		}
		if !br.LUB.Leq(exact.LUB) {
			out = append(out, violationf("bound/lub-within-exact-envelope",
				"bound %d: bounded LUB %q is not ⊑ exact LUB %q", b, br.LUB.Key(), exact.LUB.Key()))
		}
		if len(br.Hypotheses) > b {
			out = append(out, violationf("bound/hypothesis-cap",
				"bound %d: run returned %d hypotheses", b, len(br.Hypotheses)))
		}
		for i, d := range br.Hypotheses {
			if ok, p := depfunc.MatchTrace(d, tr, pol); !ok {
				out = append(out, violationf("bound/hypothesis-matches-trace",
					"bound %d: hypothesis %d (%q) fails to match period %d", b, i, d.Key(), p))
			}
		}
	}
	out = append(out, mergeWeightLaw()...)
	return out, nil
}

// mergeWeightLaw samples random dependency-function pairs and checks
// that the pointwise join never weighs less than either operand, and
// that both operands are ⊑ the join (the definition of an upper
// bound). The sample is deterministic so corpus runs are reproducible.
func mergeWeightLaw() []Violation {
	rng := rand.New(rand.NewSource(0x5eed))
	ts := depfunc.MustTaskSet("a", "b", "c", "d")
	vals := lattice.Values()
	var out []Violation
	for iter := 0; iter < 200; iter++ {
		x, y := depfunc.Bottom(ts), depfunc.Bottom(ts)
		for i := 0; i < ts.Len(); i++ {
			for j := 0; j < ts.Len(); j++ {
				if i == j {
					continue
				}
				x.Set(i, j, vals[rng.Intn(len(vals))])
				y.Set(i, j, vals[rng.Intn(len(vals))])
			}
		}
		m := x.Join(y)
		if m.Weight() < x.Weight() || m.Weight() < y.Weight() {
			out = append(out, violationf("bound/merge-weight-monotone",
				"w(x⊔y)=%d < max(w(x)=%d, w(y)=%d) for x=%q y=%q",
				m.Weight(), x.Weight(), y.Weight(), x.Key(), y.Key()))
		}
		if !x.Leq(m) || !y.Leq(m) {
			out = append(out, violationf("bound/merge-upper-bound",
				"x⊔y is not an upper bound of its operands: x=%q y=%q join=%q",
				x.Key(), y.Key(), m.Key()))
		}
	}
	return out
}

// LatticeLaws exhaustively checks the seven-value lattice of Figure 3:
// the algebraic laws of join and meet, their agreement with an
// independent Leq-based recomputation, and the weight metric.
func LatticeLaws() []Violation {
	return LatticeLawsWith(lattice.Join, lattice.Meet)
}

// LatticeLawsWith is LatticeLaws over injectable join and meet
// implementations; Smoke uses it to prove the oracle catches a broken
// lattice entry.
func LatticeLawsWith(join, meet func(a, b lattice.Value) lattice.Value) []Violation {
	var out []Violation
	vals := lattice.Values()
	// Independent least-upper-bound recomputation from the order alone.
	leastUpper := func(a, b lattice.Value) (lattice.Value, bool) {
		best, found := lattice.Value(0), false
		for _, c := range vals {
			if !lattice.Leq(a, c) || !lattice.Leq(b, c) {
				continue
			}
			if !found || lattice.Leq(c, best) {
				best, found = c, true
			}
		}
		return best, found
	}
	greatestLower := func(a, b lattice.Value) (lattice.Value, bool) {
		best, found := lattice.Value(0), false
		for _, c := range vals {
			if !lattice.Leq(c, a) || !lattice.Leq(c, b) {
				continue
			}
			if !found || lattice.Leq(best, c) {
				best, found = c, true
			}
		}
		return best, found
	}
	wantDistance := map[int]bool{0: true, 1: true, 4: true, 9: true}
	for _, a := range vals {
		if d := lattice.Distance(a); !wantDistance[d] {
			out = append(out, violationf("lattice/distance-figure3",
				"Distance(%v) = %d, want one of {0,1,4,9}", a, d))
		}
		if lattice.Distance(a) != lattice.Level(a)*lattice.Level(a) {
			out = append(out, violationf("lattice/distance-is-squared-level",
				"Distance(%v) = %d but Level² = %d", a, lattice.Distance(a), lattice.Level(a)*lattice.Level(a)))
		}
		if join(a, a) != a {
			out = append(out, violationf("lattice/join-idempotent", "%v ⊔ %v = %v", a, a, join(a, a)))
		}
		if meet(a, a) != a {
			out = append(out, violationf("lattice/meet-idempotent", "%v ⊓ %v = %v", a, a, meet(a, a)))
		}
		for _, b := range vals {
			if join(a, b) != join(b, a) {
				out = append(out, violationf("lattice/join-commutative",
					"%v ⊔ %v = %v but %v ⊔ %v = %v", a, b, join(a, b), b, a, join(b, a)))
			}
			if meet(a, b) != meet(b, a) {
				out = append(out, violationf("lattice/meet-commutative",
					"%v ⊓ %v = %v but %v ⊓ %v = %v", a, b, meet(a, b), b, a, meet(b, a)))
			}
			if want, ok := leastUpper(a, b); !ok || join(a, b) != want {
				out = append(out, violationf("lattice/join-is-least-upper-bound",
					"%v ⊔ %v = %v, independent recomputation wants %v", a, b, join(a, b), want))
			}
			if want, ok := greatestLower(a, b); !ok || meet(a, b) != want {
				out = append(out, violationf("lattice/meet-is-greatest-lower-bound",
					"%v ⊓ %v = %v, independent recomputation wants %v", a, b, meet(a, b), want))
			}
			// Absorption ties join and meet together.
			if join(a, meet(a, b)) != a || meet(a, join(a, b)) != a {
				out = append(out, violationf("lattice/absorption",
					"absorption fails for (%v, %v)", a, b))
			}
			// The weight metric must be strictly monotone on the order.
			if lattice.Lt(a, b) && lattice.Distance(a) >= lattice.Distance(b) {
				out = append(out, violationf("lattice/distance-strictly-monotone",
					"%v ⊏ %v but Distance %d ≥ %d", a, b, lattice.Distance(a), lattice.Distance(b)))
			}
			// Reverse is an order isomorphism and an involution.
			if lattice.Reverse(lattice.Reverse(a)) != a {
				out = append(out, violationf("lattice/reverse-involution",
					"Reverse(Reverse(%v)) = %v", a, lattice.Reverse(lattice.Reverse(a))))
			}
			if lattice.Leq(a, b) != lattice.Leq(lattice.Reverse(a), lattice.Reverse(b)) {
				out = append(out, violationf("lattice/reverse-order-isomorphism",
					"Leq(%v,%v) disagrees with Leq(Reverse,Reverse)", a, b))
			}
			for _, c := range vals {
				if join(join(a, b), c) != join(a, join(b, c)) {
					out = append(out, violationf("lattice/join-associative",
						"(%v⊔%v)⊔%v ≠ %v⊔(%v⊔%v)", a, b, c, a, b, c))
				}
				if meet(meet(a, b), c) != meet(a, meet(b, c)) {
					out = append(out, violationf("lattice/meet-associative",
						"(%v⊓%v)⊓%v ≠ %v⊓(%v⊓%v)", a, b, c, a, b, c))
				}
			}
		}
	}
	return out
}

// FingerprintKeyAgreement drives deterministic random mutation walks
// over dependency functions and checks that the three identity
// mechanisms — canonical Key strings, Equal, and the incrementally
// maintained Zobrist fingerprint — never disagree: Key equality ⇔
// Equal, Key equality ⇒ fingerprint equality, and the incremental
// fingerprint always matches a from-scratch rebuild of the same
// matrix.
func FingerprintKeyAgreement() []Violation {
	rng := rand.New(rand.NewSource(0xf1d0))
	ts := depfunc.MustTaskSet("p", "q", "r", "s", "t")
	vals := lattice.Values()
	var out []Violation
	var pool []*depfunc.DepFunc
	for walk := 0; walk < 40; walk++ {
		d := depfunc.Bottom(ts)
		steps := 1 + rng.Intn(30)
		for s := 0; s < steps; s++ {
			i, j := rng.Intn(ts.Len()), rng.Intn(ts.Len())
			if i == j {
				continue
			}
			v := vals[rng.Intn(len(vals))]
			if rng.Intn(2) == 0 {
				d.Set(i, j, v)
			} else {
				d.JoinAt(i, j, v)
			}
		}
		if rb := rebuild(d); rb.Fingerprint() != d.Fingerprint() {
			out = append(out, violationf("fingerprint/incremental-drift",
				"incremental fingerprint %016x differs from from-scratch rebuild %016x for %q",
				d.Fingerprint(), rb.Fingerprint(), d.Key()))
		}
		pool = append(pool, d)
	}
	for i, a := range pool {
		for _, b := range pool[i:] {
			keyEq, eq, fpEq := a.Key() == b.Key(), a.Equal(b), a.Fingerprint() == b.Fingerprint()
			if keyEq != eq {
				out = append(out, violationf("fingerprint/key-equal-agreement",
					"Key equality %v but Equal %v for %q vs %q", keyEq, eq, a.Key(), b.Key()))
			}
			if keyEq && !fpEq {
				out = append(out, violationf("fingerprint/key-implies-fingerprint",
					"equal Keys %q with fingerprints %016x vs %016x", a.Key(), a.Fingerprint(), b.Fingerprint()))
			}
			if !fpEq && eq {
				out = append(out, violationf("fingerprint/equal-implies-fingerprint",
					"Equal functions with fingerprints %016x vs %016x (%q)", a.Fingerprint(), b.Fingerprint(), a.Key()))
			}
		}
	}
	return out
}

// rebuild reconstructs d entry by entry on a fresh Bottom, forcing a
// from-scratch fingerprint computation through the public API.
func rebuild(d *depfunc.DepFunc) *depfunc.DepFunc {
	out := depfunc.Bottom(d.TaskSet())
	d.Entries(func(i, j int, v lattice.Value) { out.Set(i, j, v) })
	return out
}
