// Package lattice implements the seven-value dependency lattice V of
// Feng et al., "Automatic Model Generation for Black Box Real-Time
// Systems" (DATE 2007), Figure 3.
//
// The values describe the relation between an ordered pair of tasks
// (t1, t2) within one execution period of a periodic real-time system:
//
//	‖    (Par)      t1 always executes in parallel with t2 — no
//	                observed dependency in either direction.
//	→    (Fwd)      if t1 executes in a period it always determines
//	                the execution of t2.
//	←    (Bwd)      if t1 executes in a period it always depends on
//	                the execution of t2.
//	↔    (Bi)       t1 and t2 depend on/determine each other.
//	→?   (FwdMaybe) t1 may or may not determine t2.
//	←?   (BwdMaybe) t1 may or may not depend on t2.
//	↔?   (BiMaybe)  t1 and t2 may or may not depend on/determine
//	                each other (top of the lattice).
//
// The partial order is "more specific than": v1 ⊑ v2 means v1 makes a
// stronger claim than v2. Par is the bottom (most specific), BiMaybe
// the top (least specific). The Hasse diagram is
//
//	    ↔?
//	  / |  \
//	→?  ↔  ←?
//	|  / \  |
//	→ ·   · ←
//	 \     /
//	  \   /
//	    ‖
//
// with covers ‖⋖→, ‖⋖←, →⋖→?, →⋖↔, ←⋖←?, ←⋖↔, →?⋖↔?, ↔⋖↔?, ←?⋖↔?.
// Every pair of values has a unique least upper bound (Join) and a
// unique greatest lower bound (Meet); this is verified at package
// initialization.
package lattice

import "fmt"

// Value is one of the seven dependency values of the lattice V.
type Value uint8

// The seven dependency values, ordered by lattice level and then by
// direction. The zero value is Par, the lattice bottom, so that
// zero-initialized dependency matrices start maximally specific.
const (
	Par      Value = iota // ‖  : no dependency observed
	Fwd                   // →  : determines
	Bwd                   // ←  : depends on
	Bi                    // ↔  : mutual (defined for completeness)
	FwdMaybe              // →? : may determine
	BwdMaybe              // ←? : may depend on
	BiMaybe               // ↔? : may mutually depend (top)

	numValues = 7
)

// Bottom and Top are the lattice extrema.
const (
	Bottom = Par
	Top    = BiMaybe
)

// covers lists the covering relation of the Hasse diagram: covers[i]
// holds the values that immediately cover value i.
var covers = [numValues][]Value{
	Par:      {Fwd, Bwd},
	Fwd:      {FwdMaybe, Bi},
	Bwd:      {BwdMaybe, Bi},
	Bi:       {BiMaybe},
	FwdMaybe: {BiMaybe},
	BwdMaybe: {BiMaybe},
	BiMaybe:  {},
}

var (
	leqTable  [numValues][numValues]bool
	joinTable [numValues][numValues]Value
	meetTable [numValues][numValues]Value
)

func init() {
	// Reflexive-transitive closure of the covering relation.
	for v := Value(0); v < numValues; v++ {
		leqTable[v][v] = true
	}
	for changed := true; changed; {
		changed = false
		for a := Value(0); a < numValues; a++ {
			for b := Value(0); b < numValues; b++ {
				if !leqTable[a][b] {
					continue
				}
				for _, c := range covers[b] {
					if !leqTable[a][c] {
						leqTable[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	// Joins and meets by brute force, verifying uniqueness so that a
	// mistake in the covering relation cannot silently produce a
	// non-lattice order.
	for a := Value(0); a < numValues; a++ {
		for b := Value(0); b < numValues; b++ {
			joinTable[a][b] = leastUpper(a, b)
			meetTable[a][b] = greatestLower(a, b)
		}
	}
}

func leastUpper(a, b Value) Value {
	var ubs []Value
	for c := Value(0); c < numValues; c++ {
		if leqTable[a][c] && leqTable[b][c] {
			ubs = append(ubs, c)
		}
	}
	least := findExtremum(ubs, func(x, y Value) bool { return leqTable[x][y] })
	if least == nil {
		panic(fmt.Sprintf("lattice: no unique least upper bound for %v, %v", a, b))
	}
	return *least
}

func greatestLower(a, b Value) Value {
	var lbs []Value
	for c := Value(0); c < numValues; c++ {
		if leqTable[c][a] && leqTable[c][b] {
			lbs = append(lbs, c)
		}
	}
	greatest := findExtremum(lbs, func(x, y Value) bool { return leqTable[y][x] })
	if greatest == nil {
		panic(fmt.Sprintf("lattice: no unique greatest lower bound for %v, %v", a, b))
	}
	return *greatest
}

// findExtremum returns the unique element e of set with before(e, x)
// for every x in set, or nil if no such element exists.
func findExtremum(set []Value, before func(x, y Value) bool) *Value {
	for _, cand := range set {
		ok := true
		for _, other := range set {
			if !before(cand, other) {
				ok = false
				break
			}
		}
		if ok {
			return &cand
		}
	}
	return nil
}

// Leq reports whether a is more specific than or equal to b (a ⊑ b).
func Leq(a, b Value) bool { return leqTable[a][b] }

// Lt reports whether a is strictly more specific than b.
func Lt(a, b Value) bool { return a != b && leqTable[a][b] }

// Comparable reports whether a and b are related by the partial order.
func Comparable(a, b Value) bool { return leqTable[a][b] || leqTable[b][a] }

// Join returns the least upper bound a ⊔ b.
func Join(a, b Value) Value { return joinTable[a][b] }

// Meet returns the greatest lower bound a ⊓ b.
func Meet(a, b Value) Value { return meetTable[a][b] }

// Reverse returns the value describing the same relation viewed from
// the opposite side of the task pair: Reverse(d(t1,t2)) is the value a
// fresh observation of the same message would install at (t2,t1).
func Reverse(v Value) Value {
	switch v {
	case Fwd:
		return Bwd
	case Bwd:
		return Fwd
	case FwdMaybe:
		return BwdMaybe
	case BwdMaybe:
		return FwdMaybe
	default: // Par, Bi, BiMaybe are symmetric
		return v
	}
}

// Distance is the weight function of Definition 7: the square distance
// from v to the lattice bottom ‖. It is 0 for ‖, 1 for → and ←, 4 for
// →?, ↔ and ←?, and 9 for ↔?.
func Distance(v Value) int {
	switch v {
	case Par:
		return 0
	case Fwd, Bwd:
		return 1
	case FwdMaybe, Bi, BwdMaybe:
		return 4
	case BiMaybe:
		return 9
	default:
		panic(fmt.Sprintf("lattice: invalid value %d", uint8(v)))
	}
}

// Level returns the height of v in the lattice: 0 for ‖, 1 for → and
// ←, 2 for →?, ↔ and ←?, and 3 for ↔?.
func Level(v Value) int {
	switch v {
	case Par:
		return 0
	case Fwd, Bwd:
		return 1
	case FwdMaybe, Bi, BwdMaybe:
		return 2
	case BiMaybe:
		return 3
	default:
		panic(fmt.Sprintf("lattice: invalid value %d", uint8(v)))
	}
}

// HasExecConstraint reports whether v constrains task execution within
// a period: the unconditional values →, ← and ↔ all require that
// whenever the first task of the pair executes, the second executes
// too. The conditional values →?, ←?, ↔? and the bottom ‖ impose no
// execution constraint.
func HasExecConstraint(v Value) bool { return v == Fwd || v == Bwd || v == Bi }

// Relax returns the minimal generalization of v that removes its
// execution constraint: → becomes →?, ← becomes ←?, ↔ becomes ↔?.
// Values without an execution constraint are returned unchanged.
func Relax(v Value) Value {
	switch v {
	case Fwd:
		return FwdMaybe
	case Bwd:
		return BwdMaybe
	case Bi:
		return BiMaybe
	default:
		return v
	}
}

// AllowsOutgoingMessage reports whether a hypothesis holding value v at
// (s, r) is consistent with a message sent from s to r in some period,
// i.e. whether → ⊑ v.
func AllowsOutgoingMessage(v Value) bool { return leqTable[Fwd][v] }

// AllowsIncomingMessage reports whether a hypothesis holding value v at
// (r, s) is consistent with a message received by r from s, i.e.
// whether ← ⊑ v.
func AllowsIncomingMessage(v Value) bool { return leqTable[Bwd][v] }

// IsMaybe reports whether v is one of the conditional values →?, ←?,
// ↔?.
func IsMaybe(v Value) bool { return v == FwdMaybe || v == BwdMaybe || v == BiMaybe }

// Valid reports whether v is one of the seven lattice values.
func Valid(v Value) bool { return v < numValues }

// Values returns all seven lattice values in ascending constant order.
func Values() []Value {
	return []Value{Par, Fwd, Bwd, Bi, FwdMaybe, BwdMaybe, BiMaybe}
}

var valueNames = [numValues]string{
	Par:      "||",
	Fwd:      "->",
	Bwd:      "<-",
	Bi:       "<->",
	FwdMaybe: "->?",
	BwdMaybe: "<-?",
	BiMaybe:  "<->?",
}

// String returns the ASCII rendering of v: "||", "->", "<-", "<->",
// "->?", "<-?" or "<->?".
func (v Value) String() string {
	if !Valid(v) {
		return fmt.Sprintf("Value(%d)", uint8(v))
	}
	return valueNames[v]
}

// Pretty returns the Unicode rendering used in the paper: ‖, →, ←, ↔,
// →?, ←?, ↔?.
func (v Value) Pretty() string {
	switch v {
	case Par:
		return "‖"
	case Fwd:
		return "→"
	case Bwd:
		return "←"
	case Bi:
		return "↔"
	case FwdMaybe:
		return "→?"
	case BwdMaybe:
		return "←?"
	case BiMaybe:
		return "↔?"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v))
	}
}

// ParseValue converts the ASCII or Unicode rendering of a dependency
// value back into a Value.
func ParseValue(s string) (Value, error) {
	switch s {
	case "||", "‖", "par":
		return Par, nil
	case "->", "→":
		return Fwd, nil
	case "<-", "←":
		return Bwd, nil
	case "<->", "↔":
		return Bi, nil
	case "->?", "→?":
		return FwdMaybe, nil
	case "<-?", "←?":
		return BwdMaybe, nil
	case "<->?", "↔?":
		return BiMaybe, nil
	default:
		return Par, fmt.Errorf("lattice: unknown dependency value %q", s)
	}
}

// JoinAll folds Join over vs, returning Bottom for an empty slice.
func JoinAll(vs ...Value) Value {
	out := Bottom
	for _, v := range vs {
		out = Join(out, v)
	}
	return out
}

// MeetAll folds Meet over vs, returning Top for an empty slice.
func MeetAll(vs ...Value) Value {
	out := Top
	for _, v := range vs {
		out = Meet(out, v)
	}
	return out
}
