package slo

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func testWindows() []Window {
	return []Window{
		{Name: "1m", Dur: time.Minute, Burn: 10},
		{Name: "10m", Dur: 10 * time.Minute, Burn: 1},
	}
}

func TestRatioBurnRates(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("req_bad_total", "")
	total := reg.Counter("req_total", "")
	m := NewMonitor(Config{
		Registry: reg,
		Objectives: []Objective{{
			Name: "availability", Target: 0.99,
			BadSeries: "req_bad_total", TotalSeries: "req_total",
		}},
		Windows: testWindows(),
	})

	// Nine minutes of clean traffic, then one bad minute at 20% errors.
	now := t0
	m.Sample(now)
	for i := 0; i < 9; i++ {
		total.Add(100)
		now = now.Add(time.Minute)
		m.Sample(now)
	}
	total.Add(100)
	bad.Add(20)
	now = now.Add(time.Minute)
	m.Sample(now)

	st := m.Status(now)
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %+v", st.Objectives)
	}
	ws := st.Objectives[0].Windows
	// 1m window: 20/100 bad → burn 0.2/0.01 = 20 ≥ 10 → violated.
	if ws[0].Total != 100 || ws[0].Good != 80 {
		t.Fatalf("1m window = %+v", ws[0])
	}
	if got := ws[0].BurnRate; got < 19.99 || got > 20.01 {
		t.Errorf("1m burn = %g, want 20", got)
	}
	if !ws[0].Violated {
		t.Error("1m window not violated at 20x burn")
	}
	// 10m window: 20/1000 bad → burn 0.02/0.01 = 2 ≥ 1 → violated.
	if ws[1].Total != 1000 || ws[1].Good != 980 {
		t.Fatalf("10m window = %+v", ws[1])
	}
	if got := ws[1].BurnRate; got < 1.99 || got > 2.01 {
		t.Errorf("10m burn = %g, want 2", got)
	}
	if !st.Objectives[0].Violated || st.Healthy {
		t.Error("status did not surface the violation")
	}
}

func TestRatioHealthyUnderBudget(t *testing.T) {
	reg := obs.NewRegistry()
	bad := reg.Counter("req_bad_total", "")
	total := reg.Counter("req_total", "")
	m := NewMonitor(Config{
		Registry: reg,
		Objectives: []Objective{{
			Name: "availability", Target: 0.99,
			BadSeries: "req_bad_total", TotalSeries: "req_total",
		}},
		Windows: testWindows(),
	})
	now := t0
	m.Sample(now)
	for i := 0; i < 10; i++ {
		total.Add(1000)
		if i%2 == 0 {
			bad.Add(1) // 0.05% bad — burn 0.05, well under budget
		}
		now = now.Add(time.Minute)
		m.Sample(now)
	}
	st := m.Status(now)
	if !st.Healthy || st.Objectives[0].Violated {
		t.Fatalf("healthy traffic flagged: %+v", st.Objectives[0])
	}
}

func TestLatencyObjectiveAndExemplar(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	m := NewMonitor(Config{
		Registry: reg,
		Objectives: []Objective{{
			Name: "latency", Target: 0.9,
			LatencySeries: "lat_seconds", Threshold: 0.1,
		}},
		Windows: []Window{{Name: "5m", Dur: 5 * time.Minute, Burn: 1}},
	})
	now := t0
	m.Sample(now)
	for i := 0; i < 80; i++ {
		h.Observe(0.005) // good
	}
	for i := 0; i < 20; i++ {
		// 20% of observations are slow; the exemplar ties the worst
		// bucket to a trace.
		h.ObserveExemplar(0.7, "deadbeefdeadbeefdeadbeefdeadbeef", now)
	}
	now = now.Add(time.Minute)
	m.Sample(now)

	st := m.Status(now)
	o := st.Objectives[0]
	ws := o.Windows[0]
	if ws.Total != 100 || ws.Good != 80 {
		t.Fatalf("window = %+v", ws)
	}
	// badFraction 0.2 over budget 0.1 → burn 2 → violated.
	if !o.Violated {
		t.Errorf("latency objective not violated: %+v", ws)
	}
	if o.ExemplarTraceID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Errorf("exemplar = %q", o.ExemplarTraceID)
	}
	if o.P99Seconds <= 0.1 || o.P99Seconds > 1 {
		t.Errorf("p99 = %g, want in (0.1, 1]", o.P99Seconds)
	}
}

func TestPartialHistoryUsesOldestSample(t *testing.T) {
	reg := obs.NewRegistry()
	total := reg.Counter("req_total", "")
	m := NewMonitor(Config{
		Registry:   reg,
		Objectives: []Objective{{Name: "o", Target: 0.99, BadSeries: "req_bad_total", TotalSeries: "req_total"}},
		Windows:    []Window{{Name: "6h", Dur: 6 * time.Hour, Burn: 1}},
	})
	m.Sample(t0)
	total.Add(50)
	m.Sample(t0.Add(time.Minute))
	st := m.Status(t0.Add(time.Minute))
	if got := st.Objectives[0].Windows[0].Total; got != 50 {
		t.Fatalf("partial 6h window total = %d, want 50 (delta from oldest sample)", got)
	}
}

func TestPublishesSeries(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("req_total", "").Add(10)
	m := NewMonitor(Config{
		Registry:   reg,
		Objectives: []Objective{{Name: "avail", Target: 0.99, BadSeries: "req_bad_total", TotalSeries: "req_total"}},
		Windows:    testWindows(),
	})
	m.Sample(t0)
	snap := reg.Snapshot()
	burn := obs.SeriesName(MetricBurnRate, "objective", "avail", "window", "1m")
	if _, ok := snap[burn]; !ok {
		t.Fatalf("missing series %q in %d-metric snapshot", burn, len(snap))
	}
	tgt := obs.SeriesName(MetricTarget, "objective", "avail")
	if got := snap[tgt].Float; got != 0.99 {
		t.Errorf("target gauge = %g, want 0.99", got)
	}
	if got := snap.Value(obs.SeriesName(MetricViolated, "objective", "avail")); got != 0 {
		t.Errorf("violated gauge = %d, want 0", got)
	}
}

func TestRingBounded(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(Config{Registry: reg, MaxSamples: 8, Windows: testWindows()})
	for i := 0; i < 100; i++ {
		m.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	m.mu.Lock()
	n := len(m.samples)
	m.mu.Unlock()
	if n > 8 {
		t.Fatalf("ring holds %d samples, want <= 8", n)
	}
}

func TestHandler(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(Config{Registry: reg, Objectives: DefaultServeObjectives(0)})
	m.Sample(t0)
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad /slo JSON: %v\n%s", err, rec.Body.String())
	}
	if len(st.Objectives) != 4 || !st.Healthy {
		t.Fatalf("status = %+v", st)
	}
	names := map[string]bool{}
	for _, o := range st.Objectives {
		names[o.Name] = true
	}
	for _, want := range []string{"ingest-latency", "shed-rate", "availability", "model-stability"} {
		if !names[want] {
			t.Errorf("missing default objective %q", want)
		}
	}
}
