// Package learner implements the generalization algorithm of Feng et
// al., "Automatic Model Generation for Black Box Real-Time Systems"
// (DATE 2007, Section 3): message-guided generalization of dependency
// hypotheses over an execution trace, in both the exact (exponential)
// variant and the bounded heuristic variant with least-upper-bound
// merging.
//
// # Algorithm
//
// Learning starts from the set {d⊥} containing only the globally most
// specific hypothesis and handles one period at a time. For every
// message occurrence, the timing-feasible (sender, receiver) candidate
// pairs A_m are computed; every live hypothesis is extended by every
// candidate assumption that does not repeat an already-assumed pair
// (at most one message per ordered pair per period), generalizing the
// dependency function only as much as necessary. At the end of each
// period, a post-processing pass relaxes unconditional entries whose
// implication the period violated, removes the assumptions, unifies
// equal hypotheses and deletes redundant (non-most-specific) ones.
//
// A subtlety visible in the paper's worked example (tables d81–d85):
// when a new dependency is stamped in period k, the stamp must already
// account for periods 1..k-1 — if some earlier period executed the
// sender without the receiver, the minimal generalization consistent
// with all instances seen so far is the conditional →?/←?, not the
// unconditional →/←. The learner therefore carries a cumulative
// execution-violation history and chooses stamp values from it.
//
// # Heuristic
//
// With Options.Bound = b > 0 the learner keeps the working hypotheses
// in a list ordered by the Definition-8 weight; whenever an addition
// makes the list one longer than b, the two lightest hypotheses are
// replaced by their least upper bound. The result remains correct but
// is no longer guaranteed to be most specific. Runtime is
// O(m·b² + m·b·t²) for m messages and t tasks.
//
// # Architecture
//
// The period-processing core — candidate enumeration, per-message
// generalization, end-of-period post-processing — lives in
// internal/engine; this package is the result-facing front-end. Learn
// and Online both drive the same engine, which is what guarantees
// their equivalence, and Options.Workers shards the engine's
// per-message fan-out across a worker pool without changing any
// result (see the engine package comment for the determinism
// argument).
package learner

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/engine"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// ErrNoHypothesis is returned when the hypothesis set becomes empty:
// either the trace violates the assumed model of computation, or the
// generalization language cannot express the observed behaviour
// (Section 3.1). It is the engine's error re-exported, so errors.Is
// works across both layers.
var ErrNoHypothesis = engine.ErrNoHypothesis

// ErrTooManyHypotheses is returned by the exact algorithm when the
// working set exceeds Options.MaxHypotheses.
var ErrTooManyHypotheses = engine.ErrTooManyHypotheses

// ErrVerifyUnavailable is returned by Online.Result when
// Options.VerifyResults is set but the session retained no periods to
// verify against (Options.RetainPeriods is zero). Batch Learn always
// has the full trace and never returns it.
var ErrVerifyUnavailable = errors.New(
	"learner: VerifyResults needs retained periods in an online session (set Options.RetainPeriods)")

// Options configures a learning run.
type Options struct {
	// Bound is the heuristic's maximum working-set size b. Zero (or
	// negative) selects the exact algorithm.
	Bound int

	// Policy controls timing-based candidate-pair computation.
	Policy depfunc.CandidatePolicy

	// EagerPrune enables the strict reading of condition 4 of the
	// generalization step: among the children one parent spawns for
	// one message, only the minimal ones are kept. The default
	// (false) keeps all children and prunes at the end of the period,
	// which is never less complete.
	EagerPrune bool

	// MaxHypotheses aborts the exact algorithm with
	// ErrTooManyHypotheses when the working set grows beyond this
	// size. Zero means unlimited.
	MaxHypotheses int

	// Workers is the size of the engine's per-message fan-out worker
	// pool. Values <= 1 (the default) select the sequential path.
	// The result is bit-identical for every value, in both the exact
	// and the bounded mode: parallelism only reorders child
	// *computation*, never the gather order that determines merging
	// and deduplication.
	Workers int

	// VerifyResults re-checks every final hypothesis against the full
	// trace with the matching function M and drops any that fail
	// (counted in Stats.DroppedUnsound). The exact algorithm never
	// produces unsound hypotheses; bounded merging can in rare
	// adversarial traces. In an online session verification needs
	// RetainPeriods > 0, and re-checks against the retained window;
	// Result returns ErrVerifyUnavailable otherwise.
	VerifyResults bool

	// RetainPeriods makes an online session keep deep copies of the
	// most recent N consumed periods in a ring buffer, giving
	// Online.Result a trace to verify against (see VerifyResults).
	// Zero (the default) retains nothing. Ignored by batch Learn,
	// which always has the full trace.
	RetainPeriods int

	// PeriodLiveCap bounds the Stats.PeriodLive series to the most
	// recent N periods. Zero keeps the full series; long-running
	// online sessions (internal/serve) set a cap so per-stream memory
	// stays bounded.
	PeriodLiveCap int

	// Observer, when non-nil, receives the structured run-trace: the
	// session announcement (engine_start), period boundaries,
	// per-message candidate fan-out, hypothesis spawn/merge/prune
	// events, and phase timing spans. Every emit site is nil-guarded,
	// so a nil Observer adds no allocations to the hot path (verified
	// by TestNopObserverZeroAlloc). Use obs.NewMulti to attach
	// several sinks at once.
	Observer obs.Observer

	// Provenance enables the per-hypothesis audit trail: every
	// lattice transition of every working hypothesis is recorded with
	// its cause (message generalization, end-of-period relaxation,
	// heuristic merge), queryable afterwards via Result.Explain and
	// Result.Provenance and emitted as "provenance" events for the
	// winning hypothesis when an Observer is attached. Off by
	// default: recording allocates one cons cell per changed entry,
	// and the default path must stay allocation-free.
	Provenance bool

	// OnPeriodVerify, when non-nil, receives the engine's per-period
	// verification report (engine.VerifyOutcome): whether each newly
	// consumed period matched the model as it stood before the
	// period, plus the post-period frontier LUB. It is a runtime knob
	// (like Workers): not part of snapshots, and internal/serve wires
	// it to the stream's drift monitor. The callback runs on the
	// goroutine driving AddPeriod/Learn.
	OnPeriodVerify func(engine.VerifyOutcome)

	// Negatives lists periods the system is known to be unable to
	// produce (forbidden behaviours supplied by the analyst — the
	// version-space extension the paper sketches as future work).
	// Every returned hypothesis is guaranteed NOT to match any of
	// them; hypotheses matching a negative are discarded from the
	// final most-specific set (Stats.NegativeRejections counts them).
	//
	// The filter runs only on the final set, not incrementally: the
	// matching function M is not monotone in the lattice order (a
	// generalization step can introduce an unconditional entry that
	// rejects a negative its ancestor matched), so discarding a
	// matching ancestor mid-run could lose consistent descendants.
	Negatives []*trace.Period
}

// engineConfig translates the engine-facing subset of the options.
func (opt Options) engineConfig() engine.Config {
	return engine.Config{
		Bound:          opt.Bound,
		Policy:         opt.Policy,
		EagerPrune:     opt.EagerPrune,
		MaxHypotheses:  opt.MaxHypotheses,
		Workers:        opt.Workers,
		PeriodLiveCap:  opt.PeriodLiveCap,
		Observer:       opt.Observer,
		Provenance:     opt.Provenance,
		OnPeriodVerify: opt.OnPeriodVerify,
	}
}

// Stats instruments a learning run. It is populated even without an
// Observer, so callers get the headline numbers without consuming the
// full event stream. It is the engine's Stats type: the engine
// maintains the per-period counters, this package fills in the
// result-assembly fields.
type Stats = engine.Stats

// ProvStep is one recorded generalization step of a hypothesis's
// derivation chain (see Options.Provenance). Format renders it for
// humans.
type ProvStep = hypothesis.Step

// ErrNoProvenance is returned by Result.Explain when the run did not
// record provenance.
var ErrNoProvenance = errors.New("learner: provenance not recorded (set Options.Provenance)")

// Result is the outcome of a learning run.
type Result struct {
	// TaskSet is the predefined task set T of the trace.
	TaskSet *depfunc.TaskSet
	// Hypotheses is the returned set D*, sorted by ascending weight
	// (ties broken by matrix encoding for determinism). For the exact
	// algorithm this is the set of most specific hypotheses matching
	// the trace.
	Hypotheses []*depfunc.DepFunc
	// LUB is the pointwise least upper bound ⊔D*, the paper's
	// recommended single answer when the algorithm does not converge.
	LUB *depfunc.DepFunc
	// Converged reports whether exactly one hypothesis remained.
	Converged bool
	// Stats holds run instrumentation.
	Stats Stats

	// prov maps each returned dependency function to its recorded
	// derivation chain; nil unless Options.Provenance was set.
	prov map[*depfunc.DepFunc][]ProvStep
}

// Provenance returns the full derivation chain (oldest step first) of
// the i-th returned hypothesis, or nil when the run did not record
// provenance.
func (r *Result) Provenance(i int) []ProvStep {
	if r.prov == nil || i < 0 || i >= len(r.Hypotheses) {
		return nil
	}
	return r.prov[r.Hypotheses[i]]
}

// Explain answers "why did d(t1,t2) become what it is": it returns
// the chronological steps that changed entry (t1,t2) of the first
// (lightest, most specific) returned hypothesis. An empty chain with
// a nil error means the entry never left ‖. It fails with
// ErrNoProvenance when the run did not record provenance, or when a
// task name is unknown.
func (r *Result) Explain(t1, t2 string) ([]ProvStep, error) {
	if r.prov == nil {
		return nil, ErrNoProvenance
	}
	i, j := r.TaskSet.Index(t1), r.TaskSet.Index(t2)
	if i < 0 {
		return nil, fmt.Errorf("learner: unknown task %q", t1)
	}
	if j < 0 {
		return nil, fmt.Errorf("learner: unknown task %q", t2)
	}
	var out []ProvStep
	for _, s := range r.prov[r.Hypotheses[0]] {
		if s.I == i && s.J == j {
			out = append(out, s)
		}
	}
	return out, nil
}

// Learn runs the generalization algorithm over the trace. It is the
// batch form of the incremental Online learner and produces identical
// results.
func Learn(tr *trace.Trace, opt Options) (*Result, error) {
	t0 := time.Now()
	o, err := NewOnline(tr.Tasks, opt)
	if err != nil {
		return nil, err
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			return nil, err
		}
	}
	// Extract the working set directly: the session ends here, so the
	// defensive clone of Online.Result is unnecessary.
	working := o.eng.Working()
	ds := make([]*depfunc.DepFunc, 0, len(working))
	var prov map[*depfunc.DepFunc][]ProvStep
	if opt.Provenance {
		prov = make(map[*depfunc.DepFunc][]ProvStep, len(working))
	}
	for _, h := range working {
		ds = append(ds, &h.D)
		if prov != nil {
			prov[&h.D] = h.Provenance()
		}
	}
	res, err := finish(o.eng.TaskSet(), tr, ds, opt, o.eng.Stats())
	if err != nil {
		return nil, err
	}
	res.prov = prov
	res.Stats.Elapsed = time.Since(t0)
	if opt.Observer != nil {
		if opt.Provenance {
			emitProvenance(opt.Observer, o.eng.TaskSet(), res.Provenance(0))
		}
		opt.Observer.OnRunEnd(obs.RunEnd{
			Periods:   res.Stats.Periods,
			Messages:  res.Stats.Messages,
			Final:     res.Stats.Final,
			Peak:      res.Stats.Peak,
			Merges:    res.Stats.Merges,
			ElapsedNS: res.Stats.Elapsed.Nanoseconds(),
		})
	}
	return res, nil
}

// emitProvenance publishes the winning hypothesis's derivation chain
// as "provenance" events, task indices resolved to names.
func emitProvenance(obsv obs.Observer, ts *depfunc.TaskSet, steps []ProvStep) {
	for _, s := range steps {
		e := obs.Provenance{
			Period: s.Period, Index: s.Msg, Msg: s.MsgID,
			Task1: ts.Name(s.I), Task2: ts.Name(s.J),
			From: s.Old.String(), To: s.New.String(), Action: s.Action,
		}
		if s.S >= 0 {
			e.Sender, e.Receiver = ts.Name(s.S), ts.Name(s.R)
		}
		obsv.OnProvenance(e)
	}
}

// LearnExact runs the exact (exponential) algorithm.
func LearnExact(tr *trace.Trace, pol depfunc.CandidatePolicy) (*Result, error) {
	return Learn(tr, Options{Policy: pol})
}

// LearnBounded runs the heuristic with the given bound.
func LearnBounded(tr *trace.Trace, bound int, pol depfunc.CandidatePolicy) (*Result, error) {
	return Learn(tr, Options{Bound: bound, Policy: pol})
}

// finish assembles the Result from the surviving dependency
// functions. tr may be nil (incremental sessions without retained
// periods), in which case VerifyResults is skipped.
func finish(ts *depfunc.TaskSet, tr *trace.Trace, ds []*depfunc.DepFunc,
	opt Options, stats Stats) (*Result, error) {

	if len(opt.Negatives) > 0 {
		kept := ds[:0]
		for _, d := range ds {
			consistent := true
			for _, neg := range opt.Negatives {
				if depfunc.Match(d, neg, opt.Policy) {
					consistent = false
					break
				}
			}
			if consistent {
				kept = append(kept, d)
			} else {
				stats.NegativeRejections++
			}
		}
		ds = kept
	}
	if opt.VerifyResults && tr != nil {
		sp := obs.StartSpan(opt.Observer, obs.PhaseVerify)
		kept := ds[:0]
		for _, d := range ds {
			if ok, _ := depfunc.MatchTrace(d, tr, opt.Policy); ok {
				kept = append(kept, d)
			} else {
				stats.DroppedUnsound++
			}
		}
		ds = kept
		sp.End()
	}
	if len(ds) == 0 {
		return nil, ErrNoHypothesis
	}
	sort.SliceStable(ds, func(a, b int) bool {
		wa, wb := ds[a].Weight(), ds[b].Weight()
		if wa != wb {
			return wa < wb
		}
		return ds[a].Key() < ds[b].Key()
	})
	stats.Final = len(ds)
	return &Result{
		TaskSet:    ts,
		Hypotheses: ds,
		LUB:        depfunc.JoinAll(ds),
		Converged:  len(ds) == 1,
		Stats:      stats,
	}, nil
}
