package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes every event as one JSON object per line, the
// event's kind in the "event" field followed by the event's own
// fields:
//
//	{"event":"period_end","period":2,"live":5,"dropped":3,...}
//
// The stream is the offline-analysis format documented in the package
// comment; it is trivially consumed by jq, a spreadsheet import, or a
// replaying Recorder. Writes are serialized; the first write or
// marshal error is sticky and available from Err.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps w. The caller retains ownership of w (the sink
// never closes it); wrap with bufio for high-rate event streams.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Err returns the first error encountered while writing, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *JSONLSink) write(kind string, e any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	line := make([]byte, 0, len(b)+len(kind)+14)
	line = append(line, `{"event":"`...)
	line = append(line, kind...)
	line = append(line, '"')
	if len(b) > 2 { // non-empty object: splice the event's fields in
		line = append(line, ',')
		line = append(line, b[1:len(b)-1]...)
	}
	line = append(line, '}', '\n')
	_, s.err = s.w.Write(line)
}

func (s *JSONLSink) OnEngineStart(e EngineStart)             { s.write(e.Kind(), e) }
func (s *JSONLSink) OnPeriodStart(e PeriodStart)             { s.write(e.Kind(), e) }
func (s *JSONLSink) OnMessageProcessed(e MessageProcessed)   { s.write(e.Kind(), e) }
func (s *JSONLSink) OnHypothesisSpawned(e HypothesisSpawned) { s.write(e.Kind(), e) }
func (s *JSONLSink) OnHypothesisMerged(e HypothesisMerged)   { s.write(e.Kind(), e) }
func (s *JSONLSink) OnHypothesisPruned(e HypothesisPruned)   { s.write(e.Kind(), e) }
func (s *JSONLSink) OnPeriodEnd(e PeriodEnd)                 { s.write(e.Kind(), e) }
func (s *JSONLSink) OnRunEnd(e RunEnd)                       { s.write(e.Kind(), e) }
func (s *JSONLSink) OnPipeline(e Pipeline)                   { s.write(e.Kind(), e) }
func (s *JSONLSink) OnProvenance(e Provenance)               { s.write(e.Kind(), e) }
func (s *JSONLSink) OnSpan(e SpanEnd)                        { s.write(e.Kind(), e) }

// ParseJSONL decodes a JSONL event stream produced by JSONLSink back
// into typed events. Unknown "event" kinds are skipped (forward
// compatibility); malformed lines return an error.
func ParseJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var raw struct {
			Event string `json:"event"`
		}
		var msg json.RawMessage
		if err := dec.Decode(&msg); err != nil {
			return out, err
		}
		if err := json.Unmarshal(msg, &raw); err != nil {
			return out, err
		}
		var (
			e   Event
			err error
		)
		switch raw.Event {
		case "engine_start":
			e, err = decodeEvent[EngineStart](msg)
		case "period_start":
			e, err = decodeEvent[PeriodStart](msg)
		case "message_processed":
			e, err = decodeEvent[MessageProcessed](msg)
		case "hypothesis_spawned":
			e, err = decodeEvent[HypothesisSpawned](msg)
		case "hypothesis_merged":
			e, err = decodeEvent[HypothesisMerged](msg)
		case "hypothesis_pruned":
			e, err = decodeEvent[HypothesisPruned](msg)
		case "period_end":
			e, err = decodeEvent[PeriodEnd](msg)
		case "run_end":
			e, err = decodeEvent[RunEnd](msg)
		case "pipeline":
			e, err = decodeEvent[Pipeline](msg)
		case "provenance":
			e, err = decodeEvent[Provenance](msg)
		case "span":
			e, err = decodeEvent[SpanEnd](msg)
		default:
			continue
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}

func decodeEvent[T Event](msg json.RawMessage) (Event, error) {
	var v T
	if err := json.Unmarshal(msg, &v); err != nil {
		return nil, err
	}
	return v, nil
}
