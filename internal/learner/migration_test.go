package learner

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
)

// TestSnapshotPackedBitIdentical: a version-2 checkpoint restores the
// working frontier bit-identically — not just behaviourally — through
// a full JSON round trip: every matrix re-encodes to the same packed
// words and carries the same incremental fingerprint as the original
// in-memory object.
func TestSnapshotPackedBitIdentical(t *testing.T) {
	tr := simFigure1Trace(t, 8, 5)
	o, err := NewOnline(tr.Tasks, Options{Bound: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if len(snap.WorkingPacked) != len(snap.Working) {
		t.Fatalf("%d packed encodings for %d working tables", len(snap.WorkingPacked), len(snap.Working))
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnline(decoded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig := o.eng.State()
	rest := restored.eng.State()
	if len(orig.Working) != len(rest.Working) {
		t.Fatalf("restored %d working hypotheses, want %d", len(rest.Working), len(orig.Working))
	}
	for i := range orig.Working {
		if orig.Working[i].Fingerprint() != rest.Working[i].Fingerprint() {
			t.Errorf("working %d: fingerprint %x, want %x", i, rest.Working[i].Fingerprint(), orig.Working[i].Fingerprint())
		}
		if !orig.Working[i].Equal(rest.Working[i]) {
			t.Errorf("working %d: matrices differ after restore", i)
		}
		if got, want := rest.Working[i].EncodePacked(), orig.Working[i].EncodePacked(); got != want {
			t.Errorf("working %d: packed re-encoding differs:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestLegacyV1MigratesAndReverifies: snapshots and deltas written by a
// version-1 binary — rendered tables, no packed encodings — restore
// into this binary and replay to exactly the state a native version-2
// restore reaches: same working matrices (by fingerprint and content)
// and same stats. This is the upgrade path for checkpoints and WALs
// persisted before the packed representation existed.
func TestLegacyV1MigratesAndReverifies(t *testing.T) {
	tr := simFigure1Trace(t, 10, 5)
	ts, err := depfunc.NewTaskSet(tr.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	const split = 3
	o, err := NewOnline(tr.Tasks, Options{Bound: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Periods[:split] {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var deltas []*Delta
	for _, p := range tr.Periods[split:] {
		if err := o.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
		d, err := o.PeriodDelta()
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
	}

	// Downgrade the captured artifacts to the version-1 wire form: the
	// snapshot drops its packed encodings, each delta carries its
	// literals as rendered tables instead.
	legacySnap := *snap
	legacySnap.Version = 1
	legacySnap.WorkingPacked = nil

	v1, err := RestoreOnline(&legacySnap, Options{})
	if err != nil {
		t.Fatalf("restore v1 snapshot: %v", err)
	}
	v2, err := RestoreOnline(snap, Options{})
	if err != nil {
		t.Fatalf("restore v2 snapshot: %v", err)
	}
	for di, d := range deltas {
		ld := *d
		ld.Version = 1
		ld.Packed = nil
		ld.Tables = nil
		for _, enc := range d.Packed {
			df, err := depfunc.DecodePacked(ts, enc)
			if err != nil {
				t.Fatalf("delta %d: decode literal: %v", di, err)
			}
			ld.Tables = append(ld.Tables, df.Table())
		}
		if err := v1.ApplyDelta(&ld); err != nil {
			t.Fatalf("delta %d: apply legacy: %v", di, err)
		}
		if err := v2.ApplyDelta(d); err != nil {
			t.Fatalf("delta %d: apply packed: %v", di, err)
		}
	}

	want := o.eng.State()
	for name, s := range map[string]*Online{"legacy-v1": v1, "packed-v2": v2} {
		st := s.eng.State()
		if len(st.Working) != len(want.Working) {
			t.Fatalf("%s: %d working hypotheses, want %d", name, len(st.Working), len(want.Working))
		}
		for i := range want.Working {
			if st.Working[i].Fingerprint() != want.Working[i].Fingerprint() {
				t.Errorf("%s: working %d fingerprint %x, want %x",
					name, i, st.Working[i].Fingerprint(), want.Working[i].Fingerprint())
			}
			if !st.Working[i].Equal(want.Working[i]) {
				t.Errorf("%s: working %d differs after replay", name, i)
			}
		}
		if !reflect.DeepEqual(st.Stats, want.Stats) {
			t.Errorf("%s: stats diverge after replay:\n got %+v\nwant %+v", name, st.Stats, want.Stats)
		}
		if !reflect.DeepEqual(st.History, want.History) {
			t.Errorf("%s: history diverges after replay", name)
		}
	}
}
