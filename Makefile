GO ?= go

.PHONY: check vet build test race bench microbench conform soak fuzz tidy load drift store cluster

## check: the full gate — vet, build everything, race-enabled tests,
## and the conformance harness over the committed golden corpus.
check: vet build race conform

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## conform: run the theorem oracles over the committed golden corpus
## (exits non-zero on any violation), then the mutation smoke that
## proves the oracles still catch injected faults. See TESTING.md.
conform:
	$(GO) run ./cmd/bbconform
	$(GO) run ./cmd/bbconform -smoke
	$(GO) run ./cmd/bbconform -serve

## soak: long-run health check of the serving layer — 16 concurrent
## streams, hundreds of periods each through the HTTP API, then
## goroutine-leak and heap-growth assertions — plus the 1000-stream
## 30-second bbload acceptance run. Gated behind a build tag so plain
## `go test ./...` stays fast.
soak:
	$(GO) test -tags soak -run TestSoak -timeout 10m -v ./internal/serve/
	$(GO) test -tags soak -run TestLoadThousandStreams -timeout 10m -v ./internal/load/

## load: SLO-gated load smoke — bbload boots bbserved in-process,
## drives 64 mixed text/candump streams for 5 seconds, prints the
## p50/p95/p99/shed/availability report, and exits nonzero on an SLO
## violation (exit 1) or a goroutine leak after shutdown (exit 3).
load:
	$(GO) run ./cmd/bbload -streams 64 -duration 5s -slo

## drift: the model-drift gate — the drift unit/integration tests, the
## conformance drift oracles over the committed corpus (change-point
## detection on drift entries, zero false alarms on stationary ones),
## and the bbload drift-injection smoke: every stream flips its regime
## mid-run and the server must report the change point within the
## window, SLO-gated.
drift:
	$(GO) test ./internal/drift/
	$(GO) test ./internal/conformance/ -run Drift
	$(GO) test ./internal/serve/ -run Drift
	$(GO) test ./internal/load/ -run Drift
	$(GO) run ./cmd/bbconform -drift
	$(GO) run ./cmd/bbload -streams 8 -duration 5s -rate 96 -drift-flip 20 -slo

## store: the stream-state-store gate — the store unit/crash-injection
## tests (WAL framing, torn tails, compaction epochs, quarantine), the
## serve-level WAL restart-equivalence and lazy-hydration suites under
## the race detector, a short run of the WAL-decoder fuzz target, and
## the bbload cold-restart benchmark: 1000 checkpointed streams, 10
## driven after restart, hydration contracts gated (exit 1 on
## violation).
store:
	$(GO) test -race ./internal/store/
	$(GO) test -race -run 'Restart|Hydrat|Quarantin|Legacy|Compact|Torn|Store' ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrames$$' -fuzztime 10s ./internal/store/
	$(GO) run ./cmd/bbload -restart -streams 1000 -active 10 -slo -json

## cluster: the cluster-mode gate — the ring placement tables, the
## handoff/import/fencing suites, the chaos tier (kill a node
## mid-checkpoint, kill mid-migration before/after the fence,
## partition the gateway from a node — each followed by the
## bit-identical equivalence oracle against a single-node reference),
## all under the race detector, plus the bbload cluster smoke: 3 nodes,
## 200 streams, forced checkpoint-handoff migrations mid-run, SLO- and
## equivalence-gated (exit 1 on violation).
cluster:
	$(GO) test -race -timeout 10m ./internal/cluster/
	$(GO) test -race -run 'Handoff|SnapshotDuringIngest|ExportImport' ./internal/serve/
	$(GO) test -race -run Cluster ./internal/load/
	$(GO) run ./cmd/bbload -cluster -streams 200 -slo

## fuzz: run every native fuzz target for FUZZTIME each (default 30s;
## nightly CI uses 10m). Minimized crashers land under the package's
## testdata/fuzz/<Target>/ — commit them as regression seeds.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzFromEventsPeriodic$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzParseLog$$' -fuzztime $(FUZZTIME) ./internal/can/
	$(GO) test -run '^$$' -fuzz '^FuzzParseDIMACS$$' -fuzztime $(FUZZTIME) ./internal/sat/
	$(GO) test -run '^$$' -fuzz '^FuzzPackedDepFunc$$' -fuzztime $(FUZZTIME) ./internal/depfunc/
	$(GO) test -run '^$$' -fuzz '^FuzzLearn$$' -fuzztime $(FUZZTIME) ./internal/conformance/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrames$$' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz '^FuzzRoute$$' -fuzztime $(FUZZTIME) ./internal/cluster/

## bench: regenerate the Section 3.4 runtime table and record it as
## benchmark telemetry (BENCH_local.json at the repo root), including
## the sequential-vs-parallel speedup columns at 4 workers. Bound 50
## rides along beyond the paper's column list because it is the CI
## regression gate's comparison point (bench-regression in ci.yml).
## Gate a change against the committed baseline with:
##   go run ./cmd/bbbench -compare BENCH_local.json -threshold 10%
bench:
	$(GO) run ./cmd/bbbench -workers 4 -bounds 1,4,16,32,50,64,100,120,150 -json BENCH_local.json

## microbench: the go-test microbenchmarks, including the
## zero-allocation observer guard (compare nil vs nop allocs/op) and
## the DepFunc Key-vs-Fingerprint dedup-cost comparison.
microbench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/learner/ ./internal/depfunc/

tidy:
	$(GO) mod tidy
