package conformance

import (
	"errors"
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/drift"
	"github.com/blackbox-rt/modelgen/internal/learner"
)

// DefaultDriftWindow is the detection-lag bound, in periods, used when
// a drift entry's manifest does not set one. It matches the serving
// stack's acceptance bound (bbload -drift-window).
const DefaultDriftWindow = 20

// driftConvergeAfter is the stability streak the oracle's monitor
// freezes references at. Corpus traces are short, so it sits below the
// serving default, but still above the Page–Hinkley alarm horizon
// λ/(1−δ) ≈ 3.2 periods so a hard flip alarms before the relaxed
// post-flip model could be mistaken for convergence.
const driftConvergeAfter = 4

// DriftDetection runs the drift monitor over one corpus entry the way
// the serving layer does — an online learner feeds every period's
// frontier LUB to a drift.Monitor — and checks the change-point
// contract declared by the entry's manifest:
//
//   - stationary entries (DriftFlipPeriod == 0): the monitor must
//     never alarm. The whole committed corpus doubles as the
//     zero-false-alarm fixture.
//   - drift entries (DriftFlipPeriod == N > 0): the regime changes at
//     period N+1 (1-based), and the monitor must raise exactly one
//     alarm, estimate the change point within ±1 of N+1, lag the true
//     change by at most DriftWindow periods, and re-converge on the
//     new regime when enough post-alarm periods remain.
//
// A learner that exceeds its hypothesis budget skips the oracle; any
// other learner failure is a violation, since corpus traces respect
// the model of computation.
func DriftDetection(e *Entry, opt learner.Options) ([]Violation, error) {
	window := e.DriftWindow
	if window <= 0 {
		window = DefaultDriftWindow
	}
	o, err := learner.NewOnline(e.Trace.Tasks, opt)
	if err != nil {
		return nil, err
	}
	mon := drift.New(drift.Config{ConvergeAfter: driftConvergeAfter, Policy: opt.Policy})
	var events []*drift.Event
	for _, p := range e.Trace.Periods {
		if err := o.AddPeriod(p); err != nil {
			if errors.Is(err, learner.ErrTooManyHypotheses) {
				return nil, fmt.Errorf("%w: %v", ErrOracleSkipped, err)
			}
			return []Violation{violationf("drift/learner-failure",
				"learner failed at period %d of a corpus trace: %v", p.Index, err)}, nil
		}
		r, err := o.Result()
		if err != nil {
			return nil, err
		}
		if ev := mon.Observe(p, r.LUB, len(r.Hypotheses)); ev != nil {
			events = append(events, ev)
		}
	}

	var out []Violation
	if e.DriftFlipPeriod <= 0 {
		for _, ev := range events {
			out = append(out, violationf("drift/stationary-false-alarm",
				"alarm at period %d (estimated change point %d) on a stationary trace",
				ev.Period, ev.ChangePoint))
		}
		return out, nil
	}

	flip := e.DriftFlipPeriod
	if len(events) == 0 {
		return append(out, violationf("drift/flip-undetected",
			"no alarm over %d periods despite the regime change after period %d",
			len(e.Trace.Periods), flip)), nil
	}
	ev := events[0]
	if d := ev.ChangePoint - (flip + 1); d < -1 || d > 1 {
		out = append(out, violationf("drift/change-point",
			"estimated change point %d, want %d (±1)", ev.ChangePoint, flip+1))
	}
	if lag := ev.Period - (flip + 1); lag < 0 || lag > window {
		out = append(out, violationf("drift/detection-window",
			"alarm at period %d lags the true change point %d by %d periods, window is %d",
			ev.Period, flip+1, lag, window))
	}
	for _, extra := range events[1:] {
		out = append(out, violationf("drift/extra-alarm",
			"second alarm at period %d (change point %d) after the flip was already detected",
			extra.Period, extra.ChangePoint))
	}
	// Re-convergence needs a fingerprint streak of driftConvergeAfter,
	// which takes driftConvergeAfter+1 post-alarm periods to build.
	if rem := len(e.Trace.Periods) - ev.Period; rem > driftConvergeAfter+1 && !mon.Converged() {
		out = append(out, violationf("drift/no-reconvergence",
			"generation %d never froze a reference over the %d post-alarm periods",
			mon.Generation(), rem))
	}
	return out, nil
}
