package depfunc

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// laneMask selects one packed lane.
const laneMask = (1 << lattice.PackedBits) - 1

// DepFunc is a dependency function d : T×T → V stored as a flat
// row-major matrix over the task set's dense indices. The diagonal is
// always ‖ (a task has no dependency on itself). Off-diagonal entries
// (i, j) and (j, i) are independent: the generalization algorithm
// installs mirrored values (→ at the sender row, ← at the receiver
// row) but end-of-period relaxation may later generalize the two sides
// asymmetrically, exactly as in the paper's tables d81–d85.
//
// Entries are packed three bits apiece, lattice.PackedLanes per uint64
// word, in the characteristic encoding of internal/lattice/packed.go,
// so Join/Meet/Leq/Equal/Weight run word-parallel instead of per-cell.
// Matrices additionally share their backing buffer copy-on-write: see
// CloneShared, Release and arena.go for the ownership rules.
type DepFunc struct {
	ts *TaskSet
	// w backs the matrix: w[0] is the buffer's atomic reference count
	// (for copy-on-write sharing), w[1:] hold the packed entries in
	// row-major lane order. Lanes past n² are always zero.
	w []uint64
	// fp is the Zobrist fingerprint of the entries, maintained
	// incrementally by every mutation (see fingerprint.go). Invariant:
	// fp == d.freshFingerprint().
	fp uint64
}

// words returns the number of lane words for an n-task matrix.
func words(n int) int { return lattice.PackedWords(n * n) }

// Bottom returns the most specific hypothesis d⊥: all entries ‖.
func Bottom(ts *TaskSet) *DepFunc {
	d := &DepFunc{ts: ts, w: acquire(1+words(ts.Len()), true)}
	d.fp = d.freshFingerprint()
	return d
}

// Top returns the least specific hypothesis d⊤: all off-diagonal
// entries ↔?.
func Top(ts *TaskSet) *DepFunc {
	d := Bottom(ts)
	n := ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.setIdx(i*n+j, lattice.Top)
			}
		}
	}
	return d
}

// TaskSet returns the task set the function is defined over.
func (d *DepFunc) TaskSet() *TaskSet { return d.ts }

// N returns the number of tasks.
func (d *DepFunc) N() int { return d.ts.Len() }

// codeAt returns the packed code of flat index idx.
func (d *DepFunc) codeAt(idx int) uint64 {
	return d.w[1+idx/lattice.PackedLanes] >> (uint(idx%lattice.PackedLanes) * lattice.PackedBits) & laneMask
}

// At returns the dependency value at (i, j) by task index.
func (d *DepFunc) At(i, j int) lattice.Value {
	return lattice.UnpackValue(d.codeAt(i*d.ts.Len() + j))
}

// Set assigns the dependency value at (i, j). Setting a diagonal entry
// to anything but ‖ panics: it would violate the representation
// invariant.
func (d *DepFunc) Set(i, j int, v lattice.Value) {
	if i == j && v != lattice.Par {
		panic(fmt.Sprintf("depfunc: diagonal entry (%d,%d) must be ||", i, j))
	}
	d.setIdx(i*d.ts.Len()+j, v)
}

// setIdx assigns a flat index, keeping the fingerprint invariant. All
// entry mutations funnel through it (or through the word loops of
// JoinWith/Meet, which maintain the same invariant per changed lane).
func (d *DepFunc) setIdx(idx int, v lattice.Value) {
	wi := 1 + idx/lattice.PackedLanes
	sh := uint(idx%lattice.PackedLanes) * lattice.PackedBits
	old := d.w[wi] >> sh & laneMask
	nc := lattice.PackValue(v)
	if nc == old {
		return
	}
	d.ensureOwned()
	d.fp ^= entryHash(idx, lattice.UnpackValue(old)) ^ entryHash(idx, v)
	d.w[wi] = d.w[wi]&^(laneMask<<sh) | nc<<sh
}

// JoinAt joins v into the entry at (i, j), returning true if the entry
// changed. This is the "generalize only as much as necessary" step. In
// the packed encoding the single-entry join is a bitwise OR of codes.
func (d *DepFunc) JoinAt(i, j int, v lattice.Value) bool {
	idx := i*d.ts.Len() + j
	wi := 1 + idx/lattice.PackedLanes
	sh := uint(idx%lattice.PackedLanes) * lattice.PackedBits
	old := d.w[wi] >> sh & laneMask
	nc := old | lattice.PackValue(v)
	if nc == old {
		return false
	}
	if i == j {
		panic(fmt.Sprintf("depfunc: diagonal entry (%d,%d) must be ||", i, j))
	}
	d.ensureOwned()
	d.fp ^= entryHash(idx, lattice.UnpackValue(old)) ^ entryHash(idx, lattice.UnpackValue(nc))
	d.w[wi] |= nc << sh
	return true
}

// Get returns the dependency value between two named tasks.
func (d *DepFunc) Get(t1, t2 string) (lattice.Value, error) {
	i, j := d.ts.Index(t1), d.ts.Index(t2)
	if i < 0 {
		return lattice.Par, fmt.Errorf("depfunc: unknown task %q", t1)
	}
	if j < 0 {
		return lattice.Par, fmt.Errorf("depfunc: unknown task %q", t2)
	}
	return d.At(i, j), nil
}

// MustGet is Get for known-good task names; it panics on error.
func (d *DepFunc) MustGet(t1, t2 string) lattice.Value {
	v, err := d.Get(t1, t2)
	if err != nil {
		panic(err)
	}
	return v
}

// Clone returns a deep copy sharing the (immutable) task set. Use it
// when the copy escapes the engine (snapshots, results); inside the
// generalization loop prefer CloneShared.
func (d *DepFunc) Clone() *DepFunc {
	nd := new(DepFunc)
	d.CloneInto(nd)
	return nd
}

// CloneInto deep-copies d into dst without allocating a header (the
// buffer still comes from the arena). Like ShareInto, dst must not
// hold a live buffer.
func (d *DepFunc) CloneInto(dst *DepFunc) {
	nw := acquire(len(d.w), false)
	copy(nw[1:], d.w[1:])
	*dst = DepFunc{ts: d.ts, w: nw, fp: d.fp}
}

// CloneShared returns a copy that shares d's backing buffer
// copy-on-write: the copy costs one header allocation and an atomic
// increment, and the buffer is only duplicated if either alias is
// later mutated. Safe to call concurrently from multiple goroutines.
func (d *DepFunc) CloneShared() *DepFunc {
	nd := new(DepFunc)
	d.ShareInto(nd)
	return nd
}

// ShareInto initializes dst as a copy-on-write alias of d without
// allocating a header (dst must not hold a live buffer — any previous
// buffer interest is leaked, not released). The hypothesis layer uses
// it to fill recycled, embedded headers.
func (d *DepFunc) ShareInto(dst *DepFunc) {
	atomic.AddUint64(&d.w[0], 1)
	*dst = DepFunc{ts: d.ts, w: d.w, fp: d.fp}
}

// Release returns d's interest in the backing buffer to the arena; the
// buffer is recycled when the last sharer releases it. Only call it on
// matrices that provably have no other alias outside the copy-on-write
// scheme (in particular, never on a matrix still referenced by a dedup
// map or an escaped result). After Release the DepFunc must not be
// used; uses panic rather than corrupt recycled memory. It reports
// whether this call released a live buffer (false on a double or nil
// release), which lets the hypothesis layer make its own header
// recycling idempotent.
func (d *DepFunc) Release() bool {
	if d == nil || d.w == nil {
		return false
	}
	b := d.w
	d.w = nil
	if atomic.AddUint64(&b[0], ^uint64(0)) == 0 {
		releaseBuf(b)
	}
	return true
}

// ensureOwned makes d the sole owner of its buffer, duplicating it
// first if it is shared. Every mutation path calls it before writing.
// Only the owner of d may mutate it, so a refcount of 1 cannot be
// raced upward by another goroutine.
func (d *DepFunc) ensureOwned() {
	if atomic.LoadUint64(&d.w[0]) == 1 {
		return
	}
	nw := acquire(len(d.w), false)
	copy(nw[1:], d.w[1:])
	old := d.w
	d.w = nw
	if atomic.AddUint64(&old[0], ^uint64(0)) == 0 {
		// Another sharer released between the load and the decrement;
		// the buffer is ours to recycle after all.
		releaseBuf(old)
	}
}

// Shared reports whether d currently shares its buffer with another
// matrix (diagnostic; the answer can change concurrently).
func (d *DepFunc) Shared() bool { return atomic.LoadUint64(&d.w[0]) > 1 }

// Equal reports whether two dependency functions over the same task
// set have identical entries.
func (d *DepFunc) Equal(other *DepFunc) bool {
	if d.ts != other.ts && !d.ts.Equal(other.ts) {
		return false
	}
	if d.fp != other.fp {
		// Different fingerprints prove different entries.
		return false
	}
	if &d.w[0] == &other.w[0] {
		return true // shared buffer
	}
	for i, w := range d.w[1:] {
		if w != other.w[1+i] {
			return false
		}
	}
	return true
}

// Leq reports the pointwise partial order ⊑D of Definition 5:
// d ⊑ other iff every entry of d is ⊑ the corresponding entry of
// other. In the packed encoding this is a word-wise subset test.
func (d *DepFunc) Leq(other *DepFunc) bool {
	for i, w := range d.w[1:] {
		if !lattice.LeqWords(w, other.w[1+i]) {
			return false
		}
	}
	return true
}

// Lt reports strict pointwise order.
func (d *DepFunc) Lt(other *DepFunc) bool {
	return d.Leq(other) && !d.Equal(other)
}

// Join returns the pointwise least upper bound of d and other as a new
// function. Both operands are unchanged.
func (d *DepFunc) Join(other *DepFunc) *DepFunc {
	out := d.Clone()
	out.JoinWith(other)
	return out
}

// JoinWith joins other into d in place, a word at a time (join is
// bitwise OR in the packed encoding). The fingerprint is updated only
// for the lanes that actually changed, and a shared buffer is only
// duplicated once the first change lands — so the converged steady
// state, joining a function that adds nothing, does no hash work and
// no copying at all.
func (d *DepFunc) JoinWith(other *DepFunc) {
	ow := other.w[1:]
	owned := false
	for i := range ow {
		old := d.w[1+i]
		nw := old | ow[i]
		if nw == old {
			continue
		}
		if !owned {
			d.ensureOwned()
			owned = true
		}
		d.fp ^= laneDiffHash(i*lattice.PackedLanes, old, nw)
		d.w[1+i] = nw
	}
}

// Meet returns the pointwise greatest lower bound as a new function.
func (d *DepFunc) Meet(other *DepFunc) *DepFunc {
	out := d.Clone()
	dw := out.w[1:]
	ow := other.w[1:]
	for i, old := range dw {
		nw := lattice.MeetWords(old, ow[i])
		if nw == old {
			continue
		}
		out.fp ^= laneDiffHash(i*lattice.PackedLanes, old, nw)
		dw[i] = nw
	}
	return out
}

// laneDiffHash returns the fingerprint delta for replacing word old by
// word nw whose first lane holds flat index base: the XOR of the entry
// hashes of every changed lane, old and new. Cost is proportional to
// the number of changed lanes, not the word width.
func laneDiffHash(base int, old, nw uint64) uint64 {
	var h uint64
	for diff := old ^ nw; diff != 0; {
		sh := uint(bits.TrailingZeros64(diff)) / lattice.PackedBits * lattice.PackedBits
		idx := base + int(sh)/lattice.PackedBits
		h ^= entryHash(idx, lattice.UnpackValue(old>>sh&laneMask)) ^
			entryHash(idx, lattice.UnpackValue(nw>>sh&laneMask))
		diff &^= laneMask << sh
	}
	return h
}

// Weight is the weight function of Definition 8: the sum over all
// ordered task pairs of the lattice distance of the entry. More
// general hypotheses weigh more. Word-parallel: four popcounts per 21
// entries (unused lanes are zero and contribute nothing).
func (d *DepFunc) Weight() int {
	wt := 0
	for _, w := range d.w[1:] {
		wt += lattice.WeightWord(w)
	}
	return wt
}

// Key returns a compact canonical encoding of the matrix, usable as a
// map key for deduplication.
func (d *DepFunc) Key() string {
	n2 := d.ts.Len() * d.ts.Len()
	b := make([]byte, n2)
	for idx := 0; idx < n2; idx++ {
		b[idx] = '0' + byte(lattice.UnpackValue(d.codeAt(idx)))
	}
	return string(b)
}

// JoinAll returns the pointwise least upper bound of all the given
// functions (the paper's ⊔D* used as the final result when the
// algorithm does not converge). It returns nil for an empty slice.
func JoinAll(ds []*DepFunc) *DepFunc {
	if len(ds) == 0 {
		return nil
	}
	out := ds[0].Clone()
	for _, d := range ds[1:] {
		out.JoinWith(d)
	}
	return out
}

// MostSpecific returns the subset of ds that is not redundant: d is
// redundant iff some other element is strictly more specific than d
// (∃d' ⊑ d, d' ≠ d). Exact duplicates are unified first. The relative
// order of survivors is preserved from ds.
func MostSpecific(ds []*DepFunc) []*DepFunc {
	// Unify duplicates.
	seen := make(map[string]bool, len(ds))
	uniq := make([]*DepFunc, 0, len(ds))
	for _, d := range ds {
		k := d.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, d)
		}
	}
	// Sort indices by weight: a hypothesis can only be dominated by
	// one of smaller or equal weight (Distance is strictly monotonic
	// on the lattice order, so d' ⊏ d implies Weight(d') < Weight(d)).
	idx := make([]int, len(uniq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return uniq[idx[a]].Weight() < uniq[idx[b]].Weight() })
	redundant := make([]bool, len(uniq))
	for a := 0; a < len(idx); a++ {
		i := idx[a]
		if redundant[i] {
			continue
		}
		for b := a + 1; b < len(idx); b++ {
			j := idx[b]
			if redundant[j] {
				continue
			}
			if uniq[i].Lt(uniq[j]) {
				redundant[j] = true
			}
		}
	}
	out := make([]*DepFunc, 0, len(uniq))
	for i, d := range uniq {
		if !redundant[i] {
			out = append(out, d)
		}
	}
	return out
}

// Table renders the dependency function as the square table layout
// used throughout the paper, e.g.
//
//	      t1   t2   t3   t4
//	t1    ||   ->?  ->?  ->
//	t2    <-   ||   ||   ->
//	t3    <-   ||   ||   ->
//	t4    <-   <-?  <-?  ||
func (d *DepFunc) Table() string {
	n := d.ts.Len()
	colw := 6 // widest value "<->?" plus separating spaces
	for _, name := range d.ts.names {
		if len(name)+2 > colw {
			colw = len(name) + 2
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		row := ""
		for _, c := range cells {
			row += c
			for k := len(c); k < colw; k++ {
				row += " "
			}
		}
		sb.WriteString(strings.TrimRight(row, " "))
		sb.WriteByte('\n')
	}
	header := append([]string{""}, d.ts.names...)
	line(header)
	cells := make([]string, n+1)
	for i := 0; i < n; i++ {
		cells[0] = d.ts.names[i]
		for j := 0; j < n; j++ {
			cells[j+1] = d.At(i, j).String()
		}
		line(cells)
	}
	return sb.String()
}

// String returns the table rendering.
func (d *DepFunc) String() string { return d.Table() }

// ParseTable parses the Table rendering back into a DepFunc. The first
// line must hold the task names; each following line a task name and N
// dependency values.
func ParseTable(s string) (*DepFunc, error) {
	lines := make([]string, 0, 8)
	for _, ln := range strings.Split(s, "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	if len(lines) < 2 {
		return nil, fmt.Errorf("depfunc: table too short")
	}
	names := strings.Fields(lines[0])
	ts, err := NewTaskSet(names)
	if err != nil {
		return nil, err
	}
	if len(lines)-1 != len(names) {
		return nil, fmt.Errorf("depfunc: table has %d rows, want %d", len(lines)-1, len(names))
	}
	d := Bottom(ts)
	for r, ln := range lines[1:] {
		fields := strings.Fields(ln)
		if len(fields) != len(names)+1 {
			return nil, fmt.Errorf("depfunc: row %d has %d fields, want %d", r, len(fields), len(names)+1)
		}
		i := ts.Index(fields[0])
		if i < 0 {
			return nil, fmt.Errorf("depfunc: row task %q not in header", fields[0])
		}
		for j, f := range fields[1:] {
			v, err := lattice.ParseValue(f)
			if err != nil {
				return nil, fmt.Errorf("depfunc: row %q column %q: %w", fields[0], names[j], err)
			}
			if i == j && v != lattice.Par {
				return nil, fmt.Errorf("depfunc: diagonal entry (%s,%s) must be ||", fields[0], names[j])
			}
			d.Set(i, j, v)
		}
	}
	return d, nil
}

// MustParseTable is ParseTable for literal known-good tables; it
// panics on error.
func MustParseTable(s string) *DepFunc {
	d, err := ParseTable(s)
	if err != nil {
		panic(err)
	}
	return d
}

// RelaxViolations generalizes, in place and minimally, every entry
// whose unconditional execution constraint is violated by the given
// set of executed tasks: if d(a,b) ∈ {→, ←, ↔} and a executed while b
// did not, the entry is relaxed to its conditional counterpart. This
// is the end-of-period "test conditional dependencies" step of the
// algorithm. It returns the number of relaxed entries.
func (d *DepFunc) RelaxViolations(executed func(task int) bool) int {
	return d.RelaxViolationsFunc(executed, nil)
}

// RelaxViolationsFunc is RelaxViolations with an audit callback:
// onRelax (when non-nil) is invoked for every relaxed entry with its
// position and the old→new lattice transition, in row-major order.
// The provenance recorder uses it to attribute end-of-period
// relaxations.
func (d *DepFunc) RelaxViolationsFunc(executed func(task int) bool, onRelax func(i, j int, old, new lattice.Value)) int {
	n := d.ts.Len()
	relaxed := 0
	for i := 0; i < n; i++ {
		if !executed(i) {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := d.At(i, j)
			if lattice.HasExecConstraint(v) && !executed(j) {
				d.Set(i, j, lattice.Relax(v))
				relaxed++
				if onRelax != nil {
					onRelax(i, j, v, lattice.Relax(v))
				}
			}
		}
	}
	return relaxed
}

// Entries calls fn for every off-diagonal entry.
func (d *DepFunc) Entries(fn func(i, j int, v lattice.Value)) {
	n := d.ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				fn(i, j, d.At(i, j))
			}
		}
	}
}
