package depfunc

import "testing"

// FuzzParseTable checks that the table parser never panics and that
// accepted tables round-trip.
func FuzzParseTable(f *testing.F) {
	f.Add("t1 t2\nt1 || ->\nt2 <- ||\n")
	f.Add("a b c\na || ->? <->?\nb <-? || <->\nc <->? <-> ||\n")
	f.Add("x\nx ||\n")
	f.Add("")
	f.Add("t1 t1\nt1 || ||\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseTable(input)
		if err != nil {
			return
		}
		back, err := ParseTable(d.Table())
		if err != nil {
			t.Fatalf("rendered table failed to parse: %v\n%s", err, d.Table())
		}
		if !back.Equal(d) {
			t.Fatalf("round trip changed table:\n%s\nvs\n%s", d.Table(), back.Table())
		}
	})
}
