// Package hypothesis implements the learner's working hypotheses: a
// dependency function together with the sender/receiver assumptions
// made for the messages of the period currently being analyzed
// (Section 3.1 of Feng et al., DATE 2007).
package hypothesis

import (
	"sort"
	"strconv"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// Hypothesis is one element of the learner's current set D_cur: a
// dependency function plus the (sender, receiver) pairs assumed for
// the messages analyzed so far in the current period. The model of
// computation allows at most one message per ordered pair per period,
// so an assumed pair must not be assumed again until the period ends.
type Hypothesis struct {
	D       *depfunc.DepFunc
	assumed map[depfunc.Pair]bool
	weight  int
}

// Bottom returns the globally most specific hypothesis d⊥ with no
// assumptions.
func Bottom(ts *depfunc.TaskSet) *Hypothesis {
	return &Hypothesis{D: depfunc.Bottom(ts), assumed: map[depfunc.Pair]bool{}}
}

// FromDepFunc wraps an existing dependency function (cloned) in a
// hypothesis with no assumptions.
func FromDepFunc(d *depfunc.DepFunc) *Hypothesis {
	return &Hypothesis{D: d.Clone(), assumed: map[depfunc.Pair]bool{}, weight: d.Weight()}
}

// Weight returns the cached Definition-8 weight of the hypothesis.
func (h *Hypothesis) Weight() int { return h.weight }

// Assumed reports whether the ordered pair has already been assumed
// for a message in the current period.
func (h *Hypothesis) Assumed(p depfunc.Pair) bool { return h.assumed[p] }

// AssumptionCount returns the number of pairs assumed this period.
func (h *Hypothesis) AssumptionCount() int { return len(h.assumed) }

// Assume returns a new hypothesis extending h with the assumption that
// the current message was sent on pair p, generalizing the dependency
// function minimally: the forward entry (s,r) is joined with fwd and
// the backward entry (r,s) with bwd. The stamp values are chosen by
// the caller (→/→? and ←/←? depending on execution history). It
// returns nil if p was already assumed this period (condition 3 of the
// generalization step). h is unchanged.
func (h *Hypothesis) Assume(p depfunc.Pair, fwd, bwd lattice.Value) *Hypothesis {
	if h.assumed[p] {
		return nil
	}
	child := &Hypothesis{
		D:       h.D.Clone(),
		assumed: make(map[depfunc.Pair]bool, len(h.assumed)+1),
		weight:  h.weight,
	}
	for k := range h.assumed {
		child.assumed[k] = true
	}
	child.assumed[p] = true
	child.joinEntry(p.S, p.R, fwd)
	child.joinEntry(p.R, p.S, bwd)
	return child
}

func (h *Hypothesis) joinEntry(i, j int, v lattice.Value) {
	old := h.D.At(i, j)
	if h.D.JoinAt(i, j, v) {
		h.weight += lattice.Distance(h.D.At(i, j)) - lattice.Distance(old)
	}
}

// ClearAssumptions drops the per-period assumption set (the first step
// of the paper's end-of-period post-processing).
func (h *Hypothesis) ClearAssumptions() {
	if len(h.assumed) > 0 {
		h.assumed = map[depfunc.Pair]bool{}
	}
}

// RetainAssumptions drops every assumed pair for which keep returns
// false. The learner uses this to forget assumptions about pairs that
// cannot occur in any remaining message's candidate set this period:
// the at-most-one-message-per-pair rule can never consult them again,
// so forgetting them preserves exactness while letting hypotheses that
// differ only in dead assumptions deduplicate.
func (h *Hypothesis) RetainAssumptions(keep func(depfunc.Pair) bool) {
	for p := range h.assumed {
		if !keep(p) {
			delete(h.assumed, p)
		}
	}
}

// Relax applies the end-of-period conditional-dependency test: every
// unconditional entry (→, ←, ↔) whose implication is violated by the
// period's executed-task set is generalized minimally to its
// conditional counterpart. It returns the number of relaxed entries.
func (h *Hypothesis) Relax(executed func(task int) bool) int {
	n := h.D.RelaxViolations(executed)
	if n > 0 {
		h.weight = h.D.Weight()
	}
	return n
}

// Merge returns the least-upper-bound merge of h and other used by the
// bounded heuristic: the dependency functions are joined pointwise and
// the assumption sets intersected. Intersection (rather than union)
// keeps the merge sound: a pair assumed by only one lineage must stay
// assumable, since the other lineage's branches may still need it for
// a later message; re-assuming a pair can only repeat a join, never
// under-generalize. Both operands are unchanged.
func (h *Hypothesis) Merge(other *Hypothesis) *Hypothesis {
	d := h.D.Join(other.D)
	assumed := map[depfunc.Pair]bool{}
	for k := range h.assumed {
		if other.assumed[k] {
			assumed[k] = true
		}
	}
	return &Hypothesis{D: d, assumed: assumed, weight: d.Weight()}
}

// Clone returns a deep copy.
func (h *Hypothesis) Clone() *Hypothesis {
	cp := &Hypothesis{D: h.D.Clone(), assumed: make(map[depfunc.Pair]bool, len(h.assumed)), weight: h.weight}
	for k := range h.assumed {
		cp.assumed[k] = true
	}
	return cp
}

// Key returns a canonical encoding of the dependency function together
// with the assumption set, used to deduplicate hypotheses that would
// behave identically for the remainder of the period.
func (h *Hypothesis) Key() string {
	if len(h.assumed) == 0 {
		return h.D.Key()
	}
	pairs := make([]depfunc.Pair, 0, len(h.assumed))
	for p := range h.assumed {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].S != pairs[b].S {
			return pairs[a].S < pairs[b].S
		}
		return pairs[a].R < pairs[b].R
	})
	var sb strings.Builder
	sb.WriteString(h.D.Key())
	for _, p := range pairs {
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(p.S))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(p.R))
	}
	return sb.String()
}
