// Package obs is the observability layer of the pipeline: a
// dependency-free metrics registry, a structured run-trace (the
// Observer interface with typed events), and helpers for runtime
// profiling (net/http/pprof plus a /metrics endpoint).
//
// The learner is the exponential heart of the reproduced paper
// (Section 3, Theorem 1), and its behaviour — hypothesis-set growth,
// candidate fan-out per message, merge pressure under a bound — is
// exactly what must be measured to scale it. Package obs makes a
// learning run observable without perturbing it: every emit site is
// guarded by a nil check, so the nil-observer hot path is
// allocation-free (benchmark-verified in internal/learner).
//
// # Event schema
//
// An Observer receives typed events. Each event type has a stable
// kind string used by the JSONL sink (one JSON object per line, the
// kind in the "event" field):
//
//	period_start        {period, messages}
//	message_processed   {period, index, id, candidates, live}
//	hypothesis_spawned  {period, index, weight}
//	hypothesis_merged   {period, index, weight_a, weight_b, weight_merged}
//	hypothesis_pruned   {period, reason, weight}
//	period_end          {period, live, dropped, weight_min, weight_max, relaxations}
//	run_end             {periods, messages, final, peak, merges, elapsed_ns}
//	pipeline            {stage, name, value, label?}
//	provenance          {period, index, msg?, sender?, receiver?, task1, task2, from, to, action}
//	span                {phase, elapsed_ns}
//
// The learner emits the first seven; the surrounding pipeline stages
// (trace parsing, simulation, reachability, mode analysis) emit
// generic pipeline events such as stage "trace" / name "events_read".
// provenance events carry the derivation chain of the winning
// hypothesis when provenance recording is enabled on the learner
// (one event per generalization step, action "assume", "relax" or
// "merge"). span events time the pipeline phases (simulate,
// trace_parse, candidates, generalize, postprocess, verify — see
// StartSpan), so CPU profiles can be cross-referenced with logical
// phases.
//
// # Metric names
//
// NewMetricsObserver bridges events into a Registry under these
// names (histogram buckets in parentheses):
//
//	modelgen_learner_periods_total              counter
//	modelgen_learner_messages_total             counter
//	modelgen_learner_hypotheses_spawned_total   counter
//	modelgen_learner_hypotheses_pruned_total    counter
//	modelgen_learner_merges_total               counter
//	modelgen_learner_relaxations_total          counter
//	modelgen_learner_live_hypotheses            gauge (last period_end)
//	modelgen_learner_peak_hypotheses            gauge (maximum seen)
//	modelgen_learner_candidates_per_message     histogram (1,2,3,4,6,8,12,16,24,32,48,64)
//	modelgen_learner_live_per_period            histogram (1,2,4,8,16,32,64,128,256)
//	modelgen_learner_runs_total                 counter
//	modelgen_learner_run_seconds                histogram (5ms..10s, doubling)
//	modelgen_learner_provenance_steps_total     counter, one per provenance event
//	modelgen_<stage>_<name>_total               counter, one per pipeline event
//	modelgen_phase_<phase>_seconds              histogram (100µs..10s), one per span phase
//
// modelgen_learner_candidates_per_message aggregates the per-message
// candidate fan-out |A_m| — the driver of the O(m·b·t²) term of the
// heuristic's runtime — which is otherwise only visible per-event.
//
// RuntimeMetrics additionally publishes go_goroutines,
// go_heap_alloc_bytes and go_gc_runs_total, refreshed on every
// scrape.
//
// # Exposition
//
// Registry.WritePrometheus emits the Prometheus text format,
// Registry.WriteJSON a JSON object keyed by metric name.
// Registry.Snapshot returns a point-in-time copy with a Diff method,
// the form used by tests and by before/after comparisons.
// StartDebugServer serves /metrics plus the standard /debug/pprof/
// endpoints for CPU, heap and goroutine profiling of long runs.
package obs
