package depfunc

import (
	"fmt"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// EntryDiff describes one differing entry between two dependency
// functions over the same task set.
type EntryDiff struct {
	From, To string
	A, B     lattice.Value
}

// String renders the diff in the form "d(a,b): -> vs ->?".
func (e EntryDiff) String() string {
	return fmt.Sprintf("d(%s,%s): %s vs %s", e.From, e.To, e.A, e.B)
}

// Diff lists the entries where a and b differ, in row-major task
// order. It panics if the task sets differ — diffing functions over
// different systems is a programming error.
func Diff(a, b *DepFunc) []EntryDiff {
	if !a.TaskSet().Equal(b.TaskSet()) {
		panic("depfunc: Diff over different task sets")
	}
	ts := a.TaskSet()
	var out []EntryDiff
	a.Entries(func(i, j int, v lattice.Value) {
		if w := b.At(i, j); w != v {
			out = append(out, EntryDiff{From: ts.Name(i), To: ts.Name(j), A: v, B: w})
		}
	})
	return out
}

// Histogram counts the off-diagonal entries of each lattice value.
func (d *DepFunc) Histogram() map[lattice.Value]int {
	h := map[lattice.Value]int{}
	d.Entries(func(_, _ int, v lattice.Value) { h[v]++ })
	return h
}

// Summary renders a one-line value histogram, e.g.
// "||:4 ->:3 <-:3 ->?:2 <-?:2".
func (d *DepFunc) Summary() string {
	h := d.Histogram()
	var parts []string
	for _, v := range lattice.Values() {
		if n := h[v]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", v, n))
		}
	}
	return strings.Join(parts, " ")
}
