package obs

import (
	"bufio"
	"os"
)

// FileSink is a JSONLSink writing the event stream to a buffered
// file — the shape every -events CLI flag wants. Close flushes the
// buffer and closes the file; callers must route every exit path
// (including fatal ones) through Close, or the tail of the stream is
// lost exactly when it matters most (the events leading up to the
// failure are the diagnostic).
type FileSink struct {
	*JSONLSink
	f  *os.File
	bw *bufio.Writer
}

// OpenFileSink creates (truncating) the file at path and returns a
// FileSink streaming JSONL events into it.
func OpenFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 64*1024)
	return &FileSink{JSONLSink: NewJSONLSink(bw), f: f, bw: bw}, nil
}

// Path returns the destination file path.
func (s *FileSink) Path() string { return s.f.Name() }

// Close flushes buffered events and closes the file. The first error
// wins: a sticky sink error (failed marshal/write) surfaces before
// flush and close errors.
func (s *FileSink) Close() error {
	err := s.Err()
	if e := s.bw.Flush(); err == nil {
		err = e
	}
	if e := s.f.Close(); err == nil {
		err = e
	}
	return err
}
