// Command bbtrace simulates a built-in (or random) design model on the
// OSEK/CAN substrates and writes the observable bus trace in the text
// format consumed by bblearn.
//
// Usage:
//
//	bbtrace -model gmstyle -periods 27 -seed 7 -out trace.txt
//	bbtrace -model figure1 -dot model.dot
//	bbtrace -model random -layers 3 -width 3 -seed 11
//	bbtrace -paper                     # the paper's Figure 2 worked-example trace
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	modelgen "github.com/blackbox-rt/modelgen"
	"github.com/blackbox-rt/modelgen/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbtrace: ")
	var (
		modelName = flag.String("model", "gmstyle", "design model: figure1, gmstyle, gmstyle-lite or random")
		periods   = flag.Int("periods", 27, "number of periods to simulate")
		seed      = flag.Int64("seed", 7, "random seed (disjunction choices and execution jitter)")
		bitRate   = flag.Int64("bitrate", 500_000, "CAN bus bit rate in bit/s")
		out       = flag.String("out", "", "trace output file (default stdout)")
		dotFile   = flag.String("dot", "", "also write the design model as DOT to this file")
		stats     = flag.Bool("stats", false, "print trace statistics to stderr")
		layers    = flag.Int("layers", 3, "random model: DAG layers")
		width     = flag.Int("width", 3, "random model: tasks per layer")
		paper     = flag.Bool("paper", false, "write the paper's Figure 2 worked-example trace (no simulation)")
	)
	flag.Parse()

	if *paper {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := modelgen.WriteTrace(w, modelgen.PaperTrace()); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		return
	}

	m, err := lookupModel(*modelName, *layers, *width, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(m.DOT()), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *dotFile, err)
		}
	}
	simOut, err := modelgen.Simulate(m, modelgen.SimOptions{
		Periods: *periods,
		Seed:    *seed,
		BitRate: *bitRate,
	})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := modelgen.WriteTrace(w, simOut.Trace); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	if *stats {
		s := simOut.Trace.Stats()
		fmt.Fprintf(os.Stderr, "tasks=%d periods=%d executions=%d messages=%d event-pairs=%d\n",
			len(simOut.Trace.Tasks), s.Periods, s.TaskExecutions, s.Messages, s.EventPairs)
	}
}

func lookupModel(name string, layers, width int, seed int64) (*modelgen.Model, error) {
	switch name {
	case "figure1":
		return modelgen.Figure1Model(), nil
	case "gmstyle":
		return modelgen.GMStyleModel(), nil
	case "gmstyle-lite":
		return modelgen.GMStyleLiteModel(), nil
	case "random":
		opt := model.DefaultRandomOptions()
		opt.Layers = layers
		opt.TasksPerLayer = width
		return model.RandomModel(rand.New(rand.NewSource(seed)), opt), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want figure1, gmstyle, gmstyle-lite or random)", name)
	}
}
