package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/can"
	"github.com/blackbox-rt/modelgen/internal/conformance"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// client wraps the raw HTTP calls the tests make against a test
// server.
type client struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newClient(t *testing.T, ts *httptest.Server) *client {
	return &client{t: t, base: ts.URL, c: ts.Client()}
}

func (c *client) do(method, path string, body []byte) (*http.Response, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.c.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, out
}

func (c *client) createStream(req CreateStreamRequest) StreamInfo {
	c.t.Helper()
	body, _ := json.Marshal(req)
	resp, out := c.do("POST", "/v1/streams", body)
	if resp.StatusCode != http.StatusCreated {
		c.t.Fatalf("create stream: %d %s", resp.StatusCode, out)
	}
	var info StreamInfo
	if err := json.Unmarshal(out, &info); err != nil {
		c.t.Fatal(err)
	}
	return info
}

func (c *client) feed(id string, lines string) IngestResponse {
	c.t.Helper()
	resp, out := c.do("POST", "/v1/streams/"+id+"/events", []byte(lines))
	if resp.StatusCode != http.StatusAccepted {
		c.t.Fatalf("feed %s: %d %s", id, resp.StatusCode, out)
	}
	var ir IngestResponse
	if err := json.Unmarshal(out, &ir); err != nil {
		c.t.Fatal(err)
	}
	return ir
}

func (c *client) model(id string) ModelResponse {
	c.t.Helper()
	resp, out := c.do("GET", "/v1/streams/"+id+"/model", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("model %s: %d %s", id, resp.StatusCode, out)
	}
	var m ModelResponse
	if err := json.Unmarshal(out, &m); err != nil {
		c.t.Fatal(err)
	}
	return m
}

func (c *client) stats(id string) StatsResponse {
	c.t.Helper()
	resp, out := c.do("GET", "/v1/streams/"+id+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("stats %s: %d %s", id, resp.StatusCode, out)
	}
	var sr StatsResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		c.t.Fatal(err)
	}
	return sr
}

// batchTables runs the batch learner over the trace and returns the
// hypothesis tables in result order — the pinned derivation served
// models are compared against.
func batchTables(t *testing.T, tr *trace.Trace, opt learner.Options) ([]string, string) {
	t.Helper()
	res, err := learner.Learn(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	var tables []string
	for _, d := range res.Hypotheses {
		tables = append(tables, d.Table())
	}
	return tables, res.LUB.Table()
}

func assertModelEquals(t *testing.T, m ModelResponse, tables []string, lub string) {
	t.Helper()
	if len(m.Hypotheses) != len(tables) {
		t.Fatalf("served %d hypotheses, batch %d", len(m.Hypotheses), len(tables))
	}
	for i := range tables {
		if m.Hypotheses[i] != tables[i] {
			t.Errorf("served hypothesis %d differs from batch:\n%s\nvs\n%s", i, m.Hypotheses[i], tables[i])
		}
	}
	if m.LUB != lub {
		t.Errorf("served LUB differs from batch:\n%s\nvs\n%s", m.LUB, lub)
	}
}

// TestLifecycleFigure2 is the full happy path: create a stream, feed
// the paper's Figure-2 trace line by line, read a model identical to
// the batch derivation, checkpoint over HTTP, restart the server from
// the checkpoint directory, and read the identical model again.
func TestLifecycleFigure2(t *testing.T) {
	dir := t.TempDir()
	sv := New(Config{CheckpointDir: dir})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	tr := trace.PaperFigure2()
	info := c.createStream(CreateStreamRequest{ID: "fig2", Tasks: tr.Tasks})
	if info.ID != "fig2" {
		t.Fatalf("created stream %q", info.ID)
	}

	// One request per line, plus a final "period" to close the last
	// period (the text format has no trailing delimiter).
	lines := strings.Split(strings.TrimRight(tr.String(), "\n"), "\n")
	lines = append(lines, "period")
	periods := 0
	for _, line := range lines {
		periods += c.feed("fig2", line).Periods
	}
	if periods != len(tr.Periods) {
		t.Fatalf("feed cut %d periods, trace has %d", periods, len(tr.Periods))
	}

	tables, lub := batchTables(t, tr, learner.Options{})
	assertModelEquals(t, c.model("fig2"), tables, lub)

	st := c.stats("fig2")
	if st.PeriodsLearned != len(tr.Periods) || st.Err != "" || st.Partial {
		t.Fatalf("stats after feed: %+v", st)
	}

	resp, out := c.do("POST", "/v1/streams/fig2/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, out)
	}

	// A second server process over the same checkpoint directory
	// serves the identical model.
	sv2 := New(Config{CheckpointDir: dir})
	if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)
	assertModelEquals(t, c2.model("fig2"), tables, lub)
	if st := c2.stats("fig2"); st.PeriodsLearned != len(tr.Periods) {
		t.Fatalf("restored stream learned %d periods, want %d", st.PeriodsLearned, len(tr.Periods))
	}

	// DOT export of the restored model renders the LUB graph.
	resp, out = c2.do("GET", "/v1/streams/fig2/model?format=dot", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), "digraph") {
		t.Fatalf("dot export: %d %q", resp.StatusCode, out)
	}

	// DELETE drains and removes the stream and its checkpoint.
	resp, _ = c2.do("DELETE", "/v1/streams/fig2", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp, _ = c2.do("GET", "/v1/streams/fig2/model", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("model after delete: %d", resp.StatusCode)
	}
	sv3 := New(Config{CheckpointDir: dir})
	if n, err := sv3.RestoreFromDir(); err != nil || n != 0 {
		t.Fatalf("restore after delete: n=%d err=%v", n, err)
	}
}

// TestBackpressureShedsAtomically: a batch that does not fit in the
// ingest queue is rejected with 429 + Retry-After and leaves NO state
// behind — resending the identical batch in smaller pieces converges
// to exactly the batch-learner model.
func TestBackpressureShedsAtomically(t *testing.T) {
	sv := New(Config{QueueDepth: 2})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	tr := trace.PaperFigure2()
	c.createStream(CreateStreamRequest{ID: "bp", Tasks: tr.Tasks})

	// Ten copies of the trace in one request: at least 30 periods
	// against 2 queue slots — guaranteed shed, however fast the
	// consumer drains.
	var big strings.Builder
	for i := 0; i < 10; i++ {
		big.WriteString(tr.String())
		big.WriteString("period\n")
	}
	resp, out := c.do("POST", "/v1/streams/bp/events", []byte(big.String()))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: %d %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if st := c.stats("bp"); st.Shed != 1 || st.PeriodsCut != 0 || st.Partial {
		t.Fatalf("after shed: %+v", st)
	}

	// The identical content, drip-fed line by line, is accepted in
	// full: the shed left no parser residue to collide with.
	for _, line := range strings.Split(strings.TrimRight(big.String(), "\n"), "\n") {
		for {
			resp, _ := c.do("POST", "/v1/streams/bp/events", []byte(line))
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("drip feed: %d", resp.StatusCode)
			}
			time.Sleep(time.Millisecond)
		}
	}
	repeated := trace.New(tr.Tasks)
	for i := 0; i < 10; i++ {
		for _, p := range tr.Periods {
			cp := p.Clone()
			cp.Index = len(repeated.Periods)
			repeated.Periods = append(repeated.Periods, cp)
		}
	}
	tables, lub := batchTables(t, repeated, learner.Options{})
	assertModelEquals(t, c.model("bp"), tables, lub)
}

// TestConcurrentStreams: 16 streams fed concurrently (each by its own
// producer goroutine, in randomized-size chunks) all converge to the
// batch model. Run under -race this is the no-shared-learner-state
// proof; the goroutine count also returns to baseline after shutdown,
// proving per-stream owners do not leak.
func TestConcurrentStreams(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	sv := New(Config{Registry: reg, QueueDepth: 64})
	ts := httptest.NewServer(sv.Handler())
	c := newClient(t, ts)

	tr := trace.PaperFigure2()
	lines := strings.Split(strings.TrimRight(tr.String(), "\n"), "\n")
	lines = append(lines, "period")
	tables, lub := batchTables(t, tr, learner.Options{Bound: 4})

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%02d", i)
		c.createStream(CreateStreamRequest{ID: id, Tasks: tr.Tasks,
			Options: LearnOptions{Bound: 4}})
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			// Chunk size varies per stream so the interleavings differ.
			chunk := 1 + i%5
			for at := 0; at < len(lines); at += chunk {
				end := at + chunk
				if end > len(lines) {
					end = len(lines)
				}
				body := strings.Join(lines[at:end], "\n")
				for {
					resp, out := c.do("POST", "/v1/streams/"+id+"/events", []byte(body))
					if resp.StatusCode == http.StatusAccepted {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("stream %s: %d %s", id, resp.StatusCode, out)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(i, id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%02d", i)
		assertModelEquals(t, c.model(id), tables, lub)
	}

	// The metrics endpoint exposes the per-stream series.
	resp, out := c.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if !strings.Contains(string(out), `serve_periods_total{stream="c00"}`) {
		t.Error("metrics missing per-stream periods series")
	}
	if !strings.Contains(string(out), "serve_streams 16") {
		t.Error("metrics missing streams gauge")
	}

	// Shutdown drains every owner; the goroutine count returns to the
	// pre-server baseline (allowing the httptest teardown a moment).
	ts.Close()
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestCandumpMixedStream: a stream created with a bit rate and a
// period grid accepts interleaved text task events and raw candump
// frames, cuts periods on the grid, and learns the same model as the
// batch learner over the equivalent hand-built trace.
func TestCandumpMixedStream(t *testing.T) {
	sv := New(Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	const bitRate = 500_000
	c.createStream(CreateStreamRequest{
		ID: "canmix", Tasks: []string{"t1", "t2"},
		BitRate: bitRate, PeriodUS: 1000,
	})

	// Three grid periods: t1 runs, sends frame 0x123, t2 runs.
	var feed strings.Builder
	conv, err := can.NewStreamConverter(bitRate)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuilder([]string{"t1", "t2"})
	for k := int64(0); k < 3; k++ {
		base := k * 1000
		fmt.Fprintf(&feed, "exec t1 %d %d\n", base, base+100)
		frame := fmt.Sprintf("(0.%06d) can0 123#AA", base+150)
		feed.WriteString(frame + "\n")
		evs, err := conv.Line(frame)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&feed, "exec t2 %d %d\n", base+400, base+500)
		b.StartPeriod()
		b.Exec("t1", base, base+100)
		b.Exec("t2", base+400, base+500)
		b.Msg(evs[0].Name, evs[0].Time, evs[1].Time)
	}
	feed.WriteString("period\n")

	ir := c.feed("canmix", feed.String())
	if ir.Periods != 3 {
		t.Fatalf("grid cut %d periods, want 3", ir.Periods)
	}
	want := b.MustBuild()
	tables, lub := batchTables(t, want, learner.Options{})
	assertModelEquals(t, c.model("canmix"), tables, lub)
}

// TestDeadStreamReports409: a period the learner cannot explain kills
// the stream's learner; the API reports the sticky error on stats and
// answers 409 on model reads and further feeds, while other streams
// are unaffected.
func TestDeadStreamReports409(t *testing.T) {
	sv := New(Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	c.createStream(CreateStreamRequest{ID: "doomed", Tasks: []string{"t1", "t2"}})
	c.createStream(CreateStreamRequest{ID: "healthy", Tasks: []string{"t1", "t2"}})

	// A message with no surrounding executions has no candidate
	// sender/receiver pairs: unexplainable, the hypothesis set empties.
	c.feed("doomed", "msg m1 0 1\nperiod\n")
	st := c.stats("doomed")
	if st.Err == "" {
		t.Fatal("dead stream reports no error")
	}
	if resp, _ := c.do("GET", "/v1/streams/doomed/model", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("model on dead stream: %d", resp.StatusCode)
	}
	if resp, _ := c.do("POST", "/v1/streams/doomed/events", []byte("exec t1 0 5\nperiod")); resp.StatusCode != http.StatusConflict {
		t.Fatalf("feed on dead stream: %d", resp.StatusCode)
	}

	c.feed("healthy", "exec t1 0 5\nmsg m1 6 7\nexec t2 9 12\nperiod\n")
	if resp, _ := c.do("GET", "/v1/streams/healthy/model", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy stream model: %d", resp.StatusCode)
	}
}

// TestAPIRejections covers the 4xx surface: unknown streams, bad
// bodies, duplicate and invalid IDs, parse errors, and
// ErrVerifyUnavailable surfacing as 409.
func TestAPIRejections(t *testing.T) {
	sv := New(Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	for _, p := range []string{"/v1/streams/none/model", "/v1/streams/none/stats"} {
		if resp, _ := c.do("GET", p, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", p, resp.StatusCode)
		}
	}
	if resp, _ := c.do("POST", "/v1/streams/none/events", []byte("period")); resp.StatusCode != http.StatusNotFound {
		t.Error("events on unknown stream accepted")
	}
	if resp, _ := c.do("DELETE", "/v1/streams/none", nil); resp.StatusCode != http.StatusNotFound {
		t.Error("delete on unknown stream accepted")
	}
	if resp, _ := c.do("POST", "/v1/streams", []byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Error("malformed create body accepted")
	}
	body, _ := json.Marshal(CreateStreamRequest{ID: "bad id!", Tasks: []string{"t1"}})
	if resp, _ := c.do("POST", "/v1/streams", body); resp.StatusCode != http.StatusBadRequest {
		t.Error("invalid stream id accepted")
	}
	body, _ = json.Marshal(CreateStreamRequest{ID: "x", Tasks: nil})
	if resp, _ := c.do("POST", "/v1/streams", body); resp.StatusCode != http.StatusBadRequest {
		t.Error("empty task set accepted")
	}

	c.createStream(CreateStreamRequest{ID: "dup", Tasks: []string{"t1"}})
	body, _ = json.Marshal(CreateStreamRequest{ID: "dup", Tasks: []string{"t1"}})
	if resp, _ := c.do("POST", "/v1/streams", body); resp.StatusCode != http.StatusConflict {
		t.Error("duplicate stream id accepted")
	}

	// Parse errors are 400 and, thanks to clone-and-commit, leave the
	// stream fully usable.
	if resp, _ := c.do("POST", "/v1/streams/dup/events", []byte("exec t9 0 5")); resp.StatusCode != http.StatusBadRequest {
		t.Error("unknown task in feed accepted")
	}
	c.feed("dup", "exec t1 0 5\nperiod\n")
	if st := c.stats("dup"); st.PeriodsLearned != 1 {
		t.Errorf("stream unusable after rejected batch: %+v", st)
	}

	// Candump lines need a bit rate.
	if resp, _ := c.do("POST", "/v1/streams/dup/events", []byte("(1.0) can0 123#")); resp.StatusCode != http.StatusBadRequest {
		t.Error("candump line accepted on a text-only stream")
	}

	// VerifyResults without retained periods: Result's
	// ErrVerifyUnavailable sentinel becomes a 409, not a silent skip.
	c.createStream(CreateStreamRequest{ID: "verify", Tasks: []string{"t1", "t2"},
		Options: LearnOptions{VerifyResults: true}})
	c.feed("verify", "exec t1 0 5\nmsg m1 6 7\nexec t2 9 12\nperiod\n")
	if resp, _ := c.do("GET", "/v1/streams/verify/model", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("verify-without-retention model read: %d, want 409", resp.StatusCode)
	}
}

// TestCorpusCheckpointRestart is the acceptance criterion made
// executable: for every golden-corpus entry, feeding half the trace,
// checkpointing, restarting the server from disk and feeding the rest
// yields exactly the model of an uninterrupted batch run.
func TestCorpusCheckpointRestart(t *testing.T) {
	corpus, err := conformance.LoadCorpus("../../testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corpus.Entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			opt := LearnOptions{
				Bound:          8,
				SenderWindow:   e.SenderWindow,
				ReceiverWindow: e.ReceiverWindow,
				MaxSenders:     e.MaxSenders,
				MaxReceivers:   e.MaxReceivers,
			}
			tables, lub := batchTables(t, e.Trace, opt.options())

			dir := t.TempDir()
			sv := New(Config{CheckpointDir: dir})
			ts := httptest.NewServer(sv.Handler())
			c := newClient(t, ts)
			c.createStream(CreateStreamRequest{ID: e.Name, Tasks: e.Trace.Tasks, Options: opt})

			lines := strings.Split(strings.TrimRight(e.Trace.String(), "\n"), "\n")
			lines = append(lines, "period")
			// Split the feed at a line boundary near the middle; the
			// server cuts periods wherever they happen to fall.
			half := len(lines) / 2
			c.feed(e.Name, strings.Join(lines[:half], "\n"))
			// Periods may straddle the split: checkpoint whatever is
			// complete, remember where the open period started, and
			// replay from there after the restart (the documented
			// client contract for mid-period restarts).
			var replayFrom int
			st := c.stats(e.Name)
			if st.Partial {
				replayFrom = lastPeriodStart(lines[:half])
			} else {
				replayFrom = half
			}
			resp, out := c.do("POST", "/v1/streams/"+e.Name+"/checkpoint", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("checkpoint: %d %s", resp.StatusCode, out)
			}
			ts.Close()

			sv2 := New(Config{CheckpointDir: dir})
			if n, err := sv2.RestoreFromDir(); err != nil || n != 1 {
				t.Fatalf("restore: n=%d err=%v", n, err)
			}
			ts2 := httptest.NewServer(sv2.Handler())
			defer ts2.Close()
			c2 := newClient(t, ts2)
			c2.feed(e.Name, strings.Join(lines[replayFrom:], "\n"))
			assertModelEquals(t, c2.model(e.Name), tables, lub)
		})
	}
}

// lastPeriodStart returns the index of the first line after the last
// "period" directive (or after the header), i.e. where the open
// period's lines begin.
func lastPeriodStart(lines []string) int {
	at := 0
	for i, line := range lines {
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) > 0 && (f[0] == "period" || f[0] == "tasks") {
			at = i + 1
		}
	}
	return at
}
