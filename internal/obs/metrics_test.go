package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c_total", "") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	g.SetMax(3) // below current: no effect
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge after SetMax = %d, want 11", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 16 {
		t.Errorf("sum = %g, want 16", h.Sum())
	}
	snap := r.Snapshot()
	m := snap["h"]
	// Cumulative: <=1 → 2, <=2 → 4, <=4 → 5 (the 8 lands in +Inf).
	want := []Bucket{{LE: 1, Count: 2}, {LE: 2, Count: 4}, {LE: 4, Count: 5}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", m.Buckets, want)
	}
	for i := range want {
		if m.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, m.Buckets[i], want[i])
		}
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help text").Add(3)
	r.Gauge("m_gauge", "").Set(-2)
	r.Histogram("m_hist", "", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP m_total help text",
		"# TYPE m_total counter",
		"m_total 3",
		"# TYPE m_gauge gauge",
		"m_gauge -2",
		"# TYPE m_hist histogram",
		`m_hist_bucket{le="1"} 0`,
		`m_hist_bucket{le="2"} 1`,
		`m_hist_bucket{le="+Inf"} 1`,
		"m_hist_sum 1.5",
		"m_hist_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("b", "", []float64{10}).Observe(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output is not parseable: %v", err)
	}
	if back.Value("a_total") != 2 || back.HistCount("b") != 1 {
		t.Errorf("round trip lost values: %+v", back)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	c.Add(5)
	g.Set(10)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(3)
	g.Set(4)
	h.Observe(2)
	diff := r.Snapshot().Diff(before)
	if diff.Value("c_total") != 3 {
		t.Errorf("counter diff = %d, want 3", diff.Value("c_total"))
	}
	if diff.Value("g") != 4 {
		t.Errorf("gauge in diff = %d, want current value 4", diff.Value("g"))
	}
	if diff.HistCount("h") != 1 || diff["h"].Sum != 2 {
		t.Errorf("histogram diff = %+v, want count 1 sum 2", diff["h"])
	}
	if diff["h"].Buckets[0].Count != 0 {
		t.Errorf("bucket diff = %d, want 0 (second observation exceeded the bound)", diff["h"].Buckets[0].Count)
	}
}

func TestScrapeHookAndRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RuntimeMetrics(r)
	snap := r.Snapshot()
	if snap.Value("go_goroutines") < 1 {
		t.Errorf("go_goroutines = %d, want >= 1", snap.Value("go_goroutines"))
	}
	if snap.Value("go_heap_alloc_bytes") <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", snap.Value("go_heap_alloc_bytes"))
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{50})
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1)
				g.SetMax(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("histogram count=%d sum=%g, want 8000/8000", h.Count(), h.Sum())
	}
	if g.Value() != 999 {
		t.Errorf("gauge = %d, want 999", g.Value())
	}
}
