// Package report renders aligned text and Markdown tables for the
// experiment tooling (bbbench, bbexperiments, bblearn -report).
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells under a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// AddRow appends a row; values are rendered with %v. Rows shorter than
// the header are padded with empty cells, longer ones are truncated.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders the table with space-aligned columns.
func (t *Table) Text() string {
	w := t.widths()
	var sb strings.Builder
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, w[i])
		}
		sb.WriteString(strings.TrimRight(strings.Join(parts, "  "), " "))
		sb.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = escapeMarkdown(c)
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return sb.String()
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func escapeMarkdown(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
