package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/blackbox-rt/modelgen/internal/cluster"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// ClusterConfig configures the cluster scenario: an in-process N-node
// bbserved cluster behind a bbgate router, a fleet of streams fed
// through the gateway, and a batch of forced migrations mid-run. The
// SLO gate must hold across the migrations (the gateway pauses a
// migrating stream's requests rather than failing them), and every
// stream's final model must match a single-node reference run.
type ClusterConfig struct {
	// Dir is the root for the per-node state stores; empty runs the
	// nodes in memory.
	Dir string
	// Nodes is the cluster size (default 3).
	Nodes int
	// Streams is the fleet size (default 200).
	Streams int
	// Periods is the period count fed per stream, one batch each
	// (default 6).
	Periods int
	// Migrations is how many streams are forcibly migrated to another
	// node once half their periods are in flight (default 10).
	Migrations int
	// Workers bounds the concurrent feeder goroutines (default 16).
	Workers int
	// QueueDepth sets each node's per-stream ingest queue.
	QueueDepth int
	// Seed pins the placement ring.
	Seed uint64
	// SLO holds the thresholds evaluated into the report
	// (P99LatencySeconds and MinAvailability apply here).
	SLO Thresholds
}

// ClusterReport is the outcome of a cluster scenario.
type ClusterReport struct {
	Nodes      int `json:"nodes"`
	Streams    int `json:"streams"`
	Periods    int `json:"periods_per_stream"`
	Migrations int `json:"migrations"`
	// MigrationFailures counts forced migrations that returned an
	// error; the gate pins it at zero.
	MigrationFailures int `json:"migration_failures"`
	// Requests counts ingest POSTs, Retries the transient 429/503
	// re-sends within them, Errors the batches that never got in.
	Requests int64 `json:"requests"`
	Retries  int64 `json:"retries"`
	Errors   int64 `json:"errors"`
	// Availability is accepted / (accepted + errors).
	Availability float64 `json:"availability"`
	// Ingest summarizes per-request gateway POST latency; P99 is the
	// value the SLO gate reads.
	Ingest Latency `json:"ingest"`
	P99    float64 `json:"p99_seconds"`
	// Spread is the final stream count per node.
	Spread map[string]int `json:"spread"`
	// Equivalence is the number of streams whose final model was
	// verified bit-identical to the single-node reference.
	Equivalence int      `json:"equivalence_checked"`
	Violations  []string `json:"violations,omitempty"`
}

// Violated reports whether the scenario broke its gate.
func (r ClusterReport) Violated() bool { return len(r.Violations) > 0 }

// Format renders the human-readable cluster report.
func (r ClusterReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bbload cluster report: %d nodes, %d streams × %d periods, %d forced migrations\n",
		r.Nodes, r.Streams, r.Periods, r.Migrations)
	fmt.Fprintf(&sb, "requests %d (retries %d, errors %d)  availability %.4f\n",
		r.Requests, r.Retries, r.Errors, r.Availability)
	fmt.Fprintf(&sb, "ingest: p50 %s p95 %s p99 %s max %s\n",
		fmtSec(r.Ingest.P50), fmtSec(r.Ingest.P95), fmtSec(r.P99), fmtSec(r.Ingest.Max))
	fmt.Fprintf(&sb, "spread: %v  models verified: %d\n", r.Spread, r.Equivalence)
	if len(r.Violations) == 0 {
		sb.WriteString("cluster: ok\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "CLUSTER VIOLATION: %s\n", v)
		}
	}
	return sb.String()
}

func clusterStreamID(i int) string { return fmt.Sprintf("c-%05d", i) }
func clusterNodeName(i int) string { return fmt.Sprintf("node-%d", i) }

// clusterBatch renders period k of the synthetic cluster stream shape.
func clusterBatch(k int) string {
	base := int64(k) * workerPeriodUS
	return fmt.Sprintf("exec t1 %d %d\nmsg m1 %d %d\nexec t2 %d %d\nperiod\n",
		base, base+100, base+150, base+200, base+400, base+500)
}

// clusterPeriod is the trace.Period the batch parses to, for the
// reference learner.
func clusterPeriod(k int) *trace.Period {
	base := int64(k) * workerPeriodUS
	return &trace.Period{
		Index: k + 1,
		Execs: map[string]trace.Interval{
			"t1": {Start: base, End: base + 100},
			"t2": {Start: base + 400, End: base + 500},
		},
		Msgs: []trace.Message{{ID: "m1", Rise: base + 150, Fall: base + 200}},
	}
}

// RunCluster executes the cluster scenario.
func RunCluster(ctx context.Context, cfg ClusterConfig) (ClusterReport, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 200
	}
	if cfg.Periods <= 0 {
		cfg.Periods = 6
	}
	if cfg.Migrations < 0 {
		cfg.Migrations = 0
	} else if cfg.Migrations == 0 {
		cfg.Migrations = 10
	}
	if cfg.Migrations > cfg.Streams {
		cfg.Migrations = cfg.Streams
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	rep := ClusterReport{Nodes: cfg.Nodes, Streams: cfg.Streams, Periods: cfg.Periods,
		Migrations: cfg.Migrations, Spread: map[string]int{}}

	// Boot the cluster: N serve instances wrapped in cluster nodes,
	// all reached in process through the gateway.
	type member struct {
		name string
		sv   *serve.Server
	}
	members := make([]member, cfg.Nodes)
	backends := make([]cluster.Backend, cfg.Nodes)
	for i := range members {
		dir := ""
		if cfg.Dir != "" {
			dir = filepath.Join(cfg.Dir, clusterNodeName(i))
		}
		reg := obs.NewRegistry()
		sv := serve.New(serve.Config{CheckpointDir: dir, QueueDepth: cfg.QueueDepth, Registry: reg})
		node := cluster.NewNode(cluster.NodeConfig{ID: clusterNodeName(i), Server: sv, Registry: reg})
		members[i] = member{name: clusterNodeName(i), sv: sv}
		backends[i] = cluster.Backend{
			Name:   clusterNodeName(i),
			URL:    "http://" + clusterNodeName(i),
			Client: &http.Client{Transport: inprocTransport{h: node.Handler()}},
		}
	}
	defer func() {
		for _, m := range members {
			_ = m.sv.Shutdown(context.Background())
		}
	}()
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Backends:      backends,
		Ring:          cluster.RingConfig{Seed: cfg.Seed},
		Registry:      obs.NewRegistry(),
		MigrationWait: 10 * time.Second,
	})
	if err != nil {
		return rep, err
	}
	tgt := &target{base: "http://bbgate.inproc",
		c: &http.Client{Transport: inprocTransport{h: gw.Handler()}}}

	// Create the fleet through the gateway.
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	errOnce := make(chan error, 1)
	for i := 0; i < cfg.Streams; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			body := fmt.Sprintf(`{"id":%q,"tasks":["t1","t2"]}`, clusterStreamID(i))
			code, _, out, err := tgt.do(ctx, "POST", "/v1/streams", []byte(body), nil)
			if err == nil && code != http.StatusCreated {
				err = fmt.Errorf("status %d: %s", code, out)
			}
			if err != nil {
				select {
				case errOnce <- fmt.Errorf("load: create %s: %w", clusterStreamID(i), err):
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errOnce:
		return rep, err
	default:
	}

	// Feed phase. Each stream sends its periods in order; once half
	// the fleet-wide batches are in, the migration goroutine moves the
	// first Migrations streams to the next node on the ring — while
	// their feeds keep coming, which is the point.
	var (
		sentBatches atomic.Int64
		retries     atomic.Int64
		errs        atomic.Int64
		halfway     = int64(cfg.Streams*cfg.Periods) / 2
		halfwayCh   = make(chan struct{})
		halfwayOnce sync.Once
		latMu       sync.Mutex
		latencies   []float64
		migFailures atomic.Int64
		migDone     = make(chan struct{})
		nodeOf      = func(name string) int { // index of a node name
			var i int
			fmt.Sscanf(name, "node-%d", &i)
			return i
		}
	)
	go func() {
		defer close(migDone)
		select {
		case <-halfwayCh:
		case <-ctx.Done():
			return
		}
		for i := 0; i < cfg.Migrations; i++ {
			id := clusterStreamID(i)
			owner, _ := gw.Owner(id)
			target := clusterNodeName((nodeOf(owner) + 1) % cfg.Nodes)
			if err := gw.Migrate(id, target); err != nil {
				migFailures.Add(1)
			}
		}
	}()
	for i := 0; i < cfg.Streams; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			id := clusterStreamID(i)
			for k := 0; k < cfg.Periods; k++ {
				batch := []byte(clusterBatch(k))
				deadline := time.Now().Add(30 * time.Second)
				for {
					t0 := time.Now()
					code, _, _, err := tgt.do(ctx, "POST", "/v1/streams/"+id+"/events", batch, nil)
					lat := time.Since(t0).Seconds()
					if err == nil && code == http.StatusAccepted {
						latMu.Lock()
						latencies = append(latencies, lat)
						latMu.Unlock()
						if sentBatches.Add(1) >= halfway {
							halfwayOnce.Do(func() { close(halfwayCh) })
						}
						break
					}
					transient := err == nil && (code == http.StatusTooManyRequests ||
						code == http.StatusServiceUnavailable || code == http.StatusBadGateway)
					if !transient || time.Now().After(deadline) {
						errs.Add(1)
						break
					}
					retries.Add(1)
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	// A short fleet never reaches halfway from inside the loop when
	// batches error out; release the migration goroutine regardless.
	halfwayOnce.Do(func() { close(halfwayCh) })
	<-migDone

	rep.Retries = retries.Load()
	rep.Errors = errs.Load()
	rep.Requests = sentBatches.Load() + rep.Errors
	if rep.Requests > 0 {
		rep.Availability = float64(sentBatches.Load()) / float64(rep.Requests)
	}
	latMu.Lock()
	samples := append([]float64(nil), latencies...)
	latMu.Unlock()
	rep.Ingest = summarizeLatency(samples)
	if len(samples) > 0 {
		_, _, p99 := quantiles(samples)
		rep.P99 = p99
	}
	rep.MigrationFailures = int(migFailures.Load())

	// Equivalence oracle: every stream's served model must equal the
	// single-node reference over the same period sequence.
	refTables, refLUB, err := clusterReference(cfg.Periods)
	if err != nil {
		return rep, err
	}
	for i := 0; i < cfg.Streams; i++ {
		id := clusterStreamID(i)
		node, _ := gw.Owner(id)
		rep.Spread[node]++
		code, _, out, err := tgt.do(ctx, "GET", "/v1/streams/"+id+"/model", nil, nil)
		if err != nil || code != http.StatusOK {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cluster: model %s: code %d err %v", id, code, err))
			continue
		}
		var m serve.ModelResponse
		if err := json.Unmarshal(out, &m); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("cluster: model %s: %v", id, err))
			continue
		}
		if !modelMatches(m, refTables, refLUB) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cluster: stream %s model differs from single-node reference", id))
			continue
		}
		rep.Equivalence++
	}
	rep.Violations = append(rep.Violations, evaluateCluster(rep, cfg)...)
	return rep, nil
}

func clusterReference(periods int) ([]string, string, error) {
	o, err := learner.NewOnline([]string{"t1", "t2"}, learner.Options{})
	if err != nil {
		return nil, "", err
	}
	for k := 0; k < periods; k++ {
		if err := o.AddPeriod(clusterPeriod(k)); err != nil {
			return nil, "", err
		}
	}
	res, err := o.Result()
	if err != nil {
		return nil, "", err
	}
	var tables []string
	for _, d := range res.Hypotheses {
		tables = append(tables, d.Table())
	}
	return tables, res.LUB.Table(), nil
}

func modelMatches(m serve.ModelResponse, tables []string, lub string) bool {
	if m.LUB != lub || len(m.Hypotheses) != len(tables) {
		return false
	}
	for i := range tables {
		if m.Hypotheses[i] != tables[i] {
			return false
		}
	}
	return true
}

func evaluateCluster(rep ClusterReport, cfg ClusterConfig) []string {
	var out []string
	if rep.MigrationFailures > 0 {
		out = append(out, fmt.Sprintf("cluster: %d forced migrations failed", rep.MigrationFailures))
	}
	if rep.Equivalence != rep.Streams {
		out = append(out, fmt.Sprintf("cluster: only %d of %d models matched the reference",
			rep.Equivalence, rep.Streams))
	}
	if len(rep.Spread) != cfg.Nodes {
		out = append(out, fmt.Sprintf("cluster: streams landed on %d of %d nodes", len(rep.Spread), cfg.Nodes))
	}
	if t := cfg.SLO.MinAvailability; t > 0 && rep.Availability < t {
		out = append(out, fmt.Sprintf("cluster: availability %.4f below %.4f", rep.Availability, t))
	}
	if t := cfg.SLO.P99LatencySeconds; t > 0 && rep.P99 > t {
		out = append(out, fmt.Sprintf("cluster: ingest p99 %.3fs above %.3fs", rep.P99, t))
	}
	return out
}
