package can

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestStreamConverterMatchesBatch: feeding a log line by line produces
// exactly the event stream ParseLog + LogEvents produce — same
// labels, same per-ID sequence numbers, same edge times.
func TestStreamConverterMatchesBatch(t *testing.T) {
	log := strings.Join([]string{
		"# candump excerpt",
		"(1690000000.000100) can0 123#DEADBEEF",
		"",
		"(1690000000.000900) can0 1A0#",
		"(1690000000.001500) can0 123#00",
		"(1690000000.001500) can0 7FF#0102030405060708",
		"(1690000000.002200) can0 1A0#FF",
	}, "\n")
	recs, err := ParseLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	want, err := LogEvents(recs, 500_000)
	if err != nil {
		t.Fatal(err)
	}

	sc, err := NewStreamConverter(500_000)
	if err != nil {
		t.Fatal(err)
	}
	var got []interface{}
	for _, line := range strings.Split(log, "\n") {
		evs, err := sc.Line(line)
		if err != nil {
			t.Fatalf("Line(%q): %v", line, err)
		}
		for _, ev := range evs {
			got = append(got, ev)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("incremental emitted %d events, batch %d", len(got), len(want))
	}
	for i, ev := range want {
		if got[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, got[i], ev)
		}
	}
}

// TestStreamConverterErrors: the incremental path reports the same
// typed sentinels as the batch parser, including the cross-line
// monotonicity check.
func TestStreamConverterErrors(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  error
	}{
		{"truncated", []string{"(1.0) can0"}, ErrTruncatedFrame},
		{"bad timestamp", []string{"1.0 can0 123#"}, ErrBadTimestamp},
		{"bad id", []string{"(1.0) can0 XYZ#00"}, ErrBadIdentifier},
		{"bad payload", []string{"(1.0) can0 123#0"}, ErrBadPayload},
		{"clock ran backward", []string{"(2.0) can0 123#", "(1.0) can0 123#"}, ErrNonMonotoneTimestamp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := NewStreamConverter(500_000)
			if err != nil {
				t.Fatal(err)
			}
			var last error
			for _, line := range tc.lines {
				if _, last = sc.Line(line); last != nil {
					break
				}
			}
			if !errors.Is(last, tc.want) {
				t.Fatalf("feed %v: err = %v, want %v", tc.lines, last, tc.want)
			}
		})
	}
	if _, err := NewStreamConverter(0); err == nil {
		t.Error("NewStreamConverter accepted a zero bit rate")
	}
}

// TestStreamConverterCloneIndependence: sequence numbers and the
// monotonicity cursor advance on the clone without leaking back.
func TestStreamConverterCloneIndependence(t *testing.T) {
	sc, err := NewStreamConverter(500_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Line("(1.0) can0 123#00"); err != nil {
		t.Fatal(err)
	}

	cp := sc.Clone()
	for i := 0; i < 3; i++ {
		evs, err := cp.Line(fmt.Sprintf("(2.%d) can0 123#00", i))
		if err != nil {
			t.Fatal(err)
		}
		wantLabel := fmt.Sprintf("0x123@%d", i+1)
		if evs[0].Name != wantLabel {
			t.Fatalf("clone frame %d labeled %q, want %q", i, evs[0].Name, wantLabel)
		}
	}

	// The original never saw the clone's frames: its next frame is
	// sequence 1 again, and its clock cursor still allows t=1.5s.
	evs, err := sc.Line("(1.5) can0 123#00")
	if err != nil {
		t.Fatalf("original rejected a frame after clone advanced: %v", err)
	}
	if evs[0].Name != "0x123@1" {
		t.Fatalf("original frame labeled %q, want 0x123@1", evs[0].Name)
	}
}
