package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// periodText renders one period as an ingest batch: its events in the
// text format followed by the closing "period" directive.
func periodText(p *trace.Period) string {
	var sb strings.Builder
	names := make([]string, 0, len(p.Execs))
	for t := range p.Execs {
		names = append(names, t)
	}
	sort.Strings(names)
	sort.SliceStable(names, func(i, j int) bool {
		return p.Execs[names[i]].Start < p.Execs[names[j]].Start
	})
	for _, t := range names {
		iv := p.Execs[t]
		fmt.Fprintf(&sb, "exec %s %d %d\n", t, iv.Start, iv.End)
	}
	for _, m := range p.Msgs {
		fmt.Fprintf(&sb, "msg %s %d %d\n", m.ID, m.Rise, m.Fall)
	}
	sb.WriteString("period\n")
	return sb.String()
}

// resultTables flattens a learner result into the wire shape models
// are compared in.
func resultTables(t *testing.T, o *learner.Online) ([]string, string) {
	t.Helper()
	res, err := o.Result()
	if err != nil {
		t.Fatal(err)
	}
	var tables []string
	for _, d := range res.Hypotheses {
		tables = append(tables, d.Table())
	}
	return tables, res.LUB.Table()
}

// TestSnapshotDuringIngest pins the drain-before-handoff contract
// migration is built on: a snapshot taken on the owner goroutine while
// the ingest queue is NON-empty covers exactly the drained prefix, and
// restoring it and replaying exactly the still-queued periods yields a
// model bit-identical to the live stream that consumed them in place.
func TestSnapshotDuringIngest(t *testing.T) {
	sv := New(Config{QueueDepth: 16})
	defer sv.Shutdown(context.Background())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	c := newClient(t, ts)

	tr := trace.PaperFigure2()
	c.createStream(CreateStreamRequest{ID: "fig2", Tasks: tr.Tasks})
	c.feed("fig2", periodText(tr.Periods[0]))

	s, ok := sv.stream("fig2")
	if !ok {
		t.Fatal("stream not registered")
	}

	// Park the owner goroutine inside a request closure. do() drains
	// the queue before running the closure, so period 1 is consumed by
	// the time we are parked; the feeds below then pile up in the queue
	// with the owner unable to drain them.
	parked := make(chan struct{})
	unpark := make(chan struct{})
	var snap *learner.Snapshot
	var snapErr error
	var queuedAtSnap int
	doErr := make(chan error, 1)
	go func() {
		doErr <- s.do(func(o *learner.Online) {
			close(parked)
			<-unpark
			queuedAtSnap = len(s.queue)
			snap, snapErr = o.Snapshot()
		})
	}()
	<-parked
	c.feed("fig2", periodText(tr.Periods[1]))
	c.feed("fig2", periodText(tr.Periods[2]))
	close(unpark)
	if err := <-doErr; err != nil {
		t.Fatal(err)
	}
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if queuedAtSnap != 2 {
		t.Fatalf("queue depth at snapshot time = %d, want 2 (periods 2 and 3 un-drained)", queuedAtSnap)
	}
	if snap.Stats.Periods != 1 {
		t.Fatalf("snapshot covers %d periods, want exactly the drained prefix of 1", snap.Stats.Periods)
	}

	// The live stream drains its queue before answering the model
	// query (read-your-writes), so this is the three-period model.
	m := c.model("fig2")
	if m.Periods != 3 {
		t.Fatalf("served model covers %d periods, want 3", m.Periods)
	}

	// Restore the mid-ingest snapshot and replay exactly the periods
	// that were still queued when it was taken.
	o2, err := learner.RestoreOnline(snap, s.opt)
	if err != nil {
		t.Fatal(err)
	}
	replay := trace.PaperFigure2() // fresh periods, shared with nothing
	for _, p := range replay.Periods[1:] {
		if err := o2.AddPeriod(p); err != nil {
			t.Fatal(err)
		}
	}
	tables, lub := resultTables(t, o2)
	assertModelEquals(t, m, tables, lub)
}

// TestExportImportHandoff is the serve-level migration round trip:
// export drains the source stream's queue and removes every local
// trace of it (owner, metrics, durable state); import rebuilds it
// elsewhere; continuing the feed there converges on the same model a
// single server would have learned.
func TestExportImportHandoff(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	sv1 := New(Config{CheckpointDir: dir1})
	defer sv1.Shutdown(context.Background())
	ts1 := httptest.NewServer(sv1.Handler())
	defer ts1.Close()
	c1 := newClient(t, ts1)

	sv2 := New(Config{CheckpointDir: dir2})
	defer sv2.Shutdown(context.Background())
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)

	tr := trace.PaperFigure2()
	c1.createStream(CreateStreamRequest{ID: "mig", Tasks: tr.Tasks})
	c1.feed("mig", periodText(tr.Periods[0]))
	c1.feed("mig", periodText(tr.Periods[1]))

	envelope, learned, err := sv1.ExportStream("mig")
	if err != nil {
		t.Fatal(err)
	}
	// Export drains before snapshotting: both acked periods are in.
	if learned != 2 {
		t.Fatalf("exported learned count = %d, want 2", learned)
	}
	if sv1.StreamExists("mig") {
		t.Fatal("exported stream still registered on the source")
	}
	if resp, _ := c1.do("GET", "/v1/streams/mig/model", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("model on source after export: %d, want 404", resp.StatusCode)
	}
	if _, _, err := sv1.ExportStream("mig"); !errors.Is(err, ErrNoStream) {
		t.Fatalf("re-export: %v, want ErrNoStream", err)
	}

	info, err := sv2.ImportStream(envelope, learned)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "mig" {
		t.Fatalf("imported stream id %q, want %q", info.ID, "mig")
	}
	if _, err := sv2.ImportStream(envelope, learned); !errors.Is(err, ErrStreamExists) {
		t.Fatalf("double import: %v, want ErrStreamExists", err)
	}

	// The migrated stream keeps learning on the target.
	c2.feed("mig", periodText(tr.Periods[2]))
	m := c2.model("mig")
	tables, lub := batchTables(t, tr, learner.Options{})
	assertModelEquals(t, m, tables, lub)
	if sr := c2.stats("mig"); sr.PeriodsLearned != 3 {
		t.Fatalf("target learned %d periods, want 3", sr.PeriodsLearned)
	}

	// The source's durable state went with the stream: a server
	// restarted over the source directory restores nothing.
	if err := sv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	svr := New(Config{CheckpointDir: dir1})
	defer svr.Shutdown(context.Background())
	if n, err := svr.RestoreFromDir(); err != nil {
		t.Fatal(err)
	} else if n != 0 {
		t.Fatalf("source dir restored %d streams after export, want 0", n)
	}

	// And the target's state is durable there: restart and re-read.
	if err := sv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	sv2b := New(Config{CheckpointDir: dir2})
	defer sv2b.Shutdown(context.Background())
	if n, err := sv2b.RestoreFromDir(); err != nil {
		t.Fatal(err)
	} else if n != 1 {
		t.Fatalf("target dir restored %d streams, want 1", n)
	}
	ts2b := httptest.NewServer(sv2b.Handler())
	defer ts2b.Close()
	c2b := newClient(t, ts2b)
	assertModelEquals(t, c2b.model("mig"), tables, lub)
}

// TestExportImportCarriesDrift checks the envelope carries the drift
// monitor: generation, period count, and fingerprint survive the hop.
func TestExportImportCarriesDrift(t *testing.T) {
	sv1 := New(Config{})
	defer sv1.Shutdown(context.Background())
	ts1 := httptest.NewServer(sv1.Handler())
	defer ts1.Close()
	c1 := newClient(t, ts1)

	sv2 := New(Config{})
	defer sv2.Shutdown(context.Background())
	ts2 := httptest.NewServer(sv2.Handler())
	defer ts2.Close()
	c2 := newClient(t, ts2)

	tr := trace.PaperFigure2()
	c1.createStream(CreateStreamRequest{
		ID:    "drifty",
		Tasks: tr.Tasks,
		Drift: &DriftOptions{Enabled: true},
	})
	for _, p := range tr.Periods {
		c1.feed("drifty", periodText(p))
	}
	before := driftState(t, c1, "drifty")
	if before == nil || before.Periods != 3 {
		t.Fatalf("source drift state %+v, want 3 observed periods", before)
	}

	envelope, learned, err := sv1.ExportStream("drifty")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv2.ImportStream(envelope, learned); err != nil {
		t.Fatal(err)
	}
	after := driftState(t, c2, "drifty")
	if after == nil {
		t.Fatal("imported stream lost its drift monitor")
	}
	if after.Generation != before.Generation || after.Periods != before.Periods ||
		after.Fingerprint != before.Fingerprint {
		t.Fatalf("drift state changed across handoff:\nbefore %+v\nafter  %+v", before, after)
	}
}

func driftState(t *testing.T, c *client, id string) *driftStateView {
	t.Helper()
	resp, out := c.do("GET", "/v1/streams/"+id+"/drift", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drift %s: %d %s", id, resp.StatusCode, out)
	}
	var dr DriftResponse
	if err := json.Unmarshal(out, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Enabled || dr.State == nil {
		return nil
	}
	return &driftStateView{
		Generation:  dr.State.Generation,
		Periods:     dr.State.Periods,
		Fingerprint: dr.State.Fingerprint,
	}
}

type driftStateView struct {
	Generation  int
	Periods     int
	Fingerprint string
}

// TestImportRejectsBadEnvelopes covers the envelope validation edges.
func TestImportRejectsBadEnvelopes(t *testing.T) {
	sv := New(Config{})
	defer sv.Shutdown(context.Background())

	if _, err := sv.ImportStream([]byte("not json"), 0); err == nil {
		t.Fatal("undecodable envelope accepted")
	}
	if _, err := sv.ImportStream([]byte(`{"serve_version":99}`), 0); err == nil {
		t.Fatal("future envelope version accepted")
	}
	if _, err := sv.ImportStream([]byte(`{"serve_version":1,"info":{"id":"x"}}`), 0); err == nil {
		t.Fatal("envelope without a snapshot accepted")
	}
}
