package cluster

import (
	"strings"
	"testing"
)

// FuzzRoute drives the gateway's stream-ID→node routing with hostile
// stream IDs. Routing must be total (no panic on any byte sequence),
// deterministic (two rings built from the same config agree), closed
// over the membership, and consistent with the path-extraction step
// the node's fence check uses — a quoting or escaping bug anywhere in
// that chain would let a hostile ID dodge its fence by routing or
// fencing under a different name than it ingests under.
func FuzzRoute(f *testing.F) {
	seeds := []string{
		"", "a", "stream-00042", "s.1_2-3",
		strings.Repeat("x", 1024),
		"../../etc/passwd", "a/b/c", "a\\b",
		"id with spaces", "tab\tid", "new\nline", "\r\n",
		"\x00\x01\xff", "caf\xc3\xa9", "\xe2\x98\x83", "\xed\xa0\x80", // valid and invalid UTF-8
		`{"id":"x"}`, `id"quote`, "id'quote", "id`tick",
		"%2e%2e%2f", "a?b=c&d=e", "a#frag", "id{vnode}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cfg := RingConfig{Seed: 99, VirtualNodes: 32}
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r1, err := NewRing(nodes, cfg)
	if err != nil {
		f.Fatal(err)
	}
	r2, err := NewRing([]string{"n5", "n3", "n1", "n4", "n2"}, cfg) // permuted membership
	if err != nil {
		f.Fatal(err)
	}
	member := map[string]bool{}
	for _, n := range nodes {
		member[n] = true
	}

	f.Fuzz(func(t *testing.T, id string) {
		owner := r1.Owner(id)
		if !member[owner] {
			t.Fatalf("Owner(%q) = %q, not a member", id, owner)
		}
		if again := r1.Owner(id); again != owner {
			t.Fatalf("Owner(%q) flapped %q→%q on the same ring", id, owner, again)
		}
		if other := r2.Owner(id); other != owner {
			t.Fatalf("Owner(%q) differs across identically-configured rings: %q vs %q", id, owner, other)
		}

		// The node-side fence extracts the ID from the proxied path; it
		// must recover exactly the prefix of the ID up to the first
		// slash — never more — or a fenced stream could be addressed
		// under an unfenced alias.
		got := streamIDFromPath("/v1/streams/" + id)
		want := id
		if i := strings.IndexByte(want, '/'); i >= 0 {
			want = want[:i]
		}
		if got != want {
			t.Fatalf("streamIDFromPath(%q) = %q, want %q", "/v1/streams/"+id, got, want)
		}
	})
}
