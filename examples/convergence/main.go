// Command convergence demonstrates Theorem 4 and the Lemma of Section
// 4 on the exact-tractable lite configuration: the single dependency
// function returned with the bound set to 1 equals the least upper
// bound of the exact algorithm's result set, and the LUBs obtained at
// other bounds agree with it (with any deviations reported, entry by
// entry).
package main

import (
	"fmt"
	"log"
	"time"

	modelgen "github.com/blackbox-rt/modelgen"
)

func main() {
	m := modelgen.GMStyleLiteModel()
	out, err := modelgen.Simulate(m, modelgen.SimOptions{
		Periods: modelgen.CaseStudyPeriods,
		Seed:    modelgen.CaseStudySeed,
	})
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	pol := modelgen.CaseStudyPolicy(true)
	st := out.Trace.Stats()
	fmt.Printf("Lite configuration: %d tasks, %d periods, %d messages\n",
		len(out.Trace.Tasks), st.Periods, st.Messages)
	fmt.Println()

	t0 := time.Now()
	exact, err := modelgen.Learn(out.Trace, modelgen.LearnOptions{Policy: pol, MaxHypotheses: 5_000_000})
	if err != nil {
		log.Fatalf("exact learning failed: %v", err)
	}
	exactTime := time.Since(t0)
	fmt.Printf("Exact algorithm: %v, %d most specific hypotheses (peak %d)\n",
		exactTime.Round(time.Millisecond), len(exact.Hypotheses), exact.Stats.Peak)
	fmt.Println()
	fmt.Println("LUB of the exact result set:")
	fmt.Println(exact.LUB.Table())

	fmt.Println("Heuristic runs (the paper's Lemma: the bound-1 result equals")
	fmt.Println("the LUB of the result set at any bound):")
	fmt.Println()
	fmt.Printf("%8s %14s %12s %10s\n", "bound", "run time", "hypotheses", "LUB==exact")
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 100, 120, 150} {
		t1 := time.Now()
		res, err := modelgen.LearnBounded(out.Trace, b, pol)
		if err != nil {
			log.Fatalf("bound %d: %v", b, err)
		}
		eq := res.LUB.Equal(exact.LUB)
		marker := "yes"
		if !eq {
			marker = fmt.Sprintf("no (%d entries differ)", diffEntries(res.LUB, exact.LUB))
		}
		fmt.Printf("%8d %14v %12d %10s\n", b, time.Since(t1).Round(time.Microsecond), len(res.Hypotheses), marker)
	}

	one, err := modelgen.LearnBounded(out.Trace, 1, pol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if one.Converged && one.Hypotheses[0].Equal(exact.LUB) {
		fmt.Println("Lemma verified: the bound-1 hypothesis equals LUB(exact).")
	} else {
		fmt.Println("Lemma DEVIATION: bound-1 hypothesis differs from LUB(exact).")
	}
	fmt.Printf("Exact took %v; the heuristic runs are two to four orders of\n", exactTime.Round(time.Millisecond))
	fmt.Println("magnitude faster — the shape of the paper's 630.997 s vs")
	fmt.Println("0.220..19.048 s comparison.")
}

func diffEntries(a, b *modelgen.DepFunc) int {
	n := a.N()
	diff := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) != b.At(i, j) {
				diff++
			}
		}
	}
	return diff
}
