// Benchmark harness regenerating the paper's evaluation (see
// EXPERIMENTS.md for the experiment index):
//
//   - BenchmarkE1ExactPaperExample — the Section 3.3 worked example.
//   - BenchmarkE3HeuristicFull — the runtime table of Section 3.4
//     (bound vs run time) on the 18-task case study.
//   - BenchmarkE3HeuristicLite / BenchmarkE3ExactLite — the same sweep
//     plus the exact-algorithm datum on the exact-tractable subsystem.
//   - BenchmarkE4LatencyAnalysis — the critical-path latency
//     comparison.
//   - BenchmarkE5Scale* — the O(m·b² + m·b·t²) complexity claim:
//     scaling in messages (periods), bound and task count.
//   - BenchmarkE5ExactAmbiguity — the exponential growth of the exact
//     algorithm with per-message ambiguity (the practical face of
//     Theorem 1's NP-hardness).
//   - BenchmarkAblation* — matcher backend (backtracking vs DPLL) and
//     eager condition-4 pruning.
package modelgen_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	modelgen "github.com/blackbox-rt/modelgen"
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/sat"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

var (
	fullOnce  sync.Once
	fullTrace *modelgen.Trace
	liteOnce  sync.Once
	liteTrace *modelgen.Trace
)

func caseStudyTrace(b *testing.B) *modelgen.Trace {
	fullOnce.Do(func() {
		out, err := modelgen.Simulate(modelgen.GMStyleModel(), modelgen.SimOptions{
			Periods: modelgen.CaseStudyPeriods, Seed: modelgen.CaseStudySeed,
		})
		if err != nil {
			b.Fatalf("simulating case study: %v", err)
		}
		fullTrace = out.Trace
	})
	return fullTrace
}

func liteCaseStudyTrace(b *testing.B) *modelgen.Trace {
	liteOnce.Do(func() {
		out, err := modelgen.Simulate(modelgen.GMStyleLiteModel(), modelgen.SimOptions{
			Periods: modelgen.CaseStudyPeriods, Seed: modelgen.CaseStudySeed,
		})
		if err != nil {
			b.Fatalf("simulating lite case study: %v", err)
		}
		liteTrace = out.Trace
	})
	return liteTrace
}

// BenchmarkE1ExactPaperExample: the exact algorithm on the Figure-2
// trace (Section 3.3).
func BenchmarkE1ExactPaperExample(b *testing.B) {
	tr := modelgen.PaperTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3HeuristicFull regenerates the runtime table of Section
// 3.4 on the full 18-task case study: one sub-benchmark per bound of
// the paper's table.
func BenchmarkE3HeuristicFull(b *testing.B) {
	tr := caseStudyTrace(b)
	for _, bound := range modelgen.CaseStudyBounds() {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := modelgen.LearnBounded(tr, bound, modelgen.CaseStudyPolicy(false)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3HeuristicLite: the same sweep on the lite configuration,
// comparable with BenchmarkE3ExactLite.
func BenchmarkE3HeuristicLite(b *testing.B) {
	tr := liteCaseStudyTrace(b)
	for _, bound := range modelgen.CaseStudyBounds() {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := modelgen.LearnBounded(tr, bound, modelgen.CaseStudyPolicy(true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3ExactLite: the exact-algorithm datum (the paper's
// 630.997 s row, reproduced at tractable scale — see EXPERIMENTS.md).
func BenchmarkE3ExactLite(b *testing.B) {
	tr := liteCaseStudyTrace(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := modelgen.Learn(tr, modelgen.LearnOptions{
			Policy:        modelgen.CaseStudyPolicy(true),
			MaxHypotheses: 10_000_000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4LatencyAnalysis: the pessimistic-vs-informed critical
// path comparison (learning excluded; the analysis itself).
func BenchmarkE4LatencyAnalysis(b *testing.B) {
	tr := caseStudyTrace(b)
	res, err := modelgen.LearnBounded(tr, 32, modelgen.CaseStudyPolicy(false))
	if err != nil {
		b.Fatal(err)
	}
	m := modelgen.GMStyleModel()
	path := modelgen.LatencyPath{Tasks: []string{"S", "A", "D", "L", "P", "Q"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modelgen.CompareLatency(m, path, res.LUB, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5ScaleMessages: heuristic run time vs trace length m
// (messages grow linearly with the simulated period count).
func BenchmarkE5ScaleMessages(b *testing.B) {
	for _, periods := range []int{9, 18, 27, 54} {
		out, err := modelgen.Simulate(modelgen.GMStyleModel(), modelgen.SimOptions{Periods: periods, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		msgs := out.Trace.Stats().Messages
		b.Run(fmt.Sprintf("m=%d", msgs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := modelgen.LearnBounded(out.Trace, 16, modelgen.CandidatePolicy{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5ScaleTasks: heuristic run time vs task count t on random
// layered models (the t² factor of the complexity claim).
func BenchmarkE5ScaleTasks(b *testing.B) {
	for _, width := range []int{2, 3, 4, 5} {
		opt := model.DefaultRandomOptions()
		opt.Layers = 3
		opt.TasksPerLayer = width
		m := model.RandomModel(rand.New(rand.NewSource(17)), opt)
		out, err := sim.Run(m, sim.Options{Periods: 18, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("t=%d", 3*width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := learner.LearnBounded(out.Trace, 16, depfunc.CandidatePolicy{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5ExactAmbiguity: exact-algorithm run time on a single
// period whose k messages are mutually ambiguous — the per-message
// candidate sets overlap, so the hypothesis space grows exponentially
// with k. This is the practical shape of Theorem 1.
func BenchmarkE5ExactAmbiguity(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5, 6} {
		tr := ambiguousTrace(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := modelgen.LearnExact(tr, modelgen.CandidatePolicy{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ambiguousTrace builds one period with a chain of k+1 tasks and k
// messages in the gaps; message i has roughly i×(k−i) feasible
// sender/receiver pairs.
func ambiguousTrace(k int) *modelgen.Trace {
	names := make([]string, k+1)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	bld := trace.NewBuilder(names)
	bld.StartPeriod()
	t := int64(0)
	for i := 0; i <= k; i++ {
		bld.Exec(names[i], t, t+10)
		if i < k {
			bld.Msg(fmt.Sprintf("m%d", i), t+12, t+14)
		}
		t += 20
	}
	return bld.MustBuild()
}

// BenchmarkAblationMatcher compares the two independent matching
// implementations on the learned case-study model.
func BenchmarkAblationMatcher(b *testing.B) {
	tr := caseStudyTrace(b)
	res, err := modelgen.LearnBounded(tr, 32, modelgen.CaseStudyPolicy(false))
	if err != nil {
		b.Fatal(err)
	}
	d := res.LUB
	pol := depfunc.CandidatePolicy{}
	b.Run("backtracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range tr.Periods {
				if !depfunc.Match(d, p, pol) {
					b.Fatal("learned model must match")
				}
			}
		}
	})
	b.Run("dpll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range tr.Periods {
				if !sat.MatchPeriod(d, p, pol) {
					b.Fatal("learned model must match")
				}
			}
		}
	})
}

// BenchmarkAblationEagerPrune measures the strict condition-4 reading
// (eager per-parent minimality) against the default on the lite exact
// configuration.
func BenchmarkAblationEagerPrune(b *testing.B) {
	tr := liteCaseStudyTrace(b)
	for _, eager := range []bool{false, true} {
		b.Run(fmt.Sprintf("eager=%v", eager), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := modelgen.Learn(tr, modelgen.LearnOptions{
					Policy:        modelgen.CaseStudyPolicy(true),
					EagerPrune:    eager,
					MaxHypotheses: 10_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2Reachability: explicit-state exploration of the learned
// case-study model's completion state space (the model-checking
// substrate behind the paper's state-space-reduction claim).
func BenchmarkE2Reachability(b *testing.B) {
	tr := caseStudyTrace(b)
	res, err := modelgen.LearnBounded(tr, 32, modelgen.CaseStudyPolicy(false))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modelgen.ExploreStateSpace(res.LUB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateGMStyle: the discrete-event simulator's own cost.
func BenchmarkSimulateGMStyle(b *testing.B) {
	m := modelgen.GMStyleModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := modelgen.Simulate(m, modelgen.SimOptions{Periods: 27, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}
