package depfunc

import (
	"github.com/blackbox-rt/modelgen/internal/dot"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

// DOT renders the dependency function as a dependency graph in the
// style of the paper's Figures 4 and 5: one directed edge per ordered
// pair whose forward component is → or →? (solid for unconditional,
// dashed for conditional). The reverse entry is shown on the edge
// label when it is not the plain mirror, so asymmetric relaxations
// such as (→, ‖) remain visible.
func (d *DepFunc) DOT(name string) string {
	g := dot.NewGraph(name)
	g.Attr("rankdir", "TB")
	for _, t := range d.ts.names {
		g.Node(t, "shape", "circle")
	}
	n := d.ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := d.At(i, j)
			back := d.At(j, i)
			var style string
			switch v {
			case lattice.Fwd, lattice.Bi:
				style = "solid"
			case lattice.FwdMaybe, lattice.BiMaybe:
				style = "dashed"
			default:
				continue
			}
			label := v.String()
			if back != lattice.Reverse(v) {
				label += " / " + back.String()
			}
			g.Edge(d.ts.Name(i), d.ts.Name(j), "style", style, "label", label)
		}
	}
	return g.String()
}
