//go:build race

package learner

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions are skipped under the detector: it makes
// sync.Pool drop puts at random, so testing.AllocsPerRun is not
// deterministic there.
const raceEnabled = true
