package depfunc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/blackbox-rt/modelgen/internal/lattice"
)

func ts4() *TaskSet { return MustTaskSet("t1", "t2", "t3", "t4") }

// randDep builds a random dependency function over ts (diagonal ‖).
func randDep(r *rand.Rand, ts *TaskSet) *DepFunc {
	d := Bottom(ts)
	n := ts.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, lattice.Value(r.Intn(7)))
			}
		}
	}
	return d
}

var depQuickCfg = &quick.Config{
	MaxCount: 300,
	Values: func(args []reflect.Value, r *rand.Rand) {
		ts := ts4()
		for i := range args {
			args[i] = reflect.ValueOf(randDep(r, ts))
		}
	},
}

func TestNewTaskSet(t *testing.T) {
	ts, err := NewTaskSet([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 3 {
		t.Errorf("Len = %d", ts.Len())
	}
	if ts.Index("b") != 1 || ts.Name(1) != "b" {
		t.Error("index mapping wrong")
	}
	if ts.Index("zz") != -1 {
		t.Error("unknown task should map to -1")
	}
	if !ts.Has("a") || ts.Has("zz") {
		t.Error("Has wrong")
	}
}

func TestNewTaskSetErrors(t *testing.T) {
	if _, err := NewTaskSet(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewTaskSet([]string{"a", "a"}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := NewTaskSet([]string{""}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestTaskSetEqual(t *testing.T) {
	a := MustTaskSet("x", "y")
	b := MustTaskSet("x", "y")
	c := MustTaskSet("y", "x")
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	if a.Equal(MustTaskSet("x")) {
		t.Error("Equal ignores length")
	}
}

func TestTaskSetSortedNames(t *testing.T) {
	ts := MustTaskSet("z", "a", "m")
	got := ts.SortedNames()
	if got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("SortedNames = %v", got)
	}
	// Names preserves construction order.
	names := ts.Names()
	if names[0] != "z" {
		t.Errorf("Names = %v", names)
	}
}

func TestBottomTop(t *testing.T) {
	ts := ts4()
	bot, top := Bottom(ts), Top(ts)
	bot.Entries(func(i, j int, v lattice.Value) {
		if v != lattice.Par {
			t.Errorf("Bottom(%d,%d) = %v", i, j, v)
		}
	})
	top.Entries(func(i, j int, v lattice.Value) {
		if v != lattice.BiMaybe {
			t.Errorf("Top(%d,%d) = %v", i, j, v)
		}
	})
	for i := 0; i < 4; i++ {
		if top.At(i, i) != lattice.Par {
			t.Errorf("Top diagonal (%d,%d) = %v", i, i, top.At(i, i))
		}
	}
	if !bot.Leq(top) || top.Leq(bot) {
		t.Error("Bottom/Top order wrong")
	}
}

func TestSetDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on diagonal set")
		}
	}()
	Bottom(ts4()).Set(1, 1, lattice.Fwd)
}

func TestJoinAtReportsChange(t *testing.T) {
	d := Bottom(ts4())
	if !d.JoinAt(0, 1, lattice.Fwd) {
		t.Error("JoinAt should report change")
	}
	if d.JoinAt(0, 1, lattice.Fwd) {
		t.Error("idempotent JoinAt should report no change")
	}
	if d.At(0, 1) != lattice.Fwd {
		t.Errorf("At(0,1) = %v", d.At(0, 1))
	}
	if !d.JoinAt(0, 1, lattice.Bwd) {
		t.Error("JoinAt Bwd should change")
	}
	if d.At(0, 1) != lattice.Bi {
		t.Errorf("join(->,<-) = %v, want <->", d.At(0, 1))
	}
}

func TestGetMustGet(t *testing.T) {
	d := Bottom(ts4())
	d.Set(0, 3, lattice.Fwd)
	v, err := d.Get("t1", "t4")
	if err != nil || v != lattice.Fwd {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := d.Get("zz", "t1"); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := d.Get("t1", "zz"); err == nil {
		t.Error("unknown task accepted")
	}
	if d.MustGet("t1", "t4") != lattice.Fwd {
		t.Error("MustGet wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := Bottom(ts4())
	cp := d.Clone()
	cp.Set(0, 1, lattice.Fwd)
	if d.At(0, 1) != lattice.Par {
		t.Error("Clone shares storage")
	}
	if !d.TaskSet().Equal(cp.TaskSet()) {
		t.Error("Clone changed task set")
	}
}

func TestLeqPointwise(t *testing.T) {
	f := func(a, b *DepFunc) bool {
		j := a.Join(b)
		return a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(f, depQuickCfg); err != nil {
		t.Error(err)
	}
}

func TestJoinIsLUB(t *testing.T) {
	f := func(a, b, c *DepFunc) bool {
		j := a.Join(b)
		// If c is an upper bound of both, j <= c.
		if a.Leq(c) && b.Leq(c) && !j.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, depQuickCfg); err != nil {
		t.Error(err)
	}
}

func TestMeetIsGLB(t *testing.T) {
	f := func(a, b, c *DepFunc) bool {
		m := a.Meet(b)
		if !m.Leq(a) || !m.Leq(b) {
			return false
		}
		if c.Leq(a) && c.Leq(b) && !c.Leq(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, depQuickCfg); err != nil {
		t.Error(err)
	}
}

func TestWeightMonotonic(t *testing.T) {
	f := func(a, b *DepFunc) bool {
		j := a.Join(b)
		return j.Weight() >= a.Weight() && j.Weight() >= b.Weight()
	}
	if err := quick.Check(f, depQuickCfg); err != nil {
		t.Error(err)
	}
}

func TestWeightStrictlyMonotonicOnLt(t *testing.T) {
	f := func(a, b *DepFunc) bool {
		if a.Lt(b) {
			return a.Weight() < b.Weight()
		}
		return true
	}
	if err := quick.Check(f, depQuickCfg); err != nil {
		t.Error(err)
	}
}

func TestWeightExample(t *testing.T) {
	// Weight of the paper's dLUB table: entries per Definition 8.
	d := MustParseTable(`
      t1   t2   t3   t4
t1    ||   ->?  ->?  ->
t2    <-   ||   ||   ->
t3    <-   ||   ||   ->
t4    <-   <-?  <-?  ||
`)
	// distances: ->? = 4 (x2), -> = 1 (x3), <- = 1 (x3), <-? = 4 (x2)
	want := 4 + 4 + 1 + 1 + 1 + 1 + 1 + 1 + 4 + 4
	if got := d.Weight(); got != want {
		t.Errorf("Weight = %d, want %d", got, want)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := Bottom(ts4())
	b := Bottom(ts4())
	if a.Key() != b.Key() {
		t.Error("identical funcs have different keys")
	}
	b.Set(2, 1, lattice.FwdMaybe)
	if a.Key() == b.Key() {
		t.Error("different funcs share key")
	}
}

func TestJoinAllEmpty(t *testing.T) {
	if JoinAll(nil) != nil {
		t.Error("JoinAll(nil) should be nil")
	}
}

func TestJoinAllFolds(t *testing.T) {
	ts := ts4()
	a := Bottom(ts)
	a.Set(0, 1, lattice.Fwd)
	b := Bottom(ts)
	b.Set(0, 1, lattice.Bwd)
	c := Bottom(ts)
	c.Set(2, 3, lattice.FwdMaybe)
	j := JoinAll([]*DepFunc{a, b, c})
	if j.At(0, 1) != lattice.Bi {
		t.Errorf("join at (0,1) = %v", j.At(0, 1))
	}
	if j.At(2, 3) != lattice.FwdMaybe {
		t.Errorf("join at (2,3) = %v", j.At(2, 3))
	}
	// operands unchanged
	if a.At(2, 3) != lattice.Par {
		t.Error("JoinAll mutated operand")
	}
}

func TestMostSpecificRemovesRedundantAndDuplicates(t *testing.T) {
	ts := ts4()
	spec := Bottom(ts)
	spec.Set(0, 1, lattice.Fwd)
	dup := spec.Clone()
	gen := spec.Clone()
	gen.Set(0, 1, lattice.FwdMaybe) // strictly more general
	other := Bottom(ts)
	other.Set(2, 3, lattice.Bwd) // incomparable
	got := MostSpecific([]*DepFunc{gen, spec, dup, other})
	if len(got) != 2 {
		t.Fatalf("MostSpecific kept %d, want 2", len(got))
	}
	if !got[0].Equal(gen) && !got[0].Equal(spec) && !got[0].Equal(other) {
		t.Error("unexpected survivor")
	}
	for _, d := range got {
		if d.Equal(gen) {
			t.Error("redundant hypothesis survived")
		}
	}
}

func TestMostSpecificPairwiseIncomparable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ts := ts4()
	var ds []*DepFunc
	for k := 0; k < 40; k++ {
		ds = append(ds, randDep(r, ts))
	}
	out := MostSpecific(ds)
	for i := range out {
		for j := range out {
			if i != j && out[i].Leq(out[j]) {
				t.Fatalf("survivors comparable: %d <= %d", i, j)
			}
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for k := 0; k < 20; k++ {
		d := randDep(r, ts4())
		back, err := ParseTable(d.Table())
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(d) {
			t.Fatalf("table round trip mismatch:\n%s\nvs\n%s", d.Table(), back.Table())
		}
	}
}

func TestParseTableErrors(t *testing.T) {
	cases := []string{
		"",
		"t1 t2\nt1 || ->\n",              // missing row
		"t1 t1\nt1 || ->\nt1 <- ||\n",    // duplicate task
		"t1 t2\nt1 || ->\nzz <- ||\n",    // unknown row task
		"t1 t2\nt1 || -> ->\nt2 <- ||\n", // arity
		"t1 t2\nt1 || xx\nt2 <- ||\n",    // bad value
		"t1 t2\nt1 -> ->\nt2 <- ||\n",    // non-|| diagonal
	}
	for i, in := range cases {
		if _, err := ParseTable(in); err == nil {
			t.Errorf("case %d: ParseTable accepted %q", i, in)
		}
	}
}

func TestRelaxViolations(t *testing.T) {
	d := MustParseTable(`
      t1   t2   t3
t1    ||   ->   <->
t2    <-   ||   ||
t3    <-   ||   ||
`)
	// t1 executed, t2 did not, t3 did.
	executed := []bool{true, false, true}
	n := d.RelaxViolations(func(i int) bool { return executed[i] })
	if n != 1 {
		t.Fatalf("relaxed %d entries, want 1", n)
	}
	if d.MustGet("t1", "t2") != lattice.FwdMaybe {
		t.Errorf("d(t1,t2) = %v, want ->?", d.MustGet("t1", "t2"))
	}
	if d.MustGet("t1", "t3") != lattice.Bi {
		t.Errorf("d(t1,t3) = %v, want <-> (both executed)", d.MustGet("t1", "t3"))
	}
	// t2 did not execute, so its <- at (t2,t1) is NOT relaxed.
	if d.MustGet("t2", "t1") != lattice.Bwd {
		t.Errorf("d(t2,t1) = %v, want <-", d.MustGet("t2", "t1"))
	}
}

func TestRelaxViolationsIdempotentWhenAllExecuted(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := randDep(r, ts4())
	before := d.Clone()
	if n := d.RelaxViolations(func(int) bool { return true }); n != 0 {
		t.Errorf("relaxed %d entries with all tasks executed", n)
	}
	if !d.Equal(before) {
		t.Error("RelaxViolations changed entries with all executed")
	}
}

func TestDOTOutput(t *testing.T) {
	d := MustParseTable(`
      t1   t2
t1    ||   ->
t2    <-   ||
`)
	out := d.DOT("g")
	for _, want := range []string{"digraph", `"t1" -> "t2"`, "solid"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// <- entries alone must not create edges.
	if strings.Contains(out, `"t2" -> "t1"`) {
		t.Errorf("DOT rendered backward edge:\n%s", out)
	}
}

func TestDOTAsymmetricLabel(t *testing.T) {
	d := MustParseTable(`
      t1   t2
t1    ||   ->?
t2    <-   ||
`)
	out := d.DOT("g")
	if !strings.Contains(out, "dashed") {
		t.Errorf("conditional edge not dashed:\n%s", out)
	}
	// (→?, ←) is not a mirror pair, so the label shows both.
	if !strings.Contains(out, "->? / <-") {
		t.Errorf("asymmetric pair not labelled:\n%s", out)
	}
}
