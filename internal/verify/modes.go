package verify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Mode is one observed operation mode of the system: a set of tasks
// that executed together in at least one period. The paper uses the
// learned dependency graph to prove properties about "the operation
// mode of tasks"; enumerating the observed modes makes those
// properties concrete — e.g. task L executes in every mode in which A
// executes.
type Mode struct {
	// Tasks is the sorted set of tasks executing in this mode.
	Tasks []string
	// Periods lists the trace periods exhibiting the mode.
	Periods []int
}

// Count returns the number of periods exhibiting the mode.
func (m Mode) Count() int { return len(m.Periods) }

// Key returns the canonical "a+b+c" encoding of the mode's task set.
func (m Mode) Key() string { return strings.Join(m.Tasks, "+") }

// Modes enumerates the distinct operation modes of the trace, most
// frequent first (ties broken by key for determinism).
func Modes(tr *trace.Trace) []Mode { return ModesObserved(tr, nil) }

// ModesObserved is Modes with stage-"verify" observability:
// periods_scanned and modes_enumerated pipeline events.
func ModesObserved(tr *trace.Trace, o obs.Observer) []Mode {
	byKey := map[string]*Mode{}
	for _, p := range tr.Periods {
		tasks := p.ExecutedTasks()
		key := strings.Join(tasks, "+")
		m, ok := byKey[key]
		if !ok {
			m = &Mode{Tasks: tasks}
			byKey[key] = m
		}
		m.Periods = append(m.Periods, p.Index)
	}
	out := make([]Mode, 0, len(byKey))
	for _, m := range byKey {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Periods) != len(out[j].Periods) {
			return len(out[i].Periods) > len(out[j].Periods)
		}
		return out[i].Key() < out[j].Key()
	})
	if o != nil {
		o.OnPipeline(obs.Pipeline{Stage: "verify", Name: "periods_scanned", Value: int64(len(tr.Periods))})
		o.OnPipeline(obs.Pipeline{Stage: "verify", Name: "modes_enumerated", Value: int64(len(out))})
	}
	return out
}

// ModeReport relates the observed modes to a learned dependency
// function.
type ModeReport struct {
	Modes []Mode
	// AlwaysOn lists tasks executing in every observed mode.
	AlwaysOn []string
	// Violations lists human-readable inconsistencies between the
	// learned unconditional dependencies and the observed modes. A
	// sound learner produces none; a violation indicates the model
	// was learned from a different trace.
	Violations []string
}

// AnalyzeModes enumerates the trace's modes and checks every
// unconditional dependency of d against them: d(a,b) ∈ {→, ←, ↔}
// asserts that every mode containing a contains b.
func AnalyzeModes(tr *trace.Trace, d *depfunc.DepFunc) ModeReport {
	rep := ModeReport{Modes: Modes(tr)}
	if len(rep.Modes) == 0 {
		return rep
	}
	// Tasks present in all modes.
	on := map[string]int{}
	for _, m := range rep.Modes {
		for _, t := range m.Tasks {
			on[t]++
		}
	}
	for t, n := range on {
		if n == len(rep.Modes) {
			rep.AlwaysOn = append(rep.AlwaysOn, t)
		}
	}
	sort.Strings(rep.AlwaysOn)
	if d == nil {
		return rep
	}
	ts := d.TaskSet()
	for _, m := range rep.Modes {
		in := map[string]bool{}
		for _, t := range m.Tasks {
			in[t] = true
		}
		d.Entries(func(i, j int, v lattice.Value) {
			if !lattice.HasExecConstraint(v) {
				return
			}
			a, b := ts.Name(i), ts.Name(j)
			if in[a] && !in[b] {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("mode {%s}: d(%s,%s)=%s but %s runs without %s",
						m.Key(), a, b, v, a, b))
			}
		})
	}
	sort.Strings(rep.Violations)
	return rep
}

// ModeOfDisjunction summarizes which successors a disjunction task
// drove in each mode it participated in: for the paper's case study
// this recovers statements like "task A operates in modes {D}, {E} and
// {D,E}". The successor set of a task in a mode is the set of its
// conditional dependents (d(task, x) ∈ {→?}) that executed in the
// mode.
func ModeOfDisjunction(tr *trace.Trace, d *depfunc.DepFunc, task string) []string {
	ts := d.TaskSet()
	ti := ts.Index(task)
	if ti < 0 {
		return nil
	}
	var dependents []string
	for j := 0; j < ts.Len(); j++ {
		if j != ti && d.At(ti, j) == lattice.FwdMaybe {
			dependents = append(dependents, ts.Name(j))
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, p := range tr.Periods {
		if !p.Executed(task) {
			continue
		}
		var chosen []string
		for _, dep := range dependents {
			if p.Executed(dep) {
				chosen = append(chosen, dep)
			}
		}
		key := "{" + strings.Join(chosen, ",") + "}"
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
