module github.com/blackbox-rt/modelgen

go 1.22
