package hypothesis

import (
	"testing"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
)

func ts3() *depfunc.TaskSet { return depfunc.MustTaskSet("a", "b", "c") }

func TestBottom(t *testing.T) {
	h := Bottom(ts3())
	if h.Weight() != 0 {
		t.Errorf("Weight = %d, want 0", h.Weight())
	}
	if h.AssumptionCount() != 0 {
		t.Errorf("assumptions = %d", h.AssumptionCount())
	}
	if !h.D.Equal(depfunc.Bottom(ts3())) {
		t.Error("D is not bottom")
	}
}

func TestAssumeStampsBothSides(t *testing.T) {
	h := Bottom(ts3())
	c := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	if c == nil {
		t.Fatal("Assume returned nil")
	}
	if c.D.At(0, 1) != lattice.Fwd || c.D.At(1, 0) != lattice.Bwd {
		t.Errorf("entries = %v, %v", c.D.At(0, 1), c.D.At(1, 0))
	}
	// Parent unchanged.
	if h.D.At(0, 1) != lattice.Par {
		t.Error("Assume mutated parent")
	}
	if !c.Assumed(depfunc.Pair{S: 0, R: 1}) {
		t.Error("assumption not recorded")
	}
	if c.Weight() != 2 {
		t.Errorf("Weight = %d, want 2", c.Weight())
	}
}

func TestAssumeConditionalStamps(t *testing.T) {
	h := Bottom(ts3())
	c := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.FwdMaybe, lattice.Bwd)
	if c.D.At(0, 1) != lattice.FwdMaybe || c.D.At(1, 0) != lattice.Bwd {
		t.Errorf("entries = %v, %v", c.D.At(0, 1), c.D.At(1, 0))
	}
	if c.Weight() != 5 {
		t.Errorf("Weight = %d, want 5", c.Weight())
	}
}

func TestAssumeDuplicatePairRejected(t *testing.T) {
	h := Bottom(ts3())
	c := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	if c.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd) != nil {
		t.Error("duplicate pair accepted")
	}
	// The reverse pair is a different ordered pair and is allowed.
	if c.Assume(depfunc.Pair{S: 1, R: 0}, lattice.Fwd, lattice.Bwd) == nil {
		t.Error("reverse pair rejected")
	}
}

func TestAssumeJoinSemantics(t *testing.T) {
	h := Bottom(ts3())
	c1 := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	c1.ClearAssumptions()
	// Re-assuming in a "new period" with the reverse direction joins
	// to <-> on both sides.
	c2 := c1.Assume(depfunc.Pair{S: 1, R: 0}, lattice.Fwd, lattice.Bwd)
	if c2.D.At(1, 0) != lattice.Bi || c2.D.At(0, 1) != lattice.Bi {
		t.Errorf("entries = %v, %v, want <-> both", c2.D.At(1, 0), c2.D.At(0, 1))
	}
	if c2.Weight() != c2.D.Weight() {
		t.Errorf("cached weight %d != recomputed %d", c2.Weight(), c2.D.Weight())
	}
}

func TestClearAssumptions(t *testing.T) {
	h := Bottom(ts3()).Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	h.ClearAssumptions()
	if h.AssumptionCount() != 0 {
		t.Error("assumptions survived ClearAssumptions")
	}
	if h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd) == nil {
		t.Error("pair still blocked after ClearAssumptions")
	}
}

func TestRelaxUpdatesWeight(t *testing.T) {
	h := Bottom(ts3()).Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	// A period where a executed but b did not.
	n := h.Relax(func(i int) bool { return i == 0 || i == 2 })
	if n != 1 {
		t.Fatalf("relaxed %d, want 1", n)
	}
	if h.D.At(0, 1) != lattice.FwdMaybe {
		t.Errorf("entry = %v, want ->?", h.D.At(0, 1))
	}
	if h.Weight() != h.D.Weight() {
		t.Errorf("cached weight %d != recomputed %d", h.Weight(), h.D.Weight())
	}
}

func TestMergeJoinsAndIntersects(t *testing.T) {
	base := Bottom(ts3())
	h1 := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	shared := depfunc.Pair{S: 0, R: 2}
	h1 = h1.Assume(shared, lattice.Fwd, lattice.Bwd)
	h2 := base.Assume(depfunc.Pair{S: 1, R: 2}, lattice.Fwd, lattice.Bwd)
	h2 = h2.Assume(shared, lattice.Fwd, lattice.Bwd)

	m := h1.Merge(h2)
	if m.D.At(0, 1) != lattice.Fwd || m.D.At(1, 2) != lattice.Fwd || m.D.At(0, 2) != lattice.Fwd {
		t.Errorf("merged D wrong:\n%s", m.D.Table())
	}
	if !m.Assumed(shared) {
		t.Error("shared assumption lost in merge")
	}
	if m.Assumed(depfunc.Pair{S: 0, R: 1}) || m.Assumed(depfunc.Pair{S: 1, R: 2}) {
		t.Error("non-shared assumption survived intersection")
	}
	if m.Weight() != m.D.Weight() {
		t.Error("merged weight not recomputed")
	}
	// Operands unchanged.
	if h1.D.At(1, 2) != lattice.Par {
		t.Error("Merge mutated operand")
	}
}

func TestKeyIncludesAssumptions(t *testing.T) {
	base := Bottom(ts3())
	// Same D, different assumptions: (a,b) assumed with no-op stamp.
	h := base.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	h.ClearAssumptions()
	c1 := h.Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	c2 := h.Clone()
	if c1.Key() == c2.Key() {
		t.Error("keys equal despite different assumptions")
	}
	if h.Key() != c2.Key() {
		t.Error("clone key differs")
	}
}

func TestKeyCanonicalOrder(t *testing.T) {
	base := Bottom(ts3())
	p1, p2 := depfunc.Pair{S: 0, R: 1}, depfunc.Pair{S: 1, R: 2}
	a := base.Assume(p1, lattice.Fwd, lattice.Bwd).Assume(p2, lattice.Fwd, lattice.Bwd)
	b := base.Assume(p2, lattice.Fwd, lattice.Bwd).Assume(p1, lattice.Fwd, lattice.Bwd)
	if a.Key() != b.Key() {
		t.Error("assumption order leaked into key")
	}
}

func TestCloneIndependence(t *testing.T) {
	h := Bottom(ts3()).Assume(depfunc.Pair{S: 0, R: 1}, lattice.Fwd, lattice.Bwd)
	cp := h.Clone()
	cp.ClearAssumptions()
	if h.AssumptionCount() != 1 {
		t.Error("Clone shares assumption set")
	}
	cp2 := h.Clone()
	cp2.D.Set(1, 2, lattice.BiMaybe)
	if h.D.At(1, 2) != lattice.Par {
		t.Error("Clone shares matrix")
	}
}

func TestFromDepFunc(t *testing.T) {
	d := depfunc.Bottom(ts3())
	d.Set(0, 1, lattice.FwdMaybe)
	h := FromDepFunc(d)
	if h.Weight() != d.Weight() {
		t.Errorf("weight = %d, want %d", h.Weight(), d.Weight())
	}
	d.Set(0, 2, lattice.BiMaybe)
	if h.D.At(0, 2) != lattice.Par {
		t.Error("FromDepFunc did not clone")
	}
}
