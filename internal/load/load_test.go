package load

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
)

func inprocServer(t testing.TB, cfg serve.Config) *serve.Server {
	t.Helper()
	sv := serve.New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return sv
}

func TestRunInProcess(t *testing.T) {
	reg := obs.NewRegistry()
	sv := inprocServer(t, serve.Config{Registry: reg})
	rep, err := Run(context.Background(), Config{
		Handler:  sv.Handler(),
		Streams:  4,
		Duration: 400 * time.Millisecond,
		Rate:     40,
		SLO:      Thresholds{P99LatencySeconds: 5, MaxShedRate: 0.5, MinAvailability: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	for _, c := range rep.Classes {
		if c.Streams != 2 {
			t.Errorf("class %s has %d streams, want 2", c.Class, c.Streams)
		}
		if c.Requests == 0 {
			t.Errorf("class %s sent no requests", c.Class)
		}
		if c.Errors != 0 {
			t.Errorf("class %s had %d errors", c.Class, c.Errors)
		}
		if c.Periods == 0 {
			t.Errorf("class %s cut no periods", c.Class)
		}
		if c.P99 <= 0 {
			t.Errorf("class %s p99 = %g, want > 0", c.Class, c.P99)
		}
	}
	if rep.Total.Requests == 0 || rep.Total.Throughput <= 0 {
		t.Fatalf("total = %+v", rep.Total)
	}
	if rep.Violated() {
		t.Fatalf("violations under generous thresholds: %v", rep.Violations)
	}
	// The registry saw the ingest: offered lines were counted.
	if got := reg.Snapshot().Value("serve_ingest_offered_lines_total"); got == 0 {
		t.Error("server registry did not count offered lines")
	}
	// Cleanup=false left the streams for the server's Shutdown.
	if sv.StreamCount() != 4 {
		t.Errorf("stream count = %d, want 4", sv.StreamCount())
	}
}

// TestDriftInjection runs the drift scenario end to end in process:
// every stream flips its regime mid-run and the detector must report
// the change point within the window on all of them, with no false
// alarms and no SLO violations.
func TestDriftInjection(t *testing.T) {
	sv := inprocServer(t, serve.Config{})
	rep, err := Run(context.Background(), Config{
		Handler:        sv.Handler(),
		Streams:        4,
		Duration:       2 * time.Second,
		Rate:           48, // 12 batches/s per stream, 3 periods each
		DriftFlipAfter: 15,
		DriftWindow:    20,
		SLO:            Thresholds{P99LatencySeconds: 5, MaxShedRate: 0.5, MinAvailability: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Drift
	if d == nil {
		t.Fatal("drift report missing")
	}
	if d.Streams != 4 || d.Detected != 4 || d.Undetected != 0 || d.FalseAlarms != 0 {
		t.Fatalf("drift report = %+v", d)
	}
	if d.MaxLag > d.Window {
		t.Fatalf("max lag %d over window %d", d.MaxLag, d.Window)
	}
	for _, e := range d.Entries {
		if e.Generation != 2 {
			t.Errorf("stream %s ended at generation %d, want 2 (%+v)", e.ID, e.Generation, e)
		}
	}
	if rep.Violated() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if !strings.Contains(rep.Format(), "drift: flip@15") {
		t.Errorf("report format lacks the drift line:\n%s", rep.Format())
	}
}

// TestSLOGateViolation pins the -slo gating path: an impossible p99
// threshold must produce a violated report.
func TestSLOGateViolation(t *testing.T) {
	sv := inprocServer(t, serve.Config{})
	rep, err := Run(context.Background(), Config{
		Handler:  sv.Handler(),
		Streams:  2,
		Duration: 200 * time.Millisecond,
		Rate:     20,
		SLO:      Thresholds{P99LatencySeconds: 1e-9},
		Cleanup:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Violated() {
		t.Fatalf("report not violated under 1ns p99 threshold: %+v", rep.Total)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "p99") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not mention p99", rep.Violations)
	}
	if sv.StreamCount() != 0 {
		t.Errorf("cleanup left %d streams", sv.StreamCount())
	}
}

func TestTracePropagationFromLoad(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Capacity: 1024})
	sv := inprocServer(t, serve.Config{Tracer: tr})
	rep, err := Run(context.Background(), Config{
		Handler:     sv.Handler(),
		Streams:     2,
		Duration:    300 * time.Millisecond,
		Rate:        30,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Requests == 0 {
		t.Fatal("no requests sent")
	}
	if got := len(tr.Summaries(0)); got == 0 {
		t.Fatal("no traces recorded despite TraceSample=1")
	}
}

func TestReportFormat(t *testing.T) {
	rep := Report{
		Duration: time.Second,
		Classes: []ClassReport{{
			Class: "text", Streams: 2, Requests: 100, P50: 0.001, P95: 0.01, P99: 0.6,
			Throughput: 100, Availability: 1,
		}},
		Total:      ClassReport{Class: "total", Streams: 2, Requests: 100, Availability: 1},
		Violations: []string{"text: p99 600.0ms over threshold 500.0ms"},
	}
	out := rep.Format()
	for _, want := range []string{"bbload report", "text", "total", "SLO VIOLATION", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
