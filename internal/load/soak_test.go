//go:build soak

package load

import (
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/serve"
)

// TestLoadThousandStreams is the ISSUE-6 acceptance run: bbload's
// engine drives 1000 synthetic streams for 30 seconds against an
// in-process bbserved and must complete with a full report, no
// errors, and no goroutine leak once the server is down. Run with the
// soak build tag, e.g. `make soak`.
func TestLoadThousandStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run")
	}
	before := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	sv := serve.New(serve.Config{Registry: reg, QueueDepth: 64})
	rep, err := Run(context.Background(), Config{
		Handler:  sv.Handler(),
		Streams:  1000,
		Duration: 30 * time.Second,
		Rate:     1000, // one batch/s per stream on average
		SLO:      Thresholds{P99LatencySeconds: 5, MaxShedRate: 0.05, MinAvailability: 0.999},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Format())
	if rep.Total.Requests < 1000 {
		t.Fatalf("only %d requests over 30s", rep.Total.Requests)
	}
	if rep.Total.Errors != 0 {
		t.Fatalf("%d request errors", rep.Total.Errors)
	}
	if rep.Total.P99 <= 0 || rep.Total.Periods == 0 {
		t.Fatalf("degenerate report: %+v", rep.Total)
	}
	if rep.Violated() {
		t.Fatalf("SLO violations: %v", rep.Violations)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Goroutine hygiene: everything the run spawned must be gone.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+10 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
