package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v is larger (a running maximum,
// e.g. peak working-set size).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 — burn rates, ratios and
// quantile estimates that do not fit the integer Gauge.
type FloatGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Exemplar links one observation of a histogram bucket to the trace
// that produced it, so a saturated latency bucket is one click away
// from the span tree of an offending request.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
	UnixNS  int64   `json:"unix_ns"`
}

// Histogram counts observations into fixed cumulative buckets
// (Prometheus-style: bucket i counts observations <= Bounds[i], with
// an implicit +Inf bucket equal to Count).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64              // float64 bits, CAS-updated
	ex     []atomic.Pointer[Exemplar] // len(bounds)+1, latest exemplar per bucket
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveExemplar records one observation and attaches traceID as the
// bucket's exemplar (latest wins). Unlike Observe it allocates; call
// it only for observations that actually carry a sampled trace.
func (h *Histogram) ObserveExemplar(v float64, traceID string, now time.Time) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&Exemplar{Value: v, TraceID: traceID, UnixNS: now.UnixNano()})
	h.Observe(v)
}

// BucketExemplar returns the latest exemplar of bucket i (bounds
// index; len(Bounds()) is the +Inf bucket), or nil.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the finite upper bucket bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// metric pairs a named instrument with its help string for
// exposition. name is the full series identity (base plus rendered
// label set); base and labels split it for grouped exposition.
type metric struct {
	name, help string
	base       string // metric family name without labels
	labels     string // sorted `k="v",...` inner label text, "" when unlabeled
	counter    *Counter
	gauge      *Gauge
	fgauge     *FloatGauge
	hist       *Histogram
}

func (m *metric) typ() string {
	switch {
	case m.counter != nil:
		return "counter"
	case m.gauge != nil, m.fgauge != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a dependency-free metrics registry: get-or-create
// instruments by name, exposed in the Prometheus text format, as
// JSON, or as a point-in-time Snapshot. All methods are safe for
// concurrent use; instrument updates are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	hooks   []func()

	// runtimeHooked latches once RuntimeMetrics has installed its
	// scrape hook, making repeat calls no-ops.
	runtimeHooked atomic.Bool
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Counter returns the counter with the given name, creating it on
// first use. It panics if the name is already registered as another
// type (a programming error, as in client_golang).
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help)
}

// Gauge returns the gauge with the given name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.LabeledGauge(name, help)
}

// Histogram returns the histogram with the given name, creating it
// with the given bucket upper bounds (sorted ascending; the +Inf
// bucket is implicit) on first use. Later calls ignore the bucket
// argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.LabeledHistogram(name, help, buckets)
}

// LabeledCounter returns the counter of the series name{kv...},
// creating it on first use. kv lists alternating label keys and
// values; the label order is canonicalized, so the same set always
// names the same series. All series of one metric family must share
// one instrument type.
func (r *Registry) LabeledCounter(name, help string, kv ...string) *Counter {
	m := r.getOrCreate(name, help, kv, func() *metric { return &metric{counter: &Counter{}} })
	if m.counter == nil {
		panic(fmt.Sprintf("obs: %q already registered as a %s", m.name, m.typ()))
	}
	return m.counter
}

// LabeledGauge returns the gauge of the series name{kv...}, creating
// it on first use.
func (r *Registry) LabeledGauge(name, help string, kv ...string) *Gauge {
	m := r.getOrCreate(name, help, kv, func() *metric { return &metric{gauge: &Gauge{}} })
	if m.gauge == nil {
		panic(fmt.Sprintf("obs: %q already registered as a %s", m.name, m.typ()))
	}
	return m.gauge
}

// LabeledHistogram returns the histogram of the series name{kv...},
// creating it with the given bucket bounds on first use.
func (r *Registry) LabeledHistogram(name, help string, buckets []float64, kv ...string) *Histogram {
	m := r.getOrCreate(name, help, kv, func() *metric {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		return &metric{hist: &Histogram{
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
			ex:     make([]atomic.Pointer[Exemplar], len(bounds)+1),
		}}
	})
	if m.hist == nil {
		panic(fmt.Sprintf("obs: %q already registered as a %s", m.name, m.typ()))
	}
	return m.hist
}

// FloatGauge returns the float-valued gauge with the given name,
// creating it on first use.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.LabeledFloatGauge(name, help)
}

// LabeledFloatGauge returns the float-valued gauge of the series
// name{kv...}, creating it on first use.
func (r *Registry) LabeledFloatGauge(name, help string, kv ...string) *FloatGauge {
	m := r.getOrCreate(name, help, kv, func() *metric { return &metric{fgauge: &FloatGauge{}} })
	if m.fgauge == nil {
		panic(fmt.Sprintf("obs: %q already registered as a %s", m.name, m.typ()))
	}
	return m.fgauge
}

// HistogramOpts names a histogram family and its bucket layout — the
// constructor form latency instruments use, where the fixed default
// layouts saturate (bbserved ingest latencies span µs to seconds).
type HistogramOpts struct {
	Name string
	Help string
	// Buckets lists the finite upper bounds, ascending. Nil selects
	// DefLatencyBuckets.
	Buckets []float64
}

// HistogramWith returns the histogram of the series opts.Name{kv...},
// creating it with opts.Buckets (default DefLatencyBuckets) on first
// use.
func (r *Registry) HistogramWith(opts HistogramOpts, kv ...string) *Histogram {
	buckets := opts.Buckets
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return r.LabeledHistogram(opts.Name, opts.Help, buckets, kv...)
}

// ExponentialBuckets returns n bucket bounds starting at start and
// multiplying by factor: the standard layout for latency histograms
// whose observations span several orders of magnitude.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExponentialBuckets(%g, %g, %d): want start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets spans 1µs to ~10s at roughly half-decade
// resolution — wide enough for both a sub-millisecond period learn
// and a multi-second backlog drain without saturating either end.
var DefLatencyBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// getOrCreate looks up the series for (name, kv), creating it with
// mk on a miss. It panics on malformed label lists and on
// base-name/type conflicts detected at exposition grouping level.
func (r *Registry) getOrCreate(name, help string, kv []string, mk func() *metric) *metric {
	labels := renderLabels(kv)
	series := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[series]; ok {
		return m
	}
	m := mk()
	m.name, m.help, m.base, m.labels = series, help, name, labels
	for _, o := range r.metrics {
		if o.base == name && o.typ() != m.typ() {
			panic(fmt.Sprintf("obs: family %q already registered as a %s", name, o.typ()))
		}
	}
	r.metrics[series] = m
	return m
}

// Unregister removes the series (a full SeriesName, including labels)
// from the registry, reporting whether it was present. Useful for
// per-stream series whose subject was deleted.
func (r *Registry) Unregister(series string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.metrics[series]
	delete(r.metrics, series)
	return ok
}

// SeriesName renders the canonical full series name of a metric with
// the given alternating label keys and values — the key Snapshot and
// Unregister use.
func SeriesName(name string, kv ...string) string {
	return seriesName(name, renderLabels(kv))
}

func seriesName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// renderLabels canonicalizes alternating key/value pairs into the
// sorted inner label text `k1="v1",k2="v2"`. Values are escaped per
// the Prometheus text exposition rules.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var sb strings.Builder
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeHelp escapes HELP text per the exposition format: backslash
// and newline only (double quotes are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// AddScrapeHook registers a function run at the start of every
// Snapshot/WritePrometheus/WriteJSON, for metrics that are sampled
// rather than event-driven (see RuntimeMetrics).
func (r *Registry) AddScrapeHook(f func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	// Sort by (family, labels) so every series of one family is
	// contiguous: the exposition format wants one HELP/TYPE header per
	// family, and "foo2" must not split the "foo"/"foo{...}" group.
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus emits every metric in the Prometheus text
// exposition format (version 0.0.4), suitable for a /metrics
// endpoint.
func (r *Registry) WritePrometheus(w io.Writer) error {
	prevBase := ""
	for _, m := range r.sorted() {
		if m.base != prevBase {
			prevBase = m.base
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.base, escapeHelp(m.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.base, m.typ()); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case m.fgauge != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatBound(m.fgauge.Value()))
		default:
			// Histogram suffixes attach to the family name; the le
			// label joins any series labels.
			withLE := func(le string) string {
				inner := `le="` + le + `"`
				if m.labels != "" {
					inner = m.labels + "," + inner
				}
				return m.base + "_bucket{" + inner + "}"
			}
			h := m.hist
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s %d\n", withLE(formatBound(b)), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), h.Count()); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s %s\n",
				seriesName(m.base+"_sum", m.labels), formatBound(h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s %d\n", seriesName(m.base+"_count", m.labels), h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// Handler returns an http.Handler serving WritePrometheus — the
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Bucket is one cumulative histogram bucket of a Snapshot.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
	// Exemplar is the bucket's latest trace exemplar, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Metric is the snapshot of one instrument.
type Metric struct {
	Type string `json:"type"`
	// Value is the counter or gauge value.
	Value int64 `json:"value,omitempty"`
	// Float is the value of a float-valued gauge.
	Float float64 `json:"float,omitempty"`
	// Histogram fields: total count, sum of observations, cumulative
	// finite buckets (the +Inf bucket equals Count).
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram
// Metric by linear interpolation within the winning bucket, the same
// estimate Prometheus's histogram_quantile produces. It returns 0 for
// an empty histogram and the highest finite bound when the quantile
// lands in the +Inf bucket.
func (m Metric) Quantile(q float64) float64 {
	if m.Type != "histogram" || m.Count == 0 || len(m.Buckets) == 0 {
		return 0
	}
	rank := q * float64(m.Count)
	for i, b := range m.Buckets {
		if float64(b.Count) >= rank {
			lower, lowerCount := 0.0, int64(0)
			if i > 0 {
				lower, lowerCount = m.Buckets[i-1].LE, m.Buckets[i-1].Count
			}
			width := b.LE - lower
			inBucket := b.Count - lowerCount
			if inBucket <= 0 {
				return b.LE
			}
			return lower + width*(rank-float64(lowerCount))/float64(inBucket)
		}
	}
	return m.Buckets[len(m.Buckets)-1].LE
}

// Snapshot is a point-in-time copy of a Registry, keyed by metric
// name. It is the form used by tests and by before/after diffs.
type Snapshot map[string]Metric

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{}
	for _, m := range r.sorted() {
		switch {
		case m.counter != nil:
			out[m.name] = Metric{Type: "counter", Value: m.counter.Value()}
		case m.gauge != nil:
			out[m.name] = Metric{Type: "gauge", Value: m.gauge.Value()}
		case m.fgauge != nil:
			out[m.name] = Metric{Type: "gauge", Float: m.fgauge.Value()}
		default:
			h := m.hist
			bs := make([]Bucket, len(h.bounds))
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				bs[i] = Bucket{LE: b, Count: cum, Exemplar: h.ex[i].Load()}
			}
			out[m.name] = Metric{Type: "histogram", Count: h.Count(), Sum: h.Sum(), Buckets: bs}
		}
	}
	return out
}

// WriteJSON emits the Snapshot as one JSON object keyed by metric
// name.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Diff returns s minus prev: counters and histograms are subtracted
// (metrics absent from prev count from zero), gauges keep their
// current value. Useful for isolating one run's contribution on a
// shared registry.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{}
	for name, m := range s {
		p := prev[name]
		switch m.Type {
		case "counter":
			m.Value -= p.Value
		case "histogram":
			m.Count -= p.Count
			m.Sum -= p.Sum
			bs := append([]Bucket(nil), m.Buckets...)
			for i := range bs {
				if i < len(p.Buckets) && p.Buckets[i].LE == bs[i].LE {
					bs[i].Count -= p.Buckets[i].Count
				}
			}
			m.Buckets = bs
		}
		out[name] = m
	}
	return out
}

// Value returns the counter/gauge value of the named metric (zero if
// absent) — a test convenience.
func (s Snapshot) Value(name string) int64 { return s[name].Value }

// HistCount returns the observation count of the named histogram
// (zero if absent).
func (s Snapshot) HistCount(name string) int64 { return s[name].Count }
