package learner

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/hypothesis"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/trace"
)

// Online is the incremental form of the learner: the paper's algorithm
// processes one period at a time and never revisits earlier instances,
// so a logging device can feed periods as they are captured and read
// out the current hypothesis set at any time.
//
//	o, _ := learner.NewOnline(tasks, learner.Options{Bound: 32})
//	for p := range periods {
//	    if err := o.AddPeriod(p); err != nil { ... }
//	}
//	res, _ := o.Result()
//
// Online and the batch Learn function produce identical results for
// the same sequence of periods (guaranteed by tests). Options.
// VerifyResults is ignored by Result, which has no access to the
// already-consumed instances; use MatchTrace on a retained trace if
// post-hoc verification is wanted.
//
// With Options.Observer set, AddPeriod emits the structured
// run-trace (PeriodStart, MessageProcessed, hypothesis events,
// PeriodEnd); the RunEnd event is only emitted by the batch Learn,
// since an incremental session has no defined end.
type Online struct {
	ts    *depfunc.TaskSet
	opt   Options
	hist  []bool
	cur   []*hypothesis.Hypothesis
	stats Stats
	err   error
}

// NewOnline starts an incremental learning session over the predefined
// task set.
func NewOnline(tasks []string, opt Options) (*Online, error) {
	ts, err := depfunc.NewTaskSet(tasks)
	if err != nil {
		return nil, err
	}
	n := ts.Len()
	bottom := hypothesis.Bottom(ts)
	if opt.Provenance {
		bottom.EnableProvenance()
	}
	o := &Online{
		ts:   ts,
		opt:  opt,
		hist: make([]bool, n*n),
		cur:  []*hypothesis.Hypothesis{bottom},
	}
	o.stats.Peak = 1
	return o, nil
}

// TaskSet returns the session's task set.
func (o *Online) TaskSet() *depfunc.TaskSet { return o.ts }

// Err returns the sticky error of the session, if any. Once a period
// fails, the session is dead: the hypothesis set no longer reflects a
// consistent prefix of the instance stream.
func (o *Online) Err() error { return o.err }

// Stats returns a snapshot of the instrumentation counters.
func (o *Online) Stats() Stats { return o.stats }

// WorkingSetSize returns the current number of live hypotheses.
func (o *Online) WorkingSetSize() int { return len(o.cur) }

// AddPeriod consumes one instance: message-guided generalization over
// the period's messages followed by the end-of-period post-processing.
func (o *Online) AddPeriod(p *trace.Period) error {
	if o.err != nil {
		return o.err
	}
	obsv := o.opt.Observer
	if obsv != nil {
		obsv.OnPeriodStart(obs.PeriodStart{Period: p.Index, Messages: len(p.Msgs)})
	}
	n := o.ts.Len()
	executed := execVector(p, o.ts)
	spCand := obs.StartSpan(obsv, obs.PhaseCandidates)
	cands := depfunc.Candidates(p, o.ts, o.opt.Policy)
	live := liveSuffixes(cands)
	spCand.End()
	cur := o.cur
	spGen := obs.StartSpan(obsv, obs.PhaseGeneralize)
	for mi := range p.Msgs {
		next, err := analyzeMessage(cur, cands[mi], o.hist, n, o.opt, &o.stats, p.Index, mi, p.Msgs[mi].ID)
		if err != nil {
			spGen.End()
			o.err = fmt.Errorf("%w (period %d, message %q)", err, p.Index, p.Msgs[mi].ID)
			return o.err
		}
		cur = forgetDeadAssumptions(next, live[mi+1])
		o.stats.Messages++
		o.stats.Candidates += len(cands[mi])
		if len(cur) > o.stats.Peak {
			o.stats.Peak = len(cur)
		}
		if obsv != nil {
			obsv.OnMessageProcessed(obs.MessageProcessed{
				Period: p.Index, Index: mi, ID: p.Msgs[mi].ID,
				Candidates: len(cands[mi]), Live: len(cur),
			})
		}
	}
	spGen.End()
	spPost := obs.StartSpan(obsv, obs.PhasePostprocess)
	relaxed := 0
	endCtx := hypothesis.StepCtx{Period: p.Index, Msg: -1}
	for _, h := range cur {
		relaxed += h.Relax(func(i int) bool { return executed[i] }, endCtx)
		h.ClearAssumptions()
	}
	o.stats.Relaxations += relaxed
	before := len(cur)
	cur = pruneMostSpecific(cur, obsv, p.Index)
	updateHistory(o.hist, executed, n)
	spPost.End()
	o.cur = cur
	o.stats.Periods++
	o.stats.PeriodLive = append(o.stats.PeriodLive, len(cur))
	if obsv != nil {
		// pruneMostSpecific leaves the survivors sorted by ascending
		// weight, so the weight range is at the ends.
		obsv.OnPeriodEnd(obs.PeriodEnd{
			Period:      p.Index,
			Live:        len(cur),
			Dropped:     before - len(cur),
			WeightMin:   cur[0].Weight(),
			WeightMax:   cur[len(cur)-1].Weight(),
			Relaxations: relaxed,
		})
	}
	return nil
}

// Result snapshots the current hypothesis set. The session remains
// usable: further periods may be added and Result called again. The
// returned dependency functions are deep copies and never mutated by
// subsequent AddPeriod calls.
func (o *Online) Result() (*Result, error) {
	if o.err != nil {
		return nil, o.err
	}
	ds := make([]*depfunc.DepFunc, 0, len(o.cur))
	var prov map[*depfunc.DepFunc][]ProvStep
	if o.opt.Provenance {
		prov = make(map[*depfunc.DepFunc][]ProvStep, len(o.cur))
	}
	for _, h := range o.cur {
		d := h.D.Clone()
		ds = append(ds, d)
		if prov != nil {
			prov[d] = h.Provenance()
		}
	}
	snap := o.opt
	snap.VerifyResults = false
	res, err := finish(o.ts, nil, ds, snap, o.stats)
	if err != nil {
		return nil, err
	}
	res.prov = prov
	return res, nil
}
