package learner

import (
	"fmt"

	"github.com/blackbox-rt/modelgen/internal/engine"
)

// DeltaVersion is the per-period incremental checkpoint schema
// version (the WAL-record payload of internal/store consumers).
// Version 2 carries working-set literals as packed-word encodings
// (Packed) instead of rendered tables; ApplyDelta still accepts
// version-1 records, so WALs written by older binaries replay
// unchanged.
const DeltaVersion = 2

// Delta is the serializable change record of exactly one consumed
// period: the engine's period delta (history flips, working-set edit
// script, counter snapshot) plus the retained-ring append. Appending
// a Delta per period to a write-ahead log and replaying the log onto
// a restored session reproduces the original session bit-identically,
// at a steady-state cost of O(change) — an unchanged working set
// serializes as a flag, not a model copy.
//
// Like Snapshot, a Delta carries no runtime options and no provenance
// chains; the session applying it supplies those.
type Delta struct {
	Version int `json:"version"`
	// Period is the engine period count after applying this delta.
	Period int `json:"period"`
	// HistSet lists execution-violation history indices flipped to
	// true by this period.
	HistSet []int `json:"hist_set,omitempty"`
	// Same/Keep/Packed encode the post-period working set relative to
	// the pre-period one; see engine.PeriodDelta. Tables is the
	// version-1 literal encoding, still accepted on apply.
	Same   bool     `json:"same,omitempty"`
	Keep   []int    `json:"keep,omitempty"`
	Packed []string `json:"packed,omitempty"`
	Tables []string `json:"tables,omitempty"`
	// Stats is the post-period counter snapshot with PeriodLive
	// elided; Live is this period's PeriodLive entry.
	Stats engine.Stats `json:"stats"`
	Live  int          `json:"live"`
	// Retained is the period appended to the verification ring, set
	// exactly when the session retains periods (RetainPeriods > 0).
	Retained *SnapshotPeriod `json:"retained,omitempty"`
}

// PeriodDelta captures the change record of the single period added
// since the last capture point (session start, restore, Snapshot or
// the previous PeriodDelta). Call it after every AddPeriod; skipping
// periods fails with engine.ErrDeltaSpan and the caller must take a
// full Snapshot instead.
func (o *Online) PeriodDelta() (*Delta, error) {
	if o.err != nil {
		return nil, fmt.Errorf("learner: delta of a dead session: %w", o.err)
	}
	pd, err := o.eng.PeriodDelta()
	if err != nil {
		return nil, fmt.Errorf("learner: %w", err)
	}
	d := &Delta{
		Version: DeltaVersion,
		Period:  pd.Periods,
		HistSet: pd.HistSet,
		Same:    pd.Same,
		Keep:    pd.Keep,
		Packed:  pd.Packed,
		Tables:  pd.Tables,
		Stats:   pd.Stats,
		Live:    pd.Live,
	}
	if o.opt.RetainPeriods > 0 && len(o.retained) > 0 {
		// The most recently written ring slot holds this period's
		// retained copy.
		last := len(o.retained) - 1
		if len(o.retained) == o.opt.RetainPeriods {
			last = (o.next - 1 + o.opt.RetainPeriods) % o.opt.RetainPeriods
		}
		sp := snapshotPeriod(o.retained[last])
		d.Retained = &sp
	}
	return d, nil
}

// ApplyDelta advances the session by one captured period without
// reprocessing it: the working set, history, stats and retained ring
// end up bit-identical to the session the delta was captured from, so
// subsequent AddPeriod calls (and further delta captures) continue
// exactly as the original would have.
func (o *Online) ApplyDelta(d *Delta) error {
	if o.err != nil {
		return fmt.Errorf("learner: apply delta to a dead session: %w", o.err)
	}
	if d.Version != DeltaVersion && d.Version != 1 {
		return fmt.Errorf("learner: delta version %d, this binary applies 1..%d", d.Version, DeltaVersion)
	}
	if (d.Retained != nil) != (o.opt.RetainPeriods > 0) {
		if d.Retained == nil {
			return fmt.Errorf("learner: delta for period %d carries no retained period, session retains %d",
				d.Period, o.opt.RetainPeriods)
		}
		return fmt.Errorf("learner: delta for period %d carries a retained period, session retains none", d.Period)
	}
	pd := engine.PeriodDelta{
		Periods: d.Period,
		HistSet: d.HistSet,
		Same:    d.Same,
		Keep:    d.Keep,
		Packed:  d.Packed,
		Tables:  d.Tables,
		Stats:   d.Stats,
		Live:    d.Live,
	}
	if err := o.eng.ApplyPeriodDelta(&pd); err != nil {
		return fmt.Errorf("learner: %w", err)
	}
	if d.Retained != nil {
		p := d.Retained.period()
		if len(o.retained) < o.opt.RetainPeriods {
			o.retained = append(o.retained, p)
		} else {
			o.retained[o.next] = p
			o.next = (o.next + 1) % o.opt.RetainPeriods
		}
	}
	return nil
}
