// Command bbgate is the thin cluster router in front of a set of
// bbserved -cluster nodes: it places every stream on a node by
// consistent hashing, proxies the /v1/streams API to the owner
// (forwarding the client's headers, traceparent included), runs
// checkpoint-handoff migrations, and aggregates the nodes' metrics.
//
// Usage:
//
//	bbgate -addr :8080 -node node-0=http://10.0.0.1:8081 -node node-1=http://10.0.0.2:8081
//	bbgate -addr :8080 -node n0=http://h0:8081 -node n1=http://h1:8081 -seed 42 -vnodes 128
//
// Node names must match each bbserved's -node-id, or placement and
// fencing drift apart. API, beyond the proxied /v1/streams surface:
//
//	GET  /cluster/ring           membership, ring config, per-stream placement
//	GET  /cluster/metrics        per-node metric snapshots plus a cluster rollup
//	POST /cluster/migrate/{id}?target=<node>   move a stream by checkpoint handoff
//	GET  /healthz                liveness
//	GET  /metrics                the gateway's own Prometheus series
//
// Placement is a pure function of (seed, membership, stream ID), so a
// restarted gateway reaches the same placement the nodes were fenced
// under — epochs restart at 1, which every unfenced node accepts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/blackbox-rt/modelgen/internal/cluster"
	"github.com/blackbox-rt/modelgen/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbgate: ")
	var backends []cluster.Backend
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		seed    = flag.Uint64("seed", 0, "placement ring hash seed (must match across gateway restarts)")
		vnodes  = flag.Int("vnodes", 0, "virtual nodes per member (0 = default)")
		migWait = flag.Duration("migration-wait", 5*time.Second, "how long a request waits for an in-flight migration of its stream before 503")
		maxBody = flag.Int64("max-body", 1<<20, "maximum create request body in bytes")
	)
	flag.Func("node", "cluster member as name=base-url (repeatable; name must match the node's -node-id)", func(v string) error {
		name, url, ok := strings.Cut(v, "=")
		if !ok || name == "" || url == "" {
			return fmt.Errorf("want name=base-url, got %q", v)
		}
		backends = append(backends, cluster.Backend{Name: name, URL: strings.TrimRight(url, "/")})
		return nil
	})
	flag.Parse()
	if len(backends) == 0 {
		log.Fatal("at least one -node name=base-url is required")
	}

	reg := obs.NewRegistry()
	obs.RuntimeMetrics(reg)
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Backends:      backends,
		Ring:          cluster.RingConfig{Seed: *seed, VirtualNodes: *vnodes},
		Registry:      reg,
		MigrationWait: *migWait,
		MaxBody:       *maxBody,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: gw.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	log.Printf("routing for %s on %s", strings.Join(names, ", "), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("done")
}
