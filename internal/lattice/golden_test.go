package lattice

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden lattice tables")

// TestGoldenTables pins every derived table of the 7-value lattice —
// order, join, meet, distance (Definition 8 / Figure 3), level and
// reversal — as one reviewable golden file. Any change to the lattice
// definition shows up as a full-table diff instead of a scattering of
// single-case failures; regenerate deliberately with
//
//	go test ./internal/lattice -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	got := renderTables()
	path := filepath.Join("testdata", "tables.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Errorf("lattice tables changed; diff against %s:\n%s\n(run with -update if the change is intended)",
			path, diffLines(string(want), got))
	}
}

func renderTables() string {
	vals := Values()
	var sb strings.Builder
	header := func(name string) {
		fmt.Fprintf(&sb, "# %s\n", name)
	}
	binary := func(name string, f func(a, b Value) string) {
		header(name)
		sb.WriteString(cell(""))
		for _, b := range vals {
			sb.WriteString(cell(b.String()))
		}
		sb.WriteString("\n")
		for _, a := range vals {
			sb.WriteString(cell(a.String()))
			for _, b := range vals {
				sb.WriteString(cell(f(a, b)))
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	binary("LEQ (a ⊑ b)", func(a, b Value) string {
		if Leq(a, b) {
			return "1"
		}
		return "."
	})
	binary("JOIN (a ⊔ b)", func(a, b Value) string { return Join(a, b).String() })
	binary("MEET (a ⊓ b)", func(a, b Value) string { return Meet(a, b).String() })
	header("VALUE  DIST  LEVEL  REVERSE  EXEC_CONSTRAINT")
	for _, v := range vals {
		fmt.Fprintf(&sb, "%s%s%s%s%v\n",
			cell(v.String()), cell(fmt.Sprint(Distance(v))), cell(fmt.Sprint(Level(v))),
			cell(Reverse(v).String()), HasExecConstraint(v))
	}
	return sb.String()
}

// cell pads by rune count, not byte count: the lattice symbols are
// multi-byte UTF-8 and %-6s would misalign the columns.
func cell(s string) string {
	pad := 6 - len([]rune(s))
	if pad < 1 {
		pad = 1
	}
	return s + strings.Repeat(" ", pad)
}

func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&sb, "line %d:\n  -%s\n  +%s\n", i+1, wl, gl)
		}
	}
	return sb.String()
}

// TestGoldenTablesCoverAllPairs guards the golden render itself: it
// must mention every one of the 7×7 value pairs in each binary table
// (a silent truncation of Values() would otherwise shrink the golden
// file and still pass).
func TestGoldenTablesCoverAllPairs(t *testing.T) {
	if n := len(Values()); n != 7 {
		t.Fatalf("lattice has %d values, the paper's V has 7", n)
	}
	rendered := renderTables()
	for _, section := range []string{"LEQ", "JOIN", "MEET"} {
		if !strings.Contains(rendered, "# "+section) {
			t.Errorf("golden render lost the %s section", section)
		}
	}
	// 3 binary tables × (1 header row + 7 rows) + 1 unary section with
	// 1 header + 7 rows, plus section titles and blank lines.
	lines := strings.Split(strings.TrimRight(rendered, "\n"), "\n")
	wantLines := 3*(1+7+2) + (1 + 7)
	if len(lines) != wantLines {
		t.Errorf("golden render has %d lines, want %d", len(lines), wantLines)
	}
}
