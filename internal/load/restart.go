package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/blackbox-rt/modelgen/internal/serve"
)

// RestartConfig configures a cold-restart scenario: seed a store with
// N checkpointed streams, restart the server from disk, and measure
// how long the restore scan takes and how quickly the first ingest on
// a small active subset becomes visible — the lazy-hydration cost a
// client actually observes. The scenario owns the server lifecycle,
// so it always runs in process.
type RestartConfig struct {
	// Dir is the store root; it must be empty or nonexistent (the seed
	// phase populates it and the restart phase re-opens it).
	Dir string
	// Streams is the number of streams seeded and checkpointed
	// (default 1000).
	Streams int
	// Active is how many of them receive traffic after the restart
	// (default 10).
	Active int
	// Periods is the learned periods seeded per stream (default 3).
	Periods int
	// Seeders bounds the concurrent seeding workers (default 32).
	Seeders int
	// QueueDepth sets the server's per-stream ingest queue.
	QueueDepth int
}

// Latency summarizes a small latency sample in seconds.
type Latency struct {
	P50  float64 `json:"p50_seconds"`
	P95  float64 `json:"p95_seconds"`
	Max  float64 `json:"max_seconds"`
	Mean float64 `json:"mean_seconds"`
}

// RestartReport is the outcome of a cold-restart scenario.
type RestartReport struct {
	Streams int `json:"streams"`
	Active  int `json:"active"`
	Periods int `json:"periods_per_stream"`
	// SeedSeconds is the wall time of the seed phase (create + feed +
	// drain), for context only.
	SeedSeconds float64 `json:"seed_seconds"`
	// RestoreSeconds is the wall time of RestoreFromDir on the cold
	// store — the restart cost that must stay O(index scan), not
	// O(total state).
	RestoreSeconds  float64 `json:"restore_seconds"`
	RestoredStreams int     `json:"restored_streams"`
	// HydratedAfterRestore counts streams with learner state paged in
	// right after the restore scan; the lazy-hydration contract pins
	// it at zero.
	HydratedAfterRestore int `json:"hydrated_after_restore"`
	// FirstIngest is the per-active-stream latency from the first
	// ingest POST to the new period being visible in /stats — the
	// client-observed hydration + learning cost.
	FirstIngest Latency `json:"first_ingest"`
	// HydratedAfterActive counts hydrated streams after the active
	// subset was driven; the contract pins it at exactly Active.
	HydratedAfterActive int      `json:"hydrated_after_active"`
	Violations          []string `json:"violations,omitempty"`
}

// Violated reports whether the scenario broke a hydration contract.
func (r RestartReport) Violated() bool { return len(r.Violations) > 0 }

// Format renders the human-readable restart report.
func (r RestartReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bbload restart report: %d streams (%d active), %d periods each\n",
		r.Streams, r.Active, r.Periods)
	fmt.Fprintf(&sb, "seed %0.2fs  restore %s (%d streams)  hydrated after restore: %d, after active: %d\n",
		r.SeedSeconds, fmtSec(r.RestoreSeconds), r.RestoredStreams,
		r.HydratedAfterRestore, r.HydratedAfterActive)
	fmt.Fprintf(&sb, "first ingest: p50 %s p95 %s max %s mean %s\n",
		fmtSec(r.FirstIngest.P50), fmtSec(r.FirstIngest.P95),
		fmtSec(r.FirstIngest.Max), fmtSec(r.FirstIngest.Mean))
	if len(r.Violations) == 0 {
		sb.WriteString("restart: ok\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "RESTART VIOLATION: %s\n", v)
		}
	}
	return sb.String()
}

func restartStreamID(i int) string { return fmt.Sprintf("restart-%05d", i) }

// RunRestart executes the cold-restart scenario.
func RunRestart(ctx context.Context, cfg RestartConfig) (RestartReport, error) {
	if cfg.Dir == "" {
		return RestartReport{}, fmt.Errorf("load: restart scenario needs a store dir")
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1000
	}
	if cfg.Active <= 0 {
		cfg.Active = 10
	}
	if cfg.Active > cfg.Streams {
		cfg.Active = cfg.Streams
	}
	if cfg.Periods <= 0 {
		cfg.Periods = 3
	}
	if cfg.Seeders <= 0 {
		cfg.Seeders = 32
	}
	rep := RestartReport{Streams: cfg.Streams, Active: cfg.Active, Periods: cfg.Periods}

	// Phase 1: seed. Every period is WAL-durable on consume, so a
	// drained shutdown checkpoints the whole fleet with no explicit
	// checkpoint calls.
	sv := serve.New(serve.Config{CheckpointDir: cfg.Dir, QueueDepth: cfg.QueueDepth})
	tgt := &target{base: "http://bbserved.inproc",
		c: &http.Client{Transport: inprocTransport{h: sv.Handler()}}}
	t0 := time.Now()
	if err := seedRestartStreams(ctx, tgt, cfg); err != nil {
		return rep, err
	}
	if err := sv.Shutdown(ctx); err != nil {
		return rep, fmt.Errorf("load: seed shutdown: %w", err)
	}
	rep.SeedSeconds = time.Since(t0).Seconds()

	// Phase 2: cold restart. RestoreFromDir is an index scan; nothing
	// hydrates until touched.
	sv2 := serve.New(serve.Config{CheckpointDir: cfg.Dir, QueueDepth: cfg.QueueDepth})
	t1 := time.Now()
	n, err := sv2.RestoreFromDir()
	rep.RestoreSeconds = time.Since(t1).Seconds()
	rep.RestoredStreams = n
	if err != nil {
		return rep, fmt.Errorf("load: restore: %w", err)
	}
	tgt2 := &target{base: "http://bbserved.inproc",
		c: &http.Client{Transport: inprocTransport{h: sv2.Handler()}}}
	defer sv2.Shutdown(context.Background())

	rep.HydratedAfterRestore, err = countHydrated(ctx, tgt2)
	if err != nil {
		return rep, err
	}

	// Phase 3: drive the active subset and time each stream's first
	// ingest until the learned period is visible in /stats.
	clock := int64(cfg.Periods) * workerPeriodUS
	batch := fmt.Sprintf("exec t1 %d %d\nmsg m1 %d %d\nexec t2 %d %d\nperiod\n",
		clock, clock+100, clock+150, clock+200, clock+400, clock+500)
	samples := make([]float64, 0, cfg.Active)
	for i := 0; i < cfg.Active; i++ {
		id := restartStreamID(i)
		t := time.Now()
		code, _, out, err := tgt2.do(ctx, "POST", "/v1/streams/"+id+"/events", []byte(batch), nil)
		if err != nil {
			return rep, fmt.Errorf("load: first ingest %s: %w", id, err)
		}
		if code != http.StatusAccepted {
			return rep, fmt.Errorf("load: first ingest %s: status %d: %s", id, code, out)
		}
		if err := waitPeriods(ctx, tgt2, id, cfg.Periods+1); err != nil {
			return rep, err
		}
		samples = append(samples, time.Since(t).Seconds())
	}
	rep.FirstIngest = summarizeLatency(samples)

	rep.HydratedAfterActive, err = countHydrated(ctx, tgt2)
	if err != nil {
		return rep, err
	}
	rep.Violations = evaluateRestart(rep)
	return rep, nil
}

// seedRestartStreams creates and feeds the fleet with a bounded
// worker pool.
func seedRestartStreams(ctx context.Context, tgt *target, cfg RestartConfig) error {
	sem := make(chan struct{}, cfg.Seeders)
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	for i := 0; i < cfg.Streams; i++ {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := seedOne(ctx, tgt, restartStreamID(i), cfg.Periods); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func seedOne(ctx context.Context, tgt *target, id string, periods int) error {
	body := fmt.Sprintf(`{"id":%q,"tasks":["t1","t2"]}`, id)
	code, _, out, err := tgt.do(ctx, "POST", "/v1/streams", []byte(body), nil)
	if err != nil {
		return fmt.Errorf("load: create %s: %w", id, err)
	}
	if code != http.StatusCreated {
		return fmt.Errorf("load: create %s: status %d: %s", id, code, out)
	}
	var sb strings.Builder
	for k := 0; k < periods; k++ {
		base := int64(k) * workerPeriodUS
		fmt.Fprintf(&sb, "exec t1 %d %d\nmsg m1 %d %d\nexec t2 %d %d\nperiod\n",
			base, base+100, base+150, base+200, base+400, base+500)
	}
	code, _, out, err = tgt.do(ctx, "POST", "/v1/streams/"+id+"/events", []byte(sb.String()), nil)
	if err != nil {
		return fmt.Errorf("load: seed %s: %w", id, err)
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("load: seed %s: status %d: %s", id, code, out)
	}
	return nil
}

// waitPeriods polls the stream's stats until the learner has consumed
// want periods.
func waitPeriods(ctx context.Context, tgt *target, id string, want int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _, out, err := tgt.do(ctx, "GET", "/v1/streams/"+id+"/stats", nil, nil)
		if err != nil {
			return fmt.Errorf("load: stats %s: %w", id, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("load: stats %s: status %d: %s", id, code, out)
		}
		var st struct {
			PeriodsLearned int    `json:"periods_learned"`
			Err            string `json:"err"`
		}
		if err := json.Unmarshal(out, &st); err != nil {
			return err
		}
		if st.Err != "" {
			return fmt.Errorf("load: stream %s died: %s", id, st.Err)
		}
		if st.PeriodsLearned >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("load: stream %s stuck at %d/%d periods", id, st.PeriodsLearned, want)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// countHydrated reads /debug/streams and counts paged-in streams.
func countHydrated(ctx context.Context, tgt *target) (int, error) {
	code, _, out, err := tgt.do(ctx, "GET", "/debug/streams", nil, nil)
	if err != nil {
		return 0, fmt.Errorf("load: debug streams: %w", err)
	}
	if code != http.StatusOK {
		return 0, fmt.Errorf("load: debug streams: status %d: %s", code, out)
	}
	var dbg struct {
		Streams []struct {
			Hydrated bool `json:"hydrated"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(out, &dbg); err != nil {
		return 0, err
	}
	n := 0
	for _, s := range dbg.Streams {
		if s.Hydrated {
			n++
		}
	}
	return n, nil
}

func summarizeLatency(samples []float64) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	sort.Float64s(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	p50, p95, _ := quantiles(samples)
	return Latency{
		P50:  p50,
		P95:  p95,
		Max:  samples[len(samples)-1],
		Mean: sum / float64(len(samples)),
	}
}

// evaluateRestart turns broken hydration contracts into violations.
func evaluateRestart(rep RestartReport) []string {
	var out []string
	if rep.RestoredStreams != rep.Streams {
		out = append(out, fmt.Sprintf("restart: restored %d of %d seeded streams",
			rep.RestoredStreams, rep.Streams))
	}
	if rep.HydratedAfterRestore != 0 {
		out = append(out, fmt.Sprintf("restart: %d streams hydrated eagerly by the restore scan",
			rep.HydratedAfterRestore))
	}
	if rep.HydratedAfterActive != rep.Active {
		out = append(out, fmt.Sprintf("restart: %d streams hydrated after driving %d",
			rep.HydratedAfterActive, rep.Active))
	}
	return out
}
