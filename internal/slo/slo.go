// Package slo evaluates service-level objectives over an obs.Registry
// with multi-window burn-rate math.
//
// An Objective declares a target fraction of good events and a
// service-level indicator that classifies events as good or bad —
// either a latency SLI (observations of a registry histogram under a
// threshold are good) or a ratio SLI (a bad-event counter over a
// total-event counter). A Monitor keeps a bounded ring of timestamped
// registry snapshots and, for each configured window, computes the
// burn rate over that window:
//
//	burn = badFraction / (1 − target)
//
// A burn rate of 1 consumes the error budget exactly at the rate the
// target allows; the default windows use the classic multi-window
// thresholds (14.4× over 5 m, 6× over 1 h, 1× over 6 h) so a fast
// burn trips quickly while a slow leak still alerts. Results are
// published as modelgen_slo_* series on the same registry and served
// as JSON by Handler (the /slo endpoint). Latency objectives carry
// the exemplar trace ID of the current p99 bucket, linking a slow SLI
// straight to a span tree at /debug/traces.
package slo

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/blackbox-rt/modelgen/internal/obs"
)

// Objective is one declarative SLO: a target plus exactly one SLI.
type Objective struct {
	// Name identifies the objective (label value of the
	// modelgen_slo_* series).
	Name string `json:"name"`
	// Description says what the objective protects.
	Description string `json:"description,omitempty"`
	// Target is the desired good fraction in (0, 1), e.g. 0.999.
	Target float64 `json:"target"`

	// LatencySeries selects a latency SLI: the full series name of a
	// registry histogram of seconds. Observations <= Threshold are
	// good. Thresholds between bucket bounds are rounded down to the
	// nearest bound (conservative: borderline events count as bad).
	LatencySeries string  `json:"latency_series,omitempty"`
	Threshold     float64 `json:"threshold_seconds,omitempty"`

	// BadSeries/TotalSeries select a ratio SLI over two counters:
	// badFraction = ΔBad / ΔTotal per window.
	BadSeries   string `json:"bad_series,omitempty"`
	TotalSeries string `json:"total_series,omitempty"`
}

// Window is one burn-rate evaluation window.
type Window struct {
	// Name labels the window in series and JSON ("5m", "1h", ...).
	Name string `json:"name"`
	// Dur is the window length.
	Dur time.Duration `json:"-"`
	// Burn is the burn-rate threshold at or above which the window is
	// violated.
	Burn float64 `json:"burn_threshold"`
}

// DefaultWindows are the classic multi-window burn-rate alerts:
// page-fast on a 5-minute 14.4× burn, page-slow on a 1-hour 6× burn,
// ticket on a 6-hour budget-rate burn.
func DefaultWindows() []Window {
	return []Window{
		{Name: "5m", Dur: 5 * time.Minute, Burn: 14.4},
		{Name: "1h", Dur: time.Hour, Burn: 6},
		{Name: "6h", Dur: 6 * time.Hour, Burn: 1},
	}
}

// Config configures a Monitor.
type Config struct {
	Registry   *obs.Registry
	Objectives []Objective
	// Windows defaults to DefaultWindows().
	Windows []Window
	// MaxSamples bounds the snapshot ring (default 4096).
	MaxSamples int
}

// Monitor evaluates objectives over a ring of registry snapshots.
type Monitor struct {
	reg        *obs.Registry
	objectives []Objective
	windows    []Window
	maxSamples int

	mu      sync.Mutex
	samples []sample // ascending by time
}

type sample struct {
	at   time.Time
	snap obs.Snapshot
}

// NewMonitor returns a Monitor over cfg.Registry. It does not sample
// by itself: call Sample on a schedule (or Start).
func NewMonitor(cfg Config) *Monitor {
	if cfg.Windows == nil {
		cfg.Windows = DefaultWindows()
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 4096
	}
	return &Monitor{
		reg:        cfg.Registry,
		objectives: cfg.Objectives,
		windows:    cfg.Windows,
		maxSamples: cfg.MaxSamples,
	}
}

// Sample snapshots the registry at the given instant, evicts samples
// older than the longest window, and refreshes the modelgen_slo_*
// series. Tests drive it with a synthetic clock; Start drives it with
// the wall clock.
func (m *Monitor) Sample(now time.Time) {
	snap := m.reg.Snapshot()
	var maxDur time.Duration
	for _, w := range m.windows {
		if w.Dur > maxDur {
			maxDur = w.Dur
		}
	}
	m.mu.Lock()
	m.samples = append(m.samples, sample{at: now, snap: snap})
	cut := 0
	for cut < len(m.samples)-1 && m.samples[cut].at.Before(now.Add(-maxDur)) {
		cut++
	}
	if over := len(m.samples) - m.maxSamples; over > cut {
		cut = over
	}
	m.samples = m.samples[cut:]
	m.mu.Unlock()
	m.publish(m.statusLocked(now))
}

// Start samples every interval until the returned stop function is
// called.
func (m *Monitor) Start(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				m.Sample(now)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Status is the point-in-time SLO evaluation served at /slo.
type Status struct {
	SampledAt  time.Time         `json:"sampled_at"`
	Healthy    bool              `json:"healthy"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// ObjectiveStatus is one objective's evaluation across all windows.
type ObjectiveStatus struct {
	Objective
	Windows []WindowStatus `json:"windows"`
	// Violated reports whether any window is at or past its burn
	// threshold.
	Violated bool `json:"violated"`
	// ExemplarTraceID is the trace exemplar of the current p99 bucket
	// of a latency objective, if one was recorded.
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
	// P99Seconds is the current all-time p99 estimate of a latency
	// objective.
	P99Seconds float64 `json:"p99_seconds,omitempty"`
}

// WindowStatus is one objective × window burn evaluation.
type WindowStatus struct {
	Window      string  `json:"window"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is badFraction/(1−target); 1 means the error budget is
	// being consumed exactly at the sustainable rate.
	BurnRate float64 `json:"burn_rate"`
	Violated bool    `json:"violated"`
}

// Status evaluates every objective over the sample ring as of now.
func (m *Monitor) Status(now time.Time) Status {
	return m.statusLocked(now)
}

func (m *Monitor) statusLocked(now time.Time) Status {
	m.mu.Lock()
	samples := make([]sample, len(m.samples))
	copy(samples, m.samples)
	m.mu.Unlock()
	st := Status{SampledAt: now, Healthy: true}
	if len(samples) == 0 {
		samples = []sample{{at: now, snap: m.reg.Snapshot()}}
	}
	newest := samples[len(samples)-1]
	for _, o := range m.objectives {
		os := ObjectiveStatus{Objective: o}
		for _, w := range m.windows {
			base := baseline(samples, now.Add(-w.Dur))
			diff := newest.snap.Diff(base.snap)
			good, total := o.goodTotal(diff)
			ws := WindowStatus{Window: w.Name, Good: good, Total: total}
			if total > 0 {
				ws.BadFraction = float64(total-good) / float64(total)
				if o.Target < 1 {
					ws.BurnRate = ws.BadFraction / (1 - o.Target)
				} else if ws.BadFraction > 0 {
					ws.BurnRate = ws.BadFraction * 1e9 // target 1.0: any badness is infinite burn
				}
				ws.Violated = ws.BurnRate >= w.Burn
			}
			os.Violated = os.Violated || ws.Violated
			os.Windows = append(os.Windows, ws)
		}
		if o.LatencySeries != "" {
			lat := newest.snap[o.LatencySeries]
			os.P99Seconds = lat.Quantile(0.99)
			os.ExemplarTraceID = p99ExemplarTrace(lat)
		}
		st.Healthy = st.Healthy && !os.Violated
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// baseline picks the snapshot that anchors a window starting at
// cutoff: the newest sample at or before it, else the oldest sample
// (a partial window while history is still filling).
func baseline(samples []sample, cutoff time.Time) sample {
	best := samples[0]
	for _, s := range samples {
		if s.at.After(cutoff) {
			break
		}
		best = s
	}
	return best
}

// goodTotal classifies the window delta d under the objective's SLI.
func (o Objective) goodTotal(d obs.Snapshot) (good, total int64) {
	if o.LatencySeries != "" {
		m := d[o.LatencySeries]
		total = m.Count
		for _, b := range m.Buckets {
			if b.LE <= o.Threshold+1e-12 {
				good = b.Count
			} else {
				break
			}
		}
		return good, total
	}
	total = d[o.TotalSeries].Value
	bad := d[o.BadSeries].Value
	if bad > total {
		bad = total
	}
	return total - bad, total
}

// p99ExemplarTrace returns the trace ID of the newest exemplar at or
// above the p99 bucket of a histogram metric.
func p99ExemplarTrace(m obs.Metric) string {
	if m.Count == 0 {
		return ""
	}
	rank := 0.99 * float64(m.Count)
	var best *obs.Exemplar
	for _, b := range m.Buckets {
		if b.Exemplar != nil && (float64(b.Count) >= rank || best == nil) {
			// Keep the last exemplar seen below the rank as a fallback,
			// and prefer any exemplar in or above the p99 bucket.
			best = b.Exemplar
			if float64(b.Count) >= rank {
				return best.TraceID
			}
		}
	}
	if best != nil {
		return best.TraceID
	}
	return ""
}

// Metric-name helpers of the published series.
const (
	MetricBurnRate    = "modelgen_slo_burn_rate"
	MetricBadFraction = "modelgen_slo_bad_fraction"
	MetricTarget      = "modelgen_slo_target"
	MetricViolated    = "modelgen_slo_violated"
)

// publish refreshes the modelgen_slo_* series from a Status.
func (m *Monitor) publish(st Status) {
	for _, os := range st.Objectives {
		m.reg.LabeledFloatGauge(MetricTarget,
			"good-fraction target of the objective", "objective", os.Name).Set(os.Target)
		v := int64(0)
		if os.Violated {
			v = 1
		}
		m.reg.LabeledGauge(MetricViolated,
			"1 while any window of the objective is past its burn threshold",
			"objective", os.Name).Set(v)
		for _, ws := range os.Windows {
			m.reg.LabeledFloatGauge(MetricBurnRate,
				"error-budget burn rate over the window",
				"objective", os.Name, "window", ws.Window).Set(ws.BurnRate)
			m.reg.LabeledFloatGauge(MetricBadFraction,
				"bad-event fraction over the window",
				"objective", os.Name, "window", ws.Window).Set(ws.BadFraction)
		}
	}
}

// Handler serves the current Status as JSON — the /slo endpoint. A
// violated objective does not change the HTTP status (the endpoint
// reports health, it is not a health check): gate on "healthy".
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Status(time.Now()))
	})
}

// DefaultServeObjectives are the bbserved SLOs: ingest→model-update
// latency, shed rate, request availability, and model stability, over
// the serve_* series. latencyP99 is the latency threshold in seconds
// (<=0 selects 500 ms).
func DefaultServeObjectives(latencyP99 float64) []Objective {
	if latencyP99 <= 0 {
		latencyP99 = 0.5
	}
	return []Objective{
		{
			Name:          "ingest-latency",
			Description:   "99% of ingested batches reach a committed model update quickly",
			Target:        0.99,
			LatencySeries: "serve_ingest_latency_seconds",
			Threshold:     latencyP99,
		},
		{
			Name:        "shed-rate",
			Description: "at most 1% of ingested lines are shed under backpressure",
			Target:      0.99,
			BadSeries:   "serve_ingest_shed_lines_total",
			TotalSeries: "serve_ingest_offered_lines_total",
		},
		{
			Name:        "availability",
			Description: "99.9% of API requests succeed (non-5xx)",
			Target:      0.999,
			BadSeries:   "serve_http_errors_total",
			TotalSeries: "serve_http_requests_total",
		},
		{
			Name:        "model-stability",
			Description: "at most 0.1% of learned periods trigger a model change-point",
			Target:      0.999,
			BadSeries:   "serve_drift_alarm_periods_total",
			TotalSeries: "serve_periods_learned_total",
		},
	}
}
