package sat

import "testing"

// FuzzParseDIMACS checks that the DIMACS parser never panics, that
// accepted formulas round-trip, and that the solver's verdict is
// self-consistent (a returned model satisfies the formula).
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("p cnf 3 0\n")
	f.Add("")
	f.Add("p cnf 2 1\n9 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		cnf, err := ParseDIMACS(input)
		if err != nil {
			return
		}
		back, err := ParseDIMACS(cnf.DIMACS())
		if err != nil {
			t.Fatalf("rendered DIMACS failed to parse: %v\n%s", err, cnf.DIMACS())
		}
		if back.NumVars != cnf.NumVars || len(back.Clauses) != len(cnf.Clauses) {
			t.Fatalf("round trip changed shape")
		}
		// Keep the solver's work bounded on adversarial inputs.
		if cnf.NumVars > 16 || len(cnf.Clauses) > 64 {
			return
		}
		if a, ok, _ := Solve(cnf); ok && !Satisfies(cnf, a) {
			t.Fatal("solver returned a non-satisfying model")
		}
	})
}
