package modelgen

import (
	"io"

	"github.com/blackbox-rt/modelgen/internal/bench"
	"github.com/blackbox-rt/modelgen/internal/casestudy"
	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/latency"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/model"
	"github.com/blackbox-rt/modelgen/internal/obs"
	"github.com/blackbox-rt/modelgen/internal/reach"
	"github.com/blackbox-rt/modelgen/internal/sim"
	"github.com/blackbox-rt/modelgen/internal/trace"
	"github.com/blackbox-rt/modelgen/internal/verify"
)

// Dependency values of the lattice V (Figure 3 of the paper).
type Value = lattice.Value

// The seven dependency values. Par (‖) is the lattice bottom, BiMaybe
// (↔?) the top.
const (
	Par      = lattice.Par
	Fwd      = lattice.Fwd
	Bwd      = lattice.Bwd
	Bi       = lattice.Bi
	FwdMaybe = lattice.FwdMaybe
	BwdMaybe = lattice.BwdMaybe
	BiMaybe  = lattice.BiMaybe
)

// Trace types: an execution trace is a sequence of periods, each
// holding task execution intervals and message occurrences.
type (
	Trace        = trace.Trace
	Period       = trace.Period
	Message      = trace.Message
	Event        = trace.Event
	Interval     = trace.Interval
	TraceBuilder = trace.Builder
)

// Event kinds for raw event streams.
const (
	TaskStart  = trace.TaskStart
	TaskEnd    = trace.TaskEnd
	MsgRise    = trace.MsgRise
	MsgFall    = trace.MsgFall
	PeriodMark = trace.PeriodMark
)

// NewTraceBuilder starts an empty trace over the predefined task set.
func NewTraceBuilder(tasks []string) *TraceBuilder { return trace.NewBuilder(tasks) }

// TraceFromEvents assembles a trace from a raw timestamped event
// stream with PeriodMark delimiters.
func TraceFromEvents(tasks []string, events []Event) (*Trace, error) {
	return trace.FromEvents(tasks, events)
}

// TraceFromEventsPeriodic assembles a trace from an unmarked event
// stream by segmenting it into fixed-length periods (the typical shape
// of a raw logging-device capture).
func TraceFromEventsPeriodic(tasks []string, events []Event, origin, periodLen int64) (*Trace, error) {
	return trace.FromEventsPeriodic(tasks, events, origin, periodLen)
}

// ReadTrace parses the text trace format; WriteTrace emits it.
func ReadTrace(r io.Reader) (*Trace, error)    { return trace.Read(r) }
func WriteTrace(w io.Writer, tr *Trace) error  { return trace.Write(w, tr) }
func ReadTraceString(s string) (*Trace, error) { return trace.ReadString(s) }

// ReadTraceObserved parses the text format and reports parsing
// observability (events read, periods segmented, malformed input) to
// the observer; TraceFromEventsObserved is the equivalent for raw
// event streams.
func ReadTraceObserved(r io.Reader, o Observer) (*Trace, error) { return trace.ReadObserved(r, o) }
func TraceFromEventsObserved(tasks []string, events []Event, o Observer) (*Trace, error) {
	return trace.FromEventsObserved(tasks, events, o)
}

// ReadTraceJSON and WriteTraceJSON use the JSON wire format (traces
// also implement json.Marshaler/Unmarshaler directly).
func ReadTraceJSON(r io.Reader) (*Trace, error)   { return trace.ReadJSON(r) }
func WriteTraceJSON(w io.Writer, tr *Trace) error { return trace.WriteJSON(w, tr) }

// PaperTrace returns the worked-example trace of Figure 2 of the
// paper.
func PaperTrace() *Trace { return trace.PaperFigure2() }

// Dependency-function types.
type (
	DepFunc         = depfunc.DepFunc
	TaskSet         = depfunc.TaskSet
	Pair            = depfunc.Pair
	CandidatePolicy = depfunc.CandidatePolicy
)

// NewTaskSet builds the ordered predefined task set T.
func NewTaskSet(names []string) (*TaskSet, error) { return depfunc.NewTaskSet(names) }

// ParseDepTable parses the square table rendering of a dependency
// function (the format used in the paper's figures and by
// DepFunc.Table).
func ParseDepTable(s string) (*DepFunc, error) { return depfunc.ParseTable(s) }

// Match reports whether the dependency function matches the period
// (the paper's matching function M).
func Match(d *DepFunc, p *Period, pol CandidatePolicy) bool { return depfunc.Match(d, p, pol) }

// MatchTrace reports whether d matches every period; on failure it
// also returns the index of the first failing period.
func MatchTrace(d *DepFunc, tr *Trace, pol CandidatePolicy) (bool, int) {
	return depfunc.MatchTrace(d, tr, pol)
}

// Learner types.
type (
	LearnOptions = learner.Options
	LearnResult  = learner.Result
	LearnStats   = learner.Stats
)

// Learner errors.
var (
	ErrNoHypothesis      = learner.ErrNoHypothesis
	ErrTooManyHypotheses = learner.ErrTooManyHypotheses
	ErrNoProvenance      = learner.ErrNoProvenance
	// ErrVerifyUnavailable is returned by OnlineLearner.Result when
	// LearnOptions.VerifyResults is set without
	// LearnOptions.RetainPeriods: an online session has no trace to
	// verify against unless it retains one.
	ErrVerifyUnavailable = learner.ErrVerifyUnavailable
)

// ProvenanceStep is one recorded generalization step of a learned
// hypothesis's derivation chain. Enable recording with
// LearnOptions.Provenance and query chains with LearnResult.Explain /
// LearnResult.Provenance; render steps with Step.Format.
type ProvenanceStep = learner.ProvStep

// Learn runs the generalization algorithm (Section 3 of the paper)
// over the trace: exact when opt.Bound <= 0, bounded heuristic
// otherwise.
func Learn(tr *Trace, opt LearnOptions) (*LearnResult, error) { return learner.Learn(tr, opt) }

// LearnExact runs the exact (exponential) algorithm.
func LearnExact(tr *Trace, pol CandidatePolicy) (*LearnResult, error) {
	return learner.LearnExact(tr, pol)
}

// LearnBounded runs the heuristic with the given bound.
func LearnBounded(tr *Trace, bound int, pol CandidatePolicy) (*LearnResult, error) {
	return learner.LearnBounded(tr, bound, pol)
}

// OnlineLearner is the incremental learner: feed periods as a logging
// device captures them and snapshot the hypothesis set at any time.
type OnlineLearner = learner.Online

// NewOnlineLearner starts an incremental learning session.
func NewOnlineLearner(tasks []string, opt LearnOptions) (*OnlineLearner, error) {
	return learner.NewOnline(tasks, opt)
}

// Design-model and simulation types.
type (
	Model      = model.Model
	ModelTask  = model.Task
	ModelEdge  = model.Edge
	SimOptions = sim.Options
	SimOutput  = sim.Output
)

// Node kinds for design models.
const (
	Regular     = model.Regular
	Disjunction = model.Disjunction
	Conjunction = model.Conjunction
)

// Built-in models: the paper's Figure 1 example, the 18-task GM-style
// case study (single-ECU and distributed over four ECUs) and its
// 7-task exact-tractable subsystem.
func Figure1Model() *Model            { return model.Figure1() }
func GMStyleModel() *Model            { return model.GMStyle() }
func GMStyleDistributedModel() *Model { return model.GMStyleDistributed() }
func GMStyleLiteModel() *Model        { return model.GMStyleLite() }

// Simulate executes a design model on the OSEK/CAN substrates and
// returns the observable bus trace plus ground-truth oracle data.
func Simulate(m *Model, opt SimOptions) (*SimOutput, error) { return sim.Run(m, opt) }

// Verification types.
type (
	VerifyReport     = verify.Report
	DesignComparison = verify.DesignComparison
)

// Analyze summarizes a learned dependency function (node
// classification, dependency counts, state-space reduction).
func Analyze(d *DepFunc) VerifyReport { return verify.Analyze(d) }

// DisjunctionNodes and ConjunctionNodes classify tasks from a learned
// model; Determines and DependsOn query unconditional dependencies.
func DisjunctionNodes(d *DepFunc) []string    { return verify.DisjunctionNodes(d) }
func ConjunctionNodes(d *DepFunc) []string    { return verify.ConjunctionNodes(d) }
func Determines(d *DepFunc, a, b string) bool { return verify.Determines(d, a, b) }
func DependsOn(d *DepFunc, a, b string) bool  { return verify.DependsOn(d, a, b) }

// Mode types: observed operation modes of the system.
type (
	Mode       = verify.Mode
	ModeReport = verify.ModeReport
)

// Modes enumerates the distinct operation modes (co-executing task
// sets) observed in the trace, most frequent first.
func Modes(tr *Trace) []Mode { return verify.Modes(tr) }

// AnalyzeModes relates the observed modes to a learned dependency
// function (pass nil to only enumerate).
func AnalyzeModes(tr *Trace, d *DepFunc) ModeReport { return verify.AnalyzeModes(tr, d) }

// Reachability analysis over the per-period completion state space.
type ReachResult = reach.Result

// ExploreStateSpace counts the completion states a reachability-based
// model checker must explore under the learned dependencies, against
// the pessimistic 2^n baseline (the paper's state-space-reduction
// claim made concrete).
func ExploreStateSpace(d *DepFunc) (ReachResult, error) { return reach.Explore(d) }

// ProveNeverCompletesBefore checks by explicit-state reachability that
// task `done` can never complete while `notDone` has not. It returns
// proved = true when no such state is reachable; otherwise a witness
// state is returned.
func ProveNeverCompletesBefore(d *DepFunc, done, notDone string) (proved bool, witness []string, err error) {
	q, err := reach.CompletedWithout(d, done, notDone)
	if err != nil {
		return false, nil, err
	}
	reachable, w, err := reach.Reachable(d, q)
	return !reachable && err == nil, w, err
}

// Latency-analysis types.
type (
	LatencyPath       = latency.Path
	LatencyBreakdown  = latency.Breakdown
	LatencyComparison = latency.Comparison
)

// PathLatency bounds the end-to-end latency of a task/message chain;
// pass d == nil for the pessimistic holistic bound.
func PathLatency(m *Model, p LatencyPath, d *DepFunc, bitRate int64) (*LatencyBreakdown, error) {
	return latency.PathLatency(m, p, d, bitRate)
}

// CompareLatency computes the pessimistic and dependency-informed
// bounds for the path.
func CompareLatency(m *Model, p LatencyPath, d *DepFunc, bitRate int64) (*LatencyComparison, error) {
	return latency.Compare(m, p, d, bitRate)
}

// Observability re-exports: the metrics registry, the structured
// run-trace (Observer + typed events), and the pprof/metrics debug
// server. See internal/obs for the event schema and metric
// catalogue.
type (
	Observer        = obs.Observer
	NopObserver     = obs.NopObserver
	ObsEvent        = obs.Event
	EventRecorder   = obs.Recorder
	JSONLObserver   = obs.JSONLSink
	MetricsRegistry = obs.Registry
	MetricsSnapshot = obs.Snapshot
	DebugServer     = obs.DebugServer

	EngineStartEvent       = obs.EngineStart
	PeriodStartEvent       = obs.PeriodStart
	MessageProcessedEvent  = obs.MessageProcessed
	HypothesisSpawnedEvent = obs.HypothesisSpawned
	HypothesisMergedEvent  = obs.HypothesisMerged
	HypothesisPrunedEvent  = obs.HypothesisPruned
	PeriodEndEvent         = obs.PeriodEnd
	RunEndEvent            = obs.RunEnd
	PipelineEvent          = obs.Pipeline
	ProvenanceEvent        = obs.Provenance
	SpanEvent              = obs.SpanEnd
)

// JSONLFileSink is a JSONL event sink writing to a buffered file: the
// -events flag of the CLI tools. Close flushes and reports the first
// error of the write path; call it on every exit (including fatal
// ones) so a partial stream is still analyzable.
type JSONLFileSink = obs.FileSink

// OpenJSONLFile creates (truncating) a buffered JSONL event sink at
// path.
func OpenJSONLFile(path string) (*JSONLFileSink, error) { return obs.OpenFileSink(path) }

// ObsSpan times one pipeline phase; StartObsSpan on a nil observer
// returns a no-op span, so callers need no nil checks.
type ObsSpan = obs.Span

// StartObsSpan starts timing a phase; sp.End() emits the span event.
func StartObsSpan(o Observer, phase string) ObsSpan { return obs.StartSpan(o, phase) }

// NewEventRecorder returns an observer capturing every event for
// assertions and inspection.
func NewEventRecorder() *EventRecorder { return obs.NewRecorder() }

// NewJSONLObserver returns an observer writing one JSON object per
// event to w (the offline-analysis format of bblearn -events).
func NewJSONLObserver(w io.Writer) *JSONLObserver { return obs.NewJSONLSink(w) }

// ParseEventJSONL decodes a JSONL event stream back into typed
// events.
func ParseEventJSONL(r io.Reader) ([]ObsEvent, error) { return obs.ParseJSONL(r) }

// NewMetricsRegistry returns an empty dependency-free metrics
// registry with Prometheus-text and JSON exposition.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsObserver returns an observer maintaining the modelgen_*
// metric catalogue in the registry.
func NewMetricsObserver(reg *MetricsRegistry) Observer { return obs.NewMetricsObserver(reg) }

// CombineObservers fans events out to several observers; it returns
// nil when none remain so the allocation-free nil-observer fast path
// is preserved.
func CombineObservers(os ...Observer) Observer { return obs.NewMulti(os...) }

// StartDebugServer serves net/http/pprof under /debug/pprof/ and, if
// reg is non-nil, the registry at /metrics. Pass ":0" to pick a free
// port; the bound address is in the returned server's Addr.
func StartDebugServer(addr string, reg *MetricsRegistry) (*DebugServer, error) {
	return obs.StartDebugServer(addr, reg)
}

// ExploreStateSpaceObserved is ExploreStateSpace with reachability
// observability (states explored); ModesObserved is the equivalent
// for mode enumeration.
func ExploreStateSpaceObserved(d *DepFunc, o Observer) (ReachResult, error) {
	return reach.ExploreObserved(d, o)
}
func ModesObserved(tr *Trace, o Observer) []Mode { return verify.ModesObserved(tr, o) }

// Benchmark-telemetry re-exports: the versioned BENCH_<label>.json
// schema written and compared by cmd/bbbench (see internal/bench).
type (
	BenchFile       = bench.File
	BenchRun        = bench.Run
	BenchHost       = bench.Host
	BenchSample     = bench.Sample
	BenchRegression = bench.Regression
)

// BenchSchemaVersion is the current BENCH file schema version.
const BenchSchemaVersion = bench.SchemaVersion

// NewBenchFile returns an empty benchmark file stamped with the
// schema version, host metadata and creation time.
func NewBenchFile(label string) *BenchFile { return bench.New(label) }

// ReadBenchFile parses and validates a BENCH_<label>.json file.
func ReadBenchFile(path string) (*BenchFile, error) { return bench.ReadFile(path) }

// BenchMeasure runs fn reps times, sampling wall time and
// runtime.ReadMemStats allocation deltas per repetition.
func BenchMeasure(reps int, fn func()) []BenchSample { return bench.Measure(reps, fn) }

// BenchSummarize folds samples into a Run (median/p95 wall time,
// median allocation counts).
func BenchSummarize(name string, bound int, samples []BenchSample) BenchRun {
	return bench.Summarize(name, bound, samples)
}

// BenchCompare reports the run metrics of current that regressed
// beyond threshold (0.10 = 10%) relative to baseline.
func BenchCompare(baseline, current *BenchFile, threshold float64) []BenchRegression {
	return bench.Compare(baseline, current, threshold)
}

// ParseBenchThreshold parses "10%" or "0.1" into a fraction.
func ParseBenchThreshold(s string) (float64, error) { return bench.ParseThreshold(s) }

// Case-study configuration re-exports (see EXPERIMENTS.md).
const (
	CaseStudyPeriods = casestudy.Periods
	CaseStudySeed    = casestudy.Seed
)

// CaseStudyBounds is the bound column of the paper's runtime table.
func CaseStudyBounds() []int { return append([]int(nil), casestudy.Bounds...) }

// CaseStudyPolicy returns the candidate policy of the named
// configuration ("full" or "lite").
func CaseStudyPolicy(lite bool) CandidatePolicy {
	if lite {
		return casestudy.LitePolicy()
	}
	return casestudy.FullPolicy()
}
