package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	sp := tr.StartSpan("root", SpanContext{})
	if sp == nil {
		t.Fatal("default tracer dropped a root span")
	}
	h := sp.Context().Traceparent()
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip: got %+v, want %+v", sc, sp.Context())
	}
	if !sc.Sampled {
		t.Error("recorded span rendered an unsampled traceparent")
	}
}

func TestTraceparentParsing(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, ok := ParseTraceparent(valid)
	if !ok || sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" ||
		sc.SpanID.String() != "b7ad6b7169203331" || !sc.Sampled {
		t.Fatalf("valid header parsed to %+v ok=%v", sc, ok)
	}
	if sc, _ := ParseTraceparent(strings.Replace(valid, "-01", "-00", 1)); sc.Sampled {
		t.Error("flags 00 parsed as sampled")
	}
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // non-hex
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64})
	root := tr.StartSpan("ingest", SpanContext{})
	root.SetAttr("stream", "s1")
	cut := root.StartChild("period_cut")
	cut.End()
	// A late child recorded from a propagated context after the root
	// ended — the serve learn path.
	ctx := root.Context()
	root.End()
	learn := tr.StartSpan("learn_period", ctx)
	tr.RecordSpan(learn.Context(), "generalize", time.Now().Add(-time.Millisecond), time.Millisecond)
	learn.End()

	roots := tr.Tree(ctx.TraceID)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	got := roots[0]
	if got.Name != "ingest" || got.Attrs["stream"] != "s1" {
		t.Fatalf("root = %+v", got.SpanRecord)
	}
	names := map[string]bool{}
	for _, c := range got.Children {
		names[c.Name] = true
		if c.Name == "learn_period" {
			if len(c.Children) != 1 || c.Children[0].Name != "generalize" {
				t.Fatalf("learn_period children = %+v", c.Children)
			}
		}
	}
	if !names["period_cut"] || !names["learn_period"] {
		t.Fatalf("root children = %v", names)
	}

	sums := tr.Summaries(0)
	if len(sums) != 1 || sums[0].Spans != 4 || sums[0].Root != "ingest" {
		t.Fatalf("summaries = %+v", sums)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8})
	for i := 0; i < 50; i++ {
		tr.StartSpan("s", SpanContext{}).End()
	}
	if got := len(tr.records()); got != 8 {
		t.Fatalf("ring holds %d records, want 8", got)
	}
}

func TestTracerSamplingHonorsUpstream(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 0.0000001})
	// Unsampled upstream decision: always dropped.
	parent := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}, Sampled: false}
	if sp := tr.StartSpan("x", parent); sp != nil {
		t.Error("unsampled parent was traced")
	}
	// Sampled upstream decision: always kept, regardless of Sample.
	parent.Sampled = true
	if sp := tr.StartSpan("x", parent); sp == nil {
		t.Error("sampled parent was dropped")
	}
	// Fresh traces at a tiny probability: overwhelmingly dropped.
	kept := 0
	for i := 0; i < 1000; i++ {
		if sp := tr.StartSpan("x", SpanContext{}); sp != nil {
			kept++
		}
	}
	if kept > 10 {
		t.Errorf("head sampling kept %d/1000 at p=1e-7", kept)
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	root := tr.StartSpan("ingest", SpanContext{})
	id := root.Context().TraceID
	root.StartChild("period_cut").End()
	root.End()

	// List.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list struct{ Traces []TraceSummary }
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != id {
		t.Fatalf("list = %+v", list)
	}

	// One trace's tree.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+id.String(), nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"period_cut"`) {
		t.Fatalf("tree response %d: %s", rec.Code, rec.Body.String())
	}

	// Unknown trace 404s.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		"/debug/traces?trace=ffffffffffffffffffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace: %d", rec.Code)
	}

	// JSONL export.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=jsonl", nil))
	if lines := strings.Count(strings.TrimSpace(rec.Body.String()), "\n") + 1; lines != 2 {
		t.Fatalf("jsonl export has %d lines, want 2: %s", lines, rec.Body.String())
	}
}

func TestTracerSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerConfig{})
	tr.SetSink(NewJSONLSink(&buf))
	tr.StartSpan("root", SpanContext{}).End()
	if !strings.Contains(buf.String(), `"event":"trace_span"`) {
		t.Fatalf("sink output = %q", buf.String())
	}
	var rec SpanRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("sink line is not a span record: %v", err)
	}
	if rec.Name != "root" {
		t.Fatalf("sink span name = %q", rec.Name)
	}
}

// TestNilTracerZeroAlloc pins the disabled-tracer contract: starting,
// attributing, propagating and ending spans against a nil *Tracer
// allocates nothing — the serve ingest hot path relies on it, exactly
// like the learner relies on the nil-Observer guard.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.StartSpan("ingest", SpanContext{})
		sp.SetAttr("stream", "s1")
		child := sp.StartChild("period_cut")
		child.End()
		ctx := sp.Context()
		tr.RecordSpan(ctx, "generalize", time.Time{}, 0)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f/op, want 0", allocs)
	}
}

func BenchmarkTraceSpanNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("ingest", SpanContext{})
		sp.StartChild("period_cut").End()
		sp.End()
	}
}

func BenchmarkTraceSpanRecorded(b *testing.B) {
	tr := NewTracer(TracerConfig{Capacity: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("ingest", SpanContext{})
		sp.StartChild("period_cut").End()
		sp.End()
	}
}
