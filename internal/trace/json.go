package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTrace is the JSON wire format of a trace: a stable, explicit
// schema decoupled from the in-memory representation.
type jsonTrace struct {
	Tasks   []string     `json:"tasks"`
	Periods []jsonPeriod `json:"periods"`
}

type jsonPeriod struct {
	Execs []jsonExec `json:"execs"`
	Msgs  []Message  `json:"msgs,omitempty"`
}

type jsonExec struct {
	Task  string `json:"task"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// MarshalJSON implements json.Marshaler with deterministic ordering
// (executions by start time, then name).
func (tr *Trace) MarshalJSON() ([]byte, error) {
	out := jsonTrace{Tasks: tr.Tasks}
	for _, p := range tr.Periods {
		jp := jsonPeriod{Msgs: p.Msgs}
		for _, name := range p.execsByStart() {
			iv := p.Execs[name]
			jp.Execs = append(jp.Execs, jsonExec{Task: name, Start: iv.Start, End: iv.End})
		}
		out.Periods = append(out.Periods, jp)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// trace.
func (tr *Trace) UnmarshalJSON(data []byte) error {
	var in jsonTrace
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	decoded := New(in.Tasks)
	for i, jp := range in.Periods {
		p := &Period{Index: i, Execs: map[string]Interval{}}
		for _, e := range jp.Execs {
			if _, dup := p.Execs[e.Task]; dup {
				return fmt.Errorf("%w: %q in period %d", ErrDuplicateExec, e.Task, i)
			}
			p.Execs[e.Task] = Interval{Start: e.Start, End: e.End}
		}
		p.Msgs = append(p.Msgs, jp.Msgs...)
		decoded.Periods = append(decoded.Periods, p)
	}
	sortMessages(decoded)
	if err := decoded.Validate(); err != nil {
		return err
	}
	*tr = *decoded
	return nil
}

// WriteJSON serializes the trace as indented JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadJSON parses a JSON trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, err
	}
	return &tr, nil
}
