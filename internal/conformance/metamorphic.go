package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"

	"github.com/blackbox-rt/modelgen/internal/depfunc"
	"github.com/blackbox-rt/modelgen/internal/lattice"
	"github.com/blackbox-rt/modelgen/internal/learner"
	"github.com/blackbox-rt/modelgen/internal/trace"
	"github.com/blackbox-rt/modelgen/internal/verify"
)

// Metamorphic checks result invariance under transformations that the
// model of computation says cannot matter:
//
//   - worker count: the engine's fan-out is proven result-invariant,
//     so Workers ∈ {1, 4} must produce identical results;
//   - message relabeling: occurrence labels are opaque, so renaming
//     every message uniformly must not change anything;
//   - time translation: candidate feasibility uses only comparisons
//     between event times, so shifting the whole trace by a constant
//     must not change anything;
//   - period permutation (exact mode only): the instances of a trace
//     are a set (Definition 1) and the exact algorithm computes the
//     most specific consistent set, so reversing the period sequence
//     must yield the same final hypothesis set. The bounded heuristic
//     is genuinely order-sensitive (merging depends on arrival order),
//     so the permutation check only applies when opt.Bound == 0.
//
// The baseline run uses opt as given; ErrTooManyHypotheses skips the
// oracle.
func Metamorphic(tr *trace.Trace, opt learner.Options) ([]Violation, error) {
	base, err := learner.Learn(tr, opt)
	if errors.Is(err, learner.ErrTooManyHypotheses) {
		return nil, fmt.Errorf("%w: %v", ErrOracleSkipped, err)
	}
	if err != nil {
		return nil, err
	}
	want := resultSig(base)
	var out []Violation

	check := func(property string, mutated *trace.Trace, mopt learner.Options) {
		r, err := learner.Learn(mutated, mopt)
		if err != nil {
			out = append(out, violationf(property, "transformed run failed: %v", err))
			return
		}
		if got := resultSig(r); !reflect.DeepEqual(got, want) {
			out = append(out, violationf(property, "result changed:\n got %v\nwant %v", got, want))
		}
	}

	wopt := opt
	wopt.Workers = 4
	check("metamorphic/worker-count", tr, wopt)
	check("metamorphic/message-relabel", relabelMessages(tr), opt)
	check("metamorphic/time-translation", translate(tr, 1_000_000), opt)
	if opt.Bound <= 0 {
		check("metamorphic/period-permutation", permutePeriods(tr, reversed(len(tr.Periods))), opt)
		check("metamorphic/period-permutation", permutePeriods(tr, shuffled(len(tr.Periods), 0xbadc0de)), opt)
	}
	return out, nil
}

// resultSig collapses a learning result into a comparable signature:
// every hypothesis key in order, the LUB and the convergence flag
// (mirrors the differential property test).
func resultSig(r *learner.Result) []string {
	sig := make([]string, 0, len(r.Hypotheses)+2)
	for _, d := range r.Hypotheses {
		sig = append(sig, d.Key())
	}
	return append(sig, "LUB:"+r.LUB.Key(), fmt.Sprintf("converged:%v", r.Converged))
}

// relabelMessages renames every message occurrence uniformly (a
// bijective relabeling), preserving per-period label uniqueness.
func relabelMessages(tr *trace.Trace) *trace.Trace {
	cp := tr.Clone()
	for _, p := range cp.Periods {
		for i := range p.Msgs {
			p.Msgs[i].ID = "relabel_" + p.Msgs[i].ID
		}
	}
	return cp
}

// translate shifts every timestamp of the trace by delta.
func translate(tr *trace.Trace, delta int64) *trace.Trace {
	cp := tr.Clone()
	for _, p := range cp.Periods {
		for t, iv := range p.Execs {
			p.Execs[t] = trace.Interval{Start: iv.Start + delta, End: iv.End + delta}
		}
		for i := range p.Msgs {
			p.Msgs[i].Rise += delta
			p.Msgs[i].Fall += delta
		}
	}
	return cp
}

// permutePeriods reorders the trace's periods by the given index
// permutation, reindexing densely so the result is a well-formed
// instance sequence.
func permutePeriods(tr *trace.Trace, perm []int) *trace.Trace {
	cp := trace.New(tr.Tasks)
	for newIdx, oldIdx := range perm {
		p := tr.Periods[oldIdx].Clone()
		p.Index = newIdx
		cp.Periods = append(cp.Periods, p)
	}
	return cp
}

func reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func shuffled(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// VerifierConsistency checks the verification layer's internal
// consistency on a learned dependency function — the verifier leg of
// the parser → engine → verifier conformance chain. The checks are
// definitional redundancies: the structure report's counts must
// partition the pair set, MustExecute must agree with the lattice
// predicate it is defined by, the must-closure must be transitive and
// contain every direct → edge, and forward reachability must contain
// its root and every direct successor.
func VerifierConsistency(d *depfunc.DepFunc) []Violation {
	var out []Violation
	ts := d.TaskSet()
	rep := verify.Analyze(d)
	if got := rep.Independent + rep.Firm + rep.Conditional + rep.Unknown; got != rep.TotalPairs {
		out = append(out, violationf("verify/report-partitions-pairs",
			"category counts sum to %d, want TotalPairs %d", got, rep.TotalPairs))
	}
	if rep.OrderingKnown < 0 || rep.OrderingKnown > 1 || rep.InterleavingReduction < 0 || rep.InterleavingReduction > 1 {
		out = append(out, violationf("verify/report-fractions",
			"OrderingKnown %v or InterleavingReduction %v out of [0,1]", rep.OrderingKnown, rep.InterleavingReduction))
	}
	closure := verify.MustClosure(d)
	for i := 0; i < ts.Len(); i++ {
		a := ts.Name(i)
		reach := map[string]bool{}
		for _, t := range verify.Reachable(d, a) {
			reach[t] = true
		}
		if !reach[a] {
			out = append(out, violationf("verify/reachable-contains-root", "Reachable(%s) misses %s", a, a))
		}
		for j := 0; j < ts.Len(); j++ {
			if i == j {
				continue
			}
			b := ts.Name(j)
			v := d.At(i, j)
			if verify.MustExecute(d, a, b) != lattice.HasExecConstraint(v) {
				out = append(out, violationf("verify/must-execute-definition",
					"MustExecute(%s,%s) disagrees with HasExecConstraint(%v)", a, b, v))
			}
			if verify.Determines(d, a, b) && !closure[[2]string{a, b}] {
				out = append(out, violationf("verify/closure-contains-edges",
					"direct → edge (%s,%s) missing from MustClosure", a, b))
			}
			if (v == lattice.Fwd || v == lattice.FwdMaybe) && !reach[b] {
				out = append(out, violationf("verify/reachable-contains-successors",
					"forward edge (%s,%s) but %s not in Reachable(%s)", a, b, b, a))
			}
		}
	}
	for ab := range closure {
		for bc := range closure {
			if ab[1] == bc[0] && ab[0] != bc[1] && !closure[[2]string{ab[0], bc[1]}] {
				out = append(out, violationf("verify/closure-transitive",
					"(%s,%s) and (%s,%s) in closure but (%s,%s) is not",
					ab[0], ab[1], bc[0], bc[1], ab[0], bc[1]))
			}
		}
	}
	return out
}
